// Package refine implements greedy modularity refinement by local vertex
// moves — the extension the paper names as an area of active work
// ("Incorporating refinement into our parallel algorithm", §II). Matching-
// based agglomeration only ever merges whole communities, so early
// mis-merges can never be undone; a refinement pass lets individual
// vertices migrate to the neighboring community with the best modularity
// gain, recovering much of the gap to move-based methods like Louvain.
//
// The parallel sweep uses the relaxed-consistency discipline common to
// parallel Louvain implementations: gains are computed against volumes that
// concurrent moves may be changing, so a sweep is not guaranteed to be
// monotone. Refine therefore evaluates modularity before and after and
// returns whichever partition is better, making the operation monotone by
// construction.
package refine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/par"
)

// Options configures a refinement run.
type Options struct {
	// Threads is the worker count; <= 0 selects GOMAXPROCS.
	Threads int
	// MaxSweeps bounds the number of full vertex sweeps; 0 means sweep
	// until a pass moves nothing (at most 64 sweeps as a safety stop).
	MaxSweeps int
}

// Result of a refinement run.
type Result struct {
	// CommunityOf is the refined partition with dense ids in
	// [0, NumCommunities).
	CommunityOf    []int64
	NumCommunities int64
	// Moves counts accepted vertex migrations; Sweeps counts full passes.
	Moves  int64
	Sweeps int
	// ModularityBefore and ModularityAfter bracket the improvement;
	// After >= Before always holds.
	ModularityBefore float64
	ModularityAfter  float64
}

// Refine improves the partition comm (ids dense in [0, k)) of g by greedy
// vertex moves. The input slice is not modified.
func Refine(g *graph.Graph, comm []int64, k int64, opt Options) (*Result, error) {
	return RefineExec(exec.Background(opt.Threads), g, comm, k, opt)
}

// RefineExec is Refine running on ec's workers (ec overrides opt.Threads).
// When ec's context is cancelled the sweep loop stops early and the
// better-of-before-and-after contract still holds: refinement is an
// optimization, so cancellation degrades quality, never correctness, and no
// error is returned.
func RefineExec(ec *exec.Ctx, g *graph.Graph, comm []int64, k int64, opt Options) (*Result, error) {
	n := g.NumVertices()
	if err := metrics.ValidatePartition(comm, n, k); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	p := ec.Threads()
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 64
	}

	res := &Result{ModularityBefore: metrics.Modularity(p, g, comm, k)}
	if n == 0 {
		res.CommunityOf = []int64{}
		res.ModularityAfter = res.ModularityBefore
		return res, nil
	}
	m := float64(g.TotalWeight(p))
	if m == 0 {
		res.CommunityOf = append([]int64(nil), comm...)
		res.NumCommunities = k
		res.ModularityAfter = res.ModularityBefore
		return res, nil
	}

	csr := graph.ToCSR(p, g)
	deg := g.WeightedDegrees(p)
	cur := append([]int64(nil), comm...)
	vol := make([]int64, k)
	for v := int64(0); v < n; v++ {
		vol[cur[v]] += deg[v]
	}

	// Each sweep visits every CSR entry, so on skewed graphs dynamic
	// equal-count chunks put whole hubs on one worker. Degrees are fixed
	// across sweeps: build one degree-balanced partition up front and hand
	// every sweep the same vertex-aligned ranges. Ranges, not spans — the
	// neighbor scan is per-vertex state, so a vertex must not be split.
	var pt par.Partition
	balanced := !ec.Serial(int(n)) && !ec.DynamicOnly()
	if balanced {
		rowStart, rowEnd := csr.RowBounds()
		ec.BuildBuckets(&pt, int(n), rowStart, rowEnd)
	}

	var moves int64
	sweepBody := func(lo, hi int) {
		neighborW := make(map[int64]int64)
		var localMoves int64
		for v := int64(lo); v < int64(hi); v++ {
			adj, wgt := csr.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			clear(neighborW)
			for i, u := range adj {
				neighborW[atomic.LoadInt64(&cur[u])] += wgt[i]
			}
			cv := atomic.LoadInt64(&cur[v])
			dv := float64(deg[v])
			// Gain of being in community d (v's own volume removed):
			// w(v→d)/m − deg_v·vol_d\{v}/(2m²).
			volCv := float64(atomic.LoadInt64(&vol[cv])) - dv
			bestGain := float64(neighborW[cv])/m - dv*volCv/(2*m*m)
			best := cv
			for d, w := range neighborW {
				if d == cv {
					continue
				}
				gain := float64(w)/m - dv*float64(atomic.LoadInt64(&vol[d]))/(2*m*m)
				if gain > bestGain+1e-15 || (gain > bestGain-1e-15 && best != cv && d < best) {
					best, bestGain = d, gain
				}
			}
			if best != cv {
				atomic.AddInt64(&vol[cv], -deg[v])
				atomic.AddInt64(&vol[best], deg[v])
				atomic.StoreInt64(&cur[v], best)
				localMoves++
			}
		}
		atomic.AddInt64(&moves, localMoves)
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if ec.Err() != nil {
			break // keep the best partition found so far
		}
		moves = 0
		if balanced {
			ec.ForRanges("refine/sweep", &pt, sweepBody)
		} else {
			ec.ForDynamic(int(n), 0, sweepBody)
		}
		res.Sweeps++
		res.Moves += moves
		if moves == 0 {
			break
		}
	}

	refined, rk := metrics.Densify(cur)
	after := metrics.Modularity(p, g, refined, rk)
	if after >= res.ModularityBefore {
		res.CommunityOf = refined
		res.NumCommunities = rk
		res.ModularityAfter = after
	} else {
		// Relaxed-consistency sweeps degraded quality (possible under heavy
		// contention): keep the input partition.
		res.CommunityOf = append([]int64(nil), comm...)
		res.NumCommunities = k
		res.ModularityAfter = res.ModularityBefore
	}
	return res, nil
}

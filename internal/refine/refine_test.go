package refine_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/refine"
)

func TestRefineFixesObviousMisassignment(t *testing.T) {
	// Two 5-cliques joined by a bridge; move one vertex to the wrong side
	// and let refinement repair it.
	g := gen.CliqueChain(2, 5)
	comm := make([]int64, 10)
	for i := 5; i < 10; i++ {
		comm[i] = 1
	}
	comm[0] = 1 // misassigned
	before := metrics.Modularity(1, g, comm, 2)
	res, err := refine.Refine(g, comm, 2, refine.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModularityAfter <= before {
		t.Fatalf("no improvement: %v -> %v", before, res.ModularityAfter)
	}
	if res.Moves == 0 {
		t.Fatal("no moves recorded")
	}
	// Vertex 0 must be back with its clique.
	if res.CommunityOf[0] != res.CommunityOf[1] {
		t.Fatalf("vertex 0 still misassigned: %v", res.CommunityOf[:5])
	}
}

func TestRefineNeverDegrades(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, seed))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.Detect(g, core.Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := refine.Refine(g, eng.CommunityOf, eng.NumCommunities, refine.Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.ModularityAfter < res.ModularityBefore {
			t.Fatalf("seed %d: degraded %v -> %v", seed, res.ModularityBefore, res.ModularityAfter)
		}
		if err := metrics.ValidatePartition(res.CommunityOf, g.NumVertices(), res.NumCommunities); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRefineImprovesEngineOutputSubstantially(t *testing.T) {
	// The headline purpose of the extension: close part of the gap between
	// matching-based agglomeration and move-based methods.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Detect(g, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := refine.Refine(g, eng.CommunityOf, eng.NumCommunities, refine.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModularityAfter < eng.FinalModularity+0.05 {
		t.Fatalf("refinement gained too little: %v -> %v", eng.FinalModularity, res.ModularityAfter)
	}
}

func TestRefineIdempotentOnOptimum(t *testing.T) {
	// A perfect clique partition admits no improving single move.
	g := gen.CliqueChain(3, 6)
	comm := make([]int64, 18)
	for i := range comm {
		comm[i] = int64(i) / 6
	}
	res, err := refine.Refine(g, comm, 3, refine.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("moved %d vertices out of a locally optimal partition", res.Moves)
	}
	if res.ModularityAfter != res.ModularityBefore {
		t.Fatalf("modularity changed: %v -> %v", res.ModularityBefore, res.ModularityAfter)
	}
}

func TestRefineDegenerate(t *testing.T) {
	res, err := refine.Refine(graph.NewEmpty(0), nil, 0, refine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CommunityOf) != 0 {
		t.Fatal("empty graph")
	}
	g := graph.NewEmpty(3)
	res, err = refine.Refine(g, []int64{0, 1, 2}, 3, refine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities != 3 || res.Moves != 0 {
		t.Fatalf("edgeless graph: %+v", res)
	}
}

func TestRefineRejectsBadPartition(t *testing.T) {
	g := gen.Ring(4)
	if _, err := refine.Refine(g, []int64{0, 0, 9, 0}, 2, refine.Options{}); err == nil {
		t.Fatal("accepted invalid partition")
	}
	if _, err := refine.Refine(g, []int64{0, 0}, 2, refine.Options{}); err == nil {
		t.Fatal("accepted wrong-length partition")
	}
}

func TestRefineInputUnmodified(t *testing.T) {
	g := gen.CliqueChain(2, 4)
	comm := []int64{0, 0, 0, 1, 1, 1, 1, 0} // scrambled
	orig := append([]int64(nil), comm...)
	if _, err := refine.Refine(g, comm, 2, refine.Options{Threads: 2}); err != nil {
		t.Fatal(err)
	}
	for i := range comm {
		if comm[i] != orig[i] {
			t.Fatal("input partition modified")
		}
	}
}

func TestRefineMaxSweeps(t *testing.T) {
	g, _, err := gen.LJSim(1, gen.DefaultLJSim(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Detect(g, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := refine.Refine(g, eng.CommunityOf, eng.NumCommunities, refine.Options{Threads: 1, MaxSweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 1 {
		t.Fatalf("ran %d sweeps with MaxSweeps=1", res.Sweeps)
	}
}

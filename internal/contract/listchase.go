package contract

import (
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
)

// ListChase contracts g according to match with the 2011 hashed-linked-list
// kernel (John T. Feo's technique) on ec's workers: each relabeled edge is
// hashed to a chain; the chain is searched under the slot's lock, the
// weight added on a hit and a node appended on a miss. The XMT walks such
// dynamically growing lists almost for free with full/empty bits; on
// cache-based machines the pointer chasing and locking dominate, which is
// exactly the behavior this ablation baseline exists to demonstrate
// (§IV-C). The result is identical (as a graph) to Bucket's.
func ListChase(ec *exec.Ctx, g *graph.Graph, match []int64) (*graph.Graph, []int64) {
	mapping, k := Relabel(ec, g, match)
	ng := graph.NewEmpty(k)
	n := int(g.NumVertices())

	ec.For(n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if s := g.Self[x]; s != 0 {
				atomic.AddInt64(&ng.Self[mapping[x]], s)
			}
		}
	})

	// Hash table sized to the worst case (every old edge survives), |E|+|V|
	// extra storage as the paper accounts for the original technique.
	capEdges := g.NumEdges()
	slots := int64(1)
	for slots < capEdges+1 {
		slots <<= 1
	}
	head := make([]int64, slots) // 1-based node index, 0 = empty
	locks := par.NewSpinLocks(int(slots))
	nodeU := make([]int64, capEdges)
	nodeV := make([]int64, capEdges)
	nodeW := make([]int64, capEdges)
	nodeNext := make([]int64, capEdges)
	var pool int64 // bump allocator over the node arrays

	hash := func(a, b int64) int64 {
		h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xc2b2ae3d27d4eb4f
		h ^= h >> 29
		return int64(h & uint64(slots-1))
	}

	ec.ForDynamic(n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				ni, nj := mapping[g.U[e]], mapping[g.V[e]]
				w := g.W[e]
				if ni == nj {
					atomic.AddInt64(&ng.Self[ni], w)
					continue
				}
				first, second := graph.StoredOrder(ni, nj)
				slot := hash(first, second)
				locks.Lock(slot)
				found := false
				for node := head[slot]; node != 0; node = nodeNext[node-1] {
					if nodeU[node-1] == first && nodeV[node-1] == second {
						nodeW[node-1] += w
						found = true
						break
					}
				}
				if !found {
					node := atomic.AddInt64(&pool, 1) // 1-based
					nodeU[node-1] = first
					nodeV[node-1] = second
					nodeW[node-1] = w
					nodeNext[node-1] = head[slot]
					head[slot] = node
				}
				locks.Unlock(slot)
			}
		}
	})

	// Materialize the accumulated unique edges into bucket storage:
	// count per first endpoint, prefix-sum offsets, scatter, per-bucket sort.
	unique := pool
	counts := make([]int64, k)
	ec.For(int(unique), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&counts[nodeU[i]], 1)
		}
	})
	cursor := make([]int64, k)
	copy(cursor, counts)
	ec.ExclusiveSumInt64(cursor)
	ec.For(int(k), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ng.Start[c] = cursor[c]
		}
	})
	ng.U = make([]int64, unique)
	ng.V = make([]int64, unique)
	ng.W = make([]int64, unique)
	ec.For(int(unique), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := atomic.AddInt64(&cursor[nodeU[i]], 1) - 1
			ng.U[pos] = nodeU[i]
			ng.V[pos] = nodeV[i]
			ng.W[pos] = nodeW[i]
		}
	})
	ec.ForDynamic(int(k), 0, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			s, cnt := ng.Start[c], counts[c]
			// Chains already accumulated duplicates; only ordering remains.
			sortDedupBucket(ng.V[s:s+cnt], ng.W[s:s+cnt])
			ng.End[c] = s + cnt
		}
	})
	ng.SetCounts(k, unique)
	return ng, mapping
}

package contract

import (
	"sort"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

// canonicalEdges returns the stored edges of g in a canonical order for
// cross-layout comparison.
func canonicalEdges(g *graph.Graph) []graph.Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// sameGraph fails the test unless a and b are identical as weighted graphs.
func sameGraph(t *testing.T, label string, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: %d vertices / %d edges vs %d / %d",
			label, a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for x := int64(0); x < a.NumVertices(); x++ {
		if a.Self[x] != b.Self[x] {
			t.Fatalf("%s: Self[%d] = %d vs %d", label, x, a.Self[x], b.Self[x])
		}
	}
	ea, eb := canonicalEdges(a), canonicalEdges(b)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d: %+v vs %+v", label, i, ea[i], eb[i])
		}
	}
}

// pairMatch builds the matching {0,1}, {2,3}, ... over the first 2·pairs
// vertices.
func pairMatch(n int64, pairs int64) []int64 {
	m := make([]int64, n)
	for i := range m {
		m[i] = matching.Unmatched
	}
	for i := int64(0); i < pairs && 2*i+1 < n; i++ {
		m[2*i] = 2*i + 1
		m[2*i+1] = 2 * i
	}
	return m
}

// TestByMappingWithMatchesFresh drives one Scratch and one destination
// graph through a chain of contractions — large graph, smaller graph, large
// again — in both layouts, checking each reused result against a fresh
// ByMapping of the same inputs and against the representation invariants.
// The shrink-then-grow sequence exercises stale counts, stale bucket
// offsets (the non-contiguous layout leaves untouched Start entries), and
// buffer regrowth.
func TestByMappingWithMatchesFresh(t *testing.T) {
	inputs := []*graph.Graph{
		gen.CliqueChain(20, 6),
		gen.Karate(),
		gen.Star(50),
		gen.CliqueChain(40, 5),
	}
	for _, layout := range []Layout{Contiguous, NonContiguous} {
		var s Scratch
		dst := &graph.Graph{}
		for gi, g := range inputs {
			match := pairMatch(g.NumVertices(), g.NumVertices()/3)
			mapping, k := Relabel(exec.Background(1), g, match)
			want := ByMapping(exec.Background(2), g, mapping, k, layout)
			got := ByMappingWith(exec.Background(4), g, mapping, k, layout, &s, dst)
			if got != dst {
				t.Fatalf("layout %v graph %d: destination not reused", layout, gi)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("layout %v graph %d: %v", layout, gi, err)
			}
			sameGraph(t, layout.String(), want, got)
			if got.TotalWeight(1) != g.TotalWeight(1) {
				t.Fatalf("layout %v graph %d: contraction changed total weight", layout, gi)
			}
		}
	}
}

// TestBucketWithReusesMapping checks the mapBuf path and that BucketWith
// equals Bucket.
func TestBucketWithReusesMapping(t *testing.T) {
	g := gen.CliqueChain(12, 4)
	match := pairMatch(g.NumVertices(), g.NumVertices()/2)
	wantG, wantMap := Bucket(exec.Background(1), g, match, Contiguous)

	mapBuf := make([]int64, g.NumVertices())
	var s Scratch
	gotG, gotMap := BucketWith(exec.Background(2), g, match, Contiguous, &s, nil, mapBuf)
	if &gotMap[0] != &mapBuf[0] {
		t.Fatal("BucketWith did not reuse the mapping buffer")
	}
	for i := range wantMap {
		if wantMap[i] != gotMap[i] {
			t.Fatalf("mapping[%d] = %d, want %d", i, gotMap[i], wantMap[i])
		}
	}
	sameGraph(t, "bucketwith", wantG, gotG)
}

// TestByMappingWithWholeGroups collapses a graph to a handful of
// communities under an arbitrary (non-matching) mapping, as the refinement
// rebuild does, through a reused scratch.
func TestByMappingWithWholeGroups(t *testing.T) {
	g := gen.CliqueChain(9, 5)
	n := g.NumVertices()
	mapping := make([]int64, n)
	for i := int64(0); i < n; i++ {
		mapping[i] = i % 3
	}
	var s Scratch
	dst := &graph.Graph{}
	want := ByMapping(exec.Background(1), g, mapping, 3, Contiguous)
	for trial := 0; trial < 3; trial++ {
		got := ByMappingWith(exec.Background(3), g, mapping, 3, Contiguous, &s, dst)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameGraph(t, "groups", want, got)
	}
}

// TestByMappingWithEmpty covers the degenerate empty graph.
func TestByMappingWithEmpty(t *testing.T) {
	g := graph.NewEmpty(0)
	var s Scratch
	ng := ByMappingWith(exec.Background(2), g, nil, 0, Contiguous, &s, &graph.Graph{})
	if ng.NumVertices() != 0 || ng.NumEdges() != 0 {
		t.Fatalf("empty contraction produced %d vertices / %d edges",
			ng.NumVertices(), ng.NumEdges())
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

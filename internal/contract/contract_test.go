package contract

import (
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
	"repro/internal/scoring"
)

// kernels under test.
var kernels = map[string]func(p int, g *graph.Graph, match []int64) (*graph.Graph, []int64){
	"bucket-contiguous": func(p int, g *graph.Graph, m []int64) (*graph.Graph, []int64) {
		return Bucket(exec.Background(p), g, m, Contiguous)
	},
	"bucket-noncontiguous": func(p int, g *graph.Graph, m []int64) (*graph.Graph, []int64) {
		return Bucket(exec.Background(p), g, m, NonContiguous)
	},
	"listchase": func(p int, g *graph.Graph, m []int64) (*graph.Graph, []int64) {
		return ListChase(exec.Background(p), g, m)
	},
}

// noMatch returns an all-unmatched matching.
func noMatch(n int64) []int64 {
	m := make([]int64, n)
	for i := range m {
		m[i] = matching.Unmatched
	}
	return m
}

func TestRelabelIdentityWhenUnmatched(t *testing.T) {
	g := gen.Ring(6)
	mapping, k := Relabel(exec.Background(2), g, noMatch(6))
	if k != 6 {
		t.Fatalf("k = %d, want 6", k)
	}
	for x, c := range mapping {
		if c != int64(x) {
			t.Fatalf("mapping[%d] = %d", x, c)
		}
	}
}

func TestRelabelPairs(t *testing.T) {
	// Pairs (0,3) and (1,2); vertex 4 unmatched.
	m := []int64{3, 2, 1, 0, matching.Unmatched}
	g := graph.NewEmpty(5)
	mapping, k := Relabel(exec.Background(1), g, m)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if mapping[0] != mapping[3] || mapping[1] != mapping[2] {
		t.Fatalf("pairs not collapsed: %v", mapping)
	}
	if mapping[0] == mapping[1] || mapping[0] == mapping[4] || mapping[1] == mapping[4] {
		t.Fatalf("distinct communities collided: %v", mapping)
	}
	// Dense ids: exactly {0, 1, 2}.
	seen := map[int64]bool{}
	for _, c := range mapping {
		if c < 0 || c >= k {
			t.Fatalf("id %d out of range", c)
		}
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("ids not dense: %v", mapping)
	}
}

func TestContractSingleEdgePair(t *testing.T) {
	// Matching the only edge folds its weight into the merged self-loop.
	g := graph.MustBuild(1, 2, []graph.Edge{{U: 0, V: 1, W: 5}})
	m := []int64{1, 0}
	for name, kern := range kernels {
		ng, mapping := kern(2, g, m)
		if err := ng.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ng.NumVertices() != 1 || ng.NumEdges() != 0 {
			t.Fatalf("%s: |V|=%d |E|=%d, want 1/0", name, ng.NumVertices(), ng.NumEdges())
		}
		if ng.Self[0] != 5 {
			t.Fatalf("%s: Self[0] = %d, want 5", name, ng.Self[0])
		}
		if mapping[0] != 0 || mapping[1] != 0 {
			t.Fatalf("%s: mapping %v", name, mapping)
		}
	}
}

func TestContractTriangleOnePair(t *testing.T) {
	// Triangle with vertices 0,1,2; match (0,1). New graph: 2 vertices, the
	// two edges {0,2} and {1,2} merge into one of weight 2, self-loop 1.
	g := graph.MustBuild(1, 3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	m := []int64{1, 0, matching.Unmatched}
	for name, kern := range kernels {
		ng, mapping := kern(1, g, m)
		if err := ng.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ng.NumVertices() != 2 || ng.NumEdges() != 1 {
			t.Fatalf("%s: |V|=%d |E|=%d, want 2/1", name, ng.NumVertices(), ng.NumEdges())
		}
		merged := mapping[0]
		if ng.Self[merged] != 1 {
			t.Fatalf("%s: merged self = %d, want 1", name, ng.Self[merged])
		}
		es := ng.Edges()
		if len(es) != 1 || es[0].W != 2 {
			t.Fatalf("%s: edges %v, want single weight-2 edge", name, es)
		}
	}
}

func TestContractPreservesTotalWeightAndDegrees(t *testing.T) {
	g, _, err := gen.LJSim(4, gen.DefaultLJSim(3000, 13))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.WeightedDegrees(4)
	scores := make([]float64, len(g.U))
	scoring.Modularity{}.Score(exec.Background(4), g, deg, g.TotalWeight(4), scores)
	res := matching.Worklist(exec.Background(4), g, scores)
	for name, kern := range kernels {
		ng, mapping := kern(4, g, res.Match)
		if err := ng.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := ng.TotalWeight(4), g.TotalWeight(4); got != want {
			t.Fatalf("%s: total weight %d, want %d", name, got, want)
		}
		// Volume conservation: each new vertex's weighted degree equals the
		// sum of its members' old weighted degrees.
		ndeg := ng.WeightedDegrees(4)
		wantDeg := make([]int64, ng.NumVertices())
		for x := int64(0); x < g.NumVertices(); x++ {
			wantDeg[mapping[x]] += deg[x]
		}
		for c := range wantDeg {
			if ndeg[c] != wantDeg[c] {
				t.Fatalf("%s: degree of community %d is %d, want %d", name, c, ndeg[c], wantDeg[c])
			}
		}
	}
}

func TestKernelsProduceIdenticalGraphs(t *testing.T) {
	r := par.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		n := int64(30 + r.Intn(100))
		var edges []graph.Edge
		for i := 0; i < int(n)*4; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(5) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		// Random valid matching over stored edges.
		m := noMatch(n)
		g.ForEachEdge(func(_ int64, u, v, _ int64) {
			if m[u] == matching.Unmatched && m[v] == matching.Unmatched && r.Float64() < 0.5 {
				m[u], m[v] = v, u
			}
		})
		var ref *graph.Graph
		var refName string
		for name, kern := range kernels {
			ng, _ := kern(3, g, m)
			if err := ng.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if ref == nil {
				ref, refName = ng, name
				continue
			}
			assertSameContraction(t, refName, ref, name, ng)
		}
	}
}

func assertSameContraction(t *testing.T, nameA string, a *graph.Graph, nameB string, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s vs %s: shape %d/%d vs %d/%d", nameA, nameB,
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for x := int64(0); x < a.NumVertices(); x++ {
		if a.Self[x] != b.Self[x] {
			t.Fatalf("%s vs %s: Self[%d] %d vs %d", nameA, nameB, x, a.Self[x], b.Self[x])
		}
	}
	ae, be := a.Edges(), b.Edges()
	sortEdges(ae)
	sortEdges(be)
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s vs %s: edge %d: %v vs %v", nameA, nameB, i, ae[i], be[i])
		}
	}
}

func sortEdges(es []graph.Edge) {
	par.Sort(1, es, func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}

func TestContractNoMatchingIsIsomorphic(t *testing.T) {
	g, _, err := gen.SBM(2, gen.SBMConfig{Blocks: []int64{40, 40}, PIn: 0.3, POut: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for name, kern := range kernels {
		ng, mapping := kern(2, g, noMatch(g.NumVertices()))
		if ng.NumVertices() != g.NumVertices() || ng.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: shape changed with empty matching", name)
		}
		for x, c := range mapping {
			if c != int64(x) {
				t.Fatalf("%s: mapping[%d] = %d", name, x, c)
			}
		}
		assertSameContraction(t, "original", g, name, ng)
	}
}

func TestContractProperty(t *testing.T) {
	// Weight conservation + validity for arbitrary graphs and matchings.
	f := func(raw []uint16, pairsRaw []uint16, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		const n = 24
		var edges []graph.Edge
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, graph.Edge{
				U: int64(raw[i] % n), V: int64(raw[i+1] % n), W: int64(raw[i+2]%6) + 1})
		}
		g, err := graph.Build(p, n, edges)
		if err != nil {
			return false
		}
		m := noMatch(n)
		for i := 0; i+1 < len(pairsRaw); i += 2 {
			a, b := int64(pairsRaw[i]%n), int64(pairsRaw[i+1]%n)
			if a != b && m[a] == matching.Unmatched && m[b] == matching.Unmatched {
				m[a], m[b] = b, a
			}
		}
		want := g.TotalWeight(p)
		for _, kern := range kernels {
			ng, mapping := kern(p, g, m)
			if ng.Validate() != nil || ng.TotalWeight(p) != want {
				return false
			}
			for x := int64(0); x < n; x++ {
				if mm := m[x]; mm != matching.Unmatched && mapping[x] != mapping[mm] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNonContiguousLeavesValidGaps(t *testing.T) {
	// After a noncontiguous contraction with duplicate-accumulation the
	// arrays may contain gaps; Compact must normalize without changing the
	// graph.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1000, 21))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.WeightedDegrees(2)
	scores := make([]float64, len(g.U))
	scoring.Modularity{}.Score(exec.Background(2), g, deg, g.TotalWeight(2), scores)
	res := matching.Worklist(exec.Background(2), g, scores)
	ng, _ := Bucket(exec.Background(2), g, res.Match, NonContiguous)
	w := ng.TotalWeight(2)
	edges := ng.Edges()
	graph.Compact(2, ng)
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if ng.TotalWeight(2) != w {
		t.Fatal("Compact changed the total weight")
	}
	after := ng.Edges()
	sortEdges(edges)
	sortEdges(after)
	for i := range edges {
		if edges[i] != after[i] {
			t.Fatalf("edge %d changed: %v vs %v", i, edges[i], after[i])
		}
	}
}

func TestLayoutString(t *testing.T) {
	if Contiguous.String() != "contiguous" || NonContiguous.String() != "noncontiguous" {
		t.Fatal("layout names wrong")
	}
}

func TestPairQuickSortMatchesStdlib(t *testing.T) {
	r := par.NewRNG(41)
	for trial := 0; trial < 40; trial++ {
		n := r.Intn(500)
		v := make([]int64, n)
		w := make([]int64, n)
		for i := range v {
			v[i] = r.Int63n(50) // plenty of duplicates
			w[i] = int64(i)
		}
		type pair struct{ v, w int64 }
		want := make([]pair, n)
		for i := range want {
			want[i] = pair{v[i], w[i]}
		}
		par.Sort(1, want, func(a, b pair) bool {
			if a.v != b.v {
				return a.v < b.v
			}
			return a.w < b.w
		})
		pairQuickSort(v, w)
		// Keys must match the reference order; payloads must be a
		// permutation within equal-key runs.
		for i := range want {
			if v[i] != want[i].v {
				t.Fatalf("trial %d: key[%d] = %d, want %d", trial, i, v[i], want[i].v)
			}
		}
		seen := map[int64]bool{}
		for _, x := range w {
			if seen[x] {
				t.Fatalf("trial %d: payload duplicated", trial)
			}
			seen[x] = true
		}
	}
}

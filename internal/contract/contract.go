// Package contract implements step 3 of the agglomerative loop (§III,
// §IV-C): collapsing matched community pairs into a new, smaller community
// graph. Contraction takes 40–80% of total execution time, so the paper's
// central engineering contribution is here.
//
// Two kernels are provided:
//
//   - Bucket: the paper's improved algorithm. Edge endpoints are relabeled
//     to the new vertex numbering and re-oriented by the parity hash; edges
//     are counted per destination bucket, placed with an atomic
//     fetch-and-add, sorted by neighbor within each bucket, and identical
//     edges accumulated in place, shortening the bucket. Bucket offsets
//     come either from a synchronizing prefix sum (Contiguous) or from
//     bump-allocation with a single atomic cursor (NonContiguous) — the
//     paper describes both and times neither, so both are kept and
//     benchmarked as an ablation.
//
//   - ListChase: the 2011 algorithm (a technique due to John T. Feo) kept
//     as an ablation baseline. Relabeled edges are inserted into hash
//     chains — linked lists guarded per slot, full/empty bits on the XMT,
//     locks here — accumulating weights on hit and appending on miss. The
//     paper found a similar OpenMP implementation "infeasible"; the kernel
//     exists to reproduce that comparison.
package contract

import (
	"sync/atomic"

	"repro/internal/buf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/par"
)

// Layout selects how Bucket lays the new graph's buckets out in memory.
type Layout int

const (
	// Contiguous stores buckets back to back in increasing vertex order,
	// which costs a synchronizing prefix sum over bucket counts.
	Contiguous Layout = iota
	// NonContiguous gives each bucket a region allocated with one atomic
	// fetch-and-add, so buckets land in arbitrary order; nothing beyond the
	// fetch-and-add synchronizes.
	NonContiguous
)

// String returns the layout's name for benchmark labels.
func (l Layout) String() string {
	if l == Contiguous {
		return "contiguous"
	}
	return "noncontiguous"
}

// Scratch holds the bucket kernel's reusable working state: the per-bucket
// counts, the per-worker count and self-loop histogram stripes, and the
// edge-balanced partition workspace. A zero Scratch is ready to use;
// buffers grow to the largest graph seen and are reused for every smaller
// one, so the engine's steady-state phases allocate nothing here. A Scratch
// must not be shared by concurrent contractions.
type Scratch struct {
	counts      []int64 // per-new-vertex surviving-edge counts
	cntStripes  []int64 // spans × k edge-count histogram / write cursors
	selfStripes []int64 // spans × k self-loop weight partials
	flags       []int64 // ByLabels's used-label flags / dense-id prefix sums
	// part is the kernel's own edge-balanced partition workspace. The
	// count/scatter sweeps use it only when the engine has not already
	// installed a matching level partition on the Ctx; the dedup stage
	// rebuilds it over the surviving-bucket lengths either way.
	part par.Partition
}

// orNew returns s, or a fresh Scratch when s is nil, keeping the kernels'
// scratch in a single-assignment variable.
func (s *Scratch) orNew() *Scratch {
	if s != nil {
		return s
	}
	return &Scratch{}
}

// prepDst readies dst as a k-vertex destination graph, allocating a fresh
// one when dst is nil.
func prepDst(dst *graph.Graph, k int64) *graph.Graph {
	if dst == nil {
		return graph.NewEmpty(k)
	}
	dst.ResizeVertices(k)
	return dst
}

// Relabel computes the old→new vertex mapping induced by a matching:
// matched pairs share the new id of their smaller endpoint, unmatched
// vertices keep their own, and new ids are dense in [0, k). It returns the
// mapping and k.
func Relabel(ec *exec.Ctx, g *graph.Graph, match []int64) (mapping []int64, k int64) {
	return RelabelInto(ec, g, match, nil)
}

// RelabelInto is Relabel writing the mapping into mapBuf when its capacity
// suffices (growing it otherwise); mapBuf may be nil. The results are unnamed
// and the mapping lives in a single-assignment local so no closure capture
// heap-boxes it (see the worklist kernel for the boxing rule).
func RelabelInto(ec *exec.Ctx, g *graph.Graph, match []int64, mapBuf []int64) ([]int64, int64) {
	n := int(g.NumVertices())
	mapping := buf.Grow(mapBuf, n)
	// mapping temporarily holds a leader flag, then its prefix sum.
	if ec.Serial(n) {
		for x := 0; x < n; x++ {
			m := match[x]
			if m == matching.Unmatched || int64(x) < m {
				mapping[x] = 1
			} else {
				mapping[x] = 0
			}
		}
		k := ec.ExclusiveSumInt64(mapping)
		for x := 0; x < n; x++ {
			if m := match[x]; m != matching.Unmatched && m < int64(x) {
				mapping[x] = mapping[m]
			}
		}
		return mapping, k
	}
	ec.For(n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			m := match[x]
			if m == matching.Unmatched || int64(x) < m {
				mapping[x] = 1
			} else {
				mapping[x] = 0
			}
		}
	})
	k := ec.ExclusiveSumInt64(mapping)
	// Followers copy their leader's dense id. Leaders already hold theirs.
	ec.For(n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if m := match[x]; m != matching.Unmatched && m < int64(x) {
				mapping[x] = mapping[m]
			}
		}
	})
	return mapping, k
}

// Bucket contracts g according to match using the paper's bucket-sort
// kernel with p workers and the chosen bucket layout. It returns the new
// community graph and the old→new vertex mapping. g is not modified.
func Bucket(ec *exec.Ctx, g *graph.Graph, match []int64, layout Layout) (*graph.Graph, []int64) {
	return BucketWith(ec, g, match, layout, nil, nil, nil)
}

// BucketWith is Bucket with arena support: s supplies the kernel's scratch
// buffers, dst the destination graph whose arrays are reused in place, and
// mapBuf the storage for the returned mapping. Any of them may be nil for
// fresh allocations.
//
// When ec carries a recorder the kernel records sub-spans for every stage
// (relabel, partition, count, offsets, scatter, dedup), the bucket-occupancy
// histogram, the edges-in/survived/out counters, the sort-vs-accumulate
// nanosecond split of the dedup stage, and per-region worker busy times. A
// nil recorder adds only predictable branches at stage boundaries — nothing
// per edge.
func BucketWith(ec *exec.Ctx, g *graph.Graph, match []int64, layout Layout, s *Scratch, dst *graph.Graph, mapBuf []int64) (*graph.Graph, []int64) {
	rec := ec.Recorder()
	sp := rec.Begin(obs.CatContract, "relabel", -1)
	mapping, k := RelabelInto(ec, g, match, mapBuf)
	sp.EndArgs("old", g.NumVertices(), "new", k)
	return byMappingRun(ec, g, mapping, k, layout, s, dst), mapping
}

// ByMapping contracts g under an arbitrary old→new vertex mapping with
// dense new ids in [0, k), using the same bucket-sort kernel as Bucket.
// Matching-induced contraction merges pairs; this generalization collapses
// whole groups, which the engine's refinement integration uses to rebuild
// the community graph from a refined partition.
func ByMapping(ec *exec.Ctx, g *graph.Graph, mapping []int64, k int64, layout Layout) *graph.Graph {
	return ByMappingWith(ec, g, mapping, k, layout, nil, nil)
}

// ByMappingWith is ByMapping with arena support: s supplies reusable scratch
// and dst the output graph whose arrays are recycled (both may be nil for
// fresh allocations — ByMapping's behavior).
//
// Unlike the seed kernel, the count and scatter sweeps never touch a shared
// atomic per edge. The old graph's edges are partitioned once into
// edge-exact spans (the engine's installed level partition when one matches
// g, a locally built one otherwise) — hub buckets may be split across
// spans; each span counts surviving edges (and accumulates collapsed-edge
// and old self-loop weight) into its own k-wide histogram stripe; the
// striped-offset reduction turns the stripes into per-(span, bucket) write
// cursors in parallel; and the scatter sweep replays the identical spans,
// so every span writes a disjoint sub-range of each destination bucket with
// plain stores. This is the radix-partition
// discipline Staudt & Meyerhenke and Lu & Halappanavar use in place of
// fetch-and-add on cache-based machines: the XMT's cheap hot-spot atomics
// have no analogue here, and one atomic per edge serializes exactly on the
// high-degree communities the parity hash is meant to spread.
func ByMappingWith(ec *exec.Ctx, g *graph.Graph, mapping []int64, k int64, layout Layout, scratch *Scratch, dst *graph.Graph) *graph.Graph {
	return byMappingRun(ec, g, mapping, k, layout, scratch, dst)
}

// ByLabels contracts g by an arbitrary per-vertex label array: labels[v] is
// any value in [0, n), groups of equal label collapse into one community,
// and the labels need not be dense — ByLabels densifies them first. It
// returns the contracted graph, the dense old→new mapping, and the new
// vertex count k. This is the bridge from label-propagation prelabeling
// (internal/plp) to the bucket-sort contraction kernel: PLP leaves labels
// that are surviving vertex ids, and one densify pass turns them into the
// mapping ByMapping already handles.
func ByLabels(ec *exec.Ctx, g *graph.Graph, labels []int64, layout Layout) (*graph.Graph, []int64, int64) {
	return ByLabelsWith(ec, g, labels, layout, nil, nil, nil)
}

// ByLabelsWith is ByLabels with arena support: s supplies reusable scratch
// (including the densify flag array), dst the destination graph, and mapBuf
// the storage for the returned mapping; any may be nil for fresh
// allocations.
func ByLabelsWith(ec *exec.Ctx, g *graph.Graph, labels []int64, layout Layout, scratch *Scratch, dst *graph.Graph, mapBuf []int64) (*graph.Graph, []int64, int64) {
	rec := ec.Recorder()
	s := scratch.orNew()
	n := int(g.NumVertices())
	sp := rec.Begin(obs.CatContract, "densify", -1)
	// flags[l] = 1 for every used label, then its exclusive prefix sum: the
	// dense id of label l. The parallel mark is a concurrent same-value
	// store (several vertices share a label), so it goes through atomics for
	// the race detector's benefit; the outcome is order-independent.
	s.flags = buf.Grow(s.flags, n)
	flags := s.flags
	ec.ZeroInt64(flags)
	mapping := buf.Grow(mapBuf, n)
	if ec.Serial(n) {
		for v := 0; v < n; v++ {
			flags[labels[v]] = 1
		}
	} else {
		ec.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				atomic.StoreInt64(&flags[labels[v]], 1)
			}
		})
	}
	k := ec.ExclusiveSumInt64(flags)
	if ec.Serial(n) {
		for v := 0; v < n; v++ {
			mapping[v] = flags[labels[v]]
		}
	} else {
		ec.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				mapping[v] = flags[labels[v]]
			}
		})
	}
	sp.EndArgs("old", int64(n), "new", k)
	return byMappingRun(ec, g, mapping, k, layout, s, dst), mapping, k
}

func byMappingRun(ec *exec.Ctx, g *graph.Graph, mapping []int64, k int64, layout Layout, scratch *Scratch, dst *graph.Graph) *graph.Graph {
	rec := ec.Recorder()
	s := scratch.orNew()
	ng := prepDst(dst, k) // single-assignment: ng is closure-captured below
	n := int(g.NumVertices())
	if n == 0 || k == 0 {
		ng.ResizeEdges(0)
		ng.SetCounts(k, 0)
		ec.ZeroInt64(ng.Self)
		ec.ZeroInt64(ng.Start)
		ec.ZeroInt64(ng.End)
		return ng
	}

	rec.Add(obs.CtrContractEdgesIn, g.NumEdges())

	// Adopt the engine's edge-balanced level partition when one is installed
	// for this graph, and build our own otherwise. Either way the count and
	// scatter sweeps walk the same edge-exact spans — each span owns a
	// private histogram stripe, which is the precondition for stripes
	// replacing atomics. Hub buckets may be split across spans; the Self
	// fold guards on owning the bucket's first edge so each vertex's
	// per-vertex work is folded exactly once.
	spPart := rec.Begin(obs.CatContract, "partition", -1)
	serial := ec.Serial(n)
	pt := ec.Balanced(n, g.NumEdges())
	if pt == nil && !serial {
		ec.BuildBuckets(&s.part, n, g.Start, g.End)
		pt = &s.part
	}
	spans := 1
	if !serial {
		spans = pt.Workers()
	}
	spPart.EndArgs("workers", int64(spans), "vertices", int64(n))

	// Count surviving cross edges per (span, new bucket) stripe; collapsed
	// edges (both endpoints in one community) and old self-loops accumulate
	// into the span's self-loop stripe in the same sweep.
	spCount := rec.Begin(obs.CatContract, "count", -1)
	kk := int(k)
	s.cntStripes = buf.Grow(s.cntStripes, spans*kk)
	s.selfStripes = buf.Grow(s.selfStripes, spans*kk)
	cntS, selfS := s.cntStripes, s.selfStripes
	ec.ZeroInt64(cntS)
	ec.ZeroInt64(selfS)
	// The sweep bodies are plain functions (closure literals handed to the
	// loop primitives escape and heap-allocate even on the one-worker path,
	// which would break the arena's zero-allocation steady state).
	if serial {
		countSweepRange(g, mapping, cntS[:kk], selfS[:kk], 0, n, g.Start[0], g.End[n-1])
	} else {
		ec.ForSpans("contract/count", pt, func(j int, sp par.Span) {
			base := j * kk
			countSweepRange(g, mapping, cntS[base:base+kk], selfS[base:base+kk], sp.LoV, sp.HiV, sp.LoE, sp.HiE)
		})
	}
	spCount.End()

	// Parallel reductions over span×bucket: per-bucket totals plus
	// exclusive per-span write offsets from the count stripes, and the new
	// self-loop weights from the self stripes (overwriting — reused dst
	// arrays never need pre-zeroing).
	spOff := rec.Begin(obs.CatContract, "offsets", -1)
	s.counts = buf.Grow(s.counts, kk)
	counts := s.counts
	ec.StripeOffsets(cntS, spans, kk, counts)
	ec.MergeStripes(selfS, spans, kk, ng.Self)
	rec.ObserveBuckets(counts[:kk])

	// Bucket offsets: prefix sum (contiguous) or bump allocation
	// (non-contiguous); either way ng.Start[c] is c's base position.
	var total int64
	switch layout {
	case Contiguous:
		if ec.Serial(kk) {
			copy(ng.Start[:kk], counts[:kk])
		} else {
			ec.For(kk, func(lo, hi int) {
				for c := lo; c < hi; c++ {
					ng.Start[c] = counts[c]
				}
			})
		}
		total = ec.ExclusiveSumInt64(ng.Start)
	case NonContiguous:
		if ec.Serial(kk) {
			var bump int64
			for c := 0; c < kk; c++ {
				if counts[c] == 0 {
					ng.Start[c] = 0 // reused arrays hold stale offsets
					continue
				}
				ng.Start[c] = bump
				bump += counts[c]
			}
			total = bump
		} else {
			var bump int64
			ec.For(kk, func(lo, hi int) {
				for c := lo; c < hi; c++ {
					if counts[c] == 0 {
						ng.Start[c] = 0 // reused arrays hold stale offsets
						continue
					}
					ng.Start[c] = atomic.AddInt64(&bump, counts[c]) - counts[c]
				}
			})
			total = bump
		}
	}
	ng.ResizeEdges(total)
	spOff.EndArgs("survived", total, "buckets", k)
	rec.Add(obs.CtrContractSurvived, total)

	// Scatter (j; w) into the bucket of the stored-first endpoint, leaving
	// the first endpoint implicit (§IV-C) — it is filled in during the
	// sort-accumulate step. Each span replays exactly the edge range it
	// counted (same partition, same span index, so the same stripe),
	// advancing its private cursors cntS[j·k+c] within the per-span
	// sub-range of each bucket: no synchronization at all.
	spScat := rec.Begin(obs.CatContract, "scatter", -1)
	if serial {
		scatterSweepRange(g, ng, mapping, cntS[:kk], 0, n, g.Start[0], g.End[n-1])
	} else {
		ec.ForSpans("contract/scatter", pt, func(j int, sp par.Span) {
			base := j * kk
			scatterSweepRange(g, ng, mapping, cntS[base:base+kk], sp.LoV, sp.HiV, sp.LoE, sp.HiE)
		})
	}
	spScat.End()

	// Per-bucket sort by neighbor, accumulate identical edges, shorten the
	// bucket, and fill in the implicit first endpoint. The recording variant
	// additionally splits each bucket's time into its sort and accumulate
	// halves via chunk-flushed hot counters; the disabled path keeps the
	// clock-read-free dedupBuckets.
	// Dedup cost per bucket is ~len·log len, so the dynamic chunker's
	// equal-count chunks go badly wrong on skewed bucket sizes; rebuild the
	// scratch partition over the surviving counts (the count/scatter
	// schedule is spent by now) for a statically balanced sweep instead.
	spDedup := rec.Begin(obs.CatContract, "dedup", -1)
	var dedupT0 int64
	if rec.Enabled() {
		dedupT0 = obs.NowNS()
	}
	hot := rec.Hot()
	var live int64
	if ec.Serial(kk) {
		if hot != nil {
			live = dedupBucketsTimed(ng, counts, hot, 0, kk)
		} else {
			live = dedupBuckets(ng, counts, 0, kk)
		}
	} else if ec.DynamicOnly() {
		var acc int64
		if hot != nil {
			ec.ForDynamic(kk, 0, func(lo, hi int) {
				atomic.AddInt64(&acc, dedupBucketsTimed(ng, counts, hot, lo, hi))
			})
		} else {
			ec.ForDynamic(kk, 0, func(lo, hi int) {
				atomic.AddInt64(&acc, dedupBuckets(ng, counts, lo, hi))
			})
		}
		live = acc
	} else {
		ec.BuildWeights(&s.part, kk, counts)
		var acc int64
		if hot != nil {
			ec.ForRanges("contract/dedup", &s.part, func(lo, hi int) {
				atomic.AddInt64(&acc, dedupBucketsTimed(ng, counts, hot, lo, hi))
			})
		} else {
			ec.ForRanges("contract/dedup", &s.part, func(lo, hi int) {
				atomic.AddInt64(&acc, dedupBuckets(ng, counts, lo, hi))
			})
		}
		live = acc
	}
	ng.SetCounts(k, live)
	if rec.Enabled() {
		rec.ObserveLatency(obs.LatContractDedup, obs.NowNS()-dedupT0)
	}
	spDedup.EndArgs("in", total, "out", live)
	rec.Add(obs.CtrContractEdgesOut, live)
	rec.FoldHot()
	return ng
}

// countSweepRange counts surviving cross edges into the span's k-wide
// stripe (cntS/selfS are already the span's sub-slices), folding
// collapsed-edge and old self-loop weight into the self stripe. The range
// follows the Span clamp discipline: eloFirst/ehiLast clamp the first and
// last bucket to the span's exact edge run. A vertex's per-vertex work —
// the old self-loop fold — belongs to the span piece that owns the
// bucket's first edge, so a hub bucket split across spans folds it exactly
// once.
func countSweepRange(g *graph.Graph, mapping []int64, cntS, selfS []int64, lo, hi int, eloFirst, ehiLast int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		if elo == g.Start[x] {
			if sw := g.Self[x]; sw != 0 {
				selfS[mapping[x]] += sw
			}
		}
		for e := elo; e < ehi; e++ {
			ni, nj := mapping[g.U[e]], mapping[g.V[e]]
			if ni == nj {
				selfS[ni] += g.W[e]
				continue
			}
			first, _ := graph.StoredOrder(ni, nj)
			cntS[first]++
		}
	}
}

// scatterSweepRange replays countSweepRange's exact edge range against the
// same stripe, writing each surviving edge at its private cursor position.
func scatterSweepRange(g, ng *graph.Graph, mapping []int64, cntS []int64, lo, hi int, eloFirst, ehiLast int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			ni, nj := mapping[g.U[e]], mapping[g.V[e]]
			if ni == nj {
				continue
			}
			first, second := graph.StoredOrder(ni, nj)
			pos := ng.Start[first] + cntS[first]
			cntS[first]++
			ng.V[pos] = second
			ng.W[pos] = g.W[e]
		}
	}
}

// dedupBuckets sorts and deduplicates buckets [lo, hi) of ng in place and
// returns the number of surviving edges.
func dedupBuckets(ng *graph.Graph, counts []int64, lo, hi int) int64 {
	var live int64
	for c := lo; c < hi; c++ {
		s, cnt := ng.Start[c], counts[c]
		newLen := sortDedupBucket(ng.V[s:s+cnt], ng.W[s:s+cnt])
		ng.End[c] = s + newLen
		for e := s; e < s+newLen; e++ {
			ng.U[e] = int64(c)
		}
		live += newLen
	}
	return live
}

// dedupBucketsTimed is dedupBuckets splitting each bucket's work into its
// sort and accumulate halves. The nanosecond totals accumulate into
// chunk-locals and flush once per chunk into hot — the clock reads are the
// whole point of this variant, so it runs only when recording.
func dedupBucketsTimed(ng *graph.Graph, counts []int64, hot *obs.Hot, lo, hi int) int64 {
	var live, sortNS, accumNS int64
	for c := lo; c < hi; c++ {
		s, cnt := ng.Start[c], counts[c]
		v, w := ng.V[s:s+cnt], ng.W[s:s+cnt]
		newLen := cnt
		if cnt >= 2 {
			// obs.NowNS, not time.Now: all kernel-side timing goes through
			// the obs clock (enforced by the vet-obs lint), and this variant
			// runs only when recording.
			t0 := obs.NowNS()
			pairQuickSort(v, w)
			t1 := obs.NowNS()
			newLen = dedupSorted(v, w)
			accumNS += obs.NowNS() - t1
			sortNS += t1 - t0
		}
		ng.End[c] = s + newLen
		for e := s; e < s+newLen; e++ {
			ng.U[e] = int64(c)
		}
		live += newLen
	}
	hot.Add(obs.CtrContractSortNS, sortNS)
	hot.Add(obs.CtrContractAccumNS, accumNS)
	return live
}

// sortDedupBucket sorts parallel slices (v, w) by v and accumulates weights
// of equal v in place, returning the deduplicated length. Contraction sorts
// one bucket per surviving community every phase, so this runs on the
// hottest path of the hottest primitive; the dedicated pair quicksort
// avoids sort.Interface's virtual calls.
func sortDedupBucket(v, w []int64) int64 {
	if len(v) < 2 {
		return int64(len(v))
	}
	pairQuickSort(v, w)
	return dedupSorted(v, w)
}

// dedupSorted accumulates weights of equal neighbors in the sorted pair
// slices in place and returns the shortened length.
func dedupSorted(v, w []int64) int64 {
	out := 0
	for i := 0; i < len(v); {
		j := i + 1
		acc := w[i]
		for j < len(v) && v[j] == v[i] {
			acc += w[j]
			j++
		}
		v[out] = v[i]
		w[out] = acc
		out++
		i = j
	}
	return int64(out)
}

// pairQuickSort sorts parallel slices by v: median-of-three quicksort with
// an insertion-sort cutoff, recursing into the smaller side to bound the
// stack.
func pairQuickSort(v, w []int64) {
	for len(v) > 24 {
		// Median of three to the pivot position 0.
		m := len(v) / 2
		hi := len(v) - 1
		if v[m] < v[0] {
			v[m], v[0] = v[0], v[m]
			w[m], w[0] = w[0], w[m]
		}
		if v[hi] < v[0] {
			v[hi], v[0] = v[0], v[hi]
			w[hi], w[0] = w[0], w[hi]
		}
		if v[hi] < v[m] {
			v[hi], v[m] = v[m], v[hi]
			w[hi], w[m] = w[m], w[hi]
		}
		pivot := v[m]
		i, j := 0, hi
		for i <= j {
			for v[i] < pivot {
				i++
			}
			for v[j] > pivot {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				w[i], w[j] = w[j], w[i]
				i++
				j--
			}
		}
		// Recurse into the smaller partition, loop on the larger.
		if j+1 < len(v)-i {
			pairQuickSort(v[:j+1], w[:j+1])
			v, w = v[i:], w[i:]
		} else {
			pairQuickSort(v[i:], w[i:])
			v, w = v[:j+1], w[:j+1]
		}
	}
	// Insertion sort for short runs.
	for i := 1; i < len(v); i++ {
		cv, cw := v[i], w[i]
		j := i - 1
		for j >= 0 && v[j] > cv {
			v[j+1], w[j+1] = v[j], w[j]
			j--
		}
		v[j+1], w[j+1] = cv, cw
	}
}

// Package contract implements step 3 of the agglomerative loop (§III,
// §IV-C): collapsing matched community pairs into a new, smaller community
// graph. Contraction takes 40–80% of total execution time, so the paper's
// central engineering contribution is here.
//
// Two kernels are provided:
//
//   - Bucket: the paper's improved algorithm. Edge endpoints are relabeled
//     to the new vertex numbering and re-oriented by the parity hash; edges
//     are counted per destination bucket, placed with an atomic
//     fetch-and-add, sorted by neighbor within each bucket, and identical
//     edges accumulated in place, shortening the bucket. Bucket offsets
//     come either from a synchronizing prefix sum (Contiguous) or from
//     bump-allocation with a single atomic cursor (NonContiguous) — the
//     paper describes both and times neither, so both are kept and
//     benchmarked as an ablation.
//
//   - ListChase: the 2011 algorithm (a technique due to John T. Feo) kept
//     as an ablation baseline. Relabeled edges are inserted into hash
//     chains — linked lists guarded per slot, full/empty bits on the XMT,
//     locks here — accumulating weights on hit and appending on miss. The
//     paper found a similar OpenMP implementation "infeasible"; the kernel
//     exists to reproduce that comparison.
package contract

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
)

// Layout selects how Bucket lays the new graph's buckets out in memory.
type Layout int

const (
	// Contiguous stores buckets back to back in increasing vertex order,
	// which costs a synchronizing prefix sum over bucket counts.
	Contiguous Layout = iota
	// NonContiguous gives each bucket a region allocated with one atomic
	// fetch-and-add, so buckets land in arbitrary order; nothing beyond the
	// fetch-and-add synchronizes.
	NonContiguous
)

// String returns the layout's name for benchmark labels.
func (l Layout) String() string {
	if l == Contiguous {
		return "contiguous"
	}
	return "noncontiguous"
}

// Relabel computes the old→new vertex mapping induced by a matching:
// matched pairs share the new id of their smaller endpoint, unmatched
// vertices keep their own, and new ids are dense in [0, k). It returns the
// mapping and k.
func Relabel(p int, g *graph.Graph, match []int64) (mapping []int64, k int64) {
	n := int(g.NumVertices())
	mapping = make([]int64, n)
	// mapping temporarily holds a leader flag, then its prefix sum.
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			m := match[x]
			if m == matching.Unmatched || int64(x) < m {
				mapping[x] = 1
			} else {
				mapping[x] = 0
			}
		}
	})
	k = par.ExclusiveSumInt64(p, mapping)
	// Followers copy their leader's dense id. Leaders already hold theirs.
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if m := match[x]; m != matching.Unmatched && m < int64(x) {
				mapping[x] = mapping[m]
			}
		}
	})
	return mapping, k
}

// Bucket contracts g according to match using the paper's bucket-sort
// kernel with p workers and the chosen bucket layout. It returns the new
// community graph and the old→new vertex mapping. g is not modified.
func Bucket(p int, g *graph.Graph, match []int64, layout Layout) (*graph.Graph, []int64) {
	mapping, k := Relabel(p, g, match)
	return ByMapping(p, g, mapping, k, layout), mapping
}

// ByMapping contracts g under an arbitrary old→new vertex mapping with
// dense new ids in [0, k), using the same bucket-sort kernel as Bucket.
// Matching-induced contraction merges pairs; this generalization collapses
// whole groups, which the engine's refinement integration uses to rebuild
// the community graph from a refined partition.
func ByMapping(p int, g *graph.Graph, mapping []int64, k int64, layout Layout) *graph.Graph {
	ng := graph.NewEmpty(k)
	n := int(g.NumVertices())

	// Fold old self-loops into the new vertices.
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if s := g.Self[x]; s != 0 {
				atomic.AddInt64(&ng.Self[mapping[x]], s)
			}
		}
	})

	// Count surviving cross edges per new bucket; collapsed edges (both
	// endpoints in one community) accumulate into the new self-loops here,
	// so the sweep below only sees cross edges.
	counts := make([]int64, k)
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				ni, nj := mapping[g.U[e]], mapping[g.V[e]]
				if ni == nj {
					atomic.AddInt64(&ng.Self[ni], g.W[e])
					continue
				}
				first, _ := graph.StoredOrder(ni, nj)
				atomic.AddInt64(&counts[first], 1)
			}
		}
	})

	// Bucket offsets: prefix sum (contiguous) or bump allocation
	// (non-contiguous); either way cursor[c] is c's write position.
	var total int64
	cursor := make([]int64, k)
	switch layout {
	case Contiguous:
		copy(cursor, counts)
		total = par.ExclusiveSumInt64(p, cursor)
		par.For(p, int(k), func(lo, hi int) {
			for c := lo; c < hi; c++ {
				ng.Start[c] = cursor[c]
			}
		})
	case NonContiguous:
		var bump int64
		par.For(p, int(k), func(lo, hi int) {
			for c := lo; c < hi; c++ {
				if counts[c] == 0 {
					continue
				}
				ng.Start[c] = atomic.AddInt64(&bump, counts[c]) - counts[c]
				cursor[c] = ng.Start[c]
			}
		})
		total = bump
	}
	ng.U = make([]int64, total)
	ng.V = make([]int64, total)
	ng.W = make([]int64, total)

	// Scatter (j; w) into the bucket of the stored-first endpoint, leaving
	// the first endpoint implicit (§IV-C) — it is filled in during the
	// sort-accumulate step.
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				ni, nj := mapping[g.U[e]], mapping[g.V[e]]
				if ni == nj {
					continue
				}
				first, second := graph.StoredOrder(ni, nj)
				pos := atomic.AddInt64(&cursor[first], 1) - 1
				ng.V[pos] = second
				ng.W[pos] = g.W[e]
			}
		}
	})

	// Per-bucket sort by neighbor, accumulate identical edges, shorten the
	// bucket, and fill in the implicit first endpoint.
	var live int64
	par.ForDynamic(p, int(k), 0, func(lo, hi int) {
		var localLive int64
		for c := lo; c < hi; c++ {
			s, cnt := ng.Start[c], counts[c]
			newLen := sortDedupBucket(ng.V[s:s+cnt], ng.W[s:s+cnt])
			ng.End[c] = s + newLen
			for e := s; e < s+newLen; e++ {
				ng.U[e] = int64(c)
			}
			localLive += newLen
		}
		atomic.AddInt64(&live, localLive)
	})
	ng.SetCounts(k, live)
	return ng
}

// sortDedupBucket sorts parallel slices (v, w) by v and accumulates weights
// of equal v in place, returning the deduplicated length. Contraction sorts
// one bucket per surviving community every phase, so this runs on the
// hottest path of the hottest primitive; the dedicated pair quicksort
// avoids sort.Interface's virtual calls.
func sortDedupBucket(v, w []int64) int64 {
	if len(v) < 2 {
		return int64(len(v))
	}
	pairQuickSort(v, w)
	out := 0
	for i := 0; i < len(v); {
		j := i + 1
		acc := w[i]
		for j < len(v) && v[j] == v[i] {
			acc += w[j]
			j++
		}
		v[out] = v[i]
		w[out] = acc
		out++
		i = j
	}
	return int64(out)
}

// pairQuickSort sorts parallel slices by v: median-of-three quicksort with
// an insertion-sort cutoff, recursing into the smaller side to bound the
// stack.
func pairQuickSort(v, w []int64) {
	for len(v) > 24 {
		// Median of three to the pivot position 0.
		m := len(v) / 2
		hi := len(v) - 1
		if v[m] < v[0] {
			v[m], v[0] = v[0], v[m]
			w[m], w[0] = w[0], w[m]
		}
		if v[hi] < v[0] {
			v[hi], v[0] = v[0], v[hi]
			w[hi], w[0] = w[0], w[hi]
		}
		if v[hi] < v[m] {
			v[hi], v[m] = v[m], v[hi]
			w[hi], w[m] = w[m], w[hi]
		}
		pivot := v[m]
		i, j := 0, hi
		for i <= j {
			for v[i] < pivot {
				i++
			}
			for v[j] > pivot {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				w[i], w[j] = w[j], w[i]
				i++
				j--
			}
		}
		// Recurse into the smaller partition, loop on the larger.
		if j+1 < len(v)-i {
			pairQuickSort(v[:j+1], w[:j+1])
			v, w = v[i:], w[i:]
		} else {
			pairQuickSort(v[i:], w[i:])
			v, w = v[:j+1], w[:j+1]
		}
	}
	// Insertion sort for short runs.
	for i := 1; i < len(v); i++ {
		cv, cw := v[i], w[i]
		j := i - 1
		for j >= 0 && v[j] > cv {
			v[j+1], w[j+1] = v[j], w[j]
			j--
		}
		v[j+1], w[j+1] = cv, cw
	}
}

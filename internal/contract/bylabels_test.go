package contract

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

// densify maps a sparse label array (values in [0,n)) to a dense mapping by
// order of first label value, the same order ByLabels' prefix-sum densify
// produces. Returns the mapping and the community count.
func densify(labels []int64) ([]int64, int64) {
	n := len(labels)
	flags := make([]int64, n)
	for _, l := range labels {
		flags[l] = 1
	}
	var k int64
	dense := make([]int64, n)
	for i := 0; i < n; i++ {
		if flags[i] == 1 {
			dense[i] = k
			k++
		}
	}
	mapping := make([]int64, n)
	for v, l := range labels {
		mapping[v] = dense[l]
	}
	return mapping, k
}

func TestByLabelsEqualsByMapping(t *testing.T) {
	// Random sparse label arrays on random multigraphs: ByLabels must equal
	// ByMapping over the hand-densified mapping, at both layouts.
	r := par.NewRNG(23)
	for trial := 0; trial < 8; trial++ {
		n := int64(20 + r.Intn(60))
		var edges []graph.Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(4) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		// Labels imitate a PLP result: vertex ids, heavily aliased.
		labels := make([]int64, n)
		for v := range labels {
			labels[v] = r.Int63n(n)
		}
		mapping, k := densify(labels)
		for _, layout := range []Layout{Contiguous, NonContiguous} {
			ng, gotMap, gotK := ByLabels(exec.Background(2), g, labels, layout)
			if gotK != k {
				t.Fatalf("trial %d: ByLabels found %d communities, densify %d", trial, gotK, k)
			}
			for v := range mapping {
				if gotMap[v] != mapping[v] {
					t.Fatalf("trial %d: mapping[%d]=%d, want %d", trial, v, gotMap[v], mapping[v])
				}
			}
			want := ByMapping(exec.Background(2), g, mapping, k, layout)
			assertSameContraction(t, "bymapping", want, "bylabels", ng)
		}
	}
}

func TestByLabelsIdentity(t *testing.T) {
	// Identity labels: nothing merges, the contraction is the graph itself.
	g := gen.CliqueChain(3, 4)
	n := g.NumVertices()
	labels := make([]int64, n)
	for v := range labels {
		labels[v] = int64(v)
	}
	ng, _, k := ByLabels(exec.Background(2), g, labels, Contiguous)
	if k != n {
		t.Fatalf("identity labels produced %d communities, want %d", k, n)
	}
	if ng.NumEdges() != g.NumEdges() || ng.TotalWeight(1) != g.TotalWeight(1) {
		t.Fatalf("identity contraction changed the graph: |E| %d->%d",
			g.NumEdges(), ng.NumEdges())
	}
}

func TestByLabelsSingleLabel(t *testing.T) {
	// All vertices share the (sparse) label 3: one community absorbing the
	// whole weight as a self-loop.
	g := gen.Clique(6)
	labels := []int64{3, 3, 3, 3, 3, 3}
	ng, mapping, k := ByLabels(exec.Background(1), g, labels, NonContiguous)
	if k != 1 || ng.NumEdges() != 0 || ng.Self[0] != 15 {
		t.Fatalf("collapse: k=%d |E|=%d Self=%v", k, ng.NumEdges(), ng.Self)
	}
	for v, m := range mapping {
		if m != 0 {
			t.Fatalf("mapping[%d]=%d, want 0", v, m)
		}
	}
}

func TestByLabelsWithArena(t *testing.T) {
	// The scratch-and-destination variant must reproduce the fresh run and
	// survive reuse across differently-sized graphs.
	graphs := []*graph.Graph{gen.CliqueChain(4, 5), gen.Karate(), gen.CliqueChain(2, 3)}
	s := &Scratch{}
	dst := &graph.Graph{}
	for _, g := range graphs {
		n := int(g.NumVertices())
		labels := make([]int64, n)
		for v := range labels {
			labels[v] = int64(v) / 3 * 3 // groups of three, sparse values
		}
		want, wantMap, wantK := ByLabels(exec.Background(2), g, labels, Contiguous)
		got, gotMap, gotK := ByLabelsWith(exec.Background(2), g, labels, Contiguous, s, dst, nil)
		if gotK != wantK {
			t.Fatalf("arena found %d communities, fresh %d", gotK, wantK)
		}
		for v := 0; v < n; v++ {
			if gotMap[v] != wantMap[v] {
				t.Fatalf("arena mapping[%d]=%d, fresh %d", v, gotMap[v], wantMap[v])
			}
		}
		assertSameContraction(t, "fresh", want, "arena", got)
	}
}

package contract

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func TestByMappingEqualsBucketOnMatchings(t *testing.T) {
	r := par.NewRNG(17)
	for trial := 0; trial < 8; trial++ {
		n := int64(30 + r.Intn(70))
		var edges []graph.Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(4) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		m := noMatch(n)
		g.ForEachEdge(func(_ int64, u, v, _ int64) {
			if m[u] == -1 && m[v] == -1 && r.Float64() < 0.5 {
				m[u], m[v] = v, u
			}
		})
		viaBucket, mapping := Bucket(exec.Background(2), g, m, Contiguous)
		k := viaBucket.NumVertices()
		viaMapping := ByMapping(exec.Background(2), g, mapping, k, NonContiguous)
		assertSameContraction(t, "bucket", viaBucket, "bymapping", viaMapping)
	}
}

func TestByMappingArbitraryPartition(t *testing.T) {
	// Group a 12-vertex ring into 3 arcs of 4: each arc becomes a community
	// with 3 internal edges; consecutive arcs share one edge.
	g := gen.Ring(12)
	mapping := make([]int64, 12)
	for v := range mapping {
		mapping[v] = int64(v) / 4
	}
	ng := ByMapping(exec.Background(1), g, mapping, 3, Contiguous)
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if ng.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3", ng.NumVertices())
	}
	for c := int64(0); c < 3; c++ {
		if ng.Self[c] != 3 {
			t.Fatalf("Self[%d] = %d, want 3", c, ng.Self[c])
		}
	}
	if ng.TotalWeight(1) != g.TotalWeight(1) {
		t.Fatal("weight not conserved")
	}
	// Community graph of 3 arcs on a ring is a triangle with unit weights.
	if ng.NumEdges() != 3 {
		t.Fatalf("|E| = %d, want 3", ng.NumEdges())
	}
}

func TestByMappingSingleCommunity(t *testing.T) {
	g := gen.Clique(6)
	mapping := make([]int64, 6)
	ng := ByMapping(exec.Background(2), g, mapping, 1, NonContiguous)
	if ng.NumEdges() != 0 || ng.Self[0] != 15 {
		t.Fatalf("collapse to one community: |E|=%d Self=%d", ng.NumEdges(), ng.Self[0])
	}
}

package doctor

// The offline drift report: what cmd/doctor renders over any manifest set —
// a per-key trend table, the head run's verdict per key, and a rollup of
// every structured ledger warning in the archive. Deterministic output
// (keys sorted, warnings sorted) so runs diff cleanly in CI logs.

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
	"repro/internal/report"
)

// KeyReport is one baseline key's slice of the report.
type KeyReport struct {
	Key  Key
	Runs int // baseline runs the verdict was assessed against
	// Trend is the total_sec series in archive order, head last.
	Trend   []float64
	Verdict *obs.Verdict
}

// Report is the analyzed manifest set.
type Report struct {
	Keys []KeyReport
	// WarningCounts rolls up every ledger warning code across all
	// manifests (baseline and head).
	WarningCounts map[string]int
	// Regressions counts regressing-direction findings across all head
	// verdicts — the gate cmd/doctor exits non-zero on.
	Regressions int
}

// Analyze assesses heads against a baseline. With a nil baseline set, the
// baseline per key is everything in heads but that key's newest manifest
// (leave-last-out: "did the latest run drift from the archive before it").
// With an explicit baseline set, every key's newest head manifest is
// assessed against it. Manifest order is append order — newest last.
func Analyze(baseline, heads []*report.Manifest, o Options) *Report {
	o = o.withDefaults()
	r := &Report{WarningCounts: map[string]int{}}
	for _, m := range append(append([]*report.Manifest{}, baseline...), heads...) {
		for _, w := range m.Warnings {
			r.WarningCounts[w.Code]++
		}
	}

	// Newest manifest per key, in head order.
	headOf := map[Key]*report.Manifest{}
	var keys []Key
	for _, m := range heads {
		if m.Kind != "run" || m.Summary == nil {
			continue
		}
		k := KeyOf(m)
		if _, seen := headOf[k]; !seen {
			keys = append(keys, k)
		}
		headOf[k] = m
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	for _, k := range keys {
		head := headOf[k]
		base := baseline
		if base == nil {
			// Leave-last-out: the head's own archive minus the head itself.
			for _, m := range heads {
				if m != head && KeyOf(m) == k {
					base = append(base, m)
				}
			}
		}
		var trend []float64
		for _, m := range base {
			if m.Kind == "run" && m.Summary != nil && KeyOf(m) == k {
				trend = append(trend, m.Summary.TotalSec)
			}
		}
		trend = append(trend, head.Summary.TotalSec)
		v := Learn(base).Assess(head, o)
		r.Regressions += v.Regressions()
		r.Keys = append(r.Keys, KeyReport{Key: k, Runs: v.BaselineRuns, Trend: trend, Verdict: v})
	}
	return r
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if len(r.Keys) == 0 {
		pf("doctor: no assessable run manifests\n")
		return err
	}
	for _, kr := range r.Keys {
		pf("key: %s\n", kr.Key)
		pf("  baseline runs: %d   total_sec trend:", kr.Runs)
		for i, t := range kr.Trend {
			if i == len(kr.Trend)-1 {
				pf(" ->")
			}
			pf(" %.4g", t)
		}
		pf("\n")
		v := kr.Verdict
		switch v.Status {
		case obs.VerdictNoBaseline:
			pf("  verdict: no-baseline (%d runs archived, need more)\n", v.BaselineRuns)
		case obs.VerdictOK:
			pf("  verdict: ok (max |z| %.2f)\n", v.MaxAbsZ)
		default:
			pf("  verdict: ANOMALOUS (%d findings, %d regressions, max |z| %.2f)\n",
				len(v.Findings), v.Regressions(), v.MaxAbsZ)
			for _, f := range v.Findings {
				tag := "drift"
				if f.Regression {
					tag = "REGRESSION"
				}
				pf("    %-10s %-28s %.4g vs median %.4g  (x%.2f, z %+.1f)\n",
					tag, f.Metric, f.Value, f.Median, f.Ratio, f.Z)
			}
		}
	}
	if len(r.WarningCounts) > 0 {
		codes := make([]string, 0, len(r.WarningCounts))
		for c := range r.WarningCounts {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		pf("warning rollup:")
		for _, c := range codes {
			pf("  %s x%d", c, r.WarningCounts[c])
		}
		pf("\n")
	}
	pf("doctor: %d keys, %d regressions\n", len(r.Keys), r.Regressions)
	return err
}

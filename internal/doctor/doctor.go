// Package doctor learns robust per-configuration baselines from archived
// run manifests and assesses new runs against them — the "run doctor" that
// closes the loop PRs 5/7 opened: manifests, convergence ledgers, and
// latency histograms are finally read back, at the end of every run and
// offline over any manifest set.
//
// The statistics are deliberately boring and robust. For each baseline key
// (graph × engine × threads × shards) and each metric, the model is the
// median and the MAD (median absolute deviation) over the archived runs; a
// new observation's drift is the robust z-score
//
//	z = (x − median) / max(1.4826·MAD, 5%·median)
//
// — the 1.4826 factor makes the MAD a consistent σ estimate under
// normality, and the 5%-of-median floor keeps a freakishly tight baseline
// (MAD 0 after five identical runs) from turning measurement noise into
// infinite z. A finding requires BOTH |z| past the threshold AND the change
// past a relative floor (plus an absolute floor for timing metrics, so
// microsecond jitter on tiny graphs never flags) — z answers "is this
// outside the noise", the ratio answers "is it big enough to care".
// Direction is metric-aware: slower, more allocation, or lower modularity
// is a regression; drift the other way is still surfaced (an unexplained
// speedup deserves a look) but does not fail a gate.
//
// Layering: doctor imports report and obs and is imported by harness and
// cmd/doctor — never by core, report, or obs. The Verdict type itself lives
// in internal/obs so manifests and flight dumps (below this package) can
// embed it.
package doctor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/report"
)

// Key is one baseline bucket: runs are only comparable within the same
// workload and execution shape.
type Key struct {
	Graph   string
	Engine  string
	Threads int
	Shards  int
}

// KeyOf buckets a manifest.
func KeyOf(m *report.Manifest) Key {
	return Key{
		Graph:   m.Graph.Name,
		Engine:  m.Options.Engine,
		Threads: m.Options.Threads,
		Shards:  m.Options.Shards,
	}
}

// String renders the key the way reports and verdicts print it.
func (k Key) String() string {
	return fmt.Sprintf("%s engine=%s threads=%d shards=%d", k.Graph, k.Engine, k.Threads, k.Shards)
}

// Options tune the assessment thresholds; zero fields take defaults.
type Options struct {
	// ZThreshold is the robust |z| a drift must exceed (default 4 — noise
	// on a healthy host stays under 2, a real 3× regression lands in the
	// tens).
	ZThreshold float64
	// MinRuns is the baseline size below which no assessment happens
	// (default 3 — a median over fewer runs is not a model).
	MinRuns int
	// MinRatio is the relative-change floor: value must be at least
	// MinRatio× the median in the drifting direction (default 1.5).
	MinRatio float64
	// MinAbsSec is the absolute floor for timing metrics: drift smaller
	// than this many seconds never flags regardless of ratio (default
	// 0.02s), so sub-millisecond kernels on toy graphs stay quiet.
	MinAbsSec float64
}

// Default thresholds.
const (
	DefaultZThreshold = 4.0
	DefaultMinRuns    = 3
	DefaultMinRatio   = 1.5
	DefaultMinAbsSec  = 0.02
)

func (o Options) withDefaults() Options {
	if o.ZThreshold <= 0 {
		o.ZThreshold = DefaultZThreshold
	}
	if o.MinRuns <= 0 {
		o.MinRuns = DefaultMinRuns
	}
	if o.MinRatio <= 1 {
		o.MinRatio = DefaultMinRatio
	}
	if o.MinAbsSec <= 0 {
		o.MinAbsSec = DefaultMinAbsSec
	}
	return o
}

// metric kinds: how direction and floors apply.
const (
	kindTiming  = iota // higher is worse; MinAbsSec floor applies
	kindCount          // higher is worse; relative floor only
	kindQuality        // lower is worse
	kindShape          // convergence shape; more levels is the bad way
)

type observation struct {
	name  string
	value float64
	kind  int
}

// observe extracts a manifest's metric vector: total seconds, per-kernel
// seconds, latency p99 per class, convergence level count, final
// modularity, and the allocation footprint. Only "run" manifests with a
// summary participate — partial crash manifests describe interrupted runs.
func observe(m *report.Manifest) []observation {
	if m.Kind != "run" || m.Summary == nil {
		return nil
	}
	obsv := []observation{
		{"total_sec", m.Summary.TotalSec, kindTiming},
		{"modularity", m.Summary.Modularity, kindQuality},
	}
	if len(m.Levels) > 0 {
		obsv = append(obsv, observation{"levels", float64(len(m.Levels)), kindShape})
	}
	for _, k := range m.Kernels {
		obsv = append(obsv, observation{"kernel_seconds/" + k.Kernel, k.Seconds, kindTiming})
	}
	for _, lp := range m.Latencies {
		obsv = append(obsv, observation{"latency_p99/" + lp.Class, lp.P99Sec, kindTiming})
	}
	if m.Allocs != nil {
		obsv = append(obsv, observation{"alloc_bytes", float64(m.Allocs.Bytes), kindCount})
	}
	return obsv
}

// Stat is one metric's learned baseline distribution.
type Stat struct {
	Median float64
	MAD    float64
	N      int
	kind   int
}

// Baseline is the learned model: per key, per metric, a robust location and
// scale.
type Baseline struct {
	Runs  map[Key]int
	Stats map[Key]map[string]Stat
}

// Learn builds the baseline from archived manifests. Order does not matter;
// partial manifests and runs without a summary are ignored.
func Learn(ms []*report.Manifest) *Baseline {
	samples := map[Key]map[string][]float64{}
	kinds := map[string]int{}
	runs := map[Key]int{}
	for _, m := range ms {
		o := observe(m)
		if o == nil {
			continue
		}
		k := KeyOf(m)
		runs[k]++
		byMetric := samples[k]
		if byMetric == nil {
			byMetric = map[string][]float64{}
			samples[k] = byMetric
		}
		for _, ob := range o {
			byMetric[ob.name] = append(byMetric[ob.name], ob.value)
			kinds[ob.name] = ob.kind
		}
	}
	b := &Baseline{Runs: runs, Stats: map[Key]map[string]Stat{}}
	for k, byMetric := range samples {
		st := map[string]Stat{}
		for name, xs := range byMetric {
			med := median(xs)
			dev := make([]float64, len(xs))
			for i, x := range xs {
				dev[i] = math.Abs(x - med)
			}
			st[name] = Stat{Median: med, MAD: median(dev), N: len(xs), kind: kinds[name]}
		}
		b.Stats[k] = st
	}
	return b
}

// median over a copy (the input order is preserved for trend rendering).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// sigma is the robust scale estimate with the degenerate-MAD floor.
func sigma(st Stat) float64 {
	s := 1.4826 * st.MAD
	if floor := 0.05 * math.Abs(st.Median); s < floor {
		s = floor
	}
	if s <= 0 {
		s = 1e-12
	}
	return s
}

// Assess scores one manifest against the baseline and returns its verdict.
// Never nil: with fewer than MinRuns archived runs under the key the status
// is VerdictNoBaseline.
func (b *Baseline) Assess(m *report.Manifest, o Options) *obs.Verdict {
	o = o.withDefaults()
	key := KeyOf(m)
	v := &obs.Verdict{Status: obs.VerdictOK, Key: key.String(), BaselineRuns: b.Runs[key]}
	if v.BaselineRuns < o.MinRuns {
		v.Status = obs.VerdictNoBaseline
		return v
	}
	stats := b.Stats[key]
	for _, ob := range observe(m) {
		st, ok := stats[ob.name]
		if !ok || st.N < o.MinRuns {
			continue
		}
		z := (ob.value - st.Median) / sigma(st)
		if az := math.Abs(z); az > v.MaxAbsZ {
			v.MaxAbsZ = az
		}
		if math.Abs(z) < o.ZThreshold {
			continue
		}
		f := drift(ob, st, z, o)
		if f == nil {
			continue
		}
		v.Findings = append(v.Findings, *f)
	}
	if len(v.Findings) > 0 {
		v.Status = obs.VerdictAnomalous
	}
	return v
}

// drift applies the direction-aware floors to one past-threshold z and
// builds the finding, nil when the change is too small to care about.
func drift(ob observation, st Stat, z float64, o Options) *obs.DriftFinding {
	up := ob.value > st.Median // drifted high
	delta := math.Abs(ob.value - st.Median)
	// Relative floor: the change must be MinRatio× in its direction. Guard
	// division by a zero median (ratio 0 disables the ratio test and the
	// absolute floors decide).
	bigEnough := false
	ratio := 0.0
	if st.Median != 0 {
		ratio = ob.value / st.Median
		if up {
			bigEnough = ratio >= o.MinRatio
		} else {
			bigEnough = ratio <= 1/o.MinRatio
		}
	} else {
		bigEnough = ob.value != 0
	}
	if (ob.kind == kindTiming) && delta < o.MinAbsSec {
		return nil
	}
	if !bigEnough {
		return nil
	}
	regression := up
	if ob.kind == kindQuality {
		regression = !up
	}
	return &obs.DriftFinding{
		Metric:     ob.name,
		Value:      ob.value,
		Median:     st.Median,
		MAD:        st.MAD,
		Z:          z,
		Ratio:      ratio,
		Regression: regression,
	}
}

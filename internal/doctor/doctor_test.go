package doctor

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"
)

// mkRun synthesizes a manifest with a small, realistic amount of jitter
// around the given total seconds.
func mkRun(graph string, threads int, totalSec, modularity float64) *report.Manifest {
	return &report.Manifest{
		Kind:  "run",
		Graph: report.GraphInfo{Name: graph, Vertices: 1 << 14, Edges: 1 << 18},
		Options: report.Options{
			Engine: "matching", Threads: threads,
			Scorer: "modularity", Matching: "worklist", Contraction: "bucket",
		},
		Summary: &report.Summary{
			Communities: 900, Coverage: 0.8, Modularity: modularity,
			Termination: "coverage", TotalSec: totalSec,
			EdgesPerSec: float64(1<<18) / totalSec,
		},
		Kernels: []obs.KernelSeconds{
			{Kernel: "match", Seconds: totalSec * 0.3, Spans: 12},
			{Kernel: "contract", Seconds: totalSec * 0.6, Spans: 12},
		},
		Latencies: []obs.LatencyProfile{
			{Class: "detect", Count: 1, P50Sec: totalSec, P90Sec: totalSec, P99Sec: totalSec},
		},
		Allocs: &obs.AllocStats{Bytes: int64(totalSec * 1e9), Count: 1e6},
	}
}

// baseline5 is five archived runs with ~2% jitter — a healthy archive.
func baseline5() []*report.Manifest {
	var ms []*report.Manifest
	for _, s := range []float64{0.250, 0.252, 0.248, 0.255, 0.251} {
		ms = append(ms, mkRun("rmat-14-16", 8, s, 0.61))
	}
	return ms
}

func TestAssessCleanRunOK(t *testing.T) {
	b := Learn(baseline5())
	v := b.Assess(mkRun("rmat-14-16", 8, 0.253, 0.61), Options{})
	if v.Status != obs.VerdictOK {
		t.Fatalf("clean run: status %q, want %q (findings %+v)", v.Status, obs.VerdictOK, v.Findings)
	}
	if v.BaselineRuns != 5 {
		t.Fatalf("BaselineRuns = %d, want 5", v.BaselineRuns)
	}
	if v.Anomalous() {
		t.Fatal("clean run flagged anomalous")
	}
}

func TestAssessRegressionFlagged(t *testing.T) {
	b := Learn(baseline5())
	v := b.Assess(mkRun("rmat-14-16", 8, 0.75, 0.61), Options{}) // 3x slower
	if v.Status != obs.VerdictAnomalous {
		t.Fatalf("3x run: status %q, want anomalous", v.Status)
	}
	if v.Regressions() == 0 {
		t.Fatal("3x run produced no regression findings")
	}
	var total *obs.DriftFinding
	for i := range v.Findings {
		if v.Findings[i].Metric == "total_sec" {
			total = &v.Findings[i]
		}
	}
	if total == nil {
		t.Fatalf("no total_sec finding in %+v", v.Findings)
	}
	if !total.Regression {
		t.Fatal("total_sec slowdown not marked as regression")
	}
	if total.Ratio < 2.5 || total.Z < 4 {
		t.Fatalf("total_sec finding ratio %.2f z %.1f, want ratio ~3 and z >= threshold", total.Ratio, total.Z)
	}
	// Kernel seconds scaled with the run, so they must flag too.
	found := false
	for _, f := range v.Findings {
		if strings.HasPrefix(f.Metric, "kernel_seconds/") && f.Regression {
			found = true
		}
	}
	if !found {
		t.Fatalf("no kernel_seconds regression in %+v", v.Findings)
	}
}

func TestAssessNoBaseline(t *testing.T) {
	b := Learn(baseline5()[:2]) // below MinRuns
	v := b.Assess(mkRun("rmat-14-16", 8, 0.25, 0.61), Options{})
	if v.Status != obs.VerdictNoBaseline {
		t.Fatalf("status %q, want no-baseline", v.Status)
	}
	// Different key entirely (thread count differs) — also no baseline.
	b = Learn(baseline5())
	v = b.Assess(mkRun("rmat-14-16", 4, 0.25, 0.61), Options{})
	if v.Status != obs.VerdictNoBaseline {
		t.Fatalf("cross-key status %q, want no-baseline", v.Status)
	}
}

func TestAssessQualityDirection(t *testing.T) {
	b := Learn(baseline5())
	// Modularity collapsing is a regression even though the value went DOWN.
	head := mkRun("rmat-14-16", 8, 0.251, 0.25)
	v := b.Assess(head, Options{})
	var mod *obs.DriftFinding
	for i := range v.Findings {
		if v.Findings[i].Metric == "modularity" {
			mod = &v.Findings[i]
		}
	}
	if mod == nil {
		t.Fatalf("modularity collapse not flagged: %+v", v.Findings)
	}
	if !mod.Regression {
		t.Fatal("lower modularity not marked as regression")
	}
}

func TestAssessMinAbsSecFloor(t *testing.T) {
	// A 3x slowdown on a sub-millisecond run is jitter, not a finding.
	var ms []*report.Manifest
	for _, s := range []float64{0.0010, 0.0011, 0.0009, 0.0010, 0.0010} {
		ms = append(ms, mkRun("tiny", 8, s, 0.61))
	}
	v := Learn(ms).Assess(mkRun("tiny", 8, 0.0030, 0.61), Options{})
	for _, f := range v.Findings {
		if f.Metric == "total_sec" || strings.HasPrefix(f.Metric, "kernel_seconds/") ||
			strings.HasPrefix(f.Metric, "latency_p99/") {
			t.Fatalf("timing finding %q under the MinAbsSec floor: %+v", f.Metric, f)
		}
	}
}

func TestAssessSpeedupIsDriftNotRegression(t *testing.T) {
	b := Learn(baseline5())
	v := b.Assess(mkRun("rmat-14-16", 8, 0.080, 0.61), Options{}) // 3x faster
	if v.Status != obs.VerdictAnomalous {
		t.Fatalf("3x speedup: status %q, want anomalous (drift is surfaced)", v.Status)
	}
	for _, f := range v.Findings {
		if f.Metric == "total_sec" && f.Regression {
			t.Fatal("a speedup must not count as a regression")
		}
	}
	if v.Regressions() != 0 {
		// alloc_bytes scales with totalSec in mkRun, so it dropped too —
		// lower allocation is the good direction and must not regress.
		t.Fatalf("speedup produced %d regressions: %+v", v.Regressions(), v.Findings)
	}
}

func TestLearnIgnoresPartialManifests(t *testing.T) {
	ms := baseline5()
	partial := mkRun("rmat-14-16", 8, 9.9, 0.61)
	partial.Kind = "partial"
	noSummary := mkRun("rmat-14-16", 8, 9.9, 0.61)
	noSummary.Summary = nil
	ms = append(ms, partial, noSummary)
	b := Learn(ms)
	k := KeyOf(ms[0])
	if b.Runs[k] != 5 {
		t.Fatalf("Runs = %d, want 5 (partial and summary-less ignored)", b.Runs[k])
	}
	if med := b.Stats[k]["total_sec"].Median; math.Abs(med-0.251) > 1e-9 {
		t.Fatalf("median polluted by partials: %v", med)
	}
}

func TestAnalyzeLeaveLastOut(t *testing.T) {
	heads := append(baseline5(), mkRun("rmat-14-16", 8, 0.80, 0.61))
	rep := Analyze(nil, heads, Options{})
	if len(rep.Keys) != 1 {
		t.Fatalf("keys = %d, want 1", len(rep.Keys))
	}
	kr := rep.Keys[0]
	if kr.Runs != 5 {
		t.Fatalf("leave-last-out baseline = %d runs, want 5", kr.Runs)
	}
	if got := len(kr.Trend); got != 6 {
		t.Fatalf("trend length = %d, want 6 (5 archived + head)", got)
	}
	if !kr.Verdict.Anomalous() || rep.Regressions == 0 {
		t.Fatalf("3x head not flagged: verdict %+v, regressions %d", kr.Verdict, rep.Regressions)
	}

	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ANOMALOUS", "REGRESSION", "total_sec", "1 keys, "} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeExplicitBaseline(t *testing.T) {
	rep := Analyze(baseline5(), []*report.Manifest{mkRun("rmat-14-16", 8, 0.252, 0.61)}, Options{})
	if rep.Regressions != 0 {
		t.Fatalf("clean head against explicit baseline: %d regressions", rep.Regressions)
	}
	if rep.Keys[0].Verdict.Status != obs.VerdictOK {
		t.Fatalf("status = %q, want ok", rep.Keys[0].Verdict.Status)
	}
}

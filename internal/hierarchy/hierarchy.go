// Package hierarchy turns the engine's per-phase contraction maps into a
// queryable community dendrogram. Every agglomeration phase is one level of
// the hierarchy; cutting the dendrogram at a level yields that phase's
// partition of the original graph. This supports the use case the paper's
// introduction motivates: communities "can be analyzed more thoroughly or
// form the basis for multi-level algorithms".
package hierarchy

import (
	"fmt"

	"repro/internal/exec"
)

// Dendrogram is the merge hierarchy of one detection run.
type Dendrogram struct {
	n      int64
	levels [][]int64
	// partitions[l] caches the composed vertex→community map after l
	// levels; partitions[0] is the identity.
	partitions [][]int64
	counts     []int64
}

// New builds a dendrogram for n original vertices from per-level community
// maps, outermost (finest) first: levels[l] maps the level-l community ids
// to level-l+1 ids and must be dense. The engine's Result.Levels has
// exactly this shape (when Options.RefineEveryPhase is off).
func New(n int64, levels [][]int64) (*Dendrogram, error) {
	return NewExec(exec.Background(0), n, levels)
}

// NewExec is New composing the per-level partitions on ec's workers; the
// composition sweep over n vertices at every level is the only heavy part of
// dendrogram construction. A cancelled context aborts between levels with a
// wrapped ctx.Err().
func NewExec(ec *exec.Ctx, n int64, levels [][]int64) (*Dendrogram, error) {
	d := &Dendrogram{n: n, levels: levels}
	cur := make([]int64, n)
	for i := range cur {
		cur[i] = int64(i)
	}
	d.partitions = append(d.partitions, append([]int64(nil), cur...))
	d.counts = append(d.counts, n)
	prevK := n
	for l, level := range levels {
		if err := ec.Err(); err != nil {
			return nil, fmt.Errorf("hierarchy: canceled at level %d: %w", l, err)
		}
		k := int64(len(level))
		if k != prevK {
			return nil, fmt.Errorf("hierarchy: level %d maps %d communities, previous level has %d", l, k, prevK)
		}
		var maxID int64 = -1
		for _, c := range level {
			if c < 0 {
				return nil, fmt.Errorf("hierarchy: level %d has negative community id", l)
			}
			if c > maxID {
				maxID = c
			}
		}
		nextK := maxID + 1
		seen := make([]bool, nextK)
		for _, c := range level {
			seen[c] = true
		}
		for c, ok := range seen {
			if !ok {
				return nil, fmt.Errorf("hierarchy: level %d community %d empty", l, c)
			}
		}
		if ec.Serial(int(n)) {
			for v := range cur {
				cur[v] = level[cur[v]]
			}
		} else {
			ec.For(int(n), func(lo, hi int) {
				for v := lo; v < hi; v++ {
					cur[v] = level[cur[v]]
				}
			})
		}
		d.partitions = append(d.partitions, append([]int64(nil), cur...))
		d.counts = append(d.counts, nextK)
		prevK = nextK
	}
	return d, nil
}

// FromFinal bootstraps a one-level dendrogram from a flat vertex→community
// partition with k communities. Incremental re-detection uses this to keep
// chaining when the engine ran with DiscardLevels (no per-phase maps to
// rebuild the full hierarchy from): the next DetectIncremental only needs
// Final(), which this dendrogram serves exactly.
func FromFinal(n int64, comm []int64, k int64) (*Dendrogram, error) {
	if int64(len(comm)) != n {
		return nil, fmt.Errorf("hierarchy: partition maps %d vertices, want %d", len(comm), n)
	}
	d, err := New(n, [][]int64{append([]int64(nil), comm...)})
	if err != nil {
		return nil, err
	}
	if got := d.counts[1]; got != k {
		return nil, fmt.Errorf("hierarchy: partition has %d communities, caller claims %d", got, k)
	}
	return d, nil
}

// NumLevels returns the number of merge levels (0 means no contraction ran).
func (d *Dendrogram) NumLevels() int { return len(d.levels) }

// NumVertices returns the number of original vertices.
func (d *Dendrogram) NumVertices() int64 { return d.n }

// AtLevel returns the partition of the original vertices after level merge
// phases (level 0 = singletons) and its community count. The returned slice
// is shared; callers must not modify it.
func (d *Dendrogram) AtLevel(level int) (comm []int64, k int64, err error) {
	if level < 0 || level > d.NumLevels() {
		return nil, 0, fmt.Errorf("hierarchy: level %d outside [0,%d]", level, d.NumLevels())
	}
	return d.partitions[level], d.counts[level], nil
}

// Final returns the coarsest partition.
func (d *Dendrogram) Final() (comm []int64, k int64) {
	return d.partitions[d.NumLevels()], d.counts[d.NumLevels()]
}

// CommunityCounts returns the community count per level, finest first
// (entry 0 is the vertex count).
func (d *Dendrogram) CommunityCounts() []int64 {
	return append([]int64(nil), d.counts...)
}

// MergedAt returns how many communities merge level l removed: the
// difference between the community counts entering and leaving the level.
// Summed over all levels it is n minus the final community count, which is
// the invariant the convergence ledger's MergedVertices column is checked
// against.
func (d *Dendrogram) MergedAt(level int) (int64, error) {
	if level < 0 || level >= d.NumLevels() {
		return 0, fmt.Errorf("hierarchy: level %d outside [0,%d)", level, d.NumLevels())
	}
	return d.counts[level] - d.counts[level+1], nil
}

// CutAtCount returns the finest partition with at most target communities,
// or the coarsest available if every level exceeds target. This is how an
// application imposes "a minimum number of communities" after the fact
// instead of during the run.
func (d *Dendrogram) CutAtCount(target int64) (comm []int64, k int64, level int) {
	for l := 0; l <= d.NumLevels(); l++ {
		if d.counts[l] <= target {
			return d.partitions[l], d.counts[l], l
		}
	}
	last := d.NumLevels()
	return d.partitions[last], d.counts[last], last
}

// Members returns the original vertices of community c at the given level.
func (d *Dendrogram) Members(level int, c int64) ([]int64, error) {
	comm, k, err := d.AtLevel(level)
	if err != nil {
		return nil, err
	}
	if c < 0 || c >= k {
		return nil, fmt.Errorf("hierarchy: community %d outside [0,%d)", c, k)
	}
	var out []int64
	for v, cc := range comm {
		if cc == c {
			out = append(out, int64(v))
		}
	}
	return out, nil
}

// TraceVertex returns the community id of vertex v at every level, finest
// first (entry 0 is v itself).
func (d *Dendrogram) TraceVertex(v int64) ([]int64, error) {
	if v < 0 || v >= d.n {
		return nil, fmt.Errorf("hierarchy: vertex %d outside [0,%d)", v, d.n)
	}
	out := make([]int64, d.NumLevels()+1)
	for l := 0; l <= d.NumLevels(); l++ {
		out[l] = d.partitions[l][v]
	}
	return out, nil
}

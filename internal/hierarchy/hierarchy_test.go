package hierarchy_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
)

func TestNewValidatesLevels(t *testing.T) {
	// 4 vertices → 2 communities → 1 community.
	d, err := hierarchy.New(4, [][]int64{{0, 0, 1, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLevels() != 2 || d.NumVertices() != 4 {
		t.Fatalf("levels=%d vertices=%d", d.NumLevels(), d.NumVertices())
	}
	counts := d.CommunityCounts()
	for i, want := range []int64{4, 2, 1} {
		if counts[i] != want {
			t.Fatalf("counts = %v", counts)
		}
	}
	bad := [][][]int64{
		{{0, 0, 1}},         // wrong length at level 0
		{{0, 0, 2, 2}},      // community 1 empty
		{{0, 0, 1, -1}},     // negative id
		{{0, 0, 1, 1}, {0}}, // level 1 wrong length
	}
	for i, levels := range bad {
		if _, err := hierarchy.New(4, levels); err == nil {
			t.Errorf("bad levels %d accepted", i)
		}
	}
}

func TestAtLevelAndFinal(t *testing.T) {
	d, err := hierarchy.New(4, [][]int64{{0, 0, 1, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	comm, k, err := d.AtLevel(0)
	if err != nil || k != 4 {
		t.Fatalf("level 0: k=%d err=%v", k, err)
	}
	for v, c := range comm {
		if c != int64(v) {
			t.Fatal("level 0 not identity")
		}
	}
	comm, k, _ = d.AtLevel(1)
	if k != 2 || comm[0] != comm[1] || comm[2] != comm[3] || comm[0] == comm[2] {
		t.Fatalf("level 1: %v k=%d", comm, k)
	}
	fcomm, fk := d.Final()
	if fk != 1 || fcomm[0] != 0 || fcomm[3] != 0 {
		t.Fatalf("final: %v k=%d", fcomm, fk)
	}
	if _, _, err := d.AtLevel(3); err == nil {
		t.Fatal("accepted out-of-range level")
	}
	if _, _, err := d.AtLevel(-1); err == nil {
		t.Fatal("accepted negative level")
	}
}

func TestCutAtCount(t *testing.T) {
	d, err := hierarchy.New(8, [][]int64{
		{0, 0, 1, 1, 2, 2, 3, 3}, // 8 → 4
		{0, 0, 1, 1},             // 4 → 2
		{0, 0},                   // 2 → 1
	})
	if err != nil {
		t.Fatal(err)
	}
	_, k, level := d.CutAtCount(5)
	if k != 4 || level != 1 {
		t.Fatalf("cut at 5: k=%d level=%d", k, level)
	}
	_, k, level = d.CutAtCount(2)
	if k != 2 || level != 2 {
		t.Fatalf("cut at 2: k=%d level=%d", k, level)
	}
	_, k, _ = d.CutAtCount(100)
	if k != 8 {
		t.Fatalf("cut at 100 should return singletons, got k=%d", k)
	}
}

func TestMembersAndTrace(t *testing.T) {
	d, err := hierarchy.New(4, [][]int64{{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	members, err := d.Members(1, 1)
	if err != nil || len(members) != 2 || members[0] != 2 || members[1] != 3 {
		t.Fatalf("members = %v err=%v", members, err)
	}
	if _, err := d.Members(1, 9); err == nil {
		t.Fatal("accepted bad community")
	}
	trace, err := d.TraceVertex(3)
	if err != nil || trace[0] != 3 || trace[1] != 1 {
		t.Fatalf("trace = %v err=%v", trace, err)
	}
	if _, err := d.TraceVertex(99); err == nil {
		t.Fatal("accepted bad vertex")
	}
}

func TestFromEngineRun(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(g, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := hierarchy.New(g.NumVertices(), res.Levels)
	if err != nil {
		t.Fatal(err)
	}
	// Final level must match the engine's flat output.
	fcomm, fk := d.Final()
	if fk != res.NumCommunities {
		t.Fatalf("final k=%d, engine %d", fk, res.NumCommunities)
	}
	for v := range fcomm {
		if fcomm[v] != res.CommunityOf[v] {
			t.Fatalf("vertex %d: dendrogram %d, engine %d", v, fcomm[v], res.CommunityOf[v])
		}
	}
	// Modularity along the dendrogram is non-decreasing (each level's
	// merges all had positive ΔQ).
	prev := -1.0
	for l := 1; l <= d.NumLevels(); l++ {
		comm, k, err := d.AtLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		q := metrics.Modularity(2, g, comm, k)
		if q < prev-1e-9 {
			t.Fatalf("level %d modularity %v below previous %v", l, q, prev)
		}
		prev = q
	}
}

// Package matching implements step 2 of the agglomerative loop (§III,
// §IV-B): a greedy approximately-maximum-weight maximal matching over the
// positively scored community-graph edges. Matched pairs merge in the
// contraction step; the greedy construction guarantees the matching weight
// is within a factor of two of the maximum (Preis; Hoepman;
// Manne–Bisseling).
//
// Two kernels are provided:
//
//   - Worklist: the paper's improved algorithm. An explicit array of
//     currently unmatched vertices is swept in parallel; each vertex scans
//     its own edge bucket for its best unmatched neighbor, compares its
//     choice against the other side's candidate under a total order, and
//     claims both sides with per-vertex locks. Vertices whose claim fails
//     but that still have an unmatched positive neighbor stay on the list.
//
//   - EdgeSweep: the 2011 algorithm kept as an ablation baseline. Every
//     sweep runs over the whole edge array and funnels the per-vertex best
//     through a lock per endpoint — the "frequent hot spots" that were
//     tolerable with the Cray XMT's full/empty bits but crippled the
//     OpenMP port.
//
// Both kernels are non-deterministic under parallel execution: different
// runs may return different maximal matchings, exactly as the paper notes.
package matching

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Unmatched marks a vertex without a partner in Result.Match.
const Unmatched = int64(-1)

// Result describes one matching.
type Result struct {
	// Match[v] is v's partner, or Unmatched. Symmetric:
	// Match[Match[v]] == v for every matched v.
	Match []int64
	// Pairs is the number of matched pairs.
	Pairs int64
	// Weight is the total score of the matched edges.
	Weight float64
	// Passes is the number of parallel sweeps the kernel ran.
	Passes int
}

// edgeKey orders candidate edges: first by score, then by a hash of the
// stored endpoints, then by the endpoints themselves, making the order
// total (§IV-B "first score and then the vertex indices"). Breaking score
// ties by raw index builds long dependency chains along the vertex
// numbering — each chain element defers to the next, one pass each — so the
// hash shatters ties into random tournaments and keeps the pass count
// logarithmic.
type edgeKey struct {
	score         float64
	tie           uint64
	first, second int64
}

func makeKey(score float64, first, second int64) edgeKey {
	h := uint64(first)<<32 ^ uint64(second)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return edgeKey{score, h, first, second}
}

func (k edgeKey) less(o edgeKey) bool {
	if k.score != o.score {
		return k.score < o.score
	}
	if k.tie != o.tie {
		return k.tie < o.tie
	}
	if k.first != o.first {
		return k.first < o.first
	}
	return k.second < o.second
}

// Worklist computes a greedy heavy maximal matching with the paper's
// unmatched-vertex-list algorithm using p workers. Only edges with a
// strictly positive score participate.
//
// Each pass parallelizes over the array of still-active vertices. An active
// vertex scans its own bucket (each edge is stored exactly once) and pushes
// every available edge as a candidate proposal to *both* endpoints under the
// total order (score, stored endpoints); "if edge {i, j} dominates the
// scores adjacent to i and j, that edge will be found by one of the two
// vertices" (§IV-B). A vertex then claims its best candidate edge exactly
// when the other side's best candidate is the same edge — the
// locally-dominant discipline of Hoepman and Manne–Bisseling, which
// guarantees weight within 2× of the maximum. Vertices whose claim was
// frustrated but that still saw an available edge stay on the list; the
// matching is maximal when the list drains.
func Worklist(p int, g *graph.Graph, scores []float64) Result {
	n := int(g.NumVertices())
	match := make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			match[i] = Unmatched
		}
	})
	locks := par.NewSpinLocks(n)

	// Per-vertex best candidate edge, stamped by pass so it never needs
	// clearing. Guarded by locks during phase A; read freely in phase B
	// (the phases are barrier-separated).
	candE := make([]int64, n)
	candKey := make([]edgeKey, n)
	candPass := make([]int64, n)
	for i := range candPass {
		candPass[i] = -1
	}

	// Initial worklist: vertices owning at least one edge. Vertices with
	// empty buckets are passive — they receive proposals but the owning
	// side performs the claim.
	list := make([]int64, 0, n)
	for x := int64(0); x < int64(n); x++ {
		if g.End[x] > g.Start[x] {
			list = append(list, x)
		}
	}

	passes := 0
	for len(list) > 0 {
		pass := int64(passes)
		// Phase A: active vertices scan their buckets and push proposals to
		// both endpoints of every available positive edge.
		par.ForDynamic(p, len(list), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u := list[i]
				if atomic.LoadInt64(&match[u]) != Unmatched {
					continue
				}
				for e := g.Start[u]; e < g.End[u]; e++ {
					s := scores[e]
					if s <= 0 {
						continue
					}
					v := g.V[e]
					if atomic.LoadInt64(&match[v]) != Unmatched {
						continue
					}
					k := makeKey(s, g.U[e], g.V[e])
					for _, side := range [2]int64{u, v} {
						locks.Lock(side)
						if candPass[side] != pass || candKey[side].less(k) {
							candPass[side] = pass
							candKey[side] = k
							candE[side] = e
						}
						locks.Unlock(side)
					}
				}
			}
		})
		// Phase B: claim mutual best edges; compact the worklist.
		keep := make([]int64, len(list))
		par.ForDynamic(p, len(list), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u := list[i]
				if atomic.LoadInt64(&match[u]) != Unmatched {
					continue // matched; drop
				}
				if candPass[u] != pass {
					continue // no available edge anywhere near u; drop for good
				}
				e := candE[u]
				a, b := g.U[e], g.V[e]
				o := a // other endpoint of our best edge
				if o == u {
					o = b
				}
				if candPass[o] == pass && candE[o] == e {
					// Mutually best: claim both sides. Both endpoints may
					// run this claim; Lock2 serializes and the second sees
					// the pair already made.
					locks.Lock2(u, o)
					if match[u] == Unmatched && match[o] == Unmatched {
						atomic.StoreInt64(&match[u], o)
						atomic.StoreInt64(&match[o], u)
					}
					locks.Unlock2(u, o)
				}
				if atomic.LoadInt64(&match[u]) == Unmatched {
					// Still free but edges remain in reach: try again.
					keep[i] = 1
				}
			}
		})
		list = par.Pack(p, list, keep)
		passes++
	}
	return finishResult(p, g, scores, match, passes)
}

// EdgeSweep computes the matching with the 2011 whole-edge-array algorithm
// using p workers: every sweep updates a per-vertex best edge through a
// vertex lock (the full/empty-bit hot spot), then matches mutually best
// edges. Kept as the ablation baseline for the paper's claim that the
// worklist algorithm's gains are "marginal on the Cray XMT but drastic on
// Intel-based platforms".
func EdgeSweep(p int, g *graph.Graph, scores []float64) Result {
	n := int(g.NumVertices())
	match := make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			match[i] = Unmatched
		}
	})
	locks := par.NewSpinLocks(n)
	bestEdge := make([]int64, n)
	bestKey := make([]edgeKey, n)
	bestPass := make([]int64, n)
	for i := range bestPass {
		bestPass[i] = -1
	}

	passes := 0
	for {
		pass := int64(passes)
		var eligible int64
		// Sweep 1: per-endpoint best via locks (the hot spot).
		par.ForDynamic(p, n, 0, func(lo, hi int) {
			local := false
			for x := int64(lo); x < int64(hi); x++ {
				for e := g.Start[x]; e < g.End[x]; e++ {
					s := scores[e]
					if s <= 0 {
						continue
					}
					u, v := g.U[e], g.V[e]
					if atomic.LoadInt64(&match[u]) != Unmatched ||
						atomic.LoadInt64(&match[v]) != Unmatched {
						continue
					}
					local = true
					k := makeKey(s, u, v)
					for _, side := range [2]int64{u, v} {
						locks.Lock(side)
						if bestPass[side] != pass || bestKey[side].less(k) {
							bestPass[side] = pass
							bestKey[side] = k
							bestEdge[side] = e
						}
						locks.Unlock(side)
					}
				}
			}
			if local {
				atomic.StoreInt64(&eligible, 1)
			}
		})
		if eligible == 0 {
			break
		}
		// Sweep 2: match mutually best edges.
		par.ForDynamic(p, n, 0, func(lo, hi int) {
			for x := int64(lo); x < int64(hi); x++ {
				for e := g.Start[x]; e < g.End[x]; e++ {
					if scores[e] <= 0 {
						continue
					}
					u, v := g.U[e], g.V[e]
					if bestPass[u] != pass || bestPass[v] != pass {
						continue
					}
					if bestEdge[u] != e || bestEdge[v] != e {
						continue
					}
					locks.Lock2(u, v)
					if match[u] == Unmatched && match[v] == Unmatched {
						atomic.StoreInt64(&match[u], v)
						atomic.StoreInt64(&match[v], u)
					}
					locks.Unlock2(u, v)
				}
			}
		})
		passes++
	}
	return finishResult(p, g, scores, match, passes)
}

// finishResult counts pairs and sums matched-edge scores.
func finishResult(p int, g *graph.Graph, scores []float64, match []int64, passes int) Result {
	var pairs int64
	var weightBits uint64
	n := int(g.NumVertices())
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		var localPairs int64
		var localWeight float64
		for x := int64(lo); x < int64(hi); x++ {
			if m := match[x]; m != Unmatched && x < m {
				localPairs++
			}
			for e := g.Start[x]; e < g.End[x]; e++ {
				if match[g.U[e]] == g.V[e] {
					localWeight += scores[e]
				}
			}
		}
		atomic.AddInt64(&pairs, localPairs)
		addFloatAtomic(&weightBits, localWeight)
	})
	return Result{Match: match, Pairs: pairs, Weight: floatFromBits(weightBits), Passes: passes}
}

// Verify checks that match is a valid maximal matching of the positively
// scored edges of g: symmetry, partner validity, adjacency of matched
// pairs via a positive edge, and maximality (no positive edge joins two
// unmatched vertices). Intended for tests and debugging.
func Verify(g *graph.Graph, scores []float64, match []int64) error {
	n := g.NumVertices()
	if int64(len(match)) != n {
		return fmt.Errorf("matching: match has %d entries for %d vertices", len(match), n)
	}
	for x := int64(0); x < n; x++ {
		m := match[x]
		if m == Unmatched {
			continue
		}
		if m < 0 || m >= n {
			return fmt.Errorf("matching: match[%d] = %d out of range", x, m)
		}
		if m == x {
			return fmt.Errorf("matching: vertex %d matched to itself", x)
		}
		if match[m] != x {
			return fmt.Errorf("matching: asymmetric pair (%d, %d)", x, m)
		}
	}
	// Matched pairs must share a positive stored edge; maximality over
	// positive edges.
	paired := make(map[[2]int64]bool)
	var violation error
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		if violation != nil {
			return
		}
		if scores[e] > 0 && match[u] == Unmatched && match[v] == Unmatched {
			violation = fmt.Errorf("matching: not maximal, positive edge {%d,%d} unmatched on both sides", u, v)
			return
		}
		if match[u] == v {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if scores[e] <= 0 {
				violation = fmt.Errorf("matching: pair (%d,%d) uses non-positive edge score %v", u, v, scores[e])
				return
			}
			paired[[2]int64{a, b}] = true
		}
	})
	if violation != nil {
		return violation
	}
	for x := int64(0); x < n; x++ {
		m := match[x]
		if m == Unmatched || x > m {
			continue
		}
		if !paired[[2]int64{x, m}] {
			return fmt.Errorf("matching: pair (%d,%d) has no positive stored edge", x, m)
		}
	}
	return nil
}

// Package matching implements step 2 of the agglomerative loop (§III,
// §IV-B): a greedy approximately-maximum-weight maximal matching over the
// positively scored community-graph edges. Matched pairs merge in the
// contraction step; the greedy construction guarantees the matching weight
// is within a factor of two of the maximum (Preis; Hoepman;
// Manne–Bisseling).
//
// Two kernels are provided:
//
//   - Worklist: the paper's improved algorithm. An explicit array of
//     currently unmatched vertices is swept in parallel; each vertex scans
//     its own edge bucket for its best unmatched neighbor, compares its
//     choice against the other side's candidate under a total order, and
//     claims both sides with per-vertex locks. Vertices whose claim fails
//     but that still have an unmatched positive neighbor stay on the list.
//
//   - EdgeSweep: the 2011 algorithm kept as an ablation baseline. Every
//     sweep runs over the whole edge array and funnels the per-vertex best
//     through a lock per endpoint — the "frequent hot spots" that were
//     tolerable with the Cray XMT's full/empty bits but crippled the
//     OpenMP port.
//
// Both kernels are non-deterministic under parallel execution: different
// runs may return different maximal matchings, exactly as the paper notes.
package matching

import (
	"fmt"
	"sync/atomic"

	"repro/internal/buf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
)

// Unmatched marks a vertex without a partner in Result.Match.
const Unmatched = int64(-1)

// Result describes one matching.
type Result struct {
	// Match[v] is v's partner, or Unmatched. Symmetric:
	// Match[Match[v]] == v for every matched v.
	Match []int64
	// Pairs is the number of matched pairs.
	Pairs int64
	// Weight is the total score of the matched edges.
	Weight float64
	// Passes is the number of parallel sweeps the kernel ran.
	Passes int
	// Drain is the active-vertex count at the start of each pass — the
	// worklist drain curve the convergence ledger records (the edge sweep
	// has no worklist, so it reports the full vertex count per pass). Like
	// Match it aliases scratch storage when a Scratch was supplied, valid
	// only until the scratch's next use.
	Drain []int64
}

// edgeKey orders candidate edges: first by score, then by a hash of the
// stored endpoints, then by the endpoints themselves, making the order
// total (§IV-B "first score and then the vertex indices"). Breaking score
// ties by raw index builds long dependency chains along the vertex
// numbering — each chain element defers to the next, one pass each — so the
// hash shatters ties into random tournaments and keeps the pass count
// logarithmic.
type edgeKey struct {
	score         float64
	tie           uint64
	first, second int64
}

func makeKey(score float64, first, second int64) edgeKey {
	h := uint64(first)<<32 ^ uint64(second)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return edgeKey{score, h, first, second}
}

func (k edgeKey) less(o edgeKey) bool {
	if k.score != o.score {
		return k.score < o.score
	}
	if k.tie != o.tie {
		return k.tie < o.tie
	}
	if k.first != o.first {
		return k.first < o.first
	}
	return k.second < o.second
}

// Scratch holds the matching kernels' per-run state for reuse across engine
// phases: the match array, the per-vertex candidate tables, the spinlock
// array, and the worklist double-buffers with their pack workspace. A zero
// Scratch is ready to use; grow reslices every buffer to the current vertex
// count, allocating only when a graph larger than any seen before arrives —
// after the first phase the steady-state loop allocates nothing here.
//
// A Scratch must not be shared by concurrent matchings. When a kernel runs
// with a Scratch, the returned Result.Match aliases scratch storage and is
// only valid until the next use of the same Scratch.
type Scratch struct {
	match    []int64
	candE    []int64
	candKey  []edgeKey
	candPass []int64
	locks    *par.SpinLocks
	list     []int64 // worklist double-buffer, ping
	list2    []int64 // worklist double-buffer, pong
	keep     []int64
	slots    []int64
	// part is the per-pass degree-balanced schedule over the worklist:
	// item i weighs deg(list[i])+1, so a pass hands every worker an equal
	// share of bucket scanning instead of an equal share of vertices.
	// Ranges are vertex-aligned — the claim phase keeps per-vertex
	// candidate state, so a vertex must never split between workers.
	part par.Partition
	// drain accumulates the per-pass active counts (one append per pass,
	// reused across runs, so the steady state stays off the heap).
	drain []int64
}

// grow resizes every buffer for an n-vertex graph. candPass entries are
// reset to -1 (pass stamps restart at 0 every run); locks are reused as-is —
// every lock is free between runs.
func (s *Scratch) grow(ec *exec.Ctx, n int) {
	s.match = buf.Grow(s.match, n)
	s.candE = buf.Grow(s.candE, n)
	s.candPass = buf.Grow(s.candPass, n)
	s.keep = buf.Grow(s.keep, n)
	s.slots = buf.Grow(s.slots, n)
	if cap(s.candKey) < n {
		s.candKey = make([]edgeKey, n)
	}
	s.candKey = s.candKey[:n]
	if s.locks == nil || s.locks.Len() < n {
		s.locks = par.NewSpinLocks(n)
	}
	if ec.Serial(n) {
		for i := 0; i < n; i++ {
			s.match[i] = Unmatched
			s.candPass[i] = -1
		}
		return
	}
	ec.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.match[i] = Unmatched
			s.candPass[i] = -1
		}
	})
}

// orNew returns s, or a fresh Scratch when s is nil, letting the kernels
// bind their scratch to a single-assignment variable (see WorklistWith).
func (s *Scratch) orNew() *Scratch {
	if s != nil {
		return s
	}
	return &Scratch{}
}

// Worklist computes a greedy heavy maximal matching with the paper's
// unmatched-vertex-list algorithm using p workers. Only edges with a
// strictly positive score participate. It allocates fresh state; the engine
// calls WorklistWith to reuse buffers across phases.
//
// Each pass parallelizes over the array of still-active vertices. An active
// vertex scans its own bucket (each edge is stored exactly once) and pushes
// every available edge as a candidate proposal to *both* endpoints under the
// total order (score, stored endpoints); "if edge {i, j} dominates the
// scores adjacent to i and j, that edge will be found by one of the two
// vertices" (§IV-B). A vertex then claims its best candidate edge exactly
// when the other side's best candidate is the same edge — the
// locally-dominant discipline of Hoepman and Manne–Bisseling, which
// guarantees weight within 2× of the maximum. Vertices whose claim was
// frustrated but that still saw an available edge stay on the list; the
// matching is maximal when the list drains.
func Worklist(ec *exec.Ctx, g *graph.Graph, scores []float64) Result {
	return WorklistWith(ec, g, scores, nil)
}

// WorklistWith is Worklist running out of s's reusable buffers; a nil s
// behaves exactly like Worklist. When ec carries a recorder it records one
// span per pass (worklist length in, requeued count out) and the
// rounds/visits/claim/conflict counters; a nil recorder costs a handful of
// predictable branches per pass — nothing per vertex or edge. When ec's
// context is cancelled the pass loop exits early: the partial matching is
// symmetric and claim-consistent, just not maximal.
func WorklistWith(ec *exec.Ctx, g *graph.Graph, scores []float64, scratch *Scratch) Result {
	rec := ec.Recorder()
	n := int(g.NumVertices())
	// s is assigned exactly once: a variable with any assignment after its
	// declaration is captured by reference when a closure mentions it, i.e.
	// heap-boxed at declaration, which the zero-allocation steady state
	// cannot afford (same for lst below).
	s := scratch.orNew()
	s.grow(ec, n)
	// The per-vertex candidate tables (candE/candKey/candPass) are stamped
	// by pass so they never need clearing; they are guarded by the scratch's
	// locks during phase A and read freely in phase B (the phases are
	// barrier-separated).

	// Initial worklist: vertices owning at least one edge, built with the
	// parallel prefix-sum-and-scatter index pack. Vertices with empty
	// buckets are passive — they receive proposals but the owning side
	// performs the claim.
	keepFlags := s.keep
	if ec.Serial(n) {
		for x := 0; x < n; x++ {
			if g.End[x] > g.Start[x] {
				keepFlags[x] = 1
			} else {
				keepFlags[x] = 0
			}
		}
	} else {
		ec.For(n, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				if g.End[x] > g.Start[x] {
					keepFlags[x] = 1
				} else {
					keepFlags[x] = 0
				}
			}
		})
	}
	list := ec.PackIndexInto(n, keepFlags, s.slots, s.list)

	buf := s.list2
	hot := rec.Hot() // nil when disabled; claim chunks flush into it
	s.drain = s.drain[:0]
	passes := 0
	for len(list) > 0 {
		if ec.Err() != nil {
			break // cancelled: the matching so far is symmetric, stop refining it
		}
		s.drain = append(s.drain, int64(len(list)))
		pass := int64(passes)
		lst := list // single-assignment alias for closure capture
		sp := rec.Begin(obs.CatMatch, "pass", -1)
		var passT0 int64
		if rec.Enabled() {
			passT0 = obs.NowNS()
		}
		// Phase A: active vertices scan their buckets and push proposals to
		// both endpoints of every available positive edge. The pass bodies
		// live in plain functions so the serial path evaluates no closure
		// literal (a literal handed to ForDynamic escapes and heap-allocates
		// even when the loop then runs on one worker).
		balanced := !ec.Serial(len(lst)) && !ec.DynamicOnly()
		if ec.Serial(len(lst)) {
			worklistPropose(g, scores, s, lst, pass, 0, len(lst))
		} else if balanced {
			// One degree-balanced schedule serves both phases of the pass,
			// so a worker revisits in phase B the vertices it proposed for
			// in phase A with the candidate tables still warm.
			ec.BuildIndexed(&s.part, lst, g.Start, g.End)
			ec.ForRanges("match/propose", &s.part, func(lo, hi int) {
				worklistPropose(g, scores, s, lst, pass, lo, hi)
			})
		} else {
			ec.ForDynamic(len(lst), 0, func(lo, hi int) {
				worklistPropose(g, scores, s, lst, pass, lo, hi)
			})
		}
		// Phase B: claim mutual best edges; compact the worklist. The keep
		// flags live in reused scratch, so every entry is written (0 on the
		// drop paths) rather than relying on a fresh zeroed allocation.
		keep := keepFlags[:len(lst)]
		if ec.Serial(len(lst)) {
			worklistClaim(g, s, lst, keep, pass, hot, 0, len(lst))
		} else if balanced {
			ec.ForRanges("match/claim", &s.part, func(lo, hi int) {
				worklistClaim(g, s, lst, keep, pass, hot, lo, hi)
			})
		} else {
			ec.ForDynamic(len(lst), 0, func(lo, hi int) {
				worklistClaim(g, s, lst, keep, pass, hot, lo, hi)
			})
		}
		// Compact into the other half of the double-buffer and swap, so the
		// drained list's storage backs the next pass's output.
		packed := exec.PackInto(ec, lst, keep, s.slots, buf)
		buf = lst[:0]
		list = packed
		passes++
		if rec.Enabled() {
			rec.ObserveLatency(obs.LatMatchPass, obs.NowNS()-passT0)
		}
		sp.EndArgs("active", int64(len(lst)), "requeued", int64(len(packed)))
		rec.Add(obs.CtrMatchActive, int64(len(lst)))
		rec.Add(obs.CtrMatchRequeued, int64(len(packed)))
	}
	s.list, s.list2 = list[:0], buf[:0]
	rec.Add(obs.CtrMatchRounds, int64(passes))
	rec.FoldHot()
	res := finishResult(ec, g, scores, s.match, passes)
	res.Drain = s.drain
	return res
}

// worklistPropose is phase A of one worklist pass over list[lo:hi]: each
// active vertex scans its own bucket and proposes every available positive
// edge to both endpoints under the total order.
func worklistPropose(g *graph.Graph, scores []float64, s *Scratch, list []int64, pass int64, lo, hi int) {
	match, locks := s.match, s.locks
	candE, candKey, candPass := s.candE, s.candKey, s.candPass
	for i := lo; i < hi; i++ {
		u := list[i]
		if atomic.LoadInt64(&match[u]) != Unmatched {
			continue
		}
		for e := g.Start[u]; e < g.End[u]; e++ {
			sc := scores[e]
			if sc <= 0 {
				continue
			}
			v := g.V[e]
			if atomic.LoadInt64(&match[v]) != Unmatched {
				continue
			}
			k := makeKey(sc, g.U[e], g.V[e])
			for _, side := range [2]int64{u, v} {
				locks.Lock(side)
				if candPass[side] != pass || candKey[side].less(k) {
					candPass[side] = pass
					candKey[side] = k
					candE[side] = e
				}
				locks.Unlock(side)
			}
		}
	}
}

// worklistClaim is phase B of one worklist pass over list[lo:hi]: claim
// mutually best edges and set the keep flag for vertices that stay active.
// Claim outcomes are counted into chunk-locals and flushed once into hot
// (nil when observability is off) — never a per-vertex atomic.
func worklistClaim(g *graph.Graph, s *Scratch, list, keep []int64, pass int64, hot *obs.Hot, lo, hi int) {
	match, locks := s.match, s.locks
	candE, candPass := s.candE, s.candPass
	var claims, conflicts int64
	for i := lo; i < hi; i++ {
		keep[i] = 0
		u := list[i]
		if atomic.LoadInt64(&match[u]) != Unmatched {
			continue // matched; drop
		}
		if candPass[u] != pass {
			continue // no available edge anywhere near u; drop for good
		}
		e := candE[u]
		a, b := g.U[e], g.V[e]
		o := a // other endpoint of our best edge
		if o == u {
			o = b
		}
		if candPass[o] == pass && candE[o] == e {
			// Mutually best: claim both sides. Both endpoints may run this
			// claim; Lock2 serializes and the second sees the pair already
			// made.
			locks.Lock2(u, o)
			if match[u] == Unmatched && match[o] == Unmatched {
				atomic.StoreInt64(&match[u], o)
				atomic.StoreInt64(&match[o], u)
				claims++
			} else {
				conflicts++
			}
			locks.Unlock2(u, o)
		}
		if atomic.LoadInt64(&match[u]) == Unmatched {
			// Still free but edges remain in reach: try again.
			keep[i] = 1
		}
	}
	hot.Add(obs.CtrMatchClaims, claims)
	hot.Add(obs.CtrMatchConflicts, conflicts)
}

// EdgeSweep computes the matching with the 2011 whole-edge-array algorithm
// using p workers: every sweep updates a per-vertex best edge through a
// vertex lock (the full/empty-bit hot spot), then matches mutually best
// edges. Kept as the ablation baseline for the paper's claim that the
// worklist algorithm's gains are "marginal on the Cray XMT but drastic on
// Intel-based platforms".
func EdgeSweep(ec *exec.Ctx, g *graph.Graph, scores []float64) Result {
	return EdgeSweepWith(ec, g, scores, nil)
}

// EdgeSweepWith is EdgeSweep running out of s's reusable buffers; a nil s
// behaves exactly like EdgeSweep. The candidate tables double as the
// per-vertex best-edge tables. Observability mirrors WorklistWith: one span
// per whole-edge-array pass plus the rounds and claim/conflict counters (the
// edge sweep has no worklist, so every pass reports the full vertex count as
// its active size), and a cancelled context exits the pass loop early with a
// symmetric partial matching.
func EdgeSweepWith(ec *exec.Ctx, g *graph.Graph, scores []float64, scratch *Scratch) Result {
	rec := ec.Recorder()
	n := int(g.NumVertices())
	s := scratch.orNew()
	s.grow(ec, n)

	hot := rec.Hot()
	s.drain = s.drain[:0]
	passes := 0
	for {
		if ec.Err() != nil {
			break
		}
		pass := int64(passes)
		eligible := false
		sp := rec.Begin(obs.CatMatch, "pass", -1)
		var passT0 int64
		if rec.Enabled() {
			passT0 = obs.NowNS()
		}
		// Sweep 1: per-endpoint best via locks (the hot spot). As in the
		// worklist kernel, the sweep bodies are plain functions so the
		// serial path evaluates no escaping closure literal.
		if ec.Serial(n) {
			eligible = edgeSweepBest(g, scores, s, pass, 0, n)
		} else {
			var flag int64
			ec.ForDynamic(n, 0, func(lo, hi int) {
				if edgeSweepBest(g, scores, s, pass, lo, hi) {
					atomic.StoreInt64(&flag, 1)
				}
			})
			eligible = flag != 0
		}
		if !eligible {
			sp.End()
			break
		}
		// Sweep 2: match mutually best edges.
		if ec.Serial(n) {
			edgeSweepClaim(g, scores, s, pass, hot, 0, n)
		} else {
			ec.ForDynamic(n, 0, func(lo, hi int) {
				edgeSweepClaim(g, scores, s, pass, hot, lo, hi)
			})
		}
		passes++
		if rec.Enabled() {
			rec.ObserveLatency(obs.LatMatchPass, obs.NowNS()-passT0)
		}
		s.drain = append(s.drain, int64(n))
		sp.EndArgs("active", int64(n), "pass", pass)
		rec.Add(obs.CtrMatchActive, int64(n))
	}
	rec.Add(obs.CtrMatchRounds, int64(passes))
	rec.FoldHot()
	res := finishResult(ec, g, scores, s.match, passes)
	res.Drain = s.drain
	return res
}

// edgeSweepBest is sweep 1 of one edge-sweep pass over buckets [lo, hi): it
// funnels each available positive edge through both endpoints' locked best
// slots and reports whether any eligible edge was seen.
func edgeSweepBest(g *graph.Graph, scores []float64, s *Scratch, pass int64, lo, hi int) bool {
	match, locks := s.match, s.locks
	bestEdge, bestKey, bestPass := s.candE, s.candKey, s.candPass
	local := false
	for x := int64(lo); x < int64(hi); x++ {
		for e := g.Start[x]; e < g.End[x]; e++ {
			sc := scores[e]
			if sc <= 0 {
				continue
			}
			u, v := g.U[e], g.V[e]
			if atomic.LoadInt64(&match[u]) != Unmatched ||
				atomic.LoadInt64(&match[v]) != Unmatched {
				continue
			}
			local = true
			k := makeKey(sc, u, v)
			for _, side := range [2]int64{u, v} {
				locks.Lock(side)
				if bestPass[side] != pass || bestKey[side].less(k) {
					bestPass[side] = pass
					bestKey[side] = k
					bestEdge[side] = e
				}
				locks.Unlock(side)
			}
		}
	}
	return local
}

// edgeSweepClaim is sweep 2 of one edge-sweep pass over buckets [lo, hi):
// match mutually best edges. Claim outcomes flush once per chunk into hot
// (nil when observability is off).
func edgeSweepClaim(g *graph.Graph, scores []float64, s *Scratch, pass int64, hot *obs.Hot, lo, hi int) {
	match, locks := s.match, s.locks
	bestEdge, bestPass := s.candE, s.candPass
	var claims, conflicts int64
	for x := int64(lo); x < int64(hi); x++ {
		for e := g.Start[x]; e < g.End[x]; e++ {
			if scores[e] <= 0 {
				continue
			}
			u, v := g.U[e], g.V[e]
			if bestPass[u] != pass || bestPass[v] != pass {
				continue
			}
			if bestEdge[u] != e || bestEdge[v] != e {
				continue
			}
			locks.Lock2(u, v)
			if match[u] == Unmatched && match[v] == Unmatched {
				atomic.StoreInt64(&match[u], v)
				atomic.StoreInt64(&match[v], u)
				claims++
			} else {
				conflicts++
			}
			locks.Unlock2(u, v)
		}
	}
	hot.Add(obs.CtrMatchClaims, claims)
	hot.Add(obs.CtrMatchConflicts, conflicts)
}

// finishResult counts pairs and sums matched-edge scores.
func finishResult(ec *exec.Ctx, g *graph.Graph, scores []float64, match []int64, passes int) Result {
	n := int(g.NumVertices())
	if ec.Serial(n) {
		var pairs int64
		var weight float64
		for x := int64(0); x < int64(n); x++ {
			if m := match[x]; m != Unmatched && x < m {
				pairs++
			}
			for e := g.Start[x]; e < g.End[x]; e++ {
				if match[g.U[e]] == g.V[e] {
					weight += scores[e]
				}
			}
		}
		return Result{Match: match, Pairs: pairs, Weight: weight, Passes: passes}
	}
	// Declared after the serial return: the closure takes their addresses,
	// which would heap-box them on the serial path too.
	var pairs int64
	var weightBits uint64
	ec.ForDynamic(n, 0, func(lo, hi int) {
		var localPairs int64
		var localWeight float64
		for x := int64(lo); x < int64(hi); x++ {
			if m := match[x]; m != Unmatched && x < m {
				localPairs++
			}
			for e := g.Start[x]; e < g.End[x]; e++ {
				if match[g.U[e]] == g.V[e] {
					localWeight += scores[e]
				}
			}
		}
		atomic.AddInt64(&pairs, localPairs)
		addFloatAtomic(&weightBits, localWeight)
	})
	return Result{Match: match, Pairs: pairs, Weight: floatFromBits(weightBits), Passes: passes}
}

// Verify checks that match is a valid maximal matching of the positively
// scored edges of g: symmetry, partner validity, adjacency of matched
// pairs via a positive edge, and maximality (no positive edge joins two
// unmatched vertices). Intended for tests and debugging.
func Verify(g *graph.Graph, scores []float64, match []int64) error {
	n := g.NumVertices()
	if int64(len(match)) != n {
		return fmt.Errorf("matching: match has %d entries for %d vertices", len(match), n)
	}
	for x := int64(0); x < n; x++ {
		m := match[x]
		if m == Unmatched {
			continue
		}
		if m < 0 || m >= n {
			return fmt.Errorf("matching: match[%d] = %d out of range", x, m)
		}
		if m == x {
			return fmt.Errorf("matching: vertex %d matched to itself", x)
		}
		if match[m] != x {
			return fmt.Errorf("matching: asymmetric pair (%d, %d)", x, m)
		}
	}
	// Matched pairs must share a positive stored edge; maximality over
	// positive edges.
	paired := make(map[[2]int64]bool)
	var violation error
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		if violation != nil {
			return
		}
		if scores[e] > 0 && match[u] == Unmatched && match[v] == Unmatched {
			violation = fmt.Errorf("matching: not maximal, positive edge {%d,%d} unmatched on both sides", u, v)
			return
		}
		if match[u] == v {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if scores[e] <= 0 {
				violation = fmt.Errorf("matching: pair (%d,%d) uses non-positive edge score %v", u, v, scores[e])
				return
			}
			paired[[2]int64{a, b}] = true
		}
	})
	if violation != nil {
		return violation
	}
	for x := int64(0); x < n; x++ {
		m := match[x]
		if m == Unmatched || x > m {
			continue
		}
		if !paired[[2]int64{x, m}] {
			return fmt.Errorf("matching: pair (%d,%d) has no positive stored edge", x, m)
		}
	}
	return nil
}

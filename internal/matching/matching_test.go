package matching

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/scoring"
)

// kernels under test, by name, adapted back to a plain worker-count
// signature for the table-driven tests.
var kernels = map[string]func(p int, g *graph.Graph, scores []float64) Result{
	"worklist": func(p int, g *graph.Graph, scores []float64) Result {
		return Worklist(exec.Background(p), g, scores)
	},
	"edgesweep": func(p int, g *graph.Graph, scores []float64) Result {
		return EdgeSweep(exec.Background(p), g, scores)
	},
}

// uniformScores gives every edge score 1.
func uniformScores(g *graph.Graph) []float64 {
	s := make([]float64, len(g.U))
	g.ForEachEdge(func(e int64, _, _, _ int64) { s[e] = 1 })
	return s
}

// weightScores scores each edge by its weight.
func weightScores(g *graph.Graph) []float64 {
	s := make([]float64, len(g.U))
	g.ForEachEdge(func(e int64, _, _, w int64) { s[e] = float64(w) })
	return s
}

func TestSingleEdge(t *testing.T) {
	g := graph.MustBuild(1, 2, []graph.Edge{{U: 0, V: 1, W: 1}})
	for name, kern := range kernels {
		res := kern(2, g, uniformScores(g))
		if res.Pairs != 1 || res.Match[0] != 1 || res.Match[1] != 0 {
			t.Errorf("%s: single edge not matched: %+v", name, res)
		}
		if err := Verify(g, uniformScores(g), res.Match); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNoPositiveScores(t *testing.T) {
	g := gen.Ring(6)
	scores := make([]float64, len(g.U)) // all zero
	for name, kern := range kernels {
		res := kern(2, g, scores)
		if res.Pairs != 0 {
			t.Errorf("%s: matched %d pairs with no positive scores", name, res.Pairs)
		}
		for _, m := range res.Match {
			if m != Unmatched {
				t.Errorf("%s: vertex matched with no positive scores", name)
			}
		}
	}
}

func TestNegativeScoresExcluded(t *testing.T) {
	// Path 0-1-2: edge {0,1} positive, edge {1,2} negative.
	g := graph.MustBuild(1, 3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	scores := make([]float64, len(g.U))
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		if (u == 0 && v == 1) || (u == 1 && v == 0) {
			scores[e] = 1
		} else {
			scores[e] = -1
		}
	})
	for name, kern := range kernels {
		res := kern(1, g, scores)
		if res.Match[0] != 1 || res.Match[2] != Unmatched {
			t.Errorf("%s: match %v, want 0-1 paired and 2 free", name, res.Match)
		}
		if err := Verify(g, scores, res.Match); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestStarMatchesOnePair(t *testing.T) {
	g := gen.Star(10)
	for name, kern := range kernels {
		scores := uniformScores(g)
		res := kern(4, g, scores)
		if res.Pairs != 1 {
			t.Errorf("%s: star matched %d pairs, want 1", name, res.Pairs)
		}
		if err := Verify(g, scores, res.Match); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHeaviestEdgeWinsOnPath(t *testing.T) {
	// Path 0-1-2-3 with middle edge far heavier: greedy must take {1,2}.
	g := graph.MustBuild(1, 4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 100}, {U: 2, V: 3, W: 1}})
	for name, kern := range kernels {
		scores := weightScores(g)
		res := kern(2, g, scores)
		if res.Match[1] != 2 || res.Match[2] != 1 {
			t.Errorf("%s: heavy middle edge not matched: %v", name, res.Match)
		}
		if err := Verify(g, scores, res.Match); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMaximalAndValidOnRandomGraphs(t *testing.T) {
	r := par.NewRNG(31)
	for trial := 0; trial < 20; trial++ {
		n := int64(20 + r.Intn(100))
		var edges []graph.Edge
		cnt := int(n) * 3
		for i := 0; i < cnt; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(10) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		scores := weightScores(g)
		for name, kern := range kernels {
			for _, p := range []int{1, 4} {
				res := kern(p, g, scores)
				if err := Verify(g, scores, res.Match); err != nil {
					t.Fatalf("trial %d %s p=%d: %v", trial, name, p, err)
				}
			}
		}
	}
}

// bruteMaxMatching finds the true maximum-weight matching over positive
// edges by exhaustive search (tiny graphs only).
func bruteMaxMatching(g *graph.Graph, scores []float64) float64 {
	type edge struct {
		u, v int64
		s    float64
	}
	var es []edge
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		if scores[e] > 0 {
			es = append(es, edge{u, v, scores[e]})
		}
	})
	n := g.NumVertices()
	used := make([]bool, n)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(es) {
			return 0
		}
		best := rec(i + 1) // skip edge i
		e := es[i]
		if !used[e.u] && !used[e.v] {
			used[e.u], used[e.v] = true, true
			if w := e.s + rec(i+1); w > best {
				best = w
			}
			used[e.u], used[e.v] = false, false
		}
		return best
	}
	return rec(0)
}

func TestHalfApproximationProperty(t *testing.T) {
	// Greedy maximal matching weight ≥ max/2 on small random graphs.
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		const n = 10
		var edges []graph.Edge
		for i := 0; i+2 < len(raw) && len(edges) < 14; i += 3 {
			edges = append(edges, graph.Edge{
				U: int64(raw[i] % n), V: int64(raw[i+1] % n), W: int64(raw[i+2]%20) + 1})
		}
		g, err := graph.Build(1, n, edges)
		if err != nil {
			return false
		}
		scores := weightScores(g)
		opt := bruteMaxMatching(g, scores)
		for _, kern := range kernels {
			res := kern(p, g, scores)
			if Verify(g, scores, res.Match) != nil {
				return false
			}
			if res.Weight < opt/2-1e-9 {
				return false
			}
			if res.Weight > opt+1e-9 {
				return false // heavier than the optimum is impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestModularityScoredMatchingOnLJSim(t *testing.T) {
	g, _, err := gen.LJSim(4, gen.DefaultLJSim(2000, 77))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.WeightedDegrees(4)
	scores := make([]float64, len(g.U))
	scoring.Modularity{}.Score(exec.Background(4), g, deg, g.TotalWeight(4), scores)
	for name, kern := range kernels {
		res := kern(4, g, scores)
		if err := Verify(g, scores, res.Match); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Pairs == 0 {
			t.Fatalf("%s: no pairs on a community-rich graph", name)
		}
		if res.Weight <= 0 {
			t.Fatalf("%s: non-positive matching weight %v", name, res.Weight)
		}
	}
}

func TestResultWeightMatchesMatchedEdges(t *testing.T) {
	g := gen.CliqueChain(4, 5)
	scores := weightScores(g)
	for name, kern := range kernels {
		res := kern(3, g, scores)
		var want float64
		g.ForEachEdge(func(e int64, u, v, _ int64) {
			if res.Match[u] == v {
				want += scores[e]
			}
		})
		if math.Abs(res.Weight-want) > 1e-9 {
			t.Fatalf("%s: Weight %v, recomputed %v", name, res.Weight, want)
		}
		var pairs int64
		for x, m := range res.Match {
			if m != Unmatched && int64(x) < m {
				pairs++
			}
		}
		if pairs != res.Pairs {
			t.Fatalf("%s: Pairs %d, recomputed %d", name, res.Pairs, pairs)
		}
	}
}

func TestVerifyCatchesBadMatchings(t *testing.T) {
	g := graph.MustBuild(1, 4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	scores := uniformScores(g)
	bad := [][]int64{
		{1, 0, Unmatched, Unmatched}, // not maximal: {2,3} open
		{1, 0, 3, 99},                // partner out of range
		{1, 0, 3, 3},                 // self-match
		{1, 2, 1, Unmatched},         // asymmetric
		{2, Unmatched, 0, Unmatched}, // no stored edge between 0 and 2
		{1, 0, 3},                    // wrong length
	}
	for i, m := range bad {
		if err := Verify(g, scores, m); err == nil {
			t.Errorf("bad matching %d accepted", i)
		}
	}
	good := []int64{1, 0, 3, 2}
	if err := Verify(g, scores, good); err != nil {
		t.Errorf("good matching rejected: %v", err)
	}
}

func TestPassesReported(t *testing.T) {
	g := gen.Clique(20)
	for name, kern := range kernels {
		res := kern(4, g, uniformScores(g))
		if res.Passes < 1 {
			t.Errorf("%s: reported %d passes", name, res.Passes)
		}
	}
}

func TestIncreasingPathIsDeterministicLocalMax(t *testing.T) {
	// Path with strictly increasing weights 1..n-1: the locally dominant
	// discipline must always match from the heavy end downward, taking
	// edges n-1, n-3, n-5, ... regardless of parallelism. This pins the
	// greedy semantics, not just validity.
	const n = 12
	var edges []graph.Edge
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: i + 1})
	}
	g := graph.MustBuild(1, n, edges)
	scores := weightScores(g)
	for name, kern := range kernels {
		for _, p := range []int{1, 4} {
			res := kern(p, g, scores)
			if err := Verify(g, scores, res.Match); err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			// Expected pairs: (10,11), (8,9), (6,7), (4,5), (2,3), (0,1).
			for x := int64(0); x < n; x += 2 {
				if res.Match[x] != x+1 || res.Match[x+1] != x {
					t.Fatalf("%s p=%d: match %v, want alternating pairs from the heavy end",
						name, p, res.Match)
				}
			}
			if res.Pairs != n/2 {
				t.Fatalf("%s p=%d: %d pairs", name, p, res.Pairs)
			}
		}
	}
}

func TestWorklistAdversarialPathWorstCase(t *testing.T) {
	// The paper: "Strictly this is not an O(|E|) algorithm, but the number
	// of passes is small enough in social network graphs" (§IV-B). The
	// strictly increasing path is the adversarial case: exactly one edge is
	// locally dominant per pass, so a locally-dominant matcher needs ~n/2
	// passes. Pin that known worst case so regressions in the pass
	// accounting are visible.
	const n = 1000
	var edges []graph.Edge
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: i + 1})
	}
	g := graph.MustBuild(2, n, edges)
	scores := weightScores(g)
	res := Worklist(exec.Background(2), g, scores)
	if err := Verify(g, scores, res.Match); err != nil {
		t.Fatal(err)
	}
	if res.Passes < n/2-2 || res.Passes > n/2+2 {
		t.Fatalf("adversarial path took %d passes, expected ≈%d", res.Passes, n/2)
	}
}

func TestWorklistFewPassesOnSocialGraph(t *testing.T) {
	// The flip side of the worst case: on a social-network-like graph the
	// pass count stays far below |V|, which is the paper's justification
	// for calling the matching "effectively O(|E|)".
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(20000, 5))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.WeightedDegrees(2)
	scores := make([]float64, len(g.U))
	scoring.Modularity{}.Score(exec.Background(2), g, deg, g.TotalWeight(2), scores)
	res := Worklist(exec.Background(2), g, scores)
	if err := Verify(g, scores, res.Match); err != nil {
		t.Fatal(err)
	}
	if res.Passes > 100 {
		t.Fatalf("social graph took %d passes; should be far below |V|", res.Passes)
	}
}

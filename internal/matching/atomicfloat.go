package matching

import (
	"math"
	"sync/atomic"
)

// addFloatAtomic adds delta to the float64 stored as bits in *addr with a
// compare-and-swap loop. Matching weight accumulation is the only float
// reduction on the kernel's hot path; per-worker partials would also work
// but the CAS runs once per worker, not per edge.
func addFloatAtomic(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		cur := math.Float64frombits(old)
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

func floatFromBits(bits uint64) float64 {
	return math.Float64frombits(bits)
}

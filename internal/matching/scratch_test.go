package matching

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestScratchReuseAcrossGraphs runs both kernels repeatedly through one
// Scratch over graphs of shrinking and growing sizes — the engine's phase
// pattern plus the harness's trial pattern — and checks every matching is
// valid and maximal.
func TestScratchReuseAcrossGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		gen.CliqueChain(16, 6),
		gen.Karate(),
		gen.Ring(5),
		gen.CliqueChain(32, 4), // bigger again: buffers must regrow
	}
	kernels := []struct {
		name string
		run  func(p int, g *graph.Graph, scores []float64, s *Scratch) Result
	}{
		{"worklist", func(p int, g *graph.Graph, scores []float64, s *Scratch) Result {
			return WorklistWith(exec.Background(p), g, scores, s)
		}},
		{"edgesweep", func(p int, g *graph.Graph, scores []float64, s *Scratch) Result {
			return EdgeSweepWith(exec.Background(p), g, scores, s)
		}},
	}
	for _, k := range kernels {
		var s Scratch
		for gi, g := range graphs {
			scores := make([]float64, len(g.U))
			for e := range scores {
				scores[e] = float64(e%7) + 0.5
			}
			for trial := 0; trial < 3; trial++ {
				res := k.run(2, g, scores, &s)
				if err := Verify(g, scores, res.Match); err != nil {
					t.Fatalf("%s graph %d trial %d: %v", k.name, gi, trial, err)
				}
				if int64(len(res.Match)) != g.NumVertices() {
					t.Fatalf("%s graph %d: match sized %d for %d vertices",
						k.name, gi, len(res.Match), g.NumVertices())
				}
			}
		}
	}
}

// TestScratchMatchesFresh checks single-threaded scratch and fresh runs
// produce the identical matching (p=1 makes the kernel deterministic).
func TestScratchMatchesFresh(t *testing.T) {
	g := gen.CliqueChain(24, 5)
	scores := make([]float64, len(g.U))
	for e := range scores {
		scores[e] = float64((e*13)%11) + 0.25
	}
	var s Scratch
	// Dirty the scratch first with an unrelated run.
	WorklistWith(exec.Background(1), gen.Karate(), make([]float64, len(gen.Karate().U)), &s)
	fresh := Worklist(exec.Background(1), g, scores)
	reused := WorklistWith(exec.Background(1), g, scores, &s)
	for v := range fresh.Match {
		if fresh.Match[v] != reused.Match[v] {
			t.Fatalf("match[%d]: fresh %d, scratch %d", v, fresh.Match[v], reused.Match[v])
		}
	}
	if fresh.Pairs != reused.Pairs || fresh.Passes != reused.Passes {
		t.Fatalf("fresh (pairs=%d passes=%d) != scratch (pairs=%d passes=%d)",
			fresh.Pairs, fresh.Passes, reused.Pairs, reused.Passes)
	}
}

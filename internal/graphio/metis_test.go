package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestReadMETISUnweighted(t *testing.T) {
	// Triangle, default format (no weights): fmt field omitted.
	in := `% a comment
3 3
2 3
1 3
1 2
`
	g, err := ReadMETIS(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	g.ForEachEdge(func(_ int64, _, _, w int64) {
		if w != 1 {
			t.Fatalf("weight %d", w)
		}
	})
}

func TestReadMETISEdgeWeights(t *testing.T) {
	in := "2 1 001\n2 7\n1 7\n"
	g, err := ReadMETIS(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.TotalWeight(1) != 7 {
		t.Fatalf("|E|=%d w=%d", g.NumEdges(), g.TotalWeight(1))
	}
}

func TestReadMETISVertexWeightsSkipped(t *testing.T) {
	// fmt=011: edge weights + 2 vertex weights per line (ncon=2).
	in := "2 1 011 2\n5 5 2 9\n1 1 1 9\n"
	g, err := ReadMETIS(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.TotalWeight(1) != 9 {
		t.Fatalf("|E|=%d w=%d", g.NumEdges(), g.TotalWeight(1))
	}
}

func TestReadMETISErrors(t *testing.T) {
	for _, in := range []string{
		"",                    // no header
		"2\n",                 // short header
		"x 1\n1 2\n",          // bad n
		"2 x\n2\n1\n",         // bad m
		"2 1\n2\n",            // missing vertex line
		"2 1\n3\n1\n",         // neighbor out of range
		"2 1 001\n2\n1\n",     // missing weight
		"2 1 001\n2 0\n1 0\n", // zero weight
		"2 2\n2\n1\n",         // edge count mismatch
		"2 1 1 0 0 0\n2\n1\n", // header too long
	} {
		if _, err := ReadMETIS(strings.NewReader(in), 1); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g, _, err := gen.SBM(2, gen.SBMConfig{Blocks: []int64{15, 25}, PIn: 0.35, POut: 0.04, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// METIS drops self-loops (there are none here), so graphs match fully.
	assertSameGraph(t, g, back)
}

package graphio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// mappedTestGraph is the round-trip fixture: a three-block SBM with a couple
// of explicit self-loops so every section of the format carries real data.
func mappedTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := gen.SBM(2, gen.SBMConfig{Blocks: []int64{40, 30, 30}, PIn: 0.3, POut: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g.Self[3] = 5
	g.Self[17] = 2
	return g
}

// writeMappedFile serializes g into dir and returns the path.
func writeMappedFile(t *testing.T, dir string, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(dir, "g.mmapcsr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMapped(f, 2, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sortedCSR is the canonical in-memory image the on-disk sections must match.
func sortedCSR(g *graph.Graph) *graph.CSR {
	c := graph.ToCSR(2, g)
	graph.SortCSRRows(2, c)
	return c
}

func csrSectionsEqual(t *testing.T, what string, got, want *graph.CSR) {
	t.Helper()
	if gn, wn := got.NumVertices(), want.NumVertices(); gn != wn {
		t.Fatalf("%s: |V| = %d, want %d", what, gn, wn)
	}
	for name, pair := range map[string][2][]int64{
		"offsets": {got.Offsets, want.Offsets},
		"adj":     {got.Adj, want.Adj},
		"wgt":     {got.Wgt, want.Wgt},
		"self":    {got.Self, want.Self},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: %s length %d, want %d", what, name, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s: %s[%d] = %d, want %d", what, name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

func TestMappedRoundTrip(t *testing.T) {
	g := mappedTestGraph(t)
	path := writeMappedFile(t, t.TempDir(), g)

	mp, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	if mp.NumVertices() != g.NumVertices() || mp.NumEdges() != g.NumEdges() {
		t.Fatalf("|V|/|E| = %d/%d, want %d/%d", mp.NumVertices(), mp.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if tw := g.TotalWeight(1); mp.TotalWeight() != tw {
		t.Fatalf("total weight %d, want %d", mp.TotalWeight(), tw)
	}
	csrSectionsEqual(t, "open", mp.CSR(), sortedCSR(g))
	if err := graph.VerifyCSR(mp.CSR()); err != nil {
		t.Fatalf("VerifyCSR: %v", err)
	}
	for _, a := range []Advice{AdviseSequential, AdviseRandom, AdviseNormal} {
		if err := mp.Advise(a); err != nil {
			t.Fatalf("Advise(%d): %v", a, err)
		}
	}

	// Materializing back through the builder must reproduce the original
	// graph exactly (the convert round-trip path).
	back, err := graph.FromCSR(2, mp.CSR())
	if err != nil {
		t.Fatal(err)
	}
	csrSectionsEqual(t, "materialize", sortedCSR(back), sortedCSR(g))

	if err := mp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := mp.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestMappedReaderAtMatchesMmap(t *testing.T) {
	// The pure-Go fallback must decode the identical sections the zero-copy
	// path serves, and must itself round-trip regardless of platform.
	g := mappedTestGraph(t)
	path := writeMappedFile(t, t.TempDir(), g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := OpenMappedReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if mp.MmapBacked() {
		t.Fatal("ReaderAt path claims to be mmap-backed")
	}
	if err := mp.Advise(AdviseSequential); err != nil {
		t.Fatalf("fallback Advise: %v", err)
	}
	csrSectionsEqual(t, "readerat", mp.CSR(), sortedCSR(g))
}

func TestMappedWriteDeterministic(t *testing.T) {
	// Rows are sorted before serialization, so the bytes must be a pure
	// function of the graph — independent of the CSR scatter's worker count.
	g := mappedTestGraph(t)
	var a, b bytes.Buffer
	if err := WriteMapped(&a, 1, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteMapped(&b, 4, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("mmapcsr bytes differ between p=1 and p=4 serializations")
	}
}

func TestMappedEdgelessGraph(t *testing.T) {
	// m = 0 collapses the adj/wgt sections to zero length (offWgt ==
	// fileSize); both open paths must handle the empty sections.
	g, err := graph.Build(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Self[1] = 4
	path := writeMappedFile(t, t.TempDir(), g)
	mp, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	if mp.NumVertices() != 3 || mp.NumEdges() != 0 || mp.TotalWeight() != 4 {
		t.Fatalf("|V|=%d |E|=%d totW=%d, want 3/0/4", mp.NumVertices(), mp.NumEdges(), mp.TotalWeight())
	}
	if got := mp.CSR().SelfLoop(1); got != 4 {
		t.Fatalf("self[1] = %d, want 4", got)
	}
}

// corruptMapped returns the serialized fixture with the int64 header field
// at index i overwritten by v.
func corruptMapped(t *testing.T, g *graph.Graph, i int, v int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMapped(&buf, 1, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[8*i:], uint64(v))
	return data
}

func TestMappedHostileHeaders(t *testing.T) {
	g := mappedTestGraph(t)
	var clean bytes.Buffer
	if err := WriteMapped(&clean, 1, g); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", corruptMapped(t, g, 0, 0x7777)},
		{"negative vertices", corruptMapped(t, g, 1, -1)},
		// Counts beyond MaxVertices / the edge plausibility bound are
		// rejected before any layout arithmetic.
		{"huge vertices", corruptMapped(t, g, 1, MaxVertices)},
		{"huge edges", corruptMapped(t, g, 2, 1<<50)},
		// Plausible-looking counts that cannot physically fit in the file
		// must fail the size check before driving any allocation — the
		// mapped half of the maxSpeculativeBytes defense.
		{"oversized vertex claim", corruptMapped(t, g, 1, 1<<30)},
		{"oversized edge claim", corruptMapped(t, g, 2, 1<<40)},
		{"skewed section offset", corruptMapped(t, g, 5, mappedPage+8)},
		{"wrong file size field", corruptMapped(t, g, 8, 1<<20)},
		{"truncated file", clean.Bytes()[:clean.Len()-mappedPage]},
		{"header page only", clean.Bytes()[:mappedPage]},
		{"short file", clean.Bytes()[:100]},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		if _, err := OpenMappedReaderAt(bytes.NewReader(tc.data), int64(len(tc.data))); err == nil {
			t.Errorf("%s: ReaderAt path accepted corrupt image", tc.name)
		}
		// The mmap path must reject the same image.
		path := filepath.Join(dir, "corrupt.mmapcsr")
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if mp, err := OpenMapped(path); err == nil {
			mp.Close()
			t.Errorf("%s: OpenMapped accepted corrupt image", tc.name)
		}
	}
}

func TestSniffMapped(t *testing.T) {
	g := mappedTestGraph(t)
	var mappedBuf, binBuf bytes.Buffer
	if err := WriteMapped(&mappedBuf, 1, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&binBuf, g); err != nil {
		t.Fatal(err)
	}
	if !SniffMapped(bytes.NewReader(mappedBuf.Bytes())) {
		t.Error("mmapcsr image not sniffed as mapped")
	}
	if SniffMapped(bytes.NewReader(binBuf.Bytes())) {
		t.Error("binary image sniffed as mapped")
	}
	if SniffMapped(bytes.NewReader(nil)) {
		t.Error("empty input sniffed as mapped")
	}
}

//go:build linux

package graphio

// The Linux mmap backend. This file is the only place in the repository
// that touches the raw mapping primitives (syscall.Mmap/Madvise and the
// unsafe.Slice section views) — the vet-obs lint enforces that; everything
// above it works through graph.CSR slices that merely happen to alias the
// mapping.

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported selects the zero-copy open path in openMappedFile. The
// zero-copy section views reinterpret the little-endian file bytes as host
// int64s, so the path additionally requires a little-endian host; big-endian
// Linux targets (s390x) fall back to the decoding ReaderAt reader.
var mmapSupported = func() bool {
	one := uint16(1)
	return *(*byte)(unsafe.Pointer(&one)) == 1
}()

// mmapFile maps the first size bytes of f read-only and shared (the file is
// never written through the mapping, so shared vs private only affects
// page-cache accounting).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("graphio: mmapcsr: cannot map %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile.
func munmapFile(data []byte) error { return syscall.Munmap(data) }

// adviseBytes forwards an access-pattern hint for the mapped region to the
// kernel.
func adviseBytes(data []byte, a Advice) error {
	advice := syscall.MADV_NORMAL
	switch a {
	case AdviseSequential:
		advice = syscall.MADV_SEQUENTIAL
	case AdviseRandom:
		advice = syscall.MADV_RANDOM
	}
	return syscall.Madvise(data, advice)
}

// sectionInt64s views count int64s of the mapping starting at byte offset
// off. The offset is page-aligned by the validated layout, and mmap regions
// are page-aligned, so the cast is always 8-byte aligned; bounds were
// checked by decodeMappedHeader against the mapped length.
func sectionInt64s(data []byte, off, count int64) []int64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), count)
}

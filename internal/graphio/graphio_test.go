package graphio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment

0 1
1 2 5
  3	4  2
`
	g, err := ReadEdgeList(strings.NewReader(in), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d, want 5/3", g.NumVertices(), g.NumEdges())
	}
	if g.TotalWeight(1) != 1+5+2 {
		t.Fatalf("weight %d, want 8", g.TotalWeight(1))
	}
}

func TestReadEdgeListMinVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("|V| = %d, want 10", g.NumVertices())
	}
}

func TestReadEdgeListSelfLoopsAndDuplicates(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2\n1 0 3\n2 2 7\n"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Self[2] != 7 {
		t.Fatalf("|E|=%d Self[2]=%d", g.NumEdges(), g.Self[2])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{
		"0\n",                      // too few fields
		"0 1 2 3\n",                // too many fields
		"a 1\n",                    // bad source
		"0 b\n",                    // bad target
		"0 1 x\n",                  // bad weight
		"-1 2\n",                   // negative id
		"0 1 0\n",                  // zero weight
		"0 1 -5\n",                 // negative weight
		"99999999999999999999 1\n", // overflow
	} {
		if _, err := ReadEdgeList(strings.NewReader(in), 1, 0); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, _, err := gen.SBM(2, gen.SBMConfig{Blocks: []int64{20, 30}, PIn: 0.3, POut: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g.Self[5] = 9
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 2, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, back)
}

func TestBinaryRoundTrip(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.Self[0] = 3
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, back)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all, sorry")), 1); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadBinary(bytes.NewReader(nil), 1); err == nil {
		t.Fatal("accepted empty input")
	}
	// Right magic, truncated body.
	var buf bytes.Buffer
	g := gen.Ring(10)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-9]
	if _, err := ReadBinary(bytes.NewReader(trunc), 1); err == nil {
		t.Fatal("accepted truncated input")
	}
}

func TestBinaryHostileHeaderCounts(t *testing.T) {
	// A header claiming in-range but enormous counts over an empty body must
	// fail on the short stream without allocating for the claimed sizes
	// (readInt64s clamps its speculative allocation).
	var buf bytes.Buffer
	hdr := []uint64{binaryMagic, 1 << 30, 1 << 40}
	if err := binary.Write(&buf, binary.LittleEndian, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()), 1); err == nil {
		t.Fatal("accepted a hostile header with no body")
	}
}

func TestReadInt64sPreallocatesKnownCount(t *testing.T) {
	// Below the speculative-allocation cap the known count is trusted for a
	// single up-front allocation: the returned slice must not carry
	// append-doubling slack even when the payload spans many read chunks.
	const count = 3 << 16 // three chunks
	payload := make([]int64, count)
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, payload); err != nil {
		t.Fatal(err)
	}
	out, err := readInt64s(bytes.NewReader(buf.Bytes()), count, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != count || cap(out) != count {
		t.Fatalf("len=%d cap=%d, want both %d (single up-front allocation)", len(out), cap(out), count)
	}
}

func TestReadInt64sCapsSpeculativeAllocation(t *testing.T) {
	// Above maxSpeculativeInt64s the claimed count must NOT be trusted: the
	// up-front allocation stays at the cap and the short stream errors out.
	// This is the shared defense for every reader built on readInt64s —
	// ReadBinary's header counts and the mapped format's section reads.
	payload := make([]int64, 16)
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, payload); err != nil {
		t.Fatal(err)
	}
	_, err := readInt64s(bytes.NewReader(buf.Bytes()), maxSpeculativeInt64s+1000, "test")
	if err == nil {
		t.Fatal("accepted a count above the speculative cap with a short stream")
	}
}

func TestWriteMETIS(t *testing.T) {
	g := gen.Ring(4)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "4 4 001" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	// Vertex 0's neighbors are 1 and 3 → 1-based "2 1" and "4 1".
	if !strings.Contains(lines[1], "2 1") || !strings.Contains(lines[1], "4 1") {
		t.Fatalf("vertex 0 adjacency %q", lines[1])
	}
}

func TestWriteCommunities(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCommunities(&buf, []int64{0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	want := "0 0\n1 0\n2 1\n3 2\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func assertSameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: %d/%d vs %d/%d",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	if a.TotalWeight(1) != b.TotalWeight(1) {
		t.Fatalf("weight differs: %d vs %d", a.TotalWeight(1), b.TotalWeight(1))
	}
	ae, be := a.Edges(), b.Edges()
	sortEdges(ae)
	sortEdges(be)
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	for x := int64(0); x < a.NumVertices(); x++ {
		if a.Self[x] != b.Self[x] {
			t.Fatalf("Self[%d] differs: %d vs %d", x, a.Self[x], b.Self[x])
		}
	}
}

func sortEdges(es []graph.Edge) {
	par.Sort(1, es, func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}

// failWriter errors after a fixed number of bytes, exercising the writers'
// error propagation.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errWriteFailed
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errWriteFailed
	}
	return n, nil
}

var errWriteFailed = fmt.Errorf("graphio test: write failed")

func TestWritersPropagateErrors(t *testing.T) {
	g, _, err := gen.SBM(1, gen.SBMConfig{Blocks: []int64{20, 20}, PIn: 0.5, POut: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g.Self[0] = 3
	writers := map[string]func(io.Writer) error{
		"edgelist": func(w io.Writer) error { return WriteEdgeList(w, g) },
		"binary":   func(w io.Writer) error { return WriteBinary(w, g) },
		"metis":    func(w io.Writer) error { return WriteMETIS(w, g) },
		"communities": func(w io.Writer) error {
			return WriteCommunities(w, make([]int64, 100000))
		},
	}
	for name, write := range writers {
		for _, budget := range []int{0, 10, 100} {
			if err := write(&failWriter{left: budget}); err == nil {
				t.Errorf("%s: no error with %d-byte budget", name, budget)
			}
		}
		// Sanity: a big enough budget succeeds.
		if err := write(&failWriter{left: 1 << 26}); err != nil {
			t.Errorf("%s: failed with ample budget: %v", name, err)
		}
	}
}

package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

// sliceSource adapts a fixed (u, v, w) triple slice into a deterministic
// EdgeSource.
func sliceSource(triples [][3]int64) EdgeSource {
	return func(yield func(u, v, w int64) error) error {
		for _, e := range triples {
			if err := yield(e[0], e[1], e[2]); err != nil {
				return err
			}
		}
		return nil
	}
}

// randomTriples builds a deterministic messy edge stream: duplicates in both
// orientations, self-loops, and skewed weights.
func randomTriples(n int64, count int, seed uint64) [][3]int64 {
	r := par.NewRNG(seed)
	out := make([][3]int64, count)
	for i := range out {
		u := int64(r.Uint64() % uint64(n))
		v := int64(r.Uint64() % uint64(n))
		w := int64(r.Uint64()%7) + 1
		out[i] = [3]int64{u, v, w}
	}
	return out
}

// materialize builds the reference in-memory graph for a triple stream using
// the standard builder (duplicates accumulate, self-loops fold into Self).
func materialize(t *testing.T, n int64, triples [][3]int64) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(triples))
	for i, e := range triples {
		edges[i] = graph.Edge{U: e[0], V: e[1], W: e[2]}
	}
	g, err := graph.Build(2, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStreamMappedMatchesBatchWriter(t *testing.T) {
	// The central streaming gate: for the same logical graph, the
	// bounded-memory two-pass writer must produce byte-identical output to
	// the batch WriteMapped path, across bucket budgets from "everything in
	// one bucket" down to "a handful of vertices per bucket".
	const n = 200
	triples := randomTriples(n, 3000, 42)
	g := materialize(t, n, triples)
	var want bytes.Buffer
	if err := WriteMapped(&want, 2, g); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, budget := range []int64{0, 1 << 20, 256, 64, 17} {
		path := filepath.Join(dir, "stream.mmapcsr")
		stats, err := StreamMapped(path, n, sliceSource(triples), StreamOptions{MaxBufferedEdges: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("budget %d: streamed bytes differ from batch writer (%d buckets)", budget, stats.Buckets)
		}
		if stats.Vertices != n || stats.Edges != g.NumEdges() || stats.TotalWeight != g.TotalWeight(1) {
			t.Fatalf("budget %d: stats %+v disagree with graph |E|=%d totW=%d",
				budget, stats, g.NumEdges(), g.TotalWeight(1))
		}
		if budget == 64 && stats.Buckets < 4 {
			t.Fatalf("budget 64 produced only %d buckets; the multi-bucket path is untested", stats.Buckets)
		}
	}
}

func TestStreamMappedRMATMatchesBatch(t *testing.T) {
	// genrmat -stream equivalence: the serial streaming replay must produce
	// the byte-identical file to generating the full R-MAT edge slice and
	// batch-writing it.
	cfg := gen.DefaultRMAT(8, 99)
	g, err := gen.RMATGraph(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteMapped(&want, 2, g); err != nil {
		t.Fatal(err)
	}
	n, src, err := gen.StreamRMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rmat.mmapcsr")
	if _, err := StreamMapped(path, n, EdgeSource(src), StreamOptions{MaxBufferedEdges: 1024}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("streamed R-MAT bytes differ from batch RMATGraph + WriteMapped")
	}
}

func TestStreamMappedEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.mmapcsr")
	stats, err := StreamMapped(path, 5, sliceSource(nil), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != 0 || stats.RawEntries != 0 {
		t.Fatalf("stats %+v for empty stream", stats)
	}
	mp, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	if mp.NumVertices() != 5 || mp.NumEdges() != 0 {
		t.Fatalf("|V|=%d |E|=%d, want 5/0", mp.NumVertices(), mp.NumEdges())
	}
}

func TestStreamMappedRejectsBadEdges(t *testing.T) {
	dir := t.TempDir()
	for name, triples := range map[string][][3]int64{
		"negative id":     {{-1, 2, 1}},
		"id out of range": {{0, 9, 1}},
		"zero weight":     {{0, 1, 0}},
		"negative weight": {{0, 1, -3}},
	} {
		path := filepath.Join(dir, "bad.mmapcsr")
		if _, err := StreamMapped(path, 5, sliceSource(triples), StreamOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestStreamMappedRejectsNondeterministicSource(t *testing.T) {
	// The two-pass design requires identical replay; a source that yields
	// extra edges on the second pass must be caught, not silently corrupt
	// the file.
	calls := 0
	src := EdgeSource(func(yield func(u, v, w int64) error) error {
		calls++
		edges := [][3]int64{{0, 1, 1}, {1, 2, 1}}
		if calls > 1 {
			edges = append(edges, [][3]int64{{2, 3, 1}, {3, 4, 1}}...)
		}
		for _, e := range edges {
			if err := yield(e[0], e[1], e[2]); err != nil {
				return err
			}
		}
		return nil
	})
	_, err := StreamMapped(filepath.Join(t.TempDir(), "nd.mmapcsr"), 5, src, StreamOptions{})
	if err == nil || !strings.Contains(err.Error(), "not deterministic") {
		t.Fatalf("nondeterministic source: err = %v, want 'not deterministic'", err)
	}
}

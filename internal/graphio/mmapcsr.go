package graphio

// The mmapcsr format (DESIGN.md §15) is the out-of-core on-disk layout: a
// page-aligned little-endian CSR image a reader can memory-map and hand to
// the engine without materializing any edge on the heap. Layout (all values
// int64, little-endian, every section start page-aligned):
//
//	page 0   header: magic, |V|, |E|, totalWeight,
//	         offsets/self/adj/wgt section byte offsets, file size
//	         (rest of the page zero)
//	...      offsets  |V|+1 entries   row bounds, offsets[|V|] = 2|E|
//	...      self     |V|  entries    self-loop weights
//	...      adj      2|E| entries    neighbor ids, every row sorted
//	...      wgt      2|E| entries    edge weights, positionally paired
//
// The symmetric adjacency stores every undirected edge in both endpoints'
// rows (self-loops only in the self section), exactly the shape graph.CSR
// serves, so opening is O(1): validate the header against the actual file
// size, map the file, and wrap the four sections as slices. Rows are sorted
// by neighbor id so equal graphs serialize to identical bytes and the
// sharded reader's per-row sweeps are sequential in the file.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// mappedMagic identifies the memory-mappable CSR graph format, version 1.
const mappedMagic = uint64(0x4344474D_01) // "CDGM" + version

// mappedPage is the section alignment. 4 KiB matches the smallest host page
// size the mapped sections must be int64-aligned on; larger host pages only
// over-align, which is harmless.
const mappedPage = 4096

// mappedHeaderFields is the number of int64 header fields; the header
// occupies the rest of page 0 as zeros.
const mappedHeaderFields = 9

// mappedLayout is the decoded, validated header: the section extents of one
// mmapcsr file.
type mappedLayout struct {
	n, m, totW                          int64
	offOffsets, offSelf, offAdj, offWgt int64
	fileSize                            int64
}

// pageAlign rounds n up to the next page boundary.
func pageAlign(n int64) int64 {
	return (n + mappedPage - 1) &^ (mappedPage - 1)
}

// layoutFor computes the canonical v1 layout for a graph with n vertices
// and m undirected edges. The format admits exactly one layout per (n, m),
// which is what lets the reader validate a header arithmetically instead of
// trusting its offsets.
func layoutFor(n, m, totW int64) mappedLayout {
	l := mappedLayout{n: n, m: m, totW: totW}
	l.offOffsets = mappedPage
	l.offSelf = pageAlign(l.offOffsets + 8*(n+1))
	l.offAdj = pageAlign(l.offSelf + 8*n)
	l.offWgt = pageAlign(l.offAdj + 8*2*m)
	l.fileSize = pageAlign(l.offWgt + 8*2*m)
	return l
}

// decodeMappedHeader validates a raw header against the actual file size
// and returns the layout. Every field is checked before any size-dependent
// allocation: a hostile header claiming huge counts fails the arithmetic
// consistency check against size first (the mapped-format half of the
// maxSpeculativeBytes defense — see that constant's doc).
func decodeMappedHeader(hdr []int64, size int64) (mappedLayout, error) {
	var l mappedLayout
	if uint64(hdr[0]) != mappedMagic {
		return l, fmt.Errorf("graphio: mmapcsr: bad magic %#x (want %#x)", uint64(hdr[0]), mappedMagic)
	}
	n, m := hdr[1], hdr[2]
	if n < 0 || n >= MaxVertices {
		return l, fmt.Errorf("graphio: mmapcsr: implausible vertex count %d (MaxVertices=%d)", n, MaxVertices)
	}
	if m < 0 || m > (1<<44) {
		return l, fmt.Errorf("graphio: mmapcsr: implausible edge count %d", m)
	}
	// Reject counts whose sections cannot fit in the actual file before
	// computing byte extents, so the arithmetic below cannot overflow and a
	// forged header never drives an allocation: the file must physically
	// contain 8(n+1)+8n offset/self bytes and 2·8·2m adjacency bytes.
	if n+1 > size/8 || m > size/32 {
		return l, fmt.Errorf("graphio: mmapcsr: header claims |V|=%d |E|=%d but file is only %d bytes", n, m, size)
	}
	want := layoutFor(n, m, hdr[3])
	got := mappedLayout{
		n: n, m: m, totW: hdr[3],
		offOffsets: hdr[4], offSelf: hdr[5], offAdj: hdr[6], offWgt: hdr[7],
		fileSize: hdr[8],
	}
	if got != want {
		return l, fmt.Errorf("graphio: mmapcsr: header sections inconsistent with |V|=%d |E|=%d (corrupt header?)", n, m)
	}
	if want.fileSize != size {
		return l, fmt.Errorf("graphio: mmapcsr: header claims %d-byte file, actual size %d", want.fileSize, size)
	}
	return want, nil
}

// Mapped is an open mmapcsr graph: a CSR adjacency view whose sections
// live either in a memory-mapped region (Linux) or in heap slices read
// through the pure-Go fallback. The view is read-only; Close unmaps it, so
// the CSR (and anything derived from its slices without copying) must not
// be used after Close.
type Mapped struct {
	f    *os.File
	data []byte // mmap region; nil on the fallback path
	csr  *graph.CSR
	lay  mappedLayout
}

// WriteMapped serializes g in the mmapcsr format using p workers for the
// CSR conversion. The adjacency rows are sorted, so the output bytes are a
// deterministic function of the graph.
func WriteMapped(w io.Writer, p int, g *graph.Graph) error {
	c := graph.ToCSR(p, g)
	graph.SortCSRRows(p, c)
	return WriteMappedCSR(w, c, g.TotalWeight(p))
}

// WriteMappedCSR serializes an already-symmetric CSR view (rows must be
// sorted by neighbor id) with the given total weight. The write is purely
// sequential — header, then each section with its alignment padding — so
// any io.Writer works.
func WriteMappedCSR(w io.Writer, c *graph.CSR, totW int64) error {
	n := c.NumVertices()
	start, end := c.RowBounds()
	adjLen := int64(0)
	if n > 0 {
		adjLen = end[n-1]
	}
	if adjLen%2 != 0 {
		return fmt.Errorf("graphio: mmapcsr: odd adjacency length %d (view not symmetric)", adjLen)
	}
	l := layoutFor(n, adjLen/2, totW)
	bw := newPaddedWriter(w)
	hdr := [mappedHeaderFields]int64{
		int64(mappedMagic), l.n, l.m, l.totW,
		l.offOffsets, l.offSelf, l.offAdj, l.offWgt, l.fileSize,
	}
	if err := bw.writeInt64s(hdr[:]); err != nil {
		return err
	}
	// RowBounds exposes offsets as (start, end) views of the same array;
	// start padded with the final end gives the n+1 offsets section.
	if err := bw.padTo(l.offOffsets); err != nil {
		return err
	}
	if err := bw.writeInt64s(start); err != nil {
		return err
	}
	if err := bw.writeInt64s([]int64{adjLen}); err != nil {
		return err
	}
	if err := bw.padTo(l.offSelf); err != nil {
		return err
	}
	if err := bw.writeInt64s(c.Self); err != nil {
		return err
	}
	if err := bw.padTo(l.offAdj); err != nil {
		return err
	}
	if err := bw.writeInt64s(c.Adj); err != nil {
		return err
	}
	if err := bw.padTo(l.offWgt); err != nil {
		return err
	}
	if err := bw.writeInt64s(c.Wgt); err != nil {
		return err
	}
	if err := bw.padTo(l.fileSize); err != nil {
		return err
	}
	return bw.flush()
}

// paddedWriter writes int64 runs and zero padding with one reused chunk
// buffer, tracking the absolute offset so sections land page-aligned.
type paddedWriter struct {
	w   *bufio.Writer
	off int64
	buf []byte
}

func newPaddedWriter(w io.Writer) *paddedWriter {
	return &paddedWriter{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 1<<16)}
}

func (pw *paddedWriter) writeInt64s(xs []int64) error {
	for len(xs) > 0 {
		c := len(xs)
		if c > len(pw.buf)/8 {
			c = len(pw.buf) / 8
		}
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint64(pw.buf[8*i:], uint64(xs[i]))
		}
		if _, err := pw.w.Write(pw.buf[:8*c]); err != nil {
			return err
		}
		pw.off += int64(8 * c)
		xs = xs[c:]
	}
	return nil
}

func (pw *paddedWriter) padTo(target int64) error {
	if pw.off > target {
		return fmt.Errorf("graphio: mmapcsr: write overran section boundary (%d past %d)", pw.off, target)
	}
	for pw.off < target {
		c := target - pw.off
		if c > int64(len(pw.buf)) {
			c = int64(len(pw.buf))
		}
		clear(pw.buf[:c])
		if _, err := pw.w.Write(pw.buf[:c]); err != nil {
			return err
		}
		pw.off += c
	}
	return nil
}

func (pw *paddedWriter) flush() error { return pw.w.Flush() }

// OpenMapped opens path as an mmapcsr graph. On Linux the file is
// memory-mapped and the CSR sections are zero-copy views of the mapping;
// elsewhere (or if the mapping fails) the sections are read onto the heap
// through the bounded pure-Go reader. Either way the header is fully
// validated against the actual file size before any section is touched.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	mp, err := openMappedFile(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return mp, nil
}

// openMappedFile maps f when the platform supports it, falling back to the
// ReaderAt path on mapping failure (e.g. a pipe masquerading as a file).
func openMappedFile(f *os.File, size int64) (*Mapped, error) {
	if mmapSupported && size >= mappedPage {
		if data, err := mmapFile(f, size); err == nil {
			mp, err := newMappedFromData(data, size)
			if err != nil {
				munmapFile(data)
				return nil, err
			}
			mp.f = f
			return mp, nil
		}
	}
	mp, err := OpenMappedReaderAt(f, size)
	if err != nil {
		return nil, err
	}
	mp.f = f
	return mp, nil
}

// newMappedFromData wraps an mmap region as a Mapped after header
// validation; the CSR sections alias the region.
func newMappedFromData(data []byte, size int64) (*Mapped, error) {
	hdr := make([]int64, mappedHeaderFields)
	for i := range hdr {
		hdr[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	l, err := decodeMappedHeader(hdr, size)
	if err != nil {
		return nil, err
	}
	c, err := graph.NewCSRView(
		sectionInt64s(data, l.offOffsets, l.n+1),
		sectionInt64s(data, l.offAdj, 2*l.m),
		sectionInt64s(data, l.offWgt, 2*l.m),
		sectionInt64s(data, l.offSelf, l.n),
	)
	if err != nil {
		return nil, err
	}
	return &Mapped{data: data, csr: c, lay: l}, nil
}

// OpenMappedReaderAt is the pure-Go open path: it validates the header
// against size, then reads each section onto the heap through the bounded
// chunked reader (sharing the maxSpeculativeBytes defense with ReadBinary).
// Tests use it directly to exercise the fallback regardless of platform;
// OpenMapped uses it when mapping is unavailable.
func OpenMappedReaderAt(r io.ReaderAt, size int64) (*Mapped, error) {
	if size < mappedPage {
		return nil, fmt.Errorf("graphio: mmapcsr: file too small (%d bytes) for a header page", size)
	}
	rawHdr, err := readInt64s(io.NewSectionReader(r, 0, 8*mappedHeaderFields), mappedHeaderFields, "header")
	if err != nil {
		return nil, err
	}
	l, err := decodeMappedHeader(rawHdr, size)
	if err != nil {
		return nil, err
	}
	offsets, err := readInt64s(io.NewSectionReader(r, l.offOffsets, 8*(l.n+1)), l.n+1, "offsets")
	if err != nil {
		return nil, err
	}
	self, err := readInt64s(io.NewSectionReader(r, l.offSelf, 8*l.n), l.n, "self-loops")
	if err != nil {
		return nil, err
	}
	adj, err := readInt64s(io.NewSectionReader(r, l.offAdj, 8*2*l.m), 2*l.m, "adjacency")
	if err != nil {
		return nil, err
	}
	wgt, err := readInt64s(io.NewSectionReader(r, l.offWgt, 8*2*l.m), 2*l.m, "weights")
	if err != nil {
		return nil, err
	}
	c, err := graph.NewCSRView(offsets, adj, wgt, self)
	if err != nil {
		return nil, err
	}
	return &Mapped{csr: c, lay: l}, nil
}

// SniffMapped reports whether r starts with the mmapcsr magic (format
// auto-detection for cmd/convert and cmd/communities).
func SniffMapped(r io.ReaderAt) bool {
	var b [8]byte
	if _, err := r.ReadAt(b[:], 0); err != nil {
		return false
	}
	return binary.LittleEndian.Uint64(b[:]) == mappedMagic
}

// CSR returns the adjacency view. Valid until Close.
func (mp *Mapped) CSR() *graph.CSR { return mp.csr }

// NumVertices reports |V|.
func (mp *Mapped) NumVertices() int64 { return mp.lay.n }

// NumEdges reports |E| (undirected edges, each stored twice in adj).
func (mp *Mapped) NumEdges() int64 { return mp.lay.m }

// TotalWeight reports the header's total weight (edge weights plus
// self-loops), available without any edge sweep.
func (mp *Mapped) TotalWeight() int64 { return mp.lay.totW }

// MmapBacked reports whether the sections alias a memory mapping (false on
// the pure-Go fallback path, where they are heap copies).
func (mp *Mapped) MmapBacked() bool { return mp.data != nil }

// Advice is an access-pattern hint for the mapping, forwarded to madvise
// where supported.
type Advice int

const (
	// AdviseNormal restores the kernel's default readahead.
	AdviseNormal Advice = iota
	// AdviseSequential hints a front-to-back sweep (streaming conversion,
	// whole-graph materialization): aggressive readahead, early reclaim.
	AdviseSequential
	// AdviseRandom hints scattered row reads (sharded extraction, point
	// queries): disables readahead so untouched pages stay on disk.
	AdviseRandom
)

// Advise applies the access-pattern hint to the whole mapping. A no-op (and
// nil error) on the fallback path or where madvise is unavailable.
func (mp *Mapped) Advise(a Advice) error {
	if mp.data == nil {
		return nil
	}
	return adviseBytes(mp.data, a)
}

// Close unmaps the region (when mapped) and closes the file. The CSR view
// and all slices derived from it are invalid afterwards.
func (mp *Mapped) Close() error {
	var err error
	if mp.data != nil {
		err = munmapFile(mp.data)
		mp.data = nil
	}
	if mp.f != nil {
		if cerr := mp.f.Close(); err == nil {
			err = cerr
		}
		mp.f = nil
	}
	mp.csr = nil
	return err
}

package graphio

// The versioned edge-update stream format backing reproducible incremental
// benchmarks: a text file of delta batches replayed against a graph's
// overlay. Line oriented, '#' comments allowed anywhere:
//
//	cdgu 1                 header: format name + version
//	n <vertices>           the vertex universe every update must stay in
//	batch <version>        opens one batch; versions strictly increase
//	+ <u> <v> <w>          insert edge {u, v} with weight w
//	- <u> <v>              delete edge {u, v}
//	end                    closes the batch
//
// Self-loops use u == v, matching graph.Delta semantics.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// deltaHeader identifies the update-stream format, version 1.
const deltaHeader = "cdgu 1"

// WriteDeltas writes n and the batches in the cdgu update-stream format.
// The output round-trips through ReadDeltas.
func WriteDeltas(w io.Writer, n int64, batches []*graph.Delta) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\nn %d\n", deltaHeader, n); err != nil {
		return err
	}
	for _, d := range batches {
		if _, err := fmt.Fprintf(bw, "batch %d\n", d.Version); err != nil {
			return err
		}
		for _, up := range d.Updates {
			var err error
			switch up.Op {
			case graph.OpInsert:
				_, err = fmt.Fprintf(bw, "+ %d %d %d\n", up.U, up.V, up.W)
			case graph.OpDelete:
				_, err = fmt.Fprintf(bw, "- %d %d\n", up.U, up.V)
			default:
				err = fmt.Errorf("graphio: unknown delta op %d", up.Op)
			}
			if err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "end"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DeltaScanner streams batches out of a cdgu update file one at a time, so
// a serving loop can interleave reading, applying, and re-detecting without
// holding the whole stream.
type DeltaScanner struct {
	sc          *bufio.Scanner
	n           int64
	lineNo      int
	lastVersion uint64
}

// NewDeltaScanner reads the stream header and positions the scanner before
// the first batch.
func NewDeltaScanner(r io.Reader) (*DeltaScanner, error) {
	s := &DeltaScanner{sc: bufio.NewScanner(r)}
	s.sc.Buffer(make([]byte, 1<<20), 1<<20)
	line, err := s.contentLine()
	if err != nil {
		return nil, fmt.Errorf("graphio: delta stream missing header: %w", err)
	}
	if line != deltaHeader {
		return nil, fmt.Errorf("graphio: line %d: bad delta header %q (want %q)", s.lineNo, line, deltaHeader)
	}
	line, err = s.contentLine()
	if err != nil {
		return nil, fmt.Errorf("graphio: delta stream missing vertex count: %w", err)
	}
	fields := splitFields([]byte(line))
	if len(fields) != 2 || fields[0] != "n" {
		return nil, fmt.Errorf("graphio: line %d: want \"n <vertices>\", got %q", s.lineNo, line)
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || n < 0 || n > MaxVertices {
		return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", s.lineNo, fields[1])
	}
	s.n = n
	return s, nil
}

// NumVertices returns the stream's declared vertex universe.
func (s *DeltaScanner) NumVertices() int64 { return s.n }

// Next returns the next batch, or io.EOF after the last one. Batches are
// validated on the way in: endpoints inside [0, n), positive insert
// weights, strictly increasing versions, and a closing "end" line.
func (s *DeltaScanner) Next() (*graph.Delta, error) {
	line, err := s.contentLine()
	if err != nil {
		return nil, err // io.EOF: clean end of stream
	}
	fields := splitFields([]byte(line))
	if len(fields) != 2 || fields[0] != "batch" {
		return nil, fmt.Errorf("graphio: line %d: want \"batch <version>\", got %q", s.lineNo, line)
	}
	version, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("graphio: line %d: bad batch version %q: %v", s.lineNo, fields[1], err)
	}
	if version <= s.lastVersion {
		return nil, fmt.Errorf("graphio: line %d: batch version %d not above previous %d",
			s.lineNo, version, s.lastVersion)
	}
	s.lastVersion = version
	d := &graph.Delta{Version: version}
	for {
		line, err := s.contentLine()
		if err != nil {
			return nil, fmt.Errorf("graphio: batch %d not closed by \"end\": %w", version, err)
		}
		if line == "end" {
			return d, nil
		}
		fields := splitFields([]byte(line))
		switch {
		case len(fields) == 4 && fields[0] == "+":
			u, v, w, err := s.parseUpdate(fields[1], fields[2], fields[3])
			if err != nil {
				return nil, err
			}
			if w <= 0 {
				return nil, fmt.Errorf("graphio: line %d: non-positive insert weight %d", s.lineNo, w)
			}
			d.Insert(u, v, w)
		case len(fields) == 3 && fields[0] == "-":
			u, v, _, err := s.parseUpdate(fields[1], fields[2], "1")
			if err != nil {
				return nil, err
			}
			d.Delete(u, v)
		default:
			return nil, fmt.Errorf("graphio: line %d: bad update line %q", s.lineNo, line)
		}
	}
}

func (s *DeltaScanner) parseUpdate(us, vs, ws string) (u, v, w int64, err error) {
	if u, err = strconv.ParseInt(us, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("graphio: line %d: bad source %q: %v", s.lineNo, us, err)
	}
	if v, err = strconv.ParseInt(vs, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("graphio: line %d: bad target %q: %v", s.lineNo, vs, err)
	}
	if w, err = strconv.ParseInt(ws, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("graphio: line %d: bad weight %q: %v", s.lineNo, ws, err)
	}
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		return 0, 0, 0, fmt.Errorf("graphio: line %d: endpoint (%d,%d) outside [0,%d)", s.lineNo, u, v, s.n)
	}
	return u, v, w, nil
}

// contentLine returns the next non-blank non-comment line, trimmed, or an
// error (io.EOF at end of stream).
func (s *DeltaScanner) contentLine() (string, error) {
	for s.sc.Scan() {
		s.lineNo++
		line := s.sc.Bytes()
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		j := len(line)
		for j > i && (line[j-1] == ' ' || line[j-1] == '\t' || line[j-1] == '\r') {
			j--
		}
		if i == j || line[i] == '#' {
			continue
		}
		return string(line[i:j]), nil
	}
	if err := s.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// ReadDeltas reads a whole cdgu update stream: the vertex universe and
// every batch, in order.
func ReadDeltas(r io.Reader) (n int64, batches []*graph.Delta, err error) {
	s, err := NewDeltaScanner(r)
	if err != nil {
		return 0, nil, err
	}
	for {
		d, err := s.Next()
		if err == io.EOF {
			return s.n, batches, nil
		}
		if err != nil {
			return 0, nil, err
		}
		batches = append(batches, d)
	}
}

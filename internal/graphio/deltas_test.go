package graphio

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDeltasRoundTrip(t *testing.T) {
	g := gen.CliqueChain(6, 5)
	batches, err := gen.Deltas(g, gen.DeltaConfig{
		Batches: 4, BatchSize: 9, DeleteFrac: 0.4, MaxWeight: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, g.NumVertices(), batches); err != nil {
		t.Fatal(err)
	}
	n, got, err := ReadDeltas(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading written stream: %v", err)
	}
	if n != g.NumVertices() {
		t.Fatalf("round-trip n = %d, want %d", n, g.NumVertices())
	}
	if len(got) != len(batches) {
		t.Fatalf("round-trip batches = %d, want %d", len(got), len(batches))
	}
	for i, d := range got {
		want := batches[i]
		if d.Version != want.Version {
			t.Fatalf("batch %d version %d, want %d", i, d.Version, want.Version)
		}
		if len(d.Updates) != len(want.Updates) {
			t.Fatalf("batch %d has %d updates, want %d", i, len(d.Updates), len(want.Updates))
		}
		for j, up := range d.Updates {
			if up != want.Updates[j] {
				t.Fatalf("batch %d update %d = %+v, want %+v", i, j, up, want.Updates[j])
			}
		}
	}
}

func TestDeltaScannerStreams(t *testing.T) {
	in := `cdgu 1
# vertex universe
n 5
batch 2
+ 0 1 3
- 3 4
end

batch 7
+ 2 2 1
end
`
	s, err := NewDeltaScanner(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 5 {
		t.Fatalf("n = %d, want 5", s.NumVertices())
	}
	d1, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Version != 2 || d1.Len() != 2 {
		t.Fatalf("first batch version %d len %d, want 2/2", d1.Version, d1.Len())
	}
	if d1.Updates[0] != (graph.Update{Op: graph.OpInsert, U: 0, V: 1, W: 3}) {
		t.Fatalf("first update %+v", d1.Updates[0])
	}
	if d1.Updates[1] != (graph.Update{Op: graph.OpDelete, U: 3, V: 4, W: 0}) {
		t.Fatalf("second update %+v", d1.Updates[1])
	}
	d2, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Version != 7 || d2.Len() != 1 {
		t.Fatalf("second batch version %d len %d, want 7/1", d2.Version, d2.Len())
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("after last batch: %v, want io.EOF", err)
	}
}

func TestDeltaScannerRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":      "cdgu 9\nn 4\n",
		"missing n":       "cdgu 1\nbatch 1\nend\n",
		"negative n":      "cdgu 1\nn -3\n",
		"bad version":     "cdgu 1\nn 4\nbatch x\nend\n",
		"repeat version":  "cdgu 1\nn 4\nbatch 1\nend\nbatch 1\nend\n",
		"out of range":    "cdgu 1\nn 4\nbatch 1\n+ 0 4 1\nend\n",
		"zero weight":     "cdgu 1\nn 4\nbatch 1\n+ 0 1 0\nend\n",
		"unclosed batch":  "cdgu 1\nn 4\nbatch 1\n+ 0 1 2\n",
		"stray field":     "cdgu 1\nn 4\nbatch 1\n- 0 1 2\nend\n",
		"unknown op line": "cdgu 1\nn 4\nbatch 1\n* 0 1\nend\n",
	}
	for name, in := range cases {
		if _, _, err := ReadDeltas(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// Package graphio reads and writes graphs in the formats the paper's
// datasets ship in: whitespace-separated edge lists (SNAP's soc-LiveJournal1
// format, '#' and '%' comment lines), the DIMACS Implementation Challenge
// variant of the same, METIS .graph files (written for interoperability with
// partitioning tools), and a compact binary format for fast reloads of
// generated workloads.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// MaxVertices bounds the vertex ids every reader accepts. The bucketed
// representation is dense in the vertex id, so a single absurd id in a
// malformed file would otherwise force an allocation of 3·maxID words;
// readers reject such inputs with an error instead. The default admits 2³¹
// vertices (20× the paper's largest graph); raise it for bigger machines or
// lower it (e.g. in fuzz harnesses or memory-constrained services) to
// tighten the guard.
var MaxVertices int64 = 1 << 31

// maxSpeculativeBytes bounds how much any reader in this package allocates
// on the strength of an unverified header alone. Both binary readers share
// it: ReadBinary's chunked payload reader (readInt64s) caps its upfront
// capacity hint at this many bytes, so a corrupt or hostile header claiming
// huge counts must deliver actual stream bytes before the slice grows past
// the cap; and OpenMapped's pure-Go fallback routes every section read
// through the same chunked reader after validating the declared section
// extents against the real file size. 64 MiB holds 8 Mi int64s — large
// enough that honestly-sized graphs never pay an append-doubling copy,
// small enough that a forged header cannot force a giant allocation.
const maxSpeculativeBytes = 64 << 20

// maxSpeculativeInt64s is maxSpeculativeBytes in int64 units, the form the
// chunked reader works in.
const maxSpeculativeInt64s = maxSpeculativeBytes / 8

// ReadEdgeList parses a whitespace-separated edge list: one "u v [w]" triple
// per line, '#' or '%' starting a comment line, blank lines ignored. Vertex
// ids are non-negative integers below MaxVertices; the graph size is one
// past the largest id seen unless minVertices demands more. A missing
// weight means 1. Duplicate edges accumulate and self-loops fold into Self,
// matching the paper's accumulation rule.
func ReadEdgeList(r io.Reader, p int, minVertices int64) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		// Trim leading spaces and skip comments/blanks.
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i == len(line) || line[i] == '#' || line[i] == '%' {
			continue
		}
		fields := splitFields(line[i:])
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graphio: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		w := int64(1)
		if len(fields) == 3 {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative vertex id", lineNo)
		}
		if u >= MaxVertices || v >= MaxVertices {
			return nil, fmt.Errorf("graphio: line %d: vertex id beyond MaxVertices=%d", lineNo, MaxVertices)
		}
		if w <= 0 {
			return nil, fmt.Errorf("graphio: line %d: non-positive weight %d", lineNo, w)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	n := maxID + 1
	if n < minVertices {
		n = minVertices
	}
	return graph.Build(p, n, edges)
}

// splitFields splits on runs of spaces/tabs without allocating a string per
// byte; the scanner line buffer is reused so fields are copied out.
func splitFields(b []byte) []string {
	var out []string
	i := 0
	for i < len(b) {
		for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
			i++
		}
		j := i
		for j < len(b) && b[j] != ' ' && b[j] != '\t' && b[j] != '\r' {
			j++
		}
		if j > i {
			out = append(out, string(b[i:j]))
		}
		i = j
	}
	return out
}

// WriteEdgeList writes g as "u v w" lines, one stored edge per line, plus
// "v v w" lines for non-zero self-loop weights. The output round-trips
// through ReadEdgeList (up to vertex-count padding for trailing isolated
// vertices).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(_ int64, u, v, wt int64) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d %d\n", u, v, wt)
	})
	if werr != nil {
		return werr
	}
	for x := int64(0); x < g.NumVertices(); x++ {
		if g.Self[x] != 0 {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", x, x, g.Self[x]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the compact binary graph format, version 1.
const binaryMagic = uint64(0x43444742_01) // "CDGB" + version

// WriteBinary serializes g in the compact little-endian binary format:
// magic, |V|, |E|, then Self[|V|], then |E| (u, v, w) triples in bucket
// order.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Self); err != nil {
		return err
	}
	buf := make([]int64, 0, 3*1024)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := binary.Write(bw, binary.LittleEndian, buf)
		buf = buf[:0]
		return err
	}
	var werr error
	g.ForEachEdge(func(_ int64, u, v, wt int64) {
		if werr != nil {
			return
		}
		buf = append(buf, u, v, wt)
		if len(buf) == cap(buf) {
			werr = flush()
		}
	})
	if werr != nil {
		return werr
	}
	if err := flush(); err != nil {
		return err
	}
	return bw.Flush()
}

// SniffBinaryMagic reports whether head begins with the compact binary
// format's magic (format auto-detection for cmd/convert; the mapped format
// has its own SniffMapped).
func SniffBinaryMagic(head []byte) bool {
	return len(head) >= 8 && binary.LittleEndian.Uint64(head) == binaryMagic
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader, p int) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graphio: binary header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic %#x", hdr[0])
	}
	n, m := int64(hdr[1]), int64(hdr[2])
	if n < 0 || m < 0 || n >= MaxVertices || m > (1<<44) {
		return nil, fmt.Errorf("graphio: implausible sizes |V|=%d |E|=%d", n, m)
	}
	// n and m are untrusted until the body is actually read, so pull the
	// payload in bounded chunks: a hostile header with huge counts then
	// fails on the short stream before any giant allocation happens.
	self, err := readInt64s(br, n, "self-loops")
	if err != nil {
		return nil, err
	}
	triples, err := readInt64s(br, 3*m, "edges")
	if err != nil {
		return nil, err
	}
	edges := make([]graph.Edge, m)
	for i := int64(0); i < m; i++ {
		edges[i] = graph.Edge{U: triples[3*i], V: triples[3*i+1], W: triples[3*i+2]}
	}
	g, err := graph.Build(p, n, edges)
	if err != nil {
		return nil, err
	}
	for x := int64(0); x < n; x++ {
		if self[x] < 0 {
			return nil, fmt.Errorf("graphio: negative self-loop weight at vertex %d", x)
		}
		g.Self[x] += self[x]
	}
	return g, nil
}

// readInt64s reads exactly count little-endian int64s in bounded chunks.
// The destination is allocated for count up front — clamping the hint to one
// read chunk made every large graph pay log₂(count/chunk) append-doubling
// copies of data already in memory — but only up to maxSpeculativeInt64s: a
// corrupt or hostile header claiming more must deliver actual stream bytes
// before the slice grows past that, so the giant-allocation defense is
// preserved (see the maxSpeculativeBytes doc).
func readInt64s(r io.Reader, count int64, what string) ([]int64, error) {
	const chunk = 1 << 16
	capHint := count
	if capHint > maxSpeculativeInt64s {
		capHint = maxSpeculativeInt64s
	}
	out := make([]int64, 0, capHint)
	buf := make([]int64, chunk)
	for remaining := count; remaining > 0; {
		c := remaining
		if c > chunk {
			c = chunk
		}
		if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
			return nil, fmt.Errorf("graphio: binary %s: %w", what, err)
		}
		out = append(out, buf[:c]...)
		remaining -= c
	}
	return out, nil
}

// WriteMETIS writes g in METIS .graph format (1-based vertex ids, header
// "n m fmt" with fmt=001 for edge weights, one adjacency line per vertex).
// Self-loop weights are not representable in METIS and are dropped with no
// error; callers that care should check beforehand.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	c := graph.ToCSR(0, g)
	bw := bufio.NewWriter(w)
	n := c.NumVertices()
	if _, err := fmt.Fprintf(bw, "%d %d 001\n", n, g.NumEdges()); err != nil {
		return err
	}
	for x := int64(0); x < n; x++ {
		adj, wgt := c.Neighbors(x)
		for i, v := range adj {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %d", v+1, wgt[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCommunities writes a vertex→community assignment, one "vertex
// community" pair per line.
func WriteCommunities(w io.Writer, comm []int64) error {
	bw := bufio.NewWriter(w)
	for v, c := range comm {
		if _, err := fmt.Fprintf(bw, "%d %d\n", v, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// ReadMETIS parses a METIS .graph file — the format of the 10th DIMACS
// Implementation Challenge whose rules the paper's termination criterion
// follows (§III). Header: "n m [fmt [ncon]]" where fmt's last digit set
// means edge weights, second digit vertex weights (with ncon weights per
// vertex, skipped on read), third digit vertex sizes (skipped). Vertex ids
// are 1-based; '%' starts a comment line; each edge appears in both
// endpoints' adjacency lines.
func ReadMETIS(r io.Reader, p int) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	nextLine := func() ([]string, error) {
		for sc.Scan() {
			line := sc.Bytes()
			i := 0
			for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
				i++
			}
			if i == len(line) || line[i] == '%' {
				continue
			}
			return splitFields(line[i:]), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	header, err := nextLine()
	if err != nil {
		return nil, fmt.Errorf("graphio: METIS header: %w", err)
	}
	if len(header) < 2 || len(header) > 4 {
		return nil, fmt.Errorf("graphio: METIS header has %d fields", len(header))
	}
	n, err := strconv.ParseInt(header[0], 10, 64)
	if err != nil || n < 0 || n >= MaxVertices {
		return nil, fmt.Errorf("graphio: bad METIS vertex count %q", header[0])
	}
	m, err := strconv.ParseInt(header[1], 10, 64)
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graphio: bad METIS edge count %q", header[1])
	}
	format := int64(0)
	if len(header) >= 3 {
		format, err = strconv.ParseInt(header[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: bad METIS format %q", header[2])
		}
	}
	hasEdgeWeights := format%10 == 1
	hasVertexWeights := (format/10)%10 == 1
	hasVertexSizes := (format/100)%10 == 1
	ncon := int64(0)
	if hasVertexWeights {
		ncon = 1
		if len(header) == 4 {
			ncon, err = strconv.ParseInt(header[3], 10, 64)
			if err != nil || ncon < 1 {
				return nil, fmt.Errorf("graphio: bad METIS ncon %q", header[3])
			}
		}
	}

	// The header's m is untrusted; cap the preallocation so a hostile
	// header cannot force a huge up-front allocation.
	capHint := m
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([]graph.Edge, 0, capHint)
	for u := int64(0); u < n; u++ {
		fields, err := nextLine()
		if err == io.EOF {
			return nil, fmt.Errorf("graphio: METIS file ends at vertex %d of %d", u+1, n)
		}
		if err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		i := 0
		if hasVertexSizes {
			i++ // vertex size, unused
		}
		i += int(ncon) // vertex weights, unused
		if i > len(fields) {
			return nil, fmt.Errorf("graphio: vertex %d line too short for format %d", u+1, format)
		}
		for i < len(fields) {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil || v < 1 || v > n {
				return nil, fmt.Errorf("graphio: vertex %d: bad neighbor %q", u+1, fields[i])
			}
			i++
			w := int64(1)
			if hasEdgeWeights {
				if i >= len(fields) {
					return nil, fmt.Errorf("graphio: vertex %d: missing weight", u+1)
				}
				w, err = strconv.ParseInt(fields[i], 10, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("graphio: vertex %d: bad weight %q", u+1, fields[i])
				}
				i++
			}
			// Each undirected edge is listed from both sides; keep the
			// occurrence from the smaller endpoint.
			if v-1 > u {
				edges = append(edges, graph.Edge{U: u, V: v - 1, W: w})
			}
		}
	}
	if int64(len(edges)) != m {
		return nil, fmt.Errorf("graphio: METIS header promises %d edges, adjacency lists carry %d", m, len(edges))
	}
	return graph.Build(p, n, edges)
}

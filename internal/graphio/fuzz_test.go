package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets assert that arbitrary inputs never panic the parsers and
// that anything accepted parses into a structurally valid graph. Run with
// `go test -fuzz=FuzzReadEdgeList ./internal/graphio` to explore beyond the
// seed corpus; under plain `go test` the seeds act as hardening tests.

// limitVertices shrinks the reader guard for the duration of a fuzz run so
// hostile ids are rejected instead of exercising gigantic allocations.
func limitVertices(f *testing.F) {
	old := MaxVertices
	MaxVertices = 1 << 20
	f.Cleanup(func() { MaxVertices = old })
}

func FuzzReadEdgeList(f *testing.F) {
	limitVertices(f)
	f.Add("0 1\n1 2 5\n")
	f.Add("# comment\n% other\n\n 3\t4 2\n")
	f.Add("0 0 7\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("a b c\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), 1, 0)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	limitVertices(f)
	f.Add("3 3\n2 3\n1 3\n1 2\n")
	f.Add("2 1 001\n2 7\n1 7\n")
	f.Add("% c\n2 1 011 2\n5 5 2 9\n1 1 1 9\n")
	f.Add("2 99\n2\n1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in), 1)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadDeltas(f *testing.F) {
	limitVertices(f)
	f.Add("cdgu 1\nn 4\nbatch 1\n+ 0 1 2\n- 2 3\nend\n")
	f.Add("cdgu 1\nn 2\n# comment\nbatch 3\n+ 1 1 5\nend\nbatch 4\nend\n")
	f.Add("cdgu 1\nn 4\nbatch 1\n+ 0 9 1\nend\n")
	f.Add("cdgu 2\nn 4\n")
	f.Add("cdgu 1\nn 4\nbatch 2\nend\nbatch 1\nend\n")
	f.Add("cdgu 1\nn 4\nbatch 1\n+ 0 1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		n, batches, err := ReadDeltas(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted streams must contain only in-universe, well-formed
		// updates with strictly increasing versions.
		var last uint64
		for _, d := range batches {
			if d.Version <= last && last != 0 {
				t.Fatalf("accepted stream has non-increasing versions\ninput: %q", in)
			}
			last = d.Version
			if err := d.Validate(n); err != nil {
				t.Fatalf("accepted stream produced invalid batch: %v\ninput: %q", err, in)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	limitVertices(f)
	var buf bytes.Buffer
	g, _ := ReadEdgeList(strings.NewReader("0 1\n1 2\n2 2 4\n"), 1, 0)
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("garbage"))
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in), 1)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v", err)
		}
	})
}

package graphio

// StreamMapped writes an mmapcsr file from an edge stream in bounded
// memory: O(|V|) heap for the degree/offset/self arrays plus a
// caller-tunable edge-batch budget, never O(|E|). That is what lets
// `genrmat -stream` create inputs bigger than RAM (DESIGN.md §15).
//
// The writer makes two passes over the source. Pass A counts each vertex's
// raw directed degree (duplicates included — deduplication needs the sorted
// batch) and folds self-loop weights. The degree prefix then cuts the
// vertex space into contiguous buckets of at most MaxBufferedEdges raw
// entries each; because the counts are exact, every bucket's region in the
// spill file is known up front and pass B scatters each directed entry
// (u→v and v→u) to its bucket's cursor with small per-bucket write buffers
// — an out-of-core counting sort. Each bucket is then loaded alone, sorted
// by (row, neighbor), duplicate edges accumulated into one weighted entry,
// and its rows appended to the adjacency section; weights stage in a second
// temporary file because the wgt section's offset depends on the deduped
// adjacency length, known only at the end.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// EdgeSource yields one edge stream. StreamMapped invokes it twice (count
// pass, scatter pass), so it must be deterministic: both invocations must
// yield the identical sequence. Yielding u == v records a self-loop;
// duplicate (u,v) pairs accumulate their weights, matching the builder's
// accumulation rule. The source must return the yield callback's error
// unchanged (generators built on simple loops get this for free).
type EdgeSource func(yield func(u, v, w int64) error) error

// DefaultMaxBufferedEdges is the per-bucket raw-entry budget when
// StreamOptions.MaxBufferedEdges is 0: 2 Mi directed entries ≈ 48 MiB for
// the flat sort buffer.
const DefaultMaxBufferedEdges = 1 << 21

// StreamOptions tunes StreamMapped.
type StreamOptions struct {
	// MaxBufferedEdges bounds how many raw directed entries one bucket may
	// hold — the unit of in-memory sorting, 24 bytes each. 0 selects
	// DefaultMaxBufferedEdges. A single vertex whose raw degree exceeds the
	// budget still forms its own (oversized) bucket.
	MaxBufferedEdges int64
	// TmpDir holds the two spill files; "" uses the output file's directory
	// (same filesystem, so the final concatenation is sequential disk I/O).
	TmpDir string
}

// StreamStats reports what a streaming write produced.
type StreamStats struct {
	Vertices    int64 // |V|
	Edges       int64 // |E| after duplicate accumulation
	TotalWeight int64 // Σ edge weights + Σ self-loops (the header field)
	RawEntries  int64 // directed entries spilled (2 per non-self input edge)
	Buckets     int   // vertex-range batches processed
}

// StreamMapped streams src into an mmapcsr file at path for a graph with n
// vertices. See the file comment for the algorithm and memory bounds.
func StreamMapped(path string, n int64, src EdgeSource, opt StreamOptions) (StreamStats, error) {
	var stats StreamStats
	if n < 0 || n >= MaxVertices {
		return stats, fmt.Errorf("graphio: stream: vertex count %d outside [0,%d)", n, MaxVertices)
	}
	budget := opt.MaxBufferedEdges
	if budget <= 0 {
		budget = DefaultMaxBufferedEdges
	}
	tmpDir := opt.TmpDir
	if tmpDir == "" {
		tmpDir = filepath.Dir(path)
	}

	// Pass A: raw directed degrees and self-loop weights.
	rawDeg := make([]int64, n)
	self := make([]int64, n)
	var raw int64
	err := src(func(u, v, w int64) error {
		if u < 0 || u >= n || v < 0 || v >= n {
			return fmt.Errorf("graphio: stream: edge (%d,%d) outside [0,%d)", u, v, n)
		}
		if w <= 0 {
			return fmt.Errorf("graphio: stream: non-positive weight %d on edge (%d,%d)", w, u, v)
		}
		if u == v {
			self[u] += w
			return nil
		}
		rawDeg[u]++
		rawDeg[v]++
		raw += 2
		return nil
	})
	if err != nil {
		return stats, err
	}
	stats.RawEntries = raw

	// Cut [0,n) into contiguous buckets of at most budget raw entries.
	// bucketLo[b] is bucket b's first vertex; bucketBase[b] its first entry
	// slot in the spill file (the exclusive prefix of bucket sizes).
	var bucketLo []int64
	var bucketBase []int64
	{
		var acc, base int64
		for x := int64(0); x < n; x++ {
			if len(bucketLo) == 0 || (acc > 0 && acc+rawDeg[x] > budget) {
				bucketLo = append(bucketLo, x)
				bucketBase = append(bucketBase, base)
				acc = 0
			}
			acc += rawDeg[x]
			base += rawDeg[x]
		}
		if n == 0 {
			bucketLo, bucketBase = []int64{0}, []int64{0}
		}
	}
	nb := len(bucketLo)
	stats.Buckets = nb
	bucketEnd := func(b int) int64 {
		if b+1 < nb {
			return bucketLo[b+1]
		}
		return n
	}
	bucketRaw := func(b int) int64 {
		if b+1 < nb {
			return bucketBase[b+1] - bucketBase[b]
		}
		return raw - bucketBase[b]
	}

	// Pass B: scatter directed entries into the spill file at their
	// bucket's cursor.
	spillF, err := os.CreateTemp(tmpDir, "mmapcsr-spill-*")
	if err != nil {
		return stats, err
	}
	defer func() {
		spillF.Close()
		os.Remove(spillF.Name())
	}()
	sp := newSpiller(spillF, bucketBase)
	bucketOf := func(x int64) int {
		// Last bucket with bucketLo <= x.
		return sort.Search(nb, func(b int) bool { return bucketLo[b] > x }) - 1
	}
	err = src(func(u, v, w int64) error {
		if u < 0 || u >= n || v < 0 || v >= n || w <= 0 {
			return fmt.Errorf("graphio: stream: source not deterministic: edge (%d,%d,%d) invalid on second pass", u, v, w)
		}
		if u == v {
			return nil
		}
		if err := sp.add(bucketOf(u), u, v, w); err != nil {
			return err
		}
		return sp.add(bucketOf(v), v, u, w)
	})
	if err != nil {
		return stats, err
	}
	if err := sp.flushAll(); err != nil {
		return stats, err
	}
	if sp.written != raw {
		return stats, fmt.Errorf("graphio: stream: source not deterministic: %d entries on second pass, %d on first", sp.written, raw)
	}

	// Per-bucket: load, sort, dedup, emit. Adjacency streams straight into
	// the output file at its known section offset; weights stage in a
	// second spill file.
	out, err := os.Create(path)
	if err != nil {
		return stats, err
	}
	defer out.Close()
	wgtF, err := os.CreateTemp(tmpDir, "mmapcsr-wgt-*")
	if err != nil {
		return stats, err
	}
	defer func() {
		wgtF.Close()
		os.Remove(wgtF.Name())
	}()

	// The section offsets up to adj depend only on n.
	partial := layoutFor(n, 0, 0)
	if _, err := out.Seek(partial.offAdj, io.SeekStart); err != nil {
		return stats, err
	}
	adjW := newPaddedWriter(out)
	adjW.off = partial.offAdj
	wgtW := newPaddedWriter(wgtF)

	offsets := rawDeg // reuse: rawDeg is consumed bucket by bucket before offsets[x] is written
	var adjLen, wgtSum int64
	triples := make([]int64, 0, 3*budget)
	var adjOut, wgtOut []int64 // per-bucket staged output, written in one call each
	readBuf := make([]byte, 1<<16)
	for b := 0; b < nb; b++ {
		cnt := bucketRaw(b)
		triples = triples[:0]
		if cap(triples) < int(3*cnt) {
			triples = make([]int64, 0, 3*cnt)
		}
		// Load the bucket's region.
		at := 24 * bucketBase[b]
		for got := int64(0); got < 3*cnt; {
			c := int64(len(readBuf))
			if rem := (3*cnt - got) * 8; rem < c {
				c = rem
			}
			if _, err := io.ReadFull(io.NewSectionReader(spillF, at, c), readBuf[:c]); err != nil {
				return stats, fmt.Errorf("graphio: stream: spill read: %w", err)
			}
			for i := int64(0); i < c; i += 8 {
				triples = append(triples, int64(binary.LittleEndian.Uint64(readBuf[i:])))
			}
			at += c
			got += c / 8
		}
		sort.Sort(tripleSort(triples))
		// Dedup-accumulate and emit rows for vertices [bucketLo[b], end).
		lo, hi := bucketLo[b], bucketEnd(b)
		adjOut, wgtOut = adjOut[:0], wgtOut[:0]
		i := 0
		for x := lo; x < hi; x++ {
			offsets[x] = adjLen
			for i < len(triples)/3 && triples[3*i] == x {
				v, w := triples[3*i+1], triples[3*i+2]
				for i++; i < len(triples)/3 && triples[3*i] == x && triples[3*i+1] == v; i++ {
					w += triples[3*i+2]
				}
				adjOut = append(adjOut, v)
				wgtOut = append(wgtOut, w)
				wgtSum += w
				adjLen++
			}
		}
		if i != len(triples)/3 {
			return stats, fmt.Errorf("graphio: stream: bucket %d has entries outside its vertex range", b)
		}
		if err := adjW.writeInt64s(adjOut); err != nil {
			return stats, err
		}
		if err := wgtW.writeInt64s(wgtOut); err != nil {
			return stats, err
		}
	}
	if adjLen%2 != 0 {
		return stats, fmt.Errorf("graphio: stream: odd adjacency length %d", adjLen)
	}
	var selfSum int64
	for _, s := range self {
		selfSum += s
	}
	m := adjLen / 2
	totW := wgtSum/2 + selfSum
	lay := layoutFor(n, m, totW)

	// Finish the adjacency section's padding, then append the staged
	// weights at their now-known offset.
	if err := adjW.padTo(lay.offWgt); err != nil {
		return stats, err
	}
	if err := adjW.flush(); err != nil {
		return stats, err
	}
	if err := wgtW.flush(); err != nil {
		return stats, err
	}
	if _, err := wgtF.Seek(0, io.SeekStart); err != nil {
		return stats, err
	}
	if _, err := io.Copy(out, io.LimitReader(wgtF, 8*2*m)); err != nil {
		return stats, fmt.Errorf("graphio: stream: weight concat: %w", err)
	}
	tailW := newPaddedWriter(out)
	tailW.off = lay.offWgt + 8*2*m
	if err := tailW.padTo(lay.fileSize); err != nil {
		return stats, err
	}
	if err := tailW.flush(); err != nil {
		return stats, err
	}
	// With no edges nothing is ever physically written past the self
	// section, so the seek alone does not extend the file; Truncate pins
	// the exact layout size either way.
	if err := out.Truncate(lay.fileSize); err != nil {
		return stats, err
	}

	// Header, offsets, and self sections at their fixed offsets.
	if _, err := out.Seek(0, io.SeekStart); err != nil {
		return stats, err
	}
	headW := newPaddedWriter(out)
	hdr := [mappedHeaderFields]int64{
		int64(mappedMagic), n, m, totW,
		lay.offOffsets, lay.offSelf, lay.offAdj, lay.offWgt, lay.fileSize,
	}
	if err := headW.writeInt64s(hdr[:]); err != nil {
		return stats, err
	}
	if err := headW.padTo(lay.offOffsets); err != nil {
		return stats, err
	}
	if err := headW.writeInt64s(offsets); err != nil {
		return stats, err
	}
	if err := headW.writeInt64s([]int64{adjLen}); err != nil {
		return stats, err
	}
	if err := headW.padTo(lay.offSelf); err != nil {
		return stats, err
	}
	if err := headW.writeInt64s(self); err != nil {
		return stats, err
	}
	if err := headW.flush(); err != nil {
		return stats, err
	}
	if err := out.Sync(); err != nil {
		return stats, err
	}
	stats.Vertices, stats.Edges, stats.TotalWeight = n, m, totW
	return stats, nil
}

// tripleSort orders a flat (row, neighbor, weight) triple array by row then
// neighbor, moving all three words per swap.
type tripleSort []int64

func (t tripleSort) Len() int { return len(t) / 3 }
func (t tripleSort) Less(i, j int) bool {
	if t[3*i] != t[3*j] {
		return t[3*i] < t[3*j]
	}
	return t[3*i+1] < t[3*j+1]
}
func (t tripleSort) Swap(i, j int) {
	t[3*i], t[3*j] = t[3*j], t[3*i]
	t[3*i+1], t[3*j+1] = t[3*j+1], t[3*i+1]
	t[3*i+2], t[3*j+2] = t[3*j+2], t[3*i+2]
}

// spiller scatters directed (row, neighbor, weight) entries into
// per-bucket regions of one spill file, each bucket buffering a few hundred
// entries before a WriteAt at its cursor — the disk half of the counting
// sort.
type spiller struct {
	f       *os.File
	cursor  []int64   // next entry slot per bucket (entry units)
	limit   []int64   // one past the bucket's last slot
	bufs    [][]int64 // per-bucket pending triples
	enc     []byte
	written int64
}

// spillBufEntries is the per-bucket buffer: 256 triples = 6 KiB each.
const spillBufEntries = 256

func newSpiller(f *os.File, base []int64) *spiller {
	nb := len(base)
	s := &spiller{
		f:      f,
		cursor: append([]int64(nil), base...),
		limit:  make([]int64, nb),
		bufs:   make([][]int64, nb),
		enc:    make([]byte, 24*spillBufEntries),
	}
	for b := 0; b < nb; b++ {
		if b+1 < nb {
			s.limit[b] = base[b+1]
		} else {
			s.limit[b] = int64(-1) // open-ended; checked by the caller's total
		}
	}
	return s
}

func (s *spiller) add(b int, x, v, w int64) error {
	if s.bufs[b] == nil {
		s.bufs[b] = make([]int64, 0, 3*spillBufEntries)
	}
	s.bufs[b] = append(s.bufs[b], x, v, w)
	if len(s.bufs[b]) == cap(s.bufs[b]) {
		return s.flush(b)
	}
	return nil
}

func (s *spiller) flush(b int) error {
	buf := s.bufs[b]
	if len(buf) == 0 {
		return nil
	}
	entries := int64(len(buf) / 3)
	if s.limit[b] >= 0 && s.cursor[b]+entries > s.limit[b] {
		return fmt.Errorf("graphio: stream: source not deterministic: bucket %d overflows its counted region", b)
	}
	for i, x := range buf {
		binary.LittleEndian.PutUint64(s.enc[8*i:], uint64(x))
	}
	if _, err := s.f.WriteAt(s.enc[:8*len(buf)], 24*s.cursor[b]); err != nil {
		return err
	}
	s.cursor[b] += entries
	s.written += entries
	s.bufs[b] = buf[:0]
	return nil
}

func (s *spiller) flushAll() error {
	for b := range s.bufs {
		if err := s.flush(b); err != nil {
			return err
		}
	}
	return nil
}

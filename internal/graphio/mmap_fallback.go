//go:build !linux

package graphio

// Non-Linux stub: memory mapping is unavailable, so OpenMapped always takes
// the pure-Go ReaderAt path and these functions exist only to satisfy the
// shared call sites (mmapSupported gates every one of them off).

import (
	"fmt"
	"os"
)

// mmapSupported routes openMappedFile to the ReaderAt fallback.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("graphio: mmapcsr: memory mapping unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }

func adviseBytes(data []byte, a Advice) error { return nil }

func sectionInt64s(data []byte, off, count int64) []int64 {
	panic("graphio: sectionInt64s without mmap support")
}

package par

// This file adds the persistent worker team behind exec.Ctx. The free loop
// functions in par.go spawn fresh goroutines on every call, which is fine for
// the first phases of a detection run (millions of iterations amortize the
// spawn) but dominates the late phases, where contraction has shrunk the
// community graph to a few thousand vertices — the "parallelism runs out as
// the graph contracts" regime that Staudt & Meyerhenke engineer around with
// persistent thread teams. A Pool keeps p-1 long-lived goroutines parked on
// per-worker channels (the Go analogue of a futex wait: the parked goroutine
// costs nothing until signalled); submitting a loop stores the job in the
// pool, wakes exactly the workers the loop needs, and runs the caller as
// worker 0. Loop semantics — static chunking, dynamic grain scheduling,
// worker indices, per-worker busy times — match the free functions exactly,
// so a nil *Pool transparently falls back to them: every method is nil-safe,
// which is how spawn-based contexts (exec.Background) and pooled ones share
// one call surface.
//
// A Pool is single-submitter: loops must be issued one at a time, from one
// goroutine at a time (loop bodies themselves run concurrently, of course).
// Nested submissions from inside a loop body would corrupt the in-flight job.

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Pool is a handle to a persistent worker team. The exported wrapper exists
// so an abandoned handle cannot leak its goroutines: workers reference only
// the inner pool, so when the last *Pool reference is dropped the finalizer
// closes the team down even if Close was never called. Close remains the
// deterministic way to release the workers.
type Pool struct{ *pool }

type pool struct {
	workers []*poolWorker // remote workers; worker ids 1..len(workers)
	job     poolJob
	pending atomic.Int64  // remote workers still running the current job
	done    chan struct{} // buffered(1); last finisher signals
	closed  atomic.Bool
}

type poolWorker struct {
	wake chan struct{} // buffered(1); one token per submitted job
}

const (
	jobStatic  int8 = iota // contiguous chunks, For/ForWorker semantics
	jobDynamic             // shared-cursor grain scheduling, ForDynamic semantics
)

// poolJob describes the in-flight loop. The submitter writes it before the
// wake sends and clears the reference-holding fields after the done receive;
// both channel operations order the accesses, so no field needs to be atomic
// except the dynamic cursor the workers share.
type poolJob struct {
	kind   int8
	n      int
	used   int
	grain  int
	cursor atomic.Int64
	body   func(lo, hi int)
	wbody  func(worker, lo, hi int)
	times  []int64
}

// NewPool starts a team for up to p workers: the caller plus p-1 parked
// goroutines. p <= 0 selects DefaultThreads.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = DefaultThreads()
	}
	inner := &pool{done: make(chan struct{}, 1)}
	inner.spawn(p - 1)
	pl := &Pool{inner}
	runtime.SetFinalizer(pl, func(pl *Pool) { pl.pool.close() })
	return pl
}

// spawn adds extra parked workers to the team. Each worker captures its own
// wake channel and fixed id, so growing the slice later never races with a
// running worker.
func (p *pool) spawn(extra int) {
	for i := 0; i < extra; i++ {
		w := &poolWorker{wake: make(chan struct{}, 1)}
		id := len(p.workers) + 1
		p.workers = append(p.workers, w)
		go p.serve(w, id)
	}
}

// serve is the worker loop: park on the wake channel, run the current job's
// share, and signal completion when this worker was the last one out. The
// channel receive orders the job-field reads after the submitter's writes;
// the pending decrement plus done send order the worker's writes before the
// submitter continues.
func (p *pool) serve(w *poolWorker, id int) {
	for range w.wake {
		p.exec(id)
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// Workers reports the team's capacity including the caller, or 1 for a nil
// pool (the caller alone).
func (pl *Pool) Workers() int {
	if pl == nil || pl.pool == nil {
		return 1
	}
	return len(pl.pool.workers) + 1
}

// Grow ensures the team can run loops with up to p workers, spawning the
// missing ones. It must not be called concurrently with a submitted loop.
func (pl *Pool) Grow(p int) {
	if pl == nil || pl.pool == nil {
		return
	}
	if extra := (p - 1) - len(pl.pool.workers); extra > 0 {
		pl.pool.spawn(extra)
	}
}

// Close releases the team's goroutines. Submitting a loop after Close panics;
// a nil pool's Close is a no-op. Close is idempotent.
func (pl *Pool) Close() {
	if pl == nil || pl.pool == nil {
		return
	}
	runtime.SetFinalizer(pl, nil)
	pl.pool.close()
}

func (p *pool) close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	for _, w := range p.workers {
		close(w.wake)
	}
}

// team clamps the worker count a loop may use to the pool's capacity.
func (p *pool) team(used int) int {
	if m := len(p.workers) + 1; used > m {
		used = m
	}
	return used
}

// run executes the prepared job on used workers: wake used-1 remote workers,
// take worker 0's share on the calling goroutine, wait for the team, then
// drop the job's reference-holding fields so the pool does not keep the
// caller's closures or slices alive between loops.
func (p *pool) run(used int) {
	p.pending.Store(int64(used - 1))
	for i := 0; i < used-1; i++ {
		p.workers[i].wake <- struct{}{}
	}
	p.exec(0)
	<-p.done
	p.job.body = nil
	p.job.wbody = nil
	p.job.times = nil
}

// exec runs worker id's share of the current job, accumulating busy time
// when the job carries a times slice (ForWorkerTimes semantics).
func (p *pool) exec(id int) {
	j := &p.job
	if j.times != nil {
		t0 := time.Now()
		p.execBody(id, j)
		j.times[id] += time.Since(t0).Nanoseconds()
		return
	}
	p.execBody(id, j)
}

func (p *pool) execBody(id int, j *poolJob) {
	switch j.kind {
	case jobStatic:
		// Identical chunk math to the spawn-based For: worker id covers
		// [id*chunk + min(id, rem), ...), one extra iteration for the first
		// rem workers.
		chunk := j.n / j.used
		rem := j.n % j.used
		lo := id * chunk
		if id < rem {
			lo += id
		} else {
			lo += rem
		}
		hi := lo + chunk
		if id < rem {
			hi++
		}
		if j.wbody != nil {
			j.wbody(id, lo, hi)
		} else {
			j.body(lo, hi)
		}
	case jobDynamic:
		for {
			lo := int(j.cursor.Add(int64(j.grain))) - j.grain
			if lo >= j.n {
				return
			}
			hi := lo + j.grain
			if hi > j.n {
				hi = j.n
			}
			j.body(lo, hi)
		}
	}
}

// For is the free For running on the team: static contiguous chunks over
// [0, n) with at most p workers (clamped to the team size). A nil pool
// delegates to the spawn-based free function.
func (pl *Pool) For(p, n int, body func(lo, hi int)) {
	if pl == nil || pl.pool == nil {
		For(p, n, body)
		return
	}
	if n <= 0 {
		return
	}
	used := pl.pool.team(normalize(p, n))
	if used == 1 {
		body(0, n)
		return
	}
	j := &pl.pool.job
	j.kind, j.n, j.used, j.body, j.wbody, j.times = jobStatic, n, used, body, nil, nil
	pl.pool.run(used)
}

// ForDynamic is the free ForDynamic running on the team: workers repeatedly
// grab grain-sized chunks from a shared cursor. grain <= 0 selects the same
// n/(8p) heuristic clamped to [1, 4096].
func (pl *Pool) ForDynamic(p, n, grain int, body func(lo, hi int)) {
	if pl == nil || pl.pool == nil {
		ForDynamic(p, n, grain, body)
		return
	}
	if n <= 0 {
		return
	}
	used := pl.pool.team(normalize(p, n))
	if grain <= 0 {
		grain = n / (8 * used)
		if grain < 1 {
			grain = 1
		}
		if grain > 4096 {
			grain = 4096
		}
	}
	if used == 1 {
		body(0, n)
		return
	}
	j := &pl.pool.job
	j.kind, j.n, j.used, j.grain, j.body, j.wbody, j.times = jobDynamic, n, used, grain, body, nil, nil
	j.cursor.Store(0)
	pl.pool.run(used)
}

// ForWorker is the free ForWorker on the team: static chunks with the worker
// index passed to the body. It reports the worker count actually used.
func (pl *Pool) ForWorker(p, n int, body func(worker, lo, hi int)) int {
	if pl == nil || pl.pool == nil {
		return ForWorker(p, n, body)
	}
	if n <= 0 {
		return 0
	}
	used := pl.pool.team(normalize(p, n))
	if used == 1 {
		body(0, 0, n)
		return 1
	}
	j := &pl.pool.job
	j.kind, j.n, j.used, j.body, j.wbody, j.times = jobStatic, n, used, nil, body, nil
	pl.pool.run(used)
	return used
}

// ForWorkerTimes is the free ForWorkerTimes on the team: ForWorker plus
// per-worker busy-time accounting into times (which must hold at least the
// used worker count). A nil times behaves exactly like ForWorker.
func (pl *Pool) ForWorkerTimes(p, n int, times []int64, body func(worker, lo, hi int)) int {
	if pl == nil || pl.pool == nil {
		return ForWorkerTimes(p, n, times, body)
	}
	if times == nil {
		return pl.ForWorker(p, n, body)
	}
	if n <= 0 {
		return 0
	}
	used := pl.pool.team(normalize(p, n))
	if used == 1 {
		t0 := time.Now()
		body(0, 0, n)
		times[0] += time.Since(t0).Nanoseconds()
		return 1
	}
	j := &pl.pool.job
	j.kind, j.n, j.used, j.body, j.wbody, j.times = jobStatic, n, used, nil, body, times
	pl.pool.run(used)
	return used
}

package par

import (
	"runtime"
	"sync/atomic"
)

// SpinLocks is an array of tiny test-and-test-and-set spinlocks, one per
// element of some vertex-indexed structure. It stands in for the Cray XMT's
// per-word full/empty bits and for the "|V| locks on OpenMP platforms" the
// paper allocates for the matching phase (§IV-B).
//
// Locks are expected to be held for a handful of instructions (claiming a
// matching pair), so spinning with an occasional Gosched beats parking a
// goroutine on a sync.Mutex.
type SpinLocks struct {
	bits []atomic.Uint32
}

// NewSpinLocks returns n unlocked spinlocks.
func NewSpinLocks(n int) *SpinLocks {
	return &SpinLocks{bits: make([]atomic.Uint32, n)}
}

// Len returns the number of locks.
func (s *SpinLocks) Len() int { return len(s.bits) }

// Lock acquires lock i, spinning until it is free.
func (s *SpinLocks) Lock(i int64) {
	b := &s.bits[i]
	for spins := 0; ; spins++ {
		if b.Load() == 0 && b.CompareAndSwap(0, 1) {
			return
		}
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// TryLock attempts to acquire lock i without blocking and reports success.
func (s *SpinLocks) TryLock(i int64) bool {
	b := &s.bits[i]
	return b.Load() == 0 && b.CompareAndSwap(0, 1)
}

// Unlock releases lock i. Unlocking a lock that is not held corrupts the
// lock state, exactly as with sync.Mutex.
func (s *SpinLocks) Unlock(i int64) {
	s.bits[i].Store(0)
}

// Lock2 acquires locks i and j (i != j) in index order, which makes
// concurrent pair claims deadlock-free.
func (s *SpinLocks) Lock2(i, j int64) {
	if i > j {
		i, j = j, i
	}
	s.Lock(i)
	s.Lock(j)
}

// Unlock2 releases locks i and j acquired with Lock2.
func (s *SpinLocks) Unlock2(i, j int64) {
	s.Unlock(i)
	s.Unlock(j)
}

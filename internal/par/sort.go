package par

import "sort"

// Sort sorts s with p workers using a merge sort over statically
// partitioned runs: each worker sorts its run with the standard library,
// then runs are merged pairwise in a parallel tree. less must be a strict
// weak ordering. The sort is not stable.
//
// The edge-array builder sorts |E|-long triple arrays with this routine;
// per-bucket sorts inside contraction are small and use sort.Sort directly.
func Sort[T any](p int, s []T, less func(a, b T) bool) {
	n := len(s)
	if n < 2 {
		return
	}
	p = normalize(p, n)
	// Below this size the merge machinery costs more than it saves.
	if p == 1 || n < 8192 {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	// Round the run count down to a power of two so the merge tree is a
	// complete binary tree.
	runs := 1
	for runs*2 <= p {
		runs *= 2
	}
	bounds := make([]int, runs+1)
	for i := 0; i <= runs; i++ {
		bounds[i] = i * n / runs
	}
	For(runs, runs, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			run := s[bounds[r]:bounds[r+1]]
			sort.Slice(run, func(i, j int) bool { return less(run[i], run[j]) })
		}
	})
	buf := make([]T, n)
	src, dst := s, buf
	for width := 1; width < runs; width *= 2 {
		type job struct{ lo, mid, hi int }
		var jobs []job
		for r := 0; r < runs; r += 2 * width {
			lo := bounds[r]
			mid := bounds[min(r+width, runs)]
			hi := bounds[min(r+2*width, runs)]
			jobs = append(jobs, job{lo, mid, hi})
		}
		For(len(jobs), len(jobs), func(jlo, jhi int) {
			for _, j := range jobs[jlo:jhi] {
				mergeRuns(dst[j.lo:j.hi], src[j.lo:j.mid], src[j.mid:j.hi], less)
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// mergeRuns merges sorted runs a and b into out (len(out) == len(a)+len(b)).
func mergeRuns[T any](out, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

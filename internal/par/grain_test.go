package par

import (
	"sync"
	"testing"
)

// chunkRecorder collects the (lo, hi) chunks a dynamic loop hands out, plus
// an exactly-once visit count per index.
type chunkRecorder struct {
	mu     sync.Mutex
	sizes  []int
	visits []int32
}

func (c *chunkRecorder) body(lo, hi int) {
	c.mu.Lock()
	c.sizes = append(c.sizes, hi-lo)
	for i := lo; i < hi; i++ {
		c.visits[i]++
	}
	c.mu.Unlock()
}

// expectedGrain mirrors the documented heuristic: n/(8p) clamped to
// [1, 4096], where p is the worker count the loop actually uses.
func expectedGrain(used, n int) int {
	g := n / (8 * used)
	if g < 1 {
		g = 1
	}
	if g > 4096 {
		g = 4096
	}
	return g
}

// The grain<=0 heuristic must respect its documented clamp bounds and
// still cover [0, n) exactly once, across adversarial n/p combinations:
// n smaller than p, n barely above the clamp knee, n far above it, primes
// that leave ragged tails, and p larger than the machine.
func TestForDynamicGrainHeuristic(t *testing.T) {
	cases := []struct{ n, p int }{
		{1, 2},          // single index, heuristic floor
		{7, 3},          // n < 8p: grain clamps up to 1
		{100, 13},       // ragged: 100/104 rounds to 0 -> 1
		{4096, 2},       // exactly at the knee: 4096/16 = 256
		{65536, 2},      // 65536/16 = 4096, at the upper clamp
		{70000, 2},      // 70000/16 = 4375, must clamp down to 4096
		{1 << 20, 2},    // far past the clamp
		{524309, 7},     // prime n, odd p
		{8192, 1024},    // p clamps to n first, then grain to 1
		{4000, 1 << 30}, // absurd p: normalize to n, grain 1
	}
	for _, tc := range cases {
		used := Workers(tc.p, tc.n)
		want := expectedGrain(used, tc.n)
		rec := &chunkRecorder{visits: make([]int32, tc.n)}
		ForDynamic(tc.p, tc.n, 0, rec.body)
		checkGrainChunks(t, "free", tc.n, tc.p, used, want, rec)
	}
}

// The pooled variant must implement the identical heuristic, with the used
// worker count additionally clamped to the team size.
func TestPoolForDynamicGrainHeuristic(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	cases := []struct{ n, p int }{
		{7, 3},
		{100, 13},    // normalize gives 13, team clamps to 4
		{70000, 2},   // 70000/16 = 4375 -> 4096
		{70000, 16},  // team clamp to 4: 70000/32 = 2187
		{1 << 18, 4}, // 2^18/32 = 8192 -> 4096
	}
	for _, tc := range cases {
		used := Workers(tc.p, tc.n)
		if used > pl.Workers() {
			used = pl.Workers()
		}
		want := expectedGrain(used, tc.n)
		rec := &chunkRecorder{visits: make([]int32, tc.n)}
		pl.ForDynamic(tc.p, tc.n, 0, rec.body)
		checkGrainChunks(t, "pool", tc.n, tc.p, used, want, rec)
	}
}

func checkGrainChunks(t *testing.T, kind string, n, p, used, want int, rec *chunkRecorder) {
	t.Helper()
	if want < 1 || want > 4096 {
		t.Fatalf("%s n=%d p=%d: expected grain %d outside clamp [1, 4096]", kind, n, p, want)
	}
	for i, c := range rec.visits {
		if c != 1 {
			t.Fatalf("%s n=%d p=%d: index %d visited %d times", kind, n, p, i, c)
		}
	}
	if used == 1 {
		// Single-worker shortcut: one chunk covering everything, the
		// heuristic unobservable by design.
		if len(rec.sizes) != 1 || rec.sizes[0] != n {
			t.Fatalf("%s n=%d p=%d: serial path chunks = %v", kind, n, p, rec.sizes)
		}
		return
	}
	var tail int
	for _, s := range rec.sizes {
		if s > want {
			t.Fatalf("%s n=%d p=%d: chunk of %d exceeds heuristic grain %d", kind, n, p, s, want)
		}
		if s != want {
			tail++
		}
	}
	// Every chunk is exactly the heuristic grain except at most one
	// truncated tail chunk.
	if tail > 1 {
		t.Fatalf("%s n=%d p=%d: %d chunks differ from grain %d (sizes %v)", kind, n, p, tail, want, rec.sizes)
	}
	if rem := n % want; rem != 0 {
		found := false
		for _, s := range rec.sizes {
			if s == rem {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s n=%d p=%d: missing tail chunk of %d (sizes %v)", kind, n, p, rem, want)
		}
	}
}

package par

import (
	"math/rand"
	"testing"
)

func TestMergeStripes(t *testing.T) {
	for _, tc := range []struct{ workers, k, p int }{
		{1, 1, 1}, {3, 7, 2}, {4, 1000, 8}, {8, 3, 3},
	} {
		stripes := make([]int64, tc.workers*tc.k)
		want := make([]int64, tc.k)
		rng := rand.New(rand.NewSource(1))
		for w := 0; w < tc.workers; w++ {
			for c := 0; c < tc.k; c++ {
				v := int64(rng.Intn(100))
				stripes[w*tc.k+c] = v
				want[c] += v
			}
		}
		dst := make([]int64, tc.k)
		for i := range dst {
			dst[i] = -999 // must be overwritten, not accumulated
		}
		MergeStripes(tc.p, stripes, tc.workers, tc.k, dst)
		for c := range want {
			if dst[c] != want[c] {
				t.Fatalf("workers=%d k=%d p=%d: dst[%d] = %d, want %d",
					tc.workers, tc.k, tc.p, c, dst[c], want[c])
			}
		}
	}
}

func TestStripeOffsets(t *testing.T) {
	const workers, k = 5, 97
	stripes := make([]int64, workers*k)
	orig := make([]int64, workers*k)
	rng := rand.New(rand.NewSource(2))
	for i := range stripes {
		stripes[i] = int64(rng.Intn(10))
		orig[i] = stripes[i]
	}
	totals := make([]int64, k)
	StripeOffsets(4, stripes, workers, k, totals)
	for c := 0; c < k; c++ {
		var run int64
		for w := 0; w < workers; w++ {
			if stripes[w*k+c] != run {
				t.Fatalf("offset[%d][%d] = %d, want %d", w, c, stripes[w*k+c], run)
			}
			run += orig[w*k+c]
		}
		if totals[c] != run {
			t.Fatalf("totals[%d] = %d, want %d", c, totals[c], run)
		}
	}
}

func TestZeroInt64(t *testing.T) {
	xs := make([]int64, 10_000)
	for i := range xs {
		xs[i] = int64(i) + 1
	}
	ZeroInt64(4, xs)
	for i, x := range xs {
		if x != 0 {
			t.Fatalf("xs[%d] = %d after ZeroInt64", i, x)
		}
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Fatalf("Workers(2, 100) = %d, want 2", w)
	}
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0, 100) = %d, want >= 1", w)
	}
}

func TestPackIntoReusesBuffers(t *testing.T) {
	src := make([]int64, 1000)
	keep := make([]int64, 1000)
	var want []int64
	for i := range src {
		src[i] = int64(i * 3)
		if i%7 == 0 {
			keep[i] = 1
			want = append(want, src[i])
		}
	}
	slots := make([]int64, 1000)
	dst := make([]int64, 1000)
	out := PackInto(4, src, keep, slots, dst)
	if len(out) != len(want) {
		t.Fatalf("packed %d survivors, want %d", len(out), len(want))
	}
	if &out[0] != &dst[0] {
		t.Fatal("PackInto did not reuse dst storage")
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	// Dirty scratch must not leak into a second pack.
	out2 := PackInto(4, src, keep, slots, out[:cap(out)])
	for i := range want {
		if out2[i] != want[i] {
			t.Fatalf("second pack: out[%d] = %d, want %d", i, out2[i], want[i])
		}
	}
}

func TestPackIndexInto(t *testing.T) {
	const n = 512
	keep := make([]int64, n)
	var want []int64
	for i := 0; i < n; i++ {
		if i%3 == 1 {
			keep[i] = 1
			want = append(want, int64(i))
		}
	}
	got := PackIndexInto(4, n, keep, nil, nil)
	if len(got) != len(want) {
		t.Fatalf("packed %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Empty selection.
	if out := PackIndexInto(2, n, make([]int64, n), nil, nil); len(out) != 0 {
		t.Fatalf("empty keep packed %d indices", len(out))
	}
}

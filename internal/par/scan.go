package par

// ExclusiveSumInt64 replaces xs with its exclusive prefix sum (xs[i] becomes
// the sum of the original xs[0:i]) and returns the total sum of the original
// slice. The scan is the synchronization primitive the paper uses to lay
// contraction buckets out contiguously (§IV-C).
//
// The parallel variant is the classic three-pass blocked scan: per-block
// sums, a sequential scan over block sums, then per-block local scans offset
// by the block prefix.
func ExclusiveSumInt64(p int, xs []int64) int64 {
	return (*Pool)(nil).ExclusiveSumInt64(p, xs)
}

// ExclusiveSumInt64 is the free ExclusiveSumInt64 running on the team; a nil
// pool spawns.
func (pl *Pool) ExclusiveSumInt64(p int, xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = normalize(p, n)
	// The blocked scan only pays off when blocks are large enough to
	// amortize goroutine startup.
	if p == 1 || n < 4096 {
		var run int64
		for i := range xs {
			v := xs[i]
			xs[i] = run
			run += v
		}
		return run
	}
	// ForWorker recomputes the same static partition for the same (p, n), so
	// block w sees the same [lo, hi) in both passes.
	blockSum := make([]int64, p)
	pl.ForWorker(p, n, func(w, lo, hi int) {
		var s int64
		for _, x := range xs[lo:hi] {
			s += x
		}
		blockSum[w] = s
	})
	var total int64
	for w := 0; w < p; w++ {
		s := blockSum[w]
		blockSum[w] = total
		total += s
	}
	pl.ForWorker(p, n, func(w, lo, hi int) {
		run := blockSum[w]
		for i := lo; i < hi; i++ {
			v := xs[i]
			xs[i] = run
			run += v
		}
	})
	return total
}

// ExclusiveSumInt32 is ExclusiveSumInt64 for int32 slices; the total is
// returned as int64 so it cannot overflow for slices over 2^31 elements of
// small counts.
func ExclusiveSumInt32(p int, xs []int32) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = normalize(p, n)
	if p == 1 || n < 4096 {
		var run int64
		for i := range xs {
			v := int64(xs[i])
			xs[i] = int32(run)
			run += v
		}
		return run
	}
	blockSum := make([]int64, p)
	ForWorker(p, n, func(w, lo, hi int) {
		var s int64
		for _, x := range xs[lo:hi] {
			s += int64(x)
		}
		blockSum[w] = s
	})
	var total int64
	for w := 0; w < p; w++ {
		s := blockSum[w]
		blockSum[w] = total
		total += s
	}
	ForWorker(p, n, func(w, lo, hi int) {
		run := blockSum[w]
		for i := lo; i < hi; i++ {
			v := int64(xs[i])
			xs[i] = int32(run)
			run += v
		}
	})
	return total
}

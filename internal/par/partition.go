package par

// This file holds the edge-balanced static scheduler. The paper's parity
// hash (§IV-A) scatters hub *storage* across buckets, but a loop that hands
// each worker an equal count of vertices still schedules *work* by vertex,
// so on power-law graphs one worker can draw a mega-hub's whole adjacency
// while its peers idle. A Partition fixes the schedule instead of the
// layout: an exclusive prefix sum over per-item weights (bucket sizes plus
// one, so empty buckets still cost a unit of vertex work) turns "give every
// worker an equal share of edges" into W binary searches, computed once per
// hierarchy level and reused by every sweep over that level.
//
// Two views of the same prefix are exposed. Ranges are item-aligned: worker
// w owns items [bounds[w], bounds[w+1]), the boundaries rounded to whole
// items, which any per-vertex kernel can use. Spans additionally split
// oversized hub buckets at exact edge offsets, so edge-parallel sweeps
// (scoring, contraction count/scatter) stay balanced even when one bucket
// outweighs an even share; kernels that keep per-vertex state (matching's
// propose/claim) must use the aligned ranges instead.

// Span is one worker's share of an edge-balanced sweep: vertices
// [LoV, HiV), with the bucket of LoV entered only from edge index LoE and
// the bucket of HiV-1 left at edge index HiE. Interior buckets are covered
// whole. LoE and HiE are absolute indices into the graph's triple arrays,
// so a Span is only meaningful against the Start/End slices it was built
// from. An empty span has LoV == HiV.
type Span struct {
	LoV, HiV int
	LoE, HiE int64
}

// Partition is a reusable edge-balanced schedule over n items for a fixed
// worker count. Build it once per hierarchy level with BuildBuckets (or the
// weight variants), then read the per-worker assignments with Range and
// Span. The zero value is empty; all storage is reused across rebuilds.
type Partition struct {
	items   int
	workers int
	total   int64   // Σ weights = edges + items for bucket builds
	prefix  []int64 // len items+1 exclusive prefix; prefix[items] == total
	bounds  []int   // len workers+1 item-aligned boundaries
	spans   []Span  // len workers when the build produces spans, else empty
}

// Items reports the item count the partition was built over.
func (pt *Partition) Items() int { return pt.items }

// Workers reports the worker count the partition was built for.
func (pt *Partition) Workers() int { return pt.workers }

// TotalWeight reports the summed weight. For BuildBuckets and BuildIndexed
// that is edges + items (each item carries a +1 so empty buckets still
// schedule); callers use it to verify a cached partition still matches the
// graph it is about to sweep.
func (pt *Partition) TotalWeight() int64 { return pt.total }

// HasSpans reports whether the build produced edge-exact spans.
func (pt *Partition) HasSpans() bool { return len(pt.spans) == pt.workers && pt.workers > 0 }

// Range returns worker w's item-aligned share [lo, hi).
func (pt *Partition) Range(w int) (lo, hi int) { return pt.bounds[w], pt.bounds[w+1] }

// Span returns worker w's edge-exact share. Only valid when HasSpans.
func (pt *Partition) Span(w int) Span { return pt.spans[w] }

// AlignedImbalance reports the item-aligned schedule's load imbalance: the
// heaviest worker's weight over the perfectly even share (1 = exact balance).
// It is a property of the built schedule, not of a measured run, so it is
// deterministic and host-independent — the convergence ledger records it per
// level against the analytic whole-bucket lower bound. An empty partition
// reports 0.
func (pt *Partition) AlignedImbalance() float64 {
	if pt.workers == 0 || pt.total == 0 {
		return 0
	}
	prefix := pt.prefix[:pt.items+1]
	var max int64
	for w := 0; w < pt.workers; w++ {
		if d := prefix[pt.bounds[w+1]] - prefix[pt.bounds[w]]; d > max {
			max = d
		}
	}
	return float64(max) * float64(pt.workers) / float64(pt.total)
}

// Reset empties the partition (storage is kept for reuse). An empty
// partition matches no sweep.
func (pt *Partition) Reset() {
	pt.items, pt.workers, pt.total = 0, 0, 0
}

// BuildBuckets computes an edge-balanced schedule for n bucketed items:
// item x spans edges start[x]..end[x] of the triple arrays and weighs
// end[x]-start[x]+1. Both aligned ranges and edge-exact spans are built.
// The worker count is Workers(p, n); a nil pool spawns goroutines for the
// prefix passes.
func (pt *Partition) BuildBuckets(pl *Pool, p, n int, start, end []int64) {
	w := pt.buildPrefixBuckets(pl, p, n, start, end)
	pt.buildBounds(w)
	pt.buildSpans(w, start, end)
}

// BuildWeights computes an item-aligned schedule over n items where item x
// weighs weight[x]+1. No spans are built (there are no bucket boundaries to
// split at), so only Range applies. The matching worklist and contraction
// dedup use it with per-item bucket lengths.
func (pt *Partition) BuildWeights(pl *Pool, p, n int, weight []int64) {
	workers := Workers(p, n)
	pt.items, pt.workers = n, workers
	pt.prefix = growInt64(pt.prefix, n+1)
	prefix := pt.prefix
	if Serial(p, n) {
		for x := 0; x < n; x++ {
			prefix[x] = weight[x] + 1
		}
	} else {
		pl.For(p, n, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				prefix[x] = weight[x] + 1
			}
		})
	}
	prefix[n] = 0
	pt.total = pl.ExclusiveSumInt64(p, prefix)
	pt.spans = pt.spans[:0]
	pt.buildBounds(workers)
}

// BuildIndexed is BuildWeights over an index list: item i weighs
// end[list[i]]-start[list[i]]+1. The matching worklist passes its packed
// active-vertex list so each pass stays degree-balanced as the list shrinks.
func (pt *Partition) BuildIndexed(pl *Pool, p int, list, start, end []int64) {
	n := len(list)
	workers := Workers(p, n)
	pt.items, pt.workers = n, workers
	pt.prefix = growInt64(pt.prefix, n+1)
	prefix := pt.prefix
	if Serial(p, n) {
		for i := 0; i < n; i++ {
			x := list[i]
			prefix[i] = end[x] - start[x] + 1
		}
	} else {
		pl.For(p, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := list[i]
				prefix[i] = end[x] - start[x] + 1
			}
		})
	}
	prefix[n] = 0
	pt.total = pl.ExclusiveSumInt64(p, prefix)
	pt.spans = pt.spans[:0]
	pt.buildBounds(workers)
}

func (pt *Partition) buildPrefixBuckets(pl *Pool, p, n int, start, end []int64) int {
	workers := Workers(p, n)
	pt.items, pt.workers = n, workers
	pt.prefix = growInt64(pt.prefix, n+1)
	prefix := pt.prefix
	if Serial(p, n) {
		for x := 0; x < n; x++ {
			prefix[x] = end[x] - start[x] + 1
		}
	} else {
		pl.For(p, n, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				prefix[x] = end[x] - start[x] + 1
			}
		})
	}
	prefix[n] = 0
	pt.total = pl.ExclusiveSumInt64(p, prefix)
	return workers
}

// buildBounds fills the item-aligned boundaries: bounds[w] is the first
// item x with prefix[x] >= total*w/workers, so consecutive targets yield
// monotone boundaries and every worker's share misses the even share by
// less than one item's weight.
func (pt *Partition) buildBounds(workers int) {
	pt.bounds = growInt(pt.bounds, workers+1)
	prefix, n := pt.prefix[:pt.items+1], pt.items
	pt.bounds[0] = 0
	for w := 1; w < workers; w++ {
		t := pt.total * int64(w) / int64(workers)
		// First x with prefix[x] >= t.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if prefix[mid] < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		pt.bounds[w] = lo
	}
	pt.bounds[workers] = n
}

// buildSpans places the same W-1 interior targets at exact edge offsets. A
// target t inside bucket x's edge run splits the bucket; a target on the
// bucket's trailing +1 unit canonicalizes to the start of bucket x+1, so
// no two spans ever claim the same edge and a bucket's first edge (and its
// vertex-level work, e.g. self-loop folding) belongs to exactly one span.
func (pt *Partition) buildSpans(workers int, start, end []int64) {
	if cap(pt.spans) < workers {
		pt.spans = make([]Span, workers)
	}
	pt.spans = pt.spans[:workers]
	n := pt.items
	prefix := pt.prefix[:n+1]
	bx, bo := 0, int64(0) // previous boundary: bucket index + edge offset
	for w := 0; w < workers; w++ {
		var x int
		var off int64
		if w == workers-1 {
			x, off = n, 0
		} else {
			t := pt.total * int64(w+1) / int64(workers)
			// Largest x with prefix[x] <= t, then the offset within x.
			lo, hi := 0, n
			for lo < hi {
				mid := int(uint(lo+hi+1) >> 1)
				if prefix[mid] <= t {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			x = lo
			off = t - prefix[x]
			if x < n && off >= end[x]-start[x] {
				// On the bucket's trailing unit (or past its edges):
				// canonicalize to the next bucket's start.
				x, off = x+1, 0
			}
		}
		sp := &pt.spans[w]
		switch {
		case bx >= x && bo >= off:
			sp.LoV, sp.HiV, sp.LoE, sp.HiE = bx, bx, 0, 0
		case bx == x:
			sp.LoV, sp.HiV = bx, bx+1
			sp.LoE, sp.HiE = start[bx]+bo, start[x]+off
		default:
			sp.LoV, sp.LoE = bx, start[bx]+bo
			if off > 0 {
				sp.HiV, sp.HiE = x+1, start[x]+off
			} else {
				sp.HiV, sp.HiE = x, end[x-1]
			}
		}
		bx, bo = x, off
	}
}

func growInt64(xs []int64, n int) []int64 {
	if cap(xs) < n {
		return make([]int64, n)
	}
	return xs[:n]
}

func growInt(xs []int, n int) []int {
	if cap(xs) < n {
		return make([]int, n)
	}
	return xs[:n]
}

package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 4097} {
		for _, p := range []int{0, 1, 2, 3, 8, 200} {
			seen := make([]int32, n)
			For(p, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, c)
				}
			}
		}
	}
}

func TestForDynamicCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 4099} {
		for _, p := range []int{0, 1, 4, 16} {
			for _, grain := range []int{0, 1, 7, 1024} {
				seen := make([]int32, n)
				ForDynamic(p, n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d p=%d grain=%d: index %d visited %d times", n, p, grain, i, c)
					}
				}
			}
		}
	}
}

func TestForWorkerIndices(t *testing.T) {
	const n = 1000
	p := 4
	used := make([]int32, p)
	got := ForWorker(p, n, func(w, lo, hi int) {
		atomic.AddInt32(&used[w], int32(hi-lo))
	})
	if got != p {
		t.Fatalf("ForWorker used %d workers, want %d", got, p)
	}
	var total int32
	for _, u := range used {
		total += u
	}
	if total != n {
		t.Fatalf("workers covered %d iterations, want %d", total, n)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatalf("Do did not run all functions: %d %d %d", a.Load(), b.Load(), c.Load())
	}
	Do(func() { a.Store(9) }) // single-function fast path
	if a.Load() != 9 {
		t.Fatal("Do single function did not run")
	}
}

func TestSumInt64MatchesSequential(t *testing.T) {
	f := func(xs []int64) bool {
		var want int64
		for _, x := range xs {
			want += x
		}
		for _, p := range []int{1, 2, 7} {
			if got := SumInt64(p, xs); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumFloat64(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 0.5
	}
	if got := SumFloat64(8, xs); got != 5000 {
		t.Fatalf("SumFloat64 = %v, want 5000", got)
	}
	if got := SumFloat64(3, nil); got != 0 {
		t.Fatalf("SumFloat64(nil) = %v, want 0", got)
	}
}

func TestMaxInt64(t *testing.T) {
	xs := []int64{3, 9, 2, 9, 1}
	v, i := MaxInt64(4, xs)
	if v != 9 || i != 1 {
		t.Fatalf("MaxInt64 = (%d, %d), want (9, 1)", v, i)
	}
	v, i = MaxInt64(1, []int64{-5})
	if v != -5 || i != 0 {
		t.Fatalf("MaxInt64 single = (%d, %d)", v, i)
	}
}

func TestMaxInt64ArgmaxIndependentOfWorkers(t *testing.T) {
	r := NewRNG(7)
	xs := make([]int64, 50000)
	for i := range xs {
		xs[i] = r.Int63n(1000)
	}
	wantV, wantI := MaxInt64(1, xs)
	for _, p := range []int{2, 3, 8, 16} {
		v, i := MaxInt64(p, xs)
		if v != wantV || i != wantI {
			t.Fatalf("p=%d: (%d,%d) != (%d,%d)", p, v, i, wantV, wantI)
		}
	}
}

func TestCountInt64(t *testing.T) {
	xs := []int64{1, -2, 3, -4, 5}
	got := CountInt64(2, xs, func(x int64) bool { return x > 0 })
	if got != 3 {
		t.Fatalf("CountInt64 = %d, want 3", got)
	}
}

func TestExclusiveSumInt64Small(t *testing.T) {
	xs := []int64{3, 1, 4, 1, 5}
	total := ExclusiveSumInt64(4, xs)
	want := []int64{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
}

func TestExclusiveSumInt64LargeMatchesSequential(t *testing.T) {
	r := NewRNG(42)
	n := 100003
	orig := make([]int64, n)
	for i := range orig {
		orig[i] = r.Int63n(10)
	}
	want := make([]int64, n)
	copy(want, orig)
	wantTotal := ExclusiveSumInt64(1, want)
	for _, p := range []int{2, 5, 16} {
		xs := make([]int64, n)
		copy(xs, orig)
		total := ExclusiveSumInt64(p, xs)
		if total != wantTotal {
			t.Fatalf("p=%d: total %d != %d", p, total, wantTotal)
		}
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("p=%d: xs[%d] = %d, want %d", p, i, xs[i], want[i])
			}
		}
	}
}

func TestExclusiveSumInt32(t *testing.T) {
	r := NewRNG(1)
	n := 50000
	orig := make([]int32, n)
	for i := range orig {
		orig[i] = int32(r.Intn(7))
	}
	want := make([]int32, n)
	copy(want, orig)
	wantTotal := ExclusiveSumInt32(1, want)
	xs := make([]int32, n)
	copy(xs, orig)
	total := ExclusiveSumInt32(8, xs)
	if total != wantTotal {
		t.Fatalf("total %d != %d", total, wantTotal)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("xs[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	a.Seed(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / 100000
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("digit %d count %d outside [9000,11000]", d, c)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(77, i)
		if seen[s] {
			t.Fatalf("SplitSeed collision at stream %d", i)
		}
		seen[s] = true
	}
}

func TestSpinLocksMutualExclusion(t *testing.T) {
	locks := NewSpinLocks(4)
	if locks.Len() != 4 {
		t.Fatalf("Len = %d", locks.Len())
	}
	var counter int64
	const iters = 2000
	For(8, 8, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			for i := 0; i < iters; i++ {
				locks.Lock(2)
				counter++ // protected by lock 2
				locks.Unlock(2)
			}
		}
	})
	if counter != 8*iters {
		t.Fatalf("counter = %d, want %d", counter, 8*iters)
	}
}

func TestSpinLocksTryLock(t *testing.T) {
	locks := NewSpinLocks(2)
	if !locks.TryLock(0) {
		t.Fatal("TryLock on free lock failed")
	}
	if locks.TryLock(0) {
		t.Fatal("TryLock on held lock succeeded")
	}
	locks.Unlock(0)
	if !locks.TryLock(0) {
		t.Fatal("TryLock after unlock failed")
	}
	locks.Unlock(0)
}

func TestSpinLocksLock2Ordering(t *testing.T) {
	locks := NewSpinLocks(16)
	cells := make([]int64, 16)
	// Hammer overlapping pairs from many goroutines; ordered acquisition
	// must not deadlock and must serialize access to the two locked cells.
	For(8, 8, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			r := NewRNG(uint64(w))
			for i := 0; i < 500; i++ {
				a := int64(r.Intn(16))
				b := int64(r.Intn(15))
				if b >= a {
					b++
				}
				locks.Lock2(a, b)
				cells[a]++
				cells[b]++
				locks.Unlock2(a, b)
			}
		}
	})
	var total int64
	for _, c := range cells {
		total += c
	}
	if total != 2*8*500 {
		t.Fatalf("total = %d, want %d", total, 2*8*500)
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{0, 1, 2, 100, 8192, 100000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(1000)
		}
		want := make([]int64, n)
		copy(want, xs)
		Sort(1, want, func(a, b int64) bool { return a < b })
		for _, p := range []int{2, 3, 8} {
			got := make([]int64, n)
			copy(got, xs)
			Sort(p, got, func(a, b int64) bool { return a < b })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: got[%d]=%d want %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(xs []int32, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		ys := make([]int32, len(xs))
		copy(ys, xs)
		Sort(p, ys, func(a, b int32) bool { return a < b })
		if len(ys) != len(xs) {
			return false
		}
		for i := 1; i < len(ys); i++ {
			if ys[i-1] > ys[i] {
				return false
			}
		}
		// Same multiset: count occurrences.
		count := map[int32]int{}
		for _, x := range xs {
			count[x]++
		}
		for _, y := range ys {
			count[y]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := normalize(0, 10); got != DefaultThreads() && got != 10 {
		// normalize clamps to min(DefaultThreads, n)
		t.Fatalf("normalize(0,10) = %d", got)
	}
	if got := normalize(100, 3); got != 3 {
		t.Fatalf("normalize(100,3) = %d, want 3", got)
	}
	if got := normalize(-1, 1); got != 1 {
		t.Fatalf("normalize(-1,1) = %d, want 1", got)
	}
}

func TestPack(t *testing.T) {
	src := []int64{10, 20, 30, 40, 50}
	keep := []int64{1, 0, 1, 0, 1}
	for _, p := range []int{1, 2, 4} {
		got := Pack(p, src, keep)
		want := []int64{10, 30, 50}
		if len(got) != len(want) {
			t.Fatalf("p=%d: got %v", p, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: got %v, want %v", p, got, want)
			}
		}
	}
	if out := Pack(2, []int64{}, []int64{}); out != nil {
		t.Fatal("empty pack should be nil")
	}
	if out := Pack(2, src, []int64{0, 0, 0, 0, 0}); len(out) != 0 {
		t.Fatalf("all-drop pack returned %v", out)
	}
}

func TestPackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pack(1, []int64{1, 2}, []int64{1})
}

func TestPackLargeMatchesSequential(t *testing.T) {
	r := NewRNG(6)
	n := 50000
	src := make([]int, n)
	keep := make([]int64, n)
	for i := range src {
		src[i] = i
		if r.Float64() < 0.3 {
			keep[i] = 1
		}
	}
	want := Pack(1, src, keep)
	got := Pack(8, src, keep)
	if len(want) != len(got) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], want[i])
		}
	}
}

// Package par provides the threading substrate for the community detection
// library: parallel loops with static and dynamic scheduling, reductions,
// prefix sums, a parallel sort, deterministic splittable random number
// streams, and light-weight per-element spinlocks.
//
// The paper targets the Cray XMT (implicit massive threading with
// full/empty-bit synchronization) and OpenMP (explicit work-sharing loops
// with lock arrays). This package plays the role of both runtimes: loops map
// to goroutine workers over GOMAXPROCS, and the XMT's full/empty claim
// protocol is emulated with compare-and-swap spinlocks exactly as the
// paper's OpenMP port does with lock arrays.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultThreads returns the worker count used when a caller passes p <= 0:
// the current GOMAXPROCS setting.
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// normalize clamps a requested worker count to [1, n] for a loop of n
// iterations (never more workers than iterations, never less than one).
func normalize(p, n int) int {
	if p <= 0 {
		p = DefaultThreads()
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// For runs body over the index range [0, n) using p workers with static
// contiguous partitioning. Each worker receives one [lo, hi) chunk. body
// must be safe to call concurrently. p <= 0 selects DefaultThreads().
//
// Static partitioning is the analogue of an OpenMP "schedule(static)"
// work-sharing loop and suits uniform per-iteration cost.
func For(p, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = normalize(p, n)
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := n / p
	rem := n % p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForDynamic runs body over [0, n) using p workers that repeatedly grab
// grain-sized chunks from a shared atomic counter. It is the analogue of an
// OpenMP "schedule(dynamic, grain)" loop and suits irregular per-iteration
// cost such as power-law vertex degrees. grain <= 0 selects a heuristic
// grain of roughly n/(8p) clamped to [1, 4096].
func ForDynamic(p, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = normalize(p, n)
	if grain <= 0 {
		grain = n / (8 * p)
		if grain < 1 {
			grain = 1
		}
		if grain > 4096 {
			grain = 4096
		}
	}
	if p == 1 {
		body(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForWorker is like For but also passes the worker index (0..p-1) so the
// body can use per-worker scratch space or random streams without false
// sharing. It reports the worker count actually used.
func ForWorker(p, n int, body func(worker, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	p = normalize(p, n)
	if p == 1 {
		body(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	chunk := n / p
	rem := n % p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	return p
}

// ForWorkerTimes is ForWorker with per-worker busy-time accounting: when
// times is non-nil and holds at least the used worker count, times[w]
// accumulates the nanoseconds worker w spent inside body. The difference
// between the slowest and the mean stripe is the spawn/wait imbalance of the
// region — the quantity the observability layer reports per parallel region.
// A nil times behaves exactly like ForWorker.
func ForWorkerTimes(p, n int, times []int64, body func(worker, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	p = normalize(p, n)
	if times == nil {
		return ForWorker(p, n, body)
	}
	if p == 1 {
		t0 := time.Now()
		body(0, 0, n)
		times[0] += time.Since(t0).Nanoseconds()
		return 1
	}
	var wg sync.WaitGroup
	chunk := n / p
	rem := n % p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			body(w, lo, hi)
			times[w] += time.Since(t0).Nanoseconds()
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	return p
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// Pack copies the elements of src whose keep flag is nonzero into a fresh
// slice, preserving order, using p workers: a prefix sum over the flags
// computes each survivor's output slot, then a scatter pass copies. This is
// the stream-compaction primitive behind the matching worklist (§IV-B),
// where each pass retains only the still-unmatched vertices.
func Pack[T any](p int, src []T, keep []int64) []T {
	return PackIntoWith(nil, p, src, keep, nil, nil)
}

// PackInto is Pack with caller-provided scratch: slots is the prefix-sum
// workspace (grown if shorter than src) and dst receives the survivors
// (reused if its capacity suffices). Either may be nil for fresh
// allocations. It returns the packed slice, which aliases dst's storage
// when that was reused. src and dst must not overlap.
func PackInto[T any](p int, src []T, keep, slots []int64, dst []T) []T {
	return PackIntoWith(nil, p, src, keep, slots, dst)
}

// PackIntoWith is PackInto running on a worker team; a nil pool spawns. It
// is a free function rather than a *Pool method only because methods cannot
// be generic.
func PackIntoWith[T any](pl *Pool, p int, src []T, keep, slots []int64, dst []T) []T {
	n := len(src)
	if n != len(keep) {
		panic("par: Pack flag slice length mismatch")
	}
	if n == 0 {
		return dst[:0]
	}
	if cap(slots) < n {
		slots = make([]int64, n)
	}
	slots = slots[:n]
	if Serial(p, n) {
		// Closure-free single pass: count, size, then copy.
		var total int64
		for i := 0; i < n; i++ {
			if keep[i] != 0 {
				total++
			}
		}
		if int64(cap(dst)) < total {
			dst = make([]T, total)
		}
		dst = dst[:total]
		var out int64
		for i := 0; i < n; i++ {
			if keep[i] != 0 {
				dst[out] = src[i]
				out++
			}
		}
		return dst
	}
	pl.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep[i] != 0 {
				slots[i] = 1
			} else {
				slots[i] = 0
			}
		}
	})
	total := pl.ExclusiveSumInt64(p, slots)
	if int64(cap(dst)) < total {
		dst = make([]T, total)
	}
	dst = dst[:total]
	pl.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep[i] != 0 {
				dst[slots[i]] = src[i]
			}
		}
	})
	return dst
}

// PackIndexInto writes the indices i in [0, n) with keep[i] != 0 into dst in
// increasing order, using the same prefix-sum-and-scatter pattern as Pack
// but without materializing an identity source slice. slots and dst follow
// PackInto's scratch conventions. The matching worklist uses it to build the
// initial active-vertex list in parallel.
func PackIndexInto(p, n int, keep, slots, dst []int64) []int64 {
	return (*Pool)(nil).PackIndexInto(p, n, keep, slots, dst)
}

// PackIndexInto is the free PackIndexInto running on the team; a nil pool
// spawns.
func (pl *Pool) PackIndexInto(p, n int, keep, slots, dst []int64) []int64 {
	if n > len(keep) {
		panic("par: PackIndexInto flag slice too short")
	}
	if n == 0 {
		return dst[:0]
	}
	if cap(slots) < n {
		slots = make([]int64, n)
	}
	slots = slots[:n]
	if Serial(p, n) {
		var total int64
		for i := 0; i < n; i++ {
			if keep[i] != 0 {
				total++
			}
		}
		if int64(cap(dst)) < total {
			dst = make([]int64, total)
		}
		dst = dst[:total]
		var out int64
		for i := 0; i < n; i++ {
			if keep[i] != 0 {
				dst[out] = int64(i)
				out++
			}
		}
		return dst
	}
	pl.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep[i] != 0 {
				slots[i] = 1
			} else {
				slots[i] = 0
			}
		}
	})
	total := pl.ExclusiveSumInt64(p, slots)
	if int64(cap(dst)) < total {
		dst = make([]int64, total)
	}
	dst = dst[:total]
	pl.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep[i] != 0 {
				dst[slots[i]] = int64(i)
			}
		}
	})
	return dst
}

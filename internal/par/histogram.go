package par

// This file holds the striped-histogram primitives behind the
// zero-allocation contraction path: instead of one atomic fetch-and-add per
// edge into a shared counter array (which serializes on high-degree
// communities), each worker counts into its own private stripe of the
// histogram, and a parallel reduction over worker×bucket merges the stripes
// — the radix-partition pattern. The merge also yields contention-free
// per-worker write cursors for the subsequent scatter pass.

// Workers reports the worker count a static par loop over n iterations uses
// for a requested parallelism p: p clamped to [1, n], with p <= 0 selecting
// DefaultThreads. Callers sizing per-worker stripes use it to agree with
// ForWorker on the stripe count.
func Workers(p, n int) int {
	return normalize(p, n)
}

// Serial reports whether a par loop over n iterations at parallelism p runs
// on the calling goroutine. Hot kernels use it to take a closure-free serial
// path: a closure literal handed to For escapes (the goroutine path keeps
// it alive), so it heap-allocates at creation even when the loop then runs
// serially, and the zero-allocation steady state needs those sites to skip
// closure creation entirely.
func Serial(p, n int) bool {
	return n <= 0 || normalize(p, n) == 1
}

// ZeroInt64 zeroes xs with p workers. Reused scratch histograms must be
// cleared before counting into them; for large stripes the parallel clear
// matters.
func ZeroInt64(p int, xs []int64) {
	(*Pool)(nil).ZeroInt64(p, xs)
}

// ZeroInt64 is the free ZeroInt64 running on the team; a nil pool spawns.
func (pl *Pool) ZeroInt64(p int, xs []int64) {
	if Serial(p, len(xs)) {
		clear(xs)
		return
	}
	pl.For(p, len(xs), func(lo, hi int) {
		clear(xs[lo:hi])
	})
}

// MergeStripes reduces a striped histogram into dst: stripes holds workers
// consecutive stripes of length k (worker w's counter for bucket c at
// stripes[w*k+c]) and dst[c] receives Σ_w stripes[w*k+c]. The reduction is
// parallel over buckets, so no two workers write the same dst entry. dst
// entries are overwritten, not accumulated.
func MergeStripes(p int, stripes []int64, workers, k int, dst []int64) {
	(*Pool)(nil).MergeStripes(p, stripes, workers, k, dst)
}

// MergeStripes is the free MergeStripes running on the team; a nil pool
// spawns.
func (pl *Pool) MergeStripes(p int, stripes []int64, workers, k int, dst []int64) {
	if len(stripes) < workers*k {
		panic("par: MergeStripes stripe slice too short")
	}
	if len(dst) < k {
		panic("par: MergeStripes dst too short")
	}
	if Serial(p, k) {
		for c := 0; c < k; c++ {
			var s int64
			for w := 0; w < workers; w++ {
				s += stripes[w*k+c]
			}
			dst[c] = s
		}
		return
	}
	pl.For(p, k, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var s int64
			for w := 0; w < workers; w++ {
				s += stripes[w*k+c]
			}
			dst[c] = s
		}
	})
}

// StripeOffsets converts a striped histogram into per-(worker, bucket)
// exclusive write offsets and per-bucket totals: stripes[w*k+c] becomes
// Σ_{w'<w} stripes[w'*k+c] and totals[c] (when non-nil) receives the full
// per-bucket sum. A worker that counted stripes[w*k+c] items into bucket c
// may then write them at positions base(c) + stripes[w*k+c] ... without any
// synchronization, because the buckets' worker sub-ranges are disjoint.
func StripeOffsets(p int, stripes []int64, workers, k int, totals []int64) {
	(*Pool)(nil).StripeOffsets(p, stripes, workers, k, totals)
}

// StripeOffsets is the free StripeOffsets running on the team; a nil pool
// spawns.
func (pl *Pool) StripeOffsets(p int, stripes []int64, workers, k int, totals []int64) {
	if len(stripes) < workers*k {
		panic("par: StripeOffsets stripe slice too short")
	}
	if totals != nil && len(totals) < k {
		panic("par: StripeOffsets totals too short")
	}
	if Serial(p, k) {
		for c := 0; c < k; c++ {
			var run int64
			for w := 0; w < workers; w++ {
				v := stripes[w*k+c]
				stripes[w*k+c] = run
				run += v
			}
			if totals != nil {
				totals[c] = run
			}
		}
		return
	}
	pl.For(p, k, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var run int64
			for w := 0; w < workers; w++ {
				v := stripes[w*k+c]
				stripes[w*k+c] = run
				run += v
			}
			if totals != nil {
				totals[c] = run
			}
		}
	})
}

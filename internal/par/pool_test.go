package par

import (
	"sync/atomic"
	"testing"
)

// coverage checks every index in [0, n) was visited exactly once.
func checkCoverage(t *testing.T, name string, hits []int32) {
	t.Helper()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("%s: index %d visited %d times", name, i, h)
		}
	}
}

func TestPoolForCoversRange(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	for _, n := range []int{0, 1, 3, 7, 100, 1023} {
		hits := make([]int32, n)
		pl.For(4, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		checkCoverage(t, "For", hits)
	}
}

func TestPoolForDynamicCoversRange(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	for _, n := range []int{1, 5, 64, 1000} {
		for _, grain := range []int{0, 1, 7, 2048} {
			hits := make([]int32, n)
			pl.ForDynamic(4, n, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			checkCoverage(t, "ForDynamic", hits)
		}
	}
}

func TestPoolForWorkerMatchesSpawnPartition(t *testing.T) {
	// The pool's static chunking must agree exactly with the spawn-based
	// ForWorker, because striped-histogram callers count and scatter in two
	// separate loops and rely on identical worker ranges.
	pl := NewPool(4)
	defer pl.Close()
	for _, n := range []int{1, 4, 5, 97, 1000} {
		type rng struct{ lo, hi int }
		want := make([]rng, 8)
		ForWorker(4, n, func(w, lo, hi int) {
			want[w] = rng{lo, hi}
		})
		got := make([]rng, 8)
		used := pl.ForWorker(4, n, func(w, lo, hi int) {
			got[w] = rng{lo, hi}
		})
		if used != Workers(4, n) {
			t.Fatalf("n=%d: used %d workers, want %d", n, used, Workers(4, n))
		}
		for w := 0; w < used; w++ {
			if got[w] != want[w] {
				t.Fatalf("n=%d worker %d: pool range %v, spawn range %v", n, w, got[w], want[w])
			}
		}
	}
}

func TestPoolForWorkerTimes(t *testing.T) {
	pl := NewPool(2)
	defer pl.Close()
	times := make([]int64, 2)
	used := pl.ForWorkerTimes(2, 100, times, func(w, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		_ = s
	})
	for w := 0; w < used; w++ {
		if times[w] < 0 {
			t.Fatalf("worker %d: negative busy time %d", w, times[w])
		}
	}
}

func TestPoolClampsToCapacity(t *testing.T) {
	// A loop asking for more workers than the team holds runs on the team.
	pl := NewPool(2)
	defer pl.Close()
	var maxW int32
	pl.ForWorker(16, 1000, func(w, lo, hi int) {
		for {
			cur := atomic.LoadInt32(&maxW)
			if int32(w) <= cur || atomic.CompareAndSwapInt32(&maxW, cur, int32(w)) {
				return
			}
		}
	})
	if maxW > 1 {
		t.Fatalf("worker index %d observed on a 2-worker team", maxW)
	}
}

func TestPoolGrow(t *testing.T) {
	pl := NewPool(1)
	defer pl.Close()
	if pl.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", pl.Workers())
	}
	pl.Grow(4)
	if pl.Workers() != 4 {
		t.Fatalf("after Grow(4): Workers() = %d, want 4", pl.Workers())
	}
	var count int64
	pl.For(4, 1000, func(lo, hi int) {
		atomic.AddInt64(&count, int64(hi-lo))
	})
	if count != 1000 {
		t.Fatalf("grown pool covered %d of 1000 iterations", count)
	}
}

func TestNilPoolFallsBackToSpawn(t *testing.T) {
	var pl *Pool
	var count int64
	pl.For(4, 100, func(lo, hi int) {
		atomic.AddInt64(&count, int64(hi-lo))
	})
	if count != 100 {
		t.Fatalf("nil pool For covered %d of 100", count)
	}
	if pl.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", pl.Workers())
	}
	pl.Close() // must not panic
	pl.Grow(8) // must not panic
}

func TestPoolHelpersMatchFree(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()

	xs := make([]int64, 10000)
	for i := range xs {
		xs[i] = int64(i % 17)
	}
	if got, want := pl.SumInt64(4, xs), SumInt64(1, xs); got != want {
		t.Fatalf("pool SumInt64 = %d, free = %d", got, want)
	}

	scanPool := append([]int64(nil), xs...)
	scanFree := append([]int64(nil), xs...)
	tp := pl.ExclusiveSumInt64(4, scanPool)
	tf := ExclusiveSumInt64(1, scanFree)
	if tp != tf {
		t.Fatalf("pool scan total = %d, free = %d", tp, tf)
	}
	for i := range scanPool {
		if scanPool[i] != scanFree[i] {
			t.Fatalf("scan[%d]: pool %d, free %d", i, scanPool[i], scanFree[i])
		}
	}

	workers, k := 4, 100
	stripes := make([]int64, workers*k)
	for i := range stripes {
		stripes[i] = int64(i % 7)
	}
	wantDst := make([]int64, k)
	MergeStripes(1, stripes, workers, k, wantDst)
	gotDst := make([]int64, k)
	pl.MergeStripes(4, stripes, workers, k, gotDst)
	for c := 0; c < k; c++ {
		if gotDst[c] != wantDst[c] {
			t.Fatalf("MergeStripes[%d]: pool %d, free %d", c, gotDst[c], wantDst[c])
		}
	}

	keep := make([]int64, 1000)
	for i := range keep {
		if i%3 == 0 {
			keep[i] = 1
		}
	}
	want := PackIndexInto(1, len(keep), keep, nil, nil)
	got := pl.PackIndexInto(4, len(keep), keep, nil, nil)
	if len(got) != len(want) {
		t.Fatalf("PackIndexInto lengths: pool %d, free %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("PackIndexInto[%d]: pool %d, free %d", i, got[i], want[i])
		}
	}
}

func TestPoolReusableAcrossManyLoops(t *testing.T) {
	// The whole point: thousands of tiny loops on one team. Under -race this
	// also exercises the wake/done handoff heavily.
	pl := NewPool(3)
	defer pl.Close()
	var total int64
	for iter := 0; iter < 2000; iter++ {
		pl.For(3, 17, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
	}
	if total != 2000*17 {
		t.Fatalf("total = %d, want %d", total, 2000*17)
	}
}

package par

// SumInt64 returns the sum of xs computed with p workers.
func SumInt64(p int, xs []int64) int64 {
	return (*Pool)(nil).SumInt64(p, xs)
}

// SumInt64 is the free SumInt64 running on the team; a nil pool spawns.
func (pl *Pool) SumInt64(p int, xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = normalize(p, n)
	if p == 1 {
		var s int64
		for _, x := range xs {
			s += x
		}
		return s
	}
	partial := make([]int64, p)
	pl.ForWorker(p, n, func(w, lo, hi int) {
		var s int64
		for _, x := range xs[lo:hi] {
			s += x
		}
		partial[w] = s
	})
	var s int64
	for _, x := range partial {
		s += x
	}
	return s
}

// SumFloat64 returns the sum of xs computed with p workers. The combine
// order is deterministic for a fixed p (per-worker partials summed in
// worker order), so repeated runs with the same p agree bit-for-bit.
func SumFloat64(p int, xs []float64) float64 {
	return (*Pool)(nil).SumFloat64(p, xs)
}

// SumFloat64 is the free SumFloat64 running on the team; a nil pool spawns.
func (pl *Pool) SumFloat64(p int, xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = normalize(p, n)
	if p == 1 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	partial := make([]float64, p)
	pl.ForWorker(p, n, func(w, lo, hi int) {
		var s float64
		for _, x := range xs[lo:hi] {
			s += x
		}
		partial[w] = s
	})
	var s float64
	for _, x := range partial {
		s += x
	}
	return s
}

// MaxInt64 returns the maximum element of xs and its first index, computed
// with p workers. It panics on an empty slice.
func MaxInt64(p int, xs []int64) (max int64, argmax int) {
	n := len(xs)
	if n == 0 {
		panic("par: MaxInt64 of empty slice")
	}
	p = normalize(p, n)
	type pm struct {
		v int64
		i int
	}
	partial := make([]pm, p)
	ForWorker(p, n, func(w, lo, hi int) {
		best := pm{xs[lo], lo}
		for i := lo + 1; i < hi; i++ {
			if xs[i] > best.v {
				best = pm{xs[i], i}
			}
		}
		partial[w] = best
	})
	// Workers cover increasing index ranges and each keeps its first
	// maximum, so scanning partials in worker order and replacing only on a
	// strictly larger value yields the globally first argmax regardless of p.
	best := partial[0]
	for _, c := range partial[1:] {
		if c.v > best.v {
			best = c
		}
	}
	return best.v, best.i
}

// CountInt64 returns the number of elements in xs for which pred holds,
// computed with p workers.
func CountInt64(p int, xs []int64, pred func(int64) bool) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = normalize(p, n)
	partial := make([]int64, p)
	ForWorker(p, n, func(w, lo, hi int) {
		var c int64
		for _, x := range xs[lo:hi] {
			if pred(x) {
				c++
			}
		}
		partial[w] = c
	})
	var c int64
	for _, x := range partial {
		c += x
	}
	return c
}

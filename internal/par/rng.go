package par

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift-multiply, SplitMix64 by Steele, Lea and Flood). Each parallel
// worker gets its own stream derived with Split, so graph generation is
// reproducible for a fixed seed regardless of the worker count or
// interleaving.
//
// The zero RNG is valid but always starts from the same fixed stream; use
// NewRNG to seed it.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give streams
// that are statistically independent for all practical purposes.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	// Mix the seed once so that small consecutive seeds (0, 1, 2, ...) do
	// not produce visibly correlated first outputs.
	r.state = mix64(seed + 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("par: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("par: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a uniform random permutation of [0, n) as int64 labels.
func (r *RNG) Perm(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SplitSeed derives the seed for parallel stream i from a base seed. Streams
// derived from distinct i are decorrelated by the double mixing in Seed and
// mix64.
func SplitSeed(seed uint64, i int) uint64 {
	return mix64(seed ^ (0x9e3779b97f4a7c15 * (uint64(i) + 1)))
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche function on
// 64-bit words.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

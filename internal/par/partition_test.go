package par

import (
	"math/rand"
	"testing"
)

// randBuckets builds a triple-store-like bucket layout: n buckets with the
// given lengths laid out with random slack between them, mimicking the
// over-provisioned bucket storage contraction produces.
func randBuckets(r *rand.Rand, lens []int64) (start, end []int64) {
	n := len(lens)
	start = make([]int64, n)
	end = make([]int64, n)
	cur := int64(0)
	for x := 0; x < n; x++ {
		cur += int64(r.Intn(3)) // slack hole before the bucket
		start[x] = cur
		end[x] = cur + lens[x]
		cur = end[x]
	}
	return start, end
}

// bucketLayouts is the adversarial layout set shared by the partition
// property tests: uniform, empty, single mega-hub, power-law-ish, and
// all-empty degenerate cases.
func bucketLayouts(r *rand.Rand) map[string][]int64 {
	powerLaw := make([]int64, 300)
	for i := range powerLaw {
		powerLaw[i] = int64(r.Intn(4))
	}
	powerLaw[17] = 5000 // one mega-hub dwarfing everything
	powerLaw[251] = 900
	uniform := make([]int64, 256)
	for i := range uniform {
		uniform[i] = 8
	}
	hubFirst := make([]int64, 64)
	hubFirst[0] = 100000
	return map[string][]int64{
		"uniform":   uniform,
		"powerlaw":  powerLaw,
		"hub-first": hubFirst,
		"all-empty": make([]int64, 97),
		"one":       {42},
		"two-tiny":  {1, 1},
	}
}

func TestPartitionRangesTile(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for name, lens := range bucketLayouts(r) {
		start, end := randBuckets(r, lens)
		n := len(lens)
		for _, p := range []int{1, 2, 3, 7, 16, 64, 1000} {
			var pt Partition
			pt.BuildBuckets(nil, p, n, start, end)
			if pt.Items() != n {
				t.Fatalf("%s p=%d: Items = %d, want %d", name, p, pt.Items(), n)
			}
			w := pt.Workers()
			if w != Workers(p, n) {
				t.Fatalf("%s p=%d: Workers = %d, want %d", name, p, w, Workers(p, n))
			}
			// Ranges tile [0, n): bounds monotone, first 0, last n.
			prev := 0
			for i := 0; i < w; i++ {
				lo, hi := pt.Range(i)
				if lo != prev || hi < lo || hi > n {
					t.Fatalf("%s p=%d: range %d = [%d,%d) after %d", name, p, i, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("%s p=%d: ranges end at %d, want %d", name, p, prev, n)
			}
		}
	}
}

func TestPartitionRangesBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for name, lens := range bucketLayouts(r) {
		start, end := randBuckets(r, lens)
		n := len(lens)
		var maxW int64
		var total int64
		for x := 0; x < n; x++ {
			w := end[x] - start[x] + 1
			total += w
			if w > maxW {
				maxW = w
			}
		}
		for _, p := range []int{2, 3, 8, 31} {
			var pt Partition
			pt.BuildBuckets(nil, p, n, start, end)
			w := pt.Workers()
			even := total / int64(w)
			for i := 0; i < w; i++ {
				lo, hi := pt.Range(i)
				var got int64
				for x := lo; x < hi; x++ {
					got += end[x] - start[x] + 1
				}
				// Item-aligned boundaries miss the even share by less
				// than one max-weight item on each side.
				if got > even+2*maxW || (got < even-2*maxW && got != 0) {
					t.Fatalf("%s p=%d: range %d weight %d vs even %d (max item %d)",
						name, p, i, got, even, maxW)
				}
			}
		}
	}
}

func TestPartitionSpansTileEdgesExactly(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for name, lens := range bucketLayouts(r) {
		start, end := randBuckets(r, lens)
		n := len(lens)
		for _, p := range []int{1, 2, 3, 5, 13, 64} {
			var pt Partition
			pt.BuildBuckets(nil, p, n, start, end)
			if !pt.HasSpans() {
				t.Fatalf("%s p=%d: no spans after BuildBuckets", name, p)
			}
			w := pt.Workers()
			// Count how many spans cover each edge slot of each bucket.
			covered := make(map[int64]int)
			for i := 0; i < w; i++ {
				sp := pt.Span(i)
				if sp.LoV > sp.HiV || sp.LoV < 0 || sp.HiV > n {
					t.Fatalf("%s p=%d: span %d = %+v out of range", name, p, i, sp)
				}
				for x := sp.LoV; x < sp.HiV; x++ {
					elo, ehi := start[x], end[x]
					if x == sp.LoV {
						elo = sp.LoE
					}
					if x == sp.HiV-1 {
						ehi = sp.HiE
					}
					if elo < start[x] || ehi > end[x] || elo > ehi {
						t.Fatalf("%s p=%d: span %d piece of bucket %d = [%d,%d) outside [%d,%d)",
							name, p, i, x, elo, ehi, start[x], end[x])
					}
					for e := elo; e < ehi; e++ {
						covered[e]++
					}
				}
			}
			for x := 0; x < n; x++ {
				for e := start[x]; e < end[x]; e++ {
					if covered[e] != 1 {
						t.Fatalf("%s p=%d: edge %d of bucket %d covered %d times",
							name, p, e, x, covered[e])
					}
				}
			}
		}
	}
}

// Each vertex's bucket start (where per-vertex work like self-loop folding
// happens) must belong to exactly one span piece, including empty buckets.
func TestPartitionSpanVertexOwnershipUnique(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for name, lens := range bucketLayouts(r) {
		start, end := randBuckets(r, lens)
		n := len(lens)
		for _, p := range []int{1, 2, 4, 9, 32} {
			var pt Partition
			pt.BuildBuckets(nil, p, n, start, end)
			owners := make([]int, n)
			for i := 0; i < pt.Workers(); i++ {
				sp := pt.Span(i)
				for x := sp.LoV; x < sp.HiV; x++ {
					elo := start[x]
					if x == sp.LoV {
						elo = sp.LoE
					}
					if elo == start[x] {
						owners[x]++
					}
				}
			}
			for x := 0; x < n; x++ {
				if owners[x] != 1 {
					t.Fatalf("%s p=%d: bucket %d owned by %d spans", name, p, x, owners[x])
				}
			}
		}
	}
}

// The matching claim phase keeps per-vertex candidate state, so its
// schedule must never split a vertex between workers: indexed builds
// produce item-aligned ranges only, no spans.
func TestPartitionIndexedAlignedOnly(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	lens := bucketLayouts(r)["powerlaw"]
	start, end := randBuckets(r, lens)
	list := make([]int64, 0, len(lens))
	for x := range lens {
		if x%3 != 0 { // a shrunken worklist, out of step with vertex ids
			list = append(list, int64(x))
		}
	}
	for _, p := range []int{1, 2, 5, 16} {
		var pt Partition
		pt.BuildIndexed(nil, p, list, start, end)
		if pt.HasSpans() {
			t.Fatalf("p=%d: indexed build produced spans", p)
		}
		if pt.Items() != len(list) {
			t.Fatalf("p=%d: Items = %d, want %d", p, pt.Items(), len(list))
		}
		prev := 0
		for i := 0; i < pt.Workers(); i++ {
			lo, hi := pt.Range(i)
			if lo != prev {
				t.Fatalf("p=%d: range %d starts at %d, want %d", p, i, lo, prev)
			}
			prev = hi
		}
		if prev != len(list) {
			t.Fatalf("p=%d: ranges end at %d, want %d", p, prev, len(list))
		}
	}
}

func TestPartitionBuildWeightsTile(t *testing.T) {
	weights := []int64{0, 5, 0, 0, 100, 1, 2, 0, 3}
	for _, p := range []int{1, 2, 3, 4, 100} {
		var pt Partition
		pt.BuildWeights(nil, p, len(weights), weights)
		prev := 0
		for i := 0; i < pt.Workers(); i++ {
			lo, hi := pt.Range(i)
			if lo != prev || hi < lo {
				t.Fatalf("p=%d: range %d = [%d,%d) after %d", p, i, lo, hi, prev)
			}
			prev = hi
		}
		if prev != len(weights) {
			t.Fatalf("p=%d: ranges end at %d, want %d", p, prev, len(weights))
		}
		var wantTotal int64
		for _, w := range weights {
			wantTotal += w + 1
		}
		if pt.TotalWeight() != wantTotal {
			t.Fatalf("p=%d: TotalWeight = %d, want %d", p, pt.TotalWeight(), wantTotal)
		}
	}
}

// A Partition is level-scratch: rebuilding over different sizes and worker
// counts must reuse storage and stay correct, and Reset must invalidate.
func TestPartitionRebuildAndReset(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var pt Partition
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(200)
		lens := make([]int64, n)
		for i := range lens {
			lens[i] = int64(r.Intn(50))
		}
		start, end := randBuckets(r, lens)
		p := 1 + r.Intn(8)
		pt.BuildBuckets(nil, p, n, start, end)
		if pt.Items() != n || !pt.HasSpans() {
			t.Fatalf("trial %d: rebuild broken: items=%d spans=%v", trial, pt.Items(), pt.HasSpans())
		}
		var total int64
		for x := 0; x < n; x++ {
			total += end[x] - start[x] + 1
		}
		if pt.TotalWeight() != total {
			t.Fatalf("trial %d: TotalWeight = %d, want %d", trial, pt.TotalWeight(), total)
		}
	}
	pt.Reset()
	if pt.Items() != 0 || pt.Workers() != 0 || pt.HasSpans() {
		t.Fatalf("Reset left partition live: %+v", pt)
	}
}

// The parallel prefix path (n >= 4096 inside ExclusiveSumInt64) must agree
// with the serial one.
func TestPartitionLargeParallelPrefix(t *testing.T) {
	n := 10000
	lens := make([]int64, n)
	r := rand.New(rand.NewSource(7))
	for i := range lens {
		lens[i] = int64(r.Intn(16))
	}
	lens[123] = 100000
	start, end := randBuckets(r, lens)
	var serial, parallel Partition
	serial.BuildBuckets(nil, 1, n, start, end)
	parallel.BuildBuckets(nil, 8, n, start, end)
	var total int64
	for x := 0; x < n; x++ {
		total += end[x] - start[x] + 1
	}
	if serial.TotalWeight() != total || parallel.TotalWeight() != total {
		t.Fatalf("TotalWeight serial=%d parallel=%d want %d",
			serial.TotalWeight(), parallel.TotalWeight(), total)
	}
	// Spans of the parallel build still tile all edges exactly.
	var sum int64
	for i := 0; i < parallel.Workers(); i++ {
		sp := parallel.Span(i)
		for x := sp.LoV; x < sp.HiV; x++ {
			elo, ehi := start[x], end[x]
			if x == sp.LoV {
				elo = sp.LoE
			}
			if x == sp.HiV-1 {
				ehi = sp.HiE
			}
			sum += ehi - elo
		}
	}
	if sum != total-int64(n) {
		t.Fatalf("span edge total = %d, want %d", sum, total-int64(n))
	}
}

func TestPartitionAlignedImbalance(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for name, lens := range bucketLayouts(r) {
		start, end := randBuckets(r, lens)
		n := len(lens)
		var total, maxW int64
		for x := 0; x < n; x++ {
			w := end[x] - start[x] + 1
			total += w
			if w > maxW {
				maxW = w
			}
		}
		for _, p := range []int{1, 2, 3, 8, 31} {
			var pt Partition
			pt.BuildBuckets(nil, p, n, start, end)
			got := pt.AlignedImbalance()
			if got < 1 {
				t.Fatalf("%s p=%d: imbalance %v below 1", name, p, got)
			}
			// Brute-force the heaviest worker from Range.
			w := pt.Workers()
			var heaviest int64
			for i := 0; i < w; i++ {
				lo, hi := pt.Range(i)
				var wt int64
				for x := lo; x < hi; x++ {
					wt += end[x] - start[x] + 1
				}
				if wt > heaviest {
					heaviest = wt
				}
			}
			want := float64(heaviest) * float64(w) / float64(total)
			if got != want {
				t.Fatalf("%s p=%d: imbalance %v, brute force %v", name, p, got, want)
			}
			// The analytic whole-bucket bound: a schedule that never splits
			// a bucket cannot beat max(1, maxW*w/total).
			bound := float64(maxW) * float64(w) / float64(total)
			if bound < 1 {
				bound = 1
			}
			if got+1e-9 < bound {
				t.Fatalf("%s p=%d: imbalance %v beats analytic bound %v", name, p, got, bound)
			}
		}
	}
	var empty Partition
	if got := empty.AlignedImbalance(); got != 0 {
		t.Fatalf("empty partition imbalance %v, want 0", got)
	}
}

package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/scoring"
)

func TestFromResultAndRoundTrip(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 1))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	opt := core.Options{Threads: 2, MinCoverage: 0.5, Recorder: rec}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("lj-sim-800", g, opt, res)
	run.Meta = CollectMeta()
	run.Obs = rec.Export()
	if run.Graph.Name != "lj-sim-800" || run.Graph.Vertices != 800 {
		t.Fatalf("graph info %+v", run.Graph)
	}
	if run.Options.Scorer != "modularity" || run.Options.Matching != "worklist" {
		t.Fatalf("options %+v", run.Options)
	}
	if len(run.Phases) != len(res.Stats) {
		t.Fatalf("%d phases recorded for %d stats", len(run.Phases), len(res.Stats))
	}
	if run.Summary.Communities != res.NumCommunities ||
		math.Abs(run.Summary.Modularity-res.FinalModularity) > 1e-12 {
		t.Fatalf("summary %+v", run.Summary)
	}
	if run.Summary.TotalSec <= 0 || run.Summary.EdgesPerSec <= 0 {
		t.Fatalf("timings %+v", run.Summary)
	}

	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"termination"`) {
		t.Fatalf("JSON missing fields: %s", buf.String()[:200])
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary.Communities != run.Summary.Communities ||
		back.Graph.Edges != run.Graph.Edges ||
		len(back.Phases) != len(run.Phases) {
		t.Fatal("round trip changed the run")
	}
	if back.Meta == nil || back.Meta.GoVersion == "" || back.Meta.NumCPU < 1 {
		t.Fatalf("meta did not survive the round trip: %+v", back.Meta)
	}
	if back.Obs == nil || back.Obs.Phases != len(res.Stats) || len(back.Obs.Kernels) == 0 {
		t.Fatalf("obs profile did not survive the round trip: %+v", back.Obs)
	}
	// The recorded kernel spans must roughly agree with the engine's own
	// per-phase timings (same intervals, measured a frame apart).
	var kernelSec float64
	for _, k := range back.Obs.Kernels {
		kernelSec += k.Seconds
	}
	var statSec float64
	for _, ph := range run.Phases {
		statSec += ph.ScoreSec + ph.MatchSec + ph.ContractSec
	}
	if kernelSec < statSec*0.5 || kernelSec > statSec*2+0.01 {
		t.Fatalf("kernel span seconds %v disagree with phase stats %v", kernelSec, statSec)
	}
}

func TestInfo(t *testing.T) {
	g := gen.CliqueChain(3, 4)
	info := Info("chain", g)
	if info.Name != "chain" || info.Vertices != g.NumVertices() ||
		info.Edges != g.NumEdges() || info.Weight != g.TotalWeight(1) {
		t.Fatalf("Info = %+v", info)
	}
}

func TestCollectMeta(t *testing.T) {
	m := CollectMeta()
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("meta = %+v", m)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("accepted bad JSON")
	}
}

func TestFromResultCustomScorerName(t *testing.T) {
	g := gen.CliqueChain(3, 4)
	opt := core.Options{Threads: 1, Scorer: namedScorer{}}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("chain", g, opt, res)
	if run.Options.Scorer != "custom" {
		t.Fatalf("scorer name %q", run.Options.Scorer)
	}
}

// namedScorer overrides only the name; scoring behavior is modularity's.
type namedScorer struct{ scoring.Modularity }

func (namedScorer) Name() string { return "custom" }

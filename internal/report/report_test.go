package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/scoring"
)

func TestFromResultAndRoundTrip(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Threads: 2, MinCoverage: 0.5}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("lj-sim-800", g, opt, res)
	if run.Graph.Name != "lj-sim-800" || run.Graph.Vertices != 800 {
		t.Fatalf("graph info %+v", run.Graph)
	}
	if run.Options.Scorer != "modularity" || run.Options.Matching != "worklist" {
		t.Fatalf("options %+v", run.Options)
	}
	if len(run.Phases) != len(res.Stats) {
		t.Fatalf("%d phases recorded for %d stats", len(run.Phases), len(res.Stats))
	}
	if run.Summary.Communities != res.NumCommunities ||
		math.Abs(run.Summary.Modularity-res.FinalModularity) > 1e-12 {
		t.Fatalf("summary %+v", run.Summary)
	}
	if run.Summary.TotalSec <= 0 || run.Summary.EdgesPerSec <= 0 {
		t.Fatalf("timings %+v", run.Summary)
	}

	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"termination"`) {
		t.Fatalf("JSON missing fields: %s", buf.String()[:200])
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary.Communities != run.Summary.Communities ||
		back.Graph.Edges != run.Graph.Edges ||
		len(back.Phases) != len(run.Phases) {
		t.Fatal("round trip changed the run")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("accepted bad JSON")
	}
}

func TestFromResultCustomScorerName(t *testing.T) {
	g := gen.CliqueChain(3, 4)
	opt := core.Options{Threads: 1, Scorer: namedScorer{}}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("chain", g, opt, res)
	if run.Options.Scorer != "custom" {
		t.Fatalf("scorer name %q", run.Options.Scorer)
	}
}

// namedScorer overrides only the name; scoring behavior is modularity's.
type namedScorer struct{ scoring.Modularity }

func (namedScorer) Name() string { return "custom" }

package report

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/scoring"
)

func TestFromResultAndRoundTrip(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 1))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	opt := core.Options{Threads: 2, MinCoverage: 0.5, Recorder: rec}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("lj-sim-800", g, opt, res)
	run.Meta = CollectMeta()
	run.Obs = rec.Export()
	if run.Graph.Name != "lj-sim-800" || run.Graph.Vertices != 800 {
		t.Fatalf("graph info %+v", run.Graph)
	}
	if run.Options.Scorer != "modularity" || run.Options.Matching != "worklist" {
		t.Fatalf("options %+v", run.Options)
	}
	if len(run.Phases) != len(res.Stats) {
		t.Fatalf("%d phases recorded for %d stats", len(run.Phases), len(res.Stats))
	}
	if run.Summary.Communities != res.NumCommunities ||
		math.Abs(run.Summary.Modularity-res.FinalModularity) > 1e-12 {
		t.Fatalf("summary %+v", run.Summary)
	}
	if run.Summary.TotalSec <= 0 || run.Summary.EdgesPerSec <= 0 {
		t.Fatalf("timings %+v", run.Summary)
	}

	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"termination"`) {
		t.Fatalf("JSON missing fields: %s", buf.String()[:200])
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary.Communities != run.Summary.Communities ||
		back.Graph.Edges != run.Graph.Edges ||
		len(back.Phases) != len(run.Phases) {
		t.Fatal("round trip changed the run")
	}
	if back.Meta == nil || back.Meta.GoVersion == "" || back.Meta.NumCPU < 1 {
		t.Fatalf("meta did not survive the round trip: %+v", back.Meta)
	}
	if back.Obs == nil || back.Obs.Phases != len(res.Stats) || len(back.Obs.Kernels) == 0 {
		t.Fatalf("obs profile did not survive the round trip: %+v", back.Obs)
	}
	// The recorded kernel spans must roughly agree with the engine's own
	// per-phase timings (same intervals, measured a frame apart).
	var kernelSec float64
	for _, k := range back.Obs.Kernels {
		kernelSec += k.Seconds
	}
	var statSec float64
	for _, ph := range run.Phases {
		statSec += ph.ScoreSec + ph.MatchSec + ph.ContractSec
	}
	if kernelSec < statSec*0.5 || kernelSec > statSec*2+0.01 {
		t.Fatalf("kernel span seconds %v disagree with phase stats %v", kernelSec, statSec)
	}
}

func TestInfo(t *testing.T) {
	g := gen.CliqueChain(3, 4)
	info := Info("chain", g)
	if info.Name != "chain" || info.Vertices != g.NumVertices() ||
		info.Edges != g.NumEdges() || info.Weight != g.TotalWeight(1) {
		t.Fatalf("Info = %+v", info)
	}
}

func TestCollectMeta(t *testing.T) {
	m := CollectMeta()
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("meta = %+v", m)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("accepted bad JSON")
	}
}

func TestFromResultCustomScorerName(t *testing.T) {
	g := gen.CliqueChain(3, 4)
	opt := core.Options{Threads: 1, Scorer: namedScorer{}}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("chain", g, opt, res)
	if run.Options.Scorer != "custom" {
		t.Fatalf("scorer name %q", run.Options.Scorer)
	}
}

// namedScorer overrides only the name; scoring behavior is modularity's.
type namedScorer struct{ scoring.Modularity }

func (namedScorer) Name() string { return "custom" }

func TestManifestAppendAndRead(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(600, 3))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	led := obs.NewLedger()
	opt := core.Options{Threads: 2, Recorder: rec, Ledger: led}
	res, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("lj-sim-600", g, opt, res)
	run.Meta = CollectMeta()
	run.Obs = rec.Export()
	run.AttachLedger(led)
	if len(run.Levels) == 0 || len(run.Levels) != led.NumLevels() {
		t.Fatalf("run carries %d levels, ledger has %d", len(run.Levels), led.NumLevels())
	}

	path := filepath.Join(t.TempDir(), "results", "ledger.jsonl")
	m := ManifestFromRun(run)
	if m.Kind != "run" || m.Summary == nil || len(m.Levels) != len(run.Levels) {
		t.Fatalf("manifest %+v", m)
	}
	if len(m.Kernels) == 0 {
		t.Fatal("manifest missing kernel seconds")
	}
	// Two appends accumulate two parseable lines (and MkdirAll creates the
	// results/ directory on first use).
	if err := AppendManifest(path, m); err != nil {
		t.Fatal(err)
	}
	if err := AppendManifest(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, skipped, err := ReadManifests(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || skipped != 0 {
		t.Fatalf("read %d manifests (%d skipped), want 2 clean", len(ms), skipped)
	}
	for _, got := range ms {
		if got.Graph.Vertices != 600 || got.Summary.Communities != res.NumCommunities {
			t.Fatalf("manifest round trip changed the run: %+v", got)
		}
		if len(got.Levels) != len(run.Levels) {
			t.Fatalf("manifest lost levels: %d vs %d", len(got.Levels), len(run.Levels))
		}
	}
	// Each line is standalone JSON: jq/grep-ability is the point.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("file holds %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var one Manifest
		if err := json.Unmarshal([]byte(ln), &one); err != nil {
			t.Fatalf("line not standalone JSON: %v", err)
		}
	}
}

// TestReadManifestsTornLine is the satellite regression test: a manifest
// file whose trailing line was torn mid-write (interrupted O_APPEND on the
// crash path) must still yield every intact record, reporting the torn line
// as skipped instead of failing the file.
func TestReadManifestsTornLine(t *testing.T) {
	good := &Manifest{Kind: "run", Graph: GraphInfo{Name: "torn-test", Vertices: 10, Edges: 20}}
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := AppendManifest(path, good); err != nil {
		t.Fatal(err)
	}
	if err := AppendManifest(path, good); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-record: a complete second line, then a prefix of a
	// third with no terminator — exactly what an interrupted append leaves.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(full, []byte(`{"kind":"run","time":"2026-01-0`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ms, skipped, err := ReadManifestFile(path)
	if err != nil {
		t.Fatalf("torn file failed outright: %v", err)
	}
	if len(ms) != 2 || skipped != 1 {
		t.Fatalf("torn file: %d manifests, %d skipped; want 2 and 1", len(ms), skipped)
	}
	for _, m := range ms {
		if m.Graph.Name != "torn-test" {
			t.Fatalf("intact record corrupted: %+v", m)
		}
	}

	// A torn line mid-file (a crashed writer racing a healthy one) resyncs
	// on the next newline and still yields the later intact records.
	lines := bytes.SplitAfter(full, []byte("\n"))
	mid := append([]byte(`{"kind":"partial","graph":`+"\n"), bytes.Join(lines, nil)...)
	if err := os.WriteFile(path, mid, 0o644); err != nil {
		t.Fatal(err)
	}
	ms, skipped, err = ReadManifestFile(path)
	if err != nil || len(ms) != 2 || skipped != 1 {
		t.Fatalf("mid-file tear: %d manifests, %d skipped (err %v); want 2 and 1", len(ms), skipped, err)
	}
}

func TestAttachLedgerNil(t *testing.T) {
	var run Run
	run.AttachLedger(nil)
	if run.Levels != nil || run.Warnings != nil {
		t.Fatal("nil ledger attached data")
	}
}

// Package report serializes detection runs as JSON so experiments can be
// archived and post-processed (plotting Figure 1/2/3-style series, diffing
// quality across code versions) without scraping log text.
package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Run is one detection run, flattened for JSON.
type Run struct {
	Graph    GraphInfo `json:"graph"`
	Options  Options   `json:"options"`
	Phases   []Phase   `json:"phases"`
	Summary  Summary   `json:"summary"`
	Recorded time.Time `json:"recorded,omitempty"`
	// Meta describes the machine and build that produced the run, so
	// archived runs stay comparable across hosts and revisions.
	Meta *Meta `json:"meta,omitempty"`
	// Obs carries the kernel-level observability profile when the run was
	// recorded with an obs.Recorder: per-kernel seconds, matching and
	// contraction counters, the bucket-occupancy histogram, worker-imbalance
	// regions, and the span timeline.
	Obs *obs.Profile `json:"obs,omitempty"`
	// Levels and Warnings carry the convergence ledger when the run was
	// recorded with an obs.Ledger: one row per contraction level plus any
	// flagged anomalies.
	Levels   []obs.LevelStats `json:"levels,omitempty"`
	Warnings []obs.Warning    `json:"warnings,omitempty"`
}

// AttachLedger copies the ledger's rows and warnings into the run; a nil or
// empty ledger leaves the run unchanged.
func (r *Run) AttachLedger(l *obs.Ledger) {
	if p := l.Export(); p != nil {
		r.Levels = p.Levels
		r.Warnings = p.Warnings
	}
}

// GraphInfo identifies the workload. It doubles as the harness's Table II
// row type (harness.GraphInfo aliases it), keeping one definition of the
// graph summary across the reporting layers.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int64  `json:"vertices"`
	Edges    int64  `json:"edges"`
	Weight   int64  `json:"total_weight"`
}

// Info summarizes a graph as a GraphInfo row.
func Info(name string, g *graph.Graph) GraphInfo {
	return GraphInfo{
		Name:     name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Weight:   g.TotalWeight(0),
	}
}

// Meta captures the execution environment of a run.
type Meta struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	GitRevision string `json:"git_revision,omitempty"`
	GitModified bool   `json:"git_modified,omitempty"`
}

// CollectMeta snapshots the current process's environment. The git revision
// comes from the build info stamped into binaries built from a checkout
// (`vcs.revision`); it is empty under `go test` or a non-VCS build.
func CollectMeta() *Meta {
	m := &Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitModified = s.Value == "true"
			}
		}
	}
	return m
}

// Options mirrors the engine configuration that produced the run.
type Options struct {
	Threads     int    `json:"threads"`
	Scorer      string `json:"scorer"`
	Matching    string `json:"matching"`
	Contraction string `json:"contraction"`
	// Engine names the detection pipeline (matching/plp/ensemble); the PLP
	// knobs are recorded only when an engine that reads them is selected.
	Engine string `json:"engine"`
	// Shards is the sharded-detection fan-out, 0 for single-image runs. Set
	// by the sharded CLI path (core.ShardOptions, not core.Options, carries
	// it); part of the doctor's baseline key, since per-shard kernels time
	// very differently from the single-image ones.
	Shards           int     `json:"shards,omitempty"`
	PLPMaxSweeps     int     `json:"plp_max_sweeps,omitempty"`
	PLPThreshold     float64 `json:"plp_threshold,omitempty"`
	MinCoverage      float64 `json:"min_coverage,omitempty"`
	MaxPhases        int     `json:"max_phases,omitempty"`
	MinCommunities   int64   `json:"min_communities,omitempty"`
	MaxCommunitySize int64   `json:"max_community_size,omitempty"`
	RefineEveryPhase bool    `json:"refine_every_phase,omitempty"`
}

// OptionsOf mirrors a core.Options into its serialized form.
func OptionsOf(opt core.Options) Options {
	scorer := "modularity"
	if opt.Scorer != nil {
		scorer = opt.Scorer.Name()
	}
	o := Options{
		Threads:          opt.Threads,
		Scorer:           scorer,
		Matching:         opt.Matching.String(),
		Contraction:      opt.Contraction.String(),
		Engine:           opt.Engine.String(),
		MinCoverage:      opt.MinCoverage,
		MaxPhases:        opt.MaxPhases,
		MinCommunities:   opt.MinCommunities,
		MaxCommunitySize: opt.MaxCommunitySize,
		RefineEveryPhase: opt.RefineEveryPhase,
	}
	if opt.Engine != core.EngineMatching {
		o.PLPMaxSweeps = opt.PLPMaxSweeps
		o.PLPThreshold = opt.PLPThreshold
	}
	return o
}

// Phase mirrors core.PhaseStats with times in seconds.
type Phase struct {
	Phase        int     `json:"phase"`
	Vertices     int64   `json:"vertices"`
	Edges        int64   `json:"edges"`
	Coverage     float64 `json:"coverage"`
	Modularity   float64 `json:"modularity"`
	MatchedPairs int64   `json:"matched_pairs"`
	MatchPasses  int     `json:"match_passes"`
	ScoreSec     float64 `json:"score_sec"`
	MatchSec     float64 `json:"match_sec"`
	ContractSec  float64 `json:"contract_sec"`
}

// Summary mirrors the final result.
type Summary struct {
	Communities int64   `json:"communities"`
	Coverage    float64 `json:"coverage"`
	Modularity  float64 `json:"modularity"`
	Termination string  `json:"termination"`
	TotalSec    float64 `json:"total_sec"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	// Quality duplicates the metrics summary for convenience.
	MeanConductance float64 `json:"mean_conductance"`
	MinSize         int64   `json:"min_size"`
	MedianSize      int64   `json:"median_size"`
	MaxSize         int64   `json:"max_size"`
}

// FromResult assembles a Run from a finished detection.
func FromResult(name string, g *graph.Graph, opt core.Options, res *core.Result) *Run {
	run := &Run{
		Graph: GraphInfo{
			Name:     name,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			Weight:   g.TotalWeight(opt.Threads),
		},
		Options: OptionsOf(opt),
	}
	for _, st := range res.Stats {
		run.Phases = append(run.Phases, Phase{
			Phase:        st.Phase,
			Vertices:     st.Vertices,
			Edges:        st.Edges,
			Coverage:     st.Coverage,
			Modularity:   st.Modularity,
			MatchedPairs: st.MatchedPairs,
			MatchPasses:  st.MatchPasses,
			ScoreSec:     st.ScoreTime.Seconds(),
			MatchSec:     st.MatchTime.Seconds(),
			ContractSec:  st.ContractTime.Seconds(),
		})
	}
	sum := metrics.Evaluate(opt.Threads, g, res.CommunityOf, res.NumCommunities)
	run.Summary = Summary{
		Communities:     res.NumCommunities,
		Coverage:        res.FinalCoverage,
		Modularity:      res.FinalModularity,
		Termination:     string(res.Termination),
		TotalSec:        res.Total.Seconds(),
		EdgesPerSec:     float64(g.NumEdges()) / res.Total.Seconds(),
		MeanConductance: sum.MeanConductance,
		MinSize:         sum.MinSize,
		MedianSize:      sum.MedianSize,
		MaxSize:         sum.MaxSize,
	}
	return run
}

// WriteJSON writes the run as indented JSON.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a run written by WriteJSON.
func ReadJSON(r io.Reader) (*Run, error) {
	var run Run
	if err := json.NewDecoder(r).Decode(&run); err != nil {
		return nil, err
	}
	return &run, nil
}

// Manifest is one self-contained run record for the results/ archive: enough
// environment (host, git revision via the stamped build info), configuration
// (full engine options), and outcome (summary, per-level convergence rows,
// kernel seconds) to reproduce and compare the run without any other file.
// Manifests append as single JSON lines so one file accumulates a series and
// stays greppable/jq-able.
type Manifest struct {
	// Kind is "run" for a completed detection or "partial" for a manifest
	// flushed by a panic/interrupt handler before the run finished.
	Kind     string              `json:"kind"`
	Time     time.Time           `json:"time"`
	Host     *Meta               `json:"host,omitempty"`
	Graph    GraphInfo           `json:"graph"`
	Options  Options             `json:"options"`
	Summary  *Summary            `json:"summary,omitempty"`
	Levels   []obs.LevelStats    `json:"levels,omitempty"`
	Warnings []obs.Warning       `json:"warnings,omitempty"`
	Kernels  []obs.KernelSeconds `json:"kernel_seconds,omitempty"`
	// Latencies carries the run's per-class latency-histogram snapshots
	// (quantiles + cumulative buckets), same shape as the Prometheus export.
	Latencies []obs.LatencyProfile `json:"latencies,omitempty"`
	// Allocs is the run's heap-allocation footprint when the recorder
	// sampled it — one of the doctor's baseline drift metrics.
	Allocs *obs.AllocStats `json:"allocs,omitempty"`
	// Verdict is the run doctor's end-of-run assessment against the learned
	// baseline, absent when no doctor ran.
	Verdict *obs.Verdict `json:"verdict,omitempty"`
}

// ManifestFromRun assembles a completed run's manifest.
func ManifestFromRun(run *Run) *Manifest {
	sum := run.Summary
	return &Manifest{
		Kind:      "run",
		Time:      time.Now().UTC(),
		Host:      run.Meta,
		Graph:     run.Graph,
		Options:   run.Options,
		Summary:   &sum,
		Levels:    run.Levels,
		Warnings:  run.Warnings,
		Kernels:   kernelsOf(run.Obs),
		Latencies: latenciesOf(run.Obs),
		Allocs:    allocsOf(run.Obs),
	}
}

func kernelsOf(p *obs.Profile) []obs.KernelSeconds {
	if p == nil {
		return nil
	}
	return p.Kernels
}

func latenciesOf(p *obs.Profile) []obs.LatencyProfile {
	if p == nil {
		return nil
	}
	return p.Latencies
}

func allocsOf(p *obs.Profile) *obs.AllocStats {
	if p == nil {
		return nil
	}
	return p.Allocs
}

// AppendManifest writes m as one compact JSON line at the end of path,
// creating the file (and its directory) if needed. The O_APPEND single-write
// discipline keeps concurrent runs from interleaving within a line.
func AppendManifest(path string, m *Manifest) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifests parses every manifest line in r. A line that is not valid
// JSON — the crash-path O_APPEND write can be interrupted mid-line, leaving
// a torn record (typically the last line, but resync continues either way)
// — is skipped and counted rather than failing the whole file: one bad
// write must not make an archive of good runs unreadable. The error return
// is reserved for I/O failures on r itself.
func ReadManifests(r io.Reader) (ms []*Manifest, skipped int, err error) {
	// Line-oriented reading, not a json.Decoder: the decoder cannot resync
	// past a malformed record, while the append discipline guarantees every
	// intact record is exactly one '\n'-terminated line. ReadBytes (not a
	// Scanner) because manifest lines carry whole convergence ledgers and
	// routinely exceed any fixed token-size guess.
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var m Manifest
			if json.Unmarshal(line, &m) == nil {
				ms = append(ms, &m)
			} else {
				skipped++
			}
		}
		if rerr == io.EOF {
			return ms, skipped, nil
		}
		if rerr != nil {
			return ms, skipped, rerr
		}
	}
}

// ReadManifestFile opens path and parses it with ReadManifests.
func ReadManifestFile(path string) (ms []*Manifest, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadManifests(f)
}

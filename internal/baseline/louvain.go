package baseline

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// LouvainResult is the outcome of a Louvain run.
type LouvainResult struct {
	CommunityOf    []int64
	NumCommunities int64
	Modularity     float64
	// Levels is the number of coarsening levels performed.
	Levels int
}

// Louvain runs the sequential multilevel method of Blondel et al. ([17] in
// the paper): repeated local vertex moves to the neighboring community with
// the largest modularity gain, followed by graph coarsening, until no move
// improves modularity. The paper cites it as the related approach that
// "does not use matchings and has not been designed with parallelism in
// mind"; here it is the quality upper-bound comparator.
func Louvain(g *graph.Graph, seed uint64) *LouvainResult {
	res := &LouvainResult{}
	n := g.NumVertices()
	res.CommunityOf = make([]int64, n)
	for i := range res.CommunityOf {
		res.CommunityOf[i] = int64(i)
	}
	if n == 0 {
		return res
	}
	m := float64(g.TotalWeight(1))
	if m == 0 {
		res.NumCommunities = n
		return res
	}

	cur := g
	rng := par.NewRNG(seed)
	for {
		moved, comm, k := louvainLevel(cur, m, rng)
		if !moved {
			break
		}
		res.Levels++
		// Fold the level's assignment into the global one.
		for v := int64(0); v < n; v++ {
			res.CommunityOf[v] = comm[res.CommunityOf[v]]
		}
		cur = coarsen(cur, comm, k)
		if cur.NumVertices() == 1 {
			break
		}
	}

	// Dense relabel and final modularity.
	label := make(map[int64]int64)
	for v := int64(0); v < n; v++ {
		id, ok := label[res.CommunityOf[v]]
		if !ok {
			id = int64(len(label))
			label[res.CommunityOf[v]] = id
		}
		res.CommunityOf[v] = id
	}
	res.NumCommunities = int64(len(label))
	res.Modularity = PartitionModularity(g, res.CommunityOf, res.NumCommunities)
	return res
}

// louvainLevel runs local moving on cur until a full sweep makes no move.
// It returns whether anything moved, the vertex→community map (community
// ids dense in [0, k)), and k.
func louvainLevel(cur *graph.Graph, m float64, rng *par.RNG) (bool, []int64, int64) {
	n := cur.NumVertices()
	c := graph.ToCSR(1, cur)
	comm := make([]int64, n)
	vol := make([]int64, n) // community volume
	deg := cur.WeightedDegrees(1)
	for v := int64(0); v < n; v++ {
		comm[v] = v
		vol[v] = deg[v]
	}
	order := rng.Perm(int(n))
	movedAny := false
	// neighborW accumulates edge weight from v to each adjacent community.
	neighborW := make(map[int64]int64)
	for {
		movedThisSweep := false
		for _, v := range order {
			cv := comm[v]
			adj, wgt := c.Neighbors(v)
			clear(neighborW)
			for i, u := range adj {
				neighborW[comm[u]] += wgt[i]
			}
			// Remove v from its community.
			vol[cv] -= deg[v]
			// Gain of joining community d: w(v→d)/m − deg_v·vol_d/(2m²).
			best := cv
			bestGain := float64(neighborW[cv])/m - float64(deg[v])*float64(vol[cv])/(2*m*m)
			for d, w := range neighborW {
				gain := float64(w)/m - float64(deg[v])*float64(vol[d])/(2*m*m)
				// Deterministic tie-break toward the smaller id: map
				// iteration order is random and oscillation must not depend
				// on it.
				if gain > bestGain+1e-15 || (gain > bestGain-1e-15 && d < best) {
					best, bestGain = d, gain
				}
			}
			vol[best] += deg[v]
			if best != cv {
				comm[v] = best
				movedThisSweep = true
				movedAny = true
			}
		}
		if !movedThisSweep {
			break
		}
	}
	// Dense ids.
	label := make(map[int64]int64)
	for v := int64(0); v < n; v++ {
		id, ok := label[comm[v]]
		if !ok {
			id = int64(len(label))
			label[comm[v]] = id
		}
		comm[v] = id
	}
	return movedAny, comm, int64(len(label))
}

// coarsen builds the community graph induced by comm (ids dense in [0, k)).
func coarsen(cur *graph.Graph, comm []int64, k int64) *graph.Graph {
	ng := graph.NewEmpty(k)
	var edges []graph.Edge
	cur.ForEachEdge(func(_ int64, u, v, w int64) {
		cu, cv := comm[u], comm[v]
		if cu == cv {
			ng.Self[cu] += w
		} else {
			edges = append(edges, graph.Edge{U: cu, V: cv, W: w})
		}
	})
	for x := int64(0); x < cur.NumVertices(); x++ {
		ng.Self[comm[x]] += cur.Self[x]
	}
	out := graph.MustBuild(1, k, edges)
	for x := int64(0); x < k; x++ {
		out.Self[x] = ng.Self[x]
	}
	return out
}

// PartitionModularity evaluates Newman–Girvan modularity of an arbitrary
// partition of g (community ids dense in [0, k)).
func PartitionModularity(g *graph.Graph, comm []int64, k int64) float64 {
	m := float64(g.TotalWeight(1))
	if m == 0 {
		return 0
	}
	internal := make([]int64, k)
	vol := make([]int64, k)
	deg := g.WeightedDegrees(1)
	for x := int64(0); x < g.NumVertices(); x++ {
		internal[comm[x]] += g.Self[x]
		vol[comm[x]] += deg[x]
	}
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		if comm[u] == comm[v] {
			internal[comm[u]] += w
		}
	})
	var q float64
	for c := int64(0); c < k; c++ {
		d := float64(vol[c]) / (2 * m)
		q += float64(internal[c])/m - d*d
	}
	return q
}

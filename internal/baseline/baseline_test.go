package baseline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func checkPartition(t *testing.T, name string, comm []int64, k int64) {
	t.Helper()
	seen := make([]bool, k)
	for v, c := range comm {
		if c < 0 || c >= k {
			t.Fatalf("%s: vertex %d community %d outside [0,%d)", name, v, c, k)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("%s: community %d empty", name, c)
		}
	}
}

func TestCNMCliqueChain(t *testing.T) {
	g := gen.CliqueChain(4, 6)
	res := CNM(g)
	checkPartition(t, "cnm", res.CommunityOf, res.NumCommunities)
	if res.NumCommunities != 4 {
		t.Fatalf("CNM found %d communities, want 4", res.NumCommunities)
	}
	for c := int64(0); c < 4; c++ {
		first := res.CommunityOf[c*6]
		for i := int64(1); i < 6; i++ {
			if res.CommunityOf[c*6+i] != first {
				t.Fatalf("clique %d split", c)
			}
		}
	}
	if got := PartitionModularity(g, res.CommunityOf, res.NumCommunities); math.Abs(got-res.Modularity) > 1e-9 {
		t.Fatalf("reported modularity %v, recomputed %v", res.Modularity, got)
	}
}

func TestCNMKarateBand(t *testing.T) {
	res := CNM(gen.Karate())
	// CNM on karate is known to reach Q ≈ 0.38.
	if res.Modularity < 0.35 || res.Modularity > 0.42 {
		t.Fatalf("CNM karate modularity %v outside [0.35, 0.42]", res.Modularity)
	}
	if res.NumCommunities < 2 || res.NumCommunities > 6 {
		t.Fatalf("CNM karate found %d communities", res.NumCommunities)
	}
}

func TestCNMDegenerate(t *testing.T) {
	res := CNM(graph.NewEmpty(0))
	if res.NumCommunities != 0 {
		t.Fatal("empty graph")
	}
	res = CNM(graph.NewEmpty(4))
	if res.NumCommunities != 4 || res.Merges != 0 {
		t.Fatalf("isolated vertices: %d communities, %d merges", res.NumCommunities, res.Merges)
	}
	// Two vertices one edge: merging beats two singletons.
	g := graph.MustBuild(1, 2, []graph.Edge{{U: 0, V: 1, W: 1}})
	res = CNM(g)
	if res.NumCommunities != 1 {
		t.Fatalf("single edge: %d communities, want 1", res.NumCommunities)
	}
}

func TestCNMNeverNegativeDelta(t *testing.T) {
	// CNM must stop at its modularity peak: final Q >= Q of singletons.
	r := par.NewRNG(12)
	for trial := 0; trial < 10; trial++ {
		n := int64(20 + r.Intn(60))
		var edges []graph.Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(3) + 1})
		}
		g := graph.MustBuild(1, n, edges)
		res := CNM(g)
		checkPartition(t, "cnm", res.CommunityOf, res.NumCommunities)
		singles := make([]int64, n)
		for i := range singles {
			singles[i] = int64(i)
		}
		if res.Modularity < PartitionModularity(g, singles, n)-1e-9 {
			t.Fatalf("trial %d: CNM ended below singleton modularity", trial)
		}
	}
}

func TestLouvainCliqueChain(t *testing.T) {
	g := gen.CliqueChain(5, 5)
	res := Louvain(g, 1)
	checkPartition(t, "louvain", res.CommunityOf, res.NumCommunities)
	if res.NumCommunities != 5 {
		t.Fatalf("Louvain found %d communities, want 5", res.NumCommunities)
	}
	if res.Levels < 1 {
		t.Fatal("no levels performed")
	}
}

func TestLouvainKarate(t *testing.T) {
	res := Louvain(gen.Karate(), 7)
	// Louvain on karate lands around Q ≈ 0.40–0.42.
	if res.Modularity < 0.38 || res.Modularity > 0.43 {
		t.Fatalf("Louvain karate modularity %v outside [0.38, 0.43]", res.Modularity)
	}
}

func TestLouvainRecoversPlantedPartition(t *testing.T) {
	g, truth, err := gen.SBM(2, gen.SBMConfig{
		Blocks: []int64{40, 40, 40, 40}, PIn: 0.4, POut: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := Louvain(g, 3)
	checkPartition(t, "louvain", res.CommunityOf, res.NumCommunities)
	if res.NumCommunities != 4 {
		t.Fatalf("Louvain found %d communities, want 4", res.NumCommunities)
	}
	// Perfect recovery up to relabeling: within each block one label.
	for b := int64(0); b < 4; b++ {
		first := res.CommunityOf[b*40]
		for i := int64(1); i < 40; i++ {
			v := b*40 + i
			if res.CommunityOf[v] != first {
				t.Fatalf("block %d split", b)
			}
		}
	}
	_ = truth
}

func TestLouvainDegenerate(t *testing.T) {
	if res := Louvain(graph.NewEmpty(0), 1); res.NumCommunities != 0 {
		t.Fatal("empty graph")
	}
	if res := Louvain(graph.NewEmpty(3), 1); res.NumCommunities != 3 {
		t.Fatal("isolated vertices should stay singletons")
	}
}

func TestPartitionModularityBounds(t *testing.T) {
	r := par.NewRNG(8)
	for trial := 0; trial < 10; trial++ {
		n := int64(10 + r.Intn(40))
		var edges []graph.Edge
		for i := 0; i < int(n)*2; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: 1})
		}
		g := graph.MustBuild(1, n, edges)
		// Random partition into 3.
		comm := make([]int64, n)
		for i := range comm {
			comm[i] = int64(r.Intn(3))
		}
		q := PartitionModularity(g, comm, 3)
		if q < -0.5-1e-9 || q > 1+1e-9 {
			t.Fatalf("modularity %v outside [-1/2, 1]", q)
		}
	}
}

func TestBaselinesBeatOrMatchEngineOnCommunityGraphs(t *testing.T) {
	// The engine's matching-based agglomeration is the fast-but-greedy
	// algorithm; Louvain is the quality comparator. On a community-rich
	// graph Louvain should reach at least the engine's modularity.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1500, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Detect(g, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	lou := Louvain(g, 2)
	if lou.Modularity < eng.FinalModularity-0.05 {
		t.Fatalf("Louvain %v well below engine %v", lou.Modularity, eng.FinalModularity)
	}
	cnm := CNM(g)
	if cnm.Modularity < 0 {
		t.Fatalf("CNM modularity %v negative on community-rich graph", cnm.Modularity)
	}
}

// naiveCNM recomputes every pair's ΔQ from scratch each step and merges the
// best positive one — O(n³) but trivially correct. The heap implementation
// must reach the same modularity (partitions can differ on exact ΔQ ties,
// which the deterministic tie-break below avoids by using distinct weights).
func naiveCNM(g *graph.Graph) float64 {
	n := g.NumVertices()
	m := float64(g.TotalWeight(1))
	if m == 0 {
		return 0
	}
	adj := make([]map[int64]int64, n)
	vol := make([]int64, n)
	internal := make([]int64, n)
	alive := make([]bool, n)
	for i := int64(0); i < n; i++ {
		adj[i] = map[int64]int64{}
		alive[i] = true
		internal[i] = g.Self[i]
		vol[i] = 2 * g.Self[i]
	}
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		adj[u][v] += w
		adj[v][u] += w
		vol[u] += w
		vol[v] += w
	})
	for {
		bestDQ := 0.0
		var ba, bb int64 = -1, -1
		for a := int64(0); a < n; a++ {
			if !alive[a] {
				continue
			}
			for b, w := range adj[a] {
				if a >= b || !alive[b] {
					continue
				}
				dq := float64(w)/m - float64(vol[a])*float64(vol[b])/(2*m*m)
				if dq > bestDQ || (dq == bestDQ && ba == -1) {
					bestDQ, ba, bb = dq, a, b
				}
			}
		}
		if ba == -1 || bestDQ <= 0 {
			break
		}
		alive[bb] = false
		internal[ba] += internal[bb] + adj[ba][bb]
		vol[ba] += vol[bb]
		delete(adj[ba], bb)
		delete(adj[bb], ba)
		for x, w := range adj[bb] {
			delete(adj[x], bb)
			adj[ba][x] += w
			adj[x][ba] = adj[ba][x]
		}
		adj[bb] = nil
	}
	var q float64
	for c := int64(0); c < n; c++ {
		if alive[c] {
			d := float64(vol[c]) / (2 * m)
			q += float64(internal[c])/m - d*d
		}
	}
	return q
}

func TestCNMHeapMatchesNaiveReference(t *testing.T) {
	r := par.NewRNG(33)
	for trial := 0; trial < 8; trial++ {
		n := int64(10 + r.Intn(25))
		var edges []graph.Edge
		seen := map[[2]int64]bool{}
		for i := 0; i < int(n)*2; i++ {
			a, b := r.Int63n(n), r.Int63n(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int64{a, b}] {
				continue
			}
			seen[[2]int64{a, b}] = true
			// Distinct weights keep ΔQ ties away so greedy order is unique.
			edges = append(edges, graph.Edge{U: a, V: b, W: int64(len(edges)*2 + 1)})
		}
		g := graph.MustBuild(1, n, edges)
		want := naiveCNM(g)
		got := CNM(g)
		if diff := got.Modularity - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: heap CNM Q=%v, naive Q=%v", trial, got.Modularity, want)
		}
	}
}

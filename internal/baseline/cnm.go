// Package baseline provides sequential community detection algorithms used
// as comparators in the evaluation: the Clauset–Newman–Moore greedy
// modularity agglomeration ([13] in the paper) and the Louvain multilevel
// method of Blondel et al. ([17]). The paper sanity-checks its resulting
// modularities against a sequential implementation in SNAP (§V); these
// implementations play that role here, and also serve as the correctness
// oracles for the parallel engine's quality tests.
package baseline

import (
	"container/heap"

	"repro/internal/graph"
)

// CNMResult is the outcome of a CNM run.
type CNMResult struct {
	// CommunityOf maps each vertex to a dense community id.
	CommunityOf    []int64
	NumCommunities int64
	// Modularity of the returned partition.
	Modularity float64
	// Merges performed before the modularity peak.
	Merges int
}

// mergeCand is a candidate merge in the CNM priority queue. Stale entries
// (outdated stamps) are discarded lazily on pop.
type mergeCand struct {
	dq     float64
	a, b   int64
	stampA int64
	stampB int64
}

type candHeap []mergeCand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].dq > h[j].dq } // max-heap
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(mergeCand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CNM runs Clauset–Newman–Moore greedy modularity maximization: repeatedly
// merge the community pair with the largest ΔQ until no merge improves
// modularity, maintaining the candidate set in a priority queue exactly as
// the sequential algorithms the paper replaces the queue of ([13]) with a
// matching. Intended for graphs up to a few hundred thousand edges.
func CNM(g *graph.Graph) *CNMResult {
	n := g.NumVertices()
	m := float64(g.TotalWeight(1))
	res := &CNMResult{CommunityOf: make([]int64, n)}
	if n == 0 {
		return res
	}
	if m == 0 {
		for i := range res.CommunityOf {
			res.CommunityOf[i] = int64(i)
		}
		res.NumCommunities = n
		return res
	}

	// Community state: adjacency weight maps, volume, internal weight,
	// alive flag, and a stamp invalidating queued candidates on merge.
	adj := make([]map[int64]int64, n)
	vol := make([]int64, n)
	internal := make([]int64, n)
	alive := make([]bool, n)
	stamp := make([]int64, n)
	parent := make([]int64, n) // union-find over merge history
	for i := int64(0); i < n; i++ {
		adj[i] = make(map[int64]int64)
		alive[i] = true
		parent[i] = i
		internal[i] = g.Self[i]
		vol[i] = 2 * g.Self[i]
	}
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		adj[u][v] += w
		adj[v][u] += w
		vol[u] += w
		vol[v] += w
	})

	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	dq := func(a, b int64, w int64) float64 {
		return float64(w)/m - float64(vol[a])*float64(vol[b])/(2*m*m)
	}

	h := &candHeap{}
	for a := int64(0); a < n; a++ {
		for b, w := range adj[a] {
			if a < b {
				heap.Push(h, mergeCand{dq(a, b, w), a, b, 0, 0})
			}
		}
	}

	// Lazy revalidation: a popped entry whose community stamps are outdated
	// is re-scored against the current volumes and weight and pushed back
	// if still improving. Merges push fresh entries only for the pairs
	// whose connecting weight actually changed (the neighbors inherited
	// from the absorbed community), so total heap traffic stays
	// O(m log² n)-ish instead of re-enqueueing every neighbor per merge.
	for h.Len() > 0 {
		c := heap.Pop(h).(mergeCand)
		a, b := c.a, c.b
		if !alive[a] || !alive[b] {
			continue
		}
		if c.stampA != stamp[a] || c.stampB != stamp[b] {
			w, connected := adj[a][b]
			if !connected {
				continue // pair absorbed or never re-linked
			}
			if cur := dq(a, b, w); cur > 0 {
				heap.Push(h, mergeCand{cur, a, b, stamp[a], stamp[b]})
			}
			// A pair dropped at ≤ 0 can only become improving again if its
			// connecting weight grows, and weight growth pushes a fresh
			// entry below, so dropping here is safe.
			continue
		}
		if c.dq <= 0 {
			break // current-stamped maximum does not improve modularity
		}
		// Merge b into a (keep the one with the bigger neighborhood to
		// bound total map-move work).
		if len(adj[b]) > len(adj[a]) {
			a, b = b, a
		}
		alive[b] = false
		parent[b] = a
		stamp[a]++
		internal[a] += internal[b] + adj[a][b]
		vol[a] += vol[b]
		delete(adj[a], b)
		delete(adj[b], a)
		for x, w := range adj[b] {
			delete(adj[x], b)
			adj[a][x] += w
			adj[x][a] = adj[a][x]
			// The (a, x) weight changed; enqueue its fresh score.
			if cur := dq(a, x, adj[a][x]); cur > 0 {
				heap.Push(h, mergeCand{cur, a, x, stamp[a], stamp[x]})
			}
		}
		adj[b] = nil
		res.Merges++
	}

	// Label communities densely.
	label := make(map[int64]int64)
	for v := int64(0); v < n; v++ {
		r := find(v)
		id, ok := label[r]
		if !ok {
			id = int64(len(label))
			label[r] = id
		}
		res.CommunityOf[v] = id
	}
	res.NumCommunities = int64(len(label))

	// Final modularity from the surviving community state.
	var q float64
	for c := int64(0); c < n; c++ {
		if alive[c] {
			d := float64(vol[c]) / (2 * m)
			q += float64(internal[c])/m - d*d
		}
	}
	res.Modularity = q
	return res
}

package metrics_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/par"
)

func TestDensify(t *testing.T) {
	comm, k := metrics.Densify([]int64{7, 7, 3, 9, 3})
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	want := []int64{0, 0, 1, 2, 1}
	for i := range want {
		if comm[i] != want[i] {
			t.Fatalf("comm = %v, want %v", comm, want)
		}
	}
	if out, k := metrics.Densify(nil); len(out) != 0 || k != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestValidatePartition(t *testing.T) {
	if err := metrics.ValidatePartition([]int64{0, 1, 0}, 3, 2); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		comm []int64
		n, k int64
	}{
		{[]int64{0, 1}, 3, 2},    // wrong length
		{[]int64{0, 2, 0}, 3, 2}, // id out of range
		{[]int64{0, 0, 0}, 3, 2}, // community 1 empty
		{[]int64{0, -1, 1}, 3, 2},
	} {
		if err := metrics.ValidatePartition(c.comm, c.n, c.k); err == nil {
			t.Errorf("accepted %v", c)
		}
	}
}

func TestModularityKnownValues(t *testing.T) {
	// Two disjoint 3-cliques, partitioned by clique:
	// Q = Σ [3/6 − (6/12)²] = 2·(0.5 − 0.25) = 0.5.
	var edges []graph.Edge
	for b := int64(0); b < 2; b++ {
		for i := int64(0); i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				edges = append(edges, graph.Edge{U: 3*b + i, V: 3*b + j, W: 1})
			}
		}
	}
	g := graph.MustBuild(1, 6, edges)
	comm := []int64{0, 0, 0, 1, 1, 1}
	if q := metrics.Modularity(2, g, comm, 2); math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("Q = %v, want 0.5", q)
	}
	// All vertices in one community: Q = 1 − 1 = 0.
	one := []int64{0, 0, 0, 0, 0, 0}
	if q := metrics.Modularity(1, g, one, 1); math.Abs(q) > 1e-12 {
		t.Fatalf("single community Q = %v, want 0", q)
	}
}

func TestModularityAgreesWithBaselinePackage(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 6))
	if err != nil {
		t.Fatal(err)
	}
	res := baseline.Louvain(g, 1)
	got := metrics.Modularity(4, g, res.CommunityOf, res.NumCommunities)
	want := baseline.PartitionModularity(g, res.CommunityOf, res.NumCommunities)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("metrics %v vs baseline %v", got, want)
	}
	if math.Abs(got-res.Modularity) > 1e-9 {
		t.Fatalf("metrics %v vs louvain-reported %v", got, res.Modularity)
	}
}

func TestModularityAgreesWithEngine(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1000, 8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(g, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.Modularity(2, g, res.CommunityOf, res.NumCommunities)
	if math.Abs(got-res.FinalModularity) > 1e-9 {
		t.Fatalf("metrics %v vs engine %v", got, res.FinalModularity)
	}
	cov := metrics.Coverage(2, g, res.CommunityOf, res.NumCommunities)
	if math.Abs(cov-res.FinalCoverage) > 1e-9 {
		t.Fatalf("coverage %v vs engine %v", cov, res.FinalCoverage)
	}
}

func TestCoverageBounds(t *testing.T) {
	g := gen.CliqueChain(3, 4)
	comm := make([]int64, 12)
	for i := range comm {
		comm[i] = int64(i) / 4
	}
	cov := metrics.Coverage(1, g, comm, 3)
	// 3·6 intra edges of 20 total.
	if math.Abs(cov-18.0/20.0) > 1e-12 {
		t.Fatalf("coverage %v, want 0.9", cov)
	}
	single := make([]int64, 12)
	if got := metrics.Coverage(1, g, single, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("whole-graph coverage %v, want 1", got)
	}
}

func TestConductancesKnownValue(t *testing.T) {
	// Two triangles joined by one edge, split by triangle:
	// each community: vol = 7, internal = 3, cut = 1, 2m−vol = 7 → φ = 1/7.
	var edges []graph.Edge
	for b := int64(0); b < 2; b++ {
		for i := int64(0); i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				edges = append(edges, graph.Edge{U: 3*b + i, V: 3*b + j, W: 1})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 2, V: 3, W: 1})
	g := graph.MustBuild(1, 6, edges)
	comm := []int64{0, 0, 0, 1, 1, 1}
	phis := metrics.Conductances(1, g, comm, 2)
	for c, phi := range phis {
		if math.Abs(phi-1.0/7.0) > 1e-12 {
			t.Fatalf("φ[%d] = %v, want 1/7", c, phi)
		}
	}
}

func TestSizes(t *testing.T) {
	sizes := metrics.Sizes([]int64{0, 1, 1, 2, 2, 2}, 3)
	for i, want := range []int64{1, 2, 3} {
		if sizes[i] != want {
			t.Fatalf("sizes = %v", sizes)
		}
	}
}

func TestEvaluateSummary(t *testing.T) {
	g := gen.CliqueChain(4, 5)
	comm := make([]int64, 20)
	for i := range comm {
		comm[i] = int64(i) / 5
	}
	s := metrics.Evaluate(2, g, comm, 4)
	if s.NumCommunities != 4 || s.MinSize != 5 || s.MaxSize != 5 || s.MedianSize != 5 {
		t.Fatalf("summary %+v", s)
	}
	if s.MeanSize != 5 {
		t.Fatalf("mean size %v", s.MeanSize)
	}
	if s.Modularity <= 0.5 || s.Coverage <= 0.8 {
		t.Fatalf("quality: %+v", s)
	}
	if !strings.Contains(s.String(), "communities=4") {
		t.Fatalf("String(): %q", s.String())
	}
	empty := metrics.Evaluate(1, graph.NewEmpty(0), nil, 0)
	if empty.NumCommunities != 0 {
		t.Fatal("empty summary")
	}
}

func TestModularityBoundsProperty(t *testing.T) {
	f := func(raw []uint16, split uint8) bool {
		const n = 24
		var edges []graph.Edge
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, graph.Edge{
				U: int64(raw[i] % n), V: int64(raw[i+1] % n), W: int64(raw[i+2]%5) + 1})
		}
		g, err := graph.Build(1, n, edges)
		if err != nil {
			return false
		}
		k := int64(split%4) + 1
		comm := make([]int64, n)
		r := par.NewRNG(uint64(split))
		for i := range comm {
			comm[i] = r.Int63n(k)
		}
		comm, k = metrics.Densify(comm)
		q := metrics.Modularity(2, g, comm, k)
		cov := metrics.Coverage(2, g, comm, k)
		return q >= -0.5-1e-9 && q <= 1+1e-9 && cov >= -1e-9 && cov <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package metrics evaluates community partitions against the quality
// measures the paper's setting cares about: Newman–Girvan modularity (the
// default optimization target, §III), coverage (the DIMACS-style
// termination criterion used in §V), per-community conductance (the
// alternative metric the engine can optimize), and community size
// statistics.
package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Summary aggregates the quality measures of one partition.
type Summary struct {
	NumCommunities  int64
	Modularity      float64
	Coverage        float64
	MeanConductance float64
	MaxConductance  float64
	MinSize         int64
	MaxSize         int64
	MeanSize        float64
	MedianSize      int64
}

// String renders the summary as a single report line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"communities=%d modularity=%.4f coverage=%.4f conductance(mean=%.4f max=%.4f) size(min=%d median=%d mean=%.1f max=%d)",
		s.NumCommunities, s.Modularity, s.Coverage, s.MeanConductance, s.MaxConductance,
		s.MinSize, s.MedianSize, s.MeanSize, s.MaxSize)
}

// Densify relabels arbitrary community ids densely into [0, k), preserving
// the grouping, and returns the new labels and k. Labels are assigned in
// order of first appearance.
func Densify(comm []int64) ([]int64, int64) {
	out := make([]int64, len(comm))
	label := make(map[int64]int64)
	for i, c := range comm {
		id, ok := label[c]
		if !ok {
			id = int64(len(label))
			label[c] = id
		}
		out[i] = id
	}
	return out, int64(len(label))
}

// ValidatePartition checks that comm assigns every one of n vertices a
// community in [0, k) and that no community is empty.
func ValidatePartition(comm []int64, n, k int64) error {
	if int64(len(comm)) != n {
		return fmt.Errorf("metrics: partition has %d entries for %d vertices", len(comm), n)
	}
	seen := make([]bool, k)
	for v, c := range comm {
		if c < 0 || c >= k {
			return fmt.Errorf("metrics: vertex %d community %d outside [0,%d)", v, c, k)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("metrics: community %d empty", c)
		}
	}
	return nil
}

// communityAggregates computes per-community internal weight and volume
// with p workers.
func communityAggregates(p int, g *graph.Graph, comm []int64, k int64) (internal, vol []int64) {
	internal = make([]int64, k)
	vol = make([]int64, k)
	deg := g.WeightedDegrees(p)
	n := int(g.NumVertices())
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			c := comm[x]
			atomic.AddInt64(&internal[c], g.Self[x])
			atomic.AddInt64(&vol[c], deg[x])
		}
	})
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				if cu := comm[g.U[e]]; cu == comm[g.V[e]] {
					atomic.AddInt64(&internal[cu], g.W[e])
				}
			}
		}
	})
	return internal, vol
}

// Modularity evaluates Q = Σ_c [ internal_c/m − (vol_c/(2m))² ] for the
// partition comm (ids dense in [0, k)) on g.
func Modularity(p int, g *graph.Graph, comm []int64, k int64) float64 {
	m := float64(g.TotalWeight(p))
	if m == 0 {
		return 0
	}
	internal, vol := communityAggregates(p, g, comm, k)
	var q float64
	for c := int64(0); c < k; c++ {
		d := float64(vol[c]) / (2 * m)
		q += float64(internal[c])/m - d*d
	}
	return q
}

// Coverage is the fraction of total edge weight inside communities.
func Coverage(p int, g *graph.Graph, comm []int64, k int64) float64 {
	m := g.TotalWeight(p)
	if m == 0 {
		return 0
	}
	internal, _ := communityAggregates(p, g, comm, k)
	return float64(par.SumInt64(p, internal)) / float64(m)
}

// Conductances returns φ_c = cut_c / min(vol_c, 2m − vol_c) per community;
// communities with zero volume or zero complement get φ = 0.
func Conductances(p int, g *graph.Graph, comm []int64, k int64) []float64 {
	m := g.TotalWeight(p)
	internal, vol := communityAggregates(p, g, comm, k)
	out := make([]float64, k)
	twoM := 2 * float64(m)
	for c := int64(0); c < k; c++ {
		cut := float64(vol[c] - 2*internal[c])
		denom := float64(vol[c])
		if other := twoM - float64(vol[c]); other < denom {
			denom = other
		}
		if denom > 0 {
			out[c] = cut / denom
		}
	}
	return out
}

// Sizes returns the vertex count of each community.
func Sizes(comm []int64, k int64) []int64 {
	sizes := make([]int64, k)
	for _, c := range comm {
		sizes[c]++
	}
	return sizes
}

// Evaluate computes the full Summary of a partition.
func Evaluate(p int, g *graph.Graph, comm []int64, k int64) Summary {
	s := Summary{NumCommunities: k}
	if k == 0 {
		return s
	}
	s.Modularity = Modularity(p, g, comm, k)
	s.Coverage = Coverage(p, g, comm, k)
	phis := Conductances(p, g, comm, k)
	var sum float64
	for _, phi := range phis {
		sum += phi
		if phi > s.MaxConductance {
			s.MaxConductance = phi
		}
	}
	s.MeanConductance = sum / float64(k)
	sizes := Sizes(comm, k)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	s.MinSize = sizes[0]
	s.MaxSize = sizes[k-1]
	s.MedianSize = sizes[k/2]
	s.MeanSize = float64(len(comm)) / float64(k)
	return s
}

package metrics

import (
	"fmt"
	"math"
)

// Agreement quantifies how well a detected partition matches a reference
// (ground-truth) partition.
type Agreement struct {
	// NMI is normalized mutual information in [0, 1] (1 = identical up to
	// relabeling), normalized by the arithmetic mean of the entropies.
	NMI float64
	// ARI is the adjusted Rand index in [-1, 1] (1 = identical, ~0 =
	// random agreement).
	ARI float64
	// PairF1 is the harmonic mean of pair precision and recall over all
	// vertex pairs ("same community" treated as the positive class).
	PairF1 float64
}

// Compare evaluates the agreement between two partitions of the same vertex
// set. Both must use dense ids: pred in [0, kPred), truth in [0, kTruth).
// All three measures are computed exactly from the kPred×kTruth
// contingency table, so the cost is O(n + table entries).
func Compare(pred []int64, kPred int64, truth []int64, kTruth int64) (Agreement, error) {
	var a Agreement
	if len(pred) != len(truth) {
		return a, fmt.Errorf("metrics: partitions over %d and %d vertices", len(pred), len(truth))
	}
	n := int64(len(pred))
	if n == 0 {
		return a, nil
	}
	if err := ValidatePartition(pred, n, kPred); err != nil {
		return a, fmt.Errorf("metrics: pred: %w", err)
	}
	if err := ValidatePartition(truth, n, kTruth); err != nil {
		return a, fmt.Errorf("metrics: truth: %w", err)
	}

	// Sparse contingency table and marginals.
	table := make(map[[2]int64]int64)
	rowSum := make([]int64, kPred)
	colSum := make([]int64, kTruth)
	for v := range pred {
		table[[2]int64{pred[v], truth[v]}]++
		rowSum[pred[v]]++
		colSum[truth[v]]++
	}

	// Mutual information and entropies.
	fn := float64(n)
	var mi, hPred, hTruth float64
	for cell, c := range table {
		pxy := float64(c) / fn
		px := float64(rowSum[cell[0]]) / fn
		py := float64(colSum[cell[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	for _, c := range rowSum {
		p := float64(c) / fn
		hPred -= p * math.Log(p)
	}
	for _, c := range colSum {
		p := float64(c) / fn
		hTruth -= p * math.Log(p)
	}
	switch {
	case hPred == 0 && hTruth == 0:
		a.NMI = 1 // both trivial single-community partitions
	case hPred+hTruth == 0:
		a.NMI = 0
	default:
		a.NMI = 2 * mi / (hPred + hTruth)
	}
	if a.NMI > 1 {
		a.NMI = 1 // guard tiny floating overshoot
	}

	// Pair counts: choose2 sums over cells and marginals.
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for _, c := range table {
		sumCells += choose2(c)
	}
	for _, c := range rowSum {
		sumRows += choose2(c)
	}
	for _, c := range colSum {
		sumCols += choose2(c)
	}
	total := choose2(n)

	// Adjusted Rand index.
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if denom := maxIndex - expected; denom != 0 {
		a.ARI = (sumCells - expected) / denom
	} else {
		a.ARI = 1 // both partitions trivial in the same way
	}

	// Pair precision/recall/F1: TP = sumCells, predicted positives =
	// sumRows, actual positives = sumCols.
	if sumRows > 0 && sumCols > 0 && sumCells > 0 {
		prec := sumCells / sumRows
		rec := sumCells / sumCols
		a.PairF1 = 2 * prec * rec / (prec + rec)
	}
	return a, nil
}

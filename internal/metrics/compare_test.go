package metrics_test

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/par"
)

func TestCompareIdenticalPartitions(t *testing.T) {
	comm := []int64{0, 0, 1, 1, 2}
	a, err := metrics.Compare(comm, 3, comm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NMI-1) > 1e-12 || math.Abs(a.ARI-1) > 1e-12 || math.Abs(a.PairF1-1) > 1e-12 {
		t.Fatalf("identical partitions: %+v", a)
	}
}

func TestCompareRelabelingInvariant(t *testing.T) {
	pred := []int64{0, 0, 1, 1, 2, 2}
	relabeled := []int64{2, 2, 0, 0, 1, 1}
	a, err := metrics.Compare(pred, 3, relabeled, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NMI-1) > 1e-12 || math.Abs(a.ARI-1) > 1e-12 {
		t.Fatalf("relabeled partitions should agree fully: %+v", a)
	}
}

func TestCompareOrthogonalPartitions(t *testing.T) {
	// 4 vertices: pred splits {01|23}, truth splits {02|13}. Contingency is
	// uniform → MI = 0, ARI ≈ negative-or-zero.
	pred := []int64{0, 0, 1, 1}
	truth := []int64{0, 1, 0, 1}
	a, err := metrics.Compare(pred, 2, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NMI) > 1e-12 {
		t.Fatalf("orthogonal NMI = %v, want 0", a.NMI)
	}
	if a.ARI > 0.01 {
		t.Fatalf("orthogonal ARI = %v, want <= 0", a.ARI)
	}
}

func TestCompareTrivialPartitions(t *testing.T) {
	one := []int64{0, 0, 0, 0}
	a, err := metrics.Compare(one, 1, one, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NMI != 1 || a.ARI != 1 {
		t.Fatalf("trivial vs trivial: %+v", a)
	}
	singles := []int64{0, 1, 2, 3}
	b, err := metrics.Compare(singles, 4, one, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.NMI != 0 {
		t.Fatalf("singletons vs single community NMI = %v, want 0", b.NMI)
	}
}

func TestCompareKnownARI(t *testing.T) {
	// Classic small example: n=6, pred {012|345}, truth {01|2345}.
	// Contingency: [2,1;0,3]. sumCells = C(2)+C(1)+C(3) = 1+0+3 = 4.
	// sumRows = 3+3 = 6... C(3,2)=3 each → 6. sumCols = C(2,2)+C(4,2) = 1+6 = 7.
	// total = C(6,2) = 15. expected = 6*7/15 = 2.8; max = 6.5.
	// ARI = (4-2.8)/(6.5-2.8) = 1.2/3.7.
	pred := []int64{0, 0, 0, 1, 1, 1}
	truth := []int64{0, 0, 1, 1, 1, 1}
	a, err := metrics.Compare(pred, 2, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.2 / 3.7
	if math.Abs(a.ARI-want) > 1e-12 {
		t.Fatalf("ARI = %v, want %v", a.ARI, want)
	}
	// Pair F1: prec = 4/6, rec = 4/7 → F1 = 2·(4/6)(4/7)/((4/6)+(4/7)).
	prec, rec := 4.0/6.0, 4.0/7.0
	wantF1 := 2 * prec * rec / (prec + rec)
	if math.Abs(a.PairF1-wantF1) > 1e-12 {
		t.Fatalf("PairF1 = %v, want %v", a.PairF1, wantF1)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := metrics.Compare([]int64{0, 0}, 1, []int64{0}, 1); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := metrics.Compare([]int64{0, 5}, 2, []int64{0, 0}, 1); err == nil {
		t.Fatal("accepted invalid pred")
	}
	if _, err := metrics.Compare([]int64{0, 1}, 2, []int64{0, 9}, 1); err == nil {
		t.Fatal("accepted invalid truth")
	}
	if a, err := metrics.Compare(nil, 0, nil, 0); err != nil || a.NMI != 0 {
		t.Fatalf("empty partitions: %+v err=%v", a, err)
	}
}

func TestCompareLouvainRecoversSBM(t *testing.T) {
	g, truth, err := gen.SBM(2, gen.SBMConfig{
		Blocks: []int64{50, 50, 50}, PIn: 0.4, POut: 0.005, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := baseline.Louvain(g, 2)
	truthD, kT := metrics.Densify(truth)
	a, err := metrics.Compare(res.CommunityOf, res.NumCommunities, truthD, kT)
	if err != nil {
		t.Fatal(err)
	}
	if a.NMI < 0.95 || a.ARI < 0.95 {
		t.Fatalf("Louvain should recover a well-separated SBM: %+v", a)
	}
}

func TestCompareBoundsProperty(t *testing.T) {
	r := par.NewRNG(4)
	for trial := 0; trial < 50; trial++ {
		n := 5 + r.Intn(50)
		kp := int64(1 + r.Intn(5))
		kt := int64(1 + r.Intn(5))
		pred := make([]int64, n)
		truth := make([]int64, n)
		for i := 0; i < n; i++ {
			pred[i] = r.Int63n(kp)
			truth[i] = r.Int63n(kt)
		}
		pd, pk := metrics.Densify(pred)
		td, tk := metrics.Densify(truth)
		a, err := metrics.Compare(pd, pk, td, tk)
		if err != nil {
			t.Fatal(err)
		}
		if a.NMI < -1e-9 || a.NMI > 1+1e-9 {
			t.Fatalf("NMI %v out of bounds", a.NMI)
		}
		if a.ARI < -1-1e-9 || a.ARI > 1+1e-9 {
			t.Fatalf("ARI %v out of bounds", a.ARI)
		}
		if a.PairF1 < 0 || a.PairF1 > 1+1e-9 {
			t.Fatalf("PairF1 %v out of bounds", a.PairF1)
		}
		// Symmetry of NMI and ARI.
		b, err := metrics.Compare(td, tk, pd, pk)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.NMI-b.NMI) > 1e-9 || math.Abs(a.ARI-b.ARI) > 1e-9 {
			t.Fatalf("asymmetric: %+v vs %+v", a, b)
		}
	}
}

package scoring

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteModularity computes Q for a partition of g's vertices, treating g as
// a community graph (self-loops are internal weight):
//
//	Q = Σ_c [ l_c/m − (d_c/(2m))² ]
func bruteModularity(g *graph.Graph, comm []int64) float64 {
	m := float64(g.TotalWeight(1))
	if m == 0 {
		return 0
	}
	n := g.NumVertices()
	var maxC int64 = -1
	for _, c := range comm {
		if c > maxC {
			maxC = c
		}
	}
	internal := make([]float64, maxC+1)
	vol := make([]float64, maxC+1)
	deg := g.WeightedDegrees(1)
	for x := int64(0); x < n; x++ {
		internal[comm[x]] += float64(g.Self[x])
		vol[comm[x]] += float64(deg[x])
	}
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		if comm[u] == comm[v] {
			internal[comm[u]] += float64(w)
		}
	})
	var q float64
	for c := range internal {
		q += internal[c]/m - (vol[c]/(2*m))*(vol[c]/(2*m))
	}
	return q
}

// singletons returns the identity partition.
func singletons(n int64) []int64 {
	comm := make([]int64, n)
	for i := range comm {
		comm[i] = int64(i)
	}
	return comm
}

func scoreAll(t *testing.T, s Scorer, g *graph.Graph, p int) []float64 {
	t.Helper()
	deg := g.WeightedDegrees(p)
	scores := make([]float64, len(g.U))
	s.Score(exec.Background(p), g, deg, g.TotalWeight(p), scores)
	return scores
}

func TestModularityMatchesBruteForceDelta(t *testing.T) {
	// ΔQ from the scorer must equal Q(merge c,d) − Q(singletons) exactly
	// (same arithmetic, different route).
	gs := []*graph.Graph{
		gen.Karate(),
		gen.Ring(10),
		gen.CliqueChain(3, 5),
	}
	for gi, g := range gs {
		scores := scoreAll(t, Modularity{}, g, 3)
		base := bruteModularity(g, singletons(g.NumVertices()))
		g.ForEachEdge(func(e int64, u, v, _ int64) {
			comm := singletons(g.NumVertices())
			comm[v] = comm[u] // merge the two endpoint communities
			want := bruteModularity(g, comm) - base
			if math.Abs(scores[e]-want) > 1e-12 {
				t.Fatalf("graph %d edge {%d,%d}: ΔQ %v, brute force %v", gi, u, v, scores[e], want)
			}
		})
	}
}

func TestModularityDeltaWithSelfLoops(t *testing.T) {
	// Self-loops shift community volumes and must flow into the score.
	g := graph.MustBuild(1, 3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1}, {U: 0, V: 0, W: 3}})
	scores := scoreAll(t, Modularity{}, g, 1)
	base := bruteModularity(g, singletons(3))
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		comm := singletons(3)
		comm[v] = comm[u]
		want := bruteModularity(g, comm) - base
		if math.Abs(scores[e]-want) > 1e-12 {
			t.Fatalf("edge {%d,%d}: ΔQ %v, want %v", u, v, scores[e], want)
		}
	})
}

func TestModularityDeltaProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		const n = 20
		var edges []graph.Edge
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, graph.Edge{
				U: int64(raw[i] % n), V: int64(raw[i+1] % n), W: int64(raw[i+2]%4) + 1})
		}
		g, err := graph.Build(p, n, edges)
		if err != nil || g.NumEdges() == 0 {
			return true
		}
		scores := scoreAll(t, Modularity{}, g, p)
		base := bruteModularity(g, singletons(n))
		ok := true
		g.ForEachEdge(func(e int64, u, v, _ int64) {
			comm := singletons(n)
			comm[v] = comm[u]
			want := bruteModularity(g, comm) - base
			if math.Abs(scores[e]-want) > 1e-9 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestModularityCliquePositiveRingOfCliques(t *testing.T) {
	// Within a chain of cliques, intra-clique edges must score higher than
	// the bridges.
	g := gen.CliqueChain(4, 6)
	scores := scoreAll(t, Modularity{}, g, 2)
	minIntra, maxBridge, meanIntra, meanBridge := splitScores(g, scores, 6)
	// Intra edges between the two "port" vertices of a middle clique have
	// the same degrees as the bridge, so ties are legitimate — but no bridge
	// may beat an intra edge, and on average intra must win clearly.
	if minIntra < maxBridge {
		t.Fatalf("intra-clique min %v below bridge max %v", minIntra, maxBridge)
	}
	if meanIntra <= meanBridge {
		t.Fatalf("intra mean %v not above bridge mean %v", meanIntra, meanBridge)
	}
}

func TestModularityZeroWeightGraph(t *testing.T) {
	g := graph.NewEmpty(5)
	scores := make([]float64, 0)
	Modularity{}.Score(exec.Background(1), g, g.WeightedDegrees(1), g.TotalWeight(1), scores)
	// Nothing to score; simply must not panic.
}

func TestConductanceSymmetricImprovement(t *testing.T) {
	// Merging the two halves of a single edge removes all cut: score > 0.
	g := graph.MustBuild(1, 2, []graph.Edge{{U: 0, V: 1, W: 1}})
	scores := scoreAll(t, Conductance{}, g, 1)
	var s float64
	g.ForEachEdge(func(e int64, _, _, _ int64) { s = scores[e] })
	// φ(singleton with one incident edge) = 1, merged community has zero
	// cut: score = 1 + 1 − 0 = 2.
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("conductance score %v, want 2", s)
	}
}

func TestConductanceName(t *testing.T) {
	if (Modularity{}).Name() != "modularity" || (Conductance{}).Name() != "conductance" {
		t.Fatal("scorer names wrong")
	}
}

func TestConductancePrefersDenseMerge(t *testing.T) {
	// In a clique chain, merging within a clique should beat merging across
	// the bridge for conductance too.
	g := gen.CliqueChain(3, 5)
	scores := scoreAll(t, Conductance{}, g, 2)
	minIntra, maxBridge, meanIntra, meanBridge := splitScores(g, scores, 5)
	if minIntra < maxBridge {
		t.Fatalf("intra min %v below bridge max %v", minIntra, maxBridge)
	}
	if meanIntra <= meanBridge {
		t.Fatalf("intra mean %v not above bridge mean %v", meanIntra, meanBridge)
	}
}

// splitScores separates intra-clique from bridge edge scores for a
// CliqueChain(k, s) graph and returns (min intra, max bridge, mean intra,
// mean bridge).
func splitScores(g *graph.Graph, scores []float64, s int64) (minIntra, maxBridge, meanIntra, meanBridge float64) {
	minIntra, maxBridge = math.Inf(1), math.Inf(-1)
	var sumI, sumB float64
	var nI, nB int
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		if u/s == v/s {
			if scores[e] < minIntra {
				minIntra = scores[e]
			}
			sumI += scores[e]
			nI++
		} else {
			if scores[e] > maxBridge {
				maxBridge = scores[e]
			}
			sumB += scores[e]
			nB++
		}
	})
	return minIntra, maxBridge, sumI / float64(nI), sumB / float64(nB)
}

func TestHasPositive(t *testing.T) {
	g := gen.Ring(6)
	scores := make([]float64, len(g.U))
	if HasPositive(exec.Background(2), g, scores) {
		t.Fatal("all-zero scores reported positive")
	}
	scores[3] = 1e-9
	if !HasPositive(exec.Background(2), g, scores) {
		t.Fatal("positive score not found")
	}
	for i := range scores {
		scores[i] = -1
	}
	if HasPositive(exec.Background(2), g, scores) {
		t.Fatal("negative scores reported positive")
	}
}

func TestScorersConsistentAcrossWorkers(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scorer{Modularity{}, Conductance{}} {
		want := scoreAll(t, s, g, 1)
		for _, p := range []int{2, 7} {
			got := scoreAll(t, s, g, p)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s: p=%d: score %d differs: %v != %v", s.Name(), p, i, got[i], want[i])
				}
			}
		}
	}
}

// Package scoring implements the edge-scoring step of the agglomerative
// loop (§III step 1, §IV-B): every community-graph edge {c, d} receives the
// change in the optimization metric that merging c and d would cause. The
// algorithm is agnostic to the metric; modularity maximization and
// conductance minimization (negated into a maximization) are provided, and
// any problem-specific Scorer can be plugged into the engine.
package scoring

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Scorer computes per-edge merge scores for a community graph.
//
// Score must fill scores[e] for every live edge index e of g (the slice is
// as long as g's edge arrays; entries at gap positions are ignored). deg is
// g.WeightedDegrees — the community volumes d_c = 2·self_c + Σ incident
// weight — and totalWeight is the *input* graph's total edge weight m,
// which contraction preserves. Implementations must be safe for concurrent
// use and must not retain the slices.
type Scorer interface {
	Name() string
	Score(p int, g *graph.Graph, deg []int64, totalWeight int64, scores []float64)
}

// Modularity scores an edge {c, d} with the Newman–Girvan modularity change
//
//	ΔQ = w_cd/m − d_c·d_d/(2m²),
//
// the closed form the CNM family uses: only the edge weight and the
// adjacent community volumes are needed (§III).
type Modularity struct{}

// Name implements Scorer.
func (Modularity) Name() string { return "modularity" }

// Score implements Scorer.
func (Modularity) Score(p int, g *graph.Graph, deg []int64, totalWeight int64, scores []float64) {
	if totalWeight <= 0 {
		scoreConstant(p, g, scores, 0)
		return
	}
	m := float64(totalWeight)
	inv := 1 / m
	half := 1 / (2 * m * m)
	n := int(g.NumVertices())
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				scores[e] = float64(g.W[e])*inv - float64(deg[g.U[e]])*float64(deg[g.V[e]])*half
			}
		}
	})
}

// Conductance scores an edge {c, d} with the negated change in the sum of
// community conductances, converting the minimization into the
// maximization the engine performs (§III):
//
//	score = φ(c) + φ(d) − φ(c ∪ d),
//
// where φ(c) = cut_c / min(vol_c, 2m − vol_c), cut_c = vol_c − 2·self_c.
// Isolated communities (zero volume or zero complement) contribute φ = 0.
type Conductance struct{}

// Name implements Scorer.
func (Conductance) Name() string { return "conductance" }

// Score implements Scorer.
func (Conductance) Score(p int, g *graph.Graph, deg []int64, totalWeight int64, scores []float64) {
	if totalWeight <= 0 {
		scoreConstant(p, g, scores, 0)
		return
	}
	twoM := 2 * float64(totalWeight)
	phi := func(vol, internal int64) float64 {
		cut := float64(vol - 2*internal)
		denom := float64(vol)
		if other := twoM - float64(vol); other < denom {
			denom = other
		}
		if denom <= 0 {
			return 0
		}
		return cut / denom
	}
	n := int(g.NumVertices())
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				u, v, w := g.U[e], g.V[e], g.W[e]
				phiU := phi(deg[u], g.Self[u])
				phiV := phi(deg[v], g.Self[v])
				merged := phi(deg[u]+deg[v], g.Self[u]+g.Self[v]+w)
				scores[e] = phiU + phiV - merged
			}
		}
	})
}

// scoreConstant fills every live edge's score with c.
func scoreConstant(p int, g *graph.Graph, scores []float64, c float64) {
	n := int(g.NumVertices())
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				scores[e] = c
			}
		}
	})
}

// HasPositive reports whether any live edge of g has a strictly positive
// score; if none does the engine has reached a local maximum and terminates
// (§III).
func HasPositive(p int, g *graph.Graph, scores []float64) bool {
	n := int(g.NumVertices())
	var found int64
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				if scores[e] > 0 {
					atomicStoreOne(&found)
					return
				}
			}
		}
	})
	return found != 0
}

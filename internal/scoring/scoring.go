// Package scoring implements the edge-scoring step of the agglomerative
// loop (§III step 1, §IV-B): every community-graph edge {c, d} receives the
// change in the optimization metric that merging c and d would cause. The
// algorithm is agnostic to the metric; modularity maximization and
// conductance minimization (negated into a maximization) are provided, and
// any problem-specific Scorer can be plugged into the engine.
package scoring

import (
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
)

// Scoring sweeps are edge-parallel with no per-vertex state, so they accept
// hub splitting: when the engine has installed an edge-balanced partition
// for the level (exec.Balanced), each worker walks one par.Span — a vertex
// range whose first and last buckets may be clamped to partial edge runs —
// and otherwise the sweep falls back to dynamic chunks over whole vertices.
// Every sweep body is therefore written against (lo, hi, eloFirst, ehiLast):
// dynamic chunks pass the unclamped g.Start[lo] / g.End[hi-1], making the
// clamps no-ops.

// Scorer computes per-edge merge scores for a community graph.
//
// Score must fill scores[e] for every live edge index e of g (the slice is
// as long as g's edge arrays; entries at gap positions are ignored). deg is
// g.WeightedDegrees — the community volumes d_c = 2·self_c + Σ incident
// weight — and totalWeight is the *input* graph's total edge weight m,
// which contraction preserves. Implementations must be safe for concurrent
// use and must not retain the slices.
type Scorer interface {
	Name() string
	Score(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64)
}

// Fused is an optional Scorer extension that folds the engine's three edge
// sweeps — score fill, the MaxCommunitySize mask, and the HasPositive
// termination scan — into one pass over the edge array. sizes is the
// per-community original-vertex count and maxSize the cap (0 disables the
// mask; sizes may then be nil). ScoreFused fills scores exactly as Score
// would, overwrites masked entries with -1, and reports whether any
// unmasked live edge scored strictly positive. The engine type-asserts for
// this interface and falls back to the three separate sweeps for plain
// Scorers, so metric plugins stay a one-method implementation.
//
// masked, when non-nil, receives the number of edges the size cap masked:
// implementations count into chunk-locals and flush with one atomic add per
// chunk (never per edge), which is how the engine's observability layer
// taps the sweep without this package depending on it. nil disables the
// count at the cost of one predictable branch per chunk.
type Fused interface {
	ScoreFused(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64, sizes []int64, maxSize int64, masked *int64) bool
}

// Modularity scores an edge {c, d} with the Newman–Girvan modularity change
//
//	ΔQ = w_cd/m − d_c·d_d/(2m²),
//
// the closed form the CNM family uses: only the edge weight and the
// adjacent community volumes are needed (§III).
type Modularity struct{}

// Name implements Scorer.
func (Modularity) Name() string { return "modularity" }

// Score implements Scorer.
func (Modularity) Score(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64) {
	if totalWeight <= 0 {
		scoreConstant(ec, g, scores, 0)
		return
	}
	m := float64(totalWeight)
	inv := 1 / m
	half := 1 / (2 * m * m)
	n := int(g.NumVertices())
	if pt := ec.Balanced(n, g.NumEdges()); pt != nil {
		ec.ForSpans("score/fill", pt, func(_ int, sp par.Span) {
			modularityFill(g, deg, scores, inv, half, sp.LoV, sp.HiV, sp.LoE, sp.HiE)
		})
		return
	}
	ec.ForDynamic(n, 0, func(lo, hi int) {
		modularityFill(g, deg, scores, inv, half, lo, hi, g.Start[lo], g.End[hi-1])
	})
}

func modularityFill(g *graph.Graph, deg []int64, scores []float64, inv, half float64, lo, hi int, eloFirst, ehiLast int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			scores[e] = float64(g.W[e])*inv - float64(deg[g.U[e]])*float64(deg[g.V[e]])*half
		}
	}
}

// ScoreFused implements Fused: the modularity fill, size mask, and
// positive-edge scan in a single sweep.
func (Modularity) ScoreFused(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64, sizes []int64, maxSize int64, masked *int64) bool {
	if totalWeight <= 0 {
		scoreConstant(ec, g, scores, 0)
		return false
	}
	m := float64(totalWeight)
	inv := 1 / m
	half := 1 / (2 * m * m)
	n := int(g.NumVertices())
	if ec.Serial(n) {
		positive := false
		var nMasked int64
		for x := 0; x < n; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				u, v := g.U[e], g.V[e]
				if maxSize > 0 && sizes[u]+sizes[v] > maxSize {
					scores[e] = -1
					nMasked++
					continue
				}
				s := float64(g.W[e])*inv - float64(deg[u])*float64(deg[v])*half
				scores[e] = s
				positive = positive || s > 0
			}
		}
		flushMasked(masked, nMasked)
		return positive
	}
	var found int64
	if pt := ec.Balanced(n, g.NumEdges()); pt != nil {
		ec.ForSpans("score/fused", pt, func(_ int, sp par.Span) {
			positive, nMasked := modularityFused(g, deg, scores, sizes, inv, half, maxSize, sp.LoV, sp.HiV, sp.LoE, sp.HiE)
			flushMasked(masked, nMasked)
			if positive {
				atomicStoreOne(&found)
			}
		})
		return found != 0
	}
	ec.ForDynamic(n, 0, func(lo, hi int) {
		positive, nMasked := modularityFused(g, deg, scores, sizes, inv, half, maxSize, lo, hi, g.Start[lo], g.End[hi-1])
		flushMasked(masked, nMasked)
		if positive {
			atomicStoreOne(&found)
		}
	})
	return found != 0
}

func modularityFused(g *graph.Graph, deg []int64, scores []float64, sizes []int64, inv, half float64, maxSize int64, lo, hi int, eloFirst, ehiLast int64) (positive bool, nMasked int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			u, v := g.U[e], g.V[e]
			if maxSize > 0 && sizes[u]+sizes[v] > maxSize {
				scores[e] = -1
				nMasked++
				continue
			}
			s := float64(g.W[e])*inv - float64(deg[u])*float64(deg[v])*half
			scores[e] = s
			positive = positive || s > 0
		}
	}
	return positive, nMasked
}

// Conductance scores an edge {c, d} with the negated change in the sum of
// community conductances, converting the minimization into the
// maximization the engine performs (§III):
//
//	score = φ(c) + φ(d) − φ(c ∪ d),
//
// where φ(c) = cut_c / min(vol_c, 2m − vol_c), cut_c = vol_c − 2·self_c.
// Isolated communities (zero volume or zero complement) contribute φ = 0.
type Conductance struct{}

// Name implements Scorer.
func (Conductance) Name() string { return "conductance" }

// Score implements Scorer.
func (Conductance) Score(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64) {
	if totalWeight <= 0 {
		scoreConstant(ec, g, scores, 0)
		return
	}
	twoM := 2 * float64(totalWeight)
	phi := func(vol, internal int64) float64 {
		cut := float64(vol - 2*internal)
		denom := float64(vol)
		if other := twoM - float64(vol); other < denom {
			denom = other
		}
		if denom <= 0 {
			return 0
		}
		return cut / denom
	}
	n := int(g.NumVertices())
	if pt := ec.Balanced(n, g.NumEdges()); pt != nil {
		ec.ForSpans("score/fill", pt, func(_ int, sp par.Span) {
			conductanceFill(g, deg, scores, phi, sp.LoV, sp.HiV, sp.LoE, sp.HiE)
		})
		return
	}
	ec.ForDynamic(n, 0, func(lo, hi int) {
		conductanceFill(g, deg, scores, phi, lo, hi, g.Start[lo], g.End[hi-1])
	})
}

func conductanceFill(g *graph.Graph, deg []int64, scores []float64, phi func(vol, internal int64) float64, lo, hi int, eloFirst, ehiLast int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			u, v, w := g.U[e], g.V[e], g.W[e]
			phiU := phi(deg[u], g.Self[u])
			phiV := phi(deg[v], g.Self[v])
			merged := phi(deg[u]+deg[v], g.Self[u]+g.Self[v]+w)
			scores[e] = phiU + phiV - merged
		}
	}
}

// ScoreFused implements Fused for the conductance metric.
func (Conductance) ScoreFused(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64, sizes []int64, maxSize int64, masked *int64) bool {
	if totalWeight <= 0 {
		scoreConstant(ec, g, scores, 0)
		return false
	}
	twoM := 2 * float64(totalWeight)
	phi := func(vol, internal int64) float64 {
		cut := float64(vol - 2*internal)
		denom := float64(vol)
		if other := twoM - float64(vol); other < denom {
			denom = other
		}
		if denom <= 0 {
			return 0
		}
		return cut / denom
	}
	n := int(g.NumVertices())
	if ec.Serial(n) {
		positive := false
		var nMasked int64
		for x := 0; x < n; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				u, v, w := g.U[e], g.V[e], g.W[e]
				if maxSize > 0 && sizes[u]+sizes[v] > maxSize {
					scores[e] = -1
					nMasked++
					continue
				}
				phiU := phi(deg[u], g.Self[u])
				phiV := phi(deg[v], g.Self[v])
				s := phiU + phiV - phi(deg[u]+deg[v], g.Self[u]+g.Self[v]+w)
				scores[e] = s
				positive = positive || s > 0
			}
		}
		flushMasked(masked, nMasked)
		return positive
	}
	var found int64
	if pt := ec.Balanced(n, g.NumEdges()); pt != nil {
		ec.ForSpans("score/fused", pt, func(_ int, sp par.Span) {
			positive, nMasked := conductanceFused(g, deg, scores, sizes, phi, maxSize, sp.LoV, sp.HiV, sp.LoE, sp.HiE)
			flushMasked(masked, nMasked)
			if positive {
				atomicStoreOne(&found)
			}
		})
		return found != 0
	}
	ec.ForDynamic(n, 0, func(lo, hi int) {
		positive, nMasked := conductanceFused(g, deg, scores, sizes, phi, maxSize, lo, hi, g.Start[lo], g.End[hi-1])
		flushMasked(masked, nMasked)
		if positive {
			atomicStoreOne(&found)
		}
	})
	return found != 0
}

func conductanceFused(g *graph.Graph, deg []int64, scores []float64, sizes []int64, phi func(vol, internal int64) float64, maxSize int64, lo, hi int, eloFirst, ehiLast int64) (positive bool, nMasked int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			u, v, w := g.U[e], g.V[e], g.W[e]
			if maxSize > 0 && sizes[u]+sizes[v] > maxSize {
				scores[e] = -1
				nMasked++
				continue
			}
			phiU := phi(deg[u], g.Self[u])
			phiV := phi(deg[v], g.Self[v])
			s := phiU + phiV - phi(deg[u]+deg[v], g.Self[u]+g.Self[v]+w)
			scores[e] = s
			positive = positive || s > 0
		}
	}
	return positive, nMasked
}

// flushMasked adds a chunk's masked-edge count to the optional tap with one
// atomic add; the nil check is the disabled observability path.
func flushMasked(masked *int64, n int64) {
	if masked != nil && n != 0 {
		atomic.AddInt64(masked, n)
	}
}

// scoreConstant fills every live edge's score with c.
func scoreConstant(ec *exec.Ctx, g *graph.Graph, scores []float64, c float64) {
	n := int(g.NumVertices())
	if pt := ec.Balanced(n, g.NumEdges()); pt != nil {
		ec.ForSpans("score/fill", pt, func(_ int, sp par.Span) {
			constantFill(g, scores, c, sp.LoV, sp.HiV, sp.LoE, sp.HiE)
		})
		return
	}
	ec.ForDynamic(n, 0, func(lo, hi int) {
		constantFill(g, scores, c, lo, hi, g.Start[lo], g.End[hi-1])
	})
}

func constantFill(g *graph.Graph, scores []float64, c float64, lo, hi int, eloFirst, ehiLast int64) {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			scores[e] = c
		}
	}
}

// HasPositive reports whether any live edge of g has a strictly positive
// score; if none does the engine has reached a local maximum and terminates
// (§III).
func HasPositive(ec *exec.Ctx, g *graph.Graph, scores []float64) bool {
	n := int(g.NumVertices())
	var found int64
	if pt := ec.Balanced(n, g.NumEdges()); pt != nil {
		ec.ForSpans("score/haspos", pt, func(_ int, sp par.Span) {
			if hasPositive(g, scores, sp.LoV, sp.HiV, sp.LoE, sp.HiE) {
				atomicStoreOne(&found)
			}
		})
		return found != 0
	}
	ec.ForDynamic(n, 0, func(lo, hi int) {
		if hasPositive(g, scores, lo, hi, g.Start[lo], g.End[hi-1]) {
			atomicStoreOne(&found)
		}
	})
	return found != 0
}

func hasPositive(g *graph.Graph, scores []float64, lo, hi int, eloFirst, ehiLast int64) bool {
	for x := lo; x < hi; x++ {
		elo, ehi := g.Start[x], g.End[x]
		if x == lo {
			elo = eloFirst
		}
		if x == hi-1 {
			ehi = ehiLast
		}
		for e := elo; e < ehi; e++ {
			if scores[e] > 0 {
				return true
			}
		}
	}
	return false
}

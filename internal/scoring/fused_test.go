package scoring

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
)

// fusedGraph builds a small weighted graph with a few communities' worth of
// structure for exercising the fused sweep.
func fusedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Build(1, 8, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 4},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 2}, {U: 5, V: 6, W: 5},
		{U: 6, V: 7, W: 1}, {U: 7, V: 0, W: 2}, {U: 0, V: 4, W: 1},
		{U: 2, V: 6, W: 3}, {U: 1, V: 1, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestScoreFusedMatchesSeparateSweeps checks that the fused sweep produces
// bit-identical scores, the same mask, and the same positive flag as the
// three separate passes it replaces, for both builtin metrics and for every
// masking configuration.
func TestScoreFusedMatchesSeparateSweeps(t *testing.T) {
	g := fusedGraph(t)
	deg := g.WeightedDegrees(1)
	totW := g.TotalWeight(1)
	sizes := []int64{1, 2, 1, 3, 1, 1, 2, 1}
	for _, scorer := range []Scorer{Modularity{}, Conductance{}} {
		fused, ok := scorer.(Fused)
		if !ok {
			t.Fatalf("%s does not implement Fused", scorer.Name())
		}
		for _, maxSize := range []int64{0, 3, 100} {
			want := make([]float64, len(g.U))
			scorer.Score(exec.Background(1), g, deg, totW, want)
			if maxSize > 0 {
				for x := int64(0); x < g.NumVertices(); x++ {
					for e := g.Start[x]; e < g.End[x]; e++ {
						if sizes[g.U[e]]+sizes[g.V[e]] > maxSize {
							want[e] = -1
						}
					}
				}
			}
			wantPos := HasPositive(exec.Background(1), g, want)

			got := make([]float64, len(g.U))
			var nMasked int64
			gotPos := fused.ScoreFused(exec.Background(2), g, deg, totW, got, sizes, maxSize, &nMasked)
			if gotPos != wantPos {
				t.Fatalf("%s maxSize=%d: fused positive=%v, separate=%v",
					scorer.Name(), maxSize, gotPos, wantPos)
			}
			for e := range want {
				if got[e] != want[e] {
					t.Fatalf("%s maxSize=%d: scores[%d] fused=%v separate=%v",
						scorer.Name(), maxSize, e, got[e], want[e])
				}
			}
			var wantMasked int64
			for _, s := range want {
				if s == -1 {
					wantMasked++
				}
			}
			// The masked tap must agree with the separate mask sweep. (Scores
			// of exactly -1 only arise from masking for these metrics on this
			// graph.)
			if nMasked != wantMasked {
				t.Fatalf("%s maxSize=%d: masked tap=%d, separate mask wrote %d",
					scorer.Name(), maxSize, nMasked, wantMasked)
			}
		}
	}
}

// TestScoreFusedZeroWeight covers the degenerate all-self-loop graph.
func TestScoreFusedZeroWeight(t *testing.T) {
	g := graph.NewEmpty(3)
	scores := make([]float64, 0)
	if (Modularity{}).ScoreFused(exec.Background(1), g, nil, 0, scores, nil, 0, nil) {
		t.Fatal("empty graph reported a positive score")
	}
}

package scoring

import (
	"repro/internal/exec"
	"repro/internal/graph"
)

// EdgeScore is a closed-form per-edge merge score: it sees the edge weight,
// both endpoints' weighted degrees (community volumes) and self-loop
// weights (internal edge counts), and the input graph's total weight. This
// is exactly the information the paper's metrics need (§IV-B: "An edge
// {i, j} requires its weight, the self-loop weights for i and j, and the
// total weight of the graph"), so any metric in that family plugs in
// without touching the engine.
type EdgeScore func(w, degU, degV, selfU, selfV, totalWeight int64) float64

// Func adapts an EdgeScore closed form to the Scorer interface, running it
// over every live edge in parallel. The paper's algorithm "is agnostic
// towards edge scoring methods and can benefit from any problem-specific
// methods" (§II); Func is the plug-in point.
type Func struct {
	Label string
	F     EdgeScore
}

// Name implements Scorer.
func (f Func) Name() string { return f.Label }

// Score implements Scorer.
func (f Func) Score(ec *exec.Ctx, g *graph.Graph, deg []int64, totalWeight int64, scores []float64) {
	n := int(g.NumVertices())
	ec.ForDynamic(n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				u, v := g.U[e], g.V[e]
				scores[e] = f.F(g.W[e], deg[u], deg[v], g.Self[u], g.Self[v], totalWeight)
			}
		}
	})
}

// HeavyEdge returns the multilevel-graph-partitioning coarsening heuristic
// ([18], [19] in the paper): score an edge by its raw weight, so matching
// contracts the heaviest edges first. Unlike modularity it never goes
// non-positive, so runs using it must bound phases with MaxPhases,
// MinCommunities, or MaxCommunitySize.
func HeavyEdge() Func {
	return Func{
		Label: "heavy-edge",
		F: func(w, _, _, _, _, _ int64) float64 {
			return float64(w)
		},
	}
}

// HeavyEdgeNormalized scores an edge by weight divided by the product of
// endpoint volumes, the "heavy-edge / inner product" variant that avoids
// repeatedly collapsing the same hub.
func HeavyEdgeNormalized() Func {
	return Func{
		Label: "heavy-edge-normalized",
		F: func(w, degU, degV, _, _, _ int64) float64 {
			d := float64(degU) * float64(degV)
			if d <= 0 {
				return 0
			}
			return float64(w) / d
		},
	}
}

package scoring

import "sync/atomic"

func atomicStoreOne(addr *int64) {
	atomic.StoreInt64(addr, 1)
}

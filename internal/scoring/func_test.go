package scoring

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFuncAdapterMatchesModularity(t *testing.T) {
	// Expressing ΔQ through the Func adapter must agree with the dedicated
	// Modularity scorer bit-for-bit.
	dq := Func{
		Label: "dq-via-func",
		F: func(w, degU, degV, _, _, m int64) float64 {
			fm := float64(m)
			return float64(w)/fm - float64(degU)*float64(degV)/(2*fm*fm)
		},
	}
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(500, 13))
	if err != nil {
		t.Fatal(err)
	}
	want := scoreAll(t, Modularity{}, g, 2)
	got := scoreAll(t, dq, g, 2)
	for i := range want {
		// The dedicated scorer hoists reciprocals, so allow one ulp-ish of
		// drift versus the per-edge divisions here.
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("score %d: %v != %v", i, got[i], want[i])
		}
	}
	if dq.Name() != "dq-via-func" {
		t.Fatal("name")
	}
}

func TestHeavyEdgeScoresWeights(t *testing.T) {
	g := graph.MustBuild(1, 3, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 2}})
	scores := scoreAll(t, HeavyEdge(), g, 1)
	g.ForEachEdge(func(e int64, _, _, w int64) {
		if scores[e] != float64(w) {
			t.Fatalf("heavy-edge score %v for weight %d", scores[e], w)
		}
	})
}

func TestHeavyEdgeNormalizedPrefersLowDegree(t *testing.T) {
	// A star plus one pendant pair: the pendant edge (low degrees) must
	// outscore the hub edges of equal weight.
	g := graph.MustBuild(1, 6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1},
		{U: 4, V: 5, W: 1},
	})
	scores := scoreAll(t, HeavyEdgeNormalized(), g, 1)
	var pendant, hub float64
	g.ForEachEdge(func(e int64, u, v, _ int64) {
		if u >= 4 || v >= 4 {
			pendant = scores[e]
		} else {
			hub = scores[e]
		}
	})
	if !(pendant > hub) {
		t.Fatalf("pendant %v not above hub %v", pendant, hub)
	}
	if math.IsNaN(pendant) || math.IsInf(pendant, 0) {
		t.Fatalf("pendant score %v", pendant)
	}
}

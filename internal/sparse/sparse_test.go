package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func mustNew(t *testing.T, p int, rows, cols int64, ts []Triple) *Matrix {
	t.Helper()
	m, err := New(p, rows, cols, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewAccumulatesAndSorts(t *testing.T) {
	m := mustNew(t, 2, 3, 4, []Triple{
		{0, 2, 1}, {0, 1, 2}, {0, 2, 3}, // duplicate (0,2)
		{2, 0, 5},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 || vals[0] != 2 || vals[1] != 4 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
	if c, _ := m.Row(1); len(c) != 0 {
		t.Fatal("row 1 should be empty")
	}
	if m.At(2, 0) != 5 || m.At(2, 3) != 0 || m.At(0, 2) != 4 {
		t.Fatal("At lookups wrong")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	for _, ts := range [][]Triple{
		{{3, 0, 1}},
		{{0, 4, 1}},
		{{-1, 0, 1}},
	} {
		if _, err := New(1, 3, 4, ts); err == nil {
			t.Fatalf("accepted %v", ts)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := mustNew(t, 2, 3, 4, []Triple{{0, 1, 2}, {0, 3, 7}, {1, 1, 5}, {2, 0, 1}})
	tr := Transpose(2, m)
	if tr.Rows != 4 || tr.Cols != 3 {
		t.Fatalf("shape %dx%d", tr.Rows, tr.Cols)
	}
	for r := int64(0); r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if tr.At(c, r) != vals[i] {
				t.Fatalf("transpose(%d,%d) = %d, want %d", c, r, tr.At(c, r), vals[i])
			}
		}
	}
	if tr.NNZ() != m.NNZ() {
		t.Fatalf("NNZ changed: %d vs %d", tr.NNZ(), m.NNZ())
	}
	// Rows sorted.
	for r := int64(0); r < tr.Rows; r++ {
		cols, _ := tr.Row(r)
		for i := 1; i < len(cols); i++ {
			if cols[i-1] >= cols[i] {
				t.Fatalf("transpose row %d unsorted: %v", r, cols)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(raw []uint16) bool {
		var ts []Triple
		for i := 0; i+2 < len(raw); i += 3 {
			ts = append(ts, Triple{int64(raw[i] % 15), int64(raw[i+1] % 20), int64(raw[i+2]%9) + 1})
		}
		m, err := New(2, 15, 20, ts)
		if err != nil {
			return false
		}
		tt := Transpose(1, Transpose(2, m))
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.ColIdx {
			if m.ColIdx[i] != tt.ColIdx[i] || m.Val[i] != tt.Val[i] {
				return false
			}
		}
		for i := range m.RowPtr {
			if m.RowPtr[i] != tt.RowPtr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// denseMul is the trivially correct reference.
func denseMul(a, b *Matrix) [][]int64 {
	out := make([][]int64, a.Rows)
	for r := range out {
		out[r] = make([]int64, b.Cols)
	}
	for r := int64(0); r < a.Rows; r++ {
		cols, vals := a.Row(r)
		for i, k := range cols {
			bcols, bvals := b.Row(k)
			for j, c := range bcols {
				out[r][c] += vals[i] * bvals[j]
			}
		}
	}
	return out
}

func TestMulMatchesDenseReference(t *testing.T) {
	r := par.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		var ta, tb []Triple
		for i := 0; i < 60; i++ {
			ta = append(ta, Triple{r.Int63n(8), r.Int63n(10), r.Int63n(5) + 1})
			tb = append(tb, Triple{r.Int63n(10), r.Int63n(7), r.Int63n(5) + 1})
		}
		a := mustNew(t, 2, 8, 10, ta)
		b := mustNew(t, 2, 10, 7, tb)
		got, err := Mul(3, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := denseMul(a, b)
		for rr := int64(0); rr < 8; rr++ {
			for c := int64(0); c < 7; c++ {
				if got.At(rr, c) != want[rr][c] {
					t.Fatalf("trial %d: (%d,%d) = %d, want %d", trial, rr, c, got.At(rr, c), want[rr][c])
				}
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := mustNew(t, 1, 2, 3, nil)
	b := mustNew(t, 1, 4, 2, nil)
	if _, err := Mul(1, a, b); err == nil {
		t.Fatal("accepted mismatched dimensions")
	}
}

func TestMulVec(t *testing.T) {
	m := mustNew(t, 2, 3, 3, []Triple{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}})
	y, err := MulVec(2, m, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{7, 6, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	if _, err := MulVec(1, m, []int64{1}); err == nil {
		t.Fatal("accepted short vector")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g, _, err := gen.SBM(2, gen.SBMConfig{Blocks: []int64{20, 20}, PIn: 0.4, POut: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g.Self[3] = 4
	a, err := FromGraph(2, g)
	if err != nil {
		t.Fatal(err)
	}
	// Degree via SpMV against the graph's own accounting: A·1 = weighted
	// degrees (diagonal already carries 2·self).
	ones := make([]int64, g.NumVertices())
	for i := range ones {
		ones[i] = 1
	}
	deg, err := MulVec(2, a, ones)
	if err != nil {
		t.Fatal(err)
	}
	want := g.WeightedDegrees(2)
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("A·1 [%d] = %d, want %d", i, deg[i], want[i])
		}
	}
	back, err := ToGraph(2, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.TotalWeight(1) != g.TotalWeight(1) || back.NumEdges() != g.NumEdges() {
		t.Fatal("graph changed in matrix round trip")
	}
	if back.Self[3] != 4 {
		t.Fatalf("self-loop lost: %d", back.Self[3])
	}
}

func TestToGraphRejectsBadMatrices(t *testing.T) {
	if _, err := ToGraph(1, mustNew(t, 1, 2, 3, nil)); err == nil {
		t.Fatal("accepted non-square")
	}
	asym := mustNew(t, 1, 2, 2, []Triple{{0, 1, 5}})
	if _, err := ToGraph(1, asym); err == nil {
		t.Fatal("accepted asymmetric")
	}
	oddDiag := mustNew(t, 1, 2, 2, []Triple{{0, 0, 3}})
	if _, err := ToGraph(1, oddDiag); err == nil {
		t.Fatal("accepted odd diagonal")
	}
}

func TestIndicator(t *testing.T) {
	s, err := Indicator(2, []int64{0, 1, 0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 4 || s.Cols != 3 || s.NNZ() != 4 {
		t.Fatalf("shape %dx%d nnz %d", s.Rows, s.Cols, s.NNZ())
	}
	for v, c := range []int64{0, 1, 0, 2} {
		if s.At(int64(v), c) != 1 {
			t.Fatalf("S[%d][%d] != 1", v, c)
		}
	}
	if _, err := Indicator(1, []int64{0, 5}, 3); err == nil {
		t.Fatal("accepted out-of-range community")
	}
}

func TestContractAlgebraicEqualsBucketKernel(t *testing.T) {
	r := par.NewRNG(5)
	for trial := 0; trial < 6; trial++ {
		n := int64(20 + r.Intn(60))
		var edges []graph.Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(4) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		k := int64(3 + r.Intn(5))
		comm := make([]int64, n)
		for v := range comm {
			comm[v] = r.Int63n(k)
		}
		direct := contract.ByMapping(exec.Background(2), g, comm, k, contract.Contiguous)
		algebraic, err := ContractAlgebraic(2, g, comm, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := algebraic.Validate(); err != nil {
			t.Fatal(err)
		}
		if direct.NumEdges() != algebraic.NumEdges() ||
			direct.TotalWeight(1) != algebraic.TotalWeight(1) {
			t.Fatalf("trial %d: shape/weight differ", trial)
		}
		de, ae := direct.Edges(), algebraic.Edges()
		sortEdges(de)
		sortEdges(ae)
		for i := range de {
			if de[i] != ae[i] {
				t.Fatalf("trial %d: edge %d: %v vs %v", trial, i, de[i], ae[i])
			}
		}
		for c := int64(0); c < k; c++ {
			if direct.Self[c] != algebraic.Self[c] {
				t.Fatalf("trial %d: Self[%d] %d vs %d", trial, c, direct.Self[c], algebraic.Self[c])
			}
		}
	}
}

func sortEdges(es []graph.Edge) {
	par.Sort(1, es, func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}

func TestAlgebraicContractionInsideEngineStep(t *testing.T) {
	// Full cross-check against a real engine phase: run one phase with the
	// direct kernel, then verify SᵀAS over the same mapping reproduces the
	// phase-1 community graph.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(500, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(g, core.Options{Threads: 2, MaxPhases: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 1 {
		t.Fatalf("expected exactly one level, got %d", len(res.Levels))
	}
	mapping := res.Levels[0]
	k := res.NumCommunities
	algebraic, err := ContractAlgebraic(2, g, mapping, k)
	if err != nil {
		t.Fatal(err)
	}
	direct := contract.ByMapping(exec.Background(2), g, mapping, k, contract.Contiguous)
	if algebraic.TotalWeight(1) != direct.TotalWeight(1) ||
		algebraic.NumEdges() != direct.NumEdges() {
		t.Fatal("algebraic and direct phase graphs differ")
	}
}

func TestMulAssociativity(t *testing.T) {
	// (A·B)·C == A·(B·C) exactly (integer arithmetic, no rounding).
	r := par.NewRNG(14)
	for trial := 0; trial < 10; trial++ {
		mk := func(rows, cols int64, nnz int) *Matrix {
			var ts []Triple
			for i := 0; i < nnz; i++ {
				ts = append(ts, Triple{r.Int63n(rows), r.Int63n(cols), r.Int63n(4) + 1})
			}
			m, err := New(2, rows, cols, ts)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		a := mk(6, 8, 20)
		b := mk(8, 5, 20)
		c := mk(5, 7, 20)
		ab, err := Mul(2, a, b)
		if err != nil {
			t.Fatal(err)
		}
		left, err := Mul(2, ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Mul(2, b, c)
		if err != nil {
			t.Fatal(err)
		}
		right, err := Mul(2, a, bc)
		if err != nil {
			t.Fatal(err)
		}
		for rr := int64(0); rr < 6; rr++ {
			for cc := int64(0); cc < 7; cc++ {
				if left.At(rr, cc) != right.At(rr, cc) {
					t.Fatalf("trial %d: (%d,%d): %d != %d", trial, rr, cc, left.At(rr, cc), right.At(rr, cc))
				}
			}
		}
	}
}

func TestTransposeOfProduct(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ.
	r := par.NewRNG(15)
	var ta, tb []Triple
	for i := 0; i < 30; i++ {
		ta = append(ta, Triple{r.Int63n(5), r.Int63n(9), r.Int63n(3) + 1})
		tb = append(tb, Triple{r.Int63n(9), r.Int63n(4), r.Int63n(3) + 1})
	}
	a := mustNew(t, 1, 5, 9, ta)
	b := mustNew(t, 1, 9, 4, tb)
	ab, err := Mul(1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	left := Transpose(1, ab)
	right, err := Mul(1, Transpose(1, b), Transpose(1, a))
	if err != nil {
		t.Fatal(err)
	}
	for rr := int64(0); rr < 4; rr++ {
		for cc := int64(0); cc < 5; cc++ {
			if left.At(rr, cc) != right.At(rr, cc) {
				t.Fatalf("(%d,%d): %d != %d", rr, cc, left.At(rr, cc), right.At(rr, cc))
			}
		}
	}
}

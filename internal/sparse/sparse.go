// Package sparse provides the sparse matrix substrate for the paper's §VI
// observation: "Much of the algorithm can be expressed through sparse
// matrix operations, which may lead to explicitly distributed memory
// implementations through the Combinatorial BLAS". It implements CSR
// matrices with parallel construction, transpose, sparse matrix–matrix
// multiplication (SpGEMM, row-wise Gustavson), and sparse matrix–vector
// products, and uses them to express graph contraction algebraically as
// the triple product SᵀAS — cross-checked against the direct bucket-sort
// kernel in the tests.
package sparse

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Triple is one (row, col, value) entry for matrix construction.
type Triple struct {
	R, C int64
	V    int64
}

// Matrix is an int64 CSR (compressed sparse row) matrix. Entries within a
// row are sorted by column and unique; zero entries are not stored.
type Matrix struct {
	Rows, Cols int64
	// RowPtr has Rows+1 entries; row r occupies
	// ColIdx[RowPtr[r]:RowPtr[r+1]] and Val likewise.
	RowPtr []int64
	ColIdx []int64
	Val    []int64
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int64 { return int64(len(m.ColIdx)) }

// Row returns row r's column indices and values.
func (m *Matrix) Row(r int64) (cols, vals []int64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns entry (r, c), 0 if not stored. Binary search per call; for
// iteration use Row.
func (m *Matrix) At(r, c int64) int64 {
	cols, vals := m.Row(r)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case cols[mid] < c:
			lo = mid + 1
		case cols[mid] > c:
			hi = mid
		default:
			return vals[mid]
		}
	}
	return 0
}

// New builds a CSR matrix from triples with p workers, accumulating
// duplicate coordinates. Entries that accumulate to zero are kept (the
// structure records them); callers wanting them dropped can filter the
// input.
func New(p int, rows, cols int64, triples []Triple) (*Matrix, error) {
	for _, t := range triples {
		if t.R < 0 || t.R >= rows || t.C < 0 || t.C >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", t.R, t.C, rows, cols)
		}
	}
	// Sort by (row, col), then segmented-accumulate, mirroring the graph
	// builder's pipeline.
	par.Sort(p, triples, func(a, b Triple) bool {
		if a.R != b.R {
			return a.R < b.R
		}
		return a.C < b.C
	})
	n := len(triples)
	head := make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 || triples[i-1].R != triples[i].R || triples[i-1].C != triples[i].C {
				head[i] = 1
			}
		}
	})
	unique := par.ExclusiveSumInt64(p, head)
	m := &Matrix{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int64, unique),
		Val:    make([]int64, unique),
	}
	rowCount := make([]int64, rows+1)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := triples[i]
			isStart := i == 0 || triples[i-1].R != t.R || triples[i-1].C != t.C
			slot := head[i]
			if !isStart {
				slot--
			}
			if isStart {
				m.ColIdx[slot] = t.C
				atomic.AddInt64(&rowCount[t.R], 1)
			}
			atomic.AddInt64(&m.Val[slot], t.V)
		}
	})
	par.ExclusiveSumInt64(p, rowCount)
	copy(m.RowPtr, rowCount)
	m.RowPtr[rows] = unique
	return m, nil
}

// Transpose returns mᵀ computed with p workers: counting pass,
// prefix-sum offsets, scatter pass, exactly the contraction kernel's
// placement discipline.
func Transpose(p int, m *Matrix) *Matrix {
	t := &Matrix{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int64, m.NNZ()),
		Val:    make([]int64, m.NNZ()),
	}
	counts := make([]int64, m.Cols+1)
	par.For(p, len(m.ColIdx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&counts[m.ColIdx[i]], 1)
		}
	})
	par.ExclusiveSumInt64(p, counts[:m.Cols])
	copy(t.RowPtr, counts[:m.Cols])
	t.RowPtr[m.Cols] = m.NNZ()
	cursor := counts // now write cursors per transposed row
	par.ForDynamic(p, int(m.Rows), 0, func(lo, hi int) {
		for r := int64(lo); r < int64(hi); r++ {
			cols, vals := m.Row(r)
			for i, c := range cols {
				pos := atomic.AddInt64(&cursor[c], 1) - 1
				t.ColIdx[pos] = r
				t.Val[pos] = vals[i]
			}
		}
	})
	// Rows of the transpose are filled in source-row order per column, and
	// scattering is concurrent, so sort each row.
	par.ForDynamic(p, int(t.Rows), 0, func(lo, hi int) {
		for r := int64(lo); r < int64(hi); r++ {
			sortRow(t.ColIdx[t.RowPtr[r]:t.RowPtr[r+1]], t.Val[t.RowPtr[r]:t.RowPtr[r+1]])
		}
	})
	return t
}

// sortRow sorts parallel (col, val) slices by col (insertion sort; rows are
// typically short, and SpGEMM re-sorts anyway).
func sortRow(cols, vals []int64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// Mul returns a·b via row-wise Gustavson SpGEMM with p workers: each worker
// keeps a dense accumulator over b's columns (a "sparse accumulator" SPA)
// and emits the touched entries per row.
func Mul(p int, a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	rows := int(a.Rows)
	rowOut := make([][]int64, rows) // interleaved (col, val) pairs per row
	par.ForDynamic(p, rows, 0, func(lo, hi int) {
		spa := make([]int64, b.Cols)
		mark := make([]bool, b.Cols) // membership, so zero sums don't duplicate
		touched := make([]int64, 0, 256)
		for r := lo; r < hi; r++ {
			touched = touched[:0]
			cols, vals := a.Row(int64(r))
			for i, k := range cols {
				av := vals[i]
				bcols, bvals := b.Row(k)
				for j, c := range bcols {
					if !mark[c] {
						mark[c] = true
						touched = append(touched, c)
					}
					spa[c] += av * bvals[j]
				}
			}
			sortInt64(touched)
			out := make([]int64, 0, 2*len(touched))
			for _, c := range touched {
				out = append(out, c, spa[c])
				spa[c] = 0
				mark[c] = false
			}
			rowOut[r] = out
		}
	})
	m := &Matrix{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	var nnz int64
	for r := 0; r < rows; r++ {
		m.RowPtr[r] = nnz
		nnz += int64(len(rowOut[r]) / 2)
	}
	m.RowPtr[rows] = nnz
	m.ColIdx = make([]int64, nnz)
	m.Val = make([]int64, nnz)
	par.For(p, rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := m.RowPtr[r]
			for i := 0; i < len(rowOut[r]); i += 2 {
				m.ColIdx[base] = rowOut[r][i]
				m.Val[base] = rowOut[r][i+1]
				base++
			}
		}
	})
	return m, nil
}

// sortInt64 is a small insertion sort for SPA touch lists.
func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// MulVec returns m·x with p workers.
func MulVec(p int, m *Matrix, x []int64) ([]int64, error) {
	if int64(len(x)) != m.Cols {
		return nil, fmt.Errorf("sparse: vector length %d for %d columns", len(x), m.Cols)
	}
	y := make([]int64, m.Rows)
	par.ForDynamic(p, int(m.Rows), 0, func(lo, hi int) {
		for r := int64(lo); r < int64(hi); r++ {
			cols, vals := m.Row(r)
			var s int64
			for i, c := range cols {
				s += vals[i] * x[c]
			}
			y[r] = s
		}
	})
	return y, nil
}

// FromGraph converts a bucketed graph to its symmetric adjacency matrix:
// A[i][j] = A[j][i] = w for every stored edge, A[i][i] = 2·Self[i] (the
// diagonal holds twice the internal weight so SᵀAS stays integral and
// symmetric).
func FromGraph(p int, g *graph.Graph) (*Matrix, error) {
	n := g.NumVertices()
	triples := make([]Triple, 0, 2*g.NumEdges()+n)
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		triples = append(triples, Triple{u, v, w}, Triple{v, u, w})
	})
	for x := int64(0); x < n; x++ {
		if g.Self[x] != 0 {
			triples = append(triples, Triple{x, x, 2 * g.Self[x]})
		}
	}
	return New(p, n, n, triples)
}

// ToGraph converts a symmetric adjacency matrix (diagonal = 2·self) back to
// the bucketed graph representation.
func ToGraph(p int, m *Matrix) (*graph.Graph, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("sparse: non-square %dx%d adjacency", m.Rows, m.Cols)
	}
	var edges []graph.Edge
	self := make([]int64, m.Rows)
	for r := int64(0); r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			switch {
			case c == r:
				if vals[i]%2 != 0 {
					return nil, fmt.Errorf("sparse: odd diagonal %d at %d", vals[i], r)
				}
				self[r] = vals[i] / 2
			case c > r:
				// Stored symmetric; take the upper triangle once and verify
				// symmetry lazily via At.
				if m.At(c, r) != vals[i] {
					return nil, fmt.Errorf("sparse: asymmetric entry (%d,%d)", r, c)
				}
				edges = append(edges, graph.Edge{U: r, V: c, W: vals[i]})
			}
		}
	}
	g, err := graph.Build(p, m.Rows, edges)
	if err != nil {
		return nil, err
	}
	copy(g.Self, self)
	return g, nil
}

// Indicator returns the n×k community indicator matrix S with
// S[v][comm[v]] = 1: column c selects community c's members.
func Indicator(p int, comm []int64, k int64) (*Matrix, error) {
	triples := make([]Triple, len(comm))
	for v, c := range comm {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("sparse: community %d outside [0,%d)", c, k)
		}
		triples[v] = Triple{int64(v), c, 1}
	}
	return New(p, int64(len(comm)), k, triples)
}

// ContractAlgebraic computes the community graph of g under the dense
// partition comm as the sparse triple product SᵀAS — the Combinatorial-
// BLAS-style formulation of §VI. It produces exactly the same graph as
// contract.ByMapping (verified in the tests), at the cost of general
// SpGEMM machinery instead of the specialized bucket kernel.
func ContractAlgebraic(p int, g *graph.Graph, comm []int64, k int64) (*graph.Graph, error) {
	a, err := FromGraph(p, g)
	if err != nil {
		return nil, err
	}
	s, err := Indicator(p, comm, k)
	if err != nil {
		return nil, err
	}
	st := Transpose(p, s)
	sta, err := Mul(p, st, a)
	if err != nil {
		return nil, err
	}
	b, err := Mul(p, sta, s)
	if err != nil {
		return nil, err
	}
	return ToGraph(p, b)
}

package seq

// The sequential side of the dynamic-graph story: the oracle's ApplyDelta is
// a plain edge-weight map folded and rebuilt, sharing nothing with the
// overlay's patch rows, so the incremental soak tests can cross-check the
// two-tier store the same way seq.Detect cross-checks the parallel engine.

import (
	"fmt"

	"repro/internal/graph"
)

// ApplyDelta returns a fresh graph equal to g with d applied under the
// overlay's semantics: inserts accumulate into an existing edge's weight,
// deletes remove the edge entirely (a delete of a missing edge is a no-op),
// and u == v updates act on the vertex's self-loop.
func ApplyDelta(g *graph.Graph, d *graph.Delta) (*graph.Graph, error) {
	n := g.NumVertices()
	if err := d.Validate(n); err != nil {
		return nil, err
	}
	type ekey [2]int64
	key := func(u, v int64) ekey {
		first, second := graph.StoredOrder(u, v)
		return ekey{first, second}
	}
	w := make(map[ekey]int64, g.NumEdges())
	g.ForEachEdge(func(_ int64, u, v, ew int64) {
		w[key(u, v)] += ew
	})
	self := make(map[int64]int64)
	for x := int64(0); x < n; x++ {
		if g.Self[x] != 0 {
			self[x] = g.Self[x]
		}
	}
	for _, up := range d.Updates {
		switch {
		case up.Op == graph.OpInsert && up.U == up.V:
			self[up.U] += up.W
		case up.Op == graph.OpInsert:
			w[key(up.U, up.V)] += up.W
		case up.U == up.V:
			delete(self, up.U)
		default:
			delete(w, key(up.U, up.V))
		}
	}
	edges := make([]graph.Edge, 0, len(w)+len(self))
	for k, ew := range w {
		edges = append(edges, graph.Edge{U: k[0], V: k[1], W: ew})
	}
	for x, sw := range self {
		edges = append(edges, graph.Edge{U: x, V: x, W: sw})
	}
	out, err := graph.Build(1, n, edges)
	if err != nil {
		return nil, fmt.Errorf("seq: rebuilding after delta: %w", err)
	}
	return out, nil
}

// Redetect applies d to g and re-runs the sequential detection from scratch
// on the result — the oracle's answer to one incremental step. It returns
// the updated graph (for chaining onto the next batch) and the detection.
func Redetect(g *graph.Graph, d *graph.Delta, opt Options) (*graph.Graph, *Result, error) {
	ng, err := ApplyDelta(g, d)
	if err != nil {
		return nil, nil, err
	}
	return ng, Detect(ng, opt), nil
}

package seq_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/seq"
)

// assertIdentical requires the oracle and the parallel engine to agree on
// every vertex's community.
func assertIdentical(t *testing.T, g *graph.Graph, opt core.Options, sopt seq.Options) {
	t.Helper()
	want := seq.Detect(g, sopt)
	got, err := core.Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCommunities != want.NumCommunities {
		t.Fatalf("engine %d communities, oracle %d", got.NumCommunities, want.NumCommunities)
	}
	if len(got.Stats) != want.Phases {
		t.Fatalf("engine %d phases, oracle %d", len(got.Stats), want.Phases)
	}
	for v := range want.CommunityOf {
		if got.CommunityOf[v] != want.CommunityOf[v] {
			t.Fatalf("vertex %d: engine %d, oracle %d", v, got.CommunityOf[v], want.CommunityOf[v])
		}
	}
	if math.Abs(got.FinalModularity-want.Modularity) > 1e-9 {
		t.Fatalf("modularity: engine %v, oracle %v", got.FinalModularity, want.Modularity)
	}
	if math.Abs(got.FinalCoverage-want.FinalCoverage) > 1e-9 {
		t.Fatalf("coverage: engine %v, oracle %v", got.FinalCoverage, want.FinalCoverage)
	}
}

func TestOracleMatchesEngineOnRandomGraphs(t *testing.T) {
	r := par.NewRNG(23)
	for trial := 0; trial < 12; trial++ {
		n := int64(20 + r.Intn(150))
		var edges []graph.Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(5) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		for _, p := range []int{1, 4} {
			assertIdentical(t, g, core.Options{Threads: p}, seq.Options{})
		}
	}
}

func TestOracleMatchesEngineOnLJSim(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g, core.Options{Threads: 4}, seq.Options{})
}

func TestOracleMatchesEngineWithCoverageStop(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 13))
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g,
		core.Options{Threads: 3, MinCoverage: 0.5},
		seq.Options{MinCoverage: 0.5})
}

func TestOracleMatchesEngineWithMaxPhases(t *testing.T) {
	g, _, err := gen.LJSim(1, gen.DefaultLJSim(1000, 2))
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g,
		core.Options{Threads: 2, MaxPhases: 3},
		seq.Options{MaxPhases: 3})
}

func TestOracleMatchesEngineOnRMAT(t *testing.T) {
	g, _, err := gen.ConnectedRMAT(2, gen.DefaultRMAT(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g, core.Options{Threads: 4}, seq.Options{})
}

func TestOracleDegenerate(t *testing.T) {
	res := seq.Detect(graph.NewEmpty(4), seq.Options{})
	if res.NumCommunities != 4 || res.Phases != 0 {
		t.Fatalf("isolated vertices: %+v", res)
	}
	res = seq.Detect(graph.NewEmpty(0), seq.Options{})
	if res.NumCommunities != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
}

func TestOracleKarate(t *testing.T) {
	assertIdentical(t, gen.Karate(), core.Options{Threads: 2}, seq.Options{})
}

// Package seq is a deliberately simple sequential implementation of the
// whole agglomerative algorithm, written independently of the parallel
// kernels: plain maps and slices, no worker pools, no atomics, no buckets.
// It is the analogue of the paper's observation that "ignoring the parallel
// directives produces correct, sequential C code" (§IV) — and because the
// parallel engine's matching discipline (mutually-best edges under a strict
// total order) is a deterministic function of the scored graph, seq.Detect
// must produce *identical* communities to core.Detect. The cross-check
// tests turn that into the library's strongest correctness oracle.
package seq

import (
	"sort"

	"repro/internal/graph"
)

// Result of a sequential detection run.
type Result struct {
	CommunityOf    []int64
	NumCommunities int64
	Phases         int
	FinalCoverage  float64
	Modularity     float64
}

// Options mirrors the subset of engine options the oracle supports.
type Options struct {
	// MinCoverage stops once the internal edge-weight fraction reaches it.
	MinCoverage float64
	// MaxPhases caps contraction phases; 0 = unlimited.
	MaxPhases int
}

// community is one node of the sequential community graph.
type community struct {
	self int64           // internal edge weight
	adj  map[int64]int64 // neighbor community -> edge weight
}

// Detect runs the algorithm sequentially with modularity scoring.
func Detect(g *graph.Graph, opt Options) *Result {
	n := g.NumVertices()
	res := &Result{CommunityOf: make([]int64, n)}
	for i := range res.CommunityOf {
		res.CommunityOf[i] = int64(i)
	}

	// Build the initial community graph.
	comms := make([]community, n)
	for i := range comms {
		comms[i] = community{self: g.Self[i], adj: map[int64]int64{}}
	}
	var totW int64
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		comms[u].adj[v] += w
		comms[v].adj[u] += w
		totW += w
	})
	for i := range comms {
		totW += comms[i].self
	}
	if totW == 0 {
		res.NumCommunities = n
		return res
	}
	m := float64(totW)

	// ids holds the live community ids in engine order: after every
	// contraction, the engine renumbers pairs densely by smaller endpoint,
	// which is exactly "sort the surviving leaders by old id".
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}

	for {
		if opt.MaxPhases > 0 && res.Phases >= opt.MaxPhases {
			break
		}
		if opt.MinCoverage > 0 && coverage(comms, ids, totW) >= opt.MinCoverage {
			break
		}
		// Degrees (volumes) of live communities.
		deg := map[int64]int64{}
		for _, c := range ids {
			d := 2 * comms[c].self
			for _, w := range comms[c].adj {
				d += w
			}
			deg[c] = d
		}
		// Score all edges; collect the positive ones once per pair.
		type scored struct {
			key  key
			a, b int64
		}
		var edges []scored
		// Identical floating-point expression to scoring.Modularity (hoisted
		// reciprocals), so near-ties order the same way in both
		// implementations.
		inv := 1 / m
		half := 1 / (2 * m * m)
		for _, c := range ids {
			for d, w := range comms[c].adj {
				if c > d {
					continue
				}
				s := float64(w)*inv - float64(deg[c])*float64(deg[d])*half
				if s > 0 {
					first, second := graph.StoredOrder(c, d)
					edges = append(edges, scored{makeKey(s, first, second), c, d})
				}
			}
		}
		if len(edges) == 0 {
			break
		}
		// Greedy matching in decreasing total order — the sequential
		// equivalent of the parallel mutually-best fixpoint.
		sort.Slice(edges, func(i, j int) bool { return edges[j].key.less(edges[i].key) })
		match := map[int64]int64{}
		for _, e := range edges {
			if _, ok := match[e.a]; ok {
				continue
			}
			if _, ok := match[e.b]; ok {
				continue
			}
			match[e.a] = e.b
			match[e.b] = e.a
		}
		if len(match) == 0 {
			break
		}
		// Contract: leaders keep their id, partners merge in; then all
		// surviving ids renumber densely in increasing old-id order.
		for _, c := range ids {
			p, ok := match[c]
			if !ok || p < c {
				continue // not matched, or c is the absorbed side
			}
			// Merge p into c.
			comms[c].self += comms[p].self + comms[c].adj[p]
			delete(comms[c].adj, p)
			delete(comms[p].adj, c)
			for x, w := range comms[p].adj {
				delete(comms[x].adj, p)
				comms[c].adj[x] += w
				comms[x].adj[c] = comms[c].adj[x]
			}
			comms[p].adj = nil
		}
		// Survivors, renumbered.
		var live []int64
		for _, c := range ids {
			if p, ok := match[c]; ok && p < c {
				continue
			}
			live = append(live, c)
		}
		newID := map[int64]int64{}
		for i, c := range live {
			newID[c] = int64(i)
		}
		resolve := func(c int64) int64 {
			if p, ok := match[c]; ok && p < c {
				return newID[p]
			}
			return newID[c]
		}
		for v := range res.CommunityOf {
			res.CommunityOf[v] = resolve(res.CommunityOf[v])
		}
		// Rebuild the community array under the dense numbering.
		next := make([]community, len(live))
		for i, c := range live {
			adj := make(map[int64]int64, len(comms[c].adj))
			for x, w := range comms[c].adj {
				adj[newID[x]] += w
			}
			next[i] = community{self: comms[c].self, adj: adj}
		}
		comms = next
		ids = ids[:len(live)]
		for i := range ids {
			ids[i] = int64(i)
		}
		res.Phases++
	}

	res.NumCommunities = int64(len(ids))
	res.FinalCoverage = coverage(comms, ids, totW)
	var q float64
	for _, c := range ids {
		d := 2 * comms[c].self
		for _, w := range comms[c].adj {
			d += w
		}
		dv := float64(d) / (2 * m)
		q += float64(comms[c].self)/m - dv*dv
	}
	res.Modularity = q
	return res
}

func coverage(comms []community, ids []int64, totW int64) float64 {
	if totW == 0 {
		return 0
	}
	var in int64
	for _, c := range ids {
		in += comms[c].self
	}
	return float64(in) / float64(totW)
}

// key replicates the matching package's total order exactly (score, then a
// hash of the stored endpoints, then the endpoints), so ties resolve the
// same way in both implementations.
type key struct {
	score         float64
	tie           uint64
	first, second int64
}

func makeKey(score float64, first, second int64) key {
	h := uint64(first)<<32 ^ uint64(second)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return key{score, h, first, second}
}

func (k key) less(o key) bool {
	if k.score != o.score {
		return k.score < o.score
	}
	if k.tie != o.tie {
		return k.tie < o.tie
	}
	if k.first != o.first {
		return k.first < o.first
	}
	return k.second < o.second
}

package pregel

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/par"
)

func TestEngineHaltsImmediatelyWhenAllVote(t *testing.T) {
	g := gen.Ring(8)
	e := NewEngine(2, g, 0)
	steps, err := e.Run(func(ctx *Context, _ []int64) {
		ctx.VoteToHalt()
	}, func(v int64) int64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("steps = %d, want 1", steps)
	}
}

func TestEngineSuperstepBound(t *testing.T) {
	g := gen.Ring(4)
	e := NewEngine(1, g, 3)
	// A program that never stops: always message neighbors.
	_, err := e.Run(func(ctx *Context, _ []int64) {
		ctx.SendToNeighbors(1)
		ctx.VoteToHalt()
	}, func(v int64) int64 { return v })
	if err == nil {
		t.Fatal("expected superstep bound error")
	}
}

func TestEngineMessageDelivery(t *testing.T) {
	// Directed accumulation: every vertex sends its id to vertex 0 in
	// superstep 0; vertex 0 sums incoming mail in superstep 1.
	g := gen.Star(5)
	e := NewEngine(2, g, 0)
	_, err := e.Run(func(ctx *Context, msgs []int64) {
		switch ctx.Superstep {
		case 0:
			if ctx.Vertex != 0 {
				ctx.Send(0, ctx.Vertex)
			}
		case 1:
			if ctx.Vertex == 0 {
				var sum int64
				for _, m := range msgs {
					sum += m
				}
				ctx.SetValue(sum)
			}
		}
		ctx.VoteToHalt()
	}, func(v int64) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if e.Values()[0] != 1+2+3+4 {
		t.Fatalf("vertex 0 accumulated %d, want 10", e.Values()[0])
	}
}

func TestConnectedComponentsMatchesDirectKernel(t *testing.T) {
	r := par.NewRNG(9)
	for trial := 0; trial < 8; trial++ {
		n := int64(20 + r.Intn(80))
		var edges []graph.Edge
		for i := 0; i < int(n); i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: 1})
		}
		g := graph.MustBuild(2, n, edges)
		want, wantK := graph.Components(2, g)
		got, _, err := ConnectedComponents(2, g)
		if err != nil {
			t.Fatal(err)
		}
		var gotK int64
		for v, c := range got {
			if c != want[v] {
				t.Fatalf("trial %d: vertex %d labeled %d, direct kernel %d", trial, v, c, want[v])
			}
			if c == int64(v) {
				gotK++
			}
		}
		if gotK != wantK {
			t.Fatalf("trial %d: %d components, want %d", trial, gotK, wantK)
		}
	}
}

func TestConnectedComponentsPath(t *testing.T) {
	// A path propagates the min label across its full length: superstep
	// count ≈ path length, exercising long message chains.
	const n = 200
	var edges []graph.Edge
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	g := graph.MustBuild(2, n, edges)
	comp, steps, err := ConnectedComponents(2, g)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range comp {
		if c != 0 {
			t.Fatalf("vertex %d labeled %d", v, c)
		}
	}
	if steps < n-2 {
		t.Fatalf("min label crossed a %d-path in %d supersteps?", n, steps)
	}
}

func TestLabelPropagationOnDisjointCliques(t *testing.T) {
	var edges []graph.Edge
	for c := int64(0); c < 3; c++ {
		for i := int64(0); i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				edges = append(edges, graph.Edge{U: c*6 + i, V: c*6 + j, W: 1})
			}
		}
	}
	g := graph.MustBuild(2, 18, edges)
	comm, k, steps, err := LabelPropagation(2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 2 {
		t.Fatalf("converged suspiciously fast: %d supersteps", steps)
	}
	if k != 3 {
		t.Fatalf("LPA found %d communities on 3 disjoint cliques", k)
	}
	for c := int64(0); c < 3; c++ {
		first := comm[c*6]
		for i := int64(1); i < 6; i++ {
			if comm[c*6+i] != first {
				t.Fatalf("clique %d split: %v", c, comm[c*6:c*6+6])
			}
		}
	}
}

func TestLabelPropagationIsValidPartition(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	comm, k, _, err := LabelPropagation(2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePartition(comm, g.NumVertices(), k); err != nil {
		t.Fatal(err)
	}
	// On a strongly community-structured graph LPA should find meaningful
	// structure (positive modularity, far fewer groups than vertices).
	q := metrics.Modularity(2, g, comm, k)
	if q < 0.2 {
		t.Fatalf("LPA modularity %v suspiciously low", q)
	}
	if k >= g.NumVertices()/2 {
		t.Fatalf("LPA found %d communities for %d vertices", k, g.NumVertices())
	}
}

func TestEngineValuesAndContextAccessors(t *testing.T) {
	g := gen.Clique(4)
	e := NewEngine(1, g, 0)
	_, err := e.Run(func(ctx *Context, _ []int64) {
		if ctx.Degree != 3 {
			t.Errorf("degree %d, want 3", ctx.Degree)
		}
		adj, wgt := ctx.Neighbors()
		if len(adj) != 3 || len(wgt) != 3 {
			t.Errorf("neighbors %v %v", adj, wgt)
		}
		ctx.SetValue(ctx.Value() * 2)
		ctx.VoteToHalt()
	}, func(v int64) int64 { return v + 1 })
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range e.Values() {
		if val != 2*(int64(v)+1) {
			t.Fatalf("value[%d] = %d", v, val)
		}
	}
}

// Package pregel is a vertex-centric bulk-synchronous-parallel (BSP)
// execution substrate in the style of Malewicz et al.'s Pregel — the second
// execution model the paper's §VI names as a target for the algorithm's
// primitives ("possibly cloud-based implementations through environments
// like Pregel"). Computation proceeds in supersteps: every active vertex
// receives the messages sent to it in the previous superstep, updates its
// value, sends messages along its edges, and may vote to halt; the run ends
// when no vertex is active and no messages are in flight.
//
// The package ships two programs built on the substrate, each cross-checked
// against the direct implementations elsewhere in the repository:
// connected components (vs. graph.Components) and label-propagation
// community detection (an extra baseline for the evaluation).
package pregel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
)

// Context gives a vertex program access to its vertex during a superstep.
type Context struct {
	// Superstep is the current superstep number, starting at 0.
	Superstep int
	// Vertex is the vertex id this invocation runs for.
	Vertex int64
	// Degree is the number of neighbors.
	Degree int

	engine *Engine
	halted *bool
}

// Value returns the vertex's current value.
func (c *Context) Value() int64 { return c.engine.values[c.Vertex] }

// SetValue replaces the vertex's value.
func (c *Context) SetValue(v int64) { c.engine.values[c.Vertex] = v }

// SendToNeighbors sends msg along every incident edge, to be delivered next
// superstep.
func (c *Context) SendToNeighbors(msg int64) {
	adj, _ := c.engine.csr.Neighbors(c.Vertex)
	out := &c.engine.outbox[c.Vertex]
	for _, u := range adj {
		*out = append(*out, message{u, msg})
	}
}

// Send sends msg to one vertex (any vertex, not only neighbors), delivered
// next superstep.
func (c *Context) Send(to int64, msg int64) {
	c.engine.outbox[c.Vertex] = append(c.engine.outbox[c.Vertex], message{to, msg})
}

// Neighbors returns the vertex's adjacency (shared slices; do not modify).
func (c *Context) Neighbors() (adj, wgt []int64) { return c.engine.csr.Neighbors(c.Vertex) }

// VoteToHalt deactivates the vertex; an incoming message reactivates it.
func (c *Context) VoteToHalt() { *c.halted = true }

// Program is a vertex program: called once per active vertex per superstep
// with the messages delivered to it.
type Program func(ctx *Context, messages []int64)

// message is an addressed in-flight value.
type message struct {
	to  int64
	val int64
}

// Engine runs vertex programs over a graph with p workers.
type Engine struct {
	csr    *graph.CSR
	n      int64
	p      int
	values []int64
	active []bool
	// outbox[v] collects v's outgoing messages during a superstep; they are
	// redistributed into per-vertex inboxes at the barrier, keeping sends
	// lock-free.
	outbox  [][]message
	inbox   [][]int64
	maxStep int
}

// NewEngine prepares a BSP engine over g. maxSupersteps bounds the run
// (<= 0 means 1000, a safety stop well above any program here).
func NewEngine(p int, g *graph.Graph, maxSupersteps int) *Engine {
	if maxSupersteps <= 0 {
		maxSupersteps = 1000
	}
	n := g.NumVertices()
	e := &Engine{
		csr:     graph.ToCSR(p, g),
		n:       n,
		p:       p,
		values:  make([]int64, n),
		active:  make([]bool, n),
		outbox:  make([][]message, n),
		inbox:   make([][]int64, n),
		maxStep: maxSupersteps,
	}
	return e
}

// Values returns the vertex value array (live; owned by the engine).
func (e *Engine) Values() []int64 { return e.values }

// Run initializes every vertex value with init and executes the program
// until every vertex has halted with no messages in flight, or the
// superstep bound is hit. It returns the number of supersteps executed.
func (e *Engine) Run(program Program, init func(v int64) int64) (int, error) {
	n := int(e.n)
	par.For(e.p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			e.values[v] = init(int64(v))
			e.active[v] = true
		}
	})
	steps := 0
	for ; steps < e.maxStep; steps++ {
		// Compute phase: run active vertices.
		par.ForDynamic(e.p, n, 0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if !e.active[v] {
					continue
				}
				halted := false
				ctx := Context{
					Superstep: steps,
					Vertex:    int64(v),
					Degree:    int(e.csr.Degree(int64(v))),
					engine:    e,
					halted:    &halted,
				}
				program(&ctx, e.inbox[v])
				if halted {
					e.active[v] = false
				}
			}
		})
		// Barrier: deliver messages; receiving mail reactivates a vertex.
		// Delivery is sharded by receiver range, so appends to a given
		// inbox happen on exactly one worker and no locks are needed (each
		// worker scans all outboxes — wasted reads, simple correctness; a
		// production engine would bucket by receiver first).
		par.For(e.p, n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				e.inbox[v] = e.inbox[v][:0]
			}
		})
		par.ForWorker(e.p, n, func(_, lo, hi int) {
			for src := 0; src < n; src++ {
				for _, m := range e.outbox[src] {
					if m.to >= int64(lo) && m.to < int64(hi) {
						e.inbox[m.to] = append(e.inbox[m.to], m.val)
						e.active[m.to] = true
					}
				}
			}
		})
		par.For(e.p, n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				e.outbox[v] = e.outbox[v][:0]
			}
		})
		// The run ends when every vertex has halted; pending mail would
		// have reactivated its receiver above.
		if !anyActiveLeft(e) {
			return steps + 1, nil
		}
	}
	return steps, fmt.Errorf("pregel: superstep bound %d hit with active vertices", e.maxStep)
}

func anyActiveLeft(e *Engine) bool {
	for _, a := range e.active {
		if a {
			return true
		}
	}
	return false
}

package pregel

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// ConnectedComponents labels each vertex with the smallest vertex id in its
// component using the classic Pregel min-label program: start with your own
// id, adopt the minimum of incoming labels, broadcast on improvement, halt
// otherwise. Cross-checked against the direct graph.Components kernel in
// the tests.
func ConnectedComponents(p int, g *graph.Graph) ([]int64, int, error) {
	e := NewEngine(p, g, 0)
	steps, err := e.Run(func(ctx *Context, msgs []int64) {
		best := ctx.Value()
		if ctx.Superstep == 0 {
			// Broadcast the initial label.
			ctx.SendToNeighbors(best)
			ctx.VoteToHalt()
			return
		}
		improved := false
		for _, m := range msgs {
			if m < best {
				best = m
				improved = true
			}
		}
		if improved {
			ctx.SetValue(best)
			ctx.SendToNeighbors(best)
		}
		ctx.VoteToHalt()
	}, func(v int64) int64 { return v })
	if err != nil {
		return nil, steps, err
	}
	out := make([]int64, g.NumVertices())
	copy(out, e.Values())
	return out, steps, nil
}

// LabelPropagation runs the Raghavan-style label propagation community
// detection heuristic as a vertex program: every vertex repeatedly adopts
// the most frequent label among its neighbors (ties toward the smaller
// label), until no vertex changes or maxSupersteps passes elapse. It
// returns the dense community assignment. Synchronous LPA can oscillate on
// bipartite-ish structures, so the superstep bound doubles as the
// oscillation stop; convergence to a fixpoint is not required for a valid
// partition.
//
// LPA serves as one more cheap baseline for the evaluation: it is what
// "community detection as a Pregel program" usually means in the
// cloud-processing literature the paper's §VI points toward.
func LabelPropagation(p int, g *graph.Graph, maxSupersteps int) ([]int64, int64, int, error) {
	if maxSupersteps <= 0 {
		maxSupersteps = 32
	}
	e := NewEngine(p, g, maxSupersteps+2)
	// Every vertex rebroadcasts its label each superstep so recipients see
	// their whole neighborhood, not just recent changers. lastChanged
	// records the latest superstep in which any label changed; once a full
	// superstep passes with no change, everyone stops broadcasting and the
	// system drains.
	var lastChanged atomic.Int64
	steps, err := e.Run(func(ctx *Context, msgs []int64) {
		defer ctx.VoteToHalt() // mail drives reactivation
		s := int64(ctx.Superstep)
		if ctx.Superstep == 0 {
			ctx.SendToNeighbors(ctx.Value())
			return
		}
		if ctx.Superstep > maxSupersteps || len(msgs) == 0 {
			return
		}
		// Most frequent incoming label; ties toward the smaller label.
		freq := make(map[int64]int64, len(msgs))
		for _, m := range msgs {
			freq[m]++
		}
		best, bestCount := ctx.Value(), freq[ctx.Value()]
		for label, c := range freq {
			if c > bestCount || (c == bestCount && label < best) {
				best, bestCount = label, c
			}
		}
		if best != ctx.Value() {
			ctx.SetValue(best)
			lastChanged.Store(s)
		}
		// Keep broadcasting while the process is still moving anywhere.
		if lastChanged.Load() >= s-1 {
			ctx.SendToNeighbors(ctx.Value())
		}
	}, func(v int64) int64 { return v })
	if err != nil {
		return nil, 0, steps, err
	}
	comm, k := metrics.Densify(e.Values())
	return comm, k, steps, nil
}

// Package buf holds the one shared grow-on-demand slice helper behind every
// scratch arena in the repository. The arenas (core.Scratch, the matching and
// contraction scratch, the graph's resizable arrays) all follow the same
// contract: reslice when capacity suffices, reallocate without copying when it
// does not, and leave the contents unspecified for the caller to overwrite.
// Before this package each arena carried its own private copy of that helper;
// they drifted only in parameter spelling, so one generic definition replaces
// all of them.
package buf

// Grow reslices xs to n entries, reallocating (without copying — the contents
// are stale by contract) only when capacity is short. Callers overwrite or
// zero the returned slice themselves.
func Grow[T any](xs []T, n int) []T {
	if cap(xs) < n {
		return make([]T, n)
	}
	return xs[:n]
}

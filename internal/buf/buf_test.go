package buf

import "testing"

func TestGrowReallocatesWhenShort(t *testing.T) {
	xs := make([]int64, 4)
	ys := Grow(xs, 8)
	if len(ys) != 8 {
		t.Fatalf("len = %d, want 8", len(ys))
	}
	if cap(ys) < 8 {
		t.Fatalf("cap = %d, want >= 8", cap(ys))
	}
}

func TestGrowReusesCapacity(t *testing.T) {
	xs := make([]int64, 16)
	xs[3] = 42
	ys := Grow(xs[:0], 8)
	if len(ys) != 8 {
		t.Fatalf("len = %d, want 8", len(ys))
	}
	if &ys[0] != &xs[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
	if ys[3] != 42 {
		t.Fatal("Grow copied or cleared contents; they are stale by contract")
	}
}

func TestGrowAllocFree(t *testing.T) {
	xs := make([]float64, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		xs = Grow(xs[:0], 512)
	})
	if allocs != 0 {
		t.Fatalf("Grow within capacity allocated %.1f times per run", allocs)
	}
}

package graph

import (
	"sync"

	"repro/internal/par"
)

// Overlay is the mutable tier of the two-tier dynamic graph store. The
// frozen tier is an immutable Graph plus its CSR view; the overlay layers
// per-vertex adjacency patches on top so edge inserts and deletes land in
// O(log d) without touching the base arrays. Readers see the merged view
// through the AdjacencyView contract (Degree, ForNeighbors, SelfLoop), and
// Compact folds the accumulated patches back into a fresh frozen base
// through the existing builder pipeline.
//
// Patches are symmetric: every non-self update is recorded on both endpoint
// rows, so a single row lookup answers any adjacency question. A patch entry
// stores the edge's full effective weight (not a diff); weight zero is a
// tombstone. Base rows are never modified — an entry flagged inBase shadows
// the corresponding base edge.
//
// Concurrency: ApplyDelta and Compact take the write lock; all read methods
// take the read lock, so concurrent readers are safe against a concurrent
// mutator. Read callbacks run under the read lock and must not call back
// into the overlay's mutating methods.
type Overlay struct {
	mu   sync.RWMutex
	p    int
	base *Graph
	csr  CSR

	// csrStale marks the CSR mirror as lagging the base after a compaction.
	// The mirror rebuilds lazily on the next merged read: serving loops
	// that fold and immediately re-detect (which reads the frozen base, not
	// the view) never pay for it.
	csrStale bool

	rows    map[int64]*patchRow
	selfOv  map[int64]int64
	rowFree []*patchRow

	version   uint64
	pending   int64
	liveEdges int64
	stats     OverlayStats

	// Compaction scratch: the materialized edge list, the builder's
	// intermediates, and the previous overlay-owned base recycled as the
	// next build destination. Steady-state compaction allocates nothing.
	edgeBuf   []Edge
	build     BuildScratch
	spare     *Graph
	baseOwned bool
}

// OverlayStats counts the update traffic an overlay has absorbed. All
// fields are cumulative across compactions.
type OverlayStats struct {
	// Inserts counts applied insert updates (including weight
	// accumulation onto existing edges).
	Inserts int64
	// Accumulated counts the subset of Inserts that added weight to an
	// already-live edge rather than creating one.
	Accumulated int64
	// Deletes counts delete updates that removed a live edge.
	Deletes int64
	// NoopDeletes counts delete updates whose edge did not exist.
	NoopDeletes int64
	// Compactions counts Compact calls that rebuilt the base.
	Compactions int64
}

// Compaction policy: fold the overlay once the patch volume makes merged
// reads noticeably slower than frozen reads. Either bound triggers.
const (
	// compactMinPending is the absolute pending-update threshold.
	compactMinPending = 64
	// compactFractionDen triggers once pending exceeds 1/compactFractionDen
	// of the base edge count (25%).
	compactFractionDen = 4
)

// patchRow is one vertex's adjacency patch: neighbor ids sorted ascending,
// parallel effective weights (0 = tombstone), and a flag marking entries
// that shadow a base edge. added/killed cache the row's net degree delta.
type patchRow struct {
	nbr    []int64
	w      []int64
	inBase []bool
	added  int64
	killed int64
}

// search returns the lower-bound insertion index for v and whether v is
// already present.
func (r *patchRow) search(v int64) (idx int, ok bool) {
	lo, hi := 0, len(r.nbr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.nbr[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(r.nbr) && r.nbr[lo] == v
}

func (r *patchRow) reset() {
	r.nbr = r.nbr[:0]
	r.w = r.w[:0]
	r.inBase = r.inBase[:0]
	r.added, r.killed = 0, 0
}

// NewOverlay wraps base in a mutable overlay using p workers (0 = all) for
// view rebuilds and compactions. The overlay never writes to base; the
// first Compact builds a replacement and later ones recycle overlay-owned
// generations.
func NewOverlay(p int, base *Graph) *Overlay {
	if p <= 0 {
		p = par.DefaultThreads()
	}
	o := &Overlay{
		p:      p,
		base:   base,
		rows:   make(map[int64]*patchRow),
		selfOv: make(map[int64]int64),
	}
	ToCSRInto(p, base, &o.csr)
	o.liveEdges = base.NumEdges()
	return o
}

// NumVertices returns |V|. The vertex set is fixed at construction; deltas
// mutate edges only.
func (o *Overlay) NumVertices() int64 { return o.base.NumVertices() }

// NumEdges returns the number of live unique non-self edges in the merged
// view.
func (o *Overlay) NumEdges() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.liveEdges
}

// Version returns the version of the last applied delta batch.
func (o *Overlay) Version() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.version
}

// Pending returns the number of updates applied since the last compaction.
func (o *Overlay) Pending() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.pending
}

// Stats returns a snapshot of the cumulative update counters.
func (o *Overlay) Stats() OverlayStats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.stats
}

// Base returns the current frozen base. It reflects updates only up to the
// last compaction; treat it as read-only. It is recycled as build scratch
// two compactions later — Clone it to keep it longer.
func (o *Overlay) Base() *Graph {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.base
}

// lockSharedWithCSR takes the read lock, first rebuilding the CSR mirror
// under the write lock if a compaction staled it. On return the caller
// holds the read lock and the mirror matches the base.
func (o *Overlay) lockSharedWithCSR() {
	o.mu.RLock()
	for o.csrStale {
		o.mu.RUnlock()
		o.mu.Lock()
		if o.csrStale {
			ToCSRInto(o.p, o.base, &o.csr)
			o.csrStale = false
		}
		o.mu.Unlock()
		o.mu.RLock()
	}
}

// Degree returns the number of distinct live neighbors of x in the merged
// view.
func (o *Overlay) Degree(x int64) int64 {
	o.lockSharedWithCSR()
	defer o.mu.RUnlock()
	d := o.csr.Degree(x)
	if r := o.rows[x]; r != nil {
		d += r.added - r.killed
	}
	return d
}

// SelfLoop returns the merged self-loop weight of vertex x.
func (o *Overlay) SelfLoop(x int64) int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if s, ok := o.selfOv[x]; ok {
		return s
	}
	return o.base.Self[x]
}

// ForNeighbors calls fn once per live neighbor of x with the neighbor id
// and the merged edge weight. Base neighbors shadowed by a patch report the
// patched weight (tombstoned ones are skipped); patch-only neighbors follow
// in ascending id order.
func (o *Overlay) ForNeighbors(x int64, fn func(v, w int64)) {
	o.lockSharedWithCSR()
	defer o.mu.RUnlock()
	adj, wgt := o.csr.Neighbors(x)
	r := o.rows[x]
	if r == nil {
		for i, v := range adj {
			fn(v, wgt[i])
		}
		return
	}
	for i, v := range adj {
		if idx, ok := r.search(v); ok {
			if w := r.w[idx]; w > 0 {
				fn(v, w)
			}
			continue
		}
		fn(v, wgt[i])
	}
	for idx, v := range r.nbr {
		if !r.inBase[idx] && r.w[idx] > 0 {
			fn(v, r.w[idx])
		}
	}
}

var _ AdjacencyView = (*Overlay)(nil)

// ApplyDelta applies one update batch atomically. Inserting an existing
// edge accumulates its weight (matching the builder's duplicate handling);
// deleting an absent edge is a counted no-op; u == v addresses the
// self-loop. The batch's version is recorded if it advances the overlay's.
func (o *Overlay) ApplyDelta(d *Delta) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := d.Validate(o.base.NumVertices()); err != nil {
		return err
	}
	for _, up := range d.Updates {
		o.applyLocked(up)
	}
	if d.Version > o.version {
		o.version = d.Version
	}
	o.pending += int64(len(d.Updates))
	return nil
}

func (o *Overlay) applyLocked(up Update) {
	if up.U == up.V {
		cur, ok := o.selfOv[up.U]
		if !ok {
			cur = o.base.Self[up.U]
		}
		switch up.Op {
		case OpInsert:
			o.selfOv[up.U] = cur + up.W
			o.stats.Inserts++
			if cur > 0 {
				o.stats.Accumulated++
			}
		case OpDelete:
			if cur == 0 {
				o.stats.NoopDeletes++
				return
			}
			o.selfOv[up.U] = 0
			o.stats.Deletes++
		}
		return
	}
	baseW := o.baseWeight(up.U, up.V)
	cur := baseW
	if r := o.rows[up.U]; r != nil {
		if idx, ok := r.search(up.V); ok {
			cur = r.w[idx]
		}
	}
	switch up.Op {
	case OpInsert:
		o.setEdge(up.U, up.V, cur+up.W, baseW > 0)
		o.stats.Inserts++
		if cur > 0 {
			o.stats.Accumulated++
		} else {
			o.liveEdges++
		}
	case OpDelete:
		if cur == 0 {
			o.stats.NoopDeletes++
			return
		}
		o.setEdge(up.U, up.V, 0, baseW > 0)
		o.stats.Deletes++
		o.liveEdges--
	}
}

// baseWeight returns the frozen base's weight for edge {u, v}, or 0 if the
// base does not store it. Buckets are sorted by V with distinct values
// (builder/contraction invariant), so a binary search in the parity-hash
// owner's bucket suffices. The unsorted CSR rows cannot answer this without
// a linear scan.
func (o *Overlay) baseWeight(u, v int64) int64 {
	f, s := StoredOrder(u, v)
	g := o.base
	lo, hi := g.Start[f], g.End[f]
	for lo < hi {
		mid := (lo + hi) >> 1
		if g.V[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.End[f] && g.V[lo] == s {
		return g.W[lo]
	}
	return 0
}

// setEdge records effective weight nw for edge {u, v} on both endpoint
// rows. inBase marks whether the base stores the edge.
func (o *Overlay) setEdge(u, v, nw int64, inBase bool) {
	o.setHalf(u, v, nw, inBase)
	o.setHalf(v, u, nw, inBase)
}

func (o *Overlay) setHalf(x, v, nw int64, inBase bool) {
	r := o.rows[x]
	if r == nil {
		r = o.newRow()
		o.rows[x] = r
	}
	idx, ok := r.search(v)
	if !ok {
		r.nbr = append(r.nbr, 0)
		copy(r.nbr[idx+1:], r.nbr[idx:])
		r.nbr[idx] = v
		r.w = append(r.w, 0)
		copy(r.w[idx+1:], r.w[idx:])
		r.w[idx] = 0
		r.inBase = append(r.inBase, false)
		copy(r.inBase[idx+1:], r.inBase[idx:])
		r.inBase[idx] = inBase
	} else {
		// Retract the entry's current degree contribution before the
		// overwrite; its inBase flag never changes (the base is frozen).
		if !r.inBase[idx] && r.w[idx] > 0 {
			r.added--
		}
		if r.inBase[idx] && r.w[idx] == 0 {
			r.killed--
		}
	}
	r.w[idx] = nw
	if !r.inBase[idx] && nw > 0 {
		r.added++
	}
	if r.inBase[idx] && nw == 0 {
		r.killed++
	}
}

func (o *Overlay) newRow() *patchRow {
	if n := len(o.rowFree); n > 0 {
		r := o.rowFree[n-1]
		o.rowFree = o.rowFree[:n-1]
		return r
	}
	return &patchRow{}
}

// ShouldCompact reports whether the patch volume has crossed the compaction
// policy thresholds (pending >= 64 updates, or pending >= 25% of base
// edges). Serving loops poll this; DetectIncremental compacts
// unconditionally because the kernels consume the frozen representation.
func (o *Overlay) ShouldCompact() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.pending == 0 {
		return false
	}
	return o.pending >= compactMinPending ||
		o.pending*compactFractionDen >= o.base.NumEdges()
}

// Compact folds the accumulated patches into a fresh frozen base through
// the builder pipeline and resets the patch tier. With no pending updates
// it returns the current base unchanged (idempotent). The returned graph is
// overlay-owned: it stays valid for one further compaction and is then
// recycled as the next build destination, so Clone it for longer keeps. The
// base passed to NewOverlay is never written.
func (o *Overlay) Compact() (*Graph, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.pending == 0 {
		return o.base, nil
	}
	g := o.base
	n := g.NumVertices()
	edges := o.edgeBuf[:0]
	// Materialize the merged view one stored row at a time, in (U, V)
	// order, so BuildInto's presort check skips the O(E log E) sort: for
	// each bucket-owner vertex x the walk merges the base bucket (V
	// ascending, shadowed entries taking their patched weight), the
	// patch-only entries x owns under StoredOrder, and the row's self-loop
	// at its V == x slot. Every live edge is emitted exactly once from its
	// owner row, already oriented, so the builder's orientation pass leaves
	// the order intact.
	for x := int64(0); x < n; x++ {
		r := o.rows[x]
		self := g.Self[x]
		if ov, ok := o.selfOv[x]; ok {
			self = ov
		}
		emit := func(v, w int64) {
			if self > 0 && x < v {
				edges = append(edges, Edge{x, x, self})
				self = 0
			}
			edges = append(edges, Edge{x, v, w})
		}
		e, pi := g.Start[x], 0
		for e < g.End[x] || (r != nil && pi < len(r.nbr)) {
			if r == nil || pi >= len(r.nbr) {
				emit(g.V[e], g.W[e])
				e++
				continue
			}
			pv := r.nbr[pi]
			switch {
			case e >= g.End[x] || pv < g.V[e]:
				// Patch entry with no base edge at this slot: emit it only
				// if it is live, patch-only, and x is its stored owner (the
				// symmetric copy on the other row covers the rest).
				if !r.inBase[pi] && r.w[pi] > 0 {
					if f, _ := StoredOrder(x, pv); f == x {
						emit(pv, r.w[pi])
					}
				}
				pi++
			case pv == g.V[e]:
				// Shadow entry: the patched weight replaces the base edge
				// (zero = tombstone, dropped).
				if r.w[pi] > 0 {
					emit(pv, r.w[pi])
				}
				e++
				pi++
			default:
				emit(g.V[e], g.W[e])
				e++
			}
		}
		if self > 0 {
			edges = append(edges, Edge{x, x, self})
		}
	}
	o.edgeBuf = edges

	ng, err := BuildInto(o.p, n, edges, o.spare, &o.build)
	if err != nil {
		return nil, err
	}
	if o.baseOwned {
		o.spare = o.base
	} else {
		o.spare = nil
	}
	o.base = ng
	o.baseOwned = true
	o.csrStale = true

	for k, r := range o.rows {
		r.reset()
		o.rowFree = append(o.rowFree, r)
		delete(o.rows, k)
	}
	clear(o.selfOv)
	o.pending = 0
	o.liveEdges = ng.NumEdges()
	o.stats.Compactions++
	return ng, nil
}

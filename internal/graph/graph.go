// Package graph implements the paper's core data structure (§IV-A): a
// weighted undirected graph stored as an array of (i, j, w) triples in which
// each edge appears exactly once, ordered by a parity hash of its endpoints
// and grouped into per-vertex buckets that need not be contiguous.
//
// Self-loop weights live in a |V|-long side array; for a community graph
// they count the input edges contained within each community. A graph with
// |V| vertices and |E| unique non-self edges occupies 3|V| + 3|E| 64-bit
// words plus a few scalars, matching the paper's space accounting.
package graph

import (
	"errors"
	"fmt"
	"repro/internal/buf"

	"repro/internal/par"
)

// Edge is one weighted undirected input edge. Builders accept edges in any
// orientation, with duplicates (weights accumulate) and self-loops (folded
// into the self-loop array).
type Edge struct {
	U, V int64
	W    int64
}

// Graph is the bucketed triple representation. The exported arrays are the
// algorithm kernels' working surface; treat them as read-only outside this
// package and the matching/contraction kernels unless noted otherwise.
//
// Invariants (checked by Validate):
//   - For every vertex x, Start[x] <= End[x] and [Start[x], End[x]) indexes
//     U, V, W. Buckets never overlap but may sit in any order and may leave
//     gaps (the paper's non-contiguous layout, §IV-C).
//   - For every stored edge e in x's bucket: U[e] == x, V[e] != x, W[e] > 0,
//     and (U[e], V[e]) is in parity-hash order (see StoredOrder).
//   - Each undirected edge {i, j} is stored exactly once, in the bucket of
//     its parity-hash first endpoint.
//   - Within a bucket produced by Build or contraction, edges are sorted by
//     V and have distinct V values.
type Graph struct {
	// U, V, W hold the stored edge triples. U[e] is the bucket owner.
	U, V, W []int64
	// Self[x] is the self-loop weight of vertex x (input edges inside
	// community x once the graph has been contracted at least once).
	Self []int64
	// Start and End delimit vertex x's bucket as [Start[x], End[x]).
	Start, End []int64

	n int64 // number of vertices
	m int64 // number of live stored edges (sum of bucket lengths)
}

// StoredOrder returns the endpoints of edge {i, j} in storage order under
// the paper's parity hash: if i and j have equal parity the smaller index
// comes first, otherwise the larger. This scatters the edges of high-degree
// vertices across many source buckets instead of piling them into one
// (§IV-A). StoredOrder panics if i == j; self-loops are not stored as
// triples.
func StoredOrder(i, j int64) (first, second int64) {
	if i == j {
		panic("graph: StoredOrder of a self-loop")
	}
	if (i^j)&1 == 0 {
		if i < j {
			return i, j
		}
		return j, i
	}
	if i > j {
		return i, j
	}
	return j, i
}

// NewEmpty returns a graph with n vertices and no edges.
func NewEmpty(n int64) *Graph {
	return &Graph{
		Self:  make([]int64, n),
		Start: make([]int64, n),
		End:   make([]int64, n),
		n:     n,
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int64 { return g.n }

// NumEdges returns the number of unique stored non-self edges.
func (g *Graph) NumEdges() int64 { return g.m }

// setCounts is used by builders and contraction to fix the scalar
// bookkeeping after filling the arrays directly.
func (g *Graph) setCounts(n, m int64) {
	g.n, g.m = n, m
}

// SetCounts fixes the vertex and live-edge counts after a kernel has filled
// the arrays directly. m must equal the sum of bucket lengths.
func (g *Graph) SetCounts(n, m int64) { g.setCounts(n, m) }

// ResizeVertices reslices the vertex-indexed arrays (Self, Start, End) to n
// entries, reusing their capacity when possible, and sets the vertex count.
// Newly exposed entries hold stale values the caller must overwrite — this
// is the contraction kernels' ping-pong reuse hook, not a public builder.
// Call SetCounts (or ResizeEdges plus filling) before handing the graph out.
func (g *Graph) ResizeVertices(n int64) {
	g.Self = buf.Grow(g.Self, int(n))
	g.Start = buf.Grow(g.Start, int(n))
	g.End = buf.Grow(g.End, int(n))
	g.n = n
}

// ResizeEdges reslices the edge arrays (U, V, W) to m entries under the same
// stale-contents contract as ResizeVertices. The live-edge count is set by
// SetCounts once the kernels know how many edges survived deduplication.
func (g *Graph) ResizeEdges(m int64) {
	g.U = buf.Grow(g.U, int(m))
	g.V = buf.Grow(g.V, int(m))
	g.W = buf.Grow(g.W, int(m))
}

// Bucket returns the [lo, hi) edge-array range of vertex x's bucket.
func (g *Graph) Bucket(x int64) (lo, hi int64) {
	return g.Start[x], g.End[x]
}

// ForEachEdge calls fn once per stored edge, bucket by bucket, with the
// edge-array index and the stored triple. It is sequential; parallel kernels
// iterate buckets themselves with par.ForDynamic.
func (g *Graph) ForEachEdge(fn func(e int64, u, v, w int64)) {
	for x := int64(0); x < g.n; x++ {
		for e := g.Start[x]; e < g.End[x]; e++ {
			fn(e, g.U[e], g.V[e], g.W[e])
		}
	}
}

// Edges materializes the stored edges as a slice, mostly for tests and I/O.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		out = append(out, Edge{u, v, w})
	})
	return out
}

// TotalWeight returns the graph's total edge weight: the sum of all stored
// edge weights plus all self-loop weights, each undirected edge counted
// once. Contraction preserves this quantity, so for a community graph it
// equals the input graph's edge weight (the modularity denominator m).
func (g *Graph) TotalWeight(p int) int64 {
	edges := g.sumBucketWeights(p)
	selves := par.SumInt64(p, g.Self)
	return edges + selves
}

func (g *Graph) sumBucketWeights(p int) int64 {
	n := int(g.n)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		p = par.DefaultThreads()
	}
	if par.Serial(p, n) {
		var s int64
		for x := 0; x < n; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				s += g.W[e]
			}
		}
		return s
	}
	partial := make([]int64, p)
	w := par.ForWorker(p, n, func(worker, lo, hi int) {
		var s int64
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				s += g.W[e]
			}
		}
		partial[worker] = s
	})
	var s int64
	for _, x := range partial[:w] {
		s += x
	}
	return s
}

// WeightedDegrees returns d[x] = 2·Self[x] + Σ_{e incident to x} W[e] for
// every vertex, computed with p workers. This is the community volume used
// by both the modularity and conductance scorers: d sums to 2·TotalWeight.
func (g *Graph) WeightedDegrees(p int) []int64 {
	return g.WeightedDegreesInto(p, nil)
}

// WeightedDegreesInto is WeightedDegrees writing into buf when its capacity
// suffices (growing it otherwise), so the engine's phase loop can reuse one
// degree buffer across phases. Every entry is overwritten; buf may be nil.
func (g *Graph) WeightedDegreesInto(p int, buf []int64) []int64 {
	n := int(g.n)
	d := buf
	if cap(d) < n {
		d = make([]int64, n)
	}
	d = d[:n]
	if par.Serial(p, n) {
		for x := 0; x < n; x++ {
			d[x] = 2 * g.Self[x]
		}
		for x := 0; x < n; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				w := g.W[e]
				d[g.U[e]] += w
				d[g.V[e]] += w
			}
		}
		return d
	}
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			d[x] = 2 * g.Self[x]
		}
	})
	// Each stored edge contributes to both endpoints. The U side is owned by
	// the bucket being scanned so a plain add suffices; the V side may live
	// anywhere, so it takes an atomic add (the paper's fetch-and-add).
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				w := g.W[e]
				atomicAdd(&d[g.U[e]], w)
				atomicAdd(&d[g.V[e]], w)
			}
		}
	})
	return d
}

// MaxBucketLen returns the length of the largest bucket, a measure of how
// well the parity hash scattered high-degree vertices.
func (g *Graph) MaxBucketLen() int64 {
	var max int64
	for x := int64(0); x < g.n; x++ {
		if l := g.End[x] - g.Start[x]; l > max {
			max = l
		}
	}
	return max
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		U:     append([]int64(nil), g.U...),
		V:     append([]int64(nil), g.V...),
		W:     append([]int64(nil), g.W...),
		Self:  append([]int64(nil), g.Self...),
		Start: append([]int64(nil), g.Start...),
		End:   append([]int64(nil), g.End...),
		n:     g.n,
		m:     g.m,
	}
	return c
}

// Validate checks every representation invariant and returns a descriptive
// error for the first violation found. It is O(|V| + |E| log |E|) and meant
// for tests and debugging, not inner loops.
func (g *Graph) Validate() error {
	if int64(len(g.Self)) != g.n || int64(len(g.Start)) != g.n || int64(len(g.End)) != g.n {
		return fmt.Errorf("graph: side arrays sized %d/%d/%d, want %d",
			len(g.Self), len(g.Start), len(g.End), g.n)
	}
	if len(g.U) != len(g.V) || len(g.U) != len(g.W) {
		return fmt.Errorf("graph: edge arrays sized %d/%d/%d", len(g.U), len(g.V), len(g.W))
	}
	capE := int64(len(g.U))
	var live int64
	type span struct{ lo, hi, owner int64 }
	spans := make([]span, 0, g.n)
	for x := int64(0); x < g.n; x++ {
		lo, hi := g.Start[x], g.End[x]
		if lo > hi {
			return fmt.Errorf("graph: vertex %d bucket [%d,%d) inverted", x, lo, hi)
		}
		if hi > capE || lo < 0 {
			return fmt.Errorf("graph: vertex %d bucket [%d,%d) outside edge arrays of len %d", x, lo, hi, capE)
		}
		if g.Self[x] < 0 {
			return fmt.Errorf("graph: vertex %d negative self-loop %d", x, g.Self[x])
		}
		if lo < hi {
			spans = append(spans, span{lo, hi, x})
		}
		live += hi - lo
		var prevV int64 = -1
		for e := lo; e < hi; e++ {
			u, v, w := g.U[e], g.V[e], g.W[e]
			if u != x {
				return fmt.Errorf("graph: edge %d in bucket of %d has U=%d", e, x, u)
			}
			if v == u {
				return fmt.Errorf("graph: edge %d is a stored self-loop (%d,%d)", e, u, v)
			}
			if v < 0 || v >= g.n {
				return fmt.Errorf("graph: edge %d endpoint %d out of range", e, v)
			}
			if w <= 0 {
				return fmt.Errorf("graph: edge %d non-positive weight %d", e, w)
			}
			if first, _ := StoredOrder(u, v); first != u {
				return fmt.Errorf("graph: edge %d (%d,%d) violates parity-hash order", e, u, v)
			}
			if v <= prevV {
				return fmt.Errorf("graph: bucket of %d not sorted/unique at edge %d (V=%d after %d)", x, e, v, prevV)
			}
			prevV = v
		}
	}
	if live != g.m {
		return fmt.Errorf("graph: live edge count %d does not match m=%d", live, g.m)
	}
	// Buckets must not overlap.
	par.Sort(1, spans, func(a, b span) bool { return a.lo < b.lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("graph: buckets of %d and %d overlap", spans[i-1].owner, spans[i].owner)
		}
	}
	return nil
}

// ErrVertexRange reports an edge endpoint outside [0, n).
var ErrVertexRange = errors.New("graph: edge endpoint out of vertex range")

package graph

import (
	"repro/internal/buf"
	"repro/internal/par"
)

// CSR is a compressed sparse row adjacency view of a Graph in which every
// stored edge appears in both endpoints' rows. Sequential baselines (CNM,
// Louvain), the refinement pass, and the quality metrics want symmetric
// neighbor iteration, which the single-stored bucketed layout does not give
// directly.
//
// Self-loop weights are not materialized as CSR entries; they remain in
// Self, mirroring the triple representation.
type CSR struct {
	// Offsets has length |V|+1; vertex x's neighbors occupy
	// Adj[Offsets[x]:Offsets[x+1]] with weights in the same positions of Wgt.
	Offsets []int64
	Adj     []int64
	Wgt     []int64
	// Self mirrors Graph.Self.
	Self []int64
	// cursor is the scatter pass's per-row write position, kept so
	// ToCSRInto can rebuild the view without allocating.
	cursor []int64
}

// NumVertices returns the number of vertices in the view.
func (c *CSR) NumVertices() int64 { return int64(len(c.Offsets)) - 1 }

// Degree returns the number of distinct neighbors of x.
func (c *CSR) Degree(x int64) int64 { return c.Offsets[x+1] - c.Offsets[x] }

// Neighbors returns the neighbor and weight slices of vertex x.
func (c *CSR) Neighbors(x int64) (adj, wgt []int64) {
	lo, hi := c.Offsets[x], c.Offsets[x+1]
	return c.Adj[lo:hi], c.Wgt[lo:hi]
}

// ForNeighbors calls fn once per neighbor of x with the neighbor id and the
// edge weight. Together with Degree and SelfLoop this is the unified
// adjacency contract (AdjacencyView) shared with the mutable Overlay, so
// kernels and serving paths can run against either tier.
func (c *CSR) ForNeighbors(x int64, fn func(v, w int64)) {
	lo, hi := c.Offsets[x], c.Offsets[x+1]
	for i := lo; i < hi; i++ {
		fn(c.Adj[i], c.Wgt[i])
	}
}

// SelfLoop returns the self-loop weight of vertex x.
func (c *CSR) SelfLoop(x int64) int64 { return c.Self[x] }

// RowBounds returns the per-vertex row start and end offset slices
// (start[x], end[x] delimit x's neighbors). Schedule builders consume these
// instead of indexing Offsets directly, keeping raw CSR field access inside
// this package.
func (c *CSR) RowBounds() (start, end []int64) {
	n := len(c.Offsets) - 1
	return c.Offsets[:n], c.Offsets[1 : n+1]
}

// AdjacencyView is the unified symmetric-adjacency iteration contract served
// by both tiers of the dynamic store: the frozen CSR base and the mutable
// Overlay. Callers that only read neighborhoods program against this
// interface and work unchanged on either.
type AdjacencyView interface {
	NumVertices() int64
	Degree(x int64) int64
	ForNeighbors(x int64, fn func(v, w int64))
	SelfLoop(x int64) int64
}

var _ AdjacencyView = (*CSR)(nil)

// ToCSR symmetrizes g into a CSR view using p workers: a counting pass with
// fetch-and-add, a prefix sum for row offsets, and a scatter pass.
func ToCSR(p int, g *Graph) *CSR {
	return ToCSRInto(p, g, &CSR{})
}

// ToCSRInto is ToCSR rebuilding the view inside c: every array is reused
// when its capacity suffices and grown (without copying) otherwise, so a
// scratch-held CSR costs nothing to refresh in the steady state. A nil c
// behaves like ToCSR.
func ToCSRInto(p int, g *Graph, c *CSR) *CSR {
	if c == nil {
		c = &CSR{}
	}
	n := int(g.NumVertices())
	c.Offsets = buf.Grow(c.Offsets, n+1)
	counts := c.Offsets
	par.ZeroInt64(p, counts)
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				atomicAdd(&counts[g.U[e]], 1)
				atomicAdd(&counts[g.V[e]], 1)
			}
		}
	})
	total := par.ExclusiveSumInt64(p, counts[:n])
	counts[n] = total
	c.Adj = buf.Grow(c.Adj, int(total))
	c.Wgt = buf.Grow(c.Wgt, int(total))
	c.Self = buf.Grow(c.Self, n)
	copy(c.Self, g.Self)
	// The offsets double as each row's initial write position; the scatter
	// advances a separate cursor copy so Offsets survives.
	c.cursor = buf.Grow(c.cursor, n)
	cursor := c.cursor
	copy(cursor, c.Offsets[:n])
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for e := g.Start[x]; e < g.End[x]; e++ {
				u, v, w := g.U[e], g.V[e], g.W[e]
				pu := atomicAdd(&cursor[u], 1) - 1
				c.Adj[pu], c.Wgt[pu] = v, w
				pv := atomicAdd(&cursor[v], 1) - 1
				c.Adj[pv], c.Wgt[pv] = u, w
			}
		}
	})
	return c
}

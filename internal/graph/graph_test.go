package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/par"
)

func TestStoredOrderParityHash(t *testing.T) {
	cases := []struct {
		i, j, first, second int64
	}{
		{0, 2, 0, 2},   // both even: smaller first
		{4, 2, 2, 4},   // both even, reversed input
		{1, 3, 1, 3},   // both odd: smaller first
		{1, 2, 2, 1},   // mixed parity: larger first
		{2, 1, 2, 1},   // mixed parity, reversed input
		{7, 10, 10, 7}, // mixed parity
	}
	for _, c := range cases {
		f, s := StoredOrder(c.i, c.j)
		if f != c.first || s != c.second {
			t.Errorf("StoredOrder(%d,%d) = (%d,%d), want (%d,%d)", c.i, c.j, f, s, c.first, c.second)
		}
	}
}

func TestStoredOrderSymmetric(t *testing.T) {
	f := func(iRaw, jRaw uint16) bool {
		i, j := int64(iRaw), int64(jRaw)
		if i == j {
			return true
		}
		f1, s1 := StoredOrder(i, j)
		f2, s2 := StoredOrder(j, i)
		// Orientation-independent, and returns the same endpoints.
		return f1 == f2 && s1 == s2 &&
			((f1 == i && s1 == j) || (f1 == j && s1 == i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoredOrderSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StoredOrder(3, 3)
}

func TestBuildEmpty(t *testing.T) {
	g, err := Build(2, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAccumulatesDuplicates(t *testing.T) {
	edges := []Edge{
		{0, 1, 1}, {1, 0, 2}, {0, 1, 3}, // same undirected edge three times
		{2, 3, 1},
		{4, 4, 5}, {4, 4, 1}, // self-loops accumulate in Self
	}
	g, err := Build(3, 5, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("|E| = %d, want 2", g.NumEdges())
	}
	if g.Self[4] != 6 {
		t.Fatalf("Self[4] = %d, want 6", g.Self[4])
	}
	var found01 int64
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		if (u == 0 && v == 1) || (u == 1 && v == 0) {
			found01 = w
		}
	})
	if found01 != 6 {
		t.Fatalf("weight of {0,1} = %d, want 6", found01)
	}
	if g.TotalWeight(2) != 6+1+6 {
		t.Fatalf("TotalWeight = %d, want 13", g.TotalWeight(2))
	}
}

func TestBuildRejectsBadEdges(t *testing.T) {
	for _, bad := range [][]Edge{
		{{0, 5, 1}},  // endpoint out of range
		{{-1, 0, 1}}, // negative endpoint
		{{0, 1, 0}},  // zero weight
		{{0, 1, -2}}, // negative weight
	} {
		if _, err := Build(2, 5, bad); err == nil {
			t.Fatalf("Build accepted bad edges %v", bad)
		}
	}
}

func TestBuildParityPlacement(t *testing.T) {
	// Edge {1,2}: mixed parity, so larger endpoint 2 owns the bucket.
	g := MustBuild(1, 3, []Edge{{1, 2, 7}})
	lo, hi := g.Bucket(2)
	if hi-lo != 1 || g.U[lo] != 2 || g.V[lo] != 1 {
		t.Fatalf("edge stored as (%d,%d) in bucket of 2: [%d,%d)", g.U[lo], g.V[lo], lo, hi)
	}
	if lo2, hi2 := g.Bucket(1); hi2 != lo2 {
		t.Fatalf("vertex 1 should have empty bucket, got [%d,%d)", lo2, hi2)
	}
}

func TestBuildMatchesSequentialAcrossWorkers(t *testing.T) {
	r := par.NewRNG(99)
	const n = 200
	var edges []Edge
	for i := 0; i < 3000; i++ {
		edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), r.Int63n(4) + 1})
	}
	mk := func(p int) *Graph {
		in := append([]Edge(nil), edges...)
		return MustBuild(p, n, in)
	}
	want := mk(1)
	if err := want.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 9} {
		got := mk(p)
		if err := got.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got.NumEdges() != want.NumEdges() {
			t.Fatalf("p=%d: |E| %d != %d", p, got.NumEdges(), want.NumEdges())
		}
		if got.TotalWeight(1) != want.TotalWeight(1) {
			t.Fatalf("p=%d: weight %d != %d", p, got.TotalWeight(1), want.TotalWeight(1))
		}
		we := want.Edges()
		ge := got.Edges()
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("p=%d: edge %d: %v != %v", p, i, ge[i], we[i])
			}
		}
	}
}

func TestBuildProperty(t *testing.T) {
	// Total weight is conserved and Validate passes for arbitrary inputs.
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		const n = 50
		var edges []Edge
		var want int64
		for i := 0; i+2 < len(raw); i += 3 {
			w := int64(raw[i+2]%9) + 1
			edges = append(edges, Edge{int64(raw[i] % n), int64(raw[i+1] % n), w})
			want += w
		}
		g, err := Build(p, n, edges)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.TotalWeight(p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDegrees(t *testing.T) {
	// Triangle 0-1-2 with weights 1,2,3 and a self-loop of 4 at vertex 0.
	g := MustBuild(2, 3, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}, {0, 0, 4}})
	d := g.WeightedDegrees(3)
	want := []int64{1 + 3 + 8, 1 + 2, 2 + 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("d[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	var sum int64
	for _, x := range d {
		sum += x
	}
	if sum != 2*g.TotalWeight(1) {
		t.Fatalf("degree sum %d != 2·weight %d", sum, 2*g.TotalWeight(1))
	}
}

func TestWeightedDegreesProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		const n = 30
		var edges []Edge
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, Edge{int64(raw[i] % n), int64(raw[i+1] % n), int64(raw[i+2]%5) + 1})
		}
		g, err := Build(p, n, edges)
		if err != nil {
			return false
		}
		d := g.WeightedDegrees(p)
		var sum int64
		for _, x := range d {
			sum += x
		}
		return sum == 2*g.TotalWeight(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]int64{
		{1, 2},
		{0, 2},
		{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("|E| = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Listing both directions must not double the weights.
	g.ForEachEdge(func(_ int64, _, _, w int64) {
		if w != 1 {
			t.Fatalf("edge weight %d, want 1", w)
		}
	})
}

func TestCloneIndependence(t *testing.T) {
	g := MustBuild(1, 3, []Edge{{0, 1, 1}, {1, 2, 2}})
	c := g.Clone()
	c.W[0] = 99
	c.Self[0] = 7
	if g.W[0] == 99 || g.Self[0] == 7 {
		t.Fatal("Clone shares storage with original")
	}
	if err := c.Validate(); err == nil {
		// c is still valid (weight 99 is positive); just confirm Validate runs.
		_ = err
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph {
		return MustBuild(1, 4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 1}})
	}
	corrupt := []func(*Graph){
		func(g *Graph) { g.W[0] = 0 },
		func(g *Graph) { g.W[0] = -1 },
		func(g *Graph) { g.Self[1] = -3 },
		func(g *Graph) { g.Start[0], g.End[0] = 1, 0 },
		func(g *Graph) { g.V[g.Start[findOwner(g)]] = g.U[g.Start[findOwner(g)]] }, // self-loop
		func(g *Graph) { g.SetCounts(g.NumVertices(), g.NumEdges()+1) },
	}
	for i, mutate := range corrupt {
		g := fresh()
		if err := g.Validate(); err != nil {
			t.Fatalf("fresh graph invalid: %v", err)
		}
		mutate(g)
		if err := g.Validate(); err == nil {
			t.Fatalf("corruption %d not caught", i)
		}
	}
}

// findOwner returns some vertex with a non-empty bucket.
func findOwner(g *Graph) int64 {
	for x := int64(0); x < g.NumVertices(); x++ {
		if g.End[x] > g.Start[x] {
			return x
		}
	}
	panic("no edges")
}

func TestCompactPreservesGraph(t *testing.T) {
	r := par.NewRNG(5)
	const n = 100
	var edges []Edge
	for i := 0; i < 500; i++ {
		edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), 1})
	}
	g := MustBuild(2, n, edges)
	before := g.Edges()
	wBefore := g.TotalWeight(1)
	Compact(3, g)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalWeight(1) != wBefore {
		t.Fatalf("weight changed: %d != %d", g.TotalWeight(1), wBefore)
	}
	after := g.Edges()
	if len(before) != len(after) {
		t.Fatalf("edge count changed: %d != %d", len(before), len(after))
	}
	// Buckets must now be contiguous in vertex order.
	var pos int64
	for x := int64(0); x < g.NumVertices(); x++ {
		if g.Start[x] != pos {
			t.Fatalf("vertex %d bucket starts at %d, want %d", x, g.Start[x], pos)
		}
		pos = g.End[x]
	}
}

func TestMaxBucketLen(t *testing.T) {
	g := MustBuild(1, 6, []Edge{{0, 2, 1}, {0, 4, 1}, {1, 3, 1}})
	// {0,2} and {0,4} are even-even → bucket of 0 has 2 edges.
	if got := g.MaxBucketLen(); got != 2 {
		t.Fatalf("MaxBucketLen = %d, want 2", got)
	}
}

func TestToCSRSymmetric(t *testing.T) {
	g := MustBuild(2, 4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 3, 4}, {1, 1, 5}})
	c := ToCSR(3, g)
	if c.NumVertices() != 4 {
		t.Fatalf("CSR |V| = %d", c.NumVertices())
	}
	if c.Self[1] != 5 {
		t.Fatalf("CSR Self[1] = %d, want 5", c.Self[1])
	}
	// Every stored edge appears in both rows with the same weight.
	weight := func(x, y int64) int64 {
		adj, wgt := c.Neighbors(x)
		for i, v := range adj {
			if v == y {
				return wgt[i]
			}
		}
		return -1
	}
	for _, e := range g.Edges() {
		if weight(e.U, e.V) != e.W || weight(e.V, e.U) != e.W {
			t.Fatalf("edge %v not symmetric in CSR", e)
		}
	}
	var totalDeg int64
	for x := int64(0); x < 4; x++ {
		totalDeg += c.Degree(x)
	}
	if totalDeg != 2*g.NumEdges() {
		t.Fatalf("CSR entries %d != 2|E| = %d", totalDeg, 2*g.NumEdges())
	}
}

func TestComponentsSingletons(t *testing.T) {
	g := NewEmpty(4)
	comp, k := Components(2, g)
	if k != 4 {
		t.Fatalf("components = %d, want 4", k)
	}
	for x, c := range comp {
		if c != int64(x) {
			t.Fatalf("comp[%d] = %d", x, c)
		}
	}
}

func TestComponentsPath(t *testing.T) {
	// A long path stresses the propagation/jumping convergence.
	const n = 2000
	var edges []Edge
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, Edge{i, i + 1, 1})
	}
	g := MustBuild(4, n, edges)
	comp, k := Components(4, g)
	if k != 1 {
		t.Fatalf("components = %d, want 1", k)
	}
	for x, c := range comp {
		if c != 0 {
			t.Fatalf("comp[%d] = %d, want 0", x, c)
		}
	}
}

func TestComponentsTwoCliquesAndIsolate(t *testing.T) {
	var edges []Edge
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, Edge{i, j, 1})
			edges = append(edges, Edge{5 + i, 5 + j, 1})
		}
	}
	g := MustBuild(2, 11, edges) // vertex 10 isolated
	comp, k := Components(2, g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[10] != 10 {
		t.Fatalf("isolate labelled %d", comp[10])
	}
	for i := 0; i < 5; i++ {
		if comp[i] != 0 || comp[5+i] != 5 {
			t.Fatalf("comp[%d]=%d comp[%d]=%d", i, comp[i], 5+i, comp[5+i])
		}
	}
}

func TestComponentsProperty(t *testing.T) {
	// Labels constant within an edge and count matches a sequential BFS.
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		const n = 40
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{int64(raw[i] % n), int64(raw[i+1] % n), 1})
		}
		g, err := Build(p, n, edges)
		if err != nil {
			return false
		}
		comp, k := Components(p, g)
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e.V] {
				return false
			}
		}
		return k == bfsComponentCount(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// bfsComponentCount is a trivially correct sequential reference.
func bfsComponentCount(g *Graph) int64 {
	n := g.NumVertices()
	c := ToCSR(1, g)
	seen := make([]bool, n)
	var k int64
	var queue []int64
	for s := int64(0); s < n; s++ {
		if seen[s] {
			continue
		}
		k++
		seen[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			adj, _ := c.Neighbors(x)
			for _, y := range adj {
				if !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
	}
	return k
}

func TestLargestComponent(t *testing.T) {
	// Component A: clique on {0..4} (10 edges). Component B: edge {5,6}.
	var edges []Edge
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, Edge{i, j, 1})
		}
	}
	edges = append(edges, Edge{5, 6, 1})
	g := MustBuild(2, 8, edges) // vertex 7 isolated
	g.Self[3] = 9               // self-loop carried into the subgraph
	sub, orig := LargestComponent(2, g)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 5 || sub.NumEdges() != 10 {
		t.Fatalf("largest component |V|=%d |E|=%d, want 5/10", sub.NumVertices(), sub.NumEdges())
	}
	if len(orig) != 5 {
		t.Fatalf("origID len %d", len(orig))
	}
	for i, o := range orig {
		if o != int64(i) {
			t.Fatalf("origID[%d] = %d", i, o)
		}
	}
	if sub.Self[3] != 9 {
		t.Fatalf("self-loop not carried: Self[3] = %d", sub.Self[3])
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	sub, orig := LargestComponent(1, NewEmpty(0))
	if sub.NumVertices() != 0 || len(orig) != 0 {
		t.Fatal("empty graph mishandled")
	}
}

// naiveBuild is a trivially correct map-based reference for Build.
func naiveBuild(n int64, edges []Edge) (self map[int64]int64, weight map[[2]int64]int64) {
	self = map[int64]int64{}
	weight = map[[2]int64]int64{}
	for _, e := range edges {
		if e.U == e.V {
			self[e.U] += e.W
			continue
		}
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		weight[[2]int64{a, b}] += e.W
	}
	return self, weight
}

func TestBuildMatchesNaiveReference(t *testing.T) {
	r := par.NewRNG(77)
	for trial := 0; trial < 15; trial++ {
		n := int64(10 + r.Intn(100))
		var edges []Edge
		for i := 0; i < int(n)*4; i++ {
			edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), r.Int63n(7) + 1})
		}
		wantSelf, wantW := naiveBuild(n, append([]Edge(nil), edges...))
		g := MustBuild(3, n, edges)
		if int64(len(wantW)) != g.NumEdges() {
			t.Fatalf("trial %d: %d unique edges, naive %d", trial, g.NumEdges(), len(wantW))
		}
		g.ForEachEdge(func(_ int64, u, v, w int64) {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if wantW[[2]int64{a, b}] != w {
				t.Fatalf("trial %d: edge {%d,%d} weight %d, naive %d", trial, u, v, w, wantW[[2]int64{a, b}])
			}
		})
		for x := int64(0); x < n; x++ {
			if g.Self[x] != wantSelf[x] {
				t.Fatalf("trial %d: Self[%d] = %d, naive %d", trial, x, g.Self[x], wantSelf[x])
			}
		}
	}
}

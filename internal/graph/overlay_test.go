package graph

import (
	"sync"
	"testing"

	"repro/internal/par"
)

// overlayRef is the naive merged-view reference: undirected edge weights
// keyed by sorted endpoints plus per-vertex self-loops.
type overlayRef struct {
	n    int64
	w    map[[2]int64]int64
	self map[int64]int64
}

func newOverlayRef(g *Graph) *overlayRef {
	r := &overlayRef{n: g.NumVertices(), w: map[[2]int64]int64{}, self: map[int64]int64{}}
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		r.w[edgeKey(u, v)] = w
	})
	for x := int64(0); x < g.NumVertices(); x++ {
		if g.Self[x] > 0 {
			r.self[x] = g.Self[x]
		}
	}
	return r
}

func edgeKey(u, v int64) [2]int64 {
	if u > v {
		u, v = v, u
	}
	return [2]int64{u, v}
}

func (r *overlayRef) apply(up Update) {
	if up.U == up.V {
		switch up.Op {
		case OpInsert:
			r.self[up.U] += up.W
		case OpDelete:
			delete(r.self, up.U)
		}
		return
	}
	k := edgeKey(up.U, up.V)
	switch up.Op {
	case OpInsert:
		r.w[k] += up.W
	case OpDelete:
		delete(r.w, k)
	}
}

func (r *overlayRef) degree(x int64) int64 {
	var d int64
	for k := range r.w {
		if k[0] == x || k[1] == x {
			d++
		}
	}
	return d
}

// checkView asserts the overlay's merged view matches the reference model
// on every vertex: degree, self-loop, and the full neighbor multiset.
func checkView(t *testing.T, o *Overlay, ref *overlayRef) {
	t.Helper()
	if o.NumEdges() != int64(len(ref.w)) {
		t.Fatalf("NumEdges = %d, reference %d", o.NumEdges(), len(ref.w))
	}
	for x := int64(0); x < ref.n; x++ {
		if got, want := o.Degree(x), ref.degree(x); got != want {
			t.Fatalf("Degree(%d) = %d, reference %d", x, got, want)
		}
		if got, want := o.SelfLoop(x), ref.self[x]; got != want {
			t.Fatalf("SelfLoop(%d) = %d, reference %d", x, got, want)
		}
		seen := map[int64]int64{}
		o.ForNeighbors(x, func(v, w int64) {
			if _, dup := seen[v]; dup {
				t.Fatalf("ForNeighbors(%d) emitted neighbor %d twice", x, v)
			}
			seen[v] = w
		})
		for v, w := range seen {
			if ref.w[edgeKey(x, v)] != w {
				t.Fatalf("ForNeighbors(%d): edge {%d,%d} weight %d, reference %d",
					x, x, v, w, ref.w[edgeKey(x, v)])
			}
		}
		if int64(len(seen)) != ref.degree(x) {
			t.Fatalf("ForNeighbors(%d) emitted %d neighbors, reference %d", x, len(seen), ref.degree(x))
		}
	}
}

func testBase(t *testing.T) *Graph {
	t.Helper()
	// Two triangles joined by a bridge, plus a self-loop and an isolate.
	g := MustBuild(2, 8, []Edge{
		{0, 1, 2}, {1, 2, 1}, {0, 2, 3},
		{3, 4, 1}, {4, 5, 2}, {3, 5, 1},
		{2, 3, 1},
		{6, 6, 4},
	})
	return g
}

func TestOverlayInsertAccumulatesDuplicate(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	d := &Delta{Version: 1}
	d.Insert(0, 1, 5) // existing base edge {0,1} w=2
	d.Insert(1, 0, 1) // reversed orientation, same edge
	if err := o.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	var got int64 = -1
	o.ForNeighbors(0, func(v, w int64) {
		if v == 1 {
			got = w
		}
	})
	if got != 8 {
		t.Fatalf("edge {0,1} weight = %d, want 2+5+1 = 8", got)
	}
	if o.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want unchanged %d (accumulation adds no edge)", o.NumEdges(), g.NumEdges())
	}
	if st := o.Stats(); st.Inserts != 2 || st.Accumulated != 2 {
		t.Fatalf("stats = %+v, want 2 inserts both accumulated", st)
	}
}

func TestOverlayDeleteMissingEdgeIsNoop(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	d := &Delta{Version: 1}
	d.Delete(0, 7) // never existed
	d.Delete(0, 1) // exists
	d.Delete(0, 1) // already deleted above: second delete is a no-op
	if err := o.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Deletes != 1 || st.NoopDeletes != 2 {
		t.Fatalf("stats = %+v, want 1 delete and 2 no-op deletes", st)
	}
	if o.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("NumEdges = %d, want %d", o.NumEdges(), g.NumEdges()-1)
	}
	if o.Degree(0) != 1 {
		t.Fatalf("Degree(0) = %d, want 1 after deleting {0,1}", o.Degree(0))
	}
}

func TestOverlayResurrectAfterDelete(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	d := &Delta{Version: 1}
	d.Delete(0, 1)
	d.Insert(0, 1, 7) // resurrect: weight starts over, no base carryover
	if err := o.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	var got int64 = -1
	o.ForNeighbors(1, func(v, w int64) {
		if v == 0 {
			got = w
		}
	})
	if got != 7 {
		t.Fatalf("resurrected edge {0,1} weight = %d, want 7", got)
	}
	if o.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", o.NumEdges(), g.NumEdges())
	}
}

func TestOverlaySelfLoops(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	d := &Delta{Version: 1}
	d.Insert(6, 6, 3) // accumulate onto base self-loop of 4
	d.Insert(0, 0, 2) // fresh self-loop
	d.Delete(5, 5)    // absent self-loop: no-op
	if err := o.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if got := o.SelfLoop(6); got != 7 {
		t.Fatalf("SelfLoop(6) = %d, want 7", got)
	}
	if got := o.SelfLoop(0); got != 2 {
		t.Fatalf("SelfLoop(0) = %d, want 2", got)
	}
	d2 := &Delta{Version: 2}
	d2.Delete(6, 6)
	if err := o.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if got := o.SelfLoop(6); got != 0 {
		t.Fatalf("SelfLoop(6) = %d after delete, want 0", got)
	}
	cg, err := o.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.Self[0] != 2 || cg.Self[6] != 0 {
		t.Fatalf("compacted Self = %v, want Self[0]=2 Self[6]=0", cg.Self)
	}
}

func TestOverlayCompactIdempotent(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	d := &Delta{Version: 1}
	d.Insert(0, 7, 1)
	d.Delete(3, 4)
	if err := o.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	first, err := o.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d after compact, want 0", o.Pending())
	}
	second, err := o.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("Compact(); Compact() rebuilt the base despite no pending updates")
	}
	if st := o.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1 (second call is a no-op)", st.Compactions)
	}
	// The caller's original base is never written.
	if g.NumEdges() != 7 {
		t.Fatalf("original base mutated: NumEdges = %d", g.NumEdges())
	}
}

func TestOverlayVersionAndValidate(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	bad := &Delta{Version: 3}
	bad.Insert(0, 99, 1)
	if err := o.ApplyDelta(bad); err == nil {
		t.Fatal("ApplyDelta accepted an out-of-range endpoint")
	}
	if o.Version() != 0 || o.Pending() != 0 {
		t.Fatalf("rejected batch advanced state: version=%d pending=%d", o.Version(), o.Pending())
	}
	ok := &Delta{Version: 3}
	ok.Insert(0, 7, 1)
	if err := o.ApplyDelta(ok); err != nil {
		t.Fatal(err)
	}
	if o.Version() != 3 {
		t.Fatalf("version = %d, want 3", o.Version())
	}
	zeroW := &Delta{Version: 4}
	zeroW.Insert(0, 1, 0)
	if err := o.ApplyDelta(zeroW); err == nil {
		t.Fatal("ApplyDelta accepted a zero-weight insert")
	}
}

func TestOverlayRandomAgainstReference(t *testing.T) {
	r := par.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		n := int64(8 + r.Intn(40))
		var edges []Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), r.Int63n(5) + 1})
		}
		g := MustBuild(2, n, edges)
		o := NewOverlay(2, g)
		ref := newOverlayRef(g)
		for batch := 0; batch < 6; batch++ {
			d := &Delta{Version: uint64(batch + 1)}
			for k := 0; k < 20; k++ {
				u, v := r.Int63n(n), r.Int63n(n)
				if r.Intn(3) == 0 {
					d.Delete(u, v)
				} else {
					d.Insert(u, v, r.Int63n(4)+1)
				}
			}
			if err := o.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			for _, up := range d.Updates {
				ref.apply(up)
			}
			checkView(t, o, ref)
			if batch == 3 {
				cg, err := o.Compact()
				if err != nil {
					t.Fatal(err)
				}
				if err := cg.Validate(); err != nil {
					t.Fatalf("trial %d: compacted graph invalid: %v", trial, err)
				}
				checkView(t, o, ref) // view unchanged across compaction
			}
		}
		// Final compaction must reproduce the reference edge set exactly.
		cg, err := o.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if err := cg.Validate(); err != nil {
			t.Fatal(err)
		}
		if cg.NumEdges() != int64(len(ref.w)) {
			t.Fatalf("trial %d: compacted %d edges, reference %d", trial, cg.NumEdges(), len(ref.w))
		}
		cg.ForEachEdge(func(_ int64, u, v, w int64) {
			if ref.w[edgeKey(u, v)] != w {
				t.Fatalf("trial %d: edge {%d,%d} weight %d, reference %d", trial, u, v, w, ref.w[edgeKey(u, v)])
			}
		})
		for x := int64(0); x < n; x++ {
			if cg.Self[x] != ref.self[x] {
				t.Fatalf("trial %d: Self[%d] = %d, reference %d", trial, x, cg.Self[x], ref.self[x])
			}
		}
	}
}

func TestOverlayShouldCompactPolicy(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(1, g)
	if o.ShouldCompact() {
		t.Fatal("fresh overlay wants compaction")
	}
	d := &Delta{Version: 1}
	d.Insert(0, 7, 1)
	d.Insert(1, 7, 1)
	if err := o.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	// 2 pending >= 25% of 7 base edges triggers the fractional bound.
	if !o.ShouldCompact() {
		t.Fatal("2 pending on a 7-edge base should trigger the 25% bound")
	}
	if _, err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	if o.ShouldCompact() {
		t.Fatal("freshly compacted overlay wants compaction")
	}
}

// TestOverlayConcurrentReadersAndWriter drives a mutator applying delta
// batches and periodically compacting while reader goroutines sweep the
// merged view — the CI race job's overlay coverage.
func TestOverlayConcurrentReadersAndWriter(t *testing.T) {
	r := par.NewRNG(7)
	n := int64(64)
	var edges []Edge
	for i := 0; i < 256; i++ {
		edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), r.Int63n(5) + 1})
	}
	g := MustBuild(2, n, edges)
	o := NewOverlay(2, g)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rr := par.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				x := rr.Int63n(n)
				var sum int64
				o.ForNeighbors(x, func(v, w int64) { sum += w })
				_ = o.Degree(x)
				_ = o.SelfLoop(x)
				_ = o.NumEdges()
				_ = sum
			}
		}(uint64(100 + reader))
	}
	for batch := 0; batch < 40; batch++ {
		d := &Delta{Version: uint64(batch + 1)}
		for k := 0; k < 16; k++ {
			u, v := r.Int63n(n), r.Int63n(n)
			if r.Intn(4) == 0 {
				d.Delete(u, v)
			} else {
				d.Insert(u, v, r.Int63n(3)+1)
			}
		}
		if err := o.ApplyDelta(d); err != nil {
			t.Error(err)
			break
		}
		if o.ShouldCompact() {
			if _, err := o.Compact(); err != nil {
				t.Error(err)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	cg, err := o.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIntoReusesArrays(t *testing.T) {
	r := par.NewRNG(5)
	n := int64(50)
	mkEdges := func() []Edge {
		var edges []Edge
		for i := 0; i < 200; i++ {
			edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), r.Int63n(5) + 1})
		}
		return edges
	}
	var dst *Graph
	var scratch BuildScratch
	for round := 0; round < 4; round++ {
		edges := mkEdges()
		wantSelf, wantW := naiveBuild(n, append([]Edge(nil), edges...))
		g, err := BuildInto(2, n, edges, dst, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		dst = g
		if err := g.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if int64(len(wantW)) != g.NumEdges() {
			t.Fatalf("round %d: %d edges, naive %d", round, g.NumEdges(), len(wantW))
		}
		g.ForEachEdge(func(_ int64, u, v, w int64) {
			if wantW[edgeKey(u, v)] != w {
				t.Fatalf("round %d: edge {%d,%d} weight %d, naive %d", round, u, v, w, wantW[edgeKey(u, v)])
			}
		})
		for x := int64(0); x < n; x++ {
			if g.Self[x] != wantSelf[x] {
				t.Fatalf("round %d: Self[%d] = %d, naive %d", round, x, g.Self[x], wantSelf[x])
			}
		}
	}
}

func TestOverlaySteadyStateCompactAllocs(t *testing.T) {
	r := par.NewRNG(11)
	n := int64(128)
	var edges []Edge
	for i := 0; i < 512; i++ {
		edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), r.Int63n(5) + 1})
	}
	g := MustBuild(1, n, edges)
	o := NewOverlay(1, g)
	churn := func() {
		d := &Delta{Version: o.Version() + 1}
		for k := 0; k < 8; k++ {
			d.Insert(r.Int63n(n), r.Int63n(n), 1)
			d.Delete(r.Int63n(n), r.Int63n(n))
		}
		if err := o.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up past the spare-graph bootstrap (two generations) and let the
	// patch-row freelist and edge buffer reach capacity.
	for i := 0; i < 10; i++ {
		churn()
	}
	allocs := testing.AllocsPerRun(20, churn)
	// The apply path touches two maps and the delta slice; the compact path
	// must be allocation-free. A small constant budget keeps this from
	// regressing into O(E) rebuild allocations.
	if allocs > 24 {
		t.Fatalf("steady-state apply+compact allocated %.1f times per run", allocs)
	}
}

package graph

import (
	"sync/atomic"

	"repro/internal/par"
)

// Components labels every vertex with the smallest vertex id in its
// connected component using p workers and returns the label array together
// with the number of components. Isolated vertices form their own
// components. The kernel is min-label propagation with pointer jumping
// (Shiloach–Vishkin style hooking), the standard substitute for the serial
// union-find the paper's R-MAT pipeline needs when extracting the largest
// component (§V-B).
func Components(p int, g *Graph) (comp []int64, count int64) {
	n := int(g.NumVertices())
	comp = make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			comp[x] = int64(x)
		}
	})
	if n == 0 {
		return comp, 0
	}
	for {
		var changed int64
		// Hooking: pull each edge's endpoints to the smaller current label.
		par.ForDynamic(p, n, 0, func(lo, hi int) {
			local := false
			for x := lo; x < hi; x++ {
				for e := g.Start[x]; e < g.End[x]; e++ {
					u, v := g.U[e], g.V[e]
					cu := atomic.LoadInt64(&comp[u])
					cv := atomic.LoadInt64(&comp[v])
					switch {
					case cu < cv:
						if atomicMin(&comp[cv], cu) || atomicMin(&comp[v], cu) {
							local = true
						}
					case cv < cu:
						if atomicMin(&comp[cu], cv) || atomicMin(&comp[u], cv) {
							local = true
						}
					}
				}
			}
			if local {
				atomic.StoreInt64(&changed, 1)
			}
		})
		// Pointer jumping: compress label chains so the next hooking round
		// sees near-final labels.
		par.For(p, n, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				c := atomic.LoadInt64(&comp[x])
				for {
					cc := atomic.LoadInt64(&comp[c])
					if cc == c {
						break
					}
					c = cc
				}
				atomic.StoreInt64(&comp[x], c)
			}
		})
		if atomic.LoadInt64(&changed) == 0 {
			break
		}
	}
	var k int64
	for x := 0; x < n; x++ {
		if comp[x] == int64(x) {
			k++
		}
	}
	return comp, k
}

// LargestComponent extracts the subgraph induced by the largest connected
// component of g, renumbering its vertices to [0, k). It returns the new
// graph and origID, where origID[newVertex] is the vertex's id in g. Ties
// between equally large components break toward the smaller root id. The
// R-MAT evaluation pipeline (§V-B) generates a graph, accumulates duplicate
// edges, "and then extract[s] the largest connected component".
func LargestComponent(p int, g *Graph) (*Graph, []int64) {
	n := int(g.NumVertices())
	if n == 0 {
		return NewEmpty(0), nil
	}
	comp, _ := Components(p, g)
	size := make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			atomicAdd(&size[comp[x]], 1)
		}
	})
	_, root := par.MaxInt64(p, size)
	target := int64(root)

	// Renumber member vertices by exclusive prefix sum over membership.
	newID := make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if comp[x] == target {
				newID[x] = 1
			}
		}
	})
	k := par.ExclusiveSumInt64(p, newID)
	origID := make([]int64, k)
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if comp[x] == target {
				origID[newID[x]] = int64(x)
			}
		}
	})

	// Gather and relabel member edges. The component is edge-closed, so an
	// edge belongs iff its bucket owner does.
	var edgeCount int64
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		var local int64
		for x := lo; x < hi; x++ {
			if comp[x] == target {
				local += g.End[x] - g.Start[x]
			}
		}
		atomicAdd(&edgeCount, local)
	})
	edges := make([]Edge, edgeCount)
	var cursor int64
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if comp[x] != target {
				continue
			}
			cnt := g.End[x] - g.Start[x]
			if cnt == 0 {
				continue
			}
			base := atomicAdd(&cursor, cnt) - cnt
			for e := g.Start[x]; e < g.End[x]; e++ {
				edges[base] = Edge{newID[g.U[e]], newID[g.V[e]], g.W[e]}
				base++
			}
		}
	})
	sub := MustBuild(p, k, edges)
	// Carry over self-loop weights of member vertices.
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if comp[x] == target && g.Self[x] != 0 {
				sub.Self[newID[x]] += g.Self[x]
			}
		}
	})
	return sub, origID
}

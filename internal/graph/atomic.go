package graph

import "sync/atomic"

// atomicAdd is the fetch-and-add the paper relies on for bucket placement
// and degree accumulation.
func atomicAdd(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta)
}

// atomicLoad is the matching acquire read for flags shared across par.For
// chunks (the builder's presort check).
func atomicLoad(addr *int64) int64 {
	return atomic.LoadInt64(addr)
}

// atomicMin lowers *addr to val if val is smaller and reports whether it
// changed anything. Used by the label-propagation components kernel.
func atomicMin(addr *int64, val int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if old <= val {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, val) {
			return true
		}
	}
}

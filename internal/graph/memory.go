package graph

// Footprint reports the storage a graph actually occupies, in 64-bit words,
// split the way the paper accounts for it (§IV-A): "a graph with |V|
// vertices and |E| non-self, unique edges requires space for 3|V| + 3|E|
// 64-bit integers plus a few additional scalars".
type Footprint struct {
	// EdgeWords counts the triple arrays (U, V, W), including any gap slots
	// a non-contiguous contraction left behind.
	EdgeWords int64
	// VertexWords counts the per-vertex arrays (Self, Start, End).
	VertexWords int64
	// ScalarWords counts the bookkeeping scalars (|V|, |E|).
	ScalarWords int64
}

// TotalWords is the whole footprint in 64-bit words.
func (f Footprint) TotalWords() int64 { return f.EdgeWords + f.VertexWords + f.ScalarWords }

// Bytes is the footprint in bytes.
func (f Footprint) Bytes() int64 { return 8 * f.TotalWords() }

// MemoryFootprint measures the graph's storage. For a freshly built or
// compacted graph this equals the paper's 3|V| + 3|E| formula exactly
// (PaperFormulaWords); after a non-contiguous contraction the edge arrays
// may be larger than 3|E| by the accumulated duplicate slots.
func (g *Graph) MemoryFootprint() Footprint {
	return Footprint{
		EdgeWords:   int64(len(g.U) + len(g.V) + len(g.W)),
		VertexWords: int64(len(g.Self) + len(g.Start) + len(g.End)),
		ScalarWords: 2,
	}
}

// PaperFormulaWords returns the paper's §IV-A space estimate for this
// graph's dimensions: 3|V| + 3|E| words (excluding scalars).
func (g *Graph) PaperFormulaWords() int64 {
	return 3*g.NumVertices() + 3*g.NumEdges()
}

// MatchingWorkspaceWords returns the paper's §IV-B estimate of the scoring
// and matching phases' extra storage: "|E| + 4|V| 64-bit integers plus an
// additional |V| locks on OpenMP platforms". The lock words are reported
// separately because the Cray XMT needs none.
func MatchingWorkspaceWords(g *Graph) (words, lockWords int64) {
	return g.NumEdges() + 4*g.NumVertices(), g.NumVertices()
}

// ContractionWorkspaceWords returns the paper's §IV-C estimate of the
// bucket contraction's extra storage: "|V| + 1 + 2|E|", the additional |E|
// space that replaced the linked-list technique's |E| + |V|.
func ContractionWorkspaceWords(g *Graph) int64 {
	return g.NumVertices() + 1 + 2*g.NumEdges()
}

package graph

// This file backs the out-of-core path: a CSR whose section arrays live in
// a memory-mapped file (DESIGN.md §15) rather than in heap slices built by
// ToCSR. The mapped format stores exactly the four CSR sections —
// offsets/self/adj/wgt — so opening a graph is wrapping validated slices,
// and materializing one (for callers that need the bucketed triple
// representation) is a single sweep back through the builder.

import (
	"fmt"
	"sort"

	"repro/internal/par"
)

// NewCSRView wraps pre-built CSR sections — typically slices over a
// memory-mapped file — into a CSR without copying. It validates the O(n)
// structural invariants (section lengths agree, offsets start at 0, end at
// len(adj), and never decrease) so a malformed file fails here rather than
// as an index panic inside a kernel sweep. Neighbor ids are NOT validated
// (that would cost a full O(m) scan, defeating the O(1)-open promise of the
// mapped format); an out-of-range id in a corrupt file surfaces as a
// bounds-check panic, not memory corruption. Callers that want the full
// check run FromCSR or VerifyCSR.
func NewCSRView(offsets, adj, wgt, self []int64) (*CSR, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: csr view: empty offsets section")
	}
	n := int64(len(offsets)) - 1
	if int64(len(self)) != n {
		return nil, fmt.Errorf("graph: csr view: %d self-loop entries for %d vertices", len(self), n)
	}
	if len(adj) != len(wgt) {
		return nil, fmt.Errorf("graph: csr view: adj/wgt length mismatch %d != %d", len(adj), len(wgt))
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr view: offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: csr view: offsets[%d] = %d, want adj length %d", n, offsets[n], len(adj))
	}
	for x := int64(0); x < n; x++ {
		if offsets[x] > offsets[x+1] {
			return nil, fmt.Errorf("graph: csr view: offsets decrease at vertex %d (%d -> %d)", x, offsets[x], offsets[x+1])
		}
	}
	return &CSR{Offsets: offsets, Adj: adj, Wgt: wgt, Self: self}, nil
}

// VerifyCSR runs the O(m) content checks NewCSRView skips: every neighbor
// id in range, no self entries in adj (self-loop weight lives in Self), no
// duplicate neighbors within a row (rows must be sorted), non-positive
// weights rejected, and the adjacency symmetric in total entry count.
// Diagnostic/validation paths only.
func VerifyCSR(c *CSR) error {
	n := c.NumVertices()
	var entries int64
	for x := int64(0); x < n; x++ {
		adj, wgt := c.Neighbors(x)
		prev := int64(-1)
		for i, v := range adj {
			if v < 0 || v >= n {
				return fmt.Errorf("graph: csr: vertex %d neighbor %d outside [0,%d)", x, v, n)
			}
			if v == x {
				return fmt.Errorf("graph: csr: vertex %d has a self entry in adj (self-loops belong in Self)", x)
			}
			if v <= prev {
				return fmt.Errorf("graph: csr: vertex %d row not strictly sorted at position %d", x, i)
			}
			if wgt[i] <= 0 {
				return fmt.Errorf("graph: csr: vertex %d edge to %d has non-positive weight %d", x, v, wgt[i])
			}
			prev = v
		}
		if c.Self[x] < 0 {
			return fmt.Errorf("graph: csr: vertex %d has negative self-loop weight %d", x, c.Self[x])
		}
		entries += int64(len(adj))
	}
	if entries%2 != 0 {
		return fmt.Errorf("graph: csr: odd adjacency entry count %d (symmetric view stores every edge twice)", entries)
	}
	return nil
}

// SortCSRRows sorts every adjacency row of c by neighbor id (weights follow
// their neighbors) with p workers. ToCSR's parallel scatter writes each row
// in a nondeterministic worker-race order; the mapped on-disk format
// requires sorted rows so identical graphs serialize to identical bytes.
func SortCSRRows(p int, c *CSR) {
	n := int(c.NumVertices())
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			adj, wgt := c.Neighbors(int64(x))
			if len(adj) > 1 && !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
				sort.Sort(&rowByNeighbor{adj: adj, wgt: wgt})
			}
		}
	})
}

// rowByNeighbor sorts one CSR row's paired adj/wgt slices by neighbor id.
type rowByNeighbor struct{ adj, wgt []int64 }

func (r *rowByNeighbor) Len() int           { return len(r.adj) }
func (r *rowByNeighbor) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r *rowByNeighbor) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.wgt[i], r.wgt[j] = r.wgt[j], r.wgt[i]
}

// FromCSR materializes the bucketed triple representation from a symmetric
// CSR view: each undirected edge — present in both endpoints' rows — is
// emitted once (from its lower endpoint's row) and accumulated through the
// standard builder; self-loop weights copy over directly. This is the
// single-image path for graphs opened from the mapped format; the sharded
// path extracts per-shard subgraphs instead and never materializes the
// whole edge set on the heap. Neighbor ids are range-checked during the
// sweep, closing the validation gap NewCSRView leaves open.
func FromCSR(p int, c *CSR) (*Graph, error) {
	n := c.NumVertices()
	var count int64
	for x := int64(0); x < n; x++ {
		adj, _ := c.Neighbors(x)
		for _, v := range adj {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph: from csr: vertex %d neighbor %d outside [0,%d)", x, v, n)
			}
			if v > x {
				count++
			}
		}
	}
	edges := make([]Edge, 0, count)
	for x := int64(0); x < n; x++ {
		adj, wgt := c.Neighbors(x)
		for i, v := range adj {
			if v > x {
				edges = append(edges, Edge{U: x, V: v, W: wgt[i]})
			}
		}
	}
	g, err := Build(p, n, edges)
	if err != nil {
		return nil, err
	}
	for x := int64(0); x < n; x++ {
		if s := c.SelfLoop(x); s != 0 {
			if s < 0 {
				return nil, fmt.Errorf("graph: from csr: vertex %d has negative self-loop weight %d", x, s)
			}
			g.Self[x] += s
		}
	}
	return g, nil
}

package graph

import "fmt"

// DeltaOp is the kind of one edge update in a Delta batch.
type DeltaOp uint8

const (
	// OpInsert adds weight to an edge, creating it if absent.
	OpInsert DeltaOp = iota
	// OpDelete removes an edge entirely. Deleting an absent edge is a no-op.
	OpDelete
)

func (op DeltaOp) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("DeltaOp(%d)", uint8(op))
	}
}

// Update is one edge mutation. Endpoints may arrive in either orientation;
// U == V addresses the vertex's self-loop. W is the weight added by an
// insert and is ignored by deletes.
type Update struct {
	Op   DeltaOp
	U, V int64
	W    int64
}

// Delta is one versioned batch of edge updates, applied atomically to an
// Overlay. Versions are assigned by the producer (generator, update stream
// file) and are strictly increasing within a stream; the overlay records the
// last version applied so replays can resume mid-stream.
type Delta struct {
	Version uint64
	Updates []Update
}

// Insert appends an insert of edge {u, v} with weight w to the batch.
func (d *Delta) Insert(u, v, w int64) {
	d.Updates = append(d.Updates, Update{Op: OpInsert, U: u, V: v, W: w})
}

// Delete appends a delete of edge {u, v} to the batch.
func (d *Delta) Delete(u, v int64) {
	d.Updates = append(d.Updates, Update{Op: OpDelete, U: u, V: v})
}

// Len returns the number of updates in the batch.
func (d *Delta) Len() int { return len(d.Updates) }

// Reset empties the batch for reuse, keeping the backing array.
func (d *Delta) Reset() {
	d.Version = 0
	d.Updates = d.Updates[:0]
}

// Validate checks every update against an n-vertex graph: endpoints must lie
// in [0, n) and insert weights must be positive.
func (d *Delta) Validate(n int64) error {
	for i, u := range d.Updates {
		if u.U < 0 || u.U >= n || u.V < 0 || u.V >= n {
			return fmt.Errorf("graph: delta update %d endpoint (%d,%d) outside [0,%d): %w",
				i, u.U, u.V, n, ErrVertexRange)
		}
		if u.Op == OpInsert && u.W <= 0 {
			return fmt.Errorf("graph: delta update %d inserts non-positive weight %d", i, u.W)
		}
		if u.Op != OpInsert && u.Op != OpDelete {
			return fmt.Errorf("graph: delta update %d has unknown op %d", i, u.Op)
		}
	}
	return nil
}

package graph

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/par"
)

// BuildScratch holds the builder's reusable intermediate arrays so repeated
// BuildInto calls (the overlay's compaction loop) stay allocation-free in
// the steady state. The zero value is ready to use.
type BuildScratch struct {
	head []int64
}

// Build assembles a Graph from raw undirected edges using p workers. The
// input may contain edges in either orientation, repeated edges (their
// weights accumulate, as the paper does for R-MAT output), self-loops
// (folded into the Self array), and zero- or negative-weight entries are
// rejected. Build leaves the input slice in an unspecified order.
//
// The pipeline is the parallel analogue of the paper's construction: orient
// every triple by the parity hash, sort the triple array by (first, second),
// accumulate duplicates with a segmented scan, then cut contiguous buckets.
func Build(p int, numVertices int64, edges []Edge) (*Graph, error) {
	return BuildInto(p, numVertices, edges, nil, nil)
}

// BuildInto is Build assembling the graph inside dst: every array is reused
// when its capacity suffices and grown (without copying) otherwise, so a
// scratch-held graph costs nothing to rebuild in the steady state. A nil dst
// behaves like Build; a nil scratch allocates the intermediates fresh. On
// error dst's contents are unspecified.
func BuildInto(p int, numVertices int64, edges []Edge, dst *Graph, scratch *BuildScratch) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	g := dst
	if g == nil {
		g = &Graph{}
	}
	if scratch == nil {
		scratch = &BuildScratch{}
	}
	g.ResizeVertices(numVertices)
	par.ZeroInt64(p, g.Self)
	par.ZeroInt64(p, g.Start)
	par.ZeroInt64(p, g.End)
	if len(edges) == 0 {
		g.ResizeEdges(0)
		g.setCounts(numVertices, 0)
		return g, nil
	}

	// Pass 1: validate and orient. Self-loops keep U == V and are folded
	// into g.Self during the scatter below.
	var bad int64
	par.For(p, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U < 0 || e.U >= numVertices || e.V < 0 || e.V >= numVertices || e.W <= 0 {
				atomicAdd(&bad, 1)
				continue
			}
			if e.U != e.V {
				f, s := StoredOrder(e.U, e.V)
				edges[i] = Edge{f, s, e.W}
			}
		}
	})
	if bad != 0 {
		return nil, fmt.Errorf("graph: %d edges with endpoints outside [0,%d) or non-positive weight: %w",
			bad, numVertices, ErrVertexRange)
	}

	// Pass 2: sort by (U, V). Self-loops (U == V) sort adjacent to the
	// vertex's bucket and are peeled off during accumulation. A linear
	// presort check skips the O(E log E) pass for callers that feed
	// already-ordered triples — the overlay's compaction materializes its
	// merged view in stored order exactly so this branch is taken on every
	// fold of the serving loop.
	if !sortedByUV(p, edges) {
		par.Sort(p, edges, func(a, b Edge) bool {
			if a.U != b.U {
				return a.U < b.U
			}
			return a.V < b.V
		})
	}

	// Pass 3: segmented accumulation. head[i] = 1 iff edges[i] starts a new
	// (U, V) group of non-self edges; self-loops get head 0 and are routed
	// to g.Self.
	n := len(edges)
	scratch.head = buf.Grow(scratch.head, n)
	head := scratch.head
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				head[i] = 0
				continue
			}
			if i == 0 || edges[i-1].U != e.U || edges[i-1].V != e.V {
				head[i] = 1
			} else {
				// Explicit zero: the scratch array carries stale contents.
				head[i] = 0
			}
		}
	})
	// head becomes the exclusive prefix sum: the output slot of each group.
	unique := par.ExclusiveSumInt64(p, head)

	g.ResizeEdges(unique)
	// The scatter accumulates weights with fetch-and-add, so reused W
	// entries must start from zero; U and V are fully overwritten (exactly
	// one group leader writes each slot).
	par.ZeroInt64(p, g.W)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				atomicAdd(&g.Self[e.U], e.W)
				continue
			}
			// head[i] now holds the exclusive prefix: for a group's first
			// member it is the group's output slot; for continuations it is
			// the slot plus one (their own head flag was zero but the
			// leader's one has been counted).
			slot := head[i]
			isStart := i == 0 || edges[i-1].U != e.U || edges[i-1].V != e.V
			if !isStart {
				slot--
			}
			// Only the group leader writes the endpoints (exactly one leader
			// per slot, so the store is race-free); every member accumulates
			// its weight with fetch-and-add.
			if isStart {
				g.U[slot] = e.U
				g.V[slot] = e.V
			}
			atomicAdd(&g.W[slot], e.W)
		}
	})

	// Pass 4: cut buckets. Unique edges are sorted by U, so bucket borders
	// are the positions where U changes.
	par.For(p, int(unique), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := g.U[i]
			if i == 0 || g.U[i-1] != u {
				g.Start[u] = int64(i)
			}
			if i == int(unique)-1 || g.U[i+1] != u {
				g.End[u] = int64(i) + 1
			}
		}
	})
	g.setCounts(numVertices, unique)
	return g, nil
}

// sortedByUV reports whether edges is already ordered by (U, V). One cheap
// bandwidth-bound pass against an O(E log E) sort; out-of-order chunks set a
// shared flag so later chunks bail at their first probe.
func sortedByUV(p int, edges []Edge) bool {
	var unsorted int64
	par.For(p, len(edges)-1, func(lo, hi int) {
		if atomicLoad(&unsorted) != 0 {
			return
		}
		for i := lo; i < hi; i++ {
			a, b := edges[i], edges[i+1]
			if a.U > b.U || (a.U == b.U && a.V > b.V) {
				atomicAdd(&unsorted, 1)
				return
			}
		}
	})
	return unsorted == 0
}

// MustBuild is Build for tests and generators with known-good input; it
// panics on error.
func MustBuild(p int, numVertices int64, edges []Edge) *Graph {
	g, err := Build(p, numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// FromAdjacency builds a graph from an unweighted adjacency list given as
// neighbor slices (each undirected edge may appear in one or both
// directions). Convenient for hand-written test graphs.
func FromAdjacency(adj [][]int64) (*Graph, error) {
	n := int64(len(adj))
	var edges []Edge
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if int64(u) <= v {
				edges = append(edges, Edge{int64(u), v, 1})
			}
		}
	}
	// Deduplicate edges listed in both directions: Build would otherwise
	// double their weights.
	par.Sort(1, edges, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	out := edges[:0]
	for i, e := range edges {
		if i > 0 && edges[i-1].U == e.U && edges[i-1].V == e.V {
			continue
		}
		out = append(out, e)
	}
	return Build(1, n, out)
}

// Compact rewrites g so its buckets are stored contiguously in increasing
// vertex order with no gaps, using p workers. Contraction kernels may leave
// gaps (the paper's non-contiguous layout); Compact restores the dense
// layout for I/O or space measurement. The graph is modified in place.
func Compact(p int, g *Graph) {
	n := int(g.n)
	lens := make([]int64, n)
	par.For(p, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			lens[x] = g.End[x] - g.Start[x]
		}
	})
	total := par.ExclusiveSumInt64(p, lens) // lens becomes new Start offsets
	nu := make([]int64, total)
	nv := make([]int64, total)
	nw := make([]int64, total)
	par.ForDynamic(p, n, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			dst := lens[x]
			for e := g.Start[x]; e < g.End[x]; e++ {
				nu[dst] = g.U[e]
				nv[dst] = g.V[e]
				nw[dst] = g.W[e]
				dst++
			}
			g.Start[x] = lens[x]
			g.End[x] = dst
		}
	})
	g.U, g.V, g.W = nu, nv, nw
	g.setCounts(g.n, total)
}

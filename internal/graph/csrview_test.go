package graph

import (
	"strings"
	"testing"
)

// viewSections returns valid CSR sections for the 4-cycle 0-1-2-3 with a
// self-loop on vertex 2 (rows sorted, every edge stored twice).
func viewSections() (offsets, adj, wgt, self []int64) {
	offsets = []int64{0, 2, 4, 6, 8}
	adj = []int64{1, 3, 0, 2, 1, 3, 0, 2}
	wgt = []int64{1, 4, 1, 2, 2, 3, 4, 3}
	self = []int64{0, 0, 7, 0}
	return
}

func TestNewCSRViewValid(t *testing.T) {
	c, err := NewCSRView(viewSections())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != 4 {
		t.Fatalf("|V| = %d, want 4", c.NumVertices())
	}
	adj, wgt := c.Neighbors(1)
	if len(adj) != 2 || adj[0] != 0 || adj[1] != 2 || wgt[1] != 2 {
		t.Fatalf("row 1 = %v/%v", adj, wgt)
	}
	if c.SelfLoop(2) != 7 {
		t.Fatalf("self[2] = %d, want 7", c.SelfLoop(2))
	}
	if err := VerifyCSR(c); err != nil {
		t.Fatalf("VerifyCSR on valid view: %v", err)
	}
}

func TestNewCSRViewRejectsStructuralCorruption(t *testing.T) {
	for name, mutate := range map[string]func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64){
		"empty offsets":      func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64) { return nil, a, w, s },
		"self length":        func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64) { return o, a, w, s[:3] },
		"adj/wgt mismatch":   func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64) { return o, a, w[:7], s },
		"nonzero first":      func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64) { o[0] = 1; return o, a, w, s },
		"wrong final offset": func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64) { o[4] = 6; return o, a, w, s },
		"decreasing offsets": func(o, a, w, s []int64) ([]int64, []int64, []int64, []int64) { o[2] = 1; return o, a, w, s },
	} {
		o, a, w, s := viewSections()
		if _, err := NewCSRView(mutate(o, a, w, s)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestVerifyCSRContentChecks(t *testing.T) {
	// VerifyCSR catches the O(m) corruption NewCSRView intentionally skips.
	for name, mutate := range map[string]func(o, a, w, s []int64){
		"neighbor out of range": func(o, a, w, s []int64) { a[0] = 9 },
		"self entry in adj":     func(o, a, w, s []int64) { a[0] = 0 },
		"unsorted row":          func(o, a, w, s []int64) { a[0], a[1] = a[1], a[0] },
		"non-positive weight":   func(o, a, w, s []int64) { w[3] = 0 },
		"negative self-loop":    func(o, a, w, s []int64) { s[2] = -1 },
	} {
		o, a, w, s := viewSections()
		mutate(o, a, w, s)
		c := &CSR{Offsets: o, Adj: a, Wgt: w, Self: s}
		if err := VerifyCSR(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSortCSRRows(t *testing.T) {
	o, a, w, s := viewSections()
	// Scramble both rows of vertex 0 and 2 keeping (adj, wgt) pairs.
	a[0], a[1], w[0], w[1] = a[1], a[0], w[1], w[0]
	a[4], a[5], w[4], w[5] = a[5], a[4], w[5], w[4]
	c := &CSR{Offsets: o, Adj: a, Wgt: w, Self: s}
	SortCSRRows(2, c)
	if err := VerifyCSR(c); err != nil {
		t.Fatalf("after sort: %v", err)
	}
	adj, wgt := c.Neighbors(0)
	if adj[0] != 1 || adj[1] != 3 || wgt[0] != 1 || wgt[1] != 4 {
		t.Fatalf("row 0 after sort = %v/%v", adj, wgt)
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	c, err := NewCSRView(viewSections())
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCSR(2, c)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("|V|/|E| = %d/%d, want 4/4", g.NumVertices(), g.NumEdges())
	}
	if g.Self[2] != 7 {
		t.Fatalf("self[2] = %d, want 7", g.Self[2])
	}
	// The CSR of the materialized graph must match the view exactly.
	back := ToCSR(1, g)
	SortCSRRows(1, back)
	o, a, w, s := viewSections()
	for i, want := range o {
		if back.Offsets[i] != want {
			t.Fatalf("offsets[%d] = %d, want %d", i, back.Offsets[i], want)
		}
	}
	for i := range a {
		if back.Adj[i] != a[i] || back.Wgt[i] != w[i] {
			t.Fatalf("entry %d = (%d,%d), want (%d,%d)", i, back.Adj[i], back.Wgt[i], a[i], w[i])
		}
	}
	for i := range s {
		if back.Self[i] != s[i] {
			t.Fatalf("self[%d] = %d, want %d", i, back.Self[i], s[i])
		}
	}
}

func TestFromCSRRejectsOutOfRangeNeighbor(t *testing.T) {
	o, a, w, s := viewSections()
	a[5] = 42
	c := &CSR{Offsets: o, Adj: a, Wgt: w, Self: s}
	_, err := FromCSR(1, c)
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("err = %v, want out-of-range rejection", err)
	}
}

package graph

import (
	"testing"

	"repro/internal/par"
)

func TestMemoryFootprintMatchesPaperFormula(t *testing.T) {
	// A freshly built graph occupies exactly the paper's 3|V| + 3|E| words
	// plus scalars (§IV-A).
	r := par.NewRNG(3)
	for trial := 0; trial < 5; trial++ {
		n := int64(20 + r.Intn(200))
		var edges []Edge
		for i := 0; i < int(n)*3; i++ {
			edges = append(edges, Edge{r.Int63n(n), r.Int63n(n), 1})
		}
		g := MustBuild(2, n, edges)
		f := g.MemoryFootprint()
		if f.EdgeWords != 3*g.NumEdges() {
			t.Fatalf("edge words %d, want 3|E| = %d", f.EdgeWords, 3*g.NumEdges())
		}
		if f.VertexWords != 3*g.NumVertices() {
			t.Fatalf("vertex words %d, want 3|V| = %d", f.VertexWords, 3*g.NumVertices())
		}
		if f.TotalWords() != g.PaperFormulaWords()+f.ScalarWords {
			t.Fatalf("total %d, formula %d + %d scalars",
				f.TotalWords(), g.PaperFormulaWords(), f.ScalarWords)
		}
		if f.Bytes() != 8*f.TotalWords() {
			t.Fatal("bytes accounting wrong")
		}
	}
}

func TestWorkspaceFormulas(t *testing.T) {
	g := MustBuild(1, 10, []Edge{{0, 1, 1}, {2, 3, 1}, {4, 5, 1}})
	words, locks := MatchingWorkspaceWords(g)
	if words != 3+4*10 || locks != 10 {
		t.Fatalf("matching workspace = %d/%d, want 43/10", words, locks)
	}
	if got := ContractionWorkspaceWords(g); got != 10+1+2*3 {
		t.Fatalf("contraction workspace = %d, want 17", got)
	}
}

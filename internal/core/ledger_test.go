package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hierarchy"
	"repro/internal/obs"
)

// TestDetectLedgerCrossChecksHierarchy is the acceptance check for the
// convergence ledger: every row's vertex accounting must agree with the
// dendrogram built from the same run's contraction maps, and the
// MergedVertices column must sum to n − (final community count).
func TestDetectLedgerCrossChecksHierarchy(t *testing.T) {
	g, err := gen.RMATGraph(4, gen.DefaultRMAT(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	led := obs.NewLedger()
	res, err := Detect(g, Options{Threads: 4, Validate: true, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	rows := led.Levels()
	if len(rows) == 0 {
		t.Fatal("ledger recorded no levels")
	}
	if len(rows) != len(res.Levels) {
		t.Fatalf("ledger has %d rows, result has %d levels", len(rows), len(res.Levels))
	}
	d, err := hierarchy.New(g.NumVertices(), res.Levels)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.CommunityCounts()
	var mergedSum int64
	for i, row := range rows {
		if row.Level != i {
			t.Fatalf("row %d has level %d", i, row.Level)
		}
		if row.Vertices != counts[i] {
			t.Fatalf("level %d: ledger enters with %d vertices, dendrogram says %d",
				i, row.Vertices, counts[i])
		}
		if row.OutVertices != counts[i+1] {
			t.Fatalf("level %d: ledger leaves with %d vertices, dendrogram says %d",
				i, row.OutVertices, counts[i+1])
		}
		want, err := d.MergedAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if row.MergedVertices != want {
			t.Fatalf("level %d: MergedVertices %d, dendrogram merged %d",
				i, row.MergedVertices, want)
		}
		mergedSum += row.MergedVertices
		if row.MergeFraction <= 0 || row.MergeFraction > 1 {
			t.Fatalf("level %d: merge fraction %v outside (0,1]", i, row.MergeFraction)
		}
		if row.MatchedPairs <= 0 || row.MatchedPairs > row.PositiveEdges {
			t.Fatalf("level %d: %d matched pairs vs %d positive edges",
				i, row.MatchedPairs, row.PositiveEdges)
		}
		if row.MatchPasses <= 0 || len(row.Drain) != row.MatchPasses {
			t.Fatalf("level %d: %d passes but drain curve %v", i, row.MatchPasses, row.Drain)
		}
		if row.Drain[0] > row.Vertices {
			t.Fatalf("level %d: drain starts at %d with only %d vertices",
				i, row.Drain[0], row.Vertices)
		}
		var histSum int64
		for _, c := range row.SizeHist {
			histSum += c
		}
		if histSum != row.OutVertices {
			t.Fatalf("level %d: size histogram holds %d communities, want %d",
				i, histSum, row.OutVertices)
		}
		if row.SchedImbalance != 0 {
			if row.SchedImbalance < 1 || row.SchedBound < 1 {
				t.Fatalf("level %d: imbalance %v, bound %v below perfect balance",
					i, row.SchedImbalance, row.SchedBound)
			}
		}
	}
	if want := g.NumVertices() - res.NumCommunities; mergedSum != want {
		t.Fatalf("merged vertices sum to %d, want n - final = %d", mergedSum, want)
	}
	// Greedy merging over positive scores must not drive the metric down.
	for _, w := range led.Warnings() {
		if w.Code == obs.WarnMetricDecrease {
			t.Fatalf("unexpected metric decrease warning: %+v", w)
		}
	}
}

// TestDetectLedgerResetBetweenRuns pins that a reused ledger reflects only
// the latest run (the engine resets it), so bench loops don't accumulate.
func TestDetectLedgerResetBetweenRuns(t *testing.T) {
	g := gen.CliqueChain(6, 5)
	led := obs.NewLedger()
	var prev int
	for run := 0; run < 3; run++ {
		if _, err := Detect(g, Options{Threads: 2, Ledger: led}); err != nil {
			t.Fatal(err)
		}
		n := led.NumLevels()
		if n == 0 {
			t.Fatal("no levels recorded")
		}
		if run > 0 && n != prev {
			t.Fatalf("run %d recorded %d levels, previous run %d", run, n, prev)
		}
		prev = n
	}
}

// TestDetectNilLedgerIsNoop pins the disabled path: a nil ledger must not
// change the result.
func TestDetectNilLedgerIsNoop(t *testing.T) {
	g := gen.Karate()
	with, err := Detect(g, Options{Threads: 2, Ledger: obs.NewLedger()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Detect(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if with.NumCommunities != without.NumCommunities ||
		with.FinalModularity != without.FinalModularity {
		t.Fatalf("ledger changed the result: %d/%v vs %d/%v",
			with.NumCommunities, with.FinalModularity,
			without.NumCommunities, without.FinalModularity)
	}
}

package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/metrics"
)

func TestDetectSizesTracked(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{Threads: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Sizes)) != res.NumCommunities {
		t.Fatalf("Sizes has %d entries for %d communities", len(res.Sizes), res.NumCommunities)
	}
	want := metrics.Sizes(res.CommunityOf, res.NumCommunities)
	var total int64
	for c := range want {
		if res.Sizes[c] != want[c] {
			t.Fatalf("Sizes[%d] = %d, recomputed %d", c, res.Sizes[c], want[c])
		}
		total += res.Sizes[c]
	}
	if total != g.NumVertices() {
		t.Fatalf("sizes sum to %d, want %d", total, g.NumVertices())
	}
}

func TestDetectMaxCommunitySizeRespected(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 6))
	if err != nil {
		t.Fatal(err)
	}
	const cap = 16
	res, err := Detect(g, Options{Threads: 2, MaxCommunitySize: cap, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Sizes {
		if s > cap {
			t.Fatalf("community %d has %d members, cap %d", c, s, cap)
		}
	}
	// The constraint binds: without it this graph contracts much further.
	free, err := Detect(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities <= free.NumCommunities {
		t.Fatalf("capped run has %d communities, uncapped %d — cap did not bind",
			res.NumCommunities, free.NumCommunities)
	}
}

func TestDetectMaxCommunitySizeOneForbidsAllMerges(t *testing.T) {
	g := gen.Clique(10)
	res, err := Detect(g, Options{Threads: 1, MaxCommunitySize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities != 10 || len(res.Stats) != 0 {
		t.Fatalf("cap 1 still merged: %d communities, %d phases", res.NumCommunities, len(res.Stats))
	}
	if res.Termination != TermLocalMax {
		t.Fatalf("termination %q", res.Termination)
	}
}

func TestDetectRejectsNegativeMaxCommunitySize(t *testing.T) {
	if _, err := Detect(gen.Ring(4), Options{MaxCommunitySize: -1}); err == nil {
		t.Fatal("accepted negative cap")
	}
}

func TestDetectRefineEveryPhaseImprovesQuality(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 8))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Detect(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Detect(g, Options{Threads: 2, RefineEveryPhase: true, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePartition(refined.CommunityOf, g.NumVertices(), refined.NumCommunities); err != nil {
		t.Fatal(err)
	}
	// The reported final modularity must match a recomputation on the
	// original graph (the community graph is rebuilt after refinement, so
	// this checks ByMapping's correctness too).
	recomputed := metrics.Modularity(2, g, refined.CommunityOf, refined.NumCommunities)
	if diff := refined.FinalModularity - recomputed; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("FinalModularity %v, recomputed %v", refined.FinalModularity, recomputed)
	}
	if refined.FinalModularity < plain.FinalModularity+0.03 {
		t.Fatalf("refinement gained too little: %v vs %v",
			refined.FinalModularity, plain.FinalModularity)
	}
	// Sizes stay consistent after refinement rebuilds.
	want := metrics.Sizes(refined.CommunityOf, refined.NumCommunities)
	for c := range want {
		if refined.Sizes[c] != want[c] {
			t.Fatalf("Sizes[%d] = %d, recomputed %d", c, refined.Sizes[c], want[c])
		}
	}
}

func TestDetectRefineEveryPhaseWithCoverageStop(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1500, 12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{Threads: 2, RefineEveryPhase: true, MinCoverage: 0.5, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCoverage < 0.5 && res.Termination == TermCoverage {
		t.Fatalf("coverage stop at %v", res.FinalCoverage)
	}
	if err := metrics.ValidatePartition(res.CommunityOf, g.NumVertices(), res.NumCommunities); err != nil {
		t.Fatal(err)
	}
}

func TestDetectMaxSizeWithRefinePhases(t *testing.T) {
	// Both extensions together still terminate and produce a valid
	// partition. Refinement may move vertices into a community past the
	// cap (the cap constrains merges, not moves), so only partition
	// validity and termination are asserted.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{
		Threads: 2, MaxCommunitySize: 64, RefineEveryPhase: true, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePartition(res.CommunityOf, g.NumVertices(), res.NumCommunities); err != nil {
		t.Fatal(err)
	}
}

func TestDetectDeterministicAcrossThreadCounts(t *testing.T) {
	// A deliberate deviation from the paper: their matching resolves races
	// with full/empty bits, so "different executions on the same data may
	// produce different maximal matchings" (§IV-B). Our worklist matches
	// only mutually-best edges under a total order, which is a
	// deterministic function of (graph, scores) regardless of worker count
	// or interleaving — so whole runs are reproducible. Pin that.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(3000, 19))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Detect(g, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		for rep := 0; rep < 2; rep++ {
			got, err := Detect(g, Options{Threads: p})
			if err != nil {
				t.Fatal(err)
			}
			if got.NumCommunities != want.NumCommunities {
				t.Fatalf("p=%d rep=%d: %d communities, want %d",
					p, rep, got.NumCommunities, want.NumCommunities)
			}
			for v := range want.CommunityOf {
				if got.CommunityOf[v] != want.CommunityOf[v] {
					t.Fatalf("p=%d rep=%d: vertex %d in community %d, want %d",
						p, rep, v, got.CommunityOf[v], want.CommunityOf[v])
				}
			}
		}
	}
}

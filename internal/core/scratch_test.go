package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// sameResult fails unless a and b describe the same partition and quality.
// Runs at Threads=1 are deterministic, so arena and fresh modes must agree
// exactly.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.NumCommunities != b.NumCommunities {
		t.Fatalf("%s: %d communities vs %d", label, a.NumCommunities, b.NumCommunities)
	}
	if a.Termination != b.Termination {
		t.Fatalf("%s: termination %q vs %q", label, a.Termination, b.Termination)
	}
	if len(a.CommunityOf) != len(b.CommunityOf) {
		t.Fatalf("%s: CommunityOf length %d vs %d", label, len(a.CommunityOf), len(b.CommunityOf))
	}
	for i := range a.CommunityOf {
		if a.CommunityOf[i] != b.CommunityOf[i] {
			t.Fatalf("%s: CommunityOf[%d] = %d vs %d", label, i, a.CommunityOf[i], b.CommunityOf[i])
		}
	}
	if len(a.Sizes) != len(b.Sizes) {
		t.Fatalf("%s: Sizes length %d vs %d", label, len(a.Sizes), len(b.Sizes))
	}
	for c := range a.Sizes {
		if a.Sizes[c] != b.Sizes[c] {
			t.Fatalf("%s: Sizes[%d] = %d vs %d", label, c, a.Sizes[c], b.Sizes[c])
		}
	}
	if a.FinalModularity != b.FinalModularity {
		t.Fatalf("%s: modularity %v vs %v", label, a.FinalModularity, b.FinalModularity)
	}
	if a.FinalCoverage != b.FinalCoverage {
		t.Fatalf("%s: coverage %v vs %v", label, a.FinalCoverage, b.FinalCoverage)
	}
}

// TestArenaMatchesFresh runs a shared arena through a shrink-then-grow
// sequence of graphs and kernel combinations and checks every result against
// a fresh-allocation (NoScratch) run of the same options. Dirty reused
// buffers must never leak into results.
func TestArenaMatchesFresh(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cliquechain", gen.CliqueChain(24, 6)},
		{"karate", gen.Karate()},
		{"star", gen.Star(60)},
		{"cliquechain-big", gen.CliqueChain(40, 5)},
	}
	optVariants := []struct {
		name string
		opt  Options
	}{
		{"default", Options{}},
		{"edgesweep-noncontig", Options{Matching: MatchEdgeSweep, Contraction: ContractBucketNonContiguous}},
		{"sizecap", Options{MaxCommunitySize: 8}},
		{"coverage", Options{MinCoverage: 0.5}},
		{"discardlevels", Options{DiscardLevels: true}},
	}
	s := NewScratch()
	for _, ov := range optVariants {
		for _, tg := range graphs {
			opt := ov.opt
			opt.Threads = 1
			opt.Validate = true

			fresh := opt
			fresh.NoScratch = true
			want, err := Detect(tg.g, fresh)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", ov.name, tg.name, err)
			}
			got, err := DetectWith(tg.g, opt, s)
			if err != nil {
				t.Fatalf("%s/%s arena: %v", ov.name, tg.name, err)
			}
			sameResult(t, ov.name+"/"+tg.name, want, got)
		}
	}
}

// TestArenaParallelRace exercises the arena across phases and trials at
// higher thread counts with invariant checking on; run under -race it
// verifies the reused buffers are handed off cleanly between the parallel
// sweeps. Parallel runs are nondeterministic, so only invariants are
// checked, not exact partitions.
func TestArenaParallelRace(t *testing.T) {
	g := gen.CliqueChain(32, 6)
	s := NewScratch()
	for trial := 0; trial < 3; trial++ {
		res, err := DetectWith(g, Options{Threads: 4, Validate: true}, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		validatePartition(t, res.CommunityOf, res.NumCommunities)
		var total int64
		for _, sz := range res.Sizes {
			total += sz
		}
		if total != g.NumVertices() {
			t.Fatalf("trial %d: sizes sum to %d, want %d", trial, total, g.NumVertices())
		}
	}
}

// TestResultDoesNotAliasArena mutates every arena buffer after a run and
// checks the returned result is unchanged: results must stay valid after the
// Scratch is reused.
func TestResultDoesNotAliasArena(t *testing.T) {
	g := gen.CliqueChain(24, 6)
	s := NewScratch()
	opt := Options{Threads: 1}
	res, err := DetectWith(g, opt, s)
	if err != nil {
		t.Fatal(err)
	}
	comm := append([]int64(nil), res.CommunityOf...)
	sizes := append([]int64(nil), res.Sizes...)
	levels := make([][]int64, len(res.Levels))
	for i, l := range res.Levels {
		levels[i] = append([]int64(nil), l...)
	}

	// Reuse the arena on a different graph, then poison what's left.
	if _, err := DetectWith(gen.Star(80), opt, s); err != nil {
		t.Fatal(err)
	}
	for i := range s.mapping {
		s.mapping[i] = -7
	}
	for b := range s.sizes {
		for i := range s.sizes[b] {
			s.sizes[b][i] = -7
		}
	}

	for i := range comm {
		if res.CommunityOf[i] != comm[i] {
			t.Fatalf("CommunityOf[%d] changed after arena reuse", i)
		}
	}
	for c := range sizes {
		if res.Sizes[c] != sizes[c] {
			t.Fatalf("Sizes[%d] changed after arena reuse", c)
		}
	}
	for i, l := range levels {
		for j := range l {
			if res.Levels[i][j] != l[j] {
				t.Fatalf("Levels[%d][%d] changed after arena reuse", i, j)
			}
		}
	}
}

// TestSteadyStatePhasesAllocateNothing is the allocation-regression guard
// for the tentpole: with a warm arena at Threads=1 (parallel runs allocate
// in goroutine spawning) and DiscardLevels set, extra contraction phases
// must add zero allocations — the per-run total is the same whether the run
// executes 1 phase or 6, so the steady-state loop itself is off the heap.
func TestSteadyStatePhasesAllocateNothing(t *testing.T) {
	g := gen.CliqueChain(64, 8)
	s := NewScratch()
	run := func(phases int) {
		opt := Options{Threads: 1, MaxPhases: phases, DiscardLevels: true}
		if _, err := DetectWith(g, opt, s); err != nil {
			t.Fatal(err)
		}
	}
	run(6) // warm the arena to its largest extent

	short := testing.AllocsPerRun(5, func() { run(1) })
	long := testing.AllocsPerRun(5, func() { run(6) })
	if long > short {
		t.Fatalf("6-phase run allocates more than 1-phase run: %.1f vs %.1f allocs "+
			"(steady-state phases should allocate nothing)", long, short)
	}
	// The per-run floor is the Result envelope itself: result struct,
	// CommunityOf, Stats backing array, the Sizes copy, and interface
	// boxing — a handful, not O(phases) or O(n).
	if short > 12 {
		t.Fatalf("warm 1-phase run allocates %.1f times, want a small constant", short)
	}
}

// TestArenaAllocsShrinkVsFresh quantifies the point of the arena: a warm
// arena run must allocate far fewer times than the fresh-allocation mode on
// a multi-phase graph.
func TestArenaAllocsShrinkVsFresh(t *testing.T) {
	g := gen.CliqueChain(64, 8)
	opt := Options{Threads: 1, DiscardLevels: true}
	s := NewScratch()
	if _, err := DetectWith(g, opt, s); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(5, func() {
		if _, err := DetectWith(g, opt, s); err != nil {
			t.Fatal(err)
		}
	})
	freshOpt := opt
	freshOpt.NoScratch = true
	fresh := testing.AllocsPerRun(5, func() {
		if _, err := Detect(g, freshOpt); err != nil {
			t.Fatal(err)
		}
	})
	if fresh < 10*warm {
		t.Fatalf("arena run allocates %.1f times vs %.1f fresh — want at least 10x reduction",
			warm, fresh)
	}
}

package core

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/seq"
)

// shardCSR builds the canonical sorted CSR image of g — the same bytes the
// mmapcsr format stores — so every sharded run in a test sees the identical
// view regardless of the conversion worker count.
func shardCSR(g *graph.Graph) *graph.CSR {
	c := graph.ToCSR(2, g)
	graph.SortCSRRows(2, c)
	return c
}

func detectSharded(t *testing.T, c *graph.CSR, shards, threads int) *ShardResult {
	t.Helper()
	res, err := DetectSharded(context.Background(), c, ShardOptions{
		Shards: shards,
		Opt:    Options{Threads: threads, Engine: EngineMatching, Validate: true},
	})
	if err != nil {
		t.Fatalf("shards=%d threads=%d: %v", shards, threads, err)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	return res
}

func TestShardDeterminismGate(t *testing.T) {
	// For a fixed shard count the final partition must be identical across
	// thread budgets and repeated runs: shard boundaries depend only on the
	// degree prefix, per-shard detection is schedule-stable, and the stitch
	// runs on a deterministic quotient. Partitions across DIFFERENT shard
	// counts are not expected to match — only their quality is (gated
	// below against the sequential oracle).
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	c := shardCSR(g)
	for _, shards := range []int{1, 2, 4} {
		var want *ShardResult
		var wantHash uint64
		for _, threads := range []int{1, 4} {
			for run := 0; run < 2; run++ {
				res := detectSharded(t, c, shards, threads)
				h := partitionHash(res.CommunityOf)
				if want == nil {
					want, wantHash = res, h
					continue
				}
				if h != wantHash {
					for v := range want.CommunityOf {
						if res.CommunityOf[v] != want.CommunityOf[v] {
							t.Fatalf("shards=%d threads=%d run=%d: vertex %d in community %d, first run says %d",
								shards, threads, run, v, res.CommunityOf[v], want.CommunityOf[v])
						}
					}
					t.Fatalf("shards=%d threads=%d run=%d: parity hash mismatch", shards, threads, run)
				}
			}
		}
	}
}

func TestShardQualityOracle(t *testing.T) {
	// Sharding trades a bounded amount of quality for locality: on karate
	// and an R-MAT component, every shard count must land within
	// engineTolerance of the sequential oracle's modularity, and the
	// reported global metrics must equal the metrics of the final partition
	// evaluated on the original graph (the quotient preserves weights).
	karate := gen.Karate()
	rmat, _, err := gen.ConnectedRMAT(0, gen.DefaultRMAT(12, 12345))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"karate", karate}, {"rmat-12", rmat}} {
		sq := seq.Detect(tc.g, seq.Options{})
		c := shardCSR(tc.g)
		for _, shards := range []int{1, 2, 4} {
			res := detectSharded(t, c, shards, 2)
			if res.FinalModularity < sq.Modularity-engineTolerance {
				t.Errorf("%s shards=%d: modularity %.4f below seq oracle %.4f - %.2f",
					tc.name, shards, res.FinalModularity, sq.Modularity, engineTolerance)
			}
			direct := metrics.Modularity(2, tc.g, res.CommunityOf, res.NumCommunities)
			if diff := res.FinalModularity - direct; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s shards=%d: reported modularity %.9f != direct evaluation %.9f",
					tc.name, shards, res.FinalModularity, direct)
			}
			cov := metrics.Coverage(2, tc.g, res.CommunityOf, res.NumCommunities)
			if diff := res.FinalCoverage - cov; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s shards=%d: reported coverage %.9f != direct evaluation %.9f",
					tc.name, shards, res.FinalCoverage, cov)
			}
		}
	}
}

func TestShardSingleShardMatchesQuality(t *testing.T) {
	// K=1 runs the whole graph through one engine pass plus a stitch over
	// its community graph — effectively extra agglomeration phases, so the
	// modularity must be at least the plain engine's minus tolerance (in
	// practice it is equal or better).
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Detect(g, Options{Threads: 2, Engine: EngineMatching, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	res := detectSharded(t, shardCSR(g), 1, 2)
	if len(res.Shards) != 1 {
		t.Fatalf("%d shard stats for K=1", len(res.Shards))
	}
	if res.CutEdges != 0 {
		t.Fatalf("K=1 recorded %d cut edges", res.CutEdges)
	}
	if res.FinalModularity < plain.FinalModularity-engineTolerance {
		t.Errorf("K=1 modularity %.4f below plain detect %.4f - %.2f",
			res.FinalModularity, plain.FinalModularity, engineTolerance)
	}
}

func TestShardDendrogramAndStats(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2500, 13))
	if err != nil {
		t.Fatal(err)
	}
	c := shardCSR(g)
	led := obs.NewLedger()
	res, err := DetectSharded(context.Background(), c, ShardOptions{
		Shards: 4,
		Opt:    Options{Threads: 2, Engine: EngineMatching, Validate: true, Ledger: led},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dendrogram's flattened leaf assignment must equal CommunityOf.
	final, k := res.Dendrogram.Final()
	if k != res.NumCommunities {
		t.Fatalf("dendrogram %d communities, result %d", k, res.NumCommunities)
	}
	for v := range final {
		if final[v] != res.CommunityOf[v] {
			t.Fatalf("dendrogram assigns vertex %d to %d, result to %d", v, final[v], res.CommunityOf[v])
		}
	}
	// Shard stats: contiguous ranges covering [0, n), cut edges consistent.
	var cut, prevEnd int64
	for i, st := range res.Shards {
		if st.FirstVertex != prevEnd {
			t.Fatalf("shard %d starts at %d, want %d", i, st.FirstVertex, prevEnd)
		}
		if st.Vertices != st.LastVertex-st.FirstVertex {
			t.Fatalf("shard %d vertex count %d for range [%d,%d)", i, st.Vertices, st.FirstVertex, st.LastVertex)
		}
		prevEnd = st.LastVertex
		cut += st.CutEdges
	}
	if prevEnd != g.NumVertices() {
		t.Fatalf("shards cover [0,%d), graph has %d vertices", prevEnd, g.NumVertices())
	}
	if cut != res.CutEdges {
		t.Fatalf("shard cut edges sum to %d, result says %d", cut, res.CutEdges)
	}
	// Ledger: one StageShard row per shard plus a StageStitch summary.
	rows := led.Levels()
	var shardRows, stitchRows int
	for _, r := range rows {
		switch obs.StageOf(r) {
		case obs.StageShard:
			shardRows++
		case obs.StageStitch:
			stitchRows++
			if r.Metric != res.FinalModularity || r.CutEdges != res.CutEdges {
				t.Fatalf("stitch row %+v inconsistent with result", r)
			}
		}
	}
	if shardRows != len(res.Shards) || stitchRows != 1 {
		t.Fatalf("%d shard rows, %d stitch rows; want %d and 1", shardRows, stitchRows, len(res.Shards))
	}
}

func TestShardDegenerateInputs(t *testing.T) {
	// More shards than vertices must clamp, not crash; a nil CSR and an
	// empty graph must error.
	g := gen.CliqueChain(2, 3)
	res := detectSharded(t, shardCSR(g), 64, 2)
	if len(res.Shards) > int(g.NumVertices()) {
		t.Fatalf("%d shards for %d vertices", len(res.Shards), g.NumVertices())
	}
	if _, err := DetectSharded(context.Background(), nil, ShardOptions{Shards: 2, Opt: Options{Engine: EngineMatching}}); err == nil {
		t.Fatal("accepted nil CSR")
	}
	empty := &graph.CSR{Offsets: []int64{0}, Self: []int64{}}
	if _, err := DetectSharded(context.Background(), empty, ShardOptions{Shards: 2, Opt: Options{Engine: EngineMatching}}); err == nil {
		t.Fatal("accepted empty graph")
	}
}

package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
)

// countdownCtx reports Canceled after its Err budget is spent. The engine
// only polls Err() at phase and kernel boundaries, so a countdown makes
// "cancelled mid-run at check #N" deterministic in a way a timer cannot.
type countdownCtx struct {
	context.Context
	mu     sync.Mutex
	budget int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return context.Canceled
	}
	c.budget--
	return nil
}

// checkPartial asserts the invariants every cancelled Result must satisfy:
// a valid (possibly identity) partition, and Levels that still compose to
// CommunityOf.
func checkPartial(t *testing.T, res *Result, n int64) {
	t.Helper()
	if res == nil {
		t.Fatal("cancelled run returned nil Result")
	}
	if res.Termination != TermCanceled {
		t.Fatalf("Termination = %q, want %q", res.Termination, TermCanceled)
	}
	if int64(len(res.CommunityOf)) != n {
		t.Fatalf("CommunityOf has %d entries, want %d", len(res.CommunityOf), n)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	for v := int64(0); v < n; v++ {
		c := v
		for _, level := range res.Levels {
			c = level[c]
		}
		if c != res.CommunityOf[v] {
			t.Fatalf("vertex %d: composed %d != CommunityOf %d", v, c, res.CommunityOf[v])
		}
	}
}

func TestDetectContextPreCanceled(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DetectContext(ctx, g, Options{Threads: 2})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if len(res.Stats) != 0 {
		t.Fatalf("pre-cancelled run completed %d phases, want 0", len(res.Stats))
	}
	checkPartial(t, res, g.NumVertices())
	if res.NumCommunities != g.NumVertices() {
		t.Fatalf("pre-cancelled run contracted to %d communities", res.NumCommunities)
	}
}

func TestDetectContextCancelMidRun(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(3000, 5))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Detect(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Levels) < 3 {
		t.Fatalf("workload too easy: only %d phases; cancellation needs a multi-phase run", len(full.Levels))
	}

	// Sweep the Err-call budget so cancellation lands at every boundary the
	// engine checks: phase top, after scoring, after matching, and the
	// matching kernel's per-pass check. The same arena is reused across all
	// runs, cancelled or not, to prove a cancelled run leaves it usable.
	s := NewScratch()
	sawMidRun := false
	for budget := 0; budget <= 40; budget++ {
		ctx := &countdownCtx{Context: context.Background(), budget: budget}
		res, err := DetectWithContext(ctx, g, Options{Threads: 2}, s)
		if err == nil {
			if res.Termination == TermCanceled {
				t.Fatalf("budget %d: TermCanceled with nil error", budget)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: error %v does not wrap context.Canceled", budget, err)
		}
		checkPartial(t, res, g.NumVertices())
		if len(res.Levels) > 0 && len(res.Levels) < len(full.Levels) {
			sawMidRun = true
		}
	}
	if !sawMidRun {
		t.Fatal("no budget produced a cancellation with a partial (non-empty, non-complete) hierarchy")
	}

	// The arena that served the cancelled runs still supports a clean run.
	res, err := DetectWithContext(context.Background(), g, Options{Threads: 2}, s)
	if err != nil {
		t.Fatalf("post-cancellation run on reused arena: %v", err)
	}
	if res.Termination == TermCanceled {
		t.Fatal("uncancelled run reported TermCanceled")
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
}

func TestDetectExecSharedTeamSequentialRuns(t *testing.T) {
	// One pooled worker team serves many detections back to back — the
	// harness sweep pattern. Run under -race this also proves the pool's
	// park/wake handoff publishes loop bodies correctly between runs.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1500, 3))
	if err != nil {
		t.Fatal(err)
	}
	ec := exec.New(context.Background(), 4, nil)
	defer ec.Close()
	s := NewScratch()
	for run := 0; run < 5; run++ {
		res, err := DetectExec(ec, g, Options{Threads: 4}, s)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		validatePartition(t, res.CommunityOf, res.NumCommunities)
	}
	// Narrower views of the same team interleave with full-width runs.
	for _, th := range []int{1, 2, 4} {
		res, err := DetectExec(ec.WithThreads(th), g, Options{Threads: th}, s)
		if err != nil {
			t.Fatalf("threads %d: %v", th, err)
		}
		validatePartition(t, res.CommunityOf, res.NumCommunities)
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/scoring"
)

// validatePartition checks that comm is a dense partition into k
// communities.
func validatePartition(t *testing.T, comm []int64, k int64) {
	t.Helper()
	seen := make([]bool, k)
	for v, c := range comm {
		if c < 0 || c >= k {
			t.Fatalf("vertex %d in community %d outside [0,%d)", v, c, k)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("community %d empty", c)
		}
	}
}

// bruteModularity evaluates Q for a partition of the original graph.
func bruteModularity(g *graph.Graph, comm []int64, k int64) float64 {
	m := float64(g.TotalWeight(1))
	internal := make([]float64, k)
	vol := make([]float64, k)
	deg := g.WeightedDegrees(1)
	for x := int64(0); x < g.NumVertices(); x++ {
		internal[comm[x]] += float64(g.Self[x])
		vol[comm[x]] += float64(deg[x])
	}
	g.ForEachEdge(func(_ int64, u, v, w int64) {
		if comm[u] == comm[v] {
			internal[comm[u]] += float64(w)
		}
	})
	var q float64
	for c := int64(0); c < k; c++ {
		q += internal[c]/m - (vol[c]/(2*m))*(vol[c]/(2*m))
	}
	return q
}

func TestDetectDisjointCliques(t *testing.T) {
	// Four disjoint 6-cliques: no cross edges exist, so the local maximum
	// is exactly one community per clique.
	var edges []graph.Edge
	for c := int64(0); c < 4; c++ {
		for i := int64(0); i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				edges = append(edges, graph.Edge{U: c*6 + i, V: c*6 + j, W: 1})
			}
		}
	}
	g := graph.MustBuild(1, 24, edges)
	res, err := Detect(g, Options{Threads: 4, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != TermLocalMax {
		t.Fatalf("termination %q, want local-maximum", res.Termination)
	}
	if res.NumCommunities != 4 {
		t.Fatalf("found %d communities, want 4", res.NumCommunities)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	for c := int64(0); c < 4; c++ {
		first := res.CommunityOf[c*6]
		for i := int64(1); i < 6; i++ {
			if res.CommunityOf[c*6+i] != first {
				t.Fatalf("clique %d split: %v", c, res.CommunityOf[c*6:c*6+6])
			}
		}
	}
}

func TestDetectCliqueChainQuality(t *testing.T) {
	// Cliques in a chain: the bridge edges tie with port-port intra edges
	// under the scoring total order, so the greedy result need not be the
	// exact clique partition — but it must stay close to it.
	g := gen.CliqueChain(8, 6)
	res, err := Detect(g, Options{Threads: 4, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	if res.NumCommunities < 4 || res.NumCommunities > 8 {
		t.Fatalf("found %d communities for 8 cliques", res.NumCommunities)
	}
	if res.FinalModularity < 0.5 {
		t.Fatalf("final modularity %v too low", res.FinalModularity)
	}
}

func TestDetectReportedModularityMatchesBruteForce(t *testing.T) {
	g := gen.Karate()
	res, err := Detect(g, Options{Threads: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	want := bruteModularity(g, res.CommunityOf, res.NumCommunities)
	if math.Abs(res.FinalModularity-want) > 1e-9 {
		t.Fatalf("FinalModularity %v, brute force %v", res.FinalModularity, want)
	}
	// Agglomerative modularity on karate should land in the known band.
	if res.FinalModularity < 0.25 || res.FinalModularity > 0.45 {
		t.Fatalf("karate modularity %v outside [0.25, 0.45]", res.FinalModularity)
	}
}

func TestDetectCoverageTermination(t *testing.T) {
	g, _, err := gen.LJSim(4, gen.DefaultLJSim(3000, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{Threads: 4, MinCoverage: 0.5, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != TermCoverage {
		t.Fatalf("termination %q, want coverage", res.Termination)
	}
	if res.FinalCoverage < 0.5 {
		t.Fatalf("final coverage %v < 0.5", res.FinalCoverage)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
}

func TestDetectMaxPhases(t *testing.T) {
	g := gen.Ring(64)
	res, err := Detect(g, Options{Threads: 2, MaxPhases: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != TermMaxPhases {
		t.Fatalf("termination %q, want max-phases", res.Termination)
	}
	if len(res.Stats) != 2 || len(res.Levels) != 2 {
		t.Fatalf("phases run: %d stats, %d levels, want 2", len(res.Stats), len(res.Levels))
	}
}

func TestDetectMinCommunities(t *testing.T) {
	g := gen.Clique(32)
	res, err := Detect(g, Options{Threads: 2, MinCommunities: 8, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities < 8 {
		t.Fatalf("contracted below the floor: %d communities", res.NumCommunities)
	}
	if res.Termination != TermMinCommunities && res.Termination != TermLocalMax {
		t.Fatalf("unexpected termination %q", res.Termination)
	}
}

func TestDetectStarStopsQuickly(t *testing.T) {
	// The star is the paper's slow case: one pair merges per phase. With
	// modularity scoring the process still terminates at a local maximum.
	g := gen.Star(32)
	res, err := Detect(g, Options{Threads: 2, MaxPhases: 100, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	if res.FinalModularity < -0.5 || res.FinalModularity > 1 {
		t.Fatalf("modularity %v outside [-0.5, 1]", res.FinalModularity)
	}
}

func TestDetectLevelsComposeToCommunityOf(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1000, 9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{Threads: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices(); v++ {
		c := v
		for _, level := range res.Levels {
			c = level[c]
		}
		if c != res.CommunityOf[v] {
			t.Fatalf("vertex %d: composed %d != CommunityOf %d", v, c, res.CommunityOf[v])
		}
	}
}

func TestDetectModularityMonotoneUntilLocalMax(t *testing.T) {
	// Each merge has positive ΔQ, so per-phase modularity must not decrease.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{Threads: 4, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for _, st := range res.Stats {
		if st.Modularity < prev-1e-9 {
			t.Fatalf("phase %d modularity %v below previous %v", st.Phase, st.Modularity, prev)
		}
		prev = st.Modularity
	}
	if res.FinalModularity < prev-1e-9 {
		t.Fatalf("final modularity %v below last phase %v", res.FinalModularity, prev)
	}
}

func TestDetectAllKernelCombinations(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []MatchKernel{MatchWorklist, MatchEdgeSweep} {
		for _, ck := range []ContractKernel{ContractBucket, ContractBucketNonContiguous, ContractListChase} {
			res, err := Detect(g, Options{Threads: 3, Matching: mk, Contraction: ck, Validate: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", mk, ck, err)
			}
			validatePartition(t, res.CommunityOf, res.NumCommunities)
			if res.FinalModularity < 0.2 {
				t.Fatalf("%v/%v: modularity %v suspiciously low", mk, ck, res.FinalModularity)
			}
		}
	}
}

func TestDetectConductanceScorer(t *testing.T) {
	g := gen.CliqueChain(4, 5)
	res, err := Detect(g, Options{
		Threads: 2, Scorer: scoring.Conductance{}, MinCommunities: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	if res.NumCommunities < 2 {
		t.Fatalf("%d communities with MinCommunities=2", res.NumCommunities)
	}
}

func TestDetectEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewEmpty(0),
		graph.NewEmpty(1),
		graph.NewEmpty(5), // isolated vertices
	} {
		res, err := Detect(g, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Termination != TermLocalMax {
			t.Fatalf("termination %q", res.Termination)
		}
		if res.NumCommunities != g.NumVertices() {
			t.Fatalf("%d communities for %d isolated vertices", res.NumCommunities, g.NumVertices())
		}
	}
}

func TestDetectSelfLoopOnlyGraph(t *testing.T) {
	g := graph.NewEmpty(3)
	g.Self[0], g.Self[1], g.Self[2] = 5, 2, 1
	res, err := Detect(g, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities != 3 {
		t.Fatalf("self-loop-only graph merged: %d communities", res.NumCommunities)
	}
	if res.FinalCoverage != 1 {
		t.Fatalf("coverage %v, want 1", res.FinalCoverage)
	}
}

func TestDetectRejectsBadOptions(t *testing.T) {
	g := gen.Ring(4)
	for _, opt := range []Options{
		{MinCoverage: -0.1},
		{MinCoverage: 1.5},
		{MaxPhases: -1},
		{MinCommunities: -2},
		{Matching: MatchKernel(99)},
		{Contraction: ContractKernel(99)},
	} {
		if _, err := Detect(g, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
	if _, err := Detect(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestDetectPhaseStatsPlausible(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1500, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) == 0 {
		t.Fatal("no phases recorded")
	}
	prevV := g.NumVertices() + 1
	for _, st := range res.Stats {
		if st.Vertices >= prevV {
			t.Fatalf("phase %d vertices %d did not shrink from %d", st.Phase, st.Vertices, prevV)
		}
		if st.MatchedPairs < 1 || st.MatchedPairs > st.Vertices/2 {
			t.Fatalf("phase %d matched %d pairs of %d vertices", st.Phase, st.MatchedPairs, st.Vertices)
		}
		if st.Coverage < 0 || st.Coverage > 1 {
			t.Fatalf("phase %d coverage %v", st.Phase, st.Coverage)
		}
		if st.MatchPasses < 1 {
			t.Fatalf("phase %d match passes %d", st.Phase, st.MatchPasses)
		}
		prevV = st.Vertices
	}
}

func TestKernelStrings(t *testing.T) {
	if MatchWorklist.String() != "worklist" || MatchEdgeSweep.String() != "edgesweep" {
		t.Fatal("match kernel names")
	}
	if ContractBucket.String() != "bucket" ||
		ContractBucketNonContiguous.String() != "bucket-noncontig" ||
		ContractListChase.String() != "listchase" {
		t.Fatal("contract kernel names")
	}
	if MatchKernel(9).String() == "" || ContractKernel(9).String() == "" {
		t.Fatal("unknown kernels need diagnostic names")
	}
}

func TestDetectPropertyRandomGraphs(t *testing.T) {
	// Engine-wide property sweep on arbitrary inputs: the result is always
	// a valid dense partition, coverage and modularity are in range, phases
	// strictly shrink the community graph, and Levels compose to
	// CommunityOf.
	r := par.NewRNG(55)
	for trial := 0; trial < 15; trial++ {
		n := int64(5 + r.Intn(120))
		var edges []graph.Edge
		cnt := r.Intn(int(n) * 4)
		for i := 0; i < cnt; i++ {
			edges = append(edges, graph.Edge{U: r.Int63n(n), V: r.Int63n(n), W: r.Int63n(9) + 1})
		}
		g := graph.MustBuild(2, n, edges)
		res, err := Detect(g, Options{Threads: 1 + r.Intn(4), Validate: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		validatePartition(t, res.CommunityOf, res.NumCommunities)
		if res.FinalCoverage < -1e-9 || res.FinalCoverage > 1+1e-9 {
			t.Fatalf("trial %d: coverage %v", trial, res.FinalCoverage)
		}
		if res.FinalModularity < -0.5-1e-9 || res.FinalModularity > 1+1e-9 {
			t.Fatalf("trial %d: modularity %v", trial, res.FinalModularity)
		}
		prev := n
		for _, st := range res.Stats {
			if st.Vertices >= prev && st.Phase > 0 {
				t.Fatalf("trial %d: phase %d did not shrink", trial, st.Phase)
			}
			prev = st.Vertices
		}
		for v := int64(0); v < n; v++ {
			c := v
			for _, level := range res.Levels {
				c = level[c]
			}
			if c != res.CommunityOf[v] {
				t.Fatalf("trial %d: levels do not compose at vertex %d", trial, v)
			}
		}
	}
}

// Package core implements the paper's parallel agglomerative community
// detection engine (§III). Starting from one community per vertex, it
// repeats three parallel primitives until a termination criterion holds:
//
//  1. score every community-graph edge by the metric change a merge of its
//     endpoints would cause, exiting at a local maximum if no score is
//     positive;
//  2. compute a greedy approximately-maximum-weight maximal matching over
//     the positive scores;
//  3. contract matched community pairs into a new community graph.
//
// The engine is agnostic to the scoring metric and to the matching and
// contraction kernels; Options selects among the implementations in the
// scoring, matching, and contract packages, which makes the paper's
// old-vs-new ablations one-flag experiments.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
	"repro/internal/refine"
	"repro/internal/scoring"
)

// MatchKernel selects the matching implementation (§IV-B).
type MatchKernel int

const (
	// MatchWorklist is the paper's improved unmatched-vertex-list matching.
	MatchWorklist MatchKernel = iota
	// MatchEdgeSweep is the 2011 whole-edge-array matching (ablation).
	MatchEdgeSweep
)

// String returns the kernel's name for logs and benchmark labels.
func (k MatchKernel) String() string {
	switch k {
	case MatchWorklist:
		return "worklist"
	case MatchEdgeSweep:
		return "edgesweep"
	}
	return fmt.Sprintf("MatchKernel(%d)", int(k))
}

// ContractKernel selects the contraction implementation (§IV-C).
type ContractKernel int

const (
	// ContractBucket is the paper's bucket-sort contraction with contiguous
	// (prefix-sum) bucket layout.
	ContractBucket ContractKernel = iota
	// ContractBucketNonContiguous uses bump-allocated bucket regions,
	// synchronizing only on an atomic fetch-and-add.
	ContractBucketNonContiguous
	// ContractListChase is the 2011 hashed-linked-list contraction
	// (ablation).
	ContractListChase
)

// String returns the kernel's name for logs and benchmark labels.
func (k ContractKernel) String() string {
	switch k {
	case ContractBucket:
		return "bucket"
	case ContractBucketNonContiguous:
		return "bucket-noncontig"
	case ContractListChase:
		return "listchase"
	}
	return fmt.Sprintf("ContractKernel(%d)", int(k))
}

// Options configures a detection run. The zero value asks for modularity
// maximization with the paper's improved kernels on all available threads,
// running to a local maximum.
type Options struct {
	// Threads is the worker count; <= 0 selects GOMAXPROCS.
	Threads int
	// Scorer is the edge-scoring metric; nil selects scoring.Modularity.
	Scorer scoring.Scorer
	// Matching and Contraction select the kernels.
	Matching    MatchKernel
	Contraction ContractKernel
	// MinCoverage stops the run once the fraction of input edge weight
	// inside communities reaches this value; 0 disables. The paper's §V
	// experiments use 0.5, "following the spirit of the 10th DIMACS
	// Implementation Challenge rules".
	MinCoverage float64
	// MaxPhases caps the number of contraction phases; 0 means unlimited.
	MaxPhases int
	// MinCommunities stops the run rather than contract below this many
	// communities; 0 disables. Real applications "impose additional
	// constraints like a minimum number of communities" (§III).
	MinCommunities int64
	// MaxCommunitySize forbids merges that would create a community with
	// more than this many original vertices; 0 disables. The paper names
	// "maximum community size" as the other constraint real applications
	// impose (§III); tracking the vertex count per community is the
	// "straight-forward" extension the paper describes.
	MaxCommunitySize int64
	// RefineEveryPhase runs a vertex-move refinement pass over the original
	// graph after every contraction and rebuilds the community graph from
	// the refined partition — the paper's future-work direction of
	// "incorporating refinement into our parallel algorithm" (§II). Slower
	// per phase, substantially better modularity.
	RefineEveryPhase bool
	// Validate runs full graph and matching invariant checks every phase.
	// Expensive; for tests and debugging.
	Validate bool
}

// Termination labels why a run stopped.
type Termination string

const (
	// TermLocalMax: no edge had a positive score.
	TermLocalMax Termination = "local-maximum"
	// TermCoverage: MinCoverage was reached.
	TermCoverage Termination = "coverage"
	// TermMaxPhases: MaxPhases contractions were performed.
	TermMaxPhases Termination = "max-phases"
	// TermMinCommunities: another contraction would drop below
	// MinCommunities.
	TermMinCommunities Termination = "min-communities"
)

// PhaseStats records one iteration of the inner loop. Vertices/Edges/
// Coverage/Modularity describe the community graph the phase started from;
// the timings cover the three primitives run on it.
type PhaseStats struct {
	Phase        int
	Vertices     int64
	Edges        int64
	Coverage     float64
	Modularity   float64
	MatchedPairs int64
	MatchPasses  int
	MatchWeight  float64
	ScoreTime    time.Duration
	MatchTime    time.Duration
	ContractTime time.Duration
	MaxBucketLen int64
}

// Result of a detection run.
type Result struct {
	// CommunityOf maps every input vertex to its community in [0,
	// NumCommunities).
	CommunityOf    []int64
	NumCommunities int64
	// Levels holds the per-phase old→new community maps, outermost first;
	// composing them yields CommunityOf (unless RefineEveryPhase moved
	// vertices between communities, in which case CommunityOf alone is
	// authoritative). Useful for hierarchy analysis.
	Levels [][]int64
	// Stats has one entry per executed phase.
	Stats []PhaseStats
	// Sizes[c] is the number of original vertices in community c.
	Sizes []int64
	// FinalCoverage and FinalModularity describe the final partition.
	FinalCoverage   float64
	FinalModularity float64
	// Termination tells why the run stopped, Total how long it took.
	Termination Termination
	Total       time.Duration
}

// Detect runs the agglomerative algorithm on g. The input graph is treated
// as read-only; every phase allocates a new, smaller community graph.
func Detect(g *graph.Graph, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if opt.MinCoverage < 0 || opt.MinCoverage > 1 {
		return nil, fmt.Errorf("core: MinCoverage %v outside [0,1]", opt.MinCoverage)
	}
	if opt.MaxPhases < 0 {
		return nil, fmt.Errorf("core: negative MaxPhases %d", opt.MaxPhases)
	}
	if opt.MinCommunities < 0 {
		return nil, fmt.Errorf("core: negative MinCommunities %d", opt.MinCommunities)
	}
	if opt.MaxCommunitySize < 0 {
		return nil, fmt.Errorf("core: negative MaxCommunitySize %d", opt.MaxCommunitySize)
	}
	scorer := opt.Scorer
	if scorer == nil {
		scorer = scoring.Modularity{}
	}
	matchFn, err := matchFunc(opt.Matching)
	if err != nil {
		return nil, err
	}
	contractFn, err := contractFunc(opt.Contraction)
	if err != nil {
		return nil, err
	}
	p := opt.Threads
	if p <= 0 {
		p = par.DefaultThreads()
	}

	start := time.Now()
	n := g.NumVertices()
	comm := make([]int64, n)
	par.For(p, int(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			comm[i] = int64(i)
		}
	})
	totW := g.TotalWeight(p)
	sizes := make([]int64, n)
	par.For(p, int(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sizes[i] = 1
		}
	})

	res := &Result{CommunityOf: comm}
	cg := g
	finish := func(term Termination, deg []int64) (*Result, error) {
		res.Termination = term
		res.NumCommunities = cg.NumVertices()
		res.Sizes = sizes
		res.FinalCoverage = coverage(p, cg, totW)
		if deg == nil {
			deg = cg.WeightedDegrees(p)
		}
		res.FinalModularity = modularityOf(p, cg, deg, totW)
		res.Total = time.Since(start)
		return res, nil
	}

	for phase := 0; ; phase++ {
		if opt.MaxPhases > 0 && phase >= opt.MaxPhases {
			return finish(TermMaxPhases, nil)
		}
		cov := coverage(p, cg, totW)
		if opt.MinCoverage > 0 && cov >= opt.MinCoverage {
			return finish(TermCoverage, nil)
		}

		// Primitive 1: score.
		t0 := time.Now()
		deg := cg.WeightedDegrees(p)
		scores := make([]float64, len(cg.U))
		scorer.Score(p, cg, deg, totW, scores)
		if cap := opt.MaxCommunitySize; cap > 0 {
			// Mask merges that would exceed the size cap; a local maximum
			// then means "no allowed merge improves the metric".
			par.ForDynamic(p, int(cg.NumVertices()), 0, func(lo, hi int) {
				for x := lo; x < hi; x++ {
					for e := cg.Start[x]; e < cg.End[x]; e++ {
						if sizes[cg.U[e]]+sizes[cg.V[e]] > cap {
							scores[e] = -1
						}
					}
				}
			})
		}
		positive := scoring.HasPositive(p, cg, scores)
		scoreTime := time.Since(t0)
		if !positive {
			return finish(TermLocalMax, deg)
		}

		// Primitive 2: greedy heavy maximal matching.
		t1 := time.Now()
		mres := matchFn(p, cg, scores)
		matchTime := time.Since(t1)
		if opt.Validate {
			if err := matching.Verify(cg, scores, mres.Match); err != nil {
				return nil, fmt.Errorf("core: phase %d: %w", phase, err)
			}
		}
		if mres.Pairs == 0 {
			// Unreachable for a maximal matching over positive edges, but a
			// contraction that merges nothing would loop forever.
			return finish(TermLocalMax, deg)
		}
		if opt.MinCommunities > 0 && cg.NumVertices()-mres.Pairs < opt.MinCommunities {
			return finish(TermMinCommunities, deg)
		}

		// Primitive 3: contraction.
		t2 := time.Now()
		ng, mapping := contractFn(p, cg, mres.Match)
		contractTime := time.Since(t2)
		if opt.Validate {
			if err := ng.Validate(); err != nil {
				return nil, fmt.Errorf("core: phase %d: %w", phase, err)
			}
			if ng.TotalWeight(p) != totW {
				return nil, fmt.Errorf("core: phase %d: contraction changed total weight %d -> %d",
					phase, totW, ng.TotalWeight(p))
			}
		}
		par.For(p, int(n), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				comm[i] = mapping[comm[i]]
			}
		})
		// Track community sizes through the contraction (§III's
		// "straight-forward" extension).
		newSizes := make([]int64, ng.NumVertices())
		par.For(p, len(sizes), func(lo, hi int) {
			for c := lo; c < hi; c++ {
				if sizes[c] != 0 {
					atomic.AddInt64(&newSizes[mapping[c]], sizes[c])
				}
			}
		})
		sizes = newSizes

		res.Stats = append(res.Stats, PhaseStats{
			Phase:        phase,
			Vertices:     cg.NumVertices(),
			Edges:        cg.NumEdges(),
			Coverage:     cov,
			Modularity:   modularityOf(p, cg, deg, totW),
			MatchedPairs: mres.Pairs,
			MatchPasses:  mres.Passes,
			MatchWeight:  mres.Weight,
			ScoreTime:    scoreTime,
			MatchTime:    matchTime,
			ContractTime: contractTime,
			MaxBucketLen: cg.MaxBucketLen(),
		})
		res.Levels = append(res.Levels, mapping)
		cg = ng

		if opt.RefineEveryPhase {
			// Future-work integration (§II): let individual vertices migrate
			// between the freshly merged communities on the original graph,
			// then rebuild the community graph from the refined partition.
			rres, err := refine.Refine(g, comm, cg.NumVertices(), refine.Options{Threads: p})
			if err != nil {
				return nil, fmt.Errorf("core: phase %d refinement: %w", phase, err)
			}
			if rres.Moves > 0 && rres.ModularityAfter > rres.ModularityBefore {
				copy(comm, rres.CommunityOf)
				cg = contract.ByMapping(p, g, comm, rres.NumCommunities, contract.Contiguous)
				newSizes := make([]int64, rres.NumCommunities)
				for _, c := range comm {
					newSizes[c]++
				}
				sizes = newSizes
				if opt.Validate {
					if err := cg.Validate(); err != nil {
						return nil, fmt.Errorf("core: phase %d refined graph: %w", phase, err)
					}
				}
			}
		}
	}
}

func matchFunc(k MatchKernel) (func(int, *graph.Graph, []float64) matching.Result, error) {
	switch k {
	case MatchWorklist:
		return matching.Worklist, nil
	case MatchEdgeSweep:
		return matching.EdgeSweep, nil
	}
	return nil, fmt.Errorf("core: unknown matching kernel %d", int(k))
}

func contractFunc(k ContractKernel) (func(int, *graph.Graph, []int64) (*graph.Graph, []int64), error) {
	switch k {
	case ContractBucket:
		return func(p int, g *graph.Graph, m []int64) (*graph.Graph, []int64) {
			return contract.Bucket(p, g, m, contract.Contiguous)
		}, nil
	case ContractBucketNonContiguous:
		return func(p int, g *graph.Graph, m []int64) (*graph.Graph, []int64) {
			return contract.Bucket(p, g, m, contract.NonContiguous)
		}, nil
	case ContractListChase:
		return contract.ListChase, nil
	}
	return nil, fmt.Errorf("core: unknown contraction kernel %d", int(k))
}

// coverage is the fraction of total input edge weight lying inside
// communities: Σ Self / m (§III; the DIMACS-style termination measure).
func coverage(p int, cg *graph.Graph, totW int64) float64 {
	if totW <= 0 {
		return 0
	}
	return float64(par.SumInt64(p, cg.Self)) / float64(totW)
}

// modularityOf evaluates Newman–Girvan modularity of the partition the
// community graph represents: Q = Σ_c [ self_c/m − (deg_c/(2m))² ].
func modularityOf(p int, cg *graph.Graph, deg []int64, totW int64) float64 {
	if totW <= 0 {
		return 0
	}
	m := float64(totW)
	n := int(cg.NumVertices())
	if p <= 0 {
		p = par.DefaultThreads()
	}
	partial := make([]float64, p)
	used := par.ForWorker(p, n, func(w, lo, hi int) {
		var q float64
		for c := lo; c < hi; c++ {
			d := float64(deg[c]) / (2 * m)
			q += float64(cg.Self[c])/m - d*d
		}
		partial[w] = q
	})
	var q float64
	for _, x := range partial[:used] {
		q += x
	}
	return q
}

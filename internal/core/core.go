// Package core implements the paper's parallel agglomerative community
// detection engine (§III). Starting from one community per vertex, it
// repeats three parallel primitives until a termination criterion holds:
//
//  1. score every community-graph edge by the metric change a merge of its
//     endpoints would cause, exiting at a local maximum if no score is
//     positive;
//  2. compute a greedy approximately-maximum-weight maximal matching over
//     the positive scores;
//  3. contract matched community pairs into a new community graph.
//
// The engine is agnostic to the scoring metric and to the matching and
// contraction kernels; Options selects among the implementations in the
// scoring, matching, and contract packages, which makes the paper's
// old-vs-new ablations one-flag experiments.
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/buf"
	"repro/internal/contract"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plp"
	"repro/internal/refine"
	"repro/internal/scoring"
)

// Engine selects the detection pipeline. The matching agglomeration pays
// its full per-level cost while the graph is still large; Staudt &
// Meyerhenke's PLP prelabeling collapses most of it in a few near-linear
// sweeps, and their EPP ensemble scheme runs the expensive algorithm only on
// the coarsened remainder. EngineEnsemble is that scheme with the matching
// agglomeration as the final algorithm.
type Engine int

const (
	// EngineMatching is the paper's matching-based agglomeration (default).
	EngineMatching Engine = iota
	// EnginePLP is pure parallel label propagation: prelabel, contract once
	// by label, done. The fastest engine and the weakest partition.
	EnginePLP
	// EngineEnsemble is the EPP pipeline: PLP prelabels, one label
	// contraction coarsens, then the matching agglomeration runs on the
	// contracted graph.
	EngineEnsemble
)

// DefaultEnsembleSweeps is EngineEnsemble's prelabel sweep bound when
// Options.PLPMaxSweeps is 0. See the PLPMaxSweeps comment: the ensemble wants
// a fine prelabel, not the propagation fixpoint.
const DefaultEnsembleSweeps = 4

// String returns the engine's name for logs, flags, and benchmark labels.
func (e Engine) String() string {
	switch e {
	case EngineMatching:
		return "matching"
	case EnginePLP:
		return "plp"
	case EngineEnsemble:
		return "ensemble"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps an engine name (the String forms) back to its value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "matching":
		return EngineMatching, nil
	case "plp":
		return EnginePLP, nil
	case "ensemble":
		return EngineEnsemble, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q (want matching, plp, or ensemble)", s)
}

// MatchKernel selects the matching implementation (§IV-B).
type MatchKernel int

const (
	// MatchWorklist is the paper's improved unmatched-vertex-list matching.
	MatchWorklist MatchKernel = iota
	// MatchEdgeSweep is the 2011 whole-edge-array matching (ablation).
	MatchEdgeSweep
)

// String returns the kernel's name for logs and benchmark labels.
func (k MatchKernel) String() string {
	switch k {
	case MatchWorklist:
		return "worklist"
	case MatchEdgeSweep:
		return "edgesweep"
	}
	return fmt.Sprintf("MatchKernel(%d)", int(k))
}

// ContractKernel selects the contraction implementation (§IV-C).
type ContractKernel int

const (
	// ContractBucket is the paper's bucket-sort contraction with contiguous
	// (prefix-sum) bucket layout.
	ContractBucket ContractKernel = iota
	// ContractBucketNonContiguous uses bump-allocated bucket regions,
	// synchronizing only on an atomic fetch-and-add.
	ContractBucketNonContiguous
	// ContractListChase is the 2011 hashed-linked-list contraction
	// (ablation).
	ContractListChase
)

// String returns the kernel's name for logs and benchmark labels.
func (k ContractKernel) String() string {
	switch k {
	case ContractBucket:
		return "bucket"
	case ContractBucketNonContiguous:
		return "bucket-noncontig"
	case ContractListChase:
		return "listchase"
	}
	return fmt.Sprintf("ContractKernel(%d)", int(k))
}

// Scheduler selects how the engine schedules parallel kernel sweeps.
type Scheduler int

const (
	// SchedAuto, the default, prefix-sums the bucket lengths of each
	// hierarchy level once and installs the resulting edge-balanced
	// partition on the execution context: edge-parallel sweeps (scoring,
	// contraction's count/scatter) walk edge-exact spans that split hub
	// buckets across workers, vertex-state sweeps (matching, refinement,
	// dedup) get degree-balanced vertex-aligned ranges, and anything below
	// the parallel threshold stays serial.
	SchedAuto Scheduler = iota
	// SchedDynamic disables static balanced scheduling (an ablation and
	// measurement baseline): sweeps fall back to dynamic equal-count
	// chunking wherever the kernel admits it. Contraction's histogram
	// stripes require a static schedule and keep a locally built span
	// partition either way.
	SchedDynamic
)

// String returns the scheduler's name for logs and benchmark labels.
func (s Scheduler) String() string {
	switch s {
	case SchedAuto:
		return "auto"
	case SchedDynamic:
		return "dynamic"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// Options configures a detection run. The zero value asks for modularity
// maximization with the paper's improved kernels on all available threads,
// running to a local maximum.
type Options struct {
	// Threads is the worker count; <= 0 selects GOMAXPROCS.
	Threads int
	// Scorer is the edge-scoring metric; nil selects scoring.Modularity.
	Scorer scoring.Scorer
	// Matching and Contraction select the kernels.
	Matching    MatchKernel
	Contraction ContractKernel
	// Scheduler selects how parallel sweeps are scheduled across workers;
	// the zero value (SchedAuto) builds an edge-balanced schedule per
	// hierarchy level, SchedDynamic keeps the dynamic-chunking baseline.
	Scheduler Scheduler
	// Engine selects the detection pipeline: the matching agglomeration
	// (default), pure label propagation, or the PLP-coarsened ensemble.
	Engine Engine
	// PLPMaxSweeps bounds the label-propagation sweeps of EnginePLP and
	// EngineEnsemble; 0 selects the engine default — plp.DefaultMaxSweeps
	// (effectively the fixpoint) for EnginePLP, DefaultEnsembleSweeps for
	// EngineEnsemble. The ensemble deliberately stops early: on graphs with
	// weak community structure synchronous propagation floods into a few
	// giant labels if left to converge, and a prelabel coarser than the
	// community scale destroys the agglomeration's headroom (measured on the
	// R-MAT bench graph: 4 sweeps keep modularity at or above the matching
	// engine's, the fixpoint collapses it to ~0). PLPThreshold stops the
	// sweeps once the active-vertex fraction drops to or below it; 0 runs to
	// the sweep bound. Both are ignored by EngineMatching.
	PLPMaxSweeps int
	PLPThreshold float64
	// MinCoverage stops the run once the fraction of input edge weight
	// inside communities reaches this value; 0 disables. The paper's §V
	// experiments use 0.5, "following the spirit of the 10th DIMACS
	// Implementation Challenge rules".
	MinCoverage float64
	// MaxPhases caps the number of contraction phases; 0 means unlimited.
	MaxPhases int
	// MinCommunities stops the run rather than contract below this many
	// communities; 0 disables. Real applications "impose additional
	// constraints like a minimum number of communities" (§III).
	MinCommunities int64
	// MaxCommunitySize forbids merges that would create a community with
	// more than this many original vertices; 0 disables. The paper names
	// "maximum community size" as the other constraint real applications
	// impose (§III); tracking the vertex count per community is the
	// "straight-forward" extension the paper describes.
	MaxCommunitySize int64
	// RefineEveryPhase runs a vertex-move refinement pass over the original
	// graph after every contraction and rebuilds the community graph from
	// the refined partition — the paper's future-work direction of
	// "incorporating refinement into our parallel algorithm" (§II). Slower
	// per phase, substantially better modularity.
	RefineEveryPhase bool
	// NoScratch opts out of the reusable scratch arena: every phase then
	// allocates its working arrays from scratch, the seed behavior. The
	// default (arena on) reuses one set of buffers across phases — and, via
	// DetectWith, across runs — so steady-state phases stay off the heap.
	NoScratch bool
	// DiscardLevels leaves Result.Levels empty. The per-phase old→new maps
	// are the one per-phase output that must otherwise be freshly
	// allocated; callers that only want the final partition set this to
	// keep the arena's steady state allocation-free.
	DiscardLevels bool
	// Validate runs full graph and matching invariant checks every phase.
	// Expensive; for tests and debugging.
	Validate bool
	// Recorder receives kernel-level observability data: per-phase and
	// per-kernel spans, matching round and claim-conflict counters, the
	// contraction bucket-occupancy histogram, per-region worker imbalance,
	// and pprof labels segmenting CPU profiles by kernel. nil (the default)
	// disables recording; the disabled path costs only predictable branches
	// and adds no allocations. A Recorder must not be shared by concurrent
	// runs.
	Recorder *obs.Recorder
	// Ledger receives the per-level convergence rows: merge fractions,
	// matching rounds and worklist drain curves, the metric trajectory,
	// community-size histograms, hub share, and the per-level schedule
	// imbalance against its analytic bound — with anomalies flagged as
	// structured warnings. Rows are recorded before any RefineEveryPhase
	// rebuild, so with refinement on the summed merged-vertex counts may
	// differ from n − NumCommunities. nil (the default) disables the ledger
	// at the same zero cost as a nil Recorder; the two are independent. A
	// Ledger must not be shared by concurrent runs.
	Ledger *obs.Ledger
}

// Termination labels why a run stopped.
type Termination string

const (
	// TermLocalMax: no edge had a positive score.
	TermLocalMax Termination = "local-maximum"
	// TermCoverage: MinCoverage was reached.
	TermCoverage Termination = "coverage"
	// TermMaxPhases: MaxPhases contractions were performed.
	TermMaxPhases Termination = "max-phases"
	// TermMinCommunities: another contraction would drop below
	// MinCommunities.
	TermMinCommunities Termination = "min-communities"
	// TermCanceled: the context was cancelled mid-run. The Result still
	// carries the partial hierarchy built so far, alongside a non-nil
	// wrapped ctx.Err().
	TermCanceled Termination = "canceled"
	// TermPLPConverged: EnginePLP finished its label-propagation sweeps
	// (fixpoint, active-fraction threshold, or sweep cap) and contracted.
	TermPLPConverged Termination = "plp-converged"
)

// PhaseStats records one iteration of the inner loop. Vertices/Edges/
// Coverage/Modularity describe the community graph the phase started from;
// the timings cover the three primitives run on it.
type PhaseStats struct {
	Phase        int
	Vertices     int64
	Edges        int64
	Coverage     float64
	Modularity   float64
	MatchedPairs int64
	MatchPasses  int
	MatchWeight  float64
	ScoreTime    time.Duration
	MatchTime    time.Duration
	ContractTime time.Duration
	MaxBucketLen int64
}

// Result of a detection run.
type Result struct {
	// CommunityOf maps every input vertex to its community in [0,
	// NumCommunities).
	CommunityOf    []int64
	NumCommunities int64
	// Levels holds the per-phase old→new community maps, outermost first;
	// composing them yields CommunityOf (unless RefineEveryPhase moved
	// vertices between communities, in which case CommunityOf alone is
	// authoritative). Useful for hierarchy analysis.
	Levels [][]int64
	// Stats has one entry per executed phase.
	Stats []PhaseStats
	// Sizes[c] is the number of original vertices in community c.
	Sizes []int64
	// FinalCoverage and FinalModularity describe the final partition.
	FinalCoverage   float64
	FinalModularity float64
	// Termination tells why the run stopped, Total how long it took.
	Termination Termination
	Total       time.Duration
}

// Detect runs the agglomerative algorithm on g. The input graph is treated
// as read-only. Unless Options.NoScratch is set, Detect constructs a
// Scratch arena internally so that after the first phase the loop reuses
// every working buffer; DetectWith extends the reuse across runs.
func Detect(g *graph.Graph, opt Options) (*Result, error) {
	return DetectContext(context.Background(), g, opt)
}

// DetectContext is Detect under a cancellation context: the engine checks
// ctx at every phase and kernel boundary, and a cancelled run stops at the
// next check with Termination TermCanceled, a Result holding the partial
// hierarchy built so far, and a non-nil error wrapping ctx.Err(). The arena
// (and, via DetectWithContext, the worker team) is left in a reusable state.
func DetectContext(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	var s *Scratch
	if !opt.NoScratch {
		s = NewScratch()
	}
	return DetectWithContext(ctx, g, opt, s)
}

// DetectWith is Detect running out of the reusable arena s: repeated calls
// (the harness's thread sweeps, service-style repeated queries) skip even
// the first-phase allocations once the arena has grown to the workload. A
// nil s (or Options.NoScratch) selects fresh per-phase allocations, the
// seed behavior. The returned Result never aliases arena memory. s must not
// be shared by concurrent runs.
func DetectWith(g *graph.Graph, opt Options, s *Scratch) (*Result, error) {
	return DetectWithContext(context.Background(), g, opt, s)
}

// DetectWithContext is DetectWith under a cancellation context. It acquires
// a pooled execution context (worker team included) for the run and releases
// it on return, so repeated detections park and reuse one team instead of
// spawning goroutines per loop.
func DetectWithContext(ctx context.Context, g *graph.Graph, opt Options, s *Scratch) (*Result, error) {
	if err := validateOptions(g, opt); err != nil {
		return nil, err
	}
	ec := exec.Acquire(ctx, opt.Threads, opt.Recorder)
	defer ec.Release()
	return detect(ec, g, opt, s, nil)
}

// DetectExec is the lowest-level entry point: the caller owns ec (its
// context, recorder, and worker team), which overrides Options.Threads and
// Options.Recorder entirely. The harness uses this to run a whole thread
// sweep on one long-lived team.
func DetectExec(ec *exec.Ctx, g *graph.Graph, opt Options, s *Scratch) (*Result, error) {
	if err := validateOptions(g, opt); err != nil {
		return nil, err
	}
	return detect(ec, g, opt, s, nil)
}

func validateOptions(g *graph.Graph, opt Options) error {
	if g == nil {
		return fmt.Errorf("core: nil graph")
	}
	if opt.MinCoverage < 0 || opt.MinCoverage > 1 {
		return fmt.Errorf("core: MinCoverage %v outside [0,1]", opt.MinCoverage)
	}
	if opt.MaxPhases < 0 {
		return fmt.Errorf("core: negative MaxPhases %d", opt.MaxPhases)
	}
	if opt.MinCommunities < 0 {
		return fmt.Errorf("core: negative MinCommunities %d", opt.MinCommunities)
	}
	if opt.MaxCommunitySize < 0 {
		return fmt.Errorf("core: negative MaxCommunitySize %d", opt.MaxCommunitySize)
	}
	if opt.Engine < EngineMatching || opt.Engine > EngineEnsemble {
		return fmt.Errorf("core: unknown engine %d", int(opt.Engine))
	}
	if opt.PLPMaxSweeps < 0 {
		return fmt.Errorf("core: negative PLPMaxSweeps %d", opt.PLPMaxSweeps)
	}
	if opt.PLPThreshold < 0 || opt.PLPThreshold >= 1 {
		return fmt.Errorf("core: PLPThreshold %v outside [0,1)", opt.PLPThreshold)
	}
	if _, err := matchFunc(opt.Matching); err != nil {
		return err
	}
	if _, err := contractFunc(opt.Contraction); err != nil {
		return err
	}
	return nil
}

// detect is the single inner engine. A non-nil seed (incremental
// re-detection) replaces the identity starting partition: the run opens by
// contracting g under the seed mapping and the matching loop continues from
// the resulting community graph. Seeded runs use the matching engine only
// (enforced by DetectIncremental).
func detect(ec *exec.Ctx, g *graph.Graph, opt Options, s *Scratch, seed *seedPartition) (*Result, error) {
	if opt.NoScratch {
		s = nil
	}
	scorer := opt.Scorer
	if scorer == nil {
		scorer = scoring.Modularity{}
	}
	matchFn, _ := matchFunc(opt.Matching)
	contractFn, _ := contractFunc(opt.Contraction)
	// The level schedule (Options.Scheduler): detect installs a partition on
	// ec at the top of every phase and must leave neither it nor the
	// dynamic-only flag behind for the next user of the context.
	if opt.Scheduler == SchedDynamic {
		ec.SetDynamicOnly(true)
		defer ec.SetDynamicOnly(false)
	}
	defer ec.SetPartition(nil)
	// The arena carries the partition workspace; only the no-scratch path
	// allocates one (conditionally, so the arena path stays off the heap).
	var levelPart *par.Partition
	if s != nil {
		levelPart = &s.part
	} else {
		levelPart = &par.Partition{}
	}
	// p is the worker count for the helpers outside the exec-threaded layers
	// (graph degree/weight sweeps); single-assignment so closures below don't
	// heap-box it. rec likewise: a nil rec makes every instrumentation call a
	// predictable-branch no-op.
	p := ec.Threads()
	rec := ec.Recorder()
	// One run = one set of ledger rows. Reset (rather than requiring a fresh
	// ledger) keeps a pointer published to the live expvar endpoint valid
	// across bench iterations.
	opt.Ledger.Reset()
	// The run's heap footprint brackets the whole detection: two ReadMemStats
	// stop-the-worlds per run, only when recording is on — never per kernel.
	rec.BeginAllocs()

	start := time.Now()
	n := g.NumVertices()
	comm := make([]int64, n)
	if seed != nil {
		// The starting partition is the seed assignment, not singletons.
		sc := seed.comm
		if ec.Serial(int(n)) {
			copy(comm, sc)
		} else {
			ec.For(int(n), func(lo, hi int) {
				copy(comm[lo:hi], sc[lo:hi])
			})
		}
	} else if ec.Serial(int(n)) {
		for i := range comm {
			comm[i] = int64(i)
		}
	} else {
		ec.For(int(n), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				comm[i] = int64(i)
			}
		})
	}
	totW := g.TotalWeight(p)
	// sizes is the working per-community vertex count; with an arena it
	// lives in the double-buffer (the roll-up below ping-pongs between the
	// halves) and is copied out at the end, without one it is fresh and
	// handed to the Result directly.
	sizesIdx := 0
	var sizes []int64
	if s != nil {
		s.sizes[0] = buf.Grow(s.sizes[0], int(n))
		sizes = s.sizes[0]
	} else {
		sizes = make([]int64, n)
	}
	// initSizes aliases sizes for the closure below: sizes is reassigned
	// every phase, and a closure capturing a reassigned variable heap-boxes
	// it (same reason finish takes cg and sizes as parameters).
	initSizes := sizes
	if ec.Serial(int(n)) {
		for i := range initSizes {
			initSizes[i] = 1
		}
	} else {
		ec.For(int(n), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				initSizes[i] = 1
			}
		})
	}

	res := &Result{CommunityOf: comm, Stats: make([]PhaseStats, 0, 48)}
	cg := g
	finish := func(term Termination, deg []int64, cg *graph.Graph, sizes []int64) (*Result, error) {
		rec.ClearLabels()
		res.Termination = term
		res.NumCommunities = cg.NumVertices()
		if s != nil {
			res.Sizes = append([]int64(nil), sizes...)
		} else {
			res.Sizes = sizes
		}
		res.FinalCoverage = coverage(ec, cg, totW)
		if deg == nil {
			if s != nil {
				deg = cg.WeightedDegreesInto(p, s.deg)
				s.deg = deg
			} else {
				deg = cg.WeightedDegrees(p)
			}
		}
		res.FinalModularity = modularityOf(ec, cg, deg, totW)
		res.Total = time.Since(start)
		rec.ObserveLatency(obs.LatDetect, res.Total.Nanoseconds())
		rec.EndAllocs()
		return res, nil
	}

	// Engine stage 0 (EnginePLP/EngineEnsemble): PLP prelabeling followed by
	// one label contraction — the EPP coarsening that shrinks the graph
	// before the per-level-expensive matching agglomeration below runs.
	// The stage consumes phase 0; the matching loop then continues from
	// phase 1 on the contracted graph.
	phaseStart := 0
	if opt.Engine != EngineMatching {
		if err := ec.Err(); err != nil {
			res, _ := finish(TermCanceled, nil, cg, sizes)
			return res, fmt.Errorf("core: canceled before prelabeling: %w", err)
		}
		rec.SetKernel("plp")
		pSpan := rec.Begin(obs.CatKernel, "plp", -1)
		t0 := time.Now()
		var ps *plp.Scratch
		if s != nil {
			ps = &s.plp
		}
		sweeps := opt.PLPMaxSweeps
		if sweeps == 0 && opt.Engine == EngineEnsemble {
			sweeps = DefaultEnsembleSweeps
		}
		pres := plp.PropagateWith(ec, g, plp.Options{MaxSweeps: sweeps, Threshold: opt.PLPThreshold}, ps)
		plpTime := time.Since(t0)
		pSpan.EndArgs("sweeps", int64(pres.Sweeps), "vertices", n)
		// The entry partition (identity) for the stats row: its coverage is
		// the input's self-loop fraction and its modularity needs the input
		// degrees.
		var deg0 []int64
		if s != nil {
			deg0 = g.WeightedDegreesInto(p, s.deg)
			s.deg = deg0
		} else {
			deg0 = g.WeightedDegrees(p)
		}
		cov0 := coverage(ec, g, totW)
		mod0 := modularityOf(ec, g, deg0, totW)
		if opt.Ledger.Enabled() {
			// One row per sweep: the active-vertex drain curve, sweep by
			// sweep. Sweep rows carry no metric (evaluating modularity per
			// sweep would cost another full pass each); the coarsen row
			// below anchors the metric trajectory instead.
			for i := 0; i < pres.Sweeps; i++ {
				opt.Ledger.Record(obs.LevelStats{
					Stage:       obs.StagePLP,
					Level:       i,
					Vertices:    n,
					Edges:       g.NumEdges(),
					OutVertices: n,
					OutEdges:    g.NumEdges(),
					Active:      pres.Active[i],
					Changed:     pres.Changed[i],
				})
			}
		}

		rec.SetKernel("contract")
		cSpan := rec.Begin(obs.CatKernel, "contract", -1)
		t1 := time.Now()
		layout := contract.Contiguous
		if opt.Contraction == ContractBucketNonContiguous {
			layout = contract.NonContiguous
		}
		var cs *contract.Scratch
		var dst *graph.Graph
		var mapBuf []int64
		if s != nil {
			cs = &s.contract
			// Buffer 0: the matching loop ping-pongs on phase&1 and starts
			// at phase 1 for the ensemble, so its first contraction reads
			// this graph out of buffer 0 while writing buffer 1.
			dst = s.graphBuf(0)
			if opt.DiscardLevels {
				mapBuf = s.mapping
			}
		}
		ng, mapping, k := contract.ByLabelsWith(ec, g, pres.Labels, layout, cs, dst, mapBuf)
		if s != nil && opt.DiscardLevels {
			s.mapping = mapping
		}
		contractTime := time.Since(t1)
		rec.ObserveLatency(obs.LatContract, contractTime.Nanoseconds())
		cSpan.EndArgs("vertices", k, "edges", ng.NumEdges())
		if opt.Validate {
			if err := ng.Validate(); err != nil {
				return nil, fmt.Errorf("core: prelabel contraction: %w", err)
			}
			if ng.TotalWeight(p) != totW {
				return nil, fmt.Errorf("core: prelabel contraction changed total weight %d -> %d",
					totW, ng.TotalWeight(p))
			}
		}
		// comm is still the identity here, so composition is a copy of the
		// mapping; the general form keeps the parallel path uniform.
		if ec.Serial(int(n)) {
			for i := range comm {
				comm[i] = mapping[comm[i]]
			}
		} else {
			ec.For(int(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					comm[i] = mapping[comm[i]]
				}
			})
		}
		sizes, sizesIdx = rollupSizes(ec, s, sizes, sizesIdx, mapping, int(k))
		res.Stats = append(res.Stats, PhaseStats{
			Phase:        0,
			Vertices:     n,
			Edges:        g.NumEdges(),
			Coverage:     cov0,
			Modularity:   mod0,
			MatchedPairs: n - k, // merged vertices: PLP merges groups, not pairs
			MatchPasses:  pres.Sweeps,
			MatchTime:    plpTime,
			ContractTime: contractTime,
			MaxBucketLen: g.MaxBucketLen(),
		})
		if opt.Ledger.Enabled() {
			opt.Ledger.Record(obs.LevelStats{
				Stage:       obs.StageCoarsen,
				Level:       0,
				Vertices:    n,
				Edges:       g.NumEdges(),
				OutVertices: k,
				OutEdges:    ng.NumEdges(),
				Metric:      mod0,
				Coverage:    cov0,
				MatchPasses: pres.Sweeps,
				// The PLP active curve is the stage's drain; copy — it
				// aliases scratch.
				Drain:        append([]int64(nil), pres.Active...),
				SizeHist:     obs.SizeHistogram(sizes),
				MaxBucketLen: g.MaxBucketLen(),
			})
		}
		if !opt.DiscardLevels {
			// mapping is freshly allocated whenever levels are kept (mapBuf
			// stayed nil), so the Result never aliases arena memory.
			res.Levels = append(res.Levels, mapping)
		}
		cg = ng
		if opt.Engine == EnginePLP {
			return finish(TermPLPConverged, nil, cg, sizes)
		}
		phaseStart = 1
	}

	// Seed stage (incremental re-detection, mutually exclusive with the
	// engine stage above): contract the input by the seed partition — the
	// previous run's communities with the batch-dirty ones dissolved to
	// singletons — so the matching loop re-agglomerates only the dissolved
	// region against the frozen remainder. The stage consumes phase 0; the
	// loop continues from phase 1 so the ping-pong buffer parity works out.
	if seed != nil {
		if err := ec.Err(); err != nil {
			res, _ := finish(TermCanceled, nil, cg, sizes)
			return res, fmt.Errorf("core: canceled before seed contraction: %w", err)
		}
		rec.SetKernel("contract")
		cSpan := rec.Begin(obs.CatKernel, "contract", -1)
		t0 := time.Now()
		layout := contract.Contiguous
		if opt.Contraction == ContractBucketNonContiguous {
			layout = contract.NonContiguous
		}
		var cs *contract.Scratch
		var dst *graph.Graph
		if s != nil {
			cs = &s.contract
			// Buffer 0: the loop starts at phase 1 and its first contraction
			// writes s.graphBuf(1), so reading buffer 0 is safe.
			dst = s.graphBuf(0)
		}
		ng := contract.ByMappingWith(ec, g, seed.comm, seed.k, layout, cs, dst)
		contractTime := time.Since(t0)
		rec.ObserveLatency(obs.LatContract, contractTime.Nanoseconds())
		cSpan.EndArgs("vertices", seed.k, "edges", ng.NumEdges())
		if opt.Validate {
			if err := ng.Validate(); err != nil {
				return nil, fmt.Errorf("core: seed contraction: %w", err)
			}
			if ng.TotalWeight(p) != totW {
				return nil, fmt.Errorf("core: seed contraction changed total weight %d -> %d",
					totW, ng.TotalWeight(p))
			}
		}
		sizes, sizesIdx = rollupSizes(ec, s, sizes, sizesIdx, seed.comm, int(seed.k))
		// The seed partition's quality, evaluated on its community graph,
		// anchors the metric trajectory of the incremental levels.
		var deg0 []int64
		if s != nil {
			deg0 = ng.WeightedDegreesInto(p, s.deg)
			s.deg = deg0
		} else {
			deg0 = ng.WeightedDegrees(p)
		}
		cov0 := coverage(ec, ng, totW)
		mod0 := modularityOf(ec, ng, deg0, totW)
		maxBucket := g.MaxBucketLen()
		res.Stats = append(res.Stats, PhaseStats{
			Phase:        0,
			Vertices:     n,
			Edges:        g.NumEdges(),
			Coverage:     cov0,
			Modularity:   mod0,
			MatchedPairs: n - seed.k, // merged vertices: the kept communities
			ContractTime: contractTime,
			MaxBucketLen: maxBucket,
		})
		if opt.Ledger.Enabled() {
			opt.Ledger.Record(obs.LevelStats{
				Stage:           obs.StageIncremental,
				Level:           0,
				Vertices:        n,
				Edges:           g.NumEdges(),
				OutVertices:     seed.k,
				OutEdges:        ng.NumEdges(),
				Metric:          mod0,
				Coverage:        cov0,
				SizeHist:        obs.SizeHistogram(sizes),
				MaxBucketLen:    maxBucket,
				Dissolved:       seed.dissolved,
				PrevCommunities: seed.prevK,
			})
		}
		if !opt.DiscardLevels {
			// A copy: seed.comm aliases the caller's (or the arena's) buffer.
			res.Levels = append(res.Levels, append([]int64(nil), seed.comm...))
		}
		cg = ng
		phaseStart = 1
	}

	for phase := phaseStart; ; phase++ {
		if err := ec.Err(); err != nil {
			res, _ := finish(TermCanceled, nil, cg, sizes)
			return res, fmt.Errorf("core: canceled at phase %d: %w", phase, err)
		}
		if opt.MaxPhases > 0 && phase >= opt.MaxPhases {
			return finish(TermMaxPhases, nil, cg, sizes)
		}
		cov := coverage(ec, cg, totW)
		if opt.MinCoverage > 0 && cov >= opt.MinCoverage {
			return finish(TermCoverage, nil, cg, sizes)
		}

		phSpan := rec.BeginPhase(phase, cg.NumVertices(), cg.NumEdges())
		levelStart := time.Now()

		// Primitive 0: the level schedule. One prefix sum over the bucket
		// lengths yields the edge-balanced partition that every kernel sweep
		// over cg adopts through Balanced; kernels keep their dynamic (or
		// locally built) fallbacks for serial runs, immutable contexts, and
		// SchedDynamic, where no partition is installed.
		nv := int(cg.NumVertices())
		schedBuilt := false
		if !ec.Serial(nv) && !ec.DynamicOnly() {
			if ec.SetPartition(levelPart); ec.Partition() == levelPart {
				ssp := rec.Begin(obs.CatKernel, "schedule", -1)
				ec.BuildBuckets(levelPart, nv, cg.Start, cg.End)
				ssp.EndArgs("workers", int64(levelPart.Workers()), "vertices", int64(nv))
				schedBuilt = true
			}
		} else {
			ec.SetPartition(nil)
		}

		// Primitive 1: score. Builtin metrics implement scoring.Fused, which
		// folds the score fill, the MaxCommunitySize mask, and the
		// positive-edge termination scan into a single sweep over the edge
		// array; plain Scorers take the three separate passes.
		rec.SetKernel("score")
		scSpan := rec.Begin(obs.CatKernel, "score", -1)
		t0 := time.Now()
		var deg []int64
		if s != nil {
			deg = cg.WeightedDegreesInto(p, s.deg)
			s.deg = deg
		} else {
			deg = cg.WeightedDegrees(p)
		}
		var scores []float64
		if s != nil {
			s.scores = buf.Grow(s.scores, len(cg.U))
			scores = s.scores[:len(cg.U)]
		} else {
			scores = make([]float64, len(cg.U))
		}
		var positive bool
		if fused, ok := scorer.(scoring.Fused); ok {
			positive = fused.ScoreFused(ec, cg, deg, totW, scores, sizes, opt.MaxCommunitySize,
				rec.HotCounter(obs.CtrScoreMasked))
		} else {
			scorer.Score(ec, cg, deg, totW, scores)
			if maxSize := opt.MaxCommunitySize; maxSize > 0 {
				// Mask merges that would exceed the size cap; a local maximum
				// then means "no allowed merge improves the metric". mcg and
				// msizes are single-assignment aliases of the per-phase
				// variables so the closure capture doesn't heap-box them.
				mcg, msizes := cg, sizes
				ec.ForDynamic(int(mcg.NumVertices()), 0, func(lo, hi int) {
					for x := lo; x < hi; x++ {
						for e := mcg.Start[x]; e < mcg.End[x]; e++ {
							if msizes[mcg.U[e]]+msizes[mcg.V[e]] > maxSize {
								scores[e] = -1
							}
						}
					}
				})
			}
			positive = scoring.HasPositive(ec, cg, scores)
		}
		scoreTime := time.Since(t0)
		rec.ObserveLatency(obs.LatScore, scoreTime.Nanoseconds())
		rec.FoldHot()
		scSpan.EndArgs("edges", cg.NumEdges(), "positive", boolInt64(positive))
		if !positive {
			phSpan.End()
			return finish(TermLocalMax, deg, cg, sizes)
		}
		if err := ec.Err(); err != nil {
			phSpan.End()
			res, _ := finish(TermCanceled, deg, cg, sizes)
			return res, fmt.Errorf("core: canceled at phase %d after scoring: %w", phase, err)
		}
		// The ledger's eligible-edge population. Counted only when the
		// ledger is on (an extra sweep over the score array), after the
		// size-cap mask, so it is exactly what the matching sees.
		var posEdges int64
		if opt.Ledger.Enabled() {
			posEdges = countPositive(ec, cg, scores)
		}

		// Primitive 2: greedy heavy maximal matching.
		rec.SetKernel("match")
		mSpan := rec.Begin(obs.CatKernel, "match", -1)
		t1 := time.Now()
		var ms *matching.Scratch
		if s != nil {
			ms = &s.match
		}
		mres := matchFn(ec, cg, scores, ms)
		matchTime := time.Since(t1)
		rec.ObserveLatency(obs.LatMatch, matchTime.Nanoseconds())
		mSpan.EndArgs("pairs", mres.Pairs, "passes", int64(mres.Passes))
		if opt.Validate {
			if err := matching.Verify(cg, scores, mres.Match); err != nil {
				return nil, fmt.Errorf("core: phase %d: %w", phase, err)
			}
		}
		if mres.Pairs == 0 {
			// Unreachable for a maximal matching over positive edges, but a
			// contraction that merges nothing would loop forever.
			phSpan.End()
			return finish(TermLocalMax, deg, cg, sizes)
		}
		if opt.MinCommunities > 0 && cg.NumVertices()-mres.Pairs < opt.MinCommunities {
			phSpan.End()
			return finish(TermMinCommunities, deg, cg, sizes)
		}
		if err := ec.Err(); err != nil {
			phSpan.End()
			res, _ := finish(TermCanceled, deg, cg, sizes)
			return res, fmt.Errorf("core: canceled at phase %d after matching: %w", phase, err)
		}

		// Primitive 3: contraction, into the arena's ping-pong destination
		// graph (phase i reads buffer i%2's predecessor and writes i%2).
		rec.SetKernel("contract")
		cSpan := rec.Begin(obs.CatKernel, "contract", -1)
		t2 := time.Now()
		var cs *contract.Scratch
		var dst *graph.Graph
		var mapBuf []int64
		if s != nil {
			cs = &s.contract
			dst = s.graphBuf(phase)
			if opt.DiscardLevels {
				mapBuf = s.mapping
			}
		}
		ng, mapping := contractFn(ec, cg, mres.Match, cs, dst, mapBuf)
		if s != nil && opt.DiscardLevels {
			s.mapping = mapping
		}
		contractTime := time.Since(t2)
		rec.ObserveLatency(obs.LatContract, contractTime.Nanoseconds())
		cSpan.EndArgs("vertices", ng.NumVertices(), "edges", ng.NumEdges())
		if opt.Validate {
			if err := ng.Validate(); err != nil {
				return nil, fmt.Errorf("core: phase %d: %w", phase, err)
			}
			if ng.TotalWeight(p) != totW {
				return nil, fmt.Errorf("core: phase %d: contraction changed total weight %d -> %d",
					phase, totW, ng.TotalWeight(p))
			}
		}
		if ec.Serial(int(n)) {
			for i := range comm {
				comm[i] = mapping[comm[i]]
			}
		} else {
			ec.For(int(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					comm[i] = mapping[comm[i]]
				}
			})
		}
		// Track community sizes through the contraction (§III's
		// "straight-forward" extension).
		kNew := int(ng.NumVertices())
		sizes, sizesIdx = rollupSizes(ec, s, sizes, sizesIdx, mapping, kNew)

		mod := modularityOf(ec, cg, deg, totW)
		maxBucket := cg.MaxBucketLen()
		res.Stats = append(res.Stats, PhaseStats{
			Phase:        phase,
			Vertices:     cg.NumVertices(),
			Edges:        cg.NumEdges(),
			Coverage:     cov,
			Modularity:   mod,
			MatchedPairs: mres.Pairs,
			MatchPasses:  mres.Passes,
			MatchWeight:  mres.Weight,
			ScoreTime:    scoreTime,
			MatchTime:    matchTime,
			ContractTime: contractTime,
			MaxBucketLen: maxBucket,
		})
		if opt.Ledger.Enabled() {
			st := obs.LevelStats{
				Stage:         obs.StageMatch,
				Level:         phase,
				Vertices:      cg.NumVertices(),
				Edges:         cg.NumEdges(),
				PositiveEdges: posEdges,
				MatchedPairs:  mres.Pairs,
				OutVertices:   ng.NumVertices(),
				OutEdges:      ng.NumEdges(),
				Metric:        mod,
				Coverage:      cov,
				MatchPasses:   mres.Passes,
				// Drain aliases matching scratch; the ledger row outlives
				// the phase, so copy.
				Drain:        append([]int64(nil), mres.Drain...),
				SizeHist:     obs.SizeHistogram(sizes),
				MaxBucketLen: maxBucket,
			}
			if schedBuilt {
				st.SchedImbalance = levelPart.AlignedImbalance()
				if work := cg.NumEdges() + cg.NumVertices(); work > 0 {
					st.SchedBound = 1
					if lb := float64(maxBucket+1) * float64(levelPart.Workers()) / float64(work); lb > 1 {
						st.SchedBound = lb
					}
				}
			}
			opt.Ledger.Record(st)
		}
		if !opt.DiscardLevels {
			// mapping is freshly allocated whenever levels are kept, so the
			// Result never aliases arena memory.
			res.Levels = append(res.Levels, mapping)
		}
		cg = ng

		if opt.RefineEveryPhase {
			// Future-work integration (§II): let individual vertices migrate
			// between the freshly merged communities on the original graph,
			// then rebuild the community graph from the refined partition.
			rec.SetKernel("refine")
			rSpan := rec.Begin(obs.CatKernel, "refine", -1)
			rres, err := refine.RefineExec(ec, g, comm, cg.NumVertices(), refine.Options{})
			if err != nil {
				rSpan.End()
				phSpan.End()
				return nil, fmt.Errorf("core: phase %d refinement: %w", phase, err)
			}
			if rres.Moves > 0 && rres.ModularityAfter > rres.ModularityBefore {
				copy(comm, rres.CommunityOf)
				cg = contract.ByMapping(ec, g, comm, rres.NumCommunities, contract.Contiguous)
				newSizes := make([]int64, rres.NumCommunities)
				for _, c := range comm {
					newSizes[c]++
				}
				sizes = newSizes
				if opt.Validate {
					if err := cg.Validate(); err != nil {
						rSpan.End()
						phSpan.End()
						return nil, fmt.Errorf("core: phase %d refined graph: %w", phase, err)
					}
				}
			}
			rSpan.EndArgs("moves", rres.Moves, "communities", cg.NumVertices())
		}
		rec.ObserveLatency(obs.LatLevel, time.Since(levelStart).Nanoseconds())
		phSpan.End()
	}
}

// rollupSizes folds the per-community vertex counts through a contraction
// mapping into k new counts. With an arena the roll-up ping-pongs between
// the scratch's double-buffered size arrays and uses the same
// per-worker-stripe pattern as the contraction kernel — each worker
// accumulates into its own k-wide partial, merged by a parallel reduction —
// instead of one atomic add per old community, which serialized on heavily
// merged regions. It returns the new sizes slice and double-buffer index.
func rollupSizes(ec *exec.Ctx, s *Scratch, sizes []int64, sizesIdx int, mapping []int64, kNew int) ([]int64, int) {
	if s != nil && ec.Serial(len(sizes)) {
		other := sizesIdx ^ 1
		s.sizes[other] = buf.Grow(s.sizes[other], kNew)
		newSizes := s.sizes[other][:kNew]
		clear(newSizes)
		for c := range sizes {
			if sizes[c] != 0 {
				newSizes[mapping[c]] += sizes[c]
			}
		}
		return newSizes, other
	}
	if s != nil {
		workers := ec.Workers(len(sizes))
		s.sizeStripes = buf.Grow(s.sizeStripes, workers*kNew)
		stripes := s.sizeStripes
		ec.ZeroInt64(stripes[:workers*kNew])
		oldSizes := sizes // single-assignment alias for closure capture
		ec.ForWorker(len(oldSizes), func(w, lo, hi int) {
			base := w * kNew
			for c := lo; c < hi; c++ {
				if oldSizes[c] != 0 {
					stripes[base+int(mapping[c])] += oldSizes[c]
				}
			}
		})
		other := sizesIdx ^ 1
		s.sizes[other] = buf.Grow(s.sizes[other], kNew)
		newSizes := s.sizes[other][:kNew]
		ec.MergeStripes(stripes, workers, kNew, newSizes)
		return newSizes, other
	}
	newSizes := make([]int64, kNew)
	oldSizes := sizes
	ec.For(len(oldSizes), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if oldSizes[c] != 0 {
				atomic.AddInt64(&newSizes[mapping[c]], oldSizes[c])
			}
		}
	})
	return newSizes, sizesIdx
}

// boolInt64 converts a flag to a span argument value.
func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func matchFunc(k MatchKernel) (func(*exec.Ctx, *graph.Graph, []float64, *matching.Scratch) matching.Result, error) {
	switch k {
	case MatchWorklist:
		return matching.WorklistWith, nil
	case MatchEdgeSweep:
		return matching.EdgeSweepWith, nil
	}
	return nil, fmt.Errorf("core: unknown matching kernel %d", int(k))
}

func contractFunc(k ContractKernel) (func(ec *exec.Ctx, g *graph.Graph, m []int64, s *contract.Scratch, dst *graph.Graph, mapBuf []int64) (*graph.Graph, []int64), error) {
	switch k {
	case ContractBucket:
		return func(ec *exec.Ctx, g *graph.Graph, m []int64, s *contract.Scratch, dst *graph.Graph, mapBuf []int64) (*graph.Graph, []int64) {
			return contract.BucketWith(ec, g, m, contract.Contiguous, s, dst, mapBuf)
		}, nil
	case ContractBucketNonContiguous:
		return func(ec *exec.Ctx, g *graph.Graph, m []int64, s *contract.Scratch, dst *graph.Graph, mapBuf []int64) (*graph.Graph, []int64) {
			return contract.BucketWith(ec, g, m, contract.NonContiguous, s, dst, mapBuf)
		}, nil
	case ContractListChase:
		// The 2011 ablation baseline allocates fresh state by design; its
		// hash-chain storage has no reusable shape (and gets no sub-span
		// instrumentation — it exists to be timed as a whole).
		return func(ec *exec.Ctx, g *graph.Graph, m []int64, _ *contract.Scratch, _ *graph.Graph, _ []int64) (*graph.Graph, []int64) {
			return contract.ListChase(ec, g, m)
		}, nil
	}
	return nil, fmt.Errorf("core: unknown contraction kernel %d", int(k))
}

// coverage is the fraction of total input edge weight lying inside
// communities: Σ Self / m (§III; the DIMACS-style termination measure).
func coverage(ec *exec.Ctx, cg *graph.Graph, totW int64) float64 {
	if totW <= 0 {
		return 0
	}
	return float64(ec.SumInt64(cg.Self)) / float64(totW)
}

// modularityOf evaluates Newman–Girvan modularity of the partition the
// community graph represents: Q = Σ_c [ self_c/m − (deg_c/(2m))² ].
func modularityOf(ec *exec.Ctx, cg *graph.Graph, deg []int64, totW int64) float64 {
	if totW <= 0 {
		return 0
	}
	m := float64(totW)
	n := int(cg.NumVertices())
	if ec.Serial(n) {
		// Serial path keeps the per-phase stats computation off the heap.
		var q float64
		for c := 0; c < n; c++ {
			d := float64(deg[c]) / (2 * m)
			q += float64(cg.Self[c])/m - d*d
		}
		return q
	}
	partial := make([]float64, ec.Threads())
	used := ec.ForWorker(n, func(w, lo, hi int) {
		var q float64
		for c := lo; c < hi; c++ {
			d := float64(deg[c]) / (2 * m)
			q += float64(cg.Self[c])/m - d*d
		}
		partial[w] = q
	})
	var q float64
	for _, x := range partial[:used] {
		q += x
	}
	return q
}

// countPositive counts edges with a positive merge score — the matching's
// eligible population for the convergence ledger. It runs only when the
// ledger is enabled, after the size-cap mask has already forced capped edges
// negative, so the count is exactly what the matching sees. The sweep walks
// the buckets, not the raw score array: the slack holes between buckets hold
// stale scores from earlier phases (the scratch buffer is reused), which the
// kernels never read.
func countPositive(ec *exec.Ctx, g *graph.Graph, scores []float64) int64 {
	n := int(g.NumVertices())
	start, end := g.Start, g.End
	if ec.Serial(n) {
		var c int64
		for x := 0; x < n; x++ {
			for e := start[x]; e < end[x]; e++ {
				if scores[e] > 0 {
					c++
				}
			}
		}
		return c
	}
	partial := make([]int64, ec.Threads())
	used := ec.ForWorker(n, func(w, lo, hi int) {
		var c int64
		for x := lo; x < hi; x++ {
			for e := start[x]; e < end[x]; e++ {
				if scores[e] > 0 {
					c++
				}
			}
		}
		partial[w] = c
	})
	var c int64
	for _, x := range partial[:used] {
		c += x
	}
	return c
}

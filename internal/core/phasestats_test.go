package core

import (
	"testing"

	"repro/internal/gen"
)

// detectWithStats runs detection to a local maximum on a mid-sized synthetic
// graph and returns the result for invariant checks.
func detectWithStats(t *testing.T, opt Options) *Result {
	t.Helper()
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(1200, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) == 0 {
		t.Fatal("detection recorded no phases")
	}
	return res
}

// TestPhaseStatsShrinkAndCoverage pins the PhaseStats invariants the
// agglomerative loop guarantees: every contraction phase strictly shrinks
// the vertex count (each phase merges at least one pair), phase indices are
// dense, and coverage — the fraction Σ self / m of input weight inside
// communities — stays in [0, 1] and never decreases under contraction
// (merging communities only moves cross weight inside; coverage is monotone
// non-decreasing, and bounded by 1).
func TestPhaseStatsShrinkAndCoverage(t *testing.T) {
	for _, threads := range []int{1, 4} {
		res := detectWithStats(t, Options{Threads: threads})
		prevVerts := int64(-1)
		prevCov := -1.0
		for i, st := range res.Stats {
			if st.Phase != i {
				t.Fatalf("threads=%d: phase %d recorded index %d", threads, i, st.Phase)
			}
			if st.Vertices <= 0 || st.Edges < 0 {
				t.Fatalf("threads=%d phase %d: bad sizes %+v", threads, i, st)
			}
			if prevVerts >= 0 && st.Vertices >= prevVerts {
				t.Fatalf("threads=%d phase %d: vertices %d did not shrink from %d",
					threads, i, st.Vertices, prevVerts)
			}
			prevVerts = st.Vertices
			if st.Coverage < 0 || st.Coverage > 1 {
				t.Fatalf("threads=%d phase %d: coverage %v outside [0,1]", threads, i, st.Coverage)
			}
			if st.Coverage < prevCov {
				t.Fatalf("threads=%d phase %d: coverage %v decreased from %v",
					threads, i, st.Coverage, prevCov)
			}
			prevCov = st.Coverage
			if st.MatchedPairs <= 0 {
				t.Fatalf("threads=%d phase %d: no matched pairs in an executed phase", threads, i)
			}
			if st.MatchedPairs*2 > st.Vertices {
				t.Fatalf("threads=%d phase %d: %d pairs among %d vertices",
					threads, i, st.MatchedPairs, st.Vertices)
			}
			if st.ScoreTime < 0 || st.MatchTime < 0 || st.ContractTime < 0 {
				t.Fatalf("threads=%d phase %d: negative kernel time %+v", threads, i, st)
			}
		}
		if res.FinalCoverage < prevCov {
			t.Fatalf("threads=%d: final coverage %v below last phase's %v",
				threads, res.FinalCoverage, prevCov)
		}
	}
}

// TestPhaseStatsMatchLevels: with DiscardLevels off, one old→new map is kept
// per executed phase, each shrinking as the stats say.
func TestPhaseStatsMatchLevels(t *testing.T) {
	res := detectWithStats(t, Options{Threads: 2})
	if len(res.Levels) != len(res.Stats) {
		t.Fatalf("%d levels for %d phases", len(res.Levels), len(res.Stats))
	}
	for i, lvl := range res.Levels {
		if int64(len(lvl)) != res.Stats[i].Vertices {
			t.Fatalf("phase %d: level maps %d vertices, stats say %d",
				i, len(lvl), res.Stats[i].Vertices)
		}
	}
	// And with DiscardLevels on, stats survive but levels are dropped.
	res2 := detectWithStats(t, Options{Threads: 2, DiscardLevels: true})
	if len(res2.Levels) != 0 {
		t.Fatalf("DiscardLevels kept %d levels", len(res2.Levels))
	}
	if len(res2.Stats) == 0 {
		t.Fatal("DiscardLevels dropped the stats too")
	}
}

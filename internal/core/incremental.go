// Incremental re-detection on the two-tier dynamic graph store. A delta
// batch touches a bounded neighborhood; Lu & Halappanavar's vertex-local
// heuristics justify re-optimizing only that neighborhood, so instead of
// re-running the whole agglomeration the engine dissolves exactly the
// previous communities incident to the batch back to singleton vertices,
// keeps every other community frozen, and re-agglomerates the dissolved
// region against the frozen remainder through the ordinary matching and
// contraction kernels.

package core

import (
	"context"
	"fmt"

	"repro/internal/buf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/hierarchy"
)

// seedPartition is the engine-internal seed of one incremental run: a dense
// vertex→community assignment with k communities, plus the dissolution
// counters the convergence ledger reports.
type seedPartition struct {
	comm      []int64
	k         int64
	dissolved int64 // previous communities dissolved to singletons
	prevK     int64 // communities in the previous partition
}

// IncrementalResult is one incremental re-detection's output: the ordinary
// detection Result plus the chaining state for the next batch.
type IncrementalResult struct {
	*Result
	// Dendrogram is the merge hierarchy of this run, ready to seed the next
	// DetectIncremental call. When the engine ran with DiscardLevels (or
	// RefineEveryPhase moved vertices across the recorded levels) it is a
	// one-level bootstrap carrying only the final partition.
	Dendrogram *hierarchy.Dendrogram
	// Graph is the compacted frozen base the detection ran on. It is
	// overlay-owned: valid until the second following Compact (Clone to
	// keep it longer).
	Graph *graph.Graph
	// DirtyCommunities counts previous communities incident to the batch
	// (dissolved); DissolvedVertices the singletons they released;
	// PrevCommunities the previous partition's community count.
	DirtyCommunities  int64
	DissolvedVertices int64
	PrevCommunities   int64
}

// DetectIncremental applies batch to the overlay, compacts it, and
// re-detects communities starting from prev's final partition with the
// batch-incident communities dissolved. The options follow Detect; the
// incremental path requires EngineMatching (the PLP engines re-label
// globally, which defeats the frozen remainder).
func DetectIncremental(ov *graph.Overlay, prev *hierarchy.Dendrogram, batch *graph.Delta, opt Options) (*IncrementalResult, error) {
	var s *Scratch
	if !opt.NoScratch {
		s = NewScratch()
	}
	return DetectIncrementalWithContext(context.Background(), ov, prev, batch, opt, s)
}

// DetectIncrementalWith is DetectIncremental running out of the reusable
// arena s: a serving loop feeding batch after batch through one Scratch
// keeps the steady state off the heap (the arena carries the dirty flags,
// the seed partition, and every engine buffer across runs).
func DetectIncrementalWith(ov *graph.Overlay, prev *hierarchy.Dendrogram, batch *graph.Delta, opt Options, s *Scratch) (*IncrementalResult, error) {
	return DetectIncrementalWithContext(context.Background(), ov, prev, batch, opt, s)
}

// DetectIncrementalWithContext is DetectIncrementalWith under a
// cancellation context. The batch is applied and compacted before the first
// cancellation check, so a cancelled run leaves the overlay consistent
// (batch absorbed) and returns the engine's partial result.
func DetectIncrementalWithContext(ctx context.Context, ov *graph.Overlay, prev *hierarchy.Dendrogram, batch *graph.Delta, opt Options, s *Scratch) (*IncrementalResult, error) {
	if ov == nil {
		return nil, fmt.Errorf("core: nil overlay")
	}
	if prev == nil {
		return nil, fmt.Errorf("core: nil previous dendrogram")
	}
	if batch == nil {
		return nil, fmt.Errorf("core: nil delta batch")
	}
	if opt.Engine != EngineMatching {
		return nil, fmt.Errorf("core: incremental re-detection requires the matching engine, got %s", opt.Engine)
	}
	if prev.NumVertices() != ov.NumVertices() {
		return nil, fmt.Errorf("core: dendrogram over %d vertices, overlay has %d",
			prev.NumVertices(), ov.NumVertices())
	}
	if err := ov.ApplyDelta(batch); err != nil {
		return nil, err
	}
	// The kernels consume the frozen triple representation, so the overlay
	// is folded unconditionally: one builder pass here, against many
	// per-phase passes saved below.
	g, err := ov.Compact()
	if err != nil {
		return nil, err
	}
	if err := validateOptions(g, opt); err != nil {
		return nil, err
	}
	if opt.NoScratch {
		s = nil
	}

	n := g.NumVertices()
	prevComm, prevK := prev.Final()

	var dirty []bool
	var remap, seedComm []int64
	if s != nil {
		s.dirty = buf.Grow(s.dirty, int(prevK))
		s.remap = buf.Grow(s.remap, int(prevK))
		s.seedComm = buf.Grow(s.seedComm, int(n))
		dirty, remap, seedComm = s.dirty, s.remap, s.seedComm
	} else {
		dirty = make([]bool, prevK)
		remap = make([]int64, prevK)
		seedComm = make([]int64, n)
	}
	clear(dirty)

	// Mark the communities incident to the batch dirty. Endpoints were
	// validated by ApplyDelta above.
	for _, up := range batch.Updates {
		dirty[prevComm[up.U]] = true
		dirty[prevComm[up.V]] = true
	}
	// Clean communities keep their relative order under dense new ids;
	// dissolved members become singletons numbered after them.
	var k0, dirtyCount int64
	for c := int64(0); c < prevK; c++ {
		if dirty[c] {
			remap[c] = -1
			dirtyCount++
		} else {
			remap[c] = k0
			k0++
		}
	}
	clean := k0
	for v := int64(0); v < n; v++ {
		if r := remap[prevComm[v]]; r >= 0 {
			seedComm[v] = r
		} else {
			seedComm[v] = k0
			k0++
		}
	}
	seed := &seedPartition{comm: seedComm, k: k0, dissolved: dirtyCount, prevK: prevK}

	ec := exec.Acquire(ctx, opt.Threads, opt.Recorder)
	defer ec.Release()
	res, derr := detect(ec, g, opt, s, seed)
	if res == nil {
		return nil, derr
	}
	ir := &IncrementalResult{
		Result:            res,
		Graph:             g,
		DirtyCommunities:  dirtyCount,
		DissolvedVertices: k0 - clean,
		PrevCommunities:   prevK,
	}
	if derr != nil {
		// Canceled mid-run: hand back the partial result without a
		// dendrogram (the partial levels need not compose).
		return ir, derr
	}
	if len(res.Levels) > 0 && !opt.RefineEveryPhase {
		ir.Dendrogram, err = hierarchy.NewExec(ec, n, res.Levels)
	} else {
		// DiscardLevels (or refinement moved vertices across the recorded
		// maps): bootstrap a one-level dendrogram so chaining still works.
		ir.Dendrogram, err = hierarchy.FromFinal(n, res.CommunityOf, res.NumCommunities)
	}
	if err != nil {
		return ir, fmt.Errorf("core: incremental dendrogram: %w", err)
	}
	return ir, nil
}

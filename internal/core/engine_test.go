package core

import (
	"hash/fnv"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/seq"
)

// engineTolerance is the documented modularity tolerance between the
// PLP-family engines and the matching-agglomeration oracles (internal/seq and
// EngineMatching, which run the same algorithm): an engine run is accepted
// when its modularity is within 0.05 of the oracle's. Against the
// Louvain/CNM baselines the same tolerance applies only on graphs where the
// matching family itself tracks them (the clique chain, karate); on the
// LJ-similar generator PLP actually lands closer to Louvain than the matching
// engine does, so the PLP-vs-Louvain bound is asserted there too.
//
// Documented exceptions, measured and intentional:
//   - Karate (n=34): label propagation floods the tiny dense graph into two
//     giant labels before the bounded prelabel can stop it (Q≈0.26 vs
//     matching's 0.38). The PLP-family engines are built for graphs orders of
//     magnitude larger; the gate on karate only requires a sane partition.
//   - R-MAT at the PLP *fixpoint*: weak community structure lets the flood
//     run to Q≈0, which is exactly why EngineEnsemble bounds the prelabel at
//     DefaultEnsembleSweeps (the bounded ensemble beats EngineMatching on the
//     same graph; see TestEngineQualityRMAT).
const engineTolerance = 0.05

var allEngines = []Engine{EngineMatching, EnginePLP, EngineEnsemble}

func detectEngine(t *testing.T, g *graph.Graph, e Engine, threads int) *Result {
	t.Helper()
	res, err := Detect(g, Options{Threads: threads, Engine: e, Validate: true})
	if err != nil {
		t.Fatalf("engine %s: %v", e, err)
	}
	validatePartition(t, res.CommunityOf, res.NumCommunities)
	return res
}

func TestEngineQualityCliqueChain(t *testing.T) {
	// On the canonical unambiguous-communities graph PLP finds the exact
	// clique partition, which is also the Louvain/CNM optimum — strictly
	// better than the matching engine's greedy result.
	g := gen.CliqueChain(8, 6)
	lou := baseline.Louvain(g, 1)
	cnm := baseline.CNM(g)
	sq := seq.Detect(g, seq.Options{})
	match := detectEngine(t, g, EngineMatching, 4)
	for _, e := range []Engine{EnginePLP, EngineEnsemble} {
		res := detectEngine(t, g, e, 4)
		if res.NumCommunities != 8 {
			t.Errorf("%s: %d communities for 8 cliques", e, res.NumCommunities)
		}
		for _, oracle := range []struct {
			name string
			q    float64
		}{{"louvain", lou.Modularity}, {"cnm", cnm.Modularity}, {"seq", sq.Modularity},
			{"matching", match.FinalModularity}} {
			if res.FinalModularity < oracle.q-engineTolerance {
				t.Errorf("%s modularity %.4f below %s oracle %.4f - %.2f",
					e, res.FinalModularity, oracle.name, oracle.q, engineTolerance)
			}
		}
	}
}

func TestEngineQualityLJSim(t *testing.T) {
	// The LJ-similar generator is the social-graph case the coarsening is
	// for. Ensemble must stay within tolerance of the matching family; pure
	// PLP lands near Louvain here (measured Q≈0.69 vs Louvain 0.70 and
	// matching 0.52).
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(5000, 42))
	if err != nil {
		t.Fatal(err)
	}
	lou := baseline.Louvain(g, 1)
	sq := seq.Detect(g, seq.Options{})
	match := detectEngine(t, g, EngineMatching, 4)
	ens := detectEngine(t, g, EngineEnsemble, 4)
	plpRes := detectEngine(t, g, EnginePLP, 4)
	if ens.FinalModularity < match.FinalModularity-engineTolerance {
		t.Errorf("ensemble %.4f below matching %.4f - %.2f",
			ens.FinalModularity, match.FinalModularity, engineTolerance)
	}
	if ens.FinalModularity < sq.Modularity-engineTolerance {
		t.Errorf("ensemble %.4f below seq %.4f - %.2f",
			ens.FinalModularity, sq.Modularity, engineTolerance)
	}
	if plpRes.FinalModularity < lou.Modularity-engineTolerance {
		t.Errorf("plp %.4f below louvain %.4f - %.2f",
			plpRes.FinalModularity, lou.Modularity, engineTolerance)
	}
	if plpRes.Termination != TermPLPConverged {
		t.Errorf("plp termination %q, want %q", plpRes.Termination, TermPLPConverged)
	}
}

func TestEngineQualityRMAT(t *testing.T) {
	// The bench graph family. The bounded-prelabel ensemble must hold the
	// matching engine's modularity (it measured above it: 0.224 vs 0.204);
	// this is the quality half of the 1.5x speed gate.
	if testing.Short() {
		t.Skip("R-MAT quality gate skipped in -short")
	}
	g, _, err := gen.ConnectedRMAT(0, gen.DefaultRMAT(14, 12345))
	if err != nil {
		t.Fatal(err)
	}
	match := detectEngine(t, g, EngineMatching, 4)
	ens := detectEngine(t, g, EngineEnsemble, 4)
	if ens.FinalModularity < match.FinalModularity-engineTolerance {
		t.Errorf("ensemble %.4f below matching %.4f - %.2f",
			ens.FinalModularity, match.FinalModularity, engineTolerance)
	}
}

func TestEngineKarateSane(t *testing.T) {
	// Karate is the documented PLP-family exception (see engineTolerance):
	// no parity gate, but the partition must still be valid with positive
	// modularity well above random.
	g := gen.Karate()
	for _, e := range []Engine{EnginePLP, EngineEnsemble} {
		res := detectEngine(t, g, e, 4)
		if res.FinalModularity < 0.2 {
			t.Errorf("%s karate modularity %.4f below sanity floor 0.2", e, res.FinalModularity)
		}
	}
}

// partitionHash is the parity hash of a community assignment: FNV-1a over
// the label stream. Two runs agree iff their hashes and lengths agree (used
// as the cheap cross-run gate; mismatches are re-diffed element-wise by the
// callers below).
func partitionHash(comm []int64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, c := range comm {
		for i := 0; i < 8; i++ {
			b[i] = byte(c >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func TestEngineDeterminismGate(t *testing.T) {
	// Two runs of each engine at the same thread count must produce
	// identical assignments — the PLP sweeps are synchronous two-phase
	// (schedule-independent) and the matching/contraction pipeline is
	// schedule-stable at a fixed partition, so parity hashes must match
	// exactly, arena or not.
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range allEngines {
		for _, threads := range []int{1, 4} {
			var hashes []uint64
			var first *Result
			s := NewScratch()
			for run := 0; run < 2; run++ {
				res, err := DetectWith(g, Options{Threads: threads, Engine: e, Validate: true}, s)
				if err != nil {
					t.Fatalf("%s threads=%d run %d: %v", e, threads, run, err)
				}
				hashes = append(hashes, partitionHash(res.CommunityOf))
				if first == nil {
					first = res
					continue
				}
				if hashes[run] != hashes[0] {
					for v := range first.CommunityOf {
						if res.CommunityOf[v] != first.CommunityOf[v] {
							t.Fatalf("%s threads=%d: run %d assigns vertex %d to %d, run 0 to %d",
								e, threads, run, v, res.CommunityOf[v], first.CommunityOf[v])
						}
					}
					t.Fatalf("%s threads=%d: parity hash mismatch %x vs %x",
						e, threads, hashes[run], hashes[0])
				}
			}
		}
	}
}

func TestEngineArenaMatchesFresh(t *testing.T) {
	// The arena-vs-fresh equivalence gate per engine: a shared Scratch cycled
	// across engines and graph sizes must reproduce fresh-allocation runs.
	graphs := []*graph.Graph{gen.CliqueChain(24, 6), gen.Karate(), gen.CliqueChain(40, 5)}
	s := NewScratch()
	for _, e := range allEngines {
		for i, g := range graphs {
			opt := Options{Threads: 1, Engine: e, Validate: true}
			fresh := opt
			fresh.NoScratch = true
			want, err := Detect(g, fresh)
			if err != nil {
				t.Fatalf("%s/graph %d fresh: %v", e, i, err)
			}
			got, err := DetectWith(g, opt, s)
			if err != nil {
				t.Fatalf("%s/graph %d arena: %v", e, i, err)
			}
			sameResult(t, e.String(), want, got)
		}
	}
}

func TestEnsemblePipelineShape(t *testing.T) {
	// The EPP pipeline's structure: phase 0 is the PLP stage (MatchPasses
	// carries the sweep count, bounded by the ensemble default), later phases
	// are matching levels, and the per-level mappings compose back to the
	// final assignment.
	g := gen.CliqueChain(16, 6)
	res, err := Detect(g, Options{Threads: 4, Engine: EngineEnsemble, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) < 1 || res.Stats[0].Phase != 0 {
		t.Fatalf("missing PLP phase 0 stats: %+v", res.Stats)
	}
	if res.Stats[0].MatchPasses < 1 || res.Stats[0].MatchPasses > DefaultEnsembleSweeps {
		t.Errorf("PLP stage ran %d sweeps, want 1..%d", res.Stats[0].MatchPasses, DefaultEnsembleSweeps)
	}
	for i, st := range res.Stats {
		if st.Phase != i {
			t.Errorf("Stats[%d].Phase = %d", i, st.Phase)
		}
	}
	if len(res.Levels) != len(res.Stats) {
		t.Fatalf("%d level mappings for %d phases", len(res.Levels), len(res.Stats))
	}
	comm := make([]int64, g.NumVertices())
	for v := range comm {
		comm[v] = int64(v)
	}
	for _, mapping := range res.Levels {
		for v := range comm {
			comm[v] = mapping[comm[v]]
		}
	}
	for v := range comm {
		if comm[v] != res.CommunityOf[v] {
			t.Fatalf("level composition assigns vertex %d to %d, CommunityOf says %d",
				v, comm[v], res.CommunityOf[v])
		}
	}
}

func TestEngineOptionsValidation(t *testing.T) {
	g := gen.Karate()
	bad := []Options{
		{Engine: Engine(99)},
		{Engine: EngineEnsemble, PLPMaxSweeps: -1},
		{Engine: EngineEnsemble, PLPThreshold: 1.5},
		{Engine: EngineEnsemble, PLPThreshold: -0.1},
	}
	for i, opt := range bad {
		if _, err := Detect(g, opt); err == nil {
			t.Errorf("options %d accepted: %+v", i, opt)
		}
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]Engine{
		"matching": EngineMatching, "plp": EnginePLP, "ensemble": EngineEnsemble,
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseEngine("leiden"); err == nil {
		t.Error("ParseEngine accepted unknown engine")
	}
}

func TestEngineLedgerStages(t *testing.T) {
	// The ensemble's ledger stream: PLP sweep rows (stage plp, Active/Changed
	// filled, no metric), one coarsen row carrying the drain curve, then
	// matching rows — and the stage guards must keep the PLP rows from
	// tripping metric-decrease or stall warnings. The LJ-similar graph keeps
	// the coarse graph mergeable so matching levels actually run (the clique
	// chain would terminate at the PLP optimum with no match rows).
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	led := obs.NewLedger()
	if _, err := Detect(g, Options{Threads: 4, Engine: EngineEnsemble, Ledger: led}); err != nil {
		t.Fatal(err)
	}
	rows := led.Levels()
	if len(rows) < 3 {
		t.Fatalf("only %d ledger rows", len(rows))
	}
	var plpRows, coarsenRows, matchRows int
	for i, row := range rows {
		switch obs.StageOf(row) {
		case obs.StagePLP:
			plpRows++
			if coarsenRows > 0 || matchRows > 0 {
				t.Errorf("row %d: plp row after later stages", i)
			}
			if row.Active <= 0 {
				t.Errorf("row %d: plp row with Active=%d", i, row.Active)
			}
		case obs.StageCoarsen:
			coarsenRows++
			if len(row.Drain) != plpRows {
				t.Errorf("coarsen Drain has %d entries for %d sweeps", len(row.Drain), plpRows)
			}
			if row.OutVertices >= row.Vertices {
				t.Errorf("coarsen did not shrink: %d -> %d", row.Vertices, row.OutVertices)
			}
		case obs.StageMatch:
			matchRows++
		}
	}
	if plpRows == 0 || coarsenRows != 1 || matchRows == 0 {
		t.Fatalf("stage rows plp=%d coarsen=%d match=%d", plpRows, coarsenRows, matchRows)
	}
	for _, w := range led.Warnings() {
		if w.Code == obs.WarnMetricDecrease || w.Code == obs.WarnMatchingStall {
			t.Errorf("ensemble run warned %s: %s", w.Code, w.Detail)
		}
	}
}

package core

// Sharded detection is the out-of-core mode (DESIGN.md §15): the input
// arrives as a symmetric CSR view — typically backed by a memory-mapped
// mmapcsr file — and is never materialized whole on the heap. The vertex
// space is cut into K contiguous shards by the same degree-prefix-sum
// edge-balanced partitioner the per-level scheduler uses; each shard
// extracts its induced subgraph, runs the standard engine on its own
// execution context and scratch arena in parallel with its peers, and the
// boundary structure — every cut edge, plus each shard's local community
// graph — folds into one quotient graph on which a final matching
// agglomeration stitches communities across shard boundaries. The result
// chains into a single dendrogram: level 0 maps vertices to per-shard
// communities, the remaining levels are the stitch's merge hierarchy.
//
// The blueprint is Lu & Halappanavar's partition-local detection with a
// cross-partition consolidation pass: community structure is mostly local,
// so detecting inside edge-dense shards and reconciling only the quotient
// of the cut preserves quality while each worker touches a subgraph that
// fits its cache (and, out-of-core, its RAM slice).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/contract"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/par"
)

// ShardOptions configures a sharded detection run.
type ShardOptions struct {
	// Shards is K, the number of vertex shards; <= 1 runs a single shard
	// (the whole graph through one engine run plus a no-op stitch). The
	// partitioner may clamp K down on tiny graphs.
	Shards int
	// Opt is the engine configuration template. Threads is the TOTAL worker
	// budget, split evenly across concurrently-running shards (each shard
	// gets at least one). Recorder and Ledger are coordinator-level: shard
	// runs receive neither (they are not concurrency-safe); the coordinator
	// records one StageShard ledger row per shard and a StageStitch summary
	// after the run, and the stitch phase reuses the Recorder serially.
	// RefineEveryPhase is forced off for the stitch so the dendrogram's
	// level maps stay composable.
	Opt Options
}

// ShardStat describes one shard's local detection.
type ShardStat struct {
	Shard int `json:"shard"`
	// FirstVertex/LastVertex delimit the shard's contiguous vertex range
	// [FirstVertex, LastVertex).
	FirstVertex int64 `json:"first_vertex"`
	LastVertex  int64 `json:"last_vertex"`
	// Vertices/Edges describe the extracted induced subgraph; CutEdges is
	// the number of boundary edges this shard recorded (each cut edge is
	// recorded by exactly one of its two shards).
	Vertices int64 `json:"vertices"`
	Edges    int64 `json:"edges"`
	CutEdges int64 `json:"cut_edges"`
	// Communities is the shard's local community count; CommunityEdges the
	// edge count of its community graph (the shard's quotient contribution).
	Communities    int64 `json:"communities"`
	CommunityEdges int64 `json:"community_edges"`
	// Imbalance is the shard's scheduled edge-load share over the even
	// share (1 = perfect balance across shards).
	Imbalance float64 `json:"imbalance"`
	// Detect is the shard's wall-clock detection time (extraction included).
	Detect time.Duration `json:"detect"`
}

// ShardResult is the outcome of DetectSharded.
type ShardResult struct {
	// CommunityOf maps every input vertex to its final (stitched) community.
	CommunityOf    []int64
	NumCommunities int64
	// FinalModularity and FinalCoverage are global: the stitch evaluates
	// them on the quotient graph, whose weights are exactly the input's, so
	// they equal the metrics of the final partition on the original graph.
	FinalModularity float64
	FinalCoverage   float64
	// Dendrogram chains the whole run: level 0 is the vertex → per-shard
	// community map, the remaining levels are the stitch's merge phases.
	Dendrogram *hierarchy.Dendrogram
	// Shards has one entry per shard; Stitch is the quotient-graph run.
	Shards []ShardStat
	Stitch *Result
	// QuotientVertices/QuotientEdges describe the stitch input; CutEdges is
	// the total boundary edge count.
	QuotientVertices int64
	QuotientEdges    int64
	CutEdges         int64
	Total            time.Duration
}

// shardLocal is one shard's output, filled by its goroutine.
type shardLocal struct {
	comm []int64      // local vertex → local community
	k    int64        // local community count
	cg   *graph.Graph // local community graph (quotient contribution)
	cut  []graph.Edge // boundary edges in global vertex ids
	stat ShardStat
	err  error
}

// DetectSharded partitions c's vertices into opt.Shards edge-balanced
// contiguous shards, detects communities per shard in parallel, and
// stitches boundary communities with one agglomeration pass over the
// quotient graph of per-shard community graphs and cut edges. The CSR is
// only read row-by-row — when it views an mmapcsr mapping, the full edge
// set never lands on the heap. The result is deterministic for a fixed
// shard count, independent of the thread budget.
func DetectSharded(ctx context.Context, c *graph.CSR, opt ShardOptions) (*ShardResult, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil CSR")
	}
	n := c.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("core: sharded detection on empty graph")
	}
	if opt.Opt.Engine < EngineMatching || opt.Opt.Engine > EngineEnsemble {
		return nil, fmt.Errorf("core: unknown engine %d", int(opt.Opt.Engine))
	}
	start := time.Now()
	rec := opt.Opt.Recorder
	led := opt.Opt.Ledger
	led.Reset()

	// Shard boundaries from the degree prefix sum: shard k owns the
	// contiguous vertex range Range(k), each range carrying an even share
	// of adjacency entries (+1 per vertex, so empty rows still spread).
	K := opt.Shards
	if K < 1 {
		K = 1
	}
	if int64(K) > n {
		K = int(n)
	}
	pt := &par.Partition{}
	rowStart, rowEnd := c.RowBounds()
	pt.BuildBuckets(nil, K, int(n), rowStart, rowEnd)
	K = pt.Workers()

	threads := opt.Opt.Threads
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	perShard := threads / K
	if perShard < 1 {
		perShard = 1
	}

	// Per-shard detection, one goroutine per shard, each on its own pooled
	// execution context and scratch arena.
	locals := make([]shardLocal, K)
	sSpan := rec.Begin(obs.CatKernel, "shards", -1)
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := pt.Range(k)
			locals[k] = detectShard(ctx, c, int64(lo), int64(hi), k, perShard, opt.Opt)
		}(k)
	}
	wg.Wait()
	sSpan.EndArgs("shards", int64(K), "threads_per_shard", int64(perShard))
	for k := range locals {
		if err := locals[k].err; err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", k, err)
		}
	}
	// Scheduled load share per shard: adjacency entries (+1 per vertex,
	// matching the partitioner's weights) over the even K-way share.
	schedTotal := float64(rowEnd[n-1]-rowStart[0]) + float64(n)
	for k := 0; k < K; k++ {
		lo, hi := pt.Range(k)
		w := float64(hi - lo)
		if hi > lo {
			w += float64(rowEnd[hi-1] - rowStart[lo])
		}
		locals[k].stat.Imbalance = w * float64(K) / schedTotal
	}

	// Global community ids: shard k's communities occupy
	// [base[k], base[k]+k_k), densely, so the composed vertex map is a
	// valid dendrogram level.
	base := make([]int64, K+1)
	for k := 0; k < K; k++ {
		base[k+1] = base[k] + locals[k].k
	}
	q := base[K]
	globalComm := make([]int64, n)
	var totalCut, quotientInput int64
	for k := 0; k < K; k++ {
		lo, _ := pt.Range(k)
		for i, lc := range locals[k].comm {
			globalComm[int64(lo)+int64(i)] = base[k] + lc
		}
		totalCut += int64(len(locals[k].cut))
		quotientInput += locals[k].cg.NumEdges() + int64(len(locals[k].cut))
	}

	// The quotient graph: every shard's community graph (self-loops
	// carried as explicit loop edges so the builder folds them back into
	// Self) plus every cut edge mapped to its endpoints' communities.
	// Weights are preserved exactly, so modularity/coverage on the quotient
	// equal the same metrics of the induced partition on the input.
	qEdges := make([]graph.Edge, 0, quotientInput)
	for k := 0; k < K; k++ {
		b := base[k]
		locals[k].cg.ForEachEdge(func(_ int64, u, v, w int64) {
			qEdges = append(qEdges, graph.Edge{U: b + u, V: b + v, W: w})
		})
		for lc, s := range locals[k].cg.Self {
			if s != 0 {
				qEdges = append(qEdges, graph.Edge{U: b + int64(lc), V: b + int64(lc), W: s})
			}
		}
		for _, e := range locals[k].cut {
			qEdges = append(qEdges, graph.Edge{U: globalComm[e.U], V: globalComm[e.V], W: e.W})
		}
		locals[k].cg = nil // release the shard's community graph
	}
	qg, err := graph.Build(threads, q, qEdges)
	if err != nil {
		return nil, fmt.Errorf("core: quotient graph: %w", err)
	}
	qEdges = nil

	// Stitch: one matching agglomeration over the quotient, run to its
	// normal termination. Level maps are kept so the dendrogram chains;
	// refinement is forced off because it would decouple CommunityOf from
	// the level composition.
	tSpan := rec.Begin(obs.CatKernel, "stitch", -1)
	sopt := opt.Opt
	sopt.Threads = threads
	sopt.Engine = EngineMatching
	sopt.Recorder = rec
	sopt.Ledger = nil
	sopt.DiscardLevels = false
	sopt.RefineEveryPhase = false
	stitch, err := DetectWithContext(ctx, qg, sopt, nil)
	tSpan.EndArgs("quotient_vertices", q, "cut_edges", totalCut)
	if err != nil {
		return nil, fmt.Errorf("core: stitch: %w", err)
	}

	final := make([]int64, n)
	for v := int64(0); v < n; v++ {
		final[v] = stitch.CommunityOf[globalComm[v]]
	}
	levels := make([][]int64, 0, 1+len(stitch.Levels))
	levels = append(levels, globalComm)
	levels = append(levels, stitch.Levels...)
	dend, err := hierarchy.New(n, levels)
	if err != nil {
		return nil, fmt.Errorf("core: sharded dendrogram: %w", err)
	}

	res := &ShardResult{
		CommunityOf:      final,
		NumCommunities:   stitch.NumCommunities,
		FinalModularity:  stitch.FinalModularity,
		FinalCoverage:    stitch.FinalCoverage,
		Dendrogram:       dend,
		Stitch:           stitch,
		QuotientVertices: q,
		QuotientEdges:    qg.NumEdges(),
		CutEdges:         totalCut,
		Total:            time.Since(start),
	}
	res.Shards = make([]ShardStat, K)
	for k := 0; k < K; k++ {
		res.Shards[k] = locals[k].stat
	}
	if led.Enabled() {
		for k := 0; k < K; k++ {
			st := locals[k].stat
			// Record derives MergedVertices/MergeFraction from
			// Vertices−OutVertices: for a shard row that is the number of
			// vertices its local detection merged away.
			led.Record(obs.LevelStats{
				Stage:          obs.StageShard,
				Level:          k,
				Shard:          k,
				Vertices:       st.Vertices,
				Edges:          st.Edges,
				OutVertices:    st.Communities,
				OutEdges:       st.CommunityEdges,
				CutEdges:       st.CutEdges,
				SchedImbalance: st.Imbalance,
			})
		}
		led.Record(obs.LevelStats{
			Stage:       obs.StageStitch,
			Level:       0,
			Vertices:    q,
			Edges:       qg.NumEdges(),
			OutVertices: stitch.NumCommunities,
			Metric:      stitch.FinalModularity,
			Coverage:    stitch.FinalCoverage,
			CutEdges:    totalCut,
			MatchPasses: len(stitch.Stats),
		})
	}
	// One post-run heap sample into the flight ring: the acceptance signal
	// for the out-of-core claim is that this stays far below the
	// materialized single-image run's.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	obs.Flight().Record(obs.FlightMark, "shard", "heap-sample",
		fmt.Sprintf("shards=%d heap_alloc=%d heap_sys=%d total_alloc=%d", K, ms.HeapAlloc, ms.HeapSys, ms.TotalAlloc), 0)
	rec.ObserveLatency(obs.LatDetect, res.Total.Nanoseconds())
	return res, nil
}

// detectShard extracts shard k's induced subgraph from the CSR and runs the
// standard engine on it with its own execution context and arena. Cut
// edges (one endpoint outside [lo,hi)) are recorded in global vertex ids
// when this side owns them (x < v), so across all shards each cut edge
// appears exactly once.
func detectShard(ctx context.Context, c *graph.CSR, lo, hi int64, k, threads int, tmpl Options) shardLocal {
	t0 := time.Now()
	var out shardLocal
	out.stat = ShardStat{Shard: k, FirstVertex: lo, LastVertex: hi, Vertices: hi - lo}
	// Count first for exact allocations: internal edges are stored once
	// (from the lower endpoint), cut edges once across the two shards.
	var nInternal, nCut int64
	for x := lo; x < hi; x++ {
		adj, _ := c.Neighbors(x)
		for _, v := range adj {
			if v >= lo && v < hi {
				if v > x {
					nInternal++
				}
			} else if v > x {
				nCut++
			}
		}
	}
	localEdges := make([]graph.Edge, 0, nInternal)
	out.cut = make([]graph.Edge, 0, nCut)
	for x := lo; x < hi; x++ {
		adj, wgt := c.Neighbors(x)
		for i, v := range adj {
			if v >= lo && v < hi {
				if v > x {
					localEdges = append(localEdges, graph.Edge{U: x - lo, V: v - lo, W: wgt[i]})
				}
			} else if v > x {
				out.cut = append(out.cut, graph.Edge{U: x, V: v, W: wgt[i]})
			}
		}
	}
	sg, err := graph.Build(threads, hi-lo, localEdges)
	if err != nil {
		out.err = err
		return out
	}
	localEdges = nil
	for x := lo; x < hi; x++ {
		if s := c.SelfLoop(x); s != 0 {
			sg.Self[x-lo] += s
		}
	}
	out.stat.Edges = sg.NumEdges()
	out.stat.CutEdges = int64(len(out.cut))

	dopt := tmpl
	dopt.Threads = threads
	dopt.Recorder = nil
	dopt.Ledger = nil
	dopt.DiscardLevels = true
	if err := validateOptions(sg, dopt); err != nil {
		out.err = err
		return out
	}
	ec := exec.Acquire(ctx, threads, nil)
	defer ec.Release()
	var scratch *Scratch
	if !dopt.NoScratch {
		scratch = NewScratch()
	}
	res, err := detect(ec, sg, dopt, scratch, nil)
	if err != nil {
		out.err = err
		return out
	}
	out.comm = res.CommunityOf
	out.k = res.NumCommunities
	out.cg = contract.ByMapping(ec, sg, res.CommunityOf, res.NumCommunities, contract.Contiguous)
	out.stat.Communities = res.NumCommunities
	out.stat.CommunityEdges = out.cg.NumEdges()
	out.stat.Detect = time.Since(t0)
	return out
}

package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/seq"
)

// bootstrapIncremental runs a from-scratch detection on g and wraps the
// state (overlay + dendrogram) an incremental chain starts from.
func bootstrapIncremental(t *testing.T, g *graph.Graph, opt Options) (*graph.Overlay, *hierarchy.Dendrogram) {
	t.Helper()
	res, err := Detect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := hierarchy.FromFinal(g.NumVertices(), res.CommunityOf, res.NumCommunities)
	if err != nil {
		t.Fatal(err)
	}
	return graph.NewOverlay(opt.Threads, g), d
}

// randomBatch fills d with churn updates: inserts between random vertices
// and deletes sampled from the live edges of ref.
func randomBatch(r *par.RNG, ref *graph.Graph, size int, version uint64) *graph.Delta {
	n := ref.NumVertices()
	edges := ref.Edges()
	d := &graph.Delta{Version: version}
	for i := 0; i < size; i++ {
		if r.Intn(2) == 0 && len(edges) > 0 {
			e := edges[r.Intn(len(edges))]
			d.Delete(e.U, e.V)
		} else {
			d.Insert(r.Int63n(n), r.Int63n(n), r.Int63n(3)+1)
		}
	}
	return d
}

func TestDetectIncrementalMatchesScratchDetection(t *testing.T) {
	g := gen.CliqueChain(24, 8)
	opt := Options{Threads: 2}
	ov, dend := bootstrapIncremental(t, g, opt)
	r := par.NewRNG(42)
	for round := 0; round < 8; round++ {
		batch := randomBatch(r, ov.Base(), 12, uint64(round+1))
		ir, err := DetectIncremental(ov, dend, batch, opt)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		dend = ir.Dendrogram

		// From-scratch on the same compacted graph must agree within the
		// engine tolerance. The incremental run may be on either side of the
		// scratch run (both are greedy heuristics), so compare magnitudes.
		scratch, err := Detect(ir.Graph, opt)
		if err != nil {
			t.Fatal(err)
		}
		if diff := scratch.FinalModularity - ir.FinalModularity; diff > engineTolerance {
			t.Fatalf("round %d: incremental modularity %.4f vs scratch %.4f (diff %.4f > %v)",
				round, ir.FinalModularity, scratch.FinalModularity, diff, engineTolerance)
		}
		if ir.NumCommunities <= 0 || ir.NumCommunities > ir.Graph.NumVertices() {
			t.Fatalf("round %d: %d communities of %d vertices", round, ir.NumCommunities, ir.Graph.NumVertices())
		}
		// The chained dendrogram must reproduce the result's partition.
		comm, k := dend.Final()
		if k != ir.NumCommunities {
			t.Fatalf("round %d: dendrogram k=%d, result %d", round, k, ir.NumCommunities)
		}
		for v := range comm {
			if comm[v] != ir.CommunityOf[v] {
				t.Fatalf("round %d: dendrogram and result disagree at vertex %d", round, v)
			}
		}
	}
}

func TestDetectIncrementalAgainstSeqOracle(t *testing.T) {
	g := gen.CliqueChain(20, 6)
	opt := Options{Threads: 2}
	ov, dend := bootstrapIncremental(t, g, opt)
	r := par.NewRNG(7)
	for round := 0; round < 5; round++ {
		batch := randomBatch(r, ov.Base(), 10, uint64(round+1))
		ir, err := DetectIncremental(ov, dend, batch, opt)
		if err != nil {
			t.Fatal(err)
		}
		dend = ir.Dendrogram
		oracle := seq.Detect(ir.Graph, seq.Options{})
		if ir.FinalModularity < oracle.Modularity-engineTolerance {
			t.Fatalf("round %d: incremental modularity %.4f below seq oracle %.4f - %v",
				round, ir.FinalModularity, oracle.Modularity, engineTolerance)
		}
	}
}

func TestDetectIncrementalValidatedRun(t *testing.T) {
	// Full invariant checking through the seed contraction and every phase.
	g := gen.CliqueChain(16, 6)
	opt := Options{Threads: 2, Validate: true}
	ov, dend := bootstrapIncremental(t, g, opt)
	batch := &graph.Delta{Version: 1}
	batch.Insert(0, g.NumVertices()-1, 2)
	batch.Delete(0, 1)
	batch.Insert(3, 3, 1)
	if _, err := DetectIncremental(ov, dend, batch, opt); err != nil {
		t.Fatal(err)
	}
}

func TestDetectIncrementalRejectsBadInputs(t *testing.T) {
	g := gen.CliqueChain(8, 4)
	opt := Options{Threads: 1}
	ov, dend := bootstrapIncremental(t, g, opt)
	batch := &graph.Delta{Version: 1}
	batch.Insert(0, 1, 1)
	if _, err := DetectIncremental(nil, dend, batch, opt); err == nil {
		t.Fatal("nil overlay accepted")
	}
	if _, err := DetectIncremental(ov, nil, batch, opt); err == nil {
		t.Fatal("nil dendrogram accepted")
	}
	if _, err := DetectIncremental(ov, dend, nil, opt); err == nil {
		t.Fatal("nil batch accepted")
	}
	plpOpt := opt
	plpOpt.Engine = EnginePLP
	if _, err := DetectIncremental(ov, dend, batch, plpOpt); err == nil {
		t.Fatal("PLP engine accepted for incremental re-detection")
	}
}

func TestDetectIncrementalLedgerStageAndStorm(t *testing.T) {
	g := gen.CliqueChain(12, 6)
	opt := Options{Threads: 1, Ledger: obs.NewLedger()}
	ov, dend := bootstrapIncremental(t, g, opt)

	// A one-edge batch dirties at most two communities — no storm.
	small := &graph.Delta{Version: 1}
	small.Insert(0, g.NumVertices()-1, 1)
	ir, err := DetectIncremental(ov, dend, small, opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := opt.Ledger.Levels()
	if len(rows) == 0 || obs.StageOf(rows[0]) != obs.StageIncremental {
		t.Fatalf("first ledger row stage = %q, want %q", rows[0].Stage, obs.StageIncremental)
	}
	if rows[0].PrevCommunities == 0 || rows[0].Dissolved == 0 {
		t.Fatalf("incremental row missing seed counters: %+v", rows[0])
	}
	for _, w := range opt.Ledger.Warnings() {
		if w.Code == obs.WarnDissolveStorm {
			t.Fatalf("small batch flagged a dissolve storm: %+v", w)
		}
	}

	// A batch touching every vertex dissolves every community — storm.
	dend = ir.Dendrogram
	n := ov.NumVertices()
	storm := &graph.Delta{Version: 2}
	for v := int64(0); v+1 < n; v += 2 {
		storm.Insert(v, v+1, 1)
	}
	if _, err := DetectIncremental(ov, dend, storm, opt); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range opt.Ledger.Warnings() {
		if w.Code == obs.WarnDissolveStorm {
			found = true
		}
	}
	if !found {
		t.Fatalf("full-churn batch did not flag %s; warnings: %+v",
			obs.WarnDissolveStorm, opt.Ledger.Warnings())
	}
}

// TestIncrementalSoak runs a 50-batch churn stream through two fully
// independent dynamic implementations — the overlay + seeded parallel engine
// on one side, seq.ApplyDelta + from-scratch sequential detection on the
// other — and asserts after every batch that (a) the two graph states are
// identical edge-for-edge and (b) the incremental modularity stays within
// engineTolerance of the oracle's.
func TestIncrementalSoak(t *testing.T) {
	g := gen.CliqueChain(24, 8)
	batches, err := gen.Deltas(g, gen.DeltaConfig{
		Batches: 50, BatchSize: 10, DeleteFrac: 0.45, MaxWeight: 3, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Threads: 2}
	ov, dend := bootstrapIncremental(t, g, opt)
	oracleG := g
	s := NewScratch()
	for i, batch := range batches {
		ir, err := DetectIncrementalWith(ov, dend, batch, opt, s)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		dend = ir.Dendrogram
		var oracle *seq.Result
		oracleG, oracle, err = seq.Redetect(oracleG, batch, seq.Options{})
		if err != nil {
			t.Fatalf("batch %d oracle: %v", i, err)
		}
		assertSameGraph(t, i, ir.Graph, oracleG)
		if ir.FinalModularity < oracle.Modularity-engineTolerance {
			t.Fatalf("batch %d: incremental modularity %.4f below oracle %.4f - %v",
				i, ir.FinalModularity, oracle.Modularity, engineTolerance)
		}
	}
}

// assertSameGraph compares two graphs as weighted edge multisets plus
// self-loop arrays, independent of storage order.
func assertSameGraph(t *testing.T, round int, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("round %d: shape (%d,%d) vs (%d,%d)", round,
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	collect := func(g *graph.Graph) map[[2]int64]int64 {
		m := map[[2]int64]int64{}
		g.ForEachEdge(func(_ int64, u, v, w int64) {
			first, second := graph.StoredOrder(u, v)
			m[[2]int64{first, second}] += w
		})
		return m
	}
	am, bm := collect(a), collect(b)
	if len(am) != len(bm) {
		t.Fatalf("round %d: %d distinct edges vs %d", round, len(am), len(bm))
	}
	for k, w := range am {
		if bm[k] != w {
			t.Fatalf("round %d: edge {%d,%d} weight %d vs %d", round, k[0], k[1], w, bm[k])
		}
	}
	for x := int64(0); x < a.NumVertices(); x++ {
		if a.Self[x] != b.Self[x] {
			t.Fatalf("round %d: self-loop at %d: %d vs %d", round, x, a.Self[x], b.Self[x])
		}
	}
}

// TestIncrementalSteadyStateAllocs pins the zero-alloc invariant for the
// serving loop: batch after batch through one warm arena, the whole
// ApplyDelta → Compact → seeded-detect chain must stay at a small constant
// allocation count (the Result envelope, the chaining dendrogram, and the
// overlay's map traffic), not O(n) or O(phases).
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	g := gen.CliqueChain(32, 8)
	opt := Options{Threads: 1, DiscardLevels: true}
	ov, dend := bootstrapIncremental(t, g, opt)
	s := NewScratch()
	r := par.NewRNG(3)
	version := uint64(0)
	run := func() {
		version++
		n := ov.NumVertices()
		batch := &graph.Delta{Version: version}
		for i := 0; i < 8; i++ {
			batch.Insert(r.Int63n(n), r.Int63n(n), 1)
			batch.Delete(r.Int63n(n), r.Int63n(n))
		}
		ir, err := DetectIncrementalWith(ov, dend, batch, opt, s)
		if err != nil {
			t.Fatal(err)
		}
		dend = ir.Dendrogram
	}
	for i := 0; i < 10; i++ {
		run() // warm the arena, the overlay freelists, and the spare graphs
	}
	allocs := testing.AllocsPerRun(10, run)
	if allocs > 48 {
		t.Fatalf("steady-state incremental run allocates %.1f times, want a small constant", allocs)
	}
}

// The scratch arena for the engine's phase loop. The paper's profile (§IV-C:
// contraction takes 40–80% of total execution time) means the loop's
// performance is dominated by memory traffic, and the seed engine added
// allocation and zeroing of every per-phase array — scores, degrees, match
// state, worklists, histogram stripes, and all six arrays of each new
// community graph — on top of it. The arena keeps one reusable copy of each,
// sized by the first (largest) phase: after phase 0 the steady-state loop
// performs no heap allocations, and a harness sweep reusing one Scratch
// across trials skips even the phase-0 allocations after the first run.
package core

import (
	"repro/internal/contract"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
	"repro/internal/plp"
)

// Scratch is the engine's reusable per-run arena. A zero Scratch (or
// NewScratch()) is ready to use; buffers grow to the largest graph seen and
// are recycled for everything smaller. It holds:
//
//   - the per-phase score and weighted-degree arrays;
//   - the matching kernels' match/candidate/lock/worklist state;
//   - the contraction kernel's per-bucket counts and per-worker histogram
//     stripes;
//   - two community graphs used as ping-pong contraction destinations
//     (phase i reads one and writes the other);
//   - the double-buffered community-size arrays and their merge stripes;
//   - a mapping buffer reused across phases when Options.DiscardLevels is
//     set.
//
// A Scratch must not be used by concurrent Detect runs. Results returned by
// DetectWith never alias scratch memory, so they stay valid after the
// arena is reused.
type Scratch struct {
	deg         []int64
	scores      []float64
	mapping     []int64
	sizes       [2][]int64
	sizeStripes []int64
	// part is the per-level edge-balanced schedule the engine installs on
	// the execution context at the top of each phase (Options.Scheduler).
	part     par.Partition
	match    matching.Scratch
	contract contract.Scratch
	// plp is the label-propagation engine's state (CSR view, label and
	// worklist arrays, histogram stripes), used by EnginePLP/EngineEnsemble.
	plp plp.Scratch
	cg  [2]*graph.Graph
	// Incremental re-detection working set (DetectIncrementalWith): the
	// per-previous-community dirty flags and id remap, and the dense seed
	// partition handed to the engine's seed stage.
	dirty    []bool
	remap    []int64
	seedComm []int64
}

// NewScratch returns an empty arena; buffers are allocated on first use.
func NewScratch() *Scratch { return &Scratch{} }

// graphBuf returns the i-th (mod 2) ping-pong community-graph buffer,
// creating it on first use.
func (s *Scratch) graphBuf(i int) *graph.Graph {
	i &= 1
	if s.cg[i] == nil {
		s.cg[i] = &graph.Graph{}
	}
	return s.cg[i]
}

package exec

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
)

func TestBackgroundCachedAndImmutable(t *testing.T) {
	a := Background(2)
	b := Background(2)
	if a != b {
		t.Fatal("Background(2) not cached")
	}
	if a.Threads() != 2 || a.Recorder() != nil || a.Err() != nil {
		t.Fatal("Background context misconfigured")
	}
	big := Background(maxBackground + 5)
	if big.Threads() != maxBackground+5 {
		t.Fatalf("Threads = %d", big.Threads())
	}
}

func TestBackgroundLoopsFallBackToSpawn(t *testing.T) {
	c := Background(4)
	var n int64
	c.For(100, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 100 {
		t.Fatalf("For covered %d of 100", n)
	}
	var dyn int64
	c.ForDynamic(100, 7, func(lo, hi int) { atomic.AddInt64(&dyn, int64(hi-lo)) })
	if dyn != 100 {
		t.Fatalf("ForDynamic covered %d of 100", dyn)
	}
}

func TestNewPooledLoops(t *testing.T) {
	c := New(context.Background(), 4, nil)
	defer c.Close()
	var n int64
	for i := 0; i < 100; i++ {
		c.For(997, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	}
	if n != 100*997 {
		t.Fatalf("pooled For covered %d, want %d", n, 100*997)
	}
	times := make([]int64, 4)
	used := c.ForWorkerTimes(1000, times, func(w, lo, hi int) {})
	if used < 1 {
		t.Fatalf("used = %d", used)
	}
}

func TestWithThreadsSharesTeam(t *testing.T) {
	c := New(context.Background(), 2, nil)
	defer c.Close()
	w := c.WithThreads(4) // grows the shared team
	if w.Threads() != 4 {
		t.Fatalf("Threads = %d", w.Threads())
	}
	var n int64
	w.For(1000, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 1000 {
		t.Fatalf("covered %d", n)
	}
	// The original width is untouched.
	if c.Threads() != 2 {
		t.Fatalf("original Threads = %d", c.Threads())
	}
}

func TestWithContextAndRecorder(t *testing.T) {
	rec := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	c := Background(1).WithContext(ctx).WithRecorder(rec)
	if c.Recorder() != rec {
		t.Fatal("recorder not attached")
	}
	if c.Err() != nil {
		t.Fatal("premature cancellation")
	}
	cancel()
	if c.Err() == nil {
		t.Fatal("cancellation not visible")
	}
	if Background(1).Err() != nil {
		t.Fatal("derivation mutated the cached Background context")
	}
}

func TestAcquireReleaseReusesCtx(t *testing.T) {
	a := Acquire(nil, 2, nil)
	a.Release()
	b := Acquire(nil, 2, nil)
	defer b.Release()
	if a != b {
		t.Fatal("Release/Acquire did not reuse the context")
	}
	var n int64
	b.For(100, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 100 {
		t.Fatalf("reused ctx covered %d", n)
	}
}

func TestAcquireGrowsReusedTeam(t *testing.T) {
	a := Acquire(nil, 2, nil)
	a.Release()
	b := Acquire(nil, 6, nil)
	defer b.Release()
	var n int64
	b.For(10000, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 10000 {
		t.Fatalf("grown ctx covered %d", n)
	}
}

func TestAcquireSerialSteadyStateAllocFree(t *testing.T) {
	// Detect at Threads=1 acquires and releases per call; the free-list must
	// make that allocation-free once warm.
	allocs := testing.AllocsPerRun(50, func() {
		c := Acquire(context.Background(), 1, nil)
		if !c.Serial(10) {
			t.Fatal("Threads=1 should be serial")
		}
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("Acquire/Release allocated %.1f times per run", allocs)
	}
}

func TestSetPartitionLifecycle(t *testing.T) {
	c := Acquire(nil, 3, nil)
	start := []int64{0, 10, 20, 30}
	end := []int64{10, 20, 30, 40}
	var pt par.Partition
	c.BuildBuckets(&pt, 4, start, end)
	c.SetPartition(&pt)
	if c.Partition() != &pt {
		t.Fatal("SetPartition did not install")
	}
	if got := c.Balanced(4, 40); got != &pt {
		t.Fatalf("Balanced(4, 40) = %v, want the installed partition", got)
	}
	// A mismatched item count or edge total means the partition belongs to
	// some other level: the kernel must fall back to dynamic scheduling.
	if c.Balanced(5, 40) != nil || c.Balanced(4, 39) != nil {
		t.Fatal("Balanced accepted a stale partition")
	}
	c.Release()
	if c2 := Acquire(nil, 3, nil); c2.Partition() != nil {
		c2.Release()
		t.Fatal("Release leaked the partition into the next acquire")
	} else {
		c2.Release()
	}
}

func TestSetPartitionNoOpOnBackground(t *testing.T) {
	c := Background(2)
	var pt par.Partition
	pt.BuildBuckets(nil, 2, 2, []int64{0, 5}, []int64{5, 10})
	c.SetPartition(&pt)
	if c.Partition() != nil {
		t.Fatal("cached Background context accepted a partition")
	}
	// A derived view is private and may carry one.
	v := c.WithRecorder(nil)
	v.SetPartition(&pt)
	if v.Partition() != &pt {
		t.Fatal("derived view rejected the partition")
	}
	if c.Partition() != nil {
		t.Fatal("view's partition leaked into the cached context")
	}
}

func TestForRangesAndSpansCover(t *testing.T) {
	c := Acquire(nil, 4, obs.New())
	defer c.Release()
	n := 100
	start := make([]int64, n)
	end := make([]int64, n)
	var cur int64
	for x := 0; x < n; x++ {
		start[x] = cur
		cur += int64(1 + x%7)
		end[x] = cur
	}
	var pt par.Partition
	c.BuildBuckets(&pt, n, start, end)

	var items int64
	c.ForRanges("test/ranges", &pt, func(lo, hi int) {
		atomic.AddInt64(&items, int64(hi-lo))
	})
	if items != int64(n) {
		t.Fatalf("ForRanges covered %d of %d items", items, n)
	}

	var edges int64
	c.ForSpans("test/spans", &pt, func(_ int, sp par.Span) {
		for x := sp.LoV; x < sp.HiV; x++ {
			elo, ehi := start[x], end[x]
			if x == sp.LoV {
				elo = sp.LoE
			}
			if x == sp.HiV-1 {
				ehi = sp.HiE
			}
			atomic.AddInt64(&edges, ehi-elo)
		}
	})
	if edges != cur {
		t.Fatalf("ForSpans covered %d of %d edges", edges, cur)
	}

	prof := c.Recorder().Export()
	if len(prof.Regions) != 2 {
		t.Fatalf("regions = %+v", prof.Regions)
	}
}

func TestHelpersOnBackground(t *testing.T) {
	c := Background(2)
	xs := []int64{3, 1, 4, 1, 5}
	if got := c.SumInt64(xs); got != 14 {
		t.Fatalf("SumInt64 = %d", got)
	}
	scan := append([]int64(nil), xs...)
	if total := c.ExclusiveSumInt64(scan); total != 14 {
		t.Fatalf("scan total = %d", total)
	}
	if scan[0] != 0 || scan[4] != 9 {
		t.Fatalf("scan = %v", scan)
	}
	zero := []int64{7, 7, 7}
	c.ZeroInt64(zero)
	for _, v := range zero {
		if v != 0 {
			t.Fatalf("ZeroInt64 left %v", zero)
		}
	}
	keep := []int64{1, 0, 1, 0, 1}
	idx := c.PackIndexInto(len(keep), keep, nil, nil)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 2 || idx[2] != 4 {
		t.Fatalf("PackIndexInto = %v", idx)
	}
	src := []int64{10, 20, 30, 40, 50}
	packed := PackInto(c, src, keep, nil, nil)
	if len(packed) != 3 || packed[0] != 10 || packed[1] != 30 || packed[2] != 50 {
		t.Fatalf("PackInto = %v", packed)
	}
}

package exec

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestBackgroundCachedAndImmutable(t *testing.T) {
	a := Background(2)
	b := Background(2)
	if a != b {
		t.Fatal("Background(2) not cached")
	}
	if a.Threads() != 2 || a.Recorder() != nil || a.Err() != nil {
		t.Fatal("Background context misconfigured")
	}
	big := Background(maxBackground + 5)
	if big.Threads() != maxBackground+5 {
		t.Fatalf("Threads = %d", big.Threads())
	}
}

func TestBackgroundLoopsFallBackToSpawn(t *testing.T) {
	c := Background(4)
	var n int64
	c.For(100, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 100 {
		t.Fatalf("For covered %d of 100", n)
	}
	var dyn int64
	c.ForDynamic(100, 7, func(lo, hi int) { atomic.AddInt64(&dyn, int64(hi-lo)) })
	if dyn != 100 {
		t.Fatalf("ForDynamic covered %d of 100", dyn)
	}
}

func TestNewPooledLoops(t *testing.T) {
	c := New(context.Background(), 4, nil)
	defer c.Close()
	var n int64
	for i := 0; i < 100; i++ {
		c.For(997, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	}
	if n != 100*997 {
		t.Fatalf("pooled For covered %d, want %d", n, 100*997)
	}
	times := make([]int64, 4)
	used := c.ForWorkerTimes(1000, times, func(w, lo, hi int) {})
	if used < 1 {
		t.Fatalf("used = %d", used)
	}
}

func TestWithThreadsSharesTeam(t *testing.T) {
	c := New(context.Background(), 2, nil)
	defer c.Close()
	w := c.WithThreads(4) // grows the shared team
	if w.Threads() != 4 {
		t.Fatalf("Threads = %d", w.Threads())
	}
	var n int64
	w.For(1000, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 1000 {
		t.Fatalf("covered %d", n)
	}
	// The original width is untouched.
	if c.Threads() != 2 {
		t.Fatalf("original Threads = %d", c.Threads())
	}
}

func TestWithContextAndRecorder(t *testing.T) {
	rec := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	c := Background(1).WithContext(ctx).WithRecorder(rec)
	if c.Recorder() != rec {
		t.Fatal("recorder not attached")
	}
	if c.Err() != nil {
		t.Fatal("premature cancellation")
	}
	cancel()
	if c.Err() == nil {
		t.Fatal("cancellation not visible")
	}
	if Background(1).Err() != nil {
		t.Fatal("derivation mutated the cached Background context")
	}
}

func TestAcquireReleaseReusesCtx(t *testing.T) {
	a := Acquire(nil, 2, nil)
	a.Release()
	b := Acquire(nil, 2, nil)
	defer b.Release()
	if a != b {
		t.Fatal("Release/Acquire did not reuse the context")
	}
	var n int64
	b.For(100, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 100 {
		t.Fatalf("reused ctx covered %d", n)
	}
}

func TestAcquireGrowsReusedTeam(t *testing.T) {
	a := Acquire(nil, 2, nil)
	a.Release()
	b := Acquire(nil, 6, nil)
	defer b.Release()
	var n int64
	b.For(10000, func(lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 10000 {
		t.Fatalf("grown ctx covered %d", n)
	}
}

func TestAcquireSerialSteadyStateAllocFree(t *testing.T) {
	// Detect at Threads=1 acquires and releases per call; the free-list must
	// make that allocation-free once warm.
	allocs := testing.AllocsPerRun(50, func() {
		c := Acquire(context.Background(), 1, nil)
		if !c.Serial(10) {
			t.Fatal("Threads=1 should be serial")
		}
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("Acquire/Release allocated %.1f times per run", allocs)
	}
}

func TestHelpersOnBackground(t *testing.T) {
	c := Background(2)
	xs := []int64{3, 1, 4, 1, 5}
	if got := c.SumInt64(xs); got != 14 {
		t.Fatalf("SumInt64 = %d", got)
	}
	scan := append([]int64(nil), xs...)
	if total := c.ExclusiveSumInt64(scan); total != 14 {
		t.Fatalf("scan total = %d", total)
	}
	if scan[0] != 0 || scan[4] != 9 {
		t.Fatalf("scan = %v", scan)
	}
	zero := []int64{7, 7, 7}
	c.ZeroInt64(zero)
	for _, v := range zero {
		if v != 0 {
			t.Fatalf("ZeroInt64 left %v", zero)
		}
	}
	keep := []int64{1, 0, 1, 0, 1}
	idx := c.PackIndexInto(len(keep), keep, nil, nil)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 2 || idx[2] != 4 {
		t.Fatalf("PackIndexInto = %v", idx)
	}
	src := []int64{10, 20, 30, 40, 50}
	packed := PackInto(c, src, keep, nil, nil)
	if len(packed) != 3 || packed[0] != 10 || packed[1] != 30 || packed[2] != 50 {
		t.Fatalf("PackInto = %v", packed)
	}
}

// Package exec carries the execution context threaded through every kernel in
// the detection engine. Before this package each kernel signature accumulated
// positional plumbing — a worker count p, an optional *obs.Recorder, sometimes
// both forwarded through three layers — and nothing in the tree could be
// cancelled once started. Ctx bundles the three cross-cutting concerns into
// one value:
//
//   - the worker count and a persistent par.Pool worker team, so the thousands
//     of tiny loops in late contraction phases park-and-wake long-lived
//     goroutines instead of spawning fresh ones per call;
//   - the *obs.Recorder (nil when observability is off), replacing the rec
//     parameter threading;
//   - a context.Context checked at phase and kernel boundaries, so a detection
//     can be aborted by SIGINT or deadline and return its partial hierarchy.
//
// A Ctx is value-derivable: WithThreads/WithContext/WithRecorder return copies
// sharing the same pool, so a harness can acquire one team at the maximum
// width and run narrower sweeps on it. Like the pool it wraps, a Ctx is
// single-submitter: one loop at a time, issued from one goroutine.
package exec

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/par"
)

// Context-pool telemetry: how often detections acquire/release pooled
// contexts and how many fresh worker teams were actually spawned — the
// free-list works when acquires dwarf spawns. Exposed on /metrics/prom
// through the obs registry (obs cannot import exec back, so exec pushes
// accessors in).
var (
	ctxAcquires  atomic.Int64
	ctxReleases  atomic.Int64
	teamsSpawned atomic.Int64
)

func init() {
	obs.RegisterPromCounter("community_exec_ctx_acquires_total",
		"Pooled execution contexts handed out by exec.Acquire.", ctxAcquires.Load)
	obs.RegisterPromCounter("community_exec_ctx_releases_total",
		"Execution contexts returned by exec.Release.", ctxReleases.Load)
	obs.RegisterPromCounter("community_exec_teams_spawned_total",
		"Fresh persistent worker teams spawned (free-list misses and explicit News).", teamsSpawned.Load)
}

// PoolStats reports the context-pool counters (tests and diagnostics).
func PoolStats() (acquires, releases, spawned int64) {
	return ctxAcquires.Load(), ctxReleases.Load(), teamsSpawned.Load()
}

// Ctx is the execution context for one detection (or any kernel invocation):
// worker count, worker team, recorder, and cancellation. The zero value is not
// usable; obtain one from Background, New, or Acquire.
type Ctx struct {
	ctx     context.Context
	rec     *obs.Recorder
	pool    *par.Pool
	threads int
	// part is the engine-installed edge-balanced schedule for the current
	// hierarchy level (nil between levels); kernels consult it through
	// Balanced. immutable marks the cached Background contexts, which are
	// shared process-wide and therefore reject SetPartition.
	part      *par.Partition
	immutable bool
	// dynOnly disables static balanced scheduling: Balanced always reports
	// nil and kernels that build their own schedules consult DynamicOnly to
	// keep their dynamic-chunking paths. An ablation/measurement switch.
	dynOnly bool
}

// maxBackground bounds the cached pool-less contexts handed out by Background.
const maxBackground = 8

var backgrounds [maxBackground + 1]*Ctx

func init() {
	for p := 1; p <= maxBackground; p++ {
		backgrounds[p] = &Ctx{ctx: context.Background(), threads: p, immutable: true}
	}
}

// Background returns a cached, immutable Ctx with p workers, no recorder, no
// pool (loops fall back to spawn-based goroutines), and no cancellation. It is
// the bridge for legacy entry points that predate context threading; callers
// must not mutate or Close it. p <= 0 selects par.DefaultThreads.
func Background(p int) *Ctx {
	if p <= 0 {
		p = par.DefaultThreads()
	}
	if p <= maxBackground {
		return backgrounds[p]
	}
	return &Ctx{ctx: context.Background(), threads: p, immutable: true}
}

// New builds a Ctx with its own persistent worker team when p > 1 (p <= 0
// selects par.DefaultThreads; p == 1 needs no team). A nil ctx means
// context.Background(); a nil rec disables recording. Callers should Close
// the Ctx to release the team promptly, though an abandoned team is reclaimed
// by a finalizer.
func New(ctx context.Context, p int, rec *obs.Recorder) *Ctx {
	if ctx == nil {
		ctx = context.Background()
	}
	if p <= 0 {
		p = par.DefaultThreads()
	}
	c := &Ctx{ctx: ctx, rec: rec, threads: p}
	if p > 1 {
		c.pool = par.NewPool(p)
		teamsSpawned.Add(1)
	}
	return c
}

// freeCtxs is a small free-list of pooled contexts so the Acquire/Release pair
// on the Detect hot path is allocation-free in the steady state: the worker
// team survives between detections parked on its channels.
var (
	freeMu   sync.Mutex
	freeCtxs []*Ctx
)

const maxFree = 4

// Acquire returns a Ctx backed by a persistent worker team, reusing a
// released one when available (growing its team if p asks for more workers
// than it has). Pair with Release. Semantics of ctx, p, and rec match New.
func Acquire(ctx context.Context, p int, rec *obs.Recorder) *Ctx {
	ctxAcquires.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	if p <= 0 {
		p = par.DefaultThreads()
	}
	if p == 1 {
		// No team needed; reuse the free-list anyway so Release has one
		// uniform contract.
		freeMu.Lock()
		if n := len(freeCtxs); n > 0 {
			c := freeCtxs[n-1]
			freeCtxs[n-1] = nil
			freeCtxs = freeCtxs[:n-1]
			freeMu.Unlock()
			c.ctx, c.rec, c.threads = ctx, rec, p
			return c
		}
		freeMu.Unlock()
		return &Ctx{ctx: ctx, rec: rec, threads: p}
	}
	freeMu.Lock()
	if n := len(freeCtxs); n > 0 {
		c := freeCtxs[n-1]
		freeCtxs[n-1] = nil
		freeCtxs = freeCtxs[:n-1]
		freeMu.Unlock()
		c.ctx, c.rec, c.threads = ctx, rec, p
		if c.pool == nil {
			c.pool = par.NewPool(p)
			teamsSpawned.Add(1)
		} else {
			c.pool.Grow(p)
		}
		return c
	}
	freeMu.Unlock()
	return New(ctx, p, rec)
}

// Release returns an Acquired Ctx (and its worker team) to the free-list for
// the next Acquire. The Ctx must not be used afterwards. Contexts beyond the
// free-list's capacity are closed instead.
func (c *Ctx) Release() {
	if c == nil {
		return
	}
	ctxReleases.Add(1)
	c.ctx = nil
	c.rec = nil
	c.part = nil
	c.dynOnly = false
	freeMu.Lock()
	if len(freeCtxs) < maxFree {
		freeCtxs = append(freeCtxs, c)
		freeMu.Unlock()
		return
	}
	freeMu.Unlock()
	c.Close()
}

// Close releases the worker team. Only contexts from New (or Acquire, when
// bypassing Release) need closing; Background contexts have no team.
func (c *Ctx) Close() {
	if c == nil {
		return
	}
	c.pool.Close()
	c.pool = nil
}

// WithThreads returns a copy of c running loops with t workers (t <= 0 selects
// par.DefaultThreads), sharing c's team, recorder, and context. The team grows
// if t exceeds its capacity. The copy and c must not submit loops
// concurrently — they share one team.
func (c *Ctx) WithThreads(t int) *Ctx {
	if t <= 0 {
		t = par.DefaultThreads()
	}
	d := *c
	d.threads = t
	d.immutable = false
	if d.pool != nil {
		d.pool.Grow(t)
	} else if t > 1 {
		d.pool = par.NewPool(t)
		teamsSpawned.Add(1)
	}
	return &d
}

// WithContext returns a copy of c carrying ctx for cancellation, sharing the
// team and recorder.
func (c *Ctx) WithContext(ctx context.Context) *Ctx {
	if ctx == nil {
		ctx = context.Background()
	}
	d := *c
	d.ctx = ctx
	d.immutable = false
	return &d
}

// WithRecorder returns a copy of c reporting into rec (nil disables
// recording), sharing the team and context.
func (c *Ctx) WithRecorder(rec *obs.Recorder) *Ctx {
	d := *c
	d.rec = rec
	d.immutable = false
	return &d
}

// Threads is the worker count kernels should pass to their loops.
func (c *Ctx) Threads() int { return c.threads }

// Recorder is the observability sink, nil when recording is off.
func (c *Ctx) Recorder() *obs.Recorder { return c.rec }

// Context is the cancellation context; never nil.
func (c *Ctx) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Err reports the context's cancellation state without allocating; kernels
// check it at iteration boundaries.
func (c *Ctx) Err() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// Serial reports whether a loop over n items should run inline on the caller:
// one worker, or a problem too small to split. Kernels use it to keep their
// closure-free serial fast paths.
func (c *Ctx) Serial(n int) bool { return par.Serial(c.threads, n) }

// Workers is the worker count a striped loop over n items will use.
func (c *Ctx) Workers(n int) int { return par.Workers(c.threads, n) }

// For runs body over [0, n) in static contiguous chunks on the team.
func (c *Ctx) For(n int, body func(lo, hi int)) { c.pool.For(c.threads, n, body) }

// ForDynamic runs body over [0, n) with grain-sized chunks claimed from a
// shared cursor; grain <= 0 selects the default heuristic.
func (c *Ctx) ForDynamic(n, grain int, body func(lo, hi int)) {
	c.pool.ForDynamic(c.threads, n, grain, body)
}

// ForWorker runs body over [0, n) in static chunks, passing the worker index;
// it reports the worker count used.
func (c *Ctx) ForWorker(n int, body func(worker, lo, hi int)) int {
	return c.pool.ForWorker(c.threads, n, body)
}

// ForWorkerTimes is ForWorker plus per-worker busy-nanosecond accumulation
// into times.
func (c *Ctx) ForWorkerTimes(n int, times []int64, body func(worker, lo, hi int)) int {
	return c.pool.ForWorkerTimes(c.threads, n, times, body)
}

// ZeroInt64 clears xs on the team.
func (c *Ctx) ZeroInt64(xs []int64) { c.pool.ZeroInt64(c.threads, xs) }

// MergeStripes column-sums the workers×k stripe matrix into dst on the team.
func (c *Ctx) MergeStripes(stripes []int64, workers, k int, dst []int64) {
	c.pool.MergeStripes(c.threads, stripes, workers, k, dst)
}

// StripeOffsets turns merged counts into per-worker scatter offsets.
func (c *Ctx) StripeOffsets(stripes []int64, workers, k int, totals []int64) {
	c.pool.StripeOffsets(c.threads, stripes, workers, k, totals)
}

// ExclusiveSumInt64 scans xs in place, returning the total.
func (c *Ctx) ExclusiveSumInt64(xs []int64) int64 {
	return c.pool.ExclusiveSumInt64(c.threads, xs)
}

// SumInt64 reduces xs on the team.
func (c *Ctx) SumInt64(xs []int64) int64 { return c.pool.SumInt64(c.threads, xs) }

// PackIndexInto compacts the indices whose keep flag is nonzero, reusing slots
// and dst as scratch.
func (c *Ctx) PackIndexInto(n int, keep, slots, dst []int64) []int64 {
	return c.pool.PackIndexInto(c.threads, n, keep, slots, dst)
}

// PackInto compacts src's kept elements into dst (generic, so a free function
// rather than a method).
func PackInto[T any](c *Ctx, src []T, keep, slots []int64, dst []T) []T {
	return par.PackIntoWith(c.pool, c.threads, src, keep, slots, dst)
}

// SetPartition installs pt as the edge-balanced schedule kernels may adopt
// through Balanced, or clears it with nil. The engine calls it once per
// hierarchy level; pt must stay valid (and unmodified) until cleared. The
// cached Background contexts are shared process-wide, so on them
// SetPartition is a no-op and kernels keep their dynamic fallback.
func (c *Ctx) SetPartition(pt *par.Partition) {
	if c.immutable {
		return
	}
	c.part = pt
}

// Partition returns the installed level partition, nil when absent.
func (c *Ctx) Partition() *par.Partition { return c.part }

// SetDynamicOnly disables (on=true) or restores (on=false) static balanced
// scheduling on this context: while set, Balanced reports nil and kernels
// that build private schedules fall back to dynamic chunking wherever the
// sweep admits it. Contraction's histogram stripes require a static
// schedule and are unaffected. Like SetPartition, a no-op on the shared
// Background contexts; Release resets the flag.
func (c *Ctx) SetDynamicOnly(on bool) {
	if c.immutable {
		return
	}
	c.dynOnly = on
}

// DynamicOnly reports whether static balanced scheduling is disabled.
func (c *Ctx) DynamicOnly() bool { return c.dynOnly }

// Balanced returns the installed partition when it matches a sweep over n
// bucketed items carrying `edges` total edges and was built for a parallel
// worker count; otherwise nil and the caller should fall back to dynamic
// scheduling. The weight check (edges plus one unit per item) rejects
// partitions built for a different level or graph, so a stale install can
// never misdirect a sweep.
func (c *Ctx) Balanced(n int, edges int64) *par.Partition {
	pt := c.part
	if c.dynOnly {
		return nil
	}
	if pt == nil || pt.Workers() < 2 || pt.Items() != n ||
		pt.TotalWeight() != edges+int64(n) {
		return nil
	}
	return pt
}

// BuildBuckets (re)builds pt as the edge-balanced schedule for n buckets
// with edge runs start[x]..end[x], on the team.
func (c *Ctx) BuildBuckets(pt *par.Partition, n int, start, end []int64) {
	pt.BuildBuckets(c.pool, c.threads, n, start, end)
}

// BuildIndexed (re)builds pt over an index list, item i weighing
// end[list[i]]-start[list[i]]+1, on the team. Only item-aligned ranges are
// produced.
func (c *Ctx) BuildIndexed(pt *par.Partition, list, start, end []int64) {
	pt.BuildIndexed(c.pool, c.threads, list, start, end)
}

// BuildWeights (re)builds pt over n items with the given extra weights (each
// item costs weight[x]+1), on the team. Only item-aligned ranges are
// produced.
func (c *Ctx) BuildWeights(pt *par.Partition, n int, weight []int64) {
	pt.BuildWeights(c.pool, c.threads, n, weight)
}

// ForRanges runs body once per non-empty item-aligned range of pt,
// distributing the ranges over the team and folding per-worker busy times
// into the recorder under region. It is the static-balanced counterpart of
// ForDynamic for kernels that must not split an item between workers.
func (c *Ctx) ForRanges(region string, pt *par.Partition, body func(lo, hi int)) {
	w := pt.Workers()
	times := c.rec.WorkerTimes(w)
	c.pool.ForWorkerTimes(c.threads, w, times, func(_, jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			lo, hi := pt.Range(j)
			if lo < hi {
				body(lo, hi)
			}
		}
	})
	c.rec.FoldWorkerTimes(region, times)
}

// ForSpans runs body once per non-empty edge-exact span of pt, distributing
// the spans over the team and folding per-worker busy times into the
// recorder under region. body receives the span's index j in [0,
// pt.Workers()) — stable across sweeps over the same partition, so striped
// kernels (contraction's count/scatter replay) can key private state by it
// — and the span itself. Spans may cover partial buckets at their ends, so
// only edge-parallel sweeps that tolerate hub splitting may use it.
func (c *Ctx) ForSpans(region string, pt *par.Partition, body func(j int, sp par.Span)) {
	w := pt.Workers()
	times := c.rec.WorkerTimes(w)
	c.pool.ForWorkerTimes(c.threads, w, times, func(_, jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			sp := pt.Span(j)
			if sp.LoV < sp.HiV {
				body(j, sp)
			}
		}
	})
	c.rec.FoldWorkerTimes(region, times)
}

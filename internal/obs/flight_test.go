package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNilFlightRecorderIsSafe: the disabled ring accepts every call.
func TestNilFlightRecorderIsSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightSpan, "kernel", "score", "", 1)
	f.Reset()
	if f.Len() != 0 || f.Total() != 0 || f.Dropped() != 0 || f.Events() != nil {
		t.Fatal("nil flight recorder holds state")
	}
}

// TestFlightRingWraps: past capacity the ring keeps only the newest window,
// in sequence order.
func TestFlightRingWraps(t *testing.T) {
	var f FlightRecorder
	const total = flightSlots + 500
	for i := 0; i < total; i++ {
		f.Record(FlightMark, "test", "tick", "", int64(i))
	}
	if f.Len() != flightSlots {
		t.Fatalf("Len = %d, want capacity %d", f.Len(), flightSlots)
	}
	if f.Total() != total {
		t.Fatalf("Total = %d, want %d", f.Total(), total)
	}
	evs := f.Events()
	if len(evs) != flightSlots {
		t.Fatalf("Events len = %d, want %d", len(evs), flightSlots)
	}
	for i, ev := range evs {
		if want := int64(total - flightSlots + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestFlightConcurrentWriters hammers the ring from many goroutines while a
// reader snapshots. Under -race this pins the slot-lock discipline; the
// accounting check is that nothing is both dropped and recorded.
func TestFlightConcurrentWriters(t *testing.T) {
	var f FlightRecorder
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(FlightSpan, "worker", "op", "", int64(i))
				if i%64 == 0 {
					f.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", f.Total(), workers*per)
	}
	evs := f.Events()
	// A drop leaves at most one hole in the final window, so the snapshot is
	// at least capacity minus total drops.
	if int64(len(evs)) < flightSlots-f.Dropped() {
		t.Fatalf("snapshot lost too many events: %d kept, %d dropped", len(evs), f.Dropped())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not monotone in Seq: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestFlightDumpJSON: the dump is valid JSON carrying the ring plus process
// context, and includes live recorder and ledger state when attached.
func TestFlightDumpJSON(t *testing.T) {
	Flight().Reset()
	defer Flight().Reset()
	r := SetLive(New())
	defer SetLive(nil)
	led := SetLiveLedger(NewLedger())
	defer SetLiveLedger(nil)
	r.Add(CtrMatchRounds, 3)
	r.ObserveLatency(LatDetect, 1<<21)
	led.Record(LevelStats{Level: 0, Vertices: 100, OutVertices: 60, Edges: 400, Metric: 0.3})
	Flight().Record(FlightSpan, "kernel", "score", "", 42)

	var buf bytes.Buffer
	if err := Flight().WriteDump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Reason != "test" || d.PID != os.Getpid() || d.GoVersion == "" {
		t.Fatalf("dump header wrong: %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Name != "score" {
		t.Fatalf("dump events = %+v, want the one span", d.Events)
	}
	if d.Counters["match_rounds"] != 3 {
		t.Fatalf("dump counters = %v, want match_rounds=3", d.Counters)
	}
	if len(d.Latencies) != 1 || d.Latencies[0].Class != "detect" {
		t.Fatalf("dump latencies = %+v", d.Latencies)
	}
	if d.Converge == nil || len(d.Converge.Levels) != 1 {
		t.Fatalf("dump convergence = %+v, want one level", d.Converge)
	}
	if d.Runtime == nil || d.Runtime.Goroutines <= 0 {
		t.Fatalf("dump runtime sample missing: %+v", d.Runtime)
	}
}

// TestWriteFlightArtifact: the black-box file lands under the directory,
// named by pid, and parses back.
func TestWriteFlightArtifact(t *testing.T) {
	Flight().Reset()
	defer Flight().Reset()
	Flight().Record(FlightWarning, "ledger", "metric-decrease", "test detail", 0)
	dir := t.TempDir()
	path, err := WriteFlightArtifact(dir, "unit")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasPrefix(filepath.Base(path), "flight_") {
		t.Fatalf("artifact path %q not under %q with flight_ prefix", path, dir)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if d.Reason != "unit" || len(d.Events) != 1 || d.Events[0].Detail != "test detail" {
		t.Fatalf("artifact content wrong: %+v", d)
	}
}

// TestLedgerWarningsReachFlight: ledger anomalies mirror into the process
// ring (the black box must show what the ledger flagged before a crash).
func TestLedgerWarningsReachFlight(t *testing.T) {
	Flight().Reset()
	defer Flight().Reset()
	l := NewLedger()
	l.Record(LevelStats{Level: 0, Vertices: 10, OutVertices: 8, Metric: 0.5})
	l.Record(LevelStats{Level: 1, Vertices: 8, OutVertices: 6, Metric: 0.2}) // decrease
	evs := Flight().Events()
	if len(evs) != 1 || evs[0].Kind != FlightWarning || evs[0].Name != WarnMetricDecrease {
		t.Fatalf("flight events = %+v, want one mirrored %s warning", evs, WarnMetricDecrease)
	}
}

// TestFlightOnSIGQUITStopIdempotent: installing and stopping the handler is
// clean, and stop may be called twice (both CLIs defer it alongside other
// cleanups).
func TestFlightOnSIGQUITStopIdempotent(t *testing.T) {
	stop := FlightOnSIGQUIT(t.TempDir())
	stop()
	stop()
}

package obs_test

// Live-scrape smoke test: run a real detection with the recorder and ledger
// attached to the metrics endpoint, then scrape /metrics/prom over HTTP the
// way a Prometheus server would. This is the end-to-end check behind the CI
// telemetry-smoke step; the in-package tests pin format details, this one
// pins the wiring (Serve registers the live pointers, the handler renders
// them, real engine counters and latency classes show up).

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

func TestLivePrometheusScrape(t *testing.T) {
	rec := obs.New()
	rec.SetFlight(obs.Flight())
	led := obs.NewLedger()
	srv, err := obs.Serve("127.0.0.1:0", rec, led)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer obs.SetLive(nil)
	defer obs.SetLiveLedger(nil)

	g := gen.CliqueChain(16, 8)
	if _, err := core.Detect(g, core.Options{Threads: 2, Recorder: rec, Ledger: led}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics/prom", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want exposition format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if len(out) == 0 {
		t.Fatal("empty scrape")
	}
	for _, want := range []string{
		"# TYPE community_engine_events_total counter",
		"# TYPE community_go_goroutines gauge",
		"# TYPE community_latency_seconds histogram",
		`community_engine_events_total{counter="match_rounds"}`,
		`community_latency_seconds_bucket{class="detect",le=`,
		`community_latency_seconds_count{class="level"}`,
		"community_convergence_levels",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The engine really ran: at least one matching round was counted and the
	// detect histogram saw exactly one observation.
	if rec.Counter(obs.CtrMatchRounds) == 0 {
		t.Fatal("no matching rounds recorded")
	}
	if n := rec.LatencyHist(obs.LatDetect).Count(); n != 1 {
		t.Fatalf("detect latency count = %d, want 1", n)
	}

	// The flight endpoint serves a parseable dump of the same run.
	fresp, err := http.Get(fmt.Sprintf("http://%s/debug/flight", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	fbody, err := io.ReadAll(fresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fbody), `"reason": "http"`) {
		t.Fatalf("flight dump missing reason: %s", fbody[:min(len(fbody), 200)])
	}
}

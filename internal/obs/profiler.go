package obs

// Triggered continuous profiling. The Profiler archives pprof CPU and heap
// profiles under a bounded directory ring: on demand (an operator asking for
// a window), automatically when the run doctor flags an anomalous run, and
// from the ledger's warning path mid-run. It follows the package's disabled
// discipline — a nil *Profiler no-ops everywhere at zero allocations — and
// never blocks the paths it observes: anomaly-triggered CPU windows run on
// their own goroutine, captures are rate-limited by a single CAS, and a CPU
// window that loses the process-global StartCPUProfile race (only one may
// run, and /debug/pprof/profile may hold it) is skipped, not waited for.
//
// This file is the one sanctioned home for runtime/pprof profile writes:
// the vet-obs lint forbids Start/Stop/WriteHeapProfile calls outside
// internal/obs, so every archived profile flows through here (or the
// explicit /debug/pprof handlers) and lands cross-linked in the manifest
// and flight-recorder artifacts.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Profiler defaults.
const (
	// DefaultProfileDir is where archived profiles land, next to the
	// manifest ledgers and flight dumps.
	DefaultProfileDir = "results/profiles"
	// DefaultCPUWindow is the CPU capture length for triggered windows —
	// long enough to catch a few contraction levels, short enough that the
	// anomaly's tail is still in frame.
	DefaultCPUWindow = 2 * time.Second
	// DefaultProfileMinInterval rate-limits captures: a degenerating run
	// flags every level, and one profile per interval is evidence enough.
	DefaultProfileMinInterval = 30 * time.Second
	// DefaultProfileKeep bounds the archive ring per profiler: the oldest
	// file is pruned when a new capture would exceed it.
	DefaultProfileKeep = 16
)

// ProfilerOptions configures NewProfiler; zero fields take the defaults
// above.
type ProfilerOptions struct {
	Dir         string
	CPUWindow   time.Duration
	MinInterval time.Duration
	Keep        int
}

// Profiler captures and archives pprof profiles. A nil *Profiler is the
// disabled profiler — every method is a nil-check no-op.
type Profiler struct {
	dir    string
	window time.Duration
	minGap time.Duration
	keep   int

	lastNS  atomic.Int64 // NowNS of the last accepted capture (rate limit)
	cpuBusy atomic.Bool  // StartCPUProfile is process-global; hold at most one

	mu       sync.Mutex
	last     string   // most recent archived path
	archived []string // this profiler's files, oldest first, pruned to keep
}

// Process-wide capture bookkeeping, readable without a profiler handle: the
// flight-recorder dump embeds the most recent archived profile path, and the
// Prometheus exposition counts captures.
var (
	lastProfilePath atomic.Pointer[string]
	profilesTotal   atomic.Int64
)

// LastProfile returns the most recently archived profile path from any
// profiler in the process, "" when none was captured.
func LastProfile() string {
	if p := lastProfilePath.Load(); p != nil {
		return *p
	}
	return ""
}

// ProfilesCaptured reports how many profiles the process has archived.
func ProfilesCaptured() int64 { return profilesTotal.Load() }

// NewProfiler returns an enabled profiler archiving under o.Dir.
func NewProfiler(o ProfilerOptions) *Profiler {
	if o.Dir == "" {
		o.Dir = DefaultProfileDir
	}
	if o.CPUWindow <= 0 {
		o.CPUWindow = DefaultCPUWindow
	}
	if o.MinInterval < 0 {
		o.MinInterval = 0
	} else if o.MinInterval == 0 {
		o.MinInterval = DefaultProfileMinInterval
	}
	if o.Keep <= 0 {
		o.Keep = DefaultProfileKeep
	}
	return &Profiler{dir: o.Dir, window: o.CPUWindow, minGap: o.MinInterval, keep: o.Keep}
}

// Enabled reports whether p captures anything; false for the nil profiler.
func (p *Profiler) Enabled() bool { return p != nil }

// Last returns p's most recently archived profile path, "" when none.
func (p *Profiler) Last() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

// allow is the capture rate limit: one winner per minGap window, decided by
// a single CAS so the warning path never takes a lock.
func (p *Profiler) allow() bool {
	now := NowNS()
	last := p.lastNS.Load()
	if last != 0 && now-last < p.minGap.Nanoseconds() {
		return false
	}
	return p.lastNS.CompareAndSwap(last, now)
}

// CaptureHeap archives a heap profile immediately (the write is a GC-sized
// pause, not a window) and returns its path. Not rate-limited: explicit
// captures are the operator's call.
func (p *Profiler) CaptureHeap(reason string) (string, error) {
	if p == nil {
		return "", nil
	}
	return p.capture("heap", reason, func(f *os.File) error {
		return pprof.WriteHeapProfile(f)
	})
}

// CaptureCPU archives a CPU profile of duration d (p's default window when
// d <= 0), blocking for the window. Only one CPU profile may run in the
// process — a second concurrent capture (or one racing /debug/pprof/profile)
// fails fast with the StartCPUProfile error instead of queueing.
func (p *Profiler) CaptureCPU(reason string, d time.Duration) (string, error) {
	if p == nil {
		return "", nil
	}
	if d <= 0 {
		d = p.window
	}
	if !p.cpuBusy.CompareAndSwap(false, true) {
		return "", fmt.Errorf("obs: a CPU profile capture is already running")
	}
	defer p.cpuBusy.Store(false)
	return p.capture("cpu", reason, func(f *os.File) error {
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		time.Sleep(d)
		pprof.StopCPUProfile()
		return nil
	})
}

// TriggerCPU requests an asynchronous rate-limited CPU window — the ledger's
// warning hook, cheap enough for mid-run paths: a CAS, and on the winning
// call one goroutine spawn. Reports whether a capture was started.
func (p *Profiler) TriggerCPU(reason string) bool {
	if p == nil || !p.allow() {
		return false
	}
	go func() {
		if _, err := p.CaptureCPU(reason, 0); err != nil {
			Flight().Record(FlightLog, "profiler", "cpu-capture-failed", err.Error(), 0)
		}
	}()
	return true
}

// TriggerAnomaly is the doctor's capture hook for an anomalous run: it
// archives a heap profile immediately (the run just ended; its allocations
// are the evidence still standing) and starts an asynchronous CPU window for
// the aftermath. Rate-limited as one capture event; returns the heap profile
// path for cross-linking, "" when rate-limited, disabled, or failed.
func (p *Profiler) TriggerAnomaly(reason string) string {
	if p == nil || !p.allow() {
		return ""
	}
	path, err := p.CaptureHeap(reason)
	if err != nil {
		Flight().Record(FlightLog, "profiler", "heap-capture-failed", err.Error(), 0)
		return ""
	}
	go func() {
		if _, err := p.CaptureCPU(reason, 0); err != nil {
			Flight().Record(FlightLog, "profiler", "cpu-capture-failed", err.Error(), 0)
		}
	}()
	return path
}

// capture writes one profile through fill, archives it in the ring, prunes
// past keep, and publishes the path for the flight dump and metrics.
func (p *Profiler) capture(kind, reason string, fill func(*os.File) error) (string, error) {
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(p.dir, fmt.Sprintf("%s_%d_%d.pprof", kind, os.Getpid(), time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	ferr := fill(f)
	cerr := f.Close()
	if ferr != nil {
		os.Remove(path)
		return "", ferr
	}
	if cerr != nil {
		return "", cerr
	}

	p.mu.Lock()
	p.last = path
	p.archived = append(p.archived, path)
	var evict string
	if len(p.archived) > p.keep {
		evict = p.archived[0]
		p.archived = append(p.archived[:0], p.archived[1:]...)
	}
	p.mu.Unlock()
	if evict != "" {
		os.Remove(evict)
	}

	lastProfilePath.Store(&path)
	profilesTotal.Add(1)
	Flight().Record(FlightMark, "profiler", kind+"-profile", reason+" -> "+path, 0)
	return path, nil
}

package obs

// Structured-logging setup shared by the CLIs: one place that parses the
// -log.level/-log.format flags into a slog handler and tees every record
// into the process flight recorder, so the black-box dump carries the last
// log lines next to the last spans. slog (not raw stderr writes) is the
// sanctioned diagnostic path for cmd/ and the harness — the vet-obs lint
// enforces it.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a logger writing to w. level is one of
// debug|info|warn|error (case-insensitive); format is text|json.
func NewLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(&flightHandler{next: h, flight: Flight()}), nil
}

// flightHandler tees log records into the flight ring before delegating.
// Only the message and level are mirrored (attrs would need rendering, and
// the ring is for event sequence, not full payloads).
type flightHandler struct {
	next   slog.Handler
	flight *FlightRecorder
}

func (h *flightHandler) Enabled(ctx context.Context, lv slog.Level) bool {
	return h.next.Enabled(ctx, lv)
}

func (h *flightHandler) Handle(ctx context.Context, rec slog.Record) error {
	h.flight.Record(FlightLog, strings.ToLower(rec.Level.String()), rec.Message, "", 0)
	return h.next.Handle(ctx, rec)
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &flightHandler{next: h.next.WithAttrs(attrs), flight: h.flight}
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	return &flightHandler{next: h.next.WithGroup(name), flight: h.flight}
}

package obs

// Doctor verdict types. The baseline learning and assessment logic lives in
// internal/doctor (it reads archived report.Manifest lines, and report
// imports obs — so the verdict *types* must sit here, below report, for the
// manifest to embed one). obs owns what the rest of the observability stack
// needs at runtime: the struct serialized into manifests and flight dumps,
// the process-wide "live verdict" the Prometheus endpoint exposes as
// community_doctor_* gauges, and the WarnDrift ledger code drift findings
// are surfaced under.

import "sync/atomic"

// Verdict statuses.
const (
	// VerdictOK: the run is statistically indistinguishable from its
	// baseline.
	VerdictOK = "ok"
	// VerdictAnomalous: at least one metric drifted past the z-score and
	// relative-change thresholds in the regressing direction.
	VerdictAnomalous = "anomalous"
	// VerdictNoBaseline: fewer archived runs under this key than the
	// minimum the robust statistics need; nothing was assessed.
	VerdictNoBaseline = "no-baseline"
)

// DriftFinding is one metric's drift against the learned baseline.
type DriftFinding struct {
	// Metric names what drifted: "total_sec", "kernel_seconds/<kernel>",
	// "latency_p99/<class>", "levels", "modularity", "alloc_bytes".
	Metric string `json:"metric"`
	// Value is this run's observation; Median and MAD describe the
	// baseline distribution (median and median absolute deviation).
	Value  float64 `json:"value"`
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	// Z is the robust z-score: (Value − Median) / max(1.4826·MAD, floor).
	Z float64 `json:"z"`
	// Ratio is Value/Median (0 when the median is 0).
	Ratio float64 `json:"ratio"`
	// Regression is true when the drift points the bad way for this metric
	// (slower, more allocation, lower modularity). A large |Z| the good way
	// is still surfaced — an unexplained 3× speedup deserves a look — but
	// does not fail a gate.
	Regression bool `json:"regression"`
}

// Verdict is one run's end-of-run doctor assessment, embedded in the
// appended manifest, the flight-recorder dump, and the live Prometheus
// gauges.
type Verdict struct {
	Status string `json:"status"` // ok | anomalous | no-baseline
	// Key is the baseline bucket the run was compared within
	// (graph×engine×threads×shards, rendered by internal/doctor).
	Key string `json:"key,omitempty"`
	// BaselineRuns is how many archived runs the baseline was learned from.
	BaselineRuns int `json:"baseline_runs"`
	// MaxAbsZ is the largest |z| across all assessed metrics (0 with no
	// baseline).
	MaxAbsZ  float64        `json:"max_abs_z,omitempty"`
	Findings []DriftFinding `json:"findings,omitempty"`
	// ProfileRef is the pprof profile archived for this run when the
	// anomaly triggered a capture — the cross-link from manifest to
	// results/profiles/.
	ProfileRef string `json:"profile_ref,omitempty"`
}

// Anomalous reports whether the verdict flags the run. Nil-safe: no verdict
// is not an anomaly.
func (v *Verdict) Anomalous() bool { return v != nil && v.Status == VerdictAnomalous }

// Regressions counts findings that drifted in the regressing direction.
func (v *Verdict) Regressions() int {
	if v == nil {
		return 0
	}
	n := 0
	for _, f := range v.Findings {
		if f.Regression {
			n++
		}
	}
	return n
}

// liveVerdict is the most recent run's verdict, published for the
// Prometheus gauges and the flight-recorder dump (same pattern as
// liveRec/liveLedger: process-wide, atomically swapped per run).
var liveVerdict atomic.Pointer[Verdict]

// SetLiveVerdict publishes v as the process's current doctor verdict. Pass
// nil to clear. Returns v for chaining.
func SetLiveVerdict(v *Verdict) *Verdict {
	liveVerdict.Store(v)
	return v
}

// LiveVerdict returns the most recently published verdict, nil when no run
// has been assessed.
func LiveVerdict() *Verdict { return liveVerdict.Load() }

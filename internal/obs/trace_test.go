package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceDoc mirrors the Chrome trace_event "JSON Object Format" WriteTrace
// emits.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// traceRecorder records two phases' worth of spans across every category.
func traceRecorder() *Recorder {
	r := New()
	for phase := 0; phase < 2; phase++ {
		ph := r.BeginPhase(phase, 100, 400)
		k := r.Begin(CatKernel, "score", phase)
		k.End()
		m := r.Begin(CatMatch, "propose", phase)
		m.EndArgs("pairs", 7, "passes", 2)
		c := r.Begin(CatContract, "dedup", phase)
		c.End()
		ph.End()
	}
	return r
}

func writeTraceDoc(t *testing.T, r *Recorder) (string, traceDoc) {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return buf.String(), doc
}

func TestWriteTraceValidJSON(t *testing.T) {
	_, doc := writeTraceDoc(t, traceRecorder())
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("negative interval: %+v", ev)
			}
			if _, ok := ev.Args["phase"]; !ok {
				t.Fatalf("X event missing phase arg: %+v", ev)
			}
		default:
			t.Fatalf("unexpected ph %q in %+v", ev.Ph, ev)
		}
	}
	if meta != 4 {
		t.Fatalf("%d thread_name metadata events, want 4 tracks", meta)
	}
	// 2 phases × (phase + kernel + match + contract) spans.
	if complete != 8 {
		t.Fatalf("%d complete events, want 8", complete)
	}
	// The EndArgs values survive into args.
	var foundArgs bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "propose" && ev.Args["pairs"] == float64(7) && ev.Args["passes"] == float64(2) {
			foundArgs = true
		}
	}
	if !foundArgs {
		t.Fatal("span args missing from trace events")
	}
}

func TestWriteTraceMonotonicPerThread(t *testing.T) {
	_, doc := writeTraceDoc(t, traceRecorder())
	last := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < last[ev.Tid] {
			t.Fatalf("track %d goes backwards: ts %.3f after %.3f", ev.Tid, ev.Ts, last[ev.Tid])
		}
		last[ev.Tid] = ev.Ts
	}
	if len(last) == 0 {
		t.Fatal("no complete events")
	}
}

func TestWriteTraceStableAcrossFlushes(t *testing.T) {
	r := traceRecorder()
	first, doc1 := writeTraceDoc(t, r)
	second, doc2 := writeTraceDoc(t, r)
	// WriteTrace is a snapshot, not a drain: flushing twice yields the same
	// bytes, and every event keeps its pid/tid identity.
	if first != second {
		t.Fatal("second flush differs from first")
	}
	for i := range doc1.TraceEvents {
		a, b := doc1.TraceEvents[i], doc2.TraceEvents[i]
		if a.Pid != 1 || a.Pid != b.Pid || a.Tid != b.Tid {
			t.Fatalf("event %d changed identity: %+v vs %+v", i, a, b)
		}
	}
	// Category → tid mapping is fixed: phase=1 kernel=2 match=3 contract=4.
	want := map[string]int{CatPhase: 1, CatKernel: 2, CatMatch: 3, CatContract: 4}
	for _, ev := range doc1.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if tid, ok := want[ev.Cat]; ok && ev.Tid != tid {
			t.Fatalf("category %q on track %d, want %d", ev.Cat, ev.Tid, tid)
		}
	}
}

func TestWriteTraceNilAndEmpty(t *testing.T) {
	var nilRec *Recorder
	var buf bytes.Buffer
	if err := nilRec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil recorder wrote %q", buf.String())
	}
	// An enabled recorder with no spans still writes a loadable document.
	_, doc := writeTraceDoc(t, New())
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			t.Fatalf("empty recorder emitted non-metadata event %+v", ev)
		}
	}
}

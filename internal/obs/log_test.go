package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNewLoggerParsesFlags: accepted level/format spellings build, bad ones
// error before any logging starts.
func TestNewLoggerParsesFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, ok := range []struct{ level, format string }{
		{"debug", "text"}, {"info", "json"}, {"WARN", "TEXT"},
		{"warning", "json"}, {"error", "text"}, {"", ""},
	} {
		if _, err := NewLogger(ok.level, ok.format, &buf); err != nil {
			t.Errorf("NewLogger(%q, %q) = %v, want ok", ok.level, ok.format, err)
		}
	}
	for _, bad := range []struct{ level, format string }{
		{"verbose", "text"}, {"info", "xml"},
	} {
		if _, err := NewLogger(bad.level, bad.format, &buf); err == nil {
			t.Errorf("NewLogger(%q, %q) accepted bad flag", bad.level, bad.format)
		}
	}
}

// TestLoggerLevelsAndJSON: the level gate filters, and json format emits
// parseable records.
func TestLoggerLevelsAndJSON(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger("warn", "json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible", "k", 1)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d records, want the warn only:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("json record unparseable: %v", err)
	}
	if rec["msg"] != "visible" || rec["k"] != float64(1) {
		t.Fatalf("record = %v", rec)
	}
}

// TestLoggerTeesIntoFlight: every emitted record mirrors into the flight
// ring (message + level only), including through WithAttrs/WithGroup
// derivatives.
func TestLoggerTeesIntoFlight(t *testing.T) {
	Flight().Reset()
	defer Flight().Reset()
	var buf bytes.Buffer
	log, err := NewLogger("info", "text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("plain message")
	log.With("job", "x").WithGroup("g").Error("derived message")
	log.Debug("below the gate") // filtered: must not reach the ring
	evs := Flight().Events()
	if len(evs) != 2 {
		t.Fatalf("flight holds %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Kind != FlightLog || evs[0].Cat != "info" || evs[0].Name != "plain message" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Cat != "error" || evs[1].Name != "derived message" {
		t.Fatalf("second event = %+v", evs[1])
	}
}

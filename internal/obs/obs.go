// Package obs is the kernel-level instrumentation layer for the detection
// engine. The paper's evaluation (§IV–V) is built on knowing where time goes
// inside the agglomerative loop — scoring, matching rounds, and bucket-sort
// contraction behave very differently across platforms — and this package
// gives the Go reproduction the same visibility: span timelines per phase
// and kernel, counters fed by the hot loops, bucket-occupancy histograms,
// per-region worker imbalance, and pprof labels that segment CPU profiles by
// pipeline stage.
//
// The central type is Recorder. A nil *Recorder is the disabled recorder:
// every method is a nil-check no-op (a predictable branch, no interface
// dispatch, no allocation), so the engine threads one pointer through the
// hot layers and pays nothing when observability is off — verified by the
// package's alloc/overhead benchmarks. Hot loops never call the recorder per
// event; they accumulate into worker-private stripes or chunk-local counters
// and flush at region boundaries (see Hot and WorkerTimes), mirroring the
// par.MergeStripes discipline the contraction kernel uses for its
// histograms.
//
// Three sinks consume a Recorder: Export (structured per-phase profile
// attached to internal/report JSON), WriteTrace (Chrome trace_event JSON for
// chrome://tracing or Perfetto), and the expvar-based live HTTP endpoint in
// expvar.go.
package obs

import (
	"context"
	"math/bits"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one of the fixed engine counters. The set is closed so
// hot loops can address counters by array index instead of hashing names.
type Counter int

const (
	// CtrMatchRounds counts matching passes (worklist or edge-sweep rounds).
	CtrMatchRounds Counter = iota
	// CtrMatchActive sums the worklist length over all passes: total vertex
	// visits the matching performed.
	CtrMatchActive
	// CtrMatchRequeued counts rematch attempts: vertices whose claim failed
	// but that stayed on the worklist for another pass.
	CtrMatchRequeued
	// CtrMatchClaims counts successful pair claims.
	CtrMatchClaims
	// CtrMatchConflicts counts claims lost to a concurrent claim — the
	// lock-protected analogue of a CAS retry.
	CtrMatchConflicts
	// CtrScoreMasked counts edges masked by the MaxCommunitySize cap during
	// the fused scoring sweep.
	CtrScoreMasked
	// CtrContractEdgesIn counts edges entering contraction.
	CtrContractEdgesIn
	// CtrContractSurvived counts cross edges surviving collapse (before
	// in-bucket deduplication).
	CtrContractSurvived
	// CtrContractEdgesOut counts edges in the contracted graph (after
	// deduplication).
	CtrContractEdgesOut
	// CtrContractSortNS and CtrContractAccumNS split the dedup step of the
	// bucket kernel into its sort and accumulate halves (nanoseconds).
	CtrContractSortNS
	CtrContractAccumNS

	// NumCounters is the size of a counter block.
	NumCounters
)

var counterNames = [NumCounters]string{
	"match_rounds",
	"match_worklist_visits",
	"match_rematch_attempts",
	"match_claims",
	"match_claim_conflicts",
	"score_masked_edges",
	"contract_edges_in",
	"contract_edges_survived",
	"contract_edges_out",
	"contract_sort_ns",
	"contract_accum_ns",
}

// String returns the counter's stable export name.
func (c Counter) String() string {
	if c >= 0 && c < NumCounters {
		return counterNames[c]
	}
	return "unknown_counter"
}

// Hot is a counter block hot loops flush into at chunk granularity: a
// parallel loop body counts into function-local variables and performs one
// atomic add per chunk, never per event. The engine folds the block into the
// recorder's totals at region boundaries (FoldHot).
type Hot struct {
	v [NumCounters]int64
}

// Add atomically accumulates d into counter c. Call once per chunk, with a
// locally accumulated delta — not per event.
func (h *Hot) Add(c Counter, d int64) {
	if h == nil || d == 0 {
		return
	}
	atomic.AddInt64(&h.v[c], d)
}

// span is one timeline interval. Times are nanoseconds since the recorder's
// epoch; k1/v1 and k2/v2 are optional static-name numeric arguments.
type span struct {
	cat, name  string
	phase      int32
	start, dur int64
	k1, k2     string
	v1, v2     int64
}

// regionStats aggregates the per-worker busy times of one named parallel
// region across calls (FoldWorkerTimes).
type regionStats struct {
	calls   int64
	workers int
	busyNS  int64
	maxNS   int64
}

// Recorder collects one run's (or one sweep's) observability data. The zero
// value is NOT ready: use New. A nil *Recorder is the disabled recorder —
// every method no-ops. A Recorder must not be shared by concurrent detection
// runs; the HTTP/expvar snapshot may read it concurrently with a run (all
// shared state is mutex-guarded or flushed at region boundaries).
type Recorder struct {
	t0      time.Time
	pprofOn bool

	mu      sync.Mutex
	spans   []span
	ctr     [NumCounters]int64
	hist    [histBins]int64 // log2 bucket-occupancy histogram
	regions map[string]*regionStats
	phase   int32 // current phase, for live snapshots
	phases  int32 // phases started
	labels  map[string]context.Context

	// hot is the chunk-flush block handed to hot loops; folded into ctr at
	// region boundaries by the engine goroutine.
	hot Hot
	// times is the worker-time scratch reused across regions.
	times []int64
	// lat holds the per-class latency histograms (atomic buckets, not under
	// mu — ObserveLatency must stay lock-free).
	lat LatencySet
	// allocBase* hold the cumulative heap counters sampled by BeginAllocs;
	// EndAllocs folds the deltas into allocBytes/allocCount (under mu). The
	// run-scoped allocation footprint feeds the manifest and the doctor's
	// alloc drift metric.
	allocBaseBytes uint64
	allocBaseCount uint64
	allocOpen      bool
	allocBytes     int64
	allocCount     int64
	// flight, when set, receives a copy of every closed span — the black-box
	// ring the crash paths dump. Set once before the run starts (SetFlight);
	// read without synchronization on the span-close path.
	flight *FlightRecorder
}

// histBins: bin b holds buckets whose length has bit-length b (bin 0 = empty
// buckets, bin 1 = length 1, bin 2 = 2–3, ...); the last bin is an overflow.
const histBins = 20

// New returns an enabled recorder with pprof labeling on.
func New() *Recorder {
	return &Recorder{t0: time.Now(), pprofOn: true}
}

// Enabled reports whether r records anything; false for the nil recorder.
func (r *Recorder) Enabled() bool { return r != nil }

// SetPprofLabels toggles per-kernel pprof labeling (on by default).
func (r *Recorder) SetPprofLabels(on bool) {
	if r == nil {
		return
	}
	r.pprofOn = on
}

// Reset clears all recorded data, keeping buffer capacity, and restarts the
// epoch. For reusing one recorder across harness sweep runs.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.ctr = [NumCounters]int64{}
	r.hist = [histBins]int64{}
	r.regions = nil
	r.phase, r.phases = 0, 0
	r.allocBytes, r.allocCount, r.allocOpen = 0, 0, false
	for i := range r.hot.v {
		atomic.StoreInt64(&r.hot.v[i], 0)
	}
	r.t0 = time.Now()
	r.mu.Unlock()
	r.lat.Reset()
}

func (r *Recorder) since() int64 { return time.Since(r.t0).Nanoseconds() }

// Phases reports the number of phases started so far.
func (r *Recorder) Phases() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.phases)
}

// SetFlight attaches a flight recorder: every span closed from now on is
// mirrored into the ring. Set before the run starts (the pointer is read
// unsynchronized on the span-close path); pass nil to detach.
func (r *Recorder) SetFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.flight = f
}

// AllocStats is a run's heap-allocation footprint: bytes allocated and
// allocation count between BeginAllocs and EndAllocs, accumulated across
// runs on one recorder.
type AllocStats struct {
	Bytes int64 `json:"bytes"`
	Count int64 `json:"count"`
}

// BeginAllocs samples the cumulative heap counters at the start of a run.
// ReadMemStats stops the world, so this runs exactly once per detection (and
// only when recording is on), never inside kernels. Nil-safe.
func (r *Recorder) BeginAllocs() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.mu.Lock()
	r.allocBaseBytes, r.allocBaseCount, r.allocOpen = ms.TotalAlloc, ms.Mallocs, true
	r.mu.Unlock()
}

// EndAllocs folds the allocation delta since BeginAllocs into the recorder;
// a second EndAllocs (or one without a BeginAllocs) is a no-op.
func (r *Recorder) EndAllocs() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.mu.Lock()
	if r.allocOpen {
		r.allocBytes += int64(ms.TotalAlloc - r.allocBaseBytes)
		r.allocCount += int64(ms.Mallocs - r.allocBaseCount)
		r.allocOpen = false
	}
	r.mu.Unlock()
}

// Allocs returns the accumulated run-scoped allocation footprint.
func (r *Recorder) Allocs() AllocStats {
	if r == nil {
		return AllocStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return AllocStats{Bytes: r.allocBytes, Count: r.allocCount}
}

// ObserveLatency records one duration (ns) under latency class c. Lock-free
// (one atomic add per call) and nil-safe, so kernels may call it per pass.
func (r *Recorder) ObserveLatency(c Lat, ns int64) {
	if r == nil {
		return
	}
	r.lat.Observe(c, ns)
}

// LatencyHist returns class c's histogram for direct Observe/ObserveSince
// use; nil when disabled.
func (r *Recorder) LatencyHist(c Lat) *LatencyHist {
	if r == nil {
		return nil
	}
	return r.lat.Hist(c)
}

// Latencies snapshots the non-empty latency classes.
func (r *Recorder) Latencies() []LatencyProfile {
	if r == nil {
		return nil
	}
	return r.lat.Export()
}

// Span is a handle to an open timeline interval. The zero Span (returned by
// the nil recorder) no-ops on End.
type Span struct {
	r   *Recorder
	idx int32
}

// Begin opens a span under category cat with the given name. phase < 0
// selects the recorder's current phase (set by BeginPhase), which lets the
// matching and contraction kernels label their sub-spans without threading
// the phase index through their signatures.
func (r *Recorder) Begin(cat, name string, phase int) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	ph := int32(phase)
	if phase < 0 {
		ph = r.phase
	}
	idx := len(r.spans)
	r.spans = append(r.spans, span{cat: cat, name: name, phase: ph, start: r.since()})
	r.mu.Unlock()
	return Span{r, int32(idx)}
}

// BeginPhase opens a phase span and makes phase the recorder's current phase
// for nested Begin(-1) calls and live snapshots.
func (r *Recorder) BeginPhase(phase int, vertices, edges int64) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	r.phase = int32(phase)
	if int32(phase)+1 > r.phases {
		r.phases = int32(phase) + 1
	}
	idx := len(r.spans)
	r.spans = append(r.spans, span{
		cat: CatPhase, name: "phase", phase: int32(phase), start: r.since(),
		k1: "vertices", v1: vertices, k2: "edges", v2: edges,
	})
	r.mu.Unlock()
	return Span{r, int32(idx)}
}

// End closes the span.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	sp.dur = s.r.since() - sp.start
	cat, name, dur := sp.cat, sp.name, sp.dur
	s.r.mu.Unlock()
	s.r.flight.Record(FlightSpan, cat, name, "", dur)
}

// EndArgs closes the span and attaches two named numeric arguments (shown in
// the trace viewer and the JSON profile).
func (s Span) EndArgs(k1 string, v1 int64, k2 string, v2 int64) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	sp.dur = s.r.since() - sp.start
	sp.k1, sp.v1, sp.k2, sp.v2 = k1, v1, k2, v2
	cat, name, dur := sp.cat, sp.name, sp.dur
	s.r.mu.Unlock()
	s.r.flight.Record(FlightSpan, cat, name, "", dur)
}

// Span categories. CatKernel names are the engine's primitives; the
// per-kernel breakdown aggregates spans with this category by name.
const (
	CatPhase    = "phase"
	CatKernel   = "kernel"
	CatMatch    = "match"
	CatContract = "contract"
)

// Add accumulates d into counter c. Safe to call from the engine goroutine
// between parallel sections (pass/region boundaries); hot loops use Hot
// blocks instead.
func (r *Recorder) Add(c Counter, d int64) {
	if r == nil || d == 0 {
		return
	}
	r.mu.Lock()
	r.ctr[c] += d
	r.mu.Unlock()
}

// Counter returns the folded total of c.
func (r *Recorder) Counter(c Counter) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctr[c]
}

// Hot returns the recorder's chunk-flush counter block; nil for the disabled
// recorder, which makes the flush in instrumented loops a nil check.
func (r *Recorder) Hot() *Hot {
	if r == nil {
		return nil
	}
	return &r.hot
}

// HotCounter returns the address of one hot counter for layers that should
// not depend on this package (the scoring sweep takes a *int64); nil when
// disabled. Flush with atomic adds, once per chunk.
func (r *Recorder) HotCounter(c Counter) *int64 {
	if r == nil {
		return nil
	}
	return &r.hot.v[c]
}

// FoldHot drains the hot block into the counter totals. The engine calls it
// at kernel boundaries, after the parallel region that fed the block has
// joined.
func (r *Recorder) FoldHot() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for c := range r.hot.v {
		if d := atomic.SwapInt64(&r.hot.v[c], 0); d != 0 {
			r.ctr[c] += d
		}
	}
	r.mu.Unlock()
}

// ObserveBuckets folds a contraction's per-bucket edge counts into the
// log2 occupancy histogram. One pass over k buckets, engine goroutine only.
func (r *Recorder) ObserveBuckets(counts []int64) {
	if r == nil {
		return
	}
	var local [histBins]int64
	for _, c := range counts {
		b := bits.Len64(uint64(c))
		if b >= histBins {
			b = histBins - 1
		}
		local[b]++
	}
	r.mu.Lock()
	for i, v := range local {
		r.hist[i] += v
	}
	r.mu.Unlock()
}

// WorkerTimes returns a zeroed worker-time scratch slice of length n, reused
// across calls. Pass it to par.ForWorkerTimes and fold the result with
// FoldWorkerTimes. Engine goroutine only; nil when disabled.
func (r *Recorder) WorkerTimes(n int) []int64 {
	if r == nil {
		return nil
	}
	if cap(r.times) < n {
		r.times = make([]int64, n)
	}
	r.times = r.times[:n]
	clear(r.times)
	return r.times
}

// FoldWorkerTimes accumulates one region invocation's per-worker busy times
// into the named region's imbalance statistics.
func (r *Recorder) FoldWorkerTimes(region string, times []int64) {
	if r == nil || len(times) == 0 {
		return
	}
	var busy, max int64
	for _, t := range times {
		busy += t
		if t > max {
			max = t
		}
	}
	r.mu.Lock()
	if r.regions == nil {
		r.regions = make(map[string]*regionStats)
	}
	st := r.regions[region]
	if st == nil {
		st = &regionStats{}
		r.regions[region] = st
	}
	st.calls++
	if len(times) > st.workers {
		st.workers = len(times)
	}
	st.busyNS += busy
	st.maxNS += max
	r.mu.Unlock()
}

// SetKernel attaches a {kernel: name} pprof label set to the calling
// goroutine; par workers spawned inside the kernel inherit it, so CPU
// profiles segment by pipeline stage. Label contexts are cached per name, so
// the steady state allocates nothing.
func (r *Recorder) SetKernel(name string) {
	if r == nil || !r.pprofOn {
		return
	}
	r.mu.Lock()
	ctx, ok := r.labels[name]
	if !ok {
		ctx = pprof.WithLabels(context.Background(), pprof.Labels("kernel", name))
		if r.labels == nil {
			r.labels = make(map[string]context.Context)
		}
		r.labels[name] = ctx
	}
	r.mu.Unlock()
	pprof.SetGoroutineLabels(ctx)
}

// ClearLabels removes the goroutine's pprof labels; the engine calls it when
// a run finishes so the caller's goroutine does not keep the last kernel's
// label.
func (r *Recorder) ClearLabels() {
	if r == nil || !r.pprofOn {
		return
	}
	pprof.SetGoroutineLabels(context.Background())
}

// --- structured export ----------------------------------------------------

// Profile is the recorder's structured export: the per-phase JSON event log
// that extends internal/report, and the source for live snapshots.
type Profile struct {
	DurationSec float64          `json:"duration_sec"`
	Phases      int              `json:"phases"`
	Kernels     []KernelSeconds  `json:"kernels,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	BucketHist  []HistBin        `json:"bucket_hist,omitempty"`
	Regions     []RegionProfile  `json:"regions,omitempty"`
	Latencies   []LatencyProfile `json:"latencies,omitempty"`
	Spans       []SpanProfile    `json:"spans,omitempty"`
	// Allocs is the run-scoped heap footprint (BeginAllocs/EndAllocs
	// bracket), absent when the engine never sampled it.
	Allocs *AllocStats `json:"allocs,omitempty"`
}

// KernelSeconds is total time in one kernel across phases.
type KernelSeconds struct {
	Kernel  string  `json:"kernel"`
	Seconds float64 `json:"seconds"`
	Spans   int     `json:"spans"`
}

// HistBin is one bucket-occupancy histogram bin: the number of contraction
// buckets whose pre-dedup length fell in (MaxLen/2, MaxLen].
type HistBin struct {
	MaxLen  int64 `json:"max_len"`
	Buckets int64 `json:"buckets"`
}

// RegionProfile reports one parallel region's worker imbalance: Imbalance is
// the slowest worker's share over the perfectly balanced share (1 = even).
type RegionProfile struct {
	Region    string  `json:"region"`
	Calls     int64   `json:"calls"`
	Workers   int     `json:"workers"`
	BusySec   float64 `json:"busy_sec"`
	MaxSec    float64 `json:"max_sec"`
	Imbalance float64 `json:"imbalance"`
}

// SpanProfile is one exported timeline interval.
type SpanProfile struct {
	Cat      string           `json:"cat"`
	Name     string           `json:"name"`
	Phase    int              `json:"phase"`
	StartSec float64          `json:"start_sec"`
	DurSec   float64          `json:"dur_sec"`
	Args     map[string]int64 `json:"args,omitempty"`
}

func ns2s(ns int64) float64 { return float64(ns) / 1e9 }

// args builds a span's argument map; nil when the span has none.
func (sp *span) args() map[string]int64 {
	if sp.k1 == "" && sp.k2 == "" {
		return nil
	}
	m := make(map[string]int64, 2)
	if sp.k1 != "" {
		m[sp.k1] = sp.v1
	}
	if sp.k2 != "" {
		m[sp.k2] = sp.v2
	}
	return m
}

// KernelSeconds aggregates CatKernel spans by name — the per-kernel
// breakdown rows (score/match/contract/refine) whose sum tracks phase wall
// time.
func (r *Recorder) KernelSeconds() []KernelSeconds {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kernelSecondsLocked()
}

func (r *Recorder) kernelSecondsLocked() []KernelSeconds {
	byName := map[string]*KernelSeconds{}
	var order []string
	for i := range r.spans {
		sp := &r.spans[i]
		if sp.cat != CatKernel {
			continue
		}
		ks := byName[sp.name]
		if ks == nil {
			ks = &KernelSeconds{Kernel: sp.name}
			byName[sp.name] = ks
			order = append(order, sp.name)
		}
		ks.Seconds += ns2s(sp.dur)
		ks.Spans++
	}
	out := make([]KernelSeconds, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// Export snapshots the recorder into a Profile. Safe to call concurrently
// with a run; the snapshot sees all data folded so far.
func (r *Recorder) Export() *Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Profile{
		DurationSec: ns2s(r.since()),
		Phases:      int(r.phases),
		Kernels:     r.kernelSecondsLocked(),
	}
	for c := Counter(0); c < NumCounters; c++ {
		if r.ctr[c] != 0 {
			if p.Counters == nil {
				p.Counters = make(map[string]int64)
			}
			p.Counters[c.String()] = r.ctr[c]
		}
	}
	for b, n := range r.hist {
		if n == 0 {
			continue
		}
		maxLen := int64(0)
		if b > 0 {
			maxLen = int64(1)<<b - 1
		}
		p.BucketHist = append(p.BucketHist, HistBin{MaxLen: maxLen, Buckets: n})
	}
	var regions []string
	for name := range r.regions {
		regions = append(regions, name)
	}
	sort.Strings(regions)
	for _, name := range regions {
		st := r.regions[name]
		rp := RegionProfile{
			Region:  name,
			Calls:   st.calls,
			Workers: st.workers,
			BusySec: ns2s(st.busyNS),
			MaxSec:  ns2s(st.maxNS),
		}
		if st.busyNS > 0 && st.workers > 0 {
			rp.Imbalance = float64(st.maxNS) * float64(st.workers) / float64(st.busyNS)
		}
		p.Regions = append(p.Regions, rp)
	}
	if r.allocBytes != 0 || r.allocCount != 0 {
		p.Allocs = &AllocStats{Bytes: r.allocBytes, Count: r.allocCount}
	}
	p.Latencies = r.lat.Export()
	for i := range r.spans {
		sp := &r.spans[i]
		p.Spans = append(p.Spans, SpanProfile{
			Cat:      sp.cat,
			Name:     sp.name,
			Phase:    int(sp.phase),
			StartSec: ns2s(sp.start),
			DurSec:   ns2s(sp.dur),
			Args:     sp.args(),
		})
	}
	return p
}

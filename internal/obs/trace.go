package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTrace renders the recorder's span timeline as Chrome trace_event JSON
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// chrome://tracing or https://ui.perfetto.dev. Categories map to tracks:
// every span becomes a complete ("ph":"X") event with microsecond
// timestamps; the pid is always 1 and the tid encodes the category so the
// phase row sits above the kernel row above the sub-kernel rows.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := make([]span, len(r.spans))
	copy(spans, r.spans)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	// Thread metadata: name the tracks once so the viewer shows category
	// names instead of bare tids.
	tracks := []struct {
		tid  int
		name string
	}{
		{1, "phase"}, {2, "kernel"}, {3, "match"}, {4, "contract"},
	}
	first := true
	for _, t := range tracks {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			t.tid, t.name)
	}
	for i := range spans {
		sp := &spans[i]
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		name := sp.name
		if sp.cat == CatPhase {
			name = fmt.Sprintf("phase %d", sp.phase)
		}
		fmt.Fprintf(bw,
			`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"phase":%d`,
			name, sp.cat, float64(sp.start)/1e3, float64(sp.dur)/1e3,
			traceTID(sp.cat), sp.phase)
		if sp.k1 != "" {
			fmt.Fprintf(bw, ",%q:%d", sp.k1, sp.v1)
		}
		if sp.k2 != "" {
			fmt.Fprintf(bw, ",%q:%d", sp.k2, sp.v2)
		}
		bw.WriteString("}}")
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// traceTID maps a span category to a stable trace-viewer track.
func traceTID(cat string) int {
	switch {
	case cat == CatPhase:
		return 1
	case cat == CatKernel:
		return 2
	case cat == CatMatch || strings.HasPrefix(cat, "match"):
		return 3
	case cat == CatContract || strings.HasPrefix(cat, "contract"):
		return 4
	}
	return 5
}

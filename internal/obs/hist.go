package obs

// Low-overhead latency histograms for the serving-grade telemetry layer.
//
// LatencyHist is a fixed-size log-linear histogram: values bucket by power
// of two (octave) with latSub linear sub-buckets per octave, so a recorded
// duration lands in a bucket whose width is 1/latSub of its octave base.
// Quantiles estimated from bucket upper bounds therefore overshoot the true
// sample quantile by at most a factor of 1+1/latSub (6.25% with latSub=16) —
// tight enough for p50/p90/p99 serving dashboards, cheap enough (one atomic
// add per observation, no locks, no allocation) to record on every Detect,
// level, and kernel pass. Histograms merge bucket-wise (Merge), so striped
// per-worker instances fold into one without loss.
//
// A nil *LatencyHist (and a nil *LatencySet) is disabled: every method is a
// nil-check no-op, preserving the package's zero-cost-when-off invariant.

import (
	"math"
	"math/bits"
	"sync/atomic"
)

const (
	// latSubBits/latSub: linear sub-buckets per power-of-two octave. 16
	// sub-buckets bound the quantile estimate's relative error at 1/16.
	latSubBits = 4
	latSub     = 1 << latSubBits
	// latMinShift/latMaxShift bound the resolved range: values below
	// 2^latMinShift ns (~1µs) collapse into the underflow bucket, values at
	// or above 2^latMaxShift ns (~69s) into the overflow bucket.
	latMinShift = 10
	latMaxShift = 36
	latOctaves  = latMaxShift - latMinShift
	// numLatBuckets = underflow + octaves*sub + overflow.
	numLatBuckets = latOctaves*latSub + 2
)

// LatencyHist is one log-linear latency distribution. The zero value is
// ready; all methods are safe for concurrent use and a nil receiver no-ops.
// It must not be copied after first use (atomic fields).
type LatencyHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [numLatBuckets]atomic.Int64
}

// latBucketOf maps a nanosecond duration to its bucket index.
func latBucketOf(ns int64) int {
	if ns < 1<<latMinShift {
		return 0
	}
	if ns >= 1<<latMaxShift {
		return numLatBuckets - 1
	}
	o := bits.Len64(uint64(ns)) - 1                   // 2^o <= ns < 2^(o+1)
	sub := int((ns - 1<<o) >> (uint(o) - latSubBits)) // linear position within the octave
	return 1 + (o-latMinShift)*latSub + sub
}

// latUpperNS returns the inclusive upper bound (ns) of bucket b; the
// overflow bucket reports +Inf.
func latUpperNS(b int) float64 {
	if b == 0 {
		return float64(int64(1) << latMinShift)
	}
	if b >= numLatBuckets-1 {
		return math.Inf(1)
	}
	b--
	o := b/latSub + latMinShift
	sub := b % latSub
	return float64((int64(1) << o) + int64(sub+1)<<(uint(o)-latSubBits))
}

// Observe records one duration in nanoseconds. One atomic add per call (plus
// a CAS loop only while the running max is still rising); nil receivers and
// negative durations no-op.
func (h *LatencyHist) Observe(ns int64) {
	if h == nil || ns < 0 {
		return
	}
	h.buckets[latBucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveSince records the time elapsed since an obs.NowNS timestamp.
func (h *LatencyHist) ObserveSince(startNS int64) {
	if h == nil {
		return
	}
	h.Observe(NowNS() - startNS)
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Merge folds o's buckets into h (the striped-instance reduction). Neither
// histogram needs to be quiescent; the merge is bucket-wise atomic.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if v := o.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(o.count.Load())
	h.sumNS.Add(o.sumNS.Load())
	for {
		cur, om := h.maxNS.Load(), o.maxNS.Load()
		if om <= cur || h.maxNS.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Reset clears the histogram.
func (h *LatencyHist) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumNS.Store(0)
	h.maxNS.Store(0)
}

// Quantile estimates the q-quantile (q in [0,1]) in seconds from the bucket
// upper bounds: the estimate is at least the true sample quantile and at
// most 1+1/latSub times it (for values inside the resolved range). The
// overflow bucket reports the exact running max instead of +Inf. Returns 0
// for an empty histogram.
func (h *LatencyHist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < numLatBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			if b == numLatBuckets-1 {
				return float64(h.maxNS.Load()) / 1e9
			}
			return latUpperNS(b) / 1e9
		}
	}
	return float64(h.maxNS.Load()) / 1e9
}

// LatencyBucket is one cumulative histogram step for export: Count
// observations were at most LeSec seconds.
type LatencyBucket struct {
	LeSec float64 `json:"le_sec"`
	Count int64   `json:"count"`
}

// LatencyProfile is a histogram snapshot: summary quantiles plus the
// non-empty cumulative buckets (Prometheus-shaped, +Inf last when the
// overflow bucket is populated; renderers add +Inf themselves otherwise).
type LatencyProfile struct {
	Class   string          `json:"class"`
	Count   int64           `json:"count"`
	SumSec  float64         `json:"sum_sec"`
	MaxSec  float64         `json:"max_sec"`
	P50Sec  float64         `json:"p50_sec"`
	P90Sec  float64         `json:"p90_sec"`
	P99Sec  float64         `json:"p99_sec"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram under the given class name; nil for a nil
// or empty histogram.
func (h *LatencyHist) Snapshot(class string) *LatencyProfile {
	if h == nil {
		return nil
	}
	total := h.count.Load()
	if total == 0 {
		return nil
	}
	p := &LatencyProfile{
		Class:  class,
		Count:  total,
		SumSec: float64(h.sumNS.Load()) / 1e9,
		MaxSec: float64(h.maxNS.Load()) / 1e9,
		P50Sec: h.Quantile(0.50),
		P90Sec: h.Quantile(0.90),
		P99Sec: h.Quantile(0.99),
	}
	var cum int64
	for b := 0; b < numLatBuckets; b++ {
		v := h.buckets[b].Load()
		if v == 0 {
			continue
		}
		cum += v
		p.Buckets = append(p.Buckets, LatencyBucket{LeSec: latUpperNS(b) / 1e9, Count: cum})
	}
	return p
}

// Lat identifies one of the engine's fixed latency classes, addressed by
// array index like Counter so hot paths never hash names.
type Lat int

const (
	// LatDetect is one whole Detect run, end to end.
	LatDetect Lat = iota
	// LatLevel is one contraction level of the agglomeration loop
	// (schedule + score + match + contract + optional refine).
	LatLevel
	// LatScore, LatMatch, LatContract are the per-level primitive times.
	LatScore
	LatMatch
	LatContract
	// LatMatchPass is one matching round (worklist or edge-sweep pass).
	LatMatchPass
	// LatPLPSweep is one label-propagation sweep.
	LatPLPSweep
	// LatContractDedup is the contraction kernel's sort+accumulate stage.
	LatContractDedup

	// NumLats is the size of a latency class block.
	NumLats
)

var latNames = [NumLats]string{
	"detect",
	"level",
	"score",
	"match",
	"contract",
	"match_pass",
	"plp_sweep",
	"contract_dedup",
}

// String returns the class's stable export name.
func (c Lat) String() string {
	if c >= 0 && c < NumLats {
		return latNames[c]
	}
	return "unknown_latency"
}

// LatencySet is the fixed block of per-class latency histograms a Recorder
// carries. The zero value is ready; a nil *LatencySet no-ops.
type LatencySet struct {
	h [NumLats]LatencyHist
}

// Hist returns the class's histogram; nil for a nil set.
func (s *LatencySet) Hist(c Lat) *LatencyHist {
	if s == nil || c < 0 || c >= NumLats {
		return nil
	}
	return &s.h[c]
}

// Observe records one duration (ns) under class c.
func (s *LatencySet) Observe(c Lat, ns int64) {
	if s == nil || c < 0 || c >= NumLats {
		return
	}
	s.h[c].Observe(ns)
}

// Merge folds o's histograms into s class-wise.
func (s *LatencySet) Merge(o *LatencySet) {
	if s == nil || o == nil {
		return
	}
	for c := range s.h {
		s.h[c].Merge(&o.h[c])
	}
}

// Reset clears every class.
func (s *LatencySet) Reset() {
	if s == nil {
		return
	}
	for c := range s.h {
		s.h[c].Reset()
	}
}

// Export snapshots the non-empty classes in class order.
func (s *LatencySet) Export() []LatencyProfile {
	if s == nil {
		return nil
	}
	var out []LatencyProfile
	for c := Lat(0); c < NumLats; c++ {
		if p := s.h[c].Snapshot(c.String()); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

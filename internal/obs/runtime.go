package obs

// Go runtime/GC sampling for the Prometheus endpoint. runtime.ReadMemStats
// stops the world briefly, so the serving path never calls it per-scrape on
// a hot process by default: a sampler goroutine refreshes a cached snapshot
// on a fixed period and scrapes read the cache. When no sampler is running
// (tests, one-shot dumps) the scrape falls back to a direct sample.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRuntimeSamplePeriod is the sampler's refresh interval. MemStats
// reads are stop-the-world; 5s keeps the cost invisible while staying well
// inside a typical 15s scrape interval.
const DefaultRuntimeSamplePeriod = 5 * time.Second

// RuntimeStats is one Go runtime snapshot, the raw material of the
// community_go_* Prometheus series.
type RuntimeStats struct {
	TimeNS      int64   `json:"time_ns"`
	Goroutines  int64   `json:"goroutines"`
	HeapAllocB  int64   `json:"heap_alloc_bytes"`
	HeapObjects int64   `json:"heap_objects"`
	SysB        int64   `json:"sys_bytes"`
	NextGCB     int64   `json:"next_gc_bytes"`
	GCCycles    int64   `json:"gc_cycles"`
	GCPauseSec  float64 `json:"gc_pause_seconds_total"`
}

// SampleRuntime takes a fresh runtime snapshot (stop-the-world; do not call
// on a per-event path).
func SampleRuntime() *RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &RuntimeStats{
		TimeNS:      NowNS(),
		Goroutines:  int64(runtime.NumGoroutine()),
		HeapAllocB:  int64(ms.HeapAlloc),
		HeapObjects: int64(ms.HeapObjects),
		SysB:        int64(ms.Sys),
		NextGCB:     int64(ms.NextGC),
		GCCycles:    int64(ms.NumGC),
		GCPauseSec:  float64(ms.PauseTotalNs) / 1e9,
	}
}

// runtimeLatest caches the sampler's most recent snapshot for scrapes.
var runtimeLatest atomic.Pointer[RuntimeStats]

// latestRuntime returns the cached snapshot, or a fresh sample when no
// sampler has run yet.
func latestRuntime() *RuntimeStats {
	if s := runtimeLatest.Load(); s != nil {
		return s
	}
	return SampleRuntime()
}

// RuntimeSampler periodically refreshes the cached runtime snapshot.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartRuntimeSampler launches the refresh goroutine. A non-positive period
// uses the default. Stop the sampler before process teardown in tests;
// long-lived servers just let it run.
func StartRuntimeSampler(period time.Duration) *RuntimeSampler {
	if period <= 0 {
		period = DefaultRuntimeSamplePeriod
	}
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	runtimeLatest.Store(SampleRuntime())
	go func() {
		defer close(s.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				runtimeLatest.Store(SampleRuntime())
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for its goroutine to exit. Safe to call
// more than once; the cached snapshot stays readable after Stop.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		close(s.stop)
		<-s.done
	})
}

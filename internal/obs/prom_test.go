package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Prometheus golden file")

// promNormalizers strip the host- and history-dependent parts of the
// exposition so the rest golden-tests byte-for-byte: the toolchain version,
// the recorder's wall-clock uptime, the process-global flight totals, and any
// registered sources (exec's pool counters register when the external test
// package links core in, and their values depend on test order).
var promNormalizers = []struct {
	re   *regexp.Regexp
	repl string
}{
	{regexp.MustCompile(`go_version="[^"]*"`), `go_version="GO"`},
	{regexp.MustCompile(`git_sha="[^"]*"`), `git_sha="SHA"`},
	{regexp.MustCompile(`(?m)^community_recorder_uptime_seconds .*$`), `community_recorder_uptime_seconds 0`},
	{regexp.MustCompile(`(?m)^(community_flight_(?:events|dropped)_total) .*$`), `$1 0`},
	{regexp.MustCompile(`(?m)^(community_exec_[a-z_]+) .*$`), `$1 0`},
	// Doctor gauges and capture counts reflect whatever other tests in the
	// process published (SetLiveVerdict, profiler captures) — zero them.
	{regexp.MustCompile(`(?m)^(community_doctor_[a-z_]+) .*$`), `$1 0`},
	{regexp.MustCompile(`(?m)^(community_profiles_captured_total) .*$`), `$1 0`},
}

func normalizeProm(s string) string {
	for _, n := range promNormalizers {
		s = n.re.ReplaceAllString(s, n.repl)
	}
	return s
}

// goldenRecorder builds a recorder with fully deterministic counters and
// latency observations and no wall-clock spans.
func goldenRecorder() *Recorder {
	r := New()
	r.Add(CtrMatchRounds, 4)
	r.Add(CtrMatchClaims, 123)
	r.Add(CtrContractEdgesIn, 1000)
	r.Add(CtrContractEdgesOut, 250)
	r.ObserveLatency(LatDetect, 50_000_000) // 50ms
	r.ObserveLatency(LatLevel, 10_000_000)
	r.ObserveLatency(LatLevel, 20_000_000)
	r.ObserveLatency(LatScore, 2_000_000)
	r.ObserveLatency(LatMatch, 3_000_000)
	r.ObserveLatency(LatContract, 5_000_000)
	return r
}

func goldenLedger() *Ledger {
	l := NewLedger()
	l.Record(LevelStats{Level: 0, Vertices: 1000, OutVertices: 600, Edges: 5000, Metric: 0.30, Coverage: 0.5})
	l.Record(LevelStats{Level: 1, Vertices: 600, OutVertices: 420, Edges: 2600, Metric: 0.42, Coverage: 0.6})
	return l
}

// TestWritePrometheusGolden pins the full exposition document against
// testdata/prom_golden.txt. Regenerate with: go test ./internal/obs -run
// TestWritePrometheusGolden -update
func TestWritePrometheusGolden(t *testing.T) {
	rt := &RuntimeStats{
		TimeNS: 1, Goroutines: 7, HeapAllocB: 1 << 20, HeapObjects: 4096,
		SysB: 1 << 22, NextGCB: 1 << 21, GCCycles: 3, GCPauseSec: 0.001,
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRecorder(), goldenLedger(), rt); err != nil {
		t.Fatal(err)
	}
	got := normalizeProm(buf.String())

	path := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusFormat checks structural validity independent of the
// golden bytes: every sample's family has TYPE and HELP, histogram buckets
// are cumulative with a +Inf terminator, and the document ends in a newline.
func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRecorder(), goldenLedger(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("document does not end in newline")
	}
	typed := map[string]string{}
	helped := map[string]bool{}
	var histSeries []string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[2]] = f[3]
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(line, " ", 4)
			if len(f) != 4 || f[3] == "" {
				t.Fatalf("malformed or empty HELP line %q", line)
			}
			helped[f[2]] = true
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if typed[strings.TrimSuffix(name, suffix)] == "histogram" {
					family = strings.TrimSuffix(name, suffix)
				}
			}
			if typed[family] == "" {
				t.Errorf("sample %q has no TYPE annotation", line)
			}
			if !helped[family] {
				t.Errorf("sample %q has no HELP annotation", line)
			}
			if strings.HasSuffix(name, "_bucket") {
				histSeries = append(histSeries, line)
			}
		}
	}
	// The acceptance criteria demand at least one counter, one gauge, one
	// histogram.
	var haveCounter, haveGauge, haveHist bool
	for _, typ := range typed {
		switch typ {
		case "counter":
			haveCounter = true
		case "gauge":
			haveGauge = true
		case "histogram":
			haveHist = true
		}
	}
	if !haveCounter || !haveGauge || !haveHist {
		t.Fatalf("exposition missing a family kind: counter=%v gauge=%v histogram=%v",
			haveCounter, haveGauge, haveHist)
	}
	// Buckets per class must be cumulative and end at +Inf.
	perClass := map[string][]string{}
	classRe := regexp.MustCompile(`class="([^"]+)"`)
	for _, line := range histSeries {
		m := classRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bucket line without class label: %q", line)
		}
		perClass[m[1]] = append(perClass[m[1]], line)
	}
	for class, lines := range perClass {
		prev := int64(-1)
		for _, line := range lines {
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value unparseable in %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("class %s buckets not cumulative: %q after %d", class, line, prev)
			}
			prev = v
		}
		if !strings.Contains(lines[len(lines)-1], `le="+Inf"`) {
			t.Fatalf("class %s missing +Inf terminator: last line %q", class, lines[len(lines)-1])
		}
	}
}

// TestWritePrometheusNilArgs: all-nil arguments still render a valid
// document (runtime + flight sections only).
func TestWritePrometheusNilArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "community_go_goroutines") ||
		strings.Contains(out, "community_recorder_uptime_seconds") {
		t.Fatalf("nil-arg document wrong:\n%s", out)
	}
}

// TestPromLabelEscaping pins the exposition escaping rules.
func TestPromLabelEscaping(t *testing.T) {
	got := promLabel("k", "a\\b\"c\nd")
	want := `{k="a\\b\"c\nd"}`
	if got != want {
		t.Fatalf("promLabel = %s, want %s", got, want)
	}
}

// TestRegisterPromReplaces: re-registering under the same name replaces the
// source instead of duplicating the family.
func TestRegisterPromReplaces(t *testing.T) {
	RegisterPromCounter("community_test_replace_total", "Test source.", func() int64 { return 1 })
	RegisterPromCounter("community_test_replace_total", "Test source.", func() int64 { return 2 })
	defer func() { // unregister so the golden test never sees it
		promMu.Lock()
		defer promMu.Unlock()
		for i := range promSources {
			if promSources[i].name == "community_test_replace_total" {
				promSources = append(promSources[:i], promSources[i+1:]...)
				return
			}
		}
	}()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE community_test_replace_total"); n != 1 {
		t.Fatalf("family appears %d times, want 1", n)
	}
	if !strings.Contains(buf.String(), "community_test_replace_total 2\n") {
		t.Fatal("replacement did not take the latest value")
	}
}

// TestSetLivePublishTwice is the double-Publish regression test: expvar
// panics on duplicate names, so SetLive/SetLiveLedger must register exactly
// once no matter how many recorders come and go (harness sweeps swap them
// per run, and Serve calls both on every start).
func TestSetLivePublishTwice(t *testing.T) {
	defer SetLive(nil)
	defer SetLiveLedger(nil)
	for i := 0; i < 3; i++ {
		SetLive(New())
		SetLiveLedger(NewLedger())
	}
}

package obs

// The convergence ledger is the algorithm-quality counterpart of the
// Recorder's timing view. Where the Recorder answers "where did the time
// go", the Ledger answers the Figure 1/2-style questions the paper's
// evaluation is built on: how fast does the agglomeration converge (merge
// fractions, matching rounds, the modularity trajectory), how skewed is the
// community graph at each level (hub share, size histogram), and did the
// per-level schedule stay inside its analytic imbalance bound. The engine
// records one LevelStats row per contraction level; anomalies (a metric
// decrease, a stalled matching, a schedule past its bound) become structured
// Warnings instead of silently odd numbers.
//
// Like the Recorder, a nil *Ledger is the disabled ledger: every method is a
// nil-check no-op, so the engine threads one pointer and the disabled path
// costs only predictable branches. All per-level derived work (positive-edge
// counts, size histograms) is computed by the engine only when the ledger is
// enabled. A Ledger must not be shared by concurrent detection runs; the
// live expvar endpoint may snapshot it concurrently with a run.

import (
	"fmt"
	"log/slog"
	"math/bits"
	"sync"
	"time"
)

// epoch anchors NowNS; the absolute origin is irrelevant, only differences
// are used.
var epoch = time.Now()

// NowNS returns a monotonic nanosecond timestamp for kernel-side interval
// timing. Kernel packages (scoring/matching/contract/refine) must not read
// the clock directly — the vet-obs lint forbids raw time.Now there — so this
// is the one sanctioned clock for instrumentation that runs only when
// recording is on (see contract's dedupBucketsTimed).
func NowNS() int64 { return int64(time.Since(epoch)) }

// LevelStats is one contraction level's convergence row. "In" quantities
// describe the community graph the level started from; "Out" quantities the
// contracted graph it produced. The engine fills the raw fields;
// Ledger.Record derives MergeFraction, HubShare, and MetricDelta.
type LevelStats struct {
	// Stage labels which engine stage produced the row: StagePLP for one
	// label-propagation sweep, StageCoarsen for the label contraction that
	// follows PLP, StageMatch (or empty, the pre-engine-aware encoding) for
	// one matching-agglomeration level. Level indexes within the stage.
	Stage string `json:"stage,omitempty"`
	// Level is the contraction level (phase) index, 0-based.
	Level int `json:"level"`
	// Vertices and Edges describe the community graph entering the level.
	Vertices int64 `json:"vertices"`
	Edges    int64 `json:"edges"`
	// PositiveEdges counts edges whose merge score was positive — the
	// matching's eligible population.
	PositiveEdges int64 `json:"positive_edges"`
	// MatchedPairs is the number of community pairs the matching selected.
	MatchedPairs int64 `json:"matched_pairs"`
	// MergedVertices is the number of communities the contraction removed:
	// Vertices − OutVertices. Summed over all levels it equals
	// n − (final community count).
	MergedVertices int64 `json:"merged_vertices"`
	// OutVertices and OutEdges describe the contracted graph.
	OutVertices int64 `json:"out_vertices"`
	OutEdges    int64 `json:"out_edges"`
	// MergeFraction is MergedVertices / Vertices (derived).
	MergeFraction float64 `json:"merge_fraction"`
	// Metric is the scoring metric (modularity by default) of the partition
	// entering the level; MetricDelta is the change from the previous level
	// (0 at level 0). Coverage is the in-community weight fraction.
	Metric      float64 `json:"metric"`
	MetricDelta float64 `json:"metric_delta"`
	Coverage    float64 `json:"coverage"`
	// MatchPasses is the number of matching rounds; Drain is the worklist
	// length at the start of each round — the drain curve whose shape shows
	// whether the locally-dominant matching converged geometrically or
	// stalled on contested hubs.
	MatchPasses int     `json:"match_passes"`
	Drain       []int64 `json:"drain,omitempty"`
	// SizeHist is the log2 histogram of post-merge community sizes (original
	// vertices per community): bin b counts communities whose size has
	// bit-length b. The drift of mass toward high bins is the hub
	// concentration that motivated the bucketed-triple design.
	SizeHist []int64 `json:"size_hist,omitempty"`
	// MaxBucketLen is the largest adjacency bucket entering the level;
	// HubShare is its share of the edge array (derived).
	MaxBucketLen int64   `json:"max_bucket_len"`
	HubShare     float64 `json:"hub_share"`
	// Active and Changed are PLP sweep counters: the worklist length at the
	// start of the sweep and the number of vertices that adopted a new
	// label. Zero on matching rows; the coarsen row instead carries the
	// whole active-vertex drain curve in Drain.
	Active  int64 `json:"active,omitempty"`
	Changed int64 `json:"changed,omitempty"`
	// SchedImbalance is the built per-level schedule's item-aligned
	// imbalance (max worker share over even share, 1 = perfect); 0 when the
	// level ran serial or dynamic. SchedBound is the analytic aligned lower
	// bound max(1, (MaxBucketLen+1)·p/(Edges+Vertices)) — a whole-bucket
	// schedule cannot beat it, so imbalance far above it flags a scheduling
	// bug rather than graph skew.
	SchedImbalance float64 `json:"sched_imbalance,omitempty"`
	SchedBound     float64 `json:"sched_bound,omitempty"`
	// Dissolved and PrevCommunities describe an incremental re-detection's
	// seed (StageIncremental rows only): how many of the previous run's
	// PrevCommunities communities were incident to the delta batch and got
	// dissolved back to singleton vertices.
	Dissolved       int64 `json:"dissolved,omitempty"`
	PrevCommunities int64 `json:"prev_communities,omitempty"`
	// Shard and CutEdges describe sharded detection rows. On a StageShard
	// row, Shard is the shard index, Vertices/Edges its extracted subgraph,
	// OutVertices its local community count, and CutEdges the boundary edges
	// it recorded (each cut edge is counted by exactly one of its two
	// shards); SchedImbalance carries the shard's edge-load share over the
	// even share. On the StageStitch row CutEdges is the total across
	// shards and Vertices the quotient graph the stitch ran on.
	Shard    int   `json:"shard,omitempty"`
	CutEdges int64 `json:"cut_edges,omitempty"`
}

// Stage labels for LevelStats.Stage. The empty string is equivalent to
// StageMatch: matching-only runs predate the stage column and their rows
// stay byte-identical in JSON (omitempty).
const (
	StageMatch   = "match"
	StagePLP     = "plp"
	StageCoarsen = "coarsen"
	// StageIncremental is the seed contraction of an incremental
	// re-detection: the previous partition with dirty communities dissolved,
	// folded into the starting community graph.
	StageIncremental = "incremental"
	// StageShard is one shard's local detection in a sharded run: the
	// subgraph it extracted, the communities it produced, and the boundary
	// edges it deferred to the stitch. Shard rows carry no global metric
	// (shard-local modularity is against shard-local weight, not
	// comparable), so like PLP rows they neither produce nor anchor a
	// metric delta.
	StageShard = "shard"
	// StageStitch is the cross-shard agglomeration over the quotient graph
	// of per-shard communities and cut edges — the row whose Metric is the
	// run's final global modularity.
	StageStitch = "stitch"
)

// StageOf normalizes a row's stage: empty means StageMatch.
func StageOf(st LevelStats) string {
	if st.Stage == "" {
		return StageMatch
	}
	return st.Stage
}

// Warning codes.
const (
	// WarnMetricDecrease: the metric went down between levels. Greedy
	// merging over positive scores should be monotone; a decrease means the
	// scorer and the metric disagree or refinement regressed.
	WarnMetricDecrease = "metric-decrease"
	// WarnMatchingStall: a matching round made no progress (the worklist
	// did not shrink) or the round count blew past the geometric-drain
	// expectation.
	WarnMatchingStall = "matching-stall"
	// WarnImbalance: the built schedule's imbalance exceeded its analytic
	// bound by more than imbalanceSlack.
	WarnImbalance = "imbalance"
	// WarnDissolveStorm: an incremental re-detection dissolved more than a
	// quarter of the previous partition's communities. At that churn the
	// seeded run re-does most of the agglomeration and a from-scratch Detect
	// is likely cheaper and better.
	WarnDissolveStorm = "dissolve-storm"
	// WarnDrift: the run doctor found a metric z-scored past its baseline
	// (kernel seconds, latency quantiles, convergence shape, allocations).
	// Emitted post-run via AddWarning, not by Record.
	WarnDrift = "doctor-drift"
)

// dissolveStormDen is the dissolved-community fraction denominator for
// WarnDissolveStorm: dissolving more than 1/dissolveStormDen (25%) of the
// previous communities flags the storm.
const dissolveStormDen = 4

// stallPassCap flags a matching that needed more rounds than the geometric
// drain the locally-dominant discipline predicts (a handful on real graphs).
const stallPassCap = 64

// imbalanceSlack is the multiplicative headroom over the analytic bound
// before a schedule is flagged; the bound is exact for the worst bucket, so
// 1.5x past it is a genuine blow-past, not rounding.
const imbalanceSlack = 1.5

// Warning is one structured anomaly flagged while recording a level.
type Warning struct {
	Level  int    `json:"level"`
	Code   string `json:"code"`
	Detail string `json:"detail"`
}

// Ledger accumulates one run's per-level convergence rows. The zero value
// is ready; NewLedger is the conventional constructor. A nil *Ledger is the
// disabled ledger — every method no-ops.
type Ledger struct {
	mu       sync.Mutex
	levels   []LevelStats
	warnings []Warning
	// logger, when set, receives every warning as it is flagged — the
	// real-time mirror of the post-hoc Warnings list. Warnings also land in
	// the process flight recorder unconditionally (the ring is free).
	logger *slog.Logger
	// profiler, when set, gets a rate-limited asynchronous CPU-window
	// trigger on every warning — the "capture evidence while the anomaly is
	// still running" half of the doctor's triggered profiling.
	profiler *Profiler
}

// SetProfiler triggers a rate-limited background CPU capture on future
// warnings (a stalled matching or metric decrease profiles itself while the
// run is still degenerating). Pass nil to stop.
func (l *Ledger) SetProfiler(p *Profiler) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.profiler = p
	l.mu.Unlock()
}

// SetLogger mirrors future warnings into log as they are recorded (a stalled
// matching or a metric decrease becomes visible mid-run instead of in the
// final report). Pass nil to stop mirroring.
func (l *Ledger) SetLogger(log *slog.Logger) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.logger = log
	l.mu.Unlock()
}

// NewLedger returns an enabled empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Enabled reports whether l records anything; false for the nil ledger.
func (l *Ledger) Enabled() bool { return l != nil }

// Reset clears all recorded rows, keeping capacity, for reuse across runs.
func (l *Ledger) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.levels = l.levels[:0]
	l.warnings = l.warnings[:0]
	l.mu.Unlock()
}

// Record appends one level row. It derives MergedVertices, MergeFraction,
// HubShare, and MetricDelta from the raw fields, then checks the row for
// anomalies and appends structured Warnings. Rows must arrive in level
// order from the engine goroutine; concurrent Export/snapshot is safe.
func (l *Ledger) Record(st LevelStats) {
	if l == nil {
		return
	}
	st.MergedVertices = st.Vertices - st.OutVertices
	if st.Vertices > 0 {
		st.MergeFraction = float64(st.MergedVertices) / float64(st.Vertices)
	}
	if st.Edges > 0 {
		st.HubShare = float64(st.MaxBucketLen) / float64(st.Edges)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// The anomaly checks are stage-guarded. PLP sweep rows carry no metric,
	// so they neither produce nor anchor a metric delta — and shard rows
	// likewise (their modularity would be against shard-local weight); the
	// coarsen row's Drain is the PLP active-vertex curve, which
	// legitimately plateaus (a wave of label changes re-activates whole
	// neighborhoods), so the geometric-drain expectation applies only to
	// matching rows.
	metricless := func(stage string) bool { return stage == StagePLP || stage == StageShard }
	if n := len(l.levels); n > 0 && !metricless(StageOf(st)) && !metricless(StageOf(l.levels[n-1])) {
		st.MetricDelta = st.Metric - l.levels[n-1].Metric
		if st.MetricDelta < -1e-12 {
			l.warn(st.Level, WarnMetricDecrease,
				fmt.Sprintf("metric fell %.6f -> %.6f", l.levels[n-1].Metric, st.Metric))
		}
	}
	if StageOf(st) == StageMatch {
		for i := 0; i+1 < len(st.Drain); i++ {
			if st.Drain[i+1] >= st.Drain[i] {
				l.warn(st.Level, WarnMatchingStall,
					fmt.Sprintf("pass %d made no progress: worklist %d -> %d",
						i, st.Drain[i], st.Drain[i+1]))
				break
			}
		}
		if st.MatchPasses > stallPassCap {
			l.warn(st.Level, WarnMatchingStall,
				fmt.Sprintf("%d matching passes (expected geometric drain)", st.MatchPasses))
		}
	}
	if StageOf(st) == StageIncremental && st.PrevCommunities > 0 &&
		st.Dissolved*dissolveStormDen > st.PrevCommunities {
		l.warn(st.Level, WarnDissolveStorm,
			fmt.Sprintf("dissolved %d of %d previous communities (> 1/%d): from-scratch detection is likely cheaper",
				st.Dissolved, st.PrevCommunities, dissolveStormDen))
	}
	if st.SchedBound > 0 && st.SchedImbalance > st.SchedBound*imbalanceSlack {
		l.warn(st.Level, WarnImbalance,
			fmt.Sprintf("schedule imbalance %.2f exceeds analytic bound %.2f",
				st.SchedImbalance, st.SchedBound))
	}
	l.levels = append(l.levels, st)
}

// warn appends a warning, mirrors it into the flight ring, and — when a
// logger is attached — emits it as a real-time log record. Callers hold l.mu.
func (l *Ledger) warn(level int, code, detail string) {
	l.warnings = append(l.warnings, Warning{Level: level, Code: code, Detail: detail})
	Flight().Record(FlightWarning, "ledger", code, detail, 0)
	l.profiler.TriggerCPU(code)
	if l.logger != nil {
		l.logger.Warn("convergence anomaly", "code", code, "level", level, "detail", detail)
	}
}

// AddWarning appends one structured warning from outside the Record path —
// the run doctor's drift findings arrive this way after the run finishes.
// level is the row index the warning anchors to (-1 for run-scoped). It
// mirrors into the flight ring and the attached logger like every other
// warning. Nil-safe.
func (l *Ledger) AddWarning(level int, code, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.warn(level, code, detail)
	l.mu.Unlock()
}

// Levels returns a copy of the recorded rows, in level order.
func (l *Ledger) Levels() []LevelStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LevelStats(nil), l.levels...)
}

// Warnings returns a copy of the flagged anomalies.
func (l *Ledger) Warnings() []Warning {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Warning(nil), l.warnings...)
}

// NumLevels reports the number of recorded rows.
func (l *Ledger) NumLevels() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.levels)
}

// LedgerProfile is the ledger's structured export, embedded in report JSON
// and served by the live expvar endpoint.
type LedgerProfile struct {
	Levels   []LevelStats `json:"levels,omitempty"`
	Warnings []Warning    `json:"warnings,omitempty"`
}

// Export snapshots the ledger. Safe to call concurrently with a run; nil
// for the disabled ledger.
func (l *Ledger) Export() *LedgerProfile {
	if l == nil {
		return nil
	}
	return &LedgerProfile{Levels: l.Levels(), Warnings: l.Warnings()}
}

// SizeHistogram folds community sizes into a log2 histogram: bin b counts
// communities whose size has bit-length b (bin 1 = size 1, bin 2 = 2–3, bin
// 3 = 4–7, ...). Trailing empty bins are trimmed; zero-size slots (absent
// communities in a sparse roll-up) are skipped.
func SizeHistogram(sizes []int64) []int64 {
	var hist [histBins]int64
	top := 0
	for _, s := range sizes {
		if s <= 0 {
			continue
		}
		b := bits.Len64(uint64(s))
		if b >= histBins {
			b = histBins - 1
		}
		hist[b]++
		if b > top {
			top = b
		}
	}
	if top == 0 {
		return nil
	}
	return append([]int64(nil), hist[:top+1]...)
}

package obs

import "testing"

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	if l.Enabled() {
		t.Fatal("nil ledger reports enabled")
	}
	l.Reset()
	l.Record(LevelStats{Level: 0, Vertices: 10})
	if l.Levels() != nil || l.Warnings() != nil || l.NumLevels() != 0 || l.Export() != nil {
		t.Fatal("nil ledger returned non-empty state")
	}
}

func TestLedgerDerivesFields(t *testing.T) {
	l := NewLedger()
	l.Record(LevelStats{
		Level: 0, Vertices: 100, Edges: 400, OutVertices: 60,
		MaxBucketLen: 100, Metric: 0.2,
	})
	l.Record(LevelStats{
		Level: 1, Vertices: 60, Edges: 200, OutVertices: 45,
		MaxBucketLen: 40, Metric: 0.5,
	})
	rows := l.Levels()
	if len(rows) != 2 {
		t.Fatalf("recorded %d rows, want 2", len(rows))
	}
	r0, r1 := rows[0], rows[1]
	if r0.MergedVertices != 40 || r0.MergeFraction != 0.4 {
		t.Fatalf("row 0 merged %d frac %v, want 40 / 0.4", r0.MergedVertices, r0.MergeFraction)
	}
	if r0.HubShare != 0.25 {
		t.Fatalf("row 0 hub share %v, want 0.25", r0.HubShare)
	}
	if r0.MetricDelta != 0 {
		t.Fatalf("first row has metric delta %v", r0.MetricDelta)
	}
	if d := r1.MetricDelta; d < 0.3-1e-12 || d > 0.3+1e-12 {
		t.Fatalf("row 1 metric delta %v, want 0.3", d)
	}
	if len(l.Warnings()) != 0 {
		t.Fatalf("unexpected warnings: %+v", l.Warnings())
	}
}

func TestLedgerWarnsOnMetricDecrease(t *testing.T) {
	l := NewLedger()
	l.Record(LevelStats{Level: 0, Metric: 0.5})
	l.Record(LevelStats{Level: 1, Metric: 0.3})
	ws := l.Warnings()
	if len(ws) != 1 || ws[0].Code != WarnMetricDecrease || ws[0].Level != 1 {
		t.Fatalf("warnings %+v, want one metric-decrease at level 1", ws)
	}
}

func TestLedgerWarnsOnMatchingStall(t *testing.T) {
	l := NewLedger()
	// Non-shrinking drain curve.
	l.Record(LevelStats{Level: 0, MatchPasses: 3, Drain: []int64{100, 40, 40}})
	// Pass count past the geometric-drain cap.
	l.Record(LevelStats{Level: 1, MatchPasses: stallPassCap + 1})
	var stalls int
	for _, w := range l.Warnings() {
		if w.Code == WarnMatchingStall {
			stalls++
		}
	}
	if stalls != 2 {
		t.Fatalf("got %d stall warnings, want 2: %+v", stalls, l.Warnings())
	}
	// A strictly shrinking drain must not warn.
	l.Reset()
	l.Record(LevelStats{Level: 0, MatchPasses: 3, Drain: []int64{100, 40, 5}})
	if len(l.Warnings()) != 0 {
		t.Fatalf("shrinking drain warned: %+v", l.Warnings())
	}
}

func TestLedgerWarnsOnImbalanceBlowPast(t *testing.T) {
	l := NewLedger()
	// Within slack of the bound: no warning.
	l.Record(LevelStats{Level: 0, SchedImbalance: 1.4, SchedBound: 1.0})
	if len(l.Warnings()) != 0 {
		t.Fatalf("in-slack imbalance warned: %+v", l.Warnings())
	}
	// Past bound*slack: warns.
	l.Record(LevelStats{Level: 1, SchedImbalance: 1.6, SchedBound: 1.0})
	ws := l.Warnings()
	if len(ws) != 1 || ws[0].Code != WarnImbalance {
		t.Fatalf("warnings %+v, want one imbalance at level 1", ws)
	}
}

func TestLedgerResetAndExport(t *testing.T) {
	l := NewLedger()
	l.Record(LevelStats{Level: 0, Metric: 0.5})
	l.Record(LevelStats{Level: 1, Metric: 0.1})
	ep := l.Export()
	if len(ep.Levels) != 2 || len(ep.Warnings) != 1 {
		t.Fatalf("export %d levels %d warnings, want 2/1", len(ep.Levels), len(ep.Warnings))
	}
	l.Reset()
	if l.NumLevels() != 0 || len(l.Warnings()) != 0 {
		t.Fatal("reset left state behind")
	}
	// The export snapshot must be unaffected by the reset.
	if len(ep.Levels) != 2 {
		t.Fatal("export aliases live storage")
	}
}

func TestSizeHistogram(t *testing.T) {
	// Sizes 1,1,2,3,4,7,8: bit lengths 1,1,2,2,3,3,4.
	h := SizeHistogram([]int64{1, 1, 2, 3, 4, 7, 8, 0, -2})
	want := []int64{0, 2, 2, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
	if SizeHistogram(nil) != nil || SizeHistogram([]int64{0}) != nil {
		t.Fatal("empty input should yield nil histogram")
	}
	// Oversized values clamp into the last bin instead of indexing out.
	big := SizeHistogram([]int64{1 << 40})
	if len(big) != histBins || big[histBins-1] != 1 {
		t.Fatalf("oversized value not clamped: %v", big)
	}
}

func TestNowNSMonotone(t *testing.T) {
	a := NowNS()
	b := NowNS()
	if b < a {
		t.Fatalf("NowNS went backwards: %d then %d", a, b)
	}
}

package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// TestNilLatencyHistIsSafe: the disabled histogram must accept every call.
func TestNilLatencyHistIsSafe(t *testing.T) {
	var h *LatencyHist
	h.Observe(100)
	h.ObserveSince(0)
	h.Merge(&LatencyHist{})
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Snapshot("x") != nil {
		t.Fatal("nil histogram holds state")
	}
	var s *LatencySet
	s.Observe(LatDetect, 100)
	s.Merge(&LatencySet{})
	s.Reset()
	if s.Hist(LatDetect) != nil || s.Export() != nil {
		t.Fatal("nil latency set holds state")
	}
}

// TestLatBucketBounds pins the bucketing map: every representable duration
// lands in a bucket whose upper bound is at least the value and at most
// (1+1/latSub) times it — the histogram's advertised quantile error.
func TestLatBucketBounds(t *testing.T) {
	for _, ns := range []int64{
		1 << latMinShift, 1<<latMinShift + 1, 1500, 4095, 4096, 4097,
		1_000_000, 999_999_999, 1<<latMaxShift - 1,
	} {
		b := latBucketOf(ns)
		up := latUpperNS(b)
		if up < float64(ns) {
			t.Errorf("ns=%d bucket %d upper %g < value", ns, b, up)
		}
		if up > float64(ns)*(1+1.0/latSub) {
			t.Errorf("ns=%d bucket %d upper %g exceeds (1+1/%d) bound", ns, b, up, latSub)
		}
	}
	if b := latBucketOf(100); b != 0 {
		t.Errorf("sub-range value got bucket %d, want underflow 0", b)
	}
	if b := latBucketOf(1 << 40); b != numLatBuckets-1 {
		t.Errorf("overflow value got bucket %d, want %d", b, numLatBuckets-1)
	}
	if up := latUpperNS(numLatBuckets - 1); !math.IsInf(up, 1) {
		t.Errorf("overflow upper = %g, want +Inf", up)
	}
}

// lcg is a deterministic pseudo-random source so the quantile-accuracy check
// never flakes.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// TestLatencyHistQuantileAccuracy draws a deterministic heavy-tailed sample,
// then checks every reported quantile against the exact sorted-sample answer:
// the estimate must be at least the true value and within the 1/latSub
// relative-error bound the log-linear layout guarantees.
func TestLatencyHistQuantileAccuracy(t *testing.T) {
	var h LatencyHist
	var r lcg = 42
	const n = 20000
	samples := make([]int64, n)
	for i := range samples {
		// Spread across ~16 octaves: 2^12 .. 2^28 ns.
		shift := 12 + r.next()%17
		ns := int64(1<<shift + r.next()%(1<<shift))
		samples[i] = ns
		h.Observe(ns)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		k := int(math.Ceil(q*n)) - 1
		if k < 0 {
			k = 0
		}
		truth := float64(samples[k]) / 1e9
		est := h.Quantile(q)
		if est < truth {
			t.Errorf("q=%.2f: estimate %g below true %g", q, est, truth)
		}
		if est > truth*(1+1.0/latSub)+1e-12 {
			t.Errorf("q=%.2f: estimate %g exceeds error bound over true %g", q, est, truth)
		}
	}
	if got, want := h.Count(), int64(n); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

// TestLatencyHistOverflowQuantile: the overflow bucket reports the exact
// running max, not +Inf.
func TestLatencyHistOverflowQuantile(t *testing.T) {
	var h LatencyHist
	h.Observe(1 << 40)
	h.Observe(1<<40 + 5)
	if got, want := h.Quantile(1.0), float64(1<<40+5)/1e9; got != want {
		t.Fatalf("overflow quantile = %g, want exact max %g", got, want)
	}
}

// TestLatencyHistMerge: merging equals observing the union.
func TestLatencyHistMerge(t *testing.T) {
	var a, b, both LatencyHist
	for i := int64(1); i <= 1000; i++ {
		ns := i * 7919
		if i%2 == 0 {
			a.Observe(ns)
		} else {
			b.Observe(ns)
		}
		both.Observe(ns)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), both.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%.2f: merged %g != direct %g", q, a.Quantile(q), both.Quantile(q))
		}
	}
	sa, sb := a.Snapshot("a"), both.Snapshot("b")
	if sa.SumSec != sb.SumSec || sa.MaxSec != sb.MaxSec {
		t.Fatalf("merged sum/max (%g,%g) != direct (%g,%g)", sa.SumSec, sa.MaxSec, sb.SumSec, sb.MaxSec)
	}
}

// TestLatencyHistConcurrent hammers one histogram from many goroutines; run
// under -race this pins the lock-free observation path, and the final count
// checks no observation was lost.
func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var r lcg = lcg(w + 1)
			for i := 0; i < per; i++ {
				h.Observe(int64(1<<14 + r.next()%(1<<20)))
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*per); got != want {
		t.Fatalf("Count = %d, want %d (lost observations)", got, want)
	}
}

// TestLatencySnapshotCumulative: exported buckets are cumulative and monotone
// with the last count equal to the total.
func TestLatencySnapshotCumulative(t *testing.T) {
	var h LatencyHist
	for i := int64(0); i < 500; i++ {
		h.Observe(1<<12 + i*31337)
	}
	p := h.Snapshot("test")
	if p == nil || len(p.Buckets) == 0 {
		t.Fatal("snapshot empty")
	}
	prevLe, prevCount := -1.0, int64(0)
	for _, b := range p.Buckets {
		if b.LeSec <= prevLe {
			t.Fatalf("bucket bounds not increasing: %g after %g", b.LeSec, prevLe)
		}
		if b.Count < prevCount {
			t.Fatalf("cumulative count decreased: %d after %d", b.Count, prevCount)
		}
		prevLe, prevCount = b.LeSec, b.Count
	}
	if prevCount != p.Count {
		t.Fatalf("last cumulative count %d != total %d", prevCount, p.Count)
	}
}

// TestLatencySetExport: classes export under their stable names in class
// order, skipping empty ones.
func TestLatencySetExport(t *testing.T) {
	var s LatencySet
	s.Observe(LatDetect, 1<<20)
	s.Observe(LatContract, 1<<21)
	out := s.Export()
	if len(out) != 2 || out[0].Class != "detect" || out[1].Class != "contract" {
		t.Fatalf("export = %+v, want detect then contract", out)
	}
	s.Reset()
	if s.Export() != nil {
		t.Fatal("export after reset not empty")
	}
}

// TestRecorderLatencies: the recorder-level accessors route to the embedded
// set and no-op on nil.
func TestRecorderLatencies(t *testing.T) {
	var nilRec *Recorder
	nilRec.ObserveLatency(LatDetect, 100)
	if nilRec.Latencies() != nil || nilRec.LatencyHist(LatDetect) != nil {
		t.Fatal("nil recorder holds latency state")
	}
	r := New()
	r.ObserveLatency(LatLevel, 1<<20)
	if got := r.Latencies(); len(got) != 1 || got[0].Class != "level" {
		t.Fatalf("Latencies = %+v, want one level profile", got)
	}
	r.Reset()
	if r.Latencies() != nil {
		t.Fatal("latencies survive Reset")
	}
}

package obs

// Prometheus text-format exposition (format version 0.0.4), stdlib-only.
// The /metrics/prom handler renders whatever is live on the endpoint —
// recorder counters and kernel seconds, ledger convergence state, latency
// histograms, the cached Go runtime sample, and any externally registered
// sources (exec's context-pool counters arrive this way: exec imports obs,
// so obs exposes a registry instead of importing exec back).
//
// Ordering is fixed and fully deterministic — families in source order,
// labeled series sorted by label value — so the output is golden-file
// testable and scrape diffs are meaningful.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
)

// promSource is one externally registered single-value series.
type promSource struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func() int64
}

var (
	promMu      sync.Mutex
	promSources []promSource
)

// registerProm adds a series, replacing any previous registration under the
// same name (packages register from init; tests may re-register).
func registerProm(name, help, typ string, value func() int64) {
	promMu.Lock()
	defer promMu.Unlock()
	for i := range promSources {
		if promSources[i].name == name {
			promSources[i] = promSource{name, help, typ, value}
			return
		}
	}
	promSources = append(promSources, promSource{name, help, typ, value})
}

// RegisterPromCounter exposes fn as a monotone counter series on
// /metrics/prom. fn must be safe to call from any goroutine.
func RegisterPromCounter(name, help string, fn func() int64) {
	registerProm(name, help, "counter", fn)
}

// RegisterPromGauge exposes fn as a gauge series on /metrics/prom.
func RegisterPromGauge(name, help string, fn func() int64) {
	registerProm(name, help, "gauge", fn)
}

// promSourcesSnapshot returns the registered series sorted by name.
func promSourcesSnapshot() []promSource {
	promMu.Lock()
	out := append([]promSource(nil), promSources...)
	promMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// promWriter accumulates exposition lines, capturing the first write error
// so the renderer reads as straight-line code.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the # HELP / # TYPE preamble for one family.
func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one series line. labels is pre-rendered ("" or
// `{key="value"}`).
func (p *promWriter) sample(name, labels string, v float64) {
	p.printf("%s%s %s\n", name, labels, promFloat(v))
}

// promFloat renders a value in the exposition format's float syntax.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabel renders a single-label selector, escaping the value per the
// exposition format.
func promLabel(key, val string) string {
	return `{` + key + `="` + promEscape(val) + `"}`
}

// promLabels renders a multi-label selector from key/value pairs, in the
// order given (the exposition format does not require sorted labels, and a
// fixed order keeps the document golden-testable).
func promLabels(kv ...string) string {
	out := []byte{'{'}
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, kv[i]...)
		out = append(out, '=', '"')
		out = append(out, promEscape(kv[i+1])...)
		out = append(out, '"')
	}
	return string(append(out, '}'))
}

// promEscape escapes a label value per the exposition format.
func promEscape(val string) string {
	esc := make([]byte, 0, len(val)+16)
	for i := 0; i < len(val); i++ {
		switch c := val[i]; c {
		case '\\':
			esc = append(esc, '\\', '\\')
		case '"':
			esc = append(esc, '\\', '"')
		case '\n':
			esc = append(esc, '\\', 'n')
		default:
			esc = append(esc, c)
		}
	}
	return string(esc)
}

// buildGitSHA reads the VCS revision stamped into binaries built from a
// checkout; empty under `go test` or a non-VCS build. Cached — ReadBuildInfo
// walks the module graph.
var buildGitSHA = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
})

// WritePrometheus renders the full exposition document. Any argument may be
// nil: nil recorder/ledger skip their sections, nil rt samples the cached
// (or a fresh) runtime snapshot. The rt parameter exists so tests can pin a
// fixed sample.
func WritePrometheus(w io.Writer, r *Recorder, l *Ledger, rt *RuntimeStats) error {
	p := &promWriter{w: w}
	if rt == nil {
		rt = latestRuntime()
	}

	p.header("community_build_info", "Build information for the community-detection process.", "gauge")
	p.sample("community_build_info", promLabel("go_version", runtime.Version()), 1)
	p.header("community_go_build_info", "Info-style build identity: toolchain version and VCS revision (git_sha empty outside a VCS build).", "gauge")
	p.sample("community_go_build_info", promLabels("go_version", runtime.Version(), "git_sha", buildGitSHA()), 1)

	// The doctor gauges are always emitted (zeros before any run is
	// assessed) so dashboards and alerts can rely on the series existing.
	v := LiveVerdict()
	anomalous, baseRuns, findings, regress, maxZ := 0.0, 0.0, 0.0, 0.0, 0.0
	if v != nil {
		if v.Anomalous() {
			anomalous = 1
		}
		baseRuns = float64(v.BaselineRuns)
		findings = float64(len(v.Findings))
		regress = float64(v.Regressions())
		maxZ = v.MaxAbsZ
	}
	p.header("community_doctor_anomalous", "1 when the most recent run's doctor verdict flagged it as anomalous against its baseline.", "gauge")
	p.sample("community_doctor_anomalous", "", anomalous)
	p.header("community_doctor_baseline_runs", "Archived runs the most recent verdict's baseline was learned from.", "gauge")
	p.sample("community_doctor_baseline_runs", "", baseRuns)
	p.header("community_doctor_findings", "Drift findings (either direction) in the most recent verdict.", "gauge")
	p.sample("community_doctor_findings", "", findings)
	p.header("community_doctor_regressions", "Drift findings in the regressing direction in the most recent verdict.", "gauge")
	p.sample("community_doctor_regressions", "", regress)
	p.header("community_doctor_max_abs_z", "Largest robust |z| across the most recent verdict's assessed metrics.", "gauge")
	p.sample("community_doctor_max_abs_z", "", maxZ)
	p.header("community_profiles_captured_total", "pprof profiles archived by the triggered profiler.", "counter")
	p.sample("community_profiles_captured_total", "", float64(ProfilesCaptured()))

	p.header("community_go_goroutines", "Live goroutine count at the last runtime sample.", "gauge")
	p.sample("community_go_goroutines", "", float64(rt.Goroutines))
	p.header("community_go_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge")
	p.sample("community_go_heap_alloc_bytes", "", float64(rt.HeapAllocB))
	p.header("community_go_heap_objects", "Live heap objects.", "gauge")
	p.sample("community_go_heap_objects", "", float64(rt.HeapObjects))
	p.header("community_go_sys_bytes", "Total bytes obtained from the OS.", "gauge")
	p.sample("community_go_sys_bytes", "", float64(rt.SysB))
	p.header("community_go_next_gc_bytes", "Heap size target of the next GC cycle.", "gauge")
	p.sample("community_go_next_gc_bytes", "", float64(rt.NextGCB))
	p.header("community_go_gc_cycles_total", "Completed GC cycles.", "counter")
	p.sample("community_go_gc_cycles_total", "", float64(rt.GCCycles))
	p.header("community_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.sample("community_go_gc_pause_seconds_total", "", float64(rt.GCPauseSec))

	for _, s := range promSourcesSnapshot() {
		p.header(s.name, s.help, s.typ)
		p.sample(s.name, "", float64(s.value()))
	}

	if r != nil {
		p.header("community_recorder_uptime_seconds", "Seconds since the live recorder was created or reset.", "gauge")
		p.sample("community_recorder_uptime_seconds", "", float64(r.since())/1e9)
		p.header("community_detect_phases", "Contraction phases recorded by the live recorder.", "gauge")
		p.sample("community_detect_phases", "", float64(r.Phases()))
		p.header("community_engine_events_total", "Engine event counters by kind (matching rounds, contracted edges, ...).", "counter")
		for c := Counter(0); c < NumCounters; c++ {
			p.sample("community_engine_events_total", promLabel("counter", c.String()), float64(r.Counter(c)))
		}
		if ks := r.KernelSeconds(); len(ks) > 0 {
			sort.Slice(ks, func(i, j int) bool { return ks[i].Kernel < ks[j].Kernel })
			p.header("community_kernel_seconds", "Cumulative wall seconds per instrumented kernel span.", "gauge")
			for _, k := range ks {
				p.sample("community_kernel_seconds", promLabel("kernel", k.Kernel), k.Seconds)
			}
		}
	}

	if l != nil {
		levels := l.Levels()
		p.header("community_convergence_levels", "Contraction levels recorded by the live convergence ledger.", "gauge")
		p.sample("community_convergence_levels", "", float64(len(levels)))
		p.header("community_convergence_warnings_total", "Structured anomaly warnings flagged by the ledger.", "counter")
		p.sample("community_convergence_warnings_total", "", float64(len(l.Warnings())))
		if len(levels) > 0 {
			last := levels[len(levels)-1]
			var merged int64
			for _, st := range levels {
				merged += st.MergedVertices
			}
			p.header("community_convergence_metric", "Scoring metric (modularity) entering the most recent level.", "gauge")
			p.sample("community_convergence_metric", "", last.Metric)
			p.header("community_convergence_merged_vertices_total", "Vertices merged away across all recorded levels.", "counter")
			p.sample("community_convergence_merged_vertices_total", "", float64(merged))
		}
	}

	p.header("community_flight_events_total", "Events recorded by the process flight recorder.", "counter")
	p.sample("community_flight_events_total", "", float64(Flight().Total()))
	p.header("community_flight_dropped_total", "Flight-recorder events dropped to slot contention.", "counter")
	p.sample("community_flight_dropped_total", "", float64(Flight().Dropped()))

	if r != nil {
		if lats := r.Latencies(); len(lats) > 0 {
			p.header("community_latency_seconds", "Engine latency distributions by class (detect, level, kernel pass).", "histogram")
			for _, lp := range lats {
				sel := promLabel("class", lp.Class)
				base := sel[:len(sel)-1] // reopen the label set to append le
				sawInf := false
				for _, b := range lp.Buckets {
					p.printf("community_latency_seconds_bucket%s,le=\"%s\"} %d\n", base, promFloat(b.LeSec), b.Count)
					if math.IsInf(b.LeSec, 1) {
						sawInf = true
					}
				}
				if !sawInf {
					p.printf("community_latency_seconds_bucket%s,le=\"+Inf\"} %d\n", base, lp.Count)
				}
				p.printf("community_latency_seconds_sum%s %s\n", sel, promFloat(lp.SumSec))
				p.printf("community_latency_seconds_count%s %d\n", sel, lp.Count)
			}
		}
	}

	return p.err
}

// promContentType is the exposition format's content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promHandler serves /metrics/prom from the live recorder and ledger.
func promHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	WritePrometheus(w, liveRec.Load(), liveLedger.Load(), nil)
}

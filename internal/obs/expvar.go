package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// The live metrics endpoint publishes a snapshot of the "current" recorder —
// a process-wide atomic pointer — under the expvar name "detection". expvar
// panics on duplicate Publish, so registration happens exactly once no
// matter how many recorders come and go (harness sweeps swap recorders per
// run).
var (
	liveRec        atomic.Pointer[Recorder]
	publishOnce    sync.Once
	liveLedger     atomic.Pointer[Ledger]
	publishLedOnce sync.Once
)

// SetLive makes r the recorder exposed by the expvar/HTTP endpoint. Pass nil
// to detach. Returns r for chaining.
func SetLive(r *Recorder) *Recorder {
	publishOnce.Do(func() {
		expvar.Publish("detection", expvar.Func(func() any {
			return liveRec.Load().Export()
		}))
	})
	liveRec.Store(r)
	return r
}

// SetLiveLedger makes l the convergence ledger exposed by the expvar/HTTP
// endpoint under the "convergence" var and the /convergence path: per-level
// merge fractions, metric trajectory, and any warnings, readable mid-run.
// Pass nil to detach. Returns l for chaining.
func SetLiveLedger(l *Ledger) *Ledger {
	publishLedOnce.Do(func() {
		expvar.Publish("convergence", expvar.Func(func() any {
			return liveLedger.Load().Export()
		}))
	})
	liveLedger.Store(l)
	return l
}

// writeSnapshot serves v as a standalone indented JSON document (expvar's
// /debug/vars mixes everything with runtime vars; these paths are just ours).
// A typed-nil export serializes as JSON null, which keeps "nothing live yet"
// distinguishable from an empty profile.
func writeSnapshot[T any](w http.ResponseWriter, v *T) {
	w.Header().Set("Content-Type", "application/json")
	if v == nil {
		w.Write([]byte("{}\n"))
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the metrics endpoint's mux: /metrics (live Profile JSON),
// /metrics/prom (Prometheus text exposition), /convergence (live
// LedgerProfile JSON), /debug/vars (standard expvar, including the
// "detection" and "convergence" vars), /debug/flight (the flight-recorder
// black box as JSON, on demand), /debug/pprof/* (the standard profiling
// endpoints: index, CPU profile windows, heap and the other runtime
// profiles, symbolization, execution traces), and /healthz. The pprof
// handlers are wired explicitly rather than via the net/http/pprof side
// effect on DefaultServeMux — the metrics endpoint owns its mux, and a CLI
// that never serves HTTP must not grow debug routes implicitly. Exposed
// separately from Serve so tests can drive it without a listener.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeSnapshot(w, liveRec.Load().Export())
	})
	mux.HandleFunc("/metrics/prom", promHandler)
	mux.HandleFunc("/convergence", func(w http.ResponseWriter, _ *http.Request) {
		writeSnapshot(w, liveLedger.Load().Export())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		Flight().WriteDump(w, "http")
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// MetricsServer is a running live-metrics endpoint. Close shuts it down
// cleanly: the listener stops accepting, in-flight requests get a grace
// period, and Close only returns once the server goroutine has exited — the
// fix for the old API, which returned the bare listener and leaked the
// http.Server (its keep-alive connections outlived every "shutdown").
type MetricsServer struct {
	ln      net.Listener
	srv     *http.Server
	close   sync.Once
	done    chan struct{}
	err     error
	sampler *RuntimeSampler
}

// Addr returns the bound address, usable with an OS-assigned ":0" port.
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close shuts the endpoint down and waits for the serve goroutine to exit.
// Safe to call more than once and from deferred paths.
func (m *MetricsServer) Close() error {
	m.close.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		m.err = m.srv.Shutdown(ctx)
		<-m.done
		m.sampler.Stop()
	})
	return m.err
}

// Serve registers r as the live recorder and l as the live ledger (either
// may be nil), then starts the metrics endpoint on addr (e.g.
// "localhost:8123", or "127.0.0.1:0" for an OS-assigned test port) in a
// background goroutine, along with the runtime sampler that feeds the
// Prometheus community_go_* series. The CLIs treat a bind failure as fatal
// flag misuse. Close stops both the server and the sampler.
func Serve(addr string, r *Recorder, l *Ledger) (*MetricsServer, error) {
	SetLive(r)
	SetLiveLedger(l)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{
		ln:      ln,
		srv:     &http.Server{Handler: Handler()},
		done:    make(chan struct{}),
		sampler: StartRuntimeSampler(DefaultRuntimeSamplePeriod),
	}
	go func() {
		defer close(m.done)
		m.srv.Serve(ln)
	}()
	return m, nil
}

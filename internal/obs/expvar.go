package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// The live metrics endpoint publishes a snapshot of the "current" recorder —
// a process-wide atomic pointer — under the expvar name "detection". expvar
// panics on duplicate Publish, so registration happens exactly once no
// matter how many recorders come and go (harness sweeps swap recorders per
// run).
var (
	liveRec     atomic.Pointer[Recorder]
	publishOnce sync.Once
)

// SetLive makes r the recorder exposed by the expvar/HTTP endpoint. Pass nil
// to detach. Returns r for chaining.
func SetLive(r *Recorder) *Recorder {
	publishOnce.Do(func() {
		expvar.Publish("detection", expvar.Func(func() any {
			return liveRec.Load().Export()
		}))
	})
	liveRec.Store(r)
	return r
}

// snapshot serves the live recorder's Profile as a standalone JSON document
// (expvar's /debug/vars mixes it with runtime vars; /metrics is just ours).
func snapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	p := liveRec.Load().Export()
	if p == nil {
		w.Write([]byte("{}\n"))
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}

// Handler returns the metrics endpoint's mux: /metrics (live Profile JSON),
// /debug/vars (standard expvar, including the "detection" var), and /healthz.
// Exposed separately from Serve so tests can drive it without a listener.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", snapshot)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Serve registers r as the live recorder and starts the metrics endpoint on
// addr (e.g. "localhost:8123") in a background goroutine. It returns the
// bound listener so callers can report the actual address and close it on
// shutdown; the CLIs treat a bind failure as fatal flag misuse.
func Serve(addr string, r *Recorder) (net.Listener, error) {
	SetLive(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln, nil
}

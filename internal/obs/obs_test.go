package obs

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/par"
)

// TestNilRecorderNoOps: every exported method must be callable on a nil
// *Recorder — the disabled path the engine threads through hot layers.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	s := r.Begin(CatKernel, "score", 0)
	s.End()
	s.EndArgs("a", 1, "b", 2)
	ps := r.BeginPhase(0, 10, 20)
	ps.End()
	r.Add(CtrMatchRounds, 5)
	if r.Counter(CtrMatchRounds) != 0 {
		t.Fatal("nil recorder holds state")
	}
	if r.Hot() != nil || r.HotCounter(CtrMatchClaims) != nil {
		t.Fatal("nil recorder returned a hot block")
	}
	r.FoldHot()
	r.ObserveBuckets([]int64{1, 2, 3})
	if r.WorkerTimes(4) != nil {
		t.Fatal("nil recorder returned worker times")
	}
	r.FoldWorkerTimes("x", []int64{1})
	r.SetKernel("score")
	r.ClearLabels()
	r.Reset()
	r.SetPprofLabels(true)
	if r.Export() != nil || r.KernelSeconds() != nil {
		t.Fatal("nil recorder exported data")
	}
	if err := r.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
}

// A nil Hot block must also absorb adds (hot loops receive it unguarded).
func TestNilHot(t *testing.T) {
	var h *Hot
	h.Add(CtrMatchClaims, 3)
}

func TestCountersAndHotFold(t *testing.T) {
	r := New()
	r.Add(CtrMatchRounds, 2)
	r.Add(CtrMatchRounds, 3)
	if got := r.Counter(CtrMatchRounds); got != 5 {
		t.Fatalf("Counter = %d, want 5", got)
	}
	h := r.Hot()
	h.Add(CtrMatchClaims, 7)
	h.Add(CtrMatchConflicts, 1)
	if got := r.Counter(CtrMatchClaims); got != 0 {
		t.Fatalf("hot counts visible before fold: %d", got)
	}
	r.FoldHot()
	if got := r.Counter(CtrMatchClaims); got != 7 {
		t.Fatalf("after fold Counter = %d, want 7", got)
	}
	// HotCounter addresses the same block.
	p := r.HotCounter(CtrScoreMasked)
	*p = 11
	r.FoldHot()
	if got := r.Counter(CtrScoreMasked); got != 11 {
		t.Fatalf("HotCounter fold = %d, want 11", got)
	}
	// Fold drains: second fold adds nothing.
	r.FoldHot()
	if got := r.Counter(CtrMatchClaims); got != 7 {
		t.Fatalf("second fold changed total: %d", got)
	}
}

func TestSpansAndKernelSeconds(t *testing.T) {
	r := New()
	ph := r.BeginPhase(0, 100, 400)
	s := r.Begin(CatKernel, "score", -1)
	time.Sleep(2 * time.Millisecond)
	s.End()
	m := r.Begin(CatKernel, "match", -1)
	m.EndArgs("pairs", 42, "passes", 3)
	ph.End()

	ks := r.KernelSeconds()
	if len(ks) != 2 || ks[0].Kernel != "score" || ks[1].Kernel != "match" {
		t.Fatalf("KernelSeconds = %+v", ks)
	}
	if ks[0].Seconds <= 0 {
		t.Fatalf("score seconds not positive: %v", ks[0].Seconds)
	}

	p := r.Export()
	if p.Phases != 1 {
		t.Fatalf("Phases = %d, want 1", p.Phases)
	}
	if len(p.Spans) != 3 {
		t.Fatalf("Spans = %d, want 3", len(p.Spans))
	}
	// The phase span carries vertices/edges; the match span its end args.
	if p.Spans[0].Args["vertices"] != 100 || p.Spans[0].Args["edges"] != 400 {
		t.Fatalf("phase args = %v", p.Spans[0].Args)
	}
	if p.Spans[2].Args["pairs"] != 42 {
		t.Fatalf("match args = %v", p.Spans[2].Args)
	}
	// Spans beginning with phase -1 inherit the current phase.
	for _, sp := range p.Spans {
		if sp.Phase != 0 {
			t.Fatalf("span phase = %d, want 0", sp.Phase)
		}
	}
}

func TestBucketHistogram(t *testing.T) {
	r := New()
	r.ObserveBuckets([]int64{0, 1, 1, 2, 3, 5, 100})
	p := r.Export()
	want := map[int64]int64{0: 1, 1: 2, 3: 2, 7: 1, 127: 1}
	if len(p.BucketHist) != len(want) {
		t.Fatalf("hist bins = %+v", p.BucketHist)
	}
	for _, b := range p.BucketHist {
		if want[b.MaxLen] != b.Buckets {
			t.Fatalf("bin maxlen=%d got %d want %d", b.MaxLen, b.Buckets, want[b.MaxLen])
		}
	}
}

func TestWorkerTimesImbalance(t *testing.T) {
	r := New()
	times := r.WorkerTimes(4)
	times[0], times[1], times[2], times[3] = 100, 100, 100, 300
	r.FoldWorkerTimes("contract/count", times)
	p := r.Export()
	if len(p.Regions) != 1 {
		t.Fatalf("Regions = %+v", p.Regions)
	}
	reg := p.Regions[0]
	if reg.Region != "contract/count" || reg.Calls != 1 || reg.Workers != 4 {
		t.Fatalf("region = %+v", reg)
	}
	// max*workers/busy = 300*4/600 = 2.0
	if reg.Imbalance < 1.99 || reg.Imbalance > 2.01 {
		t.Fatalf("imbalance = %v, want 2.0", reg.Imbalance)
	}
	// WorkerTimes reuses and zeroes its scratch.
	times2 := r.WorkerTimes(4)
	for i, v := range times2 {
		if v != 0 {
			t.Fatalf("scratch not zeroed at %d: %d", i, v)
		}
	}
}

// ForWorkerTimes integration: busy time is recorded per worker and roughly
// covers the wall time of the region.
func TestForWorkerTimesRecords(t *testing.T) {
	r := New()
	n := 64
	times := r.WorkerTimes(par.Workers(4, n))
	used := par.ForWorkerTimes(4, n, times, func(w, lo, hi int) {
		time.Sleep(time.Millisecond)
	})
	if used < 1 {
		t.Fatalf("used = %d", used)
	}
	for w := 0; w < used; w++ {
		if times[w] <= 0 {
			t.Fatalf("worker %d has no busy time", w)
		}
	}
	r.FoldWorkerTimes("test", times[:used])
	if p := r.Export(); p.Regions[0].BusySec <= 0 {
		t.Fatalf("region busy = %+v", p.Regions[0])
	}
}

func TestResetClears(t *testing.T) {
	r := New()
	r.Begin(CatKernel, "score", 0).End()
	r.Add(CtrMatchRounds, 1)
	r.Hot().Add(CtrMatchClaims, 4)
	r.ObserveBuckets([]int64{5})
	r.FoldWorkerTimes("x", []int64{10})
	r.Reset()
	p := r.Export()
	if len(p.Spans) != 0 || len(p.Counters) != 0 || len(p.BucketHist) != 0 || len(p.Regions) != 0 {
		t.Fatalf("Reset left data: %+v", p)
	}
	r.FoldHot()
	if r.Counter(CtrMatchClaims) != 0 {
		t.Fatal("Reset left hot counts")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := New()
	r.BeginPhase(1, 50, 200).End()
	r.Add(CtrMatchRounds, 4)
	SetLive(r)
	defer SetLive(nil)

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// /debug/pprof is wired explicitly on this mux (no DefaultServeMux side
	// effect): the index and the named profiles it dispatches must serve.
	// The CPU endpoint is exercised with ?seconds= elsewhere; fetching it
	// here would block for its default 30s window.
	for _, path := range []string{"/metrics", "/debug/vars", "/healthz",
		"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p Profile
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if p.Phases != 2 || p.Counters["match_rounds"] != 4 {
		t.Fatalf("snapshot = %+v", p)
	}

	// Detached endpoint serves an empty object, not a panic.
	SetLive(nil)
	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatalf("detached metrics not valid JSON: %v", err)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	r := New()
	led := NewLedger()
	led.Record(LevelStats{Level: 0, Vertices: 10, OutVertices: 4})
	srv, err := Serve("127.0.0.1:0", r, led)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer SetLive(nil)
	defer SetLiveLedger(nil)
	base := "http://" + srv.Addr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// The live ledger serves its rows on /convergence.
	resp, err = http.Get(base + "/convergence")
	if err != nil {
		t.Fatal(err)
	}
	var lp LedgerProfile
	err = json.NewDecoder(resp.Body).Decode(&lp)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("convergence not valid JSON: %v", err)
	}
	if len(lp.Levels) != 1 || lp.Levels[0].MergedVertices != 6 {
		t.Fatalf("convergence snapshot = %+v", lp)
	}
}

func TestMetricsServerCloseReleasesPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer SetLive(nil)
	defer SetLiveLedger(nil)
	addr := srv.Addr().String()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close is idempotent (deferred paths may race a normal shutdown).
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The listener is gone: requests fail and the port can be rebound.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || n == "unknown_counter" || seen[n] {
			t.Fatalf("counter %d has bad/duplicate name %q", c, n)
		}
		seen[n] = true
	}
	if Counter(-1).String() != "unknown_counter" || NumCounters.String() != "unknown_counter" {
		t.Fatal("out-of-range counters must name as unknown")
	}
}

package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// pprof profile files are gzip-compressed protobufs; the two-byte gzip magic
// is enough to know a real profile landed on disk.
func assertPprofFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("archived profile unreadable: %v", err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("%s does not start with the gzip magic (got % x)", path, b[:min(len(b), 2)])
	}
}

func TestProfilerCaptureHeap(t *testing.T) {
	dir := t.TempDir()
	p := NewProfiler(ProfilerOptions{Dir: dir})
	path, err := p.CaptureHeap("test")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasPrefix(filepath.Base(path), "heap_") {
		t.Fatalf("unexpected archive path %q", path)
	}
	assertPprofFile(t, path)
	if p.Last() != path {
		t.Fatalf("Last() = %q, want %q", p.Last(), path)
	}
	if LastProfile() != path {
		t.Fatalf("LastProfile() = %q, want %q", LastProfile(), path)
	}
}

func TestProfilerCaptureCPU(t *testing.T) {
	p := NewProfiler(ProfilerOptions{Dir: t.TempDir(), CPUWindow: 50 * time.Millisecond})
	path, err := p.CaptureCPU("test", 0)
	if err != nil {
		// /debug/pprof/profile or another test may hold the process-global
		// CPU profiler; losing that race is the documented fail-fast path.
		t.Skipf("CPU profiler busy: %v", err)
	}
	if !strings.HasPrefix(filepath.Base(path), "cpu_") {
		t.Fatalf("unexpected archive path %q", path)
	}
	assertPprofFile(t, path)
}

func TestProfilerRateLimit(t *testing.T) {
	p := NewProfiler(ProfilerOptions{Dir: t.TempDir(), MinInterval: time.Hour,
		CPUWindow: 10 * time.Millisecond})
	if got := p.TriggerAnomaly("first"); got == "" {
		t.Fatal("first TriggerAnomaly was rate-limited")
	}
	if got := p.TriggerAnomaly("second"); got != "" {
		t.Fatalf("second TriggerAnomaly within the interval captured %q, want rate-limited", got)
	}
	if p.TriggerCPU("third") {
		t.Fatal("TriggerCPU within the interval was not rate-limited")
	}
	// Drain the winner's async CPU window before t.TempDir cleanup races its
	// file writes: wait (bounded) for the capture to start, then to finish.
	for i := 0; i < 200 && !p.cpuBusy.Load(); i++ {
		time.Sleep(time.Millisecond)
	}
	for p.cpuBusy.Load() {
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProfilerRingPrune(t *testing.T) {
	dir := t.TempDir()
	p := NewProfiler(ProfilerOptions{Dir: dir, Keep: 2, MinInterval: -1})
	var paths []string
	for i := 0; i < 3; i++ {
		path, err := p.CaptureHeap("ring")
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		// UnixNano filenames must differ.
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Fatalf("oldest profile %s not pruned (keep=2)", paths[0])
	}
	for _, keep := range paths[1:] {
		if _, err := os.Stat(keep); err != nil {
			t.Fatalf("kept profile %s missing: %v", keep, err)
		}
	}
}

func TestProfilerDisabledNil(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler claims enabled")
	}
	if path, err := p.CaptureHeap("x"); path != "" || err != nil {
		t.Fatalf("nil CaptureHeap = (%q, %v)", path, err)
	}
	if path, err := p.CaptureCPU("x", time.Millisecond); path != "" || err != nil {
		t.Fatalf("nil CaptureCPU = (%q, %v)", path, err)
	}
	if p.TriggerCPU("x") {
		t.Fatal("nil TriggerCPU started a capture")
	}
	if got := p.TriggerAnomaly("x"); got != "" {
		t.Fatalf("nil TriggerAnomaly = %q", got)
	}
	if p.Last() != "" {
		t.Fatal("nil Last() non-empty")
	}
}

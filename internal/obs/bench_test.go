package obs

import (
	"testing"
)

// TestDisabledRecorderAllocs pins the disabled-path contract: threading a
// nil recorder through span begins/ends, hot adds, and folds allocates
// nothing. This is what lets the engine instrument unconditionally.
func TestDisabledRecorderAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		ph := r.BeginPhase(0, 10, 20)
		s := r.Begin(CatKernel, "score", -1)
		h := r.Hot()
		h.Add(CtrMatchClaims, 1)
		r.FoldHot()
		s.End()
		ph.EndArgs("a", 1, "b", 2)
		r.SetKernel("score")
		r.ObserveLatency(LatDetect, 12345)
		r.BeginAllocs()
		r.EndAllocs()
		var fl *FlightRecorder
		fl.Record(FlightSpan, "kernel", "score", "", 1)
		var lh *LatencyHist
		lh.Observe(99)
		var p *Profiler
		p.TriggerCPU("warn")
		p.TriggerAnomaly("doctor")
		_ = p.Last()
		var led *Ledger
		led.AddWarning(-1, WarnDrift, "drift")
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan measures the no-op span path — should be a couple of
// predictable branches, low single-digit nanoseconds.
func BenchmarkDisabledSpan(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.Begin(CatKernel, "score", -1)
		s.End()
	}
}

// BenchmarkDisabledHotAdd measures the no-op hot-counter flush.
func BenchmarkDisabledHotAdd(b *testing.B) {
	var r *Recorder
	h := r.Hot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(CtrMatchClaims, 1)
	}
}

// BenchmarkEnabledSpan measures the recording span path (mutex + append into
// a pre-grown buffer) for comparison; steady state should not allocate.
func BenchmarkEnabledSpan(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.Begin(CatKernel, "score", -1)
		s.End()
		if len(r.spans) > 1<<16 {
			r.Reset()
		}
	}
}

// BenchmarkEnabledHotAdd measures the enabled chunk-flush path: one atomic
// add.
func BenchmarkEnabledHotAdd(b *testing.B) {
	r := New()
	h := r.Hot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(CtrMatchClaims, 1)
	}
}

// BenchmarkSetKernel measures the cached pprof label swap.
func BenchmarkSetKernel(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			r.SetKernel("score")
		} else {
			r.SetKernel("match")
		}
	}
}

package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestDoctorGaugesAndFlight pins the two runtime surfaces a published
// verdict must reach: the community_doctor_* Prometheus gauges and the
// flight-recorder dump's embedded verdict + most recent profile reference.
func TestDoctorGaugesAndFlight(t *testing.T) {
	defer SetLiveVerdict(nil)

	// No verdict published: gauges still render (zeros), so the exposition
	// shape never depends on whether a doctor ran in-process.
	SetLiveVerdict(nil)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"community_doctor_anomalous 0",
		"community_doctor_baseline_runs 0",
		"community_doctor_findings 0",
		"community_doctor_regressions 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("no-verdict exposition missing %q:\n%s", want, buf.String())
		}
	}

	v := &Verdict{
		Status: VerdictAnomalous, Key: "rmat-14-16 engine=matching threads=8 shards=0",
		BaselineRuns: 5, MaxAbsZ: 23.5,
		Findings: []DriftFinding{
			{Metric: "total_sec", Value: 0.75, Median: 0.25, Z: 23.5, Ratio: 3, Regression: true},
			{Metric: "modularity", Value: 0.7, Median: 0.61, Z: 5, Ratio: 1.15},
		},
	}
	SetLiveVerdict(v)
	buf.Reset()
	if err := WritePrometheus(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"community_doctor_anomalous 1",
		"community_doctor_baseline_runs 5",
		"community_doctor_findings 2",
		"community_doctor_regressions 1",
		"community_doctor_max_abs_z 23.5",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("anomalous exposition missing %q:\n%s", want, buf.String())
		}
	}

	// A heap capture plus the live verdict must both land in the flight dump.
	p := NewProfiler(ProfilerOptions{Dir: t.TempDir()})
	path, err := p.CaptureHeap("flight-test")
	if err != nil {
		t.Fatal(err)
	}
	dump := Flight().Dump("test")
	if dump.Verdict == nil || dump.Verdict.Status != VerdictAnomalous {
		t.Fatalf("flight dump verdict = %+v, want the live anomalous verdict", dump.Verdict)
	}
	if dump.Profile != path {
		t.Fatalf("flight dump profile = %q, want %q", dump.Profile, path)
	}
}

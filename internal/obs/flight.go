package obs

// The flight recorder is the engine's black box: a bounded ring of the most
// recent spans, ledger warnings, and structured log events, cheap enough to
// leave on for the life of a serving process and dumped as one
// self-contained JSON artifact when something goes wrong (panic, SIGQUIT) or
// when an operator asks (/debug/flight). Unlike the Recorder — which buffers
// a whole run for post-hoc export — the ring forgets: it answers "what were
// the last ~1000 things the engine did before the crash", not "what did the
// whole run look like".
//
// Writers contend only on their own slot: a reservation counter hands out
// slot indices and each slot is guarded by a non-blocking TryLock. A writer
// that loses the slot race drops its event (counted) instead of blocking —
// the recorder must never add a stall to the paths it observes. A nil
// *FlightRecorder no-ops everywhere, same discipline as Recorder and Ledger.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// flightSlots is the ring capacity. 1024 events at the engine's span
// granularity covers several contraction levels of history — enough context
// to see what led into a crash without unbounded memory.
const flightSlots = 1024

// FlightEvent kinds.
const (
	FlightSpan    = "span"
	FlightWarning = "warning"
	FlightLog     = "log"
	FlightMark    = "event"
)

// FlightEvent is one ring entry. Cat and Name are kept as separate fields so
// recording a span never concatenates strings (the enabled-span path must
// stay allocation-free); Detail carries free-form context for warnings and
// log records.
type FlightEvent struct {
	Seq    int64  `json:"seq"`
	TimeNS int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Cat    string `json:"cat,omitempty"`
	Name   string `json:"name,omitempty"`
	Detail string `json:"detail,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`
}

// flightSlot is one ring cell. The mutex is per-slot and only ever TryLocked
// by writers, so a reader snapshotting the ring (which does block on Lock)
// waits at most one in-flight write per slot.
type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// FlightRecorder is the bounded event ring. The zero value is ready; a nil
// pointer is the disabled recorder.
type FlightRecorder struct {
	cursor  atomic.Int64 // next sequence number to hand out
	dropped atomic.Int64 // events lost to slot contention
	slots   [flightSlots]flightSlot
}

// defaultFlight is the process-wide ring the CLIs attach to recorders,
// ledgers mirror warnings into, and the HTTP endpoint dumps.
var defaultFlight FlightRecorder

// Flight returns the process-wide flight recorder.
func Flight() *FlightRecorder { return &defaultFlight }

// Record appends one event to the ring, dropping it if the target slot is
// mid-write by another goroutine. Nil-safe; never blocks.
func (f *FlightRecorder) Record(kind, cat, name, detail string, durNS int64) {
	if f == nil {
		return
	}
	seq := f.cursor.Add(1) - 1
	s := &f.slots[seq%flightSlots]
	if !s.mu.TryLock() {
		f.dropped.Add(1)
		return
	}
	s.ev = FlightEvent{
		Seq:    seq,
		TimeNS: NowNS(),
		Kind:   kind,
		Cat:    cat,
		Name:   name,
		Detail: detail,
		DurNS:  durNS,
	}
	s.mu.Unlock()
}

// Len reports how many events the ring currently holds (capped at capacity).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.cursor.Load()
	if n > flightSlots {
		return flightSlots
	}
	return int(n)
}

// Total reports how many events were ever recorded (including overwritten
// and dropped ones).
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	return f.cursor.Load()
}

// Dropped reports events lost to slot contention.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// Events snapshots the ring in sequence order, oldest first. Concurrent
// writers may overwrite slots mid-snapshot; stale reads are filtered by
// re-checking each event's Seq against the window, so the result is
// monotone in Seq but may have gaps under heavy write pressure.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	hi := f.cursor.Load()
	lo := hi - flightSlots
	if lo < 0 {
		lo = 0
	}
	out := make([]FlightEvent, 0, hi-lo)
	for seq := lo; seq < hi; seq++ {
		s := &f.slots[seq%flightSlots]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq == seq && ev.Kind != "" {
			out = append(out, ev)
		}
	}
	return out
}

// Reset clears the ring (tests; production rings run forever).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	for i := range f.slots {
		f.slots[i].mu.Lock()
		f.slots[i].ev = FlightEvent{}
		f.slots[i].mu.Unlock()
	}
	f.cursor.Store(0)
	f.dropped.Store(0)
}

// FlightDump is the self-contained black-box artifact: the event window plus
// enough process context (runtime stats, live convergence state, live
// recorder counters) to read it without the rest of the run's outputs.
type FlightDump struct {
	Reason    string           `json:"reason"`
	Time      string           `json:"time"`
	PID       int              `json:"pid"`
	GoVersion string           `json:"go_version"`
	Dropped   int64            `json:"dropped_events,omitempty"`
	Runtime   *RuntimeStats    `json:"runtime,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Latencies []LatencyProfile `json:"latencies,omitempty"`
	Converge  *LedgerProfile   `json:"convergence,omitempty"`
	// Verdict is the most recent run's doctor assessment and Profile the
	// most recently archived pprof capture — the cross-links that let a
	// black-box reader jump straight to the drift evidence.
	Verdict *Verdict      `json:"verdict,omitempty"`
	Profile string        `json:"profile,omitempty"`
	Events  []FlightEvent `json:"events"`
}

// Dump assembles the artifact from the ring plus whatever recorder/ledger
// are currently live on the metrics endpoint.
func (f *FlightRecorder) Dump(reason string) *FlightDump {
	d := &FlightDump{
		Reason:    reason,
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		PID:       os.Getpid(),
		GoVersion: runtime.Version(),
		Dropped:   f.Dropped(),
		Runtime:   SampleRuntime(),
		Verdict:   LiveVerdict(),
		Profile:   LastProfile(),
		Events:    f.Events(),
	}
	if r := liveRec.Load(); r != nil {
		d.Counters = make(map[string]int64, NumCounters)
		for c := Counter(0); c < NumCounters; c++ {
			if v := r.Counter(c); v != 0 {
				d.Counters[c.String()] = v
			}
		}
		d.Latencies = r.Latencies()
	}
	if l := liveLedger.Load(); l != nil {
		d.Converge = l.Export()
	}
	if d.Events == nil {
		d.Events = []FlightEvent{}
	}
	return d
}

// WriteDump writes the artifact as indented JSON.
func (f *FlightRecorder) WriteDump(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Dump(reason))
}

// WriteFlightArtifact dumps the process flight recorder to
// dir/flight_<pid>_<unixnano>.json and returns the path. The directory is
// created if missing. Used by the panic and SIGQUIT paths, so it must not
// itself panic: all errors return.
func WriteFlightArtifact(dir, reason string) (string, error) {
	if dir == "" {
		dir = "results"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flight_%d_%d.json", os.Getpid(), time.Now().UnixNano()))
	fh, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := Flight().WriteDump(fh, reason)
	cerr := fh.Close()
	if werr != nil {
		return path, werr
	}
	return path, cerr
}

// FlightOnSIGQUIT installs a SIGQUIT handler that writes the black-box
// artifact under dir, then restores Go's default SIGQUIT behavior and
// re-raises the signal so the usual full-goroutine stack dump (and process
// exit) still happens — the artifact augments the crash, it does not swallow
// it. The returned stop function uninstalls the handler.
func FlightOnSIGQUIT(dir string) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := <-ch; !ok {
			return
		}
		if path, err := WriteFlightArtifact(dir, "sigquit"); err == nil {
			fmt.Fprintf(os.Stderr, "flight recorder: wrote %s\n", path)
		}
		signal.Reset(syscall.SIGQUIT)
		syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(ch)
			<-done
		})
	}
}

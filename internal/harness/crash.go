package harness

// Crash-path artifact flushing, shared by both CLIs' deferred recover blocks
// and SIGQUIT-adjacent paths. Before this helper each CLI carried its own
// copy of the flush sequence (partial trace, convergence table, "partial"
// manifest) and neither wrote the flight-recorder black box; now one
// function salvages everything a dying run has gathered, in dependency
// order, never failing the exit path itself: every error is logged and
// swallowed — the original crash is the story, not a second failure on the
// way out.

import (
	"log/slog"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// CrashArtifacts names everything FlushCrash may salvage. Zero-value fields
// disable their artifact: nil Rec skips the trace, empty TraceOut skips it
// too, empty LedgerPath skips the manifest, nil Log falls back to
// slog.Default().
type CrashArtifacts struct {
	Rec         *obs.Recorder
	Led         *obs.Ledger
	TraceOut    string           // partial Chrome trace destination ("" = off)
	Convergence bool             // render the convergence table to stderr
	LedgerPath  string           // manifest ledger file ("" = off)
	Graph       report.GraphInfo // graph identity for the manifest
	Options     core.Options     // run options for the manifest
	FlightDir   string           // black-box artifact directory ("" = results)
	Log         *slog.Logger
}

// FlushCrash writes the black-box dump and every partial artifact a crashing
// run has gathered. kind labels the manifest row ("partial" from a panic
// path; callers choosing another label own its meaning). Safe with all-zero
// artifacts: it then only writes the flight dump.
func FlushCrash(kind string, a CrashArtifacts) {
	log := a.Log
	if log == nil {
		log = slog.Default()
	}
	log.Error("crash: flushing partial observability artifacts", "kind", kind)

	// The flight recorder first: it needs no cooperation from the recorder
	// or ledger, so even a crash before they exist leaves a black box.
	if path, err := obs.WriteFlightArtifact(a.FlightDir, kind); err != nil {
		log.Error("crash: flight dump failed", "error", err)
	} else {
		log.Info("crash: wrote flight recorder dump", "path", path)
	}

	if a.TraceOut != "" && a.Rec != nil {
		f, err := os.Create(a.TraceOut)
		if err != nil {
			log.Error("crash: partial trace failed", "error", err)
		} else {
			if err := a.Rec.WriteTrace(f); err != nil {
				log.Error("crash: partial trace failed", "error", err)
			}
			f.Close()
		}
	}

	if a.Convergence && a.Led.NumLevels() > 0 {
		RenderConvergenceTable(os.Stderr, a.Led.Levels(), a.Led.Warnings())
	}

	if a.LedgerPath != "" {
		m := &report.Manifest{
			Kind:      kind,
			Time:      time.Now().UTC(),
			Host:      report.CollectMeta(),
			Graph:     a.Graph,
			Options:   report.OptionsOf(a.Options),
			Kernels:   a.Rec.KernelSeconds(),
			Latencies: a.Rec.Latencies(),
		}
		if p := a.Led.Export(); p != nil {
			m.Levels, m.Warnings = p.Levels, p.Warnings
		}
		if err := report.AppendManifest(a.LedgerPath, m); err != nil {
			log.Error("crash: partial manifest failed", "error", err)
		}
	}
}

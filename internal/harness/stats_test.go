package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	recs := []Record{
		{Graph: "a", Threads: 1, Seconds: 3, Modularity: 0.5},
		{Graph: "a", Threads: 1, Seconds: 1, Modularity: 0.6},
		{Graph: "a", Threads: 1, Seconds: 2, Modularity: 0.55},
		{Graph: "a", Threads: 2, Seconds: 1.5, Modularity: 0.5},
		{Graph: "b", Threads: 1, Seconds: 10, Modularity: 0.4},
	}
	pts := Aggregate(recs)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	p := pts[0]
	if p.Graph != "a" || p.Threads != 1 || p.Trials != 3 {
		t.Fatalf("first point %+v", p)
	}
	if p.Min != 1 || p.Max != 3 || p.Median != 2 || math.Abs(p.Mean-2) > 1e-12 {
		t.Fatalf("stats %+v", p)
	}
	if math.Abs(p.StdDev-1) > 1e-12 {
		t.Fatalf("stddev %v, want 1", p.StdDev)
	}
	if p.MinModularity != 0.5 || p.MaxModularity != 0.6 {
		t.Fatalf("modularity range %+v", p)
	}
	// Single-trial point has zero stddev.
	if pts[1].StdDev != 0 || pts[1].Trials != 1 {
		t.Fatalf("single-trial point %+v", pts[1])
	}
}

func TestAggregatePreservesGraphOrder(t *testing.T) {
	recs := []Record{
		{Graph: "z", Threads: 2, Seconds: 1},
		{Graph: "a", Threads: 1, Seconds: 1},
		{Graph: "z", Threads: 1, Seconds: 1},
	}
	pts := Aggregate(recs)
	if pts[0].Graph != "z" || pts[0].Threads != 1 || pts[1].Threads != 2 || pts[2].Graph != "a" {
		t.Fatalf("order: %+v", pts)
	}
}

func TestRenderStatsTable(t *testing.T) {
	recs := []Record{
		{Graph: "g", Threads: 1, Seconds: 1, Modularity: 0.3},
		{Graph: "g", Threads: 1, Seconds: 2, Modularity: 0.4},
	}
	var buf bytes.Buffer
	if err := RenderStatsTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "median(s)") || !strings.Contains(out, "[0.300, 0.400]") {
		t.Fatalf("table:\n%s", out)
	}
}

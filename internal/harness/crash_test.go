package harness

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

func TestRenderLatencyTable(t *testing.T) {
	rec := obs.New()
	rec.ObserveLatency(obs.LatDetect, 50_000_000)
	rec.ObserveLatency(obs.LatLevel, 10_000_000)
	rec.ObserveLatency(obs.LatLevel, 20_000_000)
	var buf bytes.Buffer
	if err := RenderLatencyTable(&buf, rec.Latencies()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"latency class", "p99 (ms)", "detect", "level"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + two classes
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
}

func TestRenderLatencyTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderLatencyTable(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFlushCrash drives the shared crash path end to end: black-box dump,
// partial trace, and "partial" manifest all land, and the call survives
// all-zero artifacts (a crash before any recorder exists). The flight
// artifact must also carry the crash-time doctor context: the live verdict
// and the most recent archived profile, so a post-mortem starts from "what
// did the doctor already know".
func TestFlushCrash(t *testing.T) {
	obs.Flight().Reset()
	defer obs.Flight().Reset()
	obs.Flight().Record(obs.FlightMark, "test", "before-crash", "", 0)

	defer obs.SetLiveVerdict(nil)
	obs.SetLiveVerdict(&obs.Verdict{
		Status: obs.VerdictAnomalous, Key: "unit engine=matching threads=2 shards=0",
		BaselineRuns: 4, MaxAbsZ: 9.5,
		Findings: []obs.DriftFinding{{Metric: "total_sec", Value: 3, Median: 1, Z: 9.5, Ratio: 3, Regression: true}},
	})

	dir := t.TempDir()
	prof := obs.NewProfiler(obs.ProfilerOptions{Dir: filepath.Join(dir, "profiles")})
	profPath, err := prof.CaptureHeap("crash-test")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	rec.ObserveLatency(obs.LatDetect, 1<<22)
	sp := rec.Begin(obs.CatKernel, "score", 0)
	sp.End()
	led := obs.NewLedger()
	led.Record(obs.LevelStats{Level: 0, Vertices: 10, OutVertices: 6, Edges: 40, Metric: 0.2})

	tracePath := filepath.Join(dir, "trace.json")
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	FlushCrash("partial", CrashArtifacts{
		Rec:        rec,
		Led:        led,
		TraceOut:   tracePath,
		LedgerPath: ledgerPath,
		Graph:      report.GraphInfo{Name: "unit", Vertices: 10, Edges: 40},
		Options:    core.Options{Threads: 2},
		FlightDir:  dir,
		Log:        slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
	})

	if raw, err := os.ReadFile(tracePath); err != nil || !json.Valid(raw) {
		t.Fatalf("partial trace missing or invalid: err=%v", err)
	}

	flights, err := filepath.Glob(filepath.Join(dir, "flight_*.json"))
	if err != nil || len(flights) != 1 {
		t.Fatalf("flight artifacts = %v (err %v), want exactly one", flights, err)
	}
	var dump obs.FlightDump
	raw, err := os.ReadFile(flights[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	if dump.Reason != "partial" || len(dump.Events) == 0 {
		t.Fatalf("flight dump = reason %q with %d events", dump.Reason, len(dump.Events))
	}
	if dump.Verdict == nil || !dump.Verdict.Anomalous() || dump.Verdict.Regressions() != 1 {
		t.Fatalf("flight dump verdict = %+v, want the published anomalous verdict", dump.Verdict)
	}
	if dump.Profile != profPath {
		t.Fatalf("flight dump profile = %q, want the captured %q", dump.Profile, profPath)
	}

	f, err := os.Open(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, skipped, err := report.ReadManifests(f)
	if err != nil || len(ms) != 1 || skipped != 0 {
		t.Fatalf("manifests = %d, skipped %d (err %v), want 1 clean", len(ms), skipped, err)
	}
	m := ms[0]
	if m.Kind != "partial" || m.Graph.Name != "unit" || len(m.Levels) != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Latencies) != 1 || m.Latencies[0].Class != "detect" {
		t.Fatalf("manifest latencies = %+v, want the detect class", m.Latencies)
	}
	if len(m.Kernels) != 1 || m.Kernels[0].Kernel != "score" {
		t.Fatalf("manifest kernels = %+v", m.Kernels)
	}
}

func TestFlushCrashZeroArtifacts(t *testing.T) {
	dir := t.TempDir()
	FlushCrash("partial", CrashArtifacts{
		FlightDir: dir,
		Log:       slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
	})
	flights, _ := filepath.Glob(filepath.Join(dir, "flight_*.json"))
	if len(flights) != 1 {
		t.Fatalf("zero-artifact crash wrote %d flight dumps, want 1", len(flights))
	}
}

package harness

// End-of-run doctor glue shared by the CLIs: read the archived baseline
// from the manifest ledger the run is about to append to, assess the new
// manifest, and fan the verdict out to every surface — the manifest itself,
// the structured ledger warnings, the live Prometheus gauges, and (for an
// anomalous run) a triggered profile capture cross-linked back into the
// verdict. Runs BEFORE AppendManifest so the baseline is exactly the
// archive-before-this-run and the appended line already carries its
// verdict.

import (
	"fmt"
	"log/slog"
	"os"

	"repro/internal/doctor"
	"repro/internal/obs"
	"repro/internal/report"
)

// DoctorConfig wires RunDoctor's inputs. Zero-value fields degrade
// gracefully: no ledger path means no baseline (verdict "no-baseline"), nil
// profiler skips capture, nil ledger skips warnings, nil log falls back to
// slog.Default.
type DoctorConfig struct {
	// LedgerPath is the manifest archive to learn the baseline from —
	// normally the same file the run's manifest is appended to.
	LedgerPath string
	Opt        doctor.Options
	Profiler   *obs.Profiler
	Ledger     *obs.Ledger
	Log        *slog.Logger
}

// RunDoctor assesses m against the archived baseline and publishes the
// verdict everywhere: m.Verdict (so the appended manifest carries it), the
// convergence ledger (drift findings as WarnDrift warnings), the live
// Prometheus doctor gauges, and — when anomalous — a triggered pprof
// capture whose path lands in the verdict's ProfileRef. Never fails the
// run: archive read errors log and degrade to no-baseline.
func RunDoctor(m *report.Manifest, cfg DoctorConfig) *obs.Verdict {
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	var archive []*report.Manifest
	if cfg.LedgerPath != "" {
		ms, skipped, err := report.ReadManifestFile(cfg.LedgerPath)
		if err != nil && !os.IsNotExist(err) {
			log.Warn("doctor: baseline archive unreadable", "path", cfg.LedgerPath, "error", err)
		}
		if skipped > 0 {
			log.Warn("doctor: skipped torn manifest lines", "path", cfg.LedgerPath, "skipped", skipped)
		}
		archive = ms
	}
	v := doctor.Learn(archive).Assess(m, cfg.Opt)
	if v.Anomalous() {
		// Capture before the warnings: AddWarning's TriggerCPU hook shares the
		// profiler's rate limiter, and the anomaly capture must win that slot
		// so the manifest gets its ProfileRef.
		if path := cfg.Profiler.TriggerAnomaly("doctor:" + v.Key); path != "" {
			v.ProfileRef = path
		}
		for _, f := range v.Findings {
			cfg.Ledger.AddWarning(-1, obs.WarnDrift,
				fmt.Sprintf("%s drifted: %.4g vs baseline median %.4g (z %+.1f)",
					f.Metric, f.Value, f.Median, f.Z))
		}
		log.Warn("doctor: run is anomalous against its baseline",
			"key", v.Key, "findings", len(v.Findings), "regressions", v.Regressions(),
			"max_abs_z", v.MaxAbsZ, "baseline_runs", v.BaselineRuns, "profile", v.ProfileRef)
	} else {
		log.Info("doctor: run assessed", "key", v.Key, "status", v.Status,
			"baseline_runs", v.BaselineRuns, "max_abs_z", v.MaxAbsZ)
	}
	m.Verdict = v
	obs.SetLiveVerdict(v)
	return v
}

package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// PointStats aggregates the trials of one (graph, threads) sweep point —
// the paper runs every experiment three times "to capture some of the
// variability in platforms and in our non-deterministic algorithm" (§V),
// and Figure 1 plots all trials.
type PointStats struct {
	Graph   string
	Threads int
	Trials  int
	// Seconds statistics across trials.
	Min, Median, Mean, Max, StdDev float64
	// Modularity spread across trials (the non-determinism the paper's
	// XMT2 timing variation traces back to "finding different community
	// structures").
	MinModularity, MaxModularity float64
}

// Aggregate reduces raw records to per-point statistics, ordered by graph
// (input order) then thread count.
func Aggregate(records []Record) []PointStats {
	type key struct {
		graph   string
		threads int
	}
	group := map[key][]Record{}
	var order []key
	graphRank := map[string]int{}
	for _, r := range records {
		k := key{r.Graph, r.Threads}
		if _, ok := group[k]; !ok {
			order = append(order, k)
		}
		if _, ok := graphRank[r.Graph]; !ok {
			graphRank[r.Graph] = len(graphRank)
		}
		group[k] = append(group[k], r)
	}
	// Graphs keep first-seen order; thread counts sort within a graph.
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := graphRank[order[i].graph], graphRank[order[j].graph]
		if ri != rj {
			return ri < rj
		}
		return order[i].threads < order[j].threads
	})
	out := make([]PointStats, 0, len(order))
	for _, k := range order {
		rs := group[k]
		secs := make([]float64, len(rs))
		ps := PointStats{
			Graph: k.graph, Threads: k.threads, Trials: len(rs),
			MinModularity: math.Inf(1), MaxModularity: math.Inf(-1),
		}
		var sum float64
		for i, r := range rs {
			secs[i] = r.Seconds
			sum += r.Seconds
			if r.Modularity < ps.MinModularity {
				ps.MinModularity = r.Modularity
			}
			if r.Modularity > ps.MaxModularity {
				ps.MaxModularity = r.Modularity
			}
		}
		sort.Float64s(secs)
		ps.Min = secs[0]
		ps.Max = secs[len(secs)-1]
		ps.Median = secs[len(secs)/2]
		ps.Mean = sum / float64(len(secs))
		var sq float64
		for _, s := range secs {
			d := s - ps.Mean
			sq += d * d
		}
		if len(secs) > 1 {
			ps.StdDev = math.Sqrt(sq / float64(len(secs)-1))
		}
		out = append(out, ps)
	}
	return out
}

// RenderStatsTable prints per-point trial statistics: the detail behind the
// Figure 1 scatter.
func RenderStatsTable(w io.Writer, records []Record) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tthreads\ttrials\tmin(s)\tmedian(s)\tmean(s)\tmax(s)\tstddev(s)\tQ range")
	for _, ps := range Aggregate(records) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t[%.3f, %.3f]\n",
			ps.Graph, ps.Threads, ps.Trials, ps.Min, ps.Median, ps.Mean, ps.Max, ps.StdDev,
			ps.MinModularity, ps.MaxModularity)
	}
	return tw.Flush()
}

// Package harness drives the §V evaluation: thread-count sweeps with
// repeated trials over the benchmark graphs, and renderers that print the
// same rows and series the paper's tables and figures report. The paper's
// platform axis (two Cray XMT generations, three Intel servers) becomes a
// thread-count axis on the present host — see DESIGN.md for the
// substitution rationale.
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/report"
)

// Record captures one detection run.
type Record struct {
	Graph    string
	Vertices int64
	Edges    int64
	Threads  int
	// Engine names the detection pipeline that produced the run
	// (matching/plp/ensemble) — the speed-by-quality matrix axis.
	Engine      string
	Trial       int
	Seconds     float64
	EdgesPerSec float64
	Phases      int
	Communities int64
	Coverage    float64
	Modularity  float64
	Termination string
	// ScoreSec/MatchSec/ContractSec are the run's per-kernel totals summed
	// over phases — the Figures 4–6 breakdown axis. Their sum is below
	// Seconds; the remainder is coverage/modularity evaluation and loop glue.
	ScoreSec    float64
	MatchSec    float64
	ContractSec float64
}

// Config describes a sweep: which thread counts, how many trials each, and
// the engine options to use (Options.Threads is overridden per run).
type Config struct {
	Threads []int
	Trials  int
	Options core.Options
}

// DefaultConfig mirrors the paper's §V methodology: powers of two up to the
// available parallelism, three trials per point ("each experiment is run
// three times to capture some of the variability ... in our
// non-deterministic algorithm"), and coverage ≥ 0.5 termination.
func DefaultConfig() Config {
	return Config{
		Threads: ThreadSeries(runtime.GOMAXPROCS(0)),
		Trials:  3,
		Options: core.Options{MinCoverage: 0.5},
	}
}

// ThreadSeries returns 1, 2, 4, ... up to and including max.
func ThreadSeries(max int) []int {
	if max < 1 {
		max = 1
	}
	var s []int
	for t := 1; t < max; t *= 2 {
		s = append(s, t)
	}
	return append(s, max)
}

// Sweep runs the configured trials of community detection on g and returns
// one Record per (threads, trial). All trials share one scratch arena
// (unless Options.NoScratch asks for fresh allocations), so every run after
// the first starts with warm buffers — the steady state a long-lived
// service would see, and the regime the paper's repeated-trial methodology
// actually times.
func Sweep(g *graph.Graph, name string, cfg Config) ([]Record, error) {
	return SweepContext(context.Background(), g, name, cfg)
}

// SweepContext is Sweep under a cancellation context. The whole sweep runs
// on one long-lived worker team sized to the widest thread setting; each
// setting derives a narrower view of the same team, so no goroutines are
// spawned or torn down between runs. Cancellation aborts the current
// detection at its next kernel boundary and returns the records gathered so
// far alongside the error.
func SweepContext(ctx context.Context, g *graph.Graph, name string, cfg Config) ([]Record, error) {
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = ThreadSeries(runtime.GOMAXPROCS(0))
	}
	var scratch *core.Scratch
	if !cfg.Options.NoScratch {
		scratch = core.NewScratch()
	}
	maxTh := 1
	for _, th := range cfg.Threads {
		if th > maxTh {
			maxTh = th
		}
	}
	ec := exec.New(ctx, maxTh, cfg.Options.Recorder)
	defer ec.Close()
	var out []Record
	for _, th := range cfg.Threads {
		ecT := ec.WithThreads(th)
		for trial := 0; trial < cfg.Trials; trial++ {
			opt := cfg.Options
			opt.Threads = th
			start := time.Now()
			res, err := core.DetectExec(ecT, g, opt, scratch)
			if err != nil {
				return out, fmt.Errorf("harness: %s threads=%d trial=%d: %w", name, th, trial, err)
			}
			secs := time.Since(start).Seconds()
			var scoreSec, matchSec, contractSec float64
			for _, st := range res.Stats {
				scoreSec += st.ScoreTime.Seconds()
				matchSec += st.MatchTime.Seconds()
				contractSec += st.ContractTime.Seconds()
			}
			out = append(out, Record{
				Graph:       name,
				Vertices:    g.NumVertices(),
				Edges:       g.NumEdges(),
				Threads:     th,
				Engine:      opt.Engine.String(),
				Trial:       trial,
				Seconds:     secs,
				EdgesPerSec: float64(g.NumEdges()) / secs,
				Phases:      len(res.Stats),
				Communities: res.NumCommunities,
				Coverage:    res.FinalCoverage,
				Modularity:  res.FinalModularity,
				Termination: string(res.Termination),
				ScoreSec:    scoreSec,
				MatchSec:    matchSec,
				ContractSec: contractSec,
			})
		}
	}
	return out, nil
}

// BestSeconds returns the fastest trial per (graph, threads).
func BestSeconds(records []Record) map[string]map[int]float64 {
	best := map[string]map[int]float64{}
	for _, r := range records {
		m, ok := best[r.Graph]
		if !ok {
			m = map[int]float64{}
			best[r.Graph] = m
		}
		if cur, ok := m[r.Threads]; !ok || r.Seconds < cur {
			m[r.Threads] = r.Seconds
		}
	}
	return best
}

// graphsOf returns the distinct graph names in input order.
func graphsOf(records []Record) []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range records {
		if !seen[r.Graph] {
			seen[r.Graph] = true
			names = append(names, r.Graph)
		}
	}
	return names
}

// threadsOf returns the distinct sorted thread counts.
func threadsOf(records []Record) []int {
	seen := map[int]bool{}
	for _, r := range records {
		seen[r.Threads] = true
	}
	var ts []int
	for t := range seen {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	return ts
}

// RenderTimeTable prints the Figure 1 data: best execution time (seconds)
// per thread count and graph.
func RenderTimeTable(w io.Writer, records []Record) error {
	best := BestSeconds(records)
	graphs := graphsOf(records)
	threads := threadsOf(records)
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "threads")
	for _, g := range graphs {
		fmt.Fprintf(tw, "\t%s (s)", g)
	}
	fmt.Fprintln(tw)
	for _, t := range threads {
		fmt.Fprintf(tw, "%d", t)
		for _, g := range graphs {
			if s, ok := best[g][t]; ok {
				fmt.Fprintf(tw, "\t%.3f", s)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Speedups returns speed-up relative to the best single-thread time per
// graph, the quantity Figures 2 and 3 plot.
func Speedups(records []Record) map[string]map[int]float64 {
	best := BestSeconds(records)
	out := map[string]map[int]float64{}
	for g, byT := range best {
		base, ok := byT[1]
		if !ok {
			continue
		}
		m := map[int]float64{}
		for t, s := range byT {
			m[t] = base / s
		}
		out[g] = m
	}
	return out
}

// RenderSpeedupTable prints the Figure 2/3 data: parallel speed-up per
// thread count and graph, with the best speed-up flagged per graph.
func RenderSpeedupTable(w io.Writer, records []Record) error {
	sp := Speedups(records)
	graphs := graphsOf(records)
	threads := threadsOf(records)
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "threads")
	for _, g := range graphs {
		fmt.Fprintf(tw, "\t%s (x)", g)
	}
	fmt.Fprintln(tw)
	for _, t := range threads {
		fmt.Fprintf(tw, "%d", t)
		for _, g := range graphs {
			if s, ok := sp[g][t]; ok {
				fmt.Fprintf(tw, "\t%.2f", s)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	for _, g := range graphs {
		bestT, bestS := 0, math.Inf(-1)
		for t, s := range sp[g] {
			if s > bestS {
				bestT, bestS = t, s
			}
		}
		if bestT != 0 {
			fmt.Fprintf(tw, "# %s: best speed-up %.2fx at %d threads\n", g, bestS, bestT)
		}
	}
	return tw.Flush()
}

// RenderRateTable prints the Table III data: peak processing rate in input
// edges per second over the fastest run per graph.
func RenderRateTable(w io.Writer, records []Record) error {
	graphs := graphsOf(records)
	type peak struct {
		rate    float64
		threads int
	}
	best := map[string]peak{}
	for _, r := range records {
		if p, ok := best[r.Graph]; !ok || r.EdgesPerSec > p.rate {
			best[r.Graph] = peak{r.EdgesPerSec, r.Threads}
		}
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tpeak edges/sec\tat threads")
	for _, g := range graphs {
		p := best[g]
		fmt.Fprintf(tw, "%s\t%.3g\t%d\n", g, p.rate, p.threads)
	}
	return tw.Flush()
}

// RenderEngineTable prints the speed-by-quality matrix across detection
// engines: for each (graph, engine) group the fastest trial's wall time and
// rate, that run's modularity and community count, and the wall-time speedup
// over the matching engine on the same graph (the ensemble's acceptance
// metric). Records missing an engine label (pre-engine CSVs) group under
// "matching".
func RenderEngineTable(w io.Writer, records []Record) error {
	type key struct{ graph, engine string }
	best := map[key]Record{}
	var engines []string
	seenEng := map[string]bool{}
	for _, r := range records {
		if r.Engine == "" {
			r.Engine = "matching"
		}
		k := key{r.Graph, r.Engine}
		if b, ok := best[k]; !ok || r.Seconds < b.Seconds {
			best[k] = r
		}
		if !seenEng[r.Engine] {
			seenEng[r.Engine] = true
			engines = append(engines, r.Engine)
		}
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tengine\tbest (s)\tedges/sec\tmodularity\tcommunities\tvs matching")
	for _, g := range graphsOf(records) {
		base, haveBase := best[key{g, "matching"}]
		for _, e := range engines {
			r, ok := best[key{g, e}]
			if !ok {
				continue
			}
			speedup := "-"
			if haveBase && r.Seconds > 0 {
				speedup = fmt.Sprintf("%.2fx", base.Seconds/r.Seconds)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.3g\t%.4f\t%d\t%s\n",
				g, e, r.Seconds, r.EdgesPerSec, r.Modularity, r.Communities, speedup)
		}
	}
	return tw.Flush()
}

// WriteCSV emits every record as CSV with a header, for external plotting.
func WriteCSV(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintln(w,
		"graph,vertices,edges,threads,engine,trial,seconds,edges_per_sec,phases,communities,coverage,modularity,termination,score_sec,match_sec,contract_sec"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%s,%d,%.6f,%.1f,%d,%d,%.6f,%.6f,%s,%.6f,%.6f,%.6f\n",
			r.Graph, r.Vertices, r.Edges, r.Threads, r.Engine, r.Trial, r.Seconds, r.EdgesPerSec,
			r.Phases, r.Communities, r.Coverage, r.Modularity, r.Termination,
			r.ScoreSec, r.MatchSec, r.ContractSec); err != nil {
			return err
		}
	}
	return nil
}

// RenderKernelTable prints the per-kernel breakdown the paper's Figures 4–6
// report per platform, on the thread-count axis: for each graph and thread
// count, the fastest trial's seconds split into score/match/contract and the
// unattributed remainder.
func RenderKernelTable(w io.Writer, records []Record) error {
	type key struct {
		graph   string
		threads int
	}
	best := map[key]Record{}
	for _, r := range records {
		k := key{r.Graph, r.Threads}
		if cur, ok := best[k]; !ok || r.Seconds < cur.Seconds {
			best[k] = r
		}
	}
	graphs := graphsOf(records)
	threads := threadsOf(records)
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tthreads\tscore (s)\tmatch (s)\tcontract (s)\tother (s)\ttotal (s)")
	for _, g := range graphs {
		for _, t := range threads {
			r, ok := best[key{g, t}]
			if !ok {
				continue
			}
			other := r.Seconds - r.ScoreSec - r.MatchSec - r.ContractSec
			if other < 0 {
				other = 0
			}
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				g, t, r.ScoreSec, r.MatchSec, r.ContractSec, other, r.Seconds)
		}
	}
	return tw.Flush()
}

// RenderPhaseTable prints one detection run's per-phase kernel breakdown —
// the cmd/communities -stats view of core.Result.Stats.
func RenderPhaseTable(w io.Writer, stats []core.PhaseStats) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\t|V|\t|E|\tcoverage\tmodularity\tpairs\tpasses\tscore (ms)\tmatch (ms)\tcontract (ms)\tmax bucket")
	var score, match, contract time.Duration
	for _, st := range stats {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\t%d\t%d\t%.2f\t%.2f\t%.2f\t%d\n",
			st.Phase, st.Vertices, st.Edges, st.Coverage, st.Modularity,
			st.MatchedPairs, st.MatchPasses,
			float64(st.ScoreTime.Microseconds())/1e3,
			float64(st.MatchTime.Microseconds())/1e3,
			float64(st.ContractTime.Microseconds())/1e3,
			st.MaxBucketLen)
		score += st.ScoreTime
		match += st.MatchTime
		contract += st.ContractTime
	}
	fmt.Fprintf(tw, "total\t\t\t\t\t\t\t%.2f\t%.2f\t%.2f\t\n",
		float64(score.Microseconds())/1e3,
		float64(match.Microseconds())/1e3,
		float64(contract.Microseconds())/1e3)
	return tw.Flush()
}

// RenderConvergenceTable prints the convergence ledger's per-level rows —
// the cmd/communities -convergence view: how fast the agglomeration merged,
// how the metric moved, how the matching drained, and whether the per-level
// schedule stayed inside its analytic imbalance bound. Warnings print after
// the table so an anomalous run is visible without reading every row.
func RenderConvergenceTable(w io.Writer, levels []obs.LevelStats, warnings []obs.Warning) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tlevel\t|V|\t|E|\tpos edges\tpairs\tmerged\tmerge%\tmetric\tΔmetric\tpasses\tchg/active\thub%\timbalance\tbound")
	var merged int64
	for _, st := range levels {
		stage := obs.StageOf(st)
		if stage == obs.StagePLP {
			// A PLP sweep merges nothing and carries no metric: it moves
			// labels. Render the sweep counters and leave the agglomeration
			// columns blank instead of misreporting it as a contraction.
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t-\t-\t-\t-\t-\t-\t-\t%d/%d\t-\t-\t-\n",
				stage, st.Level, st.Vertices, st.Edges, st.Changed, st.Active)
			continue
		}
		if stage == obs.StageShard {
			// A shard row summarizes one shard's whole local detection:
			// subgraph size, vertices merged into local communities, cut
			// edges deferred to the stitch (shown in the pairs column), and
			// the shard's edge-load share over the even share. Its local
			// modularity is against shard-local weight, so no metric.
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t-\tcut %d\t%d\t%.1f\t-\t-\t-\t-\t-\t%.2f\t-\n",
				stage, st.Shard, st.Vertices, st.Edges, st.CutEdges,
				st.MergedVertices, 100*st.MergeFraction, st.SchedImbalance)
			merged += st.MergedVertices
			continue
		}
		imb, bound := "-", "-"
		if st.SchedImbalance > 0 {
			imb = fmt.Sprintf("%.2f", st.SchedImbalance)
			bound = fmt.Sprintf("%.2f", st.SchedBound)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.4f\t%+.4f\t%d\t-\t%.1f\t%s\t%s\n",
			stage, st.Level, st.Vertices, st.Edges, st.PositiveEdges, st.MatchedPairs,
			st.MergedVertices, 100*st.MergeFraction, st.Metric, st.MetricDelta,
			st.MatchPasses, 100*st.HubShare, imb, bound)
		merged += st.MergedVertices
	}
	fmt.Fprintf(tw, "total\t\t\t\t\t\t%d\t\t\t\t\t\t\t\t\n", merged)
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, wn := range warnings {
		if _, err := fmt.Fprintf(w, "warning: level %d: %s: %s\n", wn.Level, wn.Code, wn.Detail); err != nil {
			return err
		}
	}
	return nil
}

// RenderLatencyTable prints the recorder's latency-histogram snapshot: one
// row per non-empty class with its count, mean, p50/p90/p99 estimates, and
// max. Quantiles come from the log-linear buckets (see obs.LatencyHist), so
// they overshoot the true sample quantile by at most one sub-bucket width.
func RenderLatencyTable(w io.Writer, lats []obs.LatencyProfile) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "latency class\tcount\tmean (ms)\tp50 (ms)\tp90 (ms)\tp99 (ms)\tmax (ms)")
	for _, lp := range lats {
		mean := 0.0
		if lp.Count > 0 {
			mean = lp.SumSec / float64(lp.Count)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			lp.Class, lp.Count, 1e3*mean, 1e3*lp.P50Sec, 1e3*lp.P90Sec, 1e3*lp.P99Sec, 1e3*lp.MaxSec)
	}
	return tw.Flush()
}

// PlatformTable prints the Table I stand-in: the characteristics of the
// present host in place of the paper's five platforms.
func PlatformTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "property\tvalue")
	fmt.Fprintf(tw, "OS/arch\t%s/%s\n", runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(tw, "logical CPUs\t%d\n", runtime.NumCPU())
	fmt.Fprintf(tw, "GOMAXPROCS\t%d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(tw, "Go version\t%s\n", runtime.Version())
	return tw.Flush()
}

// GraphTable prints the Table II stand-in: |V| and |E| per benchmark graph.
func GraphTable(w io.Writer, rows []GraphInfo) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\t|V|\t|E|\tavg degree")
	for _, r := range rows {
		avg := 0.0
		if r.Vertices > 0 {
			avg = 2 * float64(r.Edges) / float64(r.Vertices)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\n", r.Name, r.Vertices, r.Edges, avg)
	}
	return tw.Flush()
}

// GraphInfo is one Table II row. It is the report package's graph summary —
// the two packages used to carry parallel copies of this struct; report owns
// the single definition now.
type GraphInfo = report.GraphInfo

// Info summarizes a graph for GraphTable; it delegates to report.Info so
// the row carries the total weight too.
func Info(name string, g *graph.Graph) GraphInfo {
	return report.Info(name, g)
}

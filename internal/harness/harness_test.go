package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

func TestThreadSeries(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{3, []int{1, 2, 3}},
		{8, []int{1, 2, 4, 8}},
		{12, []int{1, 2, 4, 8, 12}},
		{0, []int{1}},
	}
	for _, c := range cases {
		got := ThreadSeries(c.max)
		if len(got) != len(c.want) {
			t.Fatalf("ThreadSeries(%d) = %v, want %v", c.max, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ThreadSeries(%d) = %v, want %v", c.max, got, c.want)
			}
		}
	}
}

func sweepSmall(t *testing.T) []Record {
	t.Helper()
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(800, 5))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Sweep(g, "lj-sim", Config{
		Threads: []int{1, 2},
		Trials:  2,
		Options: core.Options{MinCoverage: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestSweepProducesRecords(t *testing.T) {
	recs := sweepSmall(t)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Seconds <= 0 || r.EdgesPerSec <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if r.Graph != "lj-sim" || r.Vertices != 800 {
			t.Fatalf("bad metadata: %+v", r)
		}
		if r.Communities < 1 || r.Phases < 1 {
			t.Fatalf("implausible result: %+v", r)
		}
		if r.Termination == "" {
			t.Fatalf("missing termination: %+v", r)
		}
	}
}

func TestBestSecondsAndSpeedups(t *testing.T) {
	recs := []Record{
		{Graph: "a", Threads: 1, Seconds: 10},
		{Graph: "a", Threads: 1, Seconds: 12},
		{Graph: "a", Threads: 4, Seconds: 3},
		{Graph: "a", Threads: 4, Seconds: 2.5},
	}
	best := BestSeconds(recs)
	if best["a"][1] != 10 || best["a"][4] != 2.5 {
		t.Fatalf("best = %v", best)
	}
	sp := Speedups(recs)
	if sp["a"][4] != 4 {
		t.Fatalf("speedup = %v, want 4", sp["a"][4])
	}
	if sp["a"][1] != 1 {
		t.Fatalf("speedup at 1 thread = %v", sp["a"][1])
	}
}

func TestSpeedupsSkipGraphsWithoutBaseline(t *testing.T) {
	recs := []Record{{Graph: "b", Threads: 2, Seconds: 1}}
	if sp := Speedups(recs); len(sp) != 0 {
		t.Fatalf("speedups without 1-thread baseline: %v", sp)
	}
}

func TestRenderers(t *testing.T) {
	recs := sweepSmall(t)
	var buf bytes.Buffer
	if err := RenderTimeTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lj-sim") || !strings.Contains(buf.String(), "threads") {
		t.Fatalf("time table:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderSpeedupTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best speed-up") {
		t.Fatalf("speedup table:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderRateTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "peak edges/sec") {
		t.Fatalf("rate table:\n%s", buf.String())
	}
	buf.Reset()
	if err := PlatformTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GOMAXPROCS") {
		t.Fatalf("platform table:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	recs := sweepSmall(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(recs)+1 {
		t.Fatalf("%d CSV lines for %d records", len(lines), len(recs))
	}
	if !strings.HasPrefix(lines[0], "graph,vertices,edges,threads") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[0], ",engine,") {
		t.Fatalf("header missing engine column: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 15 {
			t.Fatalf("bad CSV row: %q", l)
		}
		if !strings.Contains(l, ",matching,") {
			t.Fatalf("row missing engine value: %q", l)
		}
	}
}

func TestRenderKernelTable(t *testing.T) {
	recs := sweepSmall(t)
	var buf bytes.Buffer
	if err := RenderKernelTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "score (s)") || !strings.Contains(out, "contract (s)") ||
		!strings.Contains(out, "lj-sim") {
		t.Fatalf("kernel table:\n%s", out)
	}
	// One breakdown row per distinct thread count plus the header.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("kernel table has %d lines, want 3:\n%s", len(lines), out)
	}
	// The kernel totals the sweep recorded must not exceed the wall time.
	for _, r := range recs {
		if sum := r.ScoreSec + r.MatchSec + r.ContractSec; sum > r.Seconds {
			t.Fatalf("kernel seconds %v exceed wall %v", sum, r.Seconds)
		}
	}
}

func TestRenderPhaseTable(t *testing.T) {
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(400, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(g, core.Options{MinCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderPhaseTable(&buf, res.Stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "score (ms)") || !strings.Contains(out, "total") {
		t.Fatalf("phase table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(res.Stats)+2 {
		t.Fatalf("phase table has %d lines for %d phases:\n%s", len(lines), len(res.Stats), out)
	}
}

func TestGraphTable(t *testing.T) {
	g := gen.Ring(10)
	var buf bytes.Buffer
	if err := GraphTable(&buf, []GraphInfo{Info("ring", g)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ring") || !strings.Contains(buf.String(), "10") {
		t.Fatalf("graph table:\n%s", buf.String())
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trials != 3 {
		t.Fatalf("trials = %d, want 3 (paper's methodology)", cfg.Trials)
	}
	if cfg.Options.MinCoverage != 0.5 {
		t.Fatalf("coverage target = %v, want 0.5", cfg.Options.MinCoverage)
	}
	if len(cfg.Threads) == 0 || cfg.Threads[0] != 1 {
		t.Fatalf("thread series = %v", cfg.Threads)
	}
}

func TestSweepPropagatesEngineErrors(t *testing.T) {
	g := gen.Ring(10)
	_, err := Sweep(g, "ring", Config{
		Threads: []int{1},
		Trials:  1,
		Options: core.Options{MinCoverage: 2}, // invalid
	})
	if err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestSweepDefaults(t *testing.T) {
	g := gen.CliqueChain(4, 4)
	recs, err := Sweep(g, "chain", Config{}) // zero config: defaults kick in
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records with default config")
	}
	if recs[0].Threads != 1 {
		t.Fatalf("default sweep should start at 1 thread, got %d", recs[0].Threads)
	}
}

func TestRenderConvergenceTable(t *testing.T) {
	levels := []obs.LevelStats{
		{Level: 0, Vertices: 100, Edges: 400, PositiveEdges: 390, MatchedPairs: 40,
			MergedVertices: 40, MergeFraction: 0.4, Metric: 0.1, MatchPasses: 3,
			HubShare: 0.02, SchedImbalance: 1.05, SchedBound: 1.0},
		{Level: 1, Vertices: 60, Edges: 250, PositiveEdges: 200, MatchedPairs: 15,
			MergedVertices: 15, MergeFraction: 0.25, Metric: 0.3, MetricDelta: 0.2,
			MatchPasses: 2, HubShare: 0.05},
	}
	warnings := []obs.Warning{{Level: 1, Code: obs.WarnMatchingStall, Detail: "no progress"}}
	var buf bytes.Buffer
	if err := RenderConvergenceTable(&buf, levels, warnings); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 rows + total + 1 warning.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "merge%") || !strings.Contains(lines[0], "imbalance") {
		t.Fatalf("header missing columns: %q", lines[0])
	}
	// The total row carries the merged-vertex sum.
	if !strings.Contains(lines[3], "55") {
		t.Fatalf("total row missing merged sum: %q", lines[3])
	}
	// Levels without a built schedule render "-" instead of a bogus 0.
	if !strings.Contains(lines[2], "-") {
		t.Fatalf("serial level should render dashes: %q", lines[2])
	}
	if !strings.Contains(lines[4], "matching-stall") {
		t.Fatalf("warning line missing: %q", lines[4])
	}
}

func TestRenderConvergenceTableStages(t *testing.T) {
	// Ensemble-run ledger rows: PLP sweeps render under the stage column with
	// their changed/active counters and dashes for the agglomeration columns,
	// instead of being misreported as contraction levels.
	levels := []obs.LevelStats{
		{Stage: obs.StagePLP, Level: 0, Vertices: 100, Edges: 400, Active: 100, Changed: 70},
		{Stage: obs.StagePLP, Level: 1, Vertices: 100, Edges: 400, Active: 85, Changed: 20},
		{Stage: obs.StageCoarsen, Level: 0, Vertices: 100, Edges: 400,
			OutVertices: 30, OutEdges: 150, MergedVertices: 70, MergeFraction: 0.7,
			Metric: 0, MatchPasses: 2, Drain: []int64{100, 85}},
		{Level: 1, Vertices: 30, Edges: 150, PositiveEdges: 120, MatchedPairs: 10,
			MergedVertices: 10, MergeFraction: 0.33, Metric: 0.2, MatchPasses: 2},
	}
	var buf bytes.Buffer
	if err := RenderConvergenceTable(&buf, levels, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 4 rows + total
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "stage") || !strings.Contains(lines[0], "chg/active") {
		t.Fatalf("header missing stage/active columns: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "plp") || !strings.Contains(lines[1], "70/100") {
		t.Fatalf("plp sweep row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "coarsen") {
		t.Fatalf("coarsen row: %q", lines[3])
	}
	// The legacy empty stage renders as match, and the total counts only
	// agglomeration merges plus the coarsen collapse.
	if !strings.HasPrefix(lines[4], "match") {
		t.Fatalf("match row: %q", lines[4])
	}
	if !strings.Contains(lines[5], "80") {
		t.Fatalf("total row should sum coarsen+match merges: %q", lines[5])
	}
}

func TestRenderEngineTable(t *testing.T) {
	recs := []Record{
		{Graph: "rmat", Engine: "matching", Trial: 0, Seconds: 0.30, EdgesPerSec: 1e6, Modularity: 0.20, Communities: 16},
		{Graph: "rmat", Engine: "matching", Trial: 1, Seconds: 0.36, EdgesPerSec: 0.9e6, Modularity: 0.20, Communities: 16},
		{Graph: "rmat", Engine: "ensemble", Trial: 0, Seconds: 0.10, EdgesPerSec: 3e6, Modularity: 0.22, Communities: 10},
		{Graph: "lj", Engine: "matching", Trial: 0, Seconds: 0.50, EdgesPerSec: 2e6, Modularity: 0.52, Communities: 19},
	}
	var buf bytes.Buffer
	if err := RenderEngineTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vs matching") || !strings.Contains(out, "ensemble") {
		t.Fatalf("engine table:\n%s", out)
	}
	// Ensemble best 0.10s vs matching best 0.30s on rmat: 3.00x.
	if !strings.Contains(out, "3.00x") {
		t.Fatalf("missing speedup column:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rmat x2 + lj x1
		t.Fatalf("engine table has %d lines, want 4:\n%s", len(lines), out)
	}
}

package plp

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
)

// propagate runs with p workers and fresh state.
func propagate(p int, g *graph.Graph, opt Options) *Result {
	return Propagate(exec.Background(p), g, opt)
}

func TestSingleEdgeConverges(t *testing.T) {
	// One edge is the minimal oscillation candidate: synchronous propagation
	// without the descend-only rule would swap 0↔1 forever.
	g := graph.MustBuild(1, 2, []graph.Edge{{U: 0, V: 1, W: 1}})
	res := propagate(2, g, Options{})
	if res.Sweeps >= DefaultMaxSweeps {
		t.Fatalf("single edge did not converge: %d sweeps", res.Sweeps)
	}
	if res.Labels[0] != res.Labels[1] {
		t.Errorf("endpoints kept distinct labels %v", res.Labels)
	}
}

func TestTwoCliquesBridge(t *testing.T) {
	// Two K4s joined by one bridge edge: internal label weight 3 beats the
	// bridge weight 1, so the fixpoint keeps the cliques separate.
	var edges []graph.Edge
	for _, base := range []int64{0, 4} {
		for i := int64(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 3, V: 4, W: 1})
	g := graph.MustBuild(1, 8, edges)
	for _, p := range []int{1, 4} {
		res := propagate(p, g, Options{})
		if res.Sweeps >= DefaultMaxSweeps {
			t.Fatalf("p=%d: no convergence in %d sweeps", p, res.Sweeps)
		}
		for v := 1; v < 4; v++ {
			if res.Labels[v] != res.Labels[0] {
				t.Errorf("p=%d: clique A split: %v", p, res.Labels)
			}
			if res.Labels[4+v] != res.Labels[4] {
				t.Errorf("p=%d: clique B split: %v", p, res.Labels)
			}
		}
		if res.Labels[0] == res.Labels[4] {
			t.Errorf("p=%d: bridge merged the cliques: %v", p, res.Labels)
		}
	}
}

func TestCliqueChainSeparation(t *testing.T) {
	// 8 cliques of 6 chained by single bridges; each clique must end under
	// one label and the drain curves must be recorded per sweep.
	g := gen.CliqueChain(8, 6)
	res := propagate(4, g, Options{})
	if res.Sweeps >= DefaultMaxSweeps {
		t.Fatalf("no convergence in %d sweeps", res.Sweeps)
	}
	if len(res.Active) != res.Sweeps || len(res.Changed) != res.Sweeps {
		t.Fatalf("drain curves have %d/%d entries for %d sweeps",
			len(res.Active), len(res.Changed), res.Sweeps)
	}
	for c := int64(0); c < 8; c++ {
		base := 6 * c
		for i := int64(1); i < 6; i++ {
			if res.Labels[base+i] != res.Labels[base] {
				t.Fatalf("clique %d split: %v", c, res.Labels)
			}
		}
		if c > 0 && res.Labels[base] == res.Labels[base-6] {
			t.Errorf("cliques %d and %d merged", c-1, c)
		}
	}
	// The last executed sweep either hit the fixpoint (changed 0) or emptied
	// the worklist.
	if last := res.Changed[len(res.Changed)-1]; last != 0 {
		t.Errorf("final sweep still changed %d labels yet the run stopped", last)
	}
}

func TestIsolatedVertices(t *testing.T) {
	// No edges: the initial worklist is empty, zero sweeps run, and every
	// vertex keeps its identity label.
	g := graph.NewEmpty(5)
	res := propagate(4, g, Options{})
	if res.Sweeps != 0 {
		t.Errorf("ran %d sweeps on an edgeless graph", res.Sweeps)
	}
	for v, l := range res.Labels {
		if l != int64(v) {
			t.Errorf("vertex %d lost its identity label: %d", v, l)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	res := propagate(2, graph.NewEmpty(0), Options{})
	if len(res.Labels) != 0 || res.Sweeps != 0 {
		t.Errorf("empty graph produced %d labels, %d sweeps", len(res.Labels), res.Sweeps)
	}
}

// ljGraph builds the deterministic LJ-similar test graph used by the engine
// tests.
func ljGraph(t *testing.T, n int64) *graph.Graph {
	t.Helper()
	g, _, err := gen.LJSim(2, gen.DefaultLJSim(n, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeterminismAcrossThreads(t *testing.T) {
	// The Jacobi two-phase design makes the fixpoint a function of the graph
	// alone: every thread count must produce identical labels.
	for _, g := range []*graph.Graph{gen.Karate(), ljGraph(t, 3000)} {
		ref := propagate(1, g, Options{})
		for _, p := range []int{2, 4, 8} {
			res := propagate(p, g, Options{})
			if res.Sweeps != ref.Sweeps {
				t.Errorf("p=%d: %d sweeps vs %d serial", p, res.Sweeps, ref.Sweeps)
			}
			for v := range ref.Labels {
				if res.Labels[v] != ref.Labels[v] {
					t.Fatalf("p=%d: label[%d]=%d differs from serial %d",
						p, v, res.Labels[v], ref.Labels[v])
				}
			}
		}
	}
}

func TestArenaVsFresh(t *testing.T) {
	// A reused scratch must reproduce the fresh-allocation run exactly, and
	// must survive a larger graph following a smaller one.
	small, big := gen.Karate(), ljGraph(t, 2000)
	s := &Scratch{}
	for _, g := range []*graph.Graph{small, big, small} {
		fresh := propagate(4, g, Options{})
		reused := PropagateWith(exec.Background(4), g, Options{}, s)
		if reused.Sweeps != fresh.Sweeps {
			t.Fatalf("arena run took %d sweeps, fresh %d", reused.Sweeps, fresh.Sweeps)
		}
		for v := range fresh.Labels {
			if reused.Labels[v] != fresh.Labels[v] {
				t.Fatalf("arena label[%d]=%d, fresh %d", v, reused.Labels[v], fresh.Labels[v])
			}
		}
	}
}

func TestMaxSweepsBound(t *testing.T) {
	g := ljGraph(t, 2000)
	res := propagate(4, g, Options{MaxSweeps: 2})
	if res.Sweeps > 2 {
		t.Errorf("MaxSweeps=2 ran %d sweeps", res.Sweeps)
	}
}

func TestThresholdStopsEarly(t *testing.T) {
	g := ljGraph(t, 3000)
	full := propagate(4, g, Options{})
	if full.Sweeps < 2 {
		t.Skipf("graph converged in %d sweeps; threshold has nothing to cut", full.Sweeps)
	}
	// Threshold 1.0 means a sweep needs more than n active vertices — never
	// true — so the run stops immediately with identity labels.
	none := propagate(4, g, Options{Threshold: 1.0})
	if none.Sweeps != 0 {
		t.Errorf("threshold 1.0 still ran %d sweeps", none.Sweeps)
	}
	// A mid threshold must cut the tail: strictly fewer sweeps than the
	// fixpoint run once the active fraction decays below it.
	part := propagate(4, g, Options{Threshold: 0.5})
	if part.Sweeps >= full.Sweeps {
		t.Errorf("threshold 0.5 ran %d sweeps, fixpoint run %d", part.Sweeps, full.Sweeps)
	}
	for _, a := range part.Active {
		if float64(a) <= 0.5*float64(g.NumVertices()) {
			t.Errorf("sweep ran with active fraction %d/%d below threshold", a, g.NumVertices())
		}
	}
}

func TestRepeatedRunsIdentical(t *testing.T) {
	// Same thread count, same graph, shared scratch: bitwise-identical labels
	// across runs (the determinism gate's kernel-level half).
	g := ljGraph(t, 3000)
	s := &Scratch{}
	first := append([]int64(nil), PropagateWith(exec.Background(4), g, Options{}, s).Labels...)
	for run := 0; run < 3; run++ {
		res := PropagateWith(exec.Background(4), g, Options{}, s)
		for v := range first {
			if res.Labels[v] != first[v] {
				t.Fatalf("run %d: label[%d]=%d differs from first run %d",
					run, v, res.Labels[v], first[v])
			}
		}
	}
}

func TestHighThreadSmallGraph(t *testing.T) {
	// More workers than vertices exercises the stripe-claim cursor and range
	// partitioning edge cases (also the -race target's entry point).
	g := gen.CliqueChain(3, 4)
	ref := propagate(1, g, Options{})
	res := propagate(16, g, Options{})
	for v := range ref.Labels {
		if res.Labels[v] != ref.Labels[v] {
			t.Fatalf("p=16 diverged from serial at vertex %d", v)
		}
	}
}

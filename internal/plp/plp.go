// Package plp implements parallel label propagation (PLP) — the near-linear
// coarsening pass of Staudt & Meyerhenke's "Engineering Parallel Algorithms
// for Community Detection in Massive Networks" (see PAPERS.md). Every vertex
// starts in its own community and repeatedly adopts the dominant label of its
// neighborhood (the label with the largest incident edge weight); after a
// handful of sweeps most of the graph has collapsed into large label groups.
// The engine uses it as the cheap prelabeling stage of the EPP ensemble
// pipeline (core.EngineEnsemble): one label contraction after PLP shrinks the
// graph before the expensive matching agglomeration runs.
//
// # Determinism and consistency
//
// The sweeps are synchronous (Jacobi-style) and two-phase, which is what
// makes the kernel deterministic at every thread count:
//
//   - Phase A (compute) reads the stable labels array and writes each active
//     vertex's proposed label into a separate pending array. No label is
//     written while any label is read — the phases are barrier-separated —
//     so label access needs no atomics and the result depends only on the
//     label state, never on worker interleaving.
//   - Phase B (commit) applies pending labels (each vertex appears once on
//     the worklist, so the store is unshared) and scatters next-sweep
//     activation marks to the changed vertex and its neighbors. The mark
//     scatter is the one concurrently written surface: several committers
//     may mark a shared neighbor at once, so the marks go through atomic
//     stores (monotone 0→1, any order is the same outcome). The per-sweep
//     changed counter aggregates per-range partials with atomic adds —
//     a commutative sum, so it too is schedule-independent.
//
// Ties on the dominant weight break toward the smaller label, and a vertex
// may ascend to a larger label only on even sweeps ("descend-only on odd
// sweeps"). Synchronous label propagation can otherwise enter period-2
// oscillations — two vertices that keep swapping labels — and the
// asymmetric rule breaks every such cycle while leaving fixpoints fixed.
// The rule is enforced at commit time: a vertex whose ascent an odd sweep
// blocks keeps its label but stays on the worklist, so it retries on the
// next (even) sweep instead of silently freezing below its dominant label.
//
// The per-sweep worklist holds only vertices whose neighborhood changed in
// the previous sweep, packed in index order by the deterministic prefix-sum
// scatter, and each sweep is scheduled degree-balanced over the worklist via
// par.Partition (the same discipline as the matching kernel). Dominant-label
// selection uses per-range dense stripes of the label histogram — the
// striped-histogram pattern from internal/par, with the stripe restored to
// zero after each vertex so one clear per run suffices.
package plp

import (
	"sync/atomic"

	"repro/internal/buf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
)

// DefaultMaxSweeps bounds a run when Options.MaxSweeps is 0. Label
// propagation converges to a fixpoint in a handful of sweeps on social
// graphs; the bound also stops pathological slow drains.
const DefaultMaxSweeps = 32

// Options configures a propagation run.
type Options struct {
	// MaxSweeps bounds the number of sweeps; 0 selects DefaultMaxSweeps.
	MaxSweeps int
	// Threshold stops the run once the active-vertex fraction drops to or
	// below it: a sweep runs only while len(worklist) > Threshold·n. 0 (the
	// default) runs to an exact fixpoint (or MaxSweeps). Staudt & Meyerhenke
	// stop PLP early because the last sweeps move almost nothing while still
	// costing a pass; a prelabeling does not need the exact fixpoint.
	Threshold float64
}

// Result of a propagation run.
type Result struct {
	// Labels[v] is v's community label: a vertex id in [0, n), not
	// necessarily dense (contract.ByLabels densifies during contraction).
	// With a caller-provided Scratch, Labels aliases scratch storage and is
	// valid only until the scratch's next use.
	Labels []int64
	// Sweeps is the number of executed sweeps.
	Sweeps int
	// Active[i] is the worklist length at the start of sweep i — the drain
	// curve. Changed[i] is the number of vertices that adopted a new label
	// in sweep i. Both alias scratch storage when a Scratch is provided.
	Active  []int64
	Changed []int64
}

// Scratch holds the kernel's reusable state: the symmetrized CSR view, the
// label/pending arrays, the activation marks and worklist double-buffer, the
// striped label histogram, and the per-sweep partition workspace. A zero
// Scratch is ready; buffers grow to the largest graph seen. A Scratch must
// not be shared by concurrent propagations.
type Scratch struct {
	csr     graph.CSR
	labels  []int64
	pending []int64
	marks   []int64 // next-sweep activation flags, also the initial keep flags
	slots   []int64
	list    []int64 // worklist double-buffer, ping
	list2   []int64 // worklist double-buffer, pong
	// spa is the striped dense label histogram: workers consecutive n-wide
	// stripes. Each compute range accumulates its vertices' neighborhoods
	// into its own stripe and restores the touched entries to zero before
	// moving on, so the whole array is cleared once per run, not per sweep.
	spa []int64
	// part is the per-sweep degree-balanced schedule over the worklist:
	// item i weighs deg(list[i])+1 (vertex-aligned — per-vertex histogram
	// state must not split across workers).
	part    par.Partition
	active  []int64
	changed []int64
}

// orNew returns s, or a fresh Scratch when s is nil, keeping the kernel's
// scratch in a single-assignment variable (closure-capture rule; see the
// matching kernel).
func (s *Scratch) orNew() *Scratch {
	if s != nil {
		return s
	}
	return &Scratch{}
}

// Propagate runs label propagation on g with fresh state. The input graph is
// read-only.
func Propagate(ec *exec.Ctx, g *graph.Graph, opt Options) *Result {
	return PropagateWith(ec, g, opt, nil)
}

// PropagateWith is Propagate running out of s's reusable buffers; a nil s
// behaves exactly like Propagate. When ec carries a recorder the kernel
// records one span per sweep (active in, changed out); a nil recorder costs
// predictable branches only. When ec's context is cancelled the sweep loop
// exits early: the labels reached so far are a valid (just less converged)
// prelabeling.
func PropagateWith(ec *exec.Ctx, g *graph.Graph, opt Options, scratch *Scratch) *Result {
	rec := ec.Recorder()
	n := int(g.NumVertices())
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = DefaultMaxSweeps
	}
	s := scratch.orNew()
	res := &Result{}
	if n == 0 {
		res.Labels = s.labels[:0]
		return res
	}

	// PLP needs whole neighborhoods; the bucketed triple graph stores each
	// edge once, so symmetrize into the scratch CSR. Adjacency order within
	// a row is schedule-dependent (atomic cursors), but every consumer below
	// is order-independent: weight sums commute exactly in int64 and the
	// min-label tie-break is a total order.
	c := graph.ToCSRInto(ec.Threads(), g, &s.csr)

	workers := ec.Workers(n)
	s.labels = buf.Grow(s.labels, n)
	s.pending = buf.Grow(s.pending, n)
	s.marks = buf.Grow(s.marks, n)
	s.slots = buf.Grow(s.slots, n)
	s.list = buf.Grow(s.list, n)
	s.list2 = buf.Grow(s.list2, n)
	s.spa = buf.Grow(s.spa, workers*n)
	labels, marks := s.labels, s.marks
	spa := s.spa[:workers*n]
	ec.ZeroInt64(spa) // per-vertex discipline restores entries; one clear per run

	// Identity labels; the initial worklist is every vertex with a neighbor
	// (isolated vertices keep their own label forever and never activate).
	if ec.Serial(n) {
		for v := 0; v < n; v++ {
			labels[v] = int64(v)
			if c.Degree(int64(v)) > 0 {
				marks[v] = 1
			} else {
				marks[v] = 0
			}
		}
	} else {
		ec.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				labels[v] = int64(v)
				if c.Degree(int64(v)) > 0 {
					marks[v] = 1
				} else {
					marks[v] = 0
				}
			}
		})
	}
	list := ec.PackIndexInto(n, marks, s.slots, s.list)
	ec.ZeroInt64(marks)

	s.active, s.changed = s.active[:0], s.changed[:0]
	dbuf := s.list2
	sweep := 0
	for sweep < maxSweeps && float64(len(list)) > opt.Threshold*float64(n) {
		if ec.Err() != nil {
			break // cancelled: current labels are a valid prelabeling
		}
		s.active = append(s.active, int64(len(list)))
		lst := list // single-assignment alias for closure capture
		sp := rec.Begin(obs.CatKernel, "plp/sweep", -1)
		var sweepT0 int64
		if rec.Enabled() {
			sweepT0 = obs.NowNS()
		}

		// Phase A: compute. Plain-function bodies keep the serial path
		// closure-free; the balanced path hands each range a private
		// histogram stripe claimed off an atomic cursor (ranges ≤ workers,
		// and stripe identity cannot affect the outcome — stripes are
		// scratch restored to zero vertex by vertex).
		balanced := !ec.Serial(len(lst)) && !ec.DynamicOnly()
		if ec.Serial(len(lst)) {
			computeRange(c, labels, s.pending, spa[:n], lst, 0, len(lst))
		} else if balanced {
			rowStart, rowEnd := c.RowBounds()
			ec.BuildIndexed(&s.part, lst, rowStart, rowEnd)
			var cursor int64
			nn := n
			ec.ForRanges("plp/compute", &s.part, func(lo, hi int) {
				j := int(atomic.AddInt64(&cursor, 1)) - 1
				computeRange(c, labels, s.pending, spa[j*nn:(j+1)*nn], lst, lo, hi)
			})
		} else {
			// Dynamic-chunking ablation path: chunk counts exceed the stripe
			// budget, so fall back to a per-chunk map (the refine kernel's
			// discipline).
			ec.ForDynamic(len(lst), 0, func(lo, hi int) {
				computeRangeMap(c, labels, s.pending, lst, lo, hi)
			})
		}

		// Phase B: commit and scatter activation marks (see the package
		// comment for the consistency argument).
		var changed int64
		if ec.Serial(len(lst)) {
			changed = commitRange(c, labels, s.pending, marks, sweep, lst, 0, len(lst))
		} else if balanced {
			ec.ForRanges("plp/commit", &s.part, func(lo, hi int) {
				atomic.AddInt64(&changed, commitRange(c, labels, s.pending, marks, sweep, lst, lo, hi))
			})
		} else {
			ec.ForDynamic(len(lst), 0, func(lo, hi int) {
				atomic.AddInt64(&changed, commitRange(c, labels, s.pending, marks, sweep, lst, lo, hi))
			})
		}
		s.changed = append(s.changed, changed)

		// Next worklist: pack the marked vertices (index order — the
		// prefix-sum pack is deterministic) into the other half of the
		// double-buffer, then clear the marks for the next sweep.
		packed := ec.PackIndexInto(n, marks, s.slots, dbuf)
		ec.ZeroInt64(marks)
		dbuf = lst[:0]
		list = packed
		sweep++
		if rec.Enabled() {
			rec.ObserveLatency(obs.LatPLPSweep, obs.NowNS()-sweepT0)
		}
		sp.EndArgs("active", int64(len(lst)), "changed", changed)
		// No explicit fixpoint break: when nothing changed and no ascent was
		// blocked, no vertex is marked and the packed worklist is empty, so
		// the loop condition exits; blocked vertices keep the list non-empty
		// for one more (even) sweep.
	}
	s.list, s.list2 = list[:0], dbuf[:0]

	res.Labels = labels
	res.Sweeps = sweep
	res.Active = s.active
	res.Changed = s.changed
	return res
}

// computeRange is phase A over list[lo:hi]: each active vertex accumulates
// its neighborhood's label weights into the range's private histogram stripe
// w, tracks the running dominant label (weights only grow, so the running
// argmax with min-label ties equals the final one), and proposes it. Touched
// stripe entries are restored to zero before the next vertex. The
// descend-only rule is commitRange's, so a blocked proposal survives to the
// next sweep.
func computeRange(c *graph.CSR, labels, pending, w []int64, list []int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := list[i]
		cur := labels[v]
		adj, wgt := c.Neighbors(v)
		// Self-loop weight counts toward the current label: internal
		// cohesion resists absorption.
		w[cur] = c.Self[v]
		best, bestW := cur, w[cur]
		for j, u := range adj {
			l := labels[u]
			nw := w[l] + wgt[j]
			w[l] = nw
			if nw > bestW || (nw == bestW && l < best) {
				best, bestW = l, nw
			}
		}
		for _, u := range adj {
			w[labels[u]] = 0
		}
		w[cur] = 0
		pending[v] = best
	}
}

// computeRangeMap is computeRange with a per-call map instead of a stripe,
// for the dynamic-chunking path where chunks outnumber stripes.
func computeRangeMap(c *graph.CSR, labels, pending []int64, list []int64, lo, hi int) {
	w := make(map[int64]int64)
	for i := lo; i < hi; i++ {
		v := list[i]
		cur := labels[v]
		adj, wgt := c.Neighbors(v)
		clear(w)
		w[cur] = c.Self[v]
		best, bestW := cur, w[cur]
		for j, u := range adj {
			l := labels[u]
			nw := w[l] + wgt[j]
			w[l] = nw
			if nw > bestW || (nw == bestW && l < best) {
				best, bestW = l, nw
			}
		}
		pending[v] = best
	}
}

// commitRange is phase B over list[lo:hi]: apply pending labels (each
// worklist vertex is owned by exactly one range, so the label store is
// plain) and atomically mark the changed vertex and its neighbors active for
// the next sweep. On odd sweeps an ascent (pending label larger than the
// current one) is blocked — the oscillation breaker — but the vertex
// re-marks itself so the next, even sweep reconsiders the move; without the
// re-mark a blocked vertex would fall off the worklist frozen below its
// dominant label. Returns the number of vertices that changed label.
func commitRange(c *graph.CSR, labels, pending, marks []int64, sweep int, list []int64, lo, hi int) int64 {
	var changed int64
	for i := lo; i < hi; i++ {
		v := list[i]
		nl := pending[v]
		if nl == labels[v] {
			continue
		}
		if sweep%2 == 1 && nl > labels[v] {
			atomic.StoreInt64(&marks[v], 1)
			continue
		}
		labels[v] = nl
		changed++
		atomic.StoreInt64(&marks[v], 1)
		adj, _ := c.Neighbors(v)
		for _, u := range adj {
			atomic.StoreInt64(&marks[u], 1)
		}
	}
	return changed
}

// Package benchcmp compares two archived benchmark streams — the `go test
// -json` event logs the Makefile bench targets tee under results/ — and
// decides, per benchmark and metric, whether the difference is statistically
// significant rather than run-to-run noise. It is the repo's regression gate:
// cmd/benchdiff renders the paired table and exits non-zero when a
// significant regression exceeds the caller's threshold. No external stats
// dependency: the Mann–Whitney U test ships in stats.go.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark invocation's measured metrics: Values maps a unit
// ("ns/op", "B/op", "allocs/op", "edges/s", ...) to its value. Repeated
// -count runs of the same benchmark yield multiple Results with one Name.
type Result struct {
	Name   string
	Iters  int64
	Values map[string]float64
}

// event is the subset of a test2json record the parser needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches a completed benchmark result line. The name keeps its
// -N GOMAXPROCS suffix here; canonName strips it for pairing.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)((?:\s+[0-9.eE+-]+\s+\S+)+)\s*$`)

// canonSuffix strips the trailing -N GOMAXPROCS tag so the same benchmark
// pairs across hosts with different core counts.
var canonSuffix = regexp.MustCompile(`-\d+$`)

func canonName(name string) string { return canonSuffix.ReplaceAllString(name, "") }

// ParseStream reads one archived benchmark stream and returns its results in
// file order. It tolerates the three shapes the repo archives: a cmd/bench
// -meta JSON line first, test2json event lines (benchmark output is split
// across several Output events, so events concatenate before line scanning),
// and raw `go test -bench` text with no JSON at all.
func ParseStream(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var text strings.Builder
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "{") {
			var ev event
			if err := json.Unmarshal([]byte(trimmed), &ev); err == nil {
				// A JSON line that is not a test2json output event (meta
				// header, start/run/pass actions) contributes no text.
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return parseText(text.String())
}

func parseText(text string) ([]Result, error) {
	var out []Result
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad iteration count in %q: %w", line, err)
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchcmp: odd value/unit pairing in %q", line)
		}
		res := Result{Name: canonName(m[1]), Iters: iters, Values: make(map[string]float64, len(fields)/2)}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad value %q in %q: %w", fields[i], line, err)
			}
			res.Values[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark result lines found")
	}
	return out, nil
}

// Samples groups results by benchmark name, preserving first-seen order, and
// returns per-name per-unit sample vectors.
func Samples(results []Result) (names []string, byName map[string]map[string][]float64) {
	byName = make(map[string]map[string][]float64)
	for _, r := range results {
		units, ok := byName[r.Name]
		if !ok {
			units = make(map[string][]float64)
			byName[r.Name] = units
			names = append(names, r.Name)
		}
		for unit, v := range r.Values {
			units[unit] = append(units[unit], v)
		}
	}
	return names, byName
}

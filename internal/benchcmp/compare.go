package benchcmp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Delta is one paired (benchmark, unit) comparison.
type Delta struct {
	Name      string
	Unit      string
	OldMedian float64
	NewMedian float64
	// Pct is the relative change (NewMedian−OldMedian)/OldMedian; positive
	// means the value went up, whatever that means for the unit.
	Pct float64
	// P is the Mann–Whitney two-sided p-value; NaN when either side has too
	// few samples to judge and the unit is not deterministic.
	P float64
	// Significant: the difference is real — p below alpha, or a changed
	// deterministic counter.
	Significant bool
	// Regression: significant, in the unit's worse direction, and beyond the
	// caller's threshold.
	Regression bool
	// OldN/NewN are the per-side sample counts.
	OldN, NewN int
}

// higherIsBetter classifies a unit's good direction: throughput units
// ("edges/s", "MB/s") and the quality/scaling metrics the bench suite
// attaches ("modularity", "speedup") improve upward, everything else —
// times, bytes, allocations per op — improves downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || unit == "modularity" || unit == "speedup"
}

// deterministicUnit marks units that are exact run to run, where a changed
// value is significant without repeated samples. Only the allocation count
// qualifies unconditionally; ns/op never does, and B/op can wobble with map
// growth so it takes the statistical path too.
func deterministicUnit(unit string) bool {
	return unit == "allocs/op"
}

// Compare pairs two parsed streams by benchmark name and unit. threshold is
// the relative-change floor a significant difference must exceed to count as
// a regression (0.05 = 5%); alpha is the significance level for the
// Mann–Whitney p-value. Benchmarks present on only one side are skipped —
// the gate judges changes, not coverage.
func Compare(base, head []Result, threshold, alpha float64) []Delta {
	names, oldBy := Samples(base)
	_, newBy := Samples(head)
	var out []Delta
	for _, name := range names {
		newUnits, ok := newBy[name]
		if !ok {
			continue
		}
		oldUnits := oldBy[name]
		units := make([]string, 0, len(oldUnits))
		for u := range oldUnits {
			if _, ok := newUnits[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			a, b := oldUnits[unit], newUnits[unit]
			d := Delta{
				Name:      name,
				Unit:      unit,
				OldMedian: Median(a),
				NewMedian: Median(b),
				P:         MannWhitneyP(a, b),
				OldN:      len(a),
				NewN:      len(b),
			}
			if d.OldMedian != 0 {
				d.Pct = (d.NewMedian - d.OldMedian) / d.OldMedian
			}
			if !math.IsNaN(d.P) && d.P < alpha {
				d.Significant = true
			}
			if deterministicUnit(unit) && Deterministic(a, b) && d.OldMedian != d.NewMedian {
				d.Significant = true
			}
			if d.Significant {
				worse := d.Pct > 0
				if higherIsBetter(unit) {
					worse = d.Pct < 0
				}
				if worse && math.Abs(d.Pct) > threshold {
					d.Regression = true
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// SpeedupShortfalls judges a required-speedup gate over the wall-time rows:
// every ns/op delta of a benchmark common to both streams must show NEW
// faster than OLD by at least ratio (old/new median >= ratio) AND the
// improvement must be statistically significant. Returned deltas are the
// failures; an empty result means the gate passed. Non-time units are not
// judged — a speedup gate is about wall time.
func SpeedupShortfalls(deltas []Delta, ratio float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Unit != "ns/op" {
			continue
		}
		if !d.Significant || d.NewMedian <= 0 || d.OldMedian/d.NewMedian < ratio {
			out = append(out, d)
		}
	}
	return out
}

// Regressions counts the gated deltas.
func Regressions(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// RenderMarkdown writes the paired comparison as a GitHub-flavored markdown
// table. The delta column carries the significance mark: "!" a gated
// regression, "✓" a significant improvement, "≈" a significant but
// sub-threshold change, "~" statistically indistinguishable or not enough
// samples to tell.
func RenderMarkdown(w io.Writer, deltas []Delta) error {
	if _, err := fmt.Fprintln(w, "| benchmark | unit | old | new | delta | p | n | verdict |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|---|:---:|"); err != nil {
		return err
	}
	for _, d := range deltas {
		mark := "~"
		if d.Significant {
			switch {
			case d.Regression:
				mark = "!"
			case math.Abs(d.Pct) > 0:
				worse := d.Pct > 0
				if higherIsBetter(d.Unit) {
					worse = d.Pct < 0
				}
				if worse {
					mark = "≈"
				} else {
					mark = "✓"
				}
			default:
				mark = "≈"
			}
		}
		p := "-"
		if !math.IsNaN(d.P) {
			p = fmt.Sprintf("%.3f", d.P)
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %+.1f%% | %s | %d/%d | %s |\n",
			d.Name, d.Unit, formatValue(d.OldMedian), formatValue(d.NewMedian),
			100*d.Pct, p, d.OldN, d.NewN, mark); err != nil {
			return err
		}
	}
	return nil
}

// formatValue prints a metric with precision matched to its magnitude, the
// way `go test` itself scales benchmark output.
func formatValue(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.0f", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

package benchcmp

import (
	"math"
	"sort"
)

// Median returns the middle of xs (mean of the middle pair for even counts).
// It copies before sorting; NaN for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// minSamples is the smallest per-side sample count the normal approximation
// of the U distribution is allowed to judge. Below it MannWhitneyP returns
// NaN ("cannot tell"), except for deterministic units — see Deterministic.
const minSamples = 3

// MannWhitneyP computes the two-sided p-value of the Mann–Whitney U test
// (Wilcoxon rank-sum) for samples a and b, using the normal approximation
// with tie correction and a 0.5 continuity correction. It answers "could
// these two sets of timings come from the same distribution?" without
// assuming normality — benchmark timings are skewed and multi-modal, so a
// t-test's normality assumption would misfire exactly when machines do.
// Returns NaN when either side has fewer than minSamples samples or when
// every value is tied.
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	if n1 < minSamples || n2 < minSamples {
		return math.NaN()
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie bookkeeping: a run of t equal values all get the
	// average of the ranks they span, and contribute t³−t to the correction.
	var r1 float64      // rank sum of sample a
	var tieTerm float64 // Σ (t³ − t) over tie groups
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		if t > 1 {
			tieTerm += t*t*t - t
		}
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		i = j
	}
	f1, f2 := float64(n1), float64(n2)
	u1 := r1 - f1*(f1+1)/2
	mean := f1 * f2 / 2
	nTot := f1 + f2
	variance := f1 * f2 / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if variance <= 0 {
		// Every observation tied: the samples are literally identical.
		return math.NaN()
	}
	z := u1 - mean
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	// Two-sided p from the standard normal survival function.
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}

// Deterministic reports whether the two sample sets behave like a
// deterministic counter: every sample on each side equals that side's first
// sample. allocs/op (and B/op under a steady-state allocator) is exact run
// to run, so a difference needs no statistics — one sample per side already
// proves the code changed. This is the significance escape hatch for
// single-sample archives, which the U test alone can never judge.
func Deterministic(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	for _, v := range a {
		if v != a[0] {
			return false
		}
	}
	for _, v := range b {
		if v != b[0] {
			return false
		}
	}
	return true
}

package benchcmp

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// streamFromLines wraps raw bench result lines as a test2json event stream
// with a cmd/bench -meta header, splitting each line across two Output
// events the way test2json actually emits them.
func streamFromLines(lines ...string) string {
	var b strings.Builder
	b.WriteString(`{"bench":"cmd/bench","date":"2026-08-06T00:00:00Z","meta":{"go_version":"go1.24.0"}}` + "\n")
	b.WriteString(`{"Time":"2026-08-06T00:00:00Z","Action":"start","Package":"repro"}` + "\n")
	for _, ln := range lines {
		mid := len(ln) / 2
		fmt.Fprintf(&b, `{"Action":"output","Package":"repro","Output":%q}`+"\n", ln[:mid])
		fmt.Fprintf(&b, `{"Action":"output","Package":"repro","Output":%q}`+"\n", ln[mid:]+"\n")
	}
	b.WriteString(`{"Action":"pass","Package":"repro"}` + "\n")
	return b.String()
}

func TestParseStreamJSONEvents(t *testing.T) {
	in := streamFromLines(
		"BenchmarkDetect_Arena-8   \t       4\t 303099790 ns/op\t   1067007 edges/s\t  314256 B/op\t       4 allocs/op",
		"BenchmarkParFor/pool/n=100-8 \t 2101287\t       585.5 ns/op\t       0 B/op\t       0 allocs/op",
	)
	res, err := ParseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(res), res)
	}
	// The -8 GOMAXPROCS suffix is stripped for pairing.
	if res[0].Name != "BenchmarkDetect_Arena" || res[1].Name != "BenchmarkParFor/pool/n=100" {
		t.Fatalf("names %q, %q", res[0].Name, res[1].Name)
	}
	if res[0].Values["ns/op"] != 303099790 || res[0].Values["allocs/op"] != 4 {
		t.Fatalf("values %+v", res[0].Values)
	}
	if res[1].Values["ns/op"] != 585.5 {
		t.Fatalf("fractional ns/op parsed as %v", res[1].Values["ns/op"])
	}
}

func TestParseStreamRawText(t *testing.T) {
	raw := `goos: linux
BenchmarkDetect_Arena-4    3	 310000000 ns/op	  314256 B/op	       4 allocs/op
BenchmarkDetect_Arena-4    3	 305000000 ns/op	  314256 B/op	       4 allocs/op
PASS
`
	res, err := ParseStream(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Name != "BenchmarkDetect_Arena" {
		t.Fatalf("parsed %+v", res)
	}
}

func TestParseStreamNoBenchmarks(t *testing.T) {
	if _, err := ParseStream(strings.NewReader("goos: linux\nPASS\n")); err == nil {
		t.Fatal("want error for a stream with no benchmark lines")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median %v", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median not NaN")
	}
}

func TestMannWhitneySeparatedSamplesSignificant(t *testing.T) {
	a := []float64{100, 101, 99, 102, 100}
	b := []float64{130, 131, 129, 132, 130}
	p := MannWhitneyP(a, b)
	if math.IsNaN(p) || p >= 0.05 {
		t.Fatalf("disjoint samples p=%v, want < 0.05", p)
	}
	// Symmetry.
	if p2 := MannWhitneyP(b, a); math.Abs(p-p2) > 1e-12 {
		t.Fatalf("asymmetric p: %v vs %v", p, p2)
	}
}

func TestMannWhitneyOverlappingSamplesNotSignificant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := make([]float64, 8)
	b := make([]float64, 8)
	for i := range a {
		a[i] = 100 + r.Float64()
		b[i] = 100 + r.Float64()
	}
	if p := MannWhitneyP(a, b); math.IsNaN(p) || p < 0.05 {
		t.Fatalf("same-distribution samples p=%v, want >= 0.05", p)
	}
}

func TestMannWhitneySmallOrTiedSamples(t *testing.T) {
	if p := MannWhitneyP([]float64{1}, []float64{2}); !math.IsNaN(p) {
		t.Fatalf("single samples judged: p=%v", p)
	}
	if p := MannWhitneyP([]float64{5, 5, 5}, []float64{5, 5, 5}); !math.IsNaN(p) {
		t.Fatalf("all-tied samples judged: p=%v", p)
	}
}

func TestDeterministic(t *testing.T) {
	if !Deterministic([]float64{4}, []float64{5}) {
		t.Fatal("single exact samples should be deterministic")
	}
	if Deterministic([]float64{4, 5}, []float64{5}) {
		t.Fatal("varying side is not deterministic")
	}
	if Deterministic(nil, []float64{5}) {
		t.Fatal("empty side is not deterministic")
	}
}

// results builds n repeated Results of one benchmark around the given ns/op
// values.
func resultsOf(name string, ns []float64, allocs float64) []Result {
	var out []Result
	for _, v := range ns {
		out = append(out, Result{Name: name, Iters: 10, Values: map[string]float64{
			"ns/op": v, "allocs/op": allocs,
		}})
	}
	return out
}

func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := resultsOf("BenchmarkDetect", []float64{100, 101, 99, 100, 102}, 4)
	head := resultsOf("BenchmarkDetect", []float64{125, 126, 124, 125, 127}, 4)
	deltas := Compare(base, head, 0.05, 0.05)
	var ns *Delta
	for i := range deltas {
		if deltas[i].Unit == "ns/op" {
			ns = &deltas[i]
		}
	}
	if ns == nil || !ns.Significant || !ns.Regression {
		t.Fatalf("25%% slowdown not gated: %+v", deltas)
	}
	// The unchanged allocs/op row must not gate.
	for _, d := range deltas {
		if d.Unit == "allocs/op" && d.Regression {
			t.Fatalf("unchanged allocs flagged: %+v", d)
		}
	}
}

func TestCompareImprovementNotGated(t *testing.T) {
	base := resultsOf("BenchmarkDetect", []float64{125, 126, 124, 125, 127}, 4)
	head := resultsOf("BenchmarkDetect", []float64{100, 101, 99, 100, 102}, 4)
	for _, d := range Compare(base, head, 0.05, 0.05) {
		if d.Regression {
			t.Fatalf("improvement gated as regression: %+v", d)
		}
	}
}

func TestCompareDeterministicAllocsSingleSample(t *testing.T) {
	// One sample per side — the U test cannot judge, but allocs/op is exact,
	// so 4 → 6 allocs (+50%) must gate.
	base := resultsOf("BenchmarkDetect", []float64{100}, 4)
	head := resultsOf("BenchmarkDetect", []float64{100}, 6)
	var gated bool
	for _, d := range Compare(base, head, 0.05, 0.05) {
		if d.Unit == "allocs/op" {
			gated = d.Regression
		} else if d.Regression {
			t.Fatalf("single-sample %s gated: %+v", d.Unit, d)
		}
	}
	if !gated {
		t.Fatal("deterministic alloc regression not gated on single samples")
	}
}

func TestCompareThroughputDirection(t *testing.T) {
	mk := func(rate float64) []Result {
		var out []Result
		for i := 0; i < 5; i++ {
			out = append(out, Result{Name: "BenchmarkDetect", Values: map[string]float64{
				"edges/s": rate + float64(i),
			}})
		}
		return out
	}
	// Throughput falling is the regression direction for /s units.
	deltas := Compare(mk(1000), mk(800), 0.05, 0.05)
	if len(deltas) != 1 || !deltas[0].Regression {
		t.Fatalf("throughput drop not gated: %+v", deltas)
	}
	if deltas := Compare(mk(800), mk(1000), 0.05, 0.05); deltas[0].Regression {
		t.Fatalf("throughput gain gated: %+v", deltas[0])
	}
}

func TestCompareSubThresholdNotGated(t *testing.T) {
	base := resultsOf("BenchmarkDetect", []float64{100.0, 100.1, 99.9, 100.0, 100.2}, 4)
	head := resultsOf("BenchmarkDetect", []float64{102.0, 102.1, 101.9, 102.0, 102.2}, 4)
	for _, d := range Compare(base, head, 0.05, 0.05) {
		if d.Unit == "ns/op" && !d.Significant {
			t.Fatalf("clearly separated samples not significant: %+v", d)
		}
		if d.Regression {
			t.Fatalf("2%% change gated at 5%% threshold: %+v", d)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	base := resultsOf("BenchmarkDetect", []float64{100, 101, 99, 100, 102}, 4)
	head := resultsOf("BenchmarkDetect", []float64{125, 126, 124, 125, 127}, 4)
	var buf bytes.Buffer
	if err := RenderMarkdown(&buf, Compare(base, head, 0.05, 0.05)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "| benchmark |") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, "| ! |") {
		t.Fatalf("regression row missing ! mark:\n%s", out)
	}
	if !strings.Contains(out, "+25.0%") {
		t.Fatalf("delta column missing:\n%s", out)
	}
}

func TestSpeedupShortfalls(t *testing.T) {
	// The required-speedup gate over ns/op rows: a significant 2x improvement
	// passes a 1.5x requirement; a 1.2x improvement or an insignificant one
	// fails it.
	base := resultsOf("BenchmarkEngineDetect", []float64{200, 202, 198, 201, 199}, 4)
	fast := resultsOf("BenchmarkEngineDetect", []float64{100, 101, 99, 100, 102}, 4)
	deltas := Compare(base, fast, 0.05, 0.05)
	if short := SpeedupShortfalls(deltas, 1.5); len(short) != 0 {
		t.Fatalf("2x significant speedup failed a 1.5x gate: %+v", short)
	}
	if short := SpeedupShortfalls(deltas, 2.5); len(short) == 0 {
		t.Fatal("2x speedup passed a 2.5x gate")
	}
	slow := resultsOf("BenchmarkEngineDetect", []float64{170, 168, 171, 169, 170}, 4)
	deltas = Compare(base, slow, 0.05, 0.05)
	if short := SpeedupShortfalls(deltas, 1.5); len(short) == 0 {
		t.Fatal("1.2x speedup passed a 1.5x gate")
	}
	// Too few samples for significance: the gate must fail closed.
	deltas = Compare(resultsOf("BenchmarkEngineDetect", []float64{200}, 4),
		resultsOf("BenchmarkEngineDetect", []float64{100}, 4), 0.05, 0.05)
	if short := SpeedupShortfalls(deltas, 1.5); len(short) == 0 {
		t.Fatal("insignificant single-sample speedup passed the gate")
	}
}

func TestModularityHigherIsBetter(t *testing.T) {
	// A significant modularity increase must never gate as a regression.
	mk := func(q float64) []Result {
		var out []Result
		for i := 0; i < 6; i++ {
			out = append(out, Result{Name: "BenchmarkEngineDetect", Iters: 1,
				Values: map[string]float64{"modularity": q + float64(i)*1e-6}})
		}
		return out
	}
	deltas := Compare(mk(0.20), mk(0.30), 0.05, 0.05)
	for _, d := range deltas {
		if d.Unit == "modularity" && d.Regression {
			t.Fatalf("modularity gain flagged as regression: %+v", d)
		}
	}
	deltas = Compare(mk(0.30), mk(0.20), 0.05, 0.05)
	found := false
	for _, d := range deltas {
		if d.Unit == "modularity" && d.Regression {
			found = true
		}
	}
	if !found {
		t.Fatal("large modularity loss not flagged")
	}
}

package gen

import "repro/internal/graph"

// Ring returns the n-cycle (or a path for n == 2, an isolated vertex for
// n == 1).
func Ring(n int64) *graph.Graph {
	var edges []graph.Edge
	for i := int64(0); i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	if n > 2 {
		edges = append(edges, graph.Edge{U: n - 1, V: 0, W: 1})
	}
	return graph.MustBuild(1, n, edges)
}

// Star returns a star with center 0 and n-1 leaves: the paper's worst case
// for contraction progress (only two vertices merge per phase, O(|E|·|V|)
// total work).
func Star(n int64) *graph.Graph {
	var edges []graph.Edge
	for i := int64(1); i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: 1})
	}
	return graph.MustBuild(1, n, edges)
}

// Clique returns the complete graph on n vertices.
func Clique(n int64) *graph.Graph {
	var edges []graph.Edge
	for i := int64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
		}
	}
	return graph.MustBuild(1, n, edges)
}

// Grid returns the rows×cols 2-D mesh.
func Grid(rows, cols int64) *graph.Graph {
	id := func(r, c int64) int64 { return r*cols + c }
	var edges []graph.Edge
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return graph.MustBuild(1, rows*cols, edges)
}

// CliqueChain returns k cliques of size s connected in a chain by single
// bridge edges: the canonical graph with unambiguous community structure
// (each clique is a community).
func CliqueChain(k, s int64) *graph.Graph {
	var edges []graph.Edge
	for c := int64(0); c < k; c++ {
		base := c * s
		for i := int64(0); i < s; i++ {
			for j := i + 1; j < s; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
		if c+1 < k {
			edges = append(edges, graph.Edge{U: base + s - 1, V: base + s, W: 1})
		}
	}
	return graph.MustBuild(1, k*s, edges)
}

// Karate returns Zachary's karate club network (34 vertices, 78 edges), the
// standard small community-detection benchmark. The well-known fission of
// the club into two factions gives a known-good sanity target for
// modularity values (≈ 0.35–0.42 for good partitions).
func Karate() *graph.Graph {
	pairs := [][2]int64{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
		{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
		{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
		{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
		{3, 7}, {3, 12}, {3, 13},
		{4, 6}, {4, 10},
		{5, 6}, {5, 10}, {5, 16},
		{6, 16},
		{8, 30}, {8, 32}, {8, 33},
		{9, 33},
		{13, 33},
		{14, 32}, {14, 33},
		{15, 32}, {15, 33},
		{18, 32}, {18, 33},
		{19, 33},
		{20, 32}, {20, 33},
		{22, 32}, {22, 33},
		{23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
		{24, 25}, {24, 27}, {24, 31},
		{25, 31},
		{26, 29}, {26, 33},
		{27, 33},
		{28, 31}, {28, 33},
		{29, 32}, {29, 33},
		{30, 32}, {30, 33},
		{31, 32}, {31, 33},
		{32, 33},
	}
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{U: p[0], V: p[1], W: 1}
	}
	return graph.MustBuild(1, 34, edges)
}

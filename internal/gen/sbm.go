package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// SBMConfig describes a stochastic block model (planted partition): vertices
// are grouped into blocks, each intra-block pair is an edge with probability
// PIn and each inter-block pair with probability POut. With heavy-tailed
// block sizes this is our stand-in for community-rich social networks such
// as soc-LiveJournal1 (see DESIGN.md).
type SBMConfig struct {
	Blocks    []int64
	PIn, POut float64
	Seed      uint64
}

// Validate reports whether the configuration is usable.
func (c SBMConfig) Validate() error {
	if len(c.Blocks) == 0 {
		return fmt.Errorf("gen: SBM with no blocks")
	}
	for i, b := range c.Blocks {
		if b < 1 {
			return fmt.Errorf("gen: SBM block %d has size %d", i, b)
		}
	}
	if c.PIn < 0 || c.PIn > 1 || c.POut < 0 || c.POut > 1 {
		return fmt.Errorf("gen: SBM probabilities out of [0,1]: pin=%v pout=%v", c.PIn, c.POut)
	}
	return nil
}

// NumVertices returns the total vertex count of the model.
func (c SBMConfig) NumVertices() int64 {
	var n int64
	for _, b := range c.Blocks {
		n += b
	}
	return n
}

// SBM samples a planted-partition graph with p workers and returns it with
// the ground-truth block id of every vertex. Sampling uses geometric
// skipping over the linearized pair spaces, so the cost is proportional to
// the number of edges drawn, not the number of pairs.
func SBM(p int, cfg SBMConfig) (*graph.Graph, []int64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	n := cfg.NumVertices()
	// Block starts and truth labels.
	starts := make([]int64, len(cfg.Blocks)+1)
	for i, b := range cfg.Blocks {
		starts[i+1] = starts[i] + b
	}
	truth := make([]int64, n)
	par.For(p, len(cfg.Blocks), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for v := starts[b]; v < starts[b+1]; v++ {
				truth[v] = int64(b)
			}
		}
	})

	var intra, inter []graph.Edge
	par.Do(
		func() {
			intra = intraBlockEdges(p, cfg.Blocks, starts, func(int) float64 { return cfg.PIn }, cfg.Seed)
		},
		func() { inter = interBlockEdges(p, starts, n, cfg.POut, cfg.Seed+0x5b) },
	)
	edges := append(intra, inter...)
	g, err := graph.Build(p, n, edges)
	if err != nil {
		return nil, nil, err
	}
	return g, truth, nil
}

// intraBlockEdges samples each block's internal pairs with a per-block edge
// probability pinOf(b). Blocks are distributed across workers; each block
// has its own stream so the result is independent of the worker count.
func intraBlockEdges(p int, blocks, starts []int64, pinOf func(b int) float64, seed uint64) []graph.Edge {
	nb := len(blocks)
	buckets := make([][]graph.Edge, nb)
	par.ForDynamic(p, nb, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			s := blocks[b]
			pairs := s * (s - 1) / 2
			pin := pinOf(b)
			r := par.NewRNG(par.SplitSeed(seed, b))
			var out []graph.Edge
			for k := nextGeom(r, -1, pin); k < pairs; k = nextGeom(r, k, pin) {
				i, j := pairFromIndex(k)
				out = append(out, graph.Edge{U: starts[b] + i, V: starts[b] + j, W: 1})
			}
			buckets[b] = out
		}
	})
	var total int
	for _, o := range buckets {
		total += len(o)
	}
	edges := make([]graph.Edge, 0, total)
	for _, o := range buckets {
		edges = append(edges, o...)
	}
	return edges
}

// interBlockEdges samples the cross-block pair space: all pairs (i, j) with
// i < j in different blocks, each present with probability pout. Rather
// than enumerating that irregular space, we skip through the full i<j pair
// space and reject intra-block hits (they are a vanishing fraction for
// many-block configurations).
func interBlockEdges(p int, starts []int64, n int64, pout float64, seed uint64) []graph.Edge {
	if pout <= 0 || n < 2 {
		return nil
	}
	pairs := n * (n - 1) / 2
	// Partition the pair space into fixed spans, one stream per span.
	const span = int64(1) << 22
	nspans := int((pairs + span - 1) / span)
	buckets := make([][]graph.Edge, nspans)
	blockOf := func(v int64) int64 {
		// starts is sorted; find the block containing v.
		idx := sort.Search(len(starts), func(i int) bool { return starts[i] > v }) - 1
		return int64(idx)
	}
	par.ForDynamic(p, nspans, 1, func(lo, hi int) {
		for sp := lo; sp < hi; sp++ {
			base := int64(sp) * span
			limit := base + span
			if limit > pairs {
				limit = pairs
			}
			r := par.NewRNG(par.SplitSeed(seed, sp))
			var out []graph.Edge
			for k := nextGeom(r, base-1, pout); k < limit; k = nextGeom(r, k, pout) {
				i, j := pairFromIndex(k)
				if blockOf(i) != blockOf(j) {
					out = append(out, graph.Edge{U: i, V: j, W: 1})
				}
			}
			buckets[sp] = out
		}
	})
	var total int
	for _, o := range buckets {
		total += len(o)
	}
	edges := make([]graph.Edge, 0, total)
	for _, o := range buckets {
		edges = append(edges, o...)
	}
	return edges
}

// nextGeom returns the index of the next success strictly after k in a
// Bernoulli(prob) process, using inverse-transform geometric sampling.
func nextGeom(r *par.RNG, k int64, prob float64) int64 {
	if prob >= 1 {
		return k + 1
	}
	if prob <= 0 {
		return math.MaxInt64
	}
	u := r.Float64()
	// Avoid log(0); u in [0,1) so 1-u in (0,1].
	skip := int64(math.Floor(math.Log(1-u) / math.Log(1-prob)))
	if skip < 0 {
		skip = 0
	}
	next := k + 1 + skip
	if next < k+1 { // overflow
		return math.MaxInt64
	}
	return next
}

// pairFromIndex maps a linear index k in [0, n(n-1)/2) to the k-th pair
// (i, j) with i < j, ordering pairs by j then i: (0,1), (0,2), (1,2), ...
func pairFromIndex(k int64) (i, j int64) {
	// j is the largest integer with j(j-1)/2 <= k.
	j = int64((1 + math.Sqrt(1+8*float64(k))) / 2)
	for j*(j-1)/2 > k {
		j--
	}
	for (j+1)*j/2 <= k {
		j++
	}
	i = k - j*(j-1)/2
	return i, j
}

// LJSimConfig parameterizes the soc-LiveJournal1 stand-in: an SBM with
// Zipf-distributed community sizes.
type LJSimConfig struct {
	// NumVertices is approximate; block sizes are drawn until the total
	// reaches it.
	NumVertices int64
	// MeanCommunity is the mean community size target; sizes follow a
	// truncated Zipf law with the given exponent.
	MeanCommunity int64
	ZipfExponent  float64
	// IntraDegree and InterDegree are the expected per-vertex degrees from
	// intra- and inter-community edges.
	IntraDegree, InterDegree float64
	Seed                     uint64
}

// DefaultLJSim sizes the model after soc-LiveJournal1's shape (average
// degree ≈ 28, strong communities) at a configurable vertex count.
func DefaultLJSim(n int64, seed uint64) LJSimConfig {
	return LJSimConfig{
		NumVertices:   n,
		MeanCommunity: 32,
		ZipfExponent:  2.1,
		IntraDegree:   18,
		InterDegree:   4,
		Seed:          seed,
	}
}

// LJSim generates the community-rich social-network stand-in and its
// ground-truth partition.
func LJSim(p int, cfg LJSimConfig) (*graph.Graph, []int64, error) {
	if cfg.NumVertices < 2 {
		return nil, nil, fmt.Errorf("gen: LJSim needs at least 2 vertices, got %d", cfg.NumVertices)
	}
	if cfg.MeanCommunity < 2 {
		return nil, nil, fmt.Errorf("gen: LJSim mean community %d < 2", cfg.MeanCommunity)
	}
	r := par.NewRNG(cfg.Seed)
	var blocks []int64
	var total int64
	maxBlock := cfg.MeanCommunity * 64
	for total < cfg.NumVertices {
		s := zipfSize(r, cfg.ZipfExponent, 2, maxBlock, cfg.MeanCommunity)
		if total+s > cfg.NumVertices {
			s = cfg.NumVertices - total
			if s < 1 {
				break
			}
		}
		blocks = append(blocks, s)
		total += s
	}
	n := total
	starts := make([]int64, len(blocks)+1)
	for i, b := range blocks {
		starts[i+1] = starts[i] + b
	}
	truth := make([]int64, n)
	par.For(p, len(blocks), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for v := starts[b]; v < starts[b+1]; v++ {
				truth[v] = int64(b)
			}
		}
	})
	// Expected intra degree for a vertex in block b of size s is (s-1)·pin;
	// calibrate per block so large communities are denser in absolute edges
	// but keep bounded per-vertex degree, as real social communities do.
	pinOf := func(b int) float64 {
		s := float64(blocks[b])
		pin := cfg.IntraDegree / math.Max(s-1, 1)
		if pin > 1 {
			pin = 1
		}
		return pin
	}
	pout := cfg.InterDegree / float64(n-1)
	if pout > 1 {
		pout = 1
	}
	var intra, inter []graph.Edge
	par.Do(
		func() { intra = intraBlockEdges(p, blocks, starts, pinOf, cfg.Seed+1) },
		func() { inter = interBlockEdges(p, starts, n, pout, cfg.Seed+2) },
	)
	g, err := graph.Build(p, n, append(intra, inter...))
	if err != nil {
		return nil, nil, err
	}
	return g, truth, nil
}

// zipfSize draws a block size from a truncated power law with the given
// exponent, then rescales so the mean lands near target.
func zipfSize(r *par.RNG, exponent float64, min, max, target int64) int64 {
	// Inverse-transform sampling of P(s) ∝ s^-exponent over [min, max].
	u := r.Float64()
	a := 1 - exponent
	lo := math.Pow(float64(min), a)
	hi := math.Pow(float64(max), a)
	s := math.Pow(lo+u*(hi-lo), 1/a)
	// The raw law has mean near min for steep exponents; shift toward the
	// requested mean while keeping the tail.
	scaled := int64(s * float64(target) / (2.5 * float64(min)))
	if scaled < min {
		scaled = min
	}
	if scaled > max {
		scaled = max
	}
	return scaled
}

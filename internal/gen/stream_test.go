package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestStreamRMATMatchesBatchSequence(t *testing.T) {
	// The streaming source must replay RMATEdges' exact sequence — same
	// edges, same order — across parallel generation widths, and across its
	// own repeated invocations (StreamMapped calls it twice).
	cfg := DefaultRMAT(7, 31)
	for _, p := range []int{1, 4} {
		batch, err := RMATEdges(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n, src, err := StreamRMAT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(1)<<uint(cfg.Scale) {
			t.Fatalf("n = %d, want %d", n, int64(1)<<uint(cfg.Scale))
		}
		for pass := 0; pass < 2; pass++ {
			var streamed []graph.Edge
			if err := src(func(u, v, w int64) error {
				streamed = append(streamed, graph.Edge{U: u, V: v, W: w})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(batch) {
				t.Fatalf("p=%d pass %d: %d streamed edges, batch has %d", p, pass, len(streamed), len(batch))
			}
			for i := range batch {
				if streamed[i] != batch[i] {
					t.Fatalf("p=%d pass %d: edge %d = %+v, batch has %+v", p, pass, i, streamed[i], batch[i])
				}
			}
		}
	}
}

func TestStreamRMATValidates(t *testing.T) {
	cfg := DefaultRMAT(7, 31)
	cfg.EdgeFactor = -1
	if _, _, err := StreamRMAT(cfg); err == nil {
		t.Fatal("accepted invalid config")
	}
}

package gen

// The streaming R-MAT source backs `genrmat -stream`: instead of
// materializing the full edge slice (24 bytes per generated edge — beyond
// RAM at the scales the mapped format exists for), it replays the exact
// deterministic sequence RMATEdges produces, one edge at a time, so
// graphio.StreamMapped can make its two bounded-memory passes. Determinism
// across invocations is inherited from the per-block seeding discipline:
// block i's edges come from a SplitMix64 stream seeded by (Seed, i), so the
// serial replay and the parallel generator agree edge for edge.

import "repro/internal/par"

// StreamRMAT validates cfg and returns the vertex count together with a
// deterministic edge source yielding exactly the RMATEdges(·, cfg)
// sequence. The source may be invoked any number of times (StreamMapped
// calls it twice) and always yields the identical edges.
func StreamRMAT(cfg RMATConfig) (n int64, src func(yield func(u, v, w int64) error) error, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, nil, err
	}
	n = int64(1) << uint(cfg.Scale)
	m := int64(cfg.EdgeFactor) * n
	src = func(yield func(u, v, w int64) error) error {
		const block = 4096 // must match RMATEdges' block size
		r := par.NewRNG(0)
		for i := int64(0); i < m; i++ {
			if i%block == 0 {
				r.Seed(par.SplitSeed(cfg.Seed, int(i/block)))
			}
			e := sampleRMATEdge(r, cfg)
			if err := yield(e.U, e.V, e.W); err != nil {
				return err
			}
		}
		return nil
	}
	return n, src, nil
}

package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
)

// DeltaConfig configures a random edge-update stream for incremental
// benchmarks. The stream is deterministic in Seed, so a written file (see
// graphio.WriteDeltas) reproduces exactly.
type DeltaConfig struct {
	// Batches is the number of delta batches to generate.
	Batches int
	// BatchSize is the number of updates per batch.
	BatchSize int
	// DeleteFrac is the fraction of updates that delete an existing edge;
	// the rest insert. Deletes sample the live edge set as it evolves, so
	// every delete hits a real edge (the interesting case for the overlay).
	DeleteFrac float64
	// MaxWeight bounds insert weights, drawn uniformly from [1, MaxWeight];
	// 0 means 1.
	MaxWeight int64
	// Hubs, when positive, confines the churn to a fixed hot set of that
	// many vertices sampled from the graph: inserts connect two hot
	// vertices, deletes remove live edges between hot vertices. This models
	// the bursty, localized update streams social graphs see — the regime
	// where incremental re-detection wins — while 0 spreads the churn
	// uniformly over the whole graph.
	Hubs int
	// Seed drives the stream's RNG.
	Seed uint64
}

// Deltas generates cfg.Batches coherent update batches against g: inserts
// connect uniformly random endpoints (occasionally a self-loop), deletes
// remove edges that are live at that point in the stream — the original
// graph's edges and earlier inserts both qualify, so replaying the stream
// against an overlay of g exercises base-edge tombstones, patch-edge
// removal, and resurrection. Versions are the 1-based batch indexes.
func Deltas(g *graph.Graph, cfg DeltaConfig) ([]*graph.Delta, error) {
	n := g.NumVertices()
	if n < 1 {
		return nil, fmt.Errorf("gen: delta stream needs at least 1 vertex")
	}
	if cfg.Batches < 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("gen: bad delta stream shape: %d batches of %d", cfg.Batches, cfg.BatchSize)
	}
	if cfg.DeleteFrac < 0 || cfg.DeleteFrac > 1 {
		return nil, fmt.Errorf("gen: DeleteFrac %v outside [0,1]", cfg.DeleteFrac)
	}
	if cfg.Hubs < 0 || int64(cfg.Hubs) > n {
		return nil, fmt.Errorf("gen: hot set of %d vertices out of %d", cfg.Hubs, n)
	}
	maxW := cfg.MaxWeight
	if maxW <= 0 {
		maxW = 1
	}
	r := par.NewRNG(cfg.Seed)

	// The live edge set, maintained as updates apply: a slice for uniform
	// sampling plus an index map for swap-removal and membership checks.
	type ekey [2]int64
	key := func(u, v int64) ekey {
		if u > v {
			u, v = v, u
		}
		return ekey{u, v}
	}
	live := g.Edges()
	idx := make(map[ekey]int, len(live))
	for i, e := range live {
		idx[key(e.U, e.V)] = i
	}
	remove := func(i int) {
		e := live[i]
		delete(idx, key(e.U, e.V))
		last := len(live) - 1
		if i != last {
			live[i] = live[last]
			idx[key(live[i].U, live[i].V)] = i
		}
		live = live[:last]
	}

	// The fixed hot set, when locality is on: a uniform sample without
	// replacement. Endpoints draw from it instead of the whole graph.
	var hot []int64
	if cfg.Hubs > 0 {
		seen := make(map[int64]bool, cfg.Hubs)
		for len(hot) < cfg.Hubs {
			v := r.Int63n(n)
			if !seen[v] {
				seen[v] = true
				hot = append(hot, v)
			}
		}
	}
	pick := func() int64 {
		if hot != nil {
			return hot[r.Intn(len(hot))]
		}
		return r.Int63n(n)
	}

	batches := make([]*graph.Delta, 0, cfg.Batches)
	for b := 0; b < cfg.Batches; b++ {
		d := &graph.Delta{Version: uint64(b + 1)}
		for i := 0; i < cfg.BatchSize; i++ {
			if r.Float64() < cfg.DeleteFrac {
				if hot == nil && len(live) > 0 {
					j := r.Intn(len(live))
					e := live[j]
					d.Delete(e.U, e.V)
					remove(j)
					continue
				}
				if hot != nil {
					// Probe for a live hot-pair edge; inserts below keep the
					// pool stocked, so a handful of probes nearly always hits.
					deleted := false
					for probe := 0; probe < 8; probe++ {
						u, v := pick(), pick()
						if u == v {
							continue
						}
						if j, ok := idx[key(u, v)]; ok {
							d.Delete(u, v)
							remove(j)
							deleted = true
							break
						}
					}
					if deleted {
						continue
					}
				}
			}
			u, v := pick(), pick()
			w := r.Int63n(maxW) + 1
			d.Insert(u, v, w)
			if u != v {
				if _, ok := idx[key(u, v)]; !ok {
					idx[key(u, v)] = len(live)
					live = append(live, graph.Edge{U: u, V: v, W: w})
				}
			}
		}
		batches = append(batches, d)
	}
	return batches, nil
}

// Package gen produces the evaluation workloads of §V-B: R-MAT graphs with
// the paper's parameters, synthetic stand-ins for the soc-LiveJournal1 and
// uk-2007-05 datasets (see DESIGN.md for the substitution rationale), and
// small deterministic graphs for tests and examples.
//
// All generators are deterministic for a fixed seed regardless of the
// worker count: each worker derives its own SplitMix64 stream from the seed
// and its chunk index.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
)

// RMATConfig describes a recursive-matrix (R-MAT) graph: 2^Scale vertices
// and EdgeFactor·2^Scale generated edges (before duplicate accumulation),
// sampled from a perturbed Kronecker product with quadrant probabilities
// A, B, C, D. The paper generates rmat-24-16 with a=0.55, b=c=0.1, d=0.25
// (§V-B); Default reproduces those parameters.
type RMATConfig struct {
	Scale      int
	EdgeFactor int
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities by up to ±Noise·value at
	// every recursion level, the "perturbed Kronecker product" of [32], [33].
	Noise float64
	Seed  uint64
}

// DefaultRMAT returns the paper's R-MAT parameters at the given scale.
func DefaultRMAT(scale int, seed uint64) RMATConfig {
	return RMATConfig{
		Scale:      scale,
		EdgeFactor: 16,
		A:          0.55,
		B:          0.10,
		C:          0.10,
		D:          0.25,
		Noise:      0.1,
		Seed:       seed,
	}
}

// Validate reports whether the configuration is usable.
func (c RMATConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 40 {
		return fmt.Errorf("gen: R-MAT scale %d outside [1,40]", c.Scale)
	}
	if c.EdgeFactor < 1 {
		return fmt.Errorf("gen: R-MAT edge factor %d < 1", c.EdgeFactor)
	}
	sum := c.A + c.B + c.C + c.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gen: R-MAT probabilities sum to %v, want 1", sum)
	}
	if c.A < 0 || c.B < 0 || c.C < 0 || c.D < 0 {
		return fmt.Errorf("gen: negative R-MAT probability")
	}
	if c.Noise < 0 || c.Noise >= 1 {
		return fmt.Errorf("gen: R-MAT noise %v outside [0,1)", c.Noise)
	}
	return nil
}

// RMATEdges samples the raw edge sequence (self-loops and repeats included,
// exactly as the generator in the paper emits them) using p workers.
func RMATEdges(p int, cfg RMATConfig) ([]graph.Edge, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int64(1) << uint(cfg.Scale)
	m := int64(cfg.EdgeFactor) * n
	edges := make([]graph.Edge, m)
	// Edge i always comes from the same position of the same per-block
	// stream, so the sample is identical for every worker count: blocks are
	// seeded by block index, and a chunk starting mid-block burns the
	// in-block prefix to rejoin the stream.
	const block = 4096
	par.ForWorker(p, int(m), func(_, lo, hi int) {
		r := par.NewRNG(0)
		for i := lo; i < hi; i++ {
			if i == lo || i%block == 0 {
				r.Seed(par.SplitSeed(cfg.Seed, i/block))
				for skip := i % block; skip > 0; skip-- {
					sampleRMATEdge(r, cfg)
				}
			}
			edges[i] = sampleRMATEdge(r, cfg)
		}
	})
	return edges, nil
}

// sampleRMATEdge descends the recursive quadrant structure once.
func sampleRMATEdge(r *par.RNG, cfg RMATConfig) graph.Edge {
	var i, j int64
	a, b, c, d := cfg.A, cfg.B, cfg.C, cfg.D
	for level := 0; level < cfg.Scale; level++ {
		la, lb, lc, ld := a, b, c, d
		if cfg.Noise > 0 {
			// Symmetric multiplicative noise, renormalized.
			la *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			lb *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			lc *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			ld *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			s := la + lb + lc + ld
			la /= s
			lb /= s
			lc /= s
			ld /= s
		}
		u := r.Float64()
		i <<= 1
		j <<= 1
		switch {
		case u < la:
			// upper-left: no bits set
		case u < la+lb:
			j |= 1
		case u < la+lb+lc:
			i |= 1
		default:
			i |= 1
			j |= 1
		}
	}
	return graph.Edge{U: i, V: j, W: 1}
}

// RMATGraph samples an R-MAT edge sequence and accumulates it into a
// bucketed graph (duplicates fold into weights, self-loops into Self).
func RMATGraph(p int, cfg RMATConfig) (*graph.Graph, error) {
	edges, err := RMATEdges(p, cfg)
	if err != nil {
		return nil, err
	}
	return graph.Build(p, int64(1)<<uint(cfg.Scale), edges)
}

// ConnectedRMAT runs the paper's full pipeline: sample, accumulate
// duplicate edges into weights, then extract the largest connected
// component (§V-B). The returned mapping gives each new vertex's id in the
// raw R-MAT vertex space.
func ConnectedRMAT(p int, cfg RMATConfig) (*graph.Graph, []int64, error) {
	g, err := RMATGraph(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	sub, orig := graph.LargestComponent(p, g)
	return sub, orig, nil
}

package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestDeltasValidates(t *testing.T) {
	g := CliqueChain(4, 4)
	if _, err := Deltas(g, DeltaConfig{Batches: 1, BatchSize: 0}); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := Deltas(g, DeltaConfig{Batches: -1, BatchSize: 4}); err == nil {
		t.Fatal("negative batch count accepted")
	}
	if _, err := Deltas(g, DeltaConfig{Batches: 1, BatchSize: 4, DeleteFrac: 1.5}); err == nil {
		t.Fatal("DeleteFrac above 1 accepted")
	}
}

func TestDeltasDeterministicAndWellFormed(t *testing.T) {
	g := CliqueChain(8, 6)
	cfg := DeltaConfig{Batches: 6, BatchSize: 15, DeleteFrac: 0.5, MaxWeight: 4, Seed: 99}
	a, err := Deltas(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deltas(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Batches {
		t.Fatalf("%d batches, want %d", len(a), cfg.Batches)
	}
	for i := range a {
		if a[i].Version != uint64(i+1) {
			t.Fatalf("batch %d version %d, want %d", i, a[i].Version, i+1)
		}
		if a[i].Len() != cfg.BatchSize {
			t.Fatalf("batch %d has %d updates, want %d", i, a[i].Len(), cfg.BatchSize)
		}
		if err := a[i].Validate(g.NumVertices()); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(a[i].Updates) != len(b[i].Updates) {
			t.Fatalf("batch %d not deterministic in length", i)
		}
		for j := range a[i].Updates {
			if a[i].Updates[j] != b[i].Updates[j] {
				t.Fatalf("batch %d update %d differs across runs", i, j)
			}
		}
	}
}

// TestDeltasDeletesHitLiveEdges replays the stream against a reference edge
// multiset and checks every delete names an edge that is live at that point
// — the generator's coherence contract.
func TestDeltasDeletesHitLiveEdges(t *testing.T) {
	g := CliqueChain(6, 5)
	batches, err := Deltas(g, DeltaConfig{Batches: 8, BatchSize: 12, DeleteFrac: 0.6, MaxWeight: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	key := func(u, v int64) [2]int64 {
		if u > v {
			u, v = v, u
		}
		return [2]int64{u, v}
	}
	live := map[[2]int64]bool{}
	for _, e := range g.Edges() {
		live[key(e.U, e.V)] = true
	}
	deletes := 0
	for _, d := range batches {
		for _, up := range d.Updates {
			switch up.Op {
			case graph.OpInsert:
				if up.U != up.V {
					live[key(up.U, up.V)] = true
				}
			case graph.OpDelete:
				if !live[key(up.U, up.V)] {
					t.Fatalf("delete of edge {%d,%d} that is not live", up.U, up.V)
				}
				delete(live, key(up.U, up.V))
				deletes++
			}
		}
	}
	if deletes == 0 {
		t.Fatal("stream with DeleteFrac 0.6 produced no deletes")
	}
}

package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
)

func TestRMATConfigValidate(t *testing.T) {
	good := DefaultRMAT(10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RMATConfig{
		{Scale: 0, EdgeFactor: 16, A: 0.55, B: 0.1, C: 0.1, D: 0.25},
		{Scale: 10, EdgeFactor: 0, A: 0.55, B: 0.1, C: 0.1, D: 0.25},
		{Scale: 10, EdgeFactor: 16, A: 0.9, B: 0.1, C: 0.1, D: 0.25},
		{Scale: 10, EdgeFactor: 16, A: -0.1, B: 0.5, C: 0.35, D: 0.25},
		{Scale: 10, EdgeFactor: 16, A: 0.55, B: 0.1, C: 0.1, D: 0.25, Noise: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRMATEdgesShape(t *testing.T) {
	cfg := DefaultRMAT(10, 42)
	edges, err := RMATEdges(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 16*1024 {
		t.Fatalf("edge count %d, want %d", len(edges), 16*1024)
	}
	n := int64(1024)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.W != 1 {
			t.Fatalf("bad edge %v", e)
		}
	}
}

func TestRMATDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultRMAT(12, 7)
	want, err := RMATEdges(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		got, err := RMATEdges(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: edge %d differs: %v != %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	// a=0.55 concentrates edges on low vertex ids; the top quarter of the id
	// space must carry clearly fewer endpoints than the bottom quarter.
	cfg := DefaultRMAT(12, 3)
	edges, err := RMATEdges(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1) << 12
	var low, high int
	for _, e := range edges {
		for _, v := range []int64{e.U, e.V} {
			switch {
			case v < n/4:
				low++
			case v >= 3*n/4:
				high++
			}
		}
	}
	if low < 2*high {
		t.Fatalf("R-MAT not skewed: low-quarter endpoints %d vs high-quarter %d", low, high)
	}
}

func TestConnectedRMAT(t *testing.T) {
	sub, orig, err := ConnectedRMAT(4, DefaultRMAT(10, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() < 2 || int64(len(orig)) != sub.NumVertices() {
		t.Fatalf("|V|=%d len(orig)=%d", sub.NumVertices(), len(orig))
	}
	if _, k := graph.Components(2, sub); k != 1 {
		t.Fatalf("largest component has %d components", k)
	}
}

func TestSBMValidate(t *testing.T) {
	bad := []SBMConfig{
		{},
		{Blocks: []int64{0, 3}, PIn: 0.5},
		{Blocks: []int64{3}, PIn: 1.5},
		{Blocks: []int64{3}, PIn: 0.5, POut: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSBMDenseBlocks(t *testing.T) {
	// PIn = 1, POut = 0 gives disjoint cliques.
	g, truth, err := SBM(3, SBMConfig{Blocks: []int64{4, 3, 5}, PIn: 1, POut: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantEdges := int64(4*3/2 + 3*2/2 + 5*4/2)
	if g.NumEdges() != wantEdges {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), wantEdges)
	}
	if truth[0] != 0 || truth[4] != 1 || truth[7] != 2 {
		t.Fatalf("truth labels wrong: %v", truth)
	}
	for _, e := range g.Edges() {
		if truth[e.U] != truth[e.V] {
			t.Fatalf("cross-block edge %v with POut=0", e)
		}
	}
}

func TestSBMInterEdgesOnly(t *testing.T) {
	// PIn = 0 with unit blocks: plain G(n, p).
	blocks := make([]int64, 200)
	for i := range blocks {
		blocks[i] = 1
	}
	g, _, err := SBM(2, SBMConfig{Blocks: blocks, PIn: 0, POut: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected edges = 0.05 · C(200, 2) = 995; allow ±40%.
	m := float64(g.NumEdges())
	if m < 600 || m > 1400 {
		t.Fatalf("G(200, 0.05) drew %v edges, want ≈995", m)
	}
}

func TestSBMEdgeRate(t *testing.T) {
	// Two blocks of 100; check intra rate roughly matches PIn.
	g, truth, err := SBM(4, SBMConfig{Blocks: []int64{100, 100}, PIn: 0.2, POut: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter int
	for _, e := range g.Edges() {
		if truth[e.U] == truth[e.V] {
			intra++
		} else {
			inter++
		}
	}
	wantIntra := 0.2 * 2 * float64(100*99/2)
	wantInter := 0.01 * float64(100*100)
	if math.Abs(float64(intra)-wantIntra) > 0.3*wantIntra {
		t.Fatalf("intra edges %d, want ≈%v", intra, wantIntra)
	}
	if math.Abs(float64(inter)-wantInter) > 0.5*wantInter {
		t.Fatalf("inter edges %d, want ≈%v", inter, wantInter)
	}
}

func TestSBMDeterministicAcrossWorkers(t *testing.T) {
	cfg := SBMConfig{Blocks: []int64{50, 30, 20}, PIn: 0.3, POut: 0.02, Seed: 11}
	want, _, err := SBM(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 5} {
		got, _, err := SBM(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		we, ge := want.Edges(), got.Edges()
		if len(we) != len(ge) {
			t.Fatalf("p=%d: %d edges != %d", p, len(ge), len(we))
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("p=%d: edge %d differs", p, i)
			}
		}
	}
}

func TestPairFromIndex(t *testing.T) {
	k := int64(0)
	for j := int64(1); j < 30; j++ {
		for i := int64(0); i < j; i++ {
			gi, gj := pairFromIndex(k)
			if gi != i || gj != j {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", k, gi, gj, i, j)
			}
			k++
		}
	}
}

func TestPairFromIndexProperty(t *testing.T) {
	f := func(raw uint32) bool {
		k := int64(raw)
		i, j := pairFromIndex(k)
		return i >= 0 && i < j && j*(j-1)/2+i == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextGeomBounds(t *testing.T) {
	r := par.NewRNG(1)
	if nextGeom(r, 5, 0) != math.MaxInt64 {
		t.Fatal("prob 0 should never fire")
	}
	if nextGeom(r, 5, 1) != 6 {
		t.Fatal("prob 1 should fire immediately")
	}
	for i := 0; i < 1000; i++ {
		if k := nextGeom(r, 10, 0.3); k <= 10 {
			t.Fatalf("nextGeom returned %d <= k", k)
		}
	}
	// Mean skip for p=0.1 is ≈10.
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(nextGeom(r, 0, 0.1) - 0)
	}
	mean := sum / trials
	if mean < 8 || mean > 12 {
		t.Fatalf("geometric mean %v, want ≈10", mean)
	}
}

func TestLJSim(t *testing.T) {
	g, truth, err := LJSim(4, DefaultLJSim(5000, 17))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5000 || int64(len(truth)) != 5000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	avgDeg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if avgDeg < 10 || avgDeg > 60 {
		t.Fatalf("average degree %v outside plausible band", avgDeg)
	}
	// Most edges should be intra-community for a community-rich graph.
	var intra, total int
	for _, e := range g.Edges() {
		total++
		if truth[e.U] == truth[e.V] {
			intra++
		}
	}
	if float64(intra)/float64(total) < 0.4 {
		t.Fatalf("intra fraction %v too low for a community-rich model", float64(intra)/float64(total))
	}
}

func TestLJSimRejectsBadConfig(t *testing.T) {
	if _, _, err := LJSim(1, LJSimConfig{NumVertices: 1}); err == nil {
		t.Fatal("accepted 1 vertex")
	}
	if _, _, err := LJSim(1, LJSimConfig{NumVertices: 100, MeanCommunity: 1}); err == nil {
		t.Fatal("accepted mean community 1")
	}
}

func TestWebCrawl(t *testing.T) {
	g, truth, err := WebCrawl(4, DefaultWebCrawl(4000, 23))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4000 || int64(len(truth)) != 4000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// Hub bias: low-id pages should carry a disproportionate share of
	// endpoints relative to a uniform graph.
	d := g.WeightedDegrees(2)
	var lowSum, highSum int64
	for i, x := range d {
		if int64(i) < 400 {
			lowSum += x
		}
		if int64(i) >= 3600 {
			highSum += x
		}
	}
	if lowSum <= highSum {
		t.Fatalf("no hub skew: low %d vs high %d", lowSum, highSum)
	}
}

func TestWebCrawlRejectsBadConfig(t *testing.T) {
	for _, cfg := range []WebCrawlConfig{
		{NumVertices: 1, MeanHost: 10, HubBias: 2},
		{NumVertices: 100, MeanHost: 1, HubBias: 2},
		{NumVertices: 100, MeanHost: 10, HubBias: 0.5},
	} {
		if _, _, err := WebCrawl(1, cfg); err == nil {
			t.Fatalf("accepted %+v", cfg)
		}
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	if g.NumEdges() != 10 {
		t.Fatalf("|E| = %d, want 10", g.NumEdges())
	}
	d := g.WeightedDegrees(1)
	for i, x := range d {
		if x != 2 {
			t.Fatalf("d[%d] = %d, want 2", i, x)
		}
	}
	if Ring(2).NumEdges() != 1 {
		t.Fatal("2-ring should be a single edge")
	}
	if Ring(1).NumEdges() != 0 {
		t.Fatal("1-ring should have no edges")
	}
}

func TestStar(t *testing.T) {
	g := Star(8)
	if g.NumEdges() != 7 {
		t.Fatalf("|E| = %d, want 7", g.NumEdges())
	}
	d := g.WeightedDegrees(1)
	if d[0] != 7 {
		t.Fatalf("center degree %d", d[0])
	}
}

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.NumEdges() != 15 {
		t.Fatalf("|E| = %d, want 15", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	// 3 rows × 3 horizontal + 2 rows... total = rows*(cols-1) + (rows-1)*cols
	want := int64(3*3 + 2*4)
	if g.NumEdges() != want {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), want)
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4)
	want := int64(3*(4*3/2) + 2)
	if g.NumEdges() != want {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), want)
	}
	if _, k := graph.Components(1, g); k != 1 {
		t.Fatalf("chain not connected: %d components", k)
	}
}

func TestKarate(t *testing.T) {
	g := Karate()
	if g.NumVertices() != 34 || g.NumEdges() != 78 {
		t.Fatalf("karate |V|=%d |E|=%d, want 34/78", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, k := graph.Components(1, g); k != 1 {
		t.Fatalf("karate not connected: %d components", k)
	}
}

func TestRMATHeavyTailDegrees(t *testing.T) {
	// Scale-free generators must produce a heavy degree tail: the maximum
	// degree should exceed the mean by an order of magnitude.
	g, err := RMATGraph(2, DefaultRMAT(13, 21))
	if err != nil {
		t.Fatal(err)
	}
	c := graph.ToCSR(2, g)
	var max, sum int64
	var nonZero int64
	for v := int64(0); v < c.NumVertices(); v++ {
		d := c.Degree(v)
		if d > max {
			max = d
		}
		if d > 0 {
			nonZero++
		}
		sum += d
	}
	mean := float64(sum) / float64(nonZero)
	if float64(max) < 10*mean {
		t.Fatalf("R-MAT degree tail too light: max %d vs mean %.1f", max, mean)
	}
}

func TestRMATDuplicateAccumulation(t *testing.T) {
	// R-MAT's skew guarantees repeated edges at moderate scale; the builder
	// must fold them into weights > 1 (the paper: "we accumulate multiple
	// edges within edge weights").
	g, err := RMATGraph(2, DefaultRMAT(12, 2))
	if err != nil {
		t.Fatal(err)
	}
	var heavy int
	g.ForEachEdge(func(_ int64, _, _, w int64) {
		if w > 1 {
			heavy++
		}
	})
	if heavy == 0 {
		t.Fatal("no accumulated duplicate edges in an R-MAT sample")
	}
	// Self-loops must have been folded rather than dropped.
	var selfTotal int64
	for v := int64(0); v < g.NumVertices(); v++ {
		selfTotal += g.Self[v]
	}
	if selfTotal == 0 {
		t.Fatal("R-MAT sample lost its self-loops")
	}
}

func TestWebCrawlDegreeSkewVsSBM(t *testing.T) {
	// The crawl generator's hub bias must produce a heavier tail than a
	// plain SBM of the same size.
	web, _, err := WebCrawl(2, DefaultWebCrawl(5000, 9))
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := func(g *graph.Graph) int64 {
		c := graph.ToCSR(2, g)
		var max int64
		for v := int64(0); v < c.NumVertices(); v++ {
			if d := c.Degree(v); d > max {
				max = d
			}
		}
		return max
	}
	blocks := make([]int64, 100)
	for i := range blocks {
		blocks[i] = 50
	}
	sbm, _, err := SBM(2, SBMConfig{Blocks: blocks, PIn: 0.3, POut: 0.002, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if maxDeg(web) <= 2*maxDeg(sbm) {
		t.Fatalf("crawl max degree %d not clearly heavier than SBM %d", maxDeg(web), maxDeg(sbm))
	}
}

package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
)

// WebCrawlConfig parameterizes the uk-2007-05 stand-in: a host-structured
// web graph. Vertices are pages grouped into hosts with power-law sizes;
// pages link densely within their host and sparsely to other hosts, with
// cross-host targets skewed toward low-numbered "hub" pages so the degree
// distribution grows a heavy tail, as in real crawls.
type WebCrawlConfig struct {
	NumVertices int64
	// MeanHost is the mean host (block) size target.
	MeanHost int64
	// IntraDegree is the expected within-host degree of a page.
	IntraDegree float64
	// CrossLinks is the expected number of cross-host links per page.
	CrossLinks float64
	// HubBias skews cross-link targets: target rank ∝ U^HubBias, so larger
	// values concentrate links on fewer hubs. 1 means uniform.
	HubBias float64
	Seed    uint64
}

// DefaultWebCrawl configures a crawl-like graph with uk-2007-05's shape
// (average degree ≈ 62 scaled down to keep laptop runs feasible: we default
// to ≈ 24) at the requested vertex count.
func DefaultWebCrawl(n int64, seed uint64) WebCrawlConfig {
	return WebCrawlConfig{
		NumVertices: n,
		MeanHost:    48,
		IntraDegree: 16,
		CrossLinks:  4,
		HubBias:     3,
		Seed:        seed,
	}
}

// WebCrawl generates the crawl-like graph and the ground-truth host id of
// every page.
func WebCrawl(p int, cfg WebCrawlConfig) (*graph.Graph, []int64, error) {
	if cfg.NumVertices < 2 {
		return nil, nil, fmt.Errorf("gen: WebCrawl needs at least 2 vertices, got %d", cfg.NumVertices)
	}
	if cfg.MeanHost < 2 {
		return nil, nil, fmt.Errorf("gen: WebCrawl mean host %d < 2", cfg.MeanHost)
	}
	if cfg.HubBias < 1 {
		return nil, nil, fmt.Errorf("gen: WebCrawl hub bias %v < 1", cfg.HubBias)
	}
	r := par.NewRNG(cfg.Seed)
	var blocks []int64
	var total int64
	for total < cfg.NumVertices {
		s := zipfSize(r, 2.0, 2, cfg.MeanHost*128, cfg.MeanHost)
		if total+s > cfg.NumVertices {
			s = cfg.NumVertices - total
			if s < 1 {
				break
			}
		}
		blocks = append(blocks, s)
		total += s
	}
	n := total
	starts := make([]int64, len(blocks)+1)
	for i, b := range blocks {
		starts[i+1] = starts[i] + b
	}
	truth := make([]int64, n)
	par.For(p, len(blocks), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for v := starts[b]; v < starts[b+1]; v++ {
				truth[v] = int64(b)
			}
		}
	})

	// Per-host density calibrated to a bounded per-page intra degree.
	pinOf := func(b int) float64 {
		s := float64(blocks[b])
		pin := cfg.IntraDegree / math.Max(s-1, 1)
		if pin > 1 {
			pin = 1
		}
		return pin
	}
	intra := intraBlockEdges(p, blocks, starts, pinOf, cfg.Seed+2)

	// Cross-host links: every page draws Poisson-ish (geometric-rounded)
	// many targets with rank-biased sampling. Chunked per 4096 pages for
	// worker-count-independent output.
	const block = 4096
	nchunks := int((n + block - 1) / block)
	buckets := make([][]graph.Edge, nchunks)
	par.ForDynamic(p, nchunks, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			r := par.NewRNG(par.SplitSeed(cfg.Seed+0xc7, ch))
			base := int64(ch) * block
			limit := base + block
			if limit > n {
				limit = n
			}
			var out []graph.Edge
			for u := base; u < limit; u++ {
				links := int64(cfg.CrossLinks)
				if r.Float64() < cfg.CrossLinks-float64(links) {
					links++
				}
				for l := int64(0); l < links; l++ {
					// Rank-biased target: concentrates on low ids (hubs).
					v := int64(math.Pow(r.Float64(), cfg.HubBias) * float64(n))
					if v >= n {
						v = n - 1
					}
					if v == u {
						continue
					}
					out = append(out, graph.Edge{U: u, V: v, W: 1})
				}
			}
			buckets[ch] = out
		}
	})
	edges := intra
	for _, o := range buckets {
		edges = append(edges, o...)
	}
	g, err := graph.Build(p, n, edges)
	if err != nil {
		return nil, nil, err
	}
	return g, truth, nil
}

package main

import "testing"

func TestParseBlocks(t *testing.T) {
	bs, err := parseBlocks("3x40")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 || bs[0] != 40 || bs[2] != 40 {
		t.Fatalf("blocks = %v", bs)
	}
	for _, bad := range []string{"", "3", "3x", "x40", "0x40", "3x0", "-1x5", "axb", "3x40x5"} {
		if _, err := parseBlocks(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// Command gengraph generates the non-R-MAT benchmark workloads: the
// soc-LiveJournal1 stand-in (lj), the uk-2007-05 crawl stand-in (web), a
// plain stochastic block model (sbm), and the deterministic test graphs.
// Ground-truth community labels can be written alongside the graph.
//
// Example:
//
//	gengraph -kind lj -n 500000 -o lj-sim.bin -format binary -truth lj-truth.txt
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	var (
		kind    = flag.String("kind", "lj", "graph kind: lj | web | sbm | ring | star | clique | grid | cliquechain | karate")
		n       = flag.Int64("n", 100_000, "vertex count (lj, web, ring, star, clique)")
		blocks  = flag.String("blocks", "1000x100", "sbm blocks as COUNTxSIZE")
		pin     = flag.Float64("pin", 0.3, "sbm intra-block edge probability")
		pout    = flag.Float64("pout", 0.001, "sbm inter-block edge probability")
		rows    = flag.Int64("rows", 100, "grid rows / cliquechain cliques")
		cols    = flag.Int64("cols", 100, "grid cols / cliquechain clique size")
		seed    = flag.Uint64("seed", 1, "generator seed")
		threads = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "edgelist", "output format: edgelist | binary | metis")
		truthF  = flag.String("truth", "", "write ground-truth labels to this file (lj, web, sbm)")
	)
	flag.Parse()

	var (
		g     *graph.Graph
		truth []int64
		err   error
	)
	switch *kind {
	case "lj":
		g, truth, err = gen.LJSim(*threads, gen.DefaultLJSim(*n, *seed))
	case "web":
		g, truth, err = gen.WebCrawl(*threads, gen.DefaultWebCrawl(*n, *seed))
	case "sbm":
		var bs []int64
		bs, err = parseBlocks(*blocks)
		if err == nil {
			g, truth, err = gen.SBM(*threads, gen.SBMConfig{Blocks: bs, PIn: *pin, POut: *pout, Seed: *seed})
		}
	case "ring":
		g = gen.Ring(*n)
	case "star":
		g = gen.Star(*n)
	case "clique":
		g = gen.Clique(*n)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "cliquechain":
		g = gen.CliqueChain(*rows, *cols)
	case "karate":
		g = gen.Karate()
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	slog.Info("generated graph", "kind", *kind, "vertices", g.NumVertices(), "edges", g.NumEdges())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		err = graphio.WriteEdgeList(w, g)
	case "binary":
		err = graphio.WriteBinary(w, g)
	case "metis":
		err = graphio.WriteMETIS(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *truthF != "" {
		if truth == nil {
			fatal(fmt.Errorf("kind %q has no ground truth", *kind))
		}
		f, err := os.Create(*truthF)
		if err != nil {
			fatal(err)
		}
		if err := graphio.WriteCommunities(f, truth); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// parseBlocks parses "COUNTxSIZE" into a block-size slice.
func parseBlocks(s string) ([]int64, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return nil, fmt.Errorf("blocks must be COUNTxSIZE, got %q", s)
	}
	count, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || count < 1 {
		return nil, fmt.Errorf("bad block count %q", parts[0])
	}
	size, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || size < 1 {
		return nil, fmt.Errorf("bad block size %q", parts[1])
	}
	bs := make([]int64, count)
	for i := range bs {
		bs[i] = size
	}
	return bs, nil
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}

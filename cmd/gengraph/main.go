// Command gengraph generates the non-R-MAT benchmark workloads: the
// soc-LiveJournal1 stand-in (lj), the uk-2007-05 crawl stand-in (web), a
// plain stochastic block model (sbm), and the deterministic test graphs.
// Ground-truth community labels can be written alongside the graph.
//
// Example:
//
//	gengraph -kind lj -n 500000 -o lj-sim.bin -format binary -truth lj-truth.txt
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	var (
		kind    = flag.String("kind", "lj", "graph kind: lj | web | sbm | ring | star | clique | grid | cliquechain | karate")
		n       = flag.Int64("n", 100_000, "vertex count (lj, web, ring, star, clique)")
		blocks  = flag.String("blocks", "1000x100", "sbm blocks as COUNTxSIZE")
		pin     = flag.Float64("pin", 0.3, "sbm intra-block edge probability")
		pout    = flag.Float64("pout", 0.001, "sbm inter-block edge probability")
		rows    = flag.Int64("rows", 100, "grid rows / cliquechain cliques")
		cols    = flag.Int64("cols", 100, "grid cols / cliquechain clique size")
		seed    = flag.Uint64("seed", 1, "generator seed")
		threads = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "edgelist", "output format: edgelist | binary | metis")
		truthF  = flag.String("truth", "", "write ground-truth labels to this file (lj, web, sbm)")

		deltas    = flag.Int("deltas", 0, "also emit this many versioned edge-update batches (see -deltas-out)")
		deltasOut = flag.String("deltas-out", "", "update-stream output file (required with -deltas)")
		deltaSize = flag.Int("delta-size", 0, "updates per batch (default 1% of the graph's edges)")
		deltaDel  = flag.Float64("delta-del", 0.5, "fraction of updates that delete a live edge")
		deltaHubs = flag.Int("delta-hubs", 0, "confine the churn to a fixed hot set of this many vertices (0 = uniform)")
		deltaMaxW = flag.Int64("delta-maxw", 3, "maximum insert weight")
	)
	flag.Parse()

	var (
		g     *graph.Graph
		truth []int64
		err   error
	)
	switch *kind {
	case "lj":
		g, truth, err = gen.LJSim(*threads, gen.DefaultLJSim(*n, *seed))
	case "web":
		g, truth, err = gen.WebCrawl(*threads, gen.DefaultWebCrawl(*n, *seed))
	case "sbm":
		var bs []int64
		bs, err = parseBlocks(*blocks)
		if err == nil {
			g, truth, err = gen.SBM(*threads, gen.SBMConfig{Blocks: bs, PIn: *pin, POut: *pout, Seed: *seed})
		}
	case "ring":
		g = gen.Ring(*n)
	case "star":
		g = gen.Star(*n)
	case "clique":
		g = gen.Clique(*n)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "cliquechain":
		g = gen.CliqueChain(*rows, *cols)
	case "karate":
		g = gen.Karate()
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	slog.Info("generated graph", "kind", *kind, "vertices", g.NumVertices(), "edges", g.NumEdges())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		err = graphio.WriteEdgeList(w, g)
	case "binary":
		err = graphio.WriteBinary(w, g)
	case "metis":
		err = graphio.WriteMETIS(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *truthF != "" {
		if truth == nil {
			fatal(fmt.Errorf("kind %q has no ground truth", *kind))
		}
		f, err := os.Create(*truthF)
		if err != nil {
			fatal(err)
		}
		if err := graphio.WriteCommunities(f, truth); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *deltas > 0 {
		if err := writeDeltaStream(g, deltaStreamConfig{
			Path: *deltasOut, Batches: *deltas, BatchSize: *deltaSize,
			DeleteFrac: *deltaDel, Hubs: *deltaHubs, MaxWeight: *deltaMaxW, Seed: *seed,
		}); err != nil {
			fatal(err)
		}
	}
}

// deltaStreamConfig carries the -delta* flags into the stream writer.
type deltaStreamConfig struct {
	Path       string
	Batches    int
	BatchSize  int
	DeleteFrac float64
	Hubs       int
	MaxWeight  int64
	Seed       uint64
}

// writeDeltaStream generates a reproducible churn stream against g and
// writes it in the cdgu update format, so incremental benchmarks replay the
// exact same batches.
func writeDeltaStream(g *graph.Graph, cfg deltaStreamConfig) error {
	if cfg.Path == "" {
		return fmt.Errorf("-deltas requires -deltas-out FILE")
	}
	size := cfg.BatchSize
	if size <= 0 {
		size = int(g.NumEdges() / 100)
		if size < 1 {
			size = 1
		}
	}
	batches, err := gen.Deltas(g, gen.DeltaConfig{
		Batches: cfg.Batches, BatchSize: size, DeleteFrac: cfg.DeleteFrac,
		MaxWeight: cfg.MaxWeight, Hubs: cfg.Hubs, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(cfg.Path)
	if err != nil {
		return err
	}
	if err := graphio.WriteDeltas(f, g.NumVertices(), batches); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	slog.Info("wrote update stream", "file", cfg.Path, "batches", cfg.Batches, "batch_size", size)
	return nil
}

// parseBlocks parses "COUNTxSIZE" into a block-size slice.
func parseBlocks(s string) ([]int64, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return nil, fmt.Errorf("blocks must be COUNTxSIZE, got %q", s)
	}
	count, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || count < 1 {
		return nil, fmt.Errorf("bad block count %q", parts[0])
	}
	size, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || size < 1 {
		return nil, fmt.Errorf("bad block size %q", parts[1])
	}
	bs := make([]int64, count)
	for i := range bs {
		bs[i] = size
	}
	return bs, nil
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
